#!/usr/bin/env python3
"""Bench perf-regression gate.

Compares the BENCH_*.json files produced by a `bench_all` run (the
"current" directory, normally the build tree) against the committed
baselines at the repo root, metric by metric, and fails with a
readable table when a metric regressed past the threshold.

Design (see docs/BENCHMARKS.md):

- Only machine-portable *ratio* metrics are gated by default
  (instrumentation overhead ratios, rel_time columns, dispatch-backend
  speedups). Absolute wall-clock metrics (`*_s`, `*_us`, `*_ns`) vary
  with the host and are reported but never gated; micro attach/detach
  timings and decomposition percentages are allowlisted as noisy.
- Metrics matching a HIGHER_IS_BETTER pattern (speedups) regress when
  they *drop* below baseline/threshold; everything else regresses when
  it *rises* above baseline*threshold. DETERMINISTIC metrics (trace
  event/byte counts) are gated symmetrically — any drift is suspect.
- A fast-mode run (WIZPP_BENCH_FAST=1) against a full-run baseline is
  gated on deterministic counts only, with the threshold widened by
  --fast-slack. Measured on this corpus, general overhead ratios on
  short programs swing >2x between same-machine runs; gating them in
  CI would only produce flakes. The full 1.15x gate applies to
  full-vs-full comparisons (the `bench.regress` ctest case after a
  local `bench_all`).
- The threaded-dispatch gains are held by a *same-run* invariant
  instead of a cross-machine comparison: the geomean of the current
  run's per-program `dispatch_threaded_speedup` keys (threaded vs
  table inside one binary on one host) must stay above
  --dispatch-floor. A broken threaded backend collapses that geomean
  to ~1.0 on any machine or compiler. The superinstruction gains are
  held the same way: the geomean of the per-program
  `superinst_speedup` keys (interpreter fused vs unfused in one run,
  BENCH_superinst.json) must stay above --superinst-floor.
- Every same-run gate also checks that its input columns exist in the
  fresh report: a bench that silently stopped emitting a gated key
  would otherwise pass vacuously. All missing columns and all
  violations are reported together in one run. Baseline keys that
  vanished from a fresh report are skipped with a warning, never
  silently.

Exit codes: 0 ok, 1 regressions found, 77 skipped (no current bench
output — lets the `bench.regress` ctest case no-op in test-only
builds), 2 usage/format error.
"""

import argparse
import json
import os
import re
import sys

# Metrics that are never gated: micro-timings whose variance swamps
# any real signal, and informational decompositions. (Absolute
# seconds/us/ns metrics are excluded by ABSOLUTE_RE below; entries
# here silence their derived ratios too.)
NOISY_ALLOWLIST = [
    r"^attach4?_(single|batch)_us\.",   # one-by-one vs batch attach
    r"^detach4?_(single|batch)_us\.",   # ... and detach micro-timings
    r"^attach4?_speedup\.",             # ratios of those micro-timings
    r"^detach4?_speedup\.",
    r"(^|\.)(perfire_ns|fused2_perfire_ns)\.",
    r"_pct(\.|$)",                      # overhead decomposition shares
    r"^(reps|fast_mode)$",              # harness configuration echoes
    r"^module\.",                       # module shape counts
    # While coverage probes are attached the per-program cost swings
    # with corpus shape and host; the steady-state ratio is the held
    # invariant (same-run --fuzz-steady-ceiling), these are context.
    r"\.coverage_(attached|attached_generic|firstrun)_ratio$",
    # Serving-runtime metrics (BENCH_serving.json): threaded latency
    # ratios, oversubscription scaling and pause ratios all depend on
    # the host's core count, so cross-run comparison is pure noise.
    # They are held by the same-run --serving-* gates instead; only
    # the deterministic module-shape and fire-count keys (below) are
    # compared against the baseline.
    r"^serve\.hw_threads$",
    r"^serve\.calibrated_r$",
    r"^serve\.scaling_t1_t16$",
    r"^serve\.t\d+\.",
    r"^serve\.pause\.",
]

# Gated metrics where larger is better: a regression is a *drop*.
HIGHER_IS_BETTER = [
    r"speedup",
]

# Deterministic engine outputs: identical inputs must produce
# identical values, so these are gated in BOTH directions and survive
# the fast-mode filter. Trace event/byte counts, plus the tiered
# recompile counts of BENCH_monitor_scaling (structural: one recompile
# per probe one-by-one, one per touched function per batch) and their
# ratio.
DETERMINISTIC = [
    r"(^|\.)(bytes|events)$",
    r"\.recompiles_(single|batch)\.",
    r"\.recompile_speedup\.",
    # Static-analysis structural counts (BENCH_analysis.json): the
    # pass is deterministic over a fixed corpus, so any drift in a
    # finding count or corpus total is a behavior change.
    r"\.findings$",
    r"^analysis\.(programs|total_instrs|total_reachable"
    r"|total_findings|total_ptr_locals)$",
    # Observability structural counts (BENCH_obs_overhead.json): the
    # timeline span count and the profiler sample count are functions
    # of the program alone (fire-count sampling, docs/OBSERVABILITY.md),
    # so any drift is a behavior change, not noise.
    r"\.obs\.(spans|samples)$",
    # Fuzzing structural outcomes (BENCH_fuzz.json): covered
    # sites/edges, probes detached by flush(), corpus size and the
    # finding count of a fixed-seed campaign are all deterministic in
    # (module, seed) — drift means the coverage map or the campaign
    # changed behavior (docs/FUZZING.md).
    r"\.fuzz\.(sites_covered|edges_covered|probes_detached|corpus)$",
    # Serving structural outcomes (BENCH_serving.json): the synthetic
    # module's shape and the fixed-work phase's probe-fire totals are
    # functions of the generator alone — RCU application must deliver
    # exactly one batch per worker, so any drift is a lost or doubled
    # fleet op (docs/SERVING.md).
    r"^serve\.(funcs|sites)$",
    r"^serve\.fires\.(per_invocation|total)$",
    # Superinstruction fusion structural counts (BENCH_superinst.json):
    # the number of windows annotated is a function of the module and
    # the pattern table alone (docs/INTERPRETER.md), so any drift is a
    # matcher or table change, not noise.
    r"\.superinst_windows$",
    r"^superinst\.total_windows$",
]

# The only metrics stable enough to gate against the *baseline* when
# a fast-mode run is compared to a full-run baseline (same-machine
# experiments show >2x swings on general overhead ratios for short
# programs). Dispatch speedups are deliberately absent: they are
# microarchitecture/compiler-dependent, so they are held by the
# same-run --dispatch-floor check instead.
FAST_STABLE = DETERMINISTIC

# Absolute wall-clock metrics: reported, never gated.
ABSOLUTE_RE = re.compile(r"(_s|_us|_ns)(\.|$)")

SKIP_FILES = {
    # google-benchmark native format, not a flat metrics map.
    "BENCH_micro_zero_overhead.json",
}


def load_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        return None
    return {
        k: v for k, v in metrics.items() if isinstance(v, (int, float))
    }


def matches_any(key, patterns):
    return any(re.search(p, key) for p in patterns)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline-dir", default=".",
                    help="directory with committed BENCH_*.json")
    ap.add_argument("--current-dir", default="build",
                    help="directory with the run to check")
    ap.add_argument("--threshold", type=float,
                    default=float(os.environ.get(
                        "WIZPP_BENCH_THRESHOLD", "1.15")),
                    help="per-metric regression ratio (default 1.15)")
    ap.add_argument("--fast-slack", type=float, default=1.6,
                    help="threshold multiplier when the current run is "
                         "fast-mode but the baseline is not")
    ap.add_argument("--dispatch-floor", type=float, default=1.10,
                    help="minimum geomean of the current run's "
                         "per-program dispatch_threaded_speedup keys "
                         "(same-run invariant; 0 disables)")
    ap.add_argument("--superinst-floor", type=float, default=1.12,
                    help="minimum geomean of the current run's "
                         "per-program superinst_speedup keys "
                         "(interpreter fused vs unfused inside one "
                         "binary on one host, BENCH_superinst.json; "
                         "same-run invariant; 0 disables). Quiet "
                         "full-run measurements sit at ~1.25x; like "
                         "--dispatch-floor the default leaves noise "
                         "margin for fast-mode CI runners and guards "
                         "the collapse case (a broken matcher or "
                         "handler table measures ~1.0)")
    ap.add_argument("--intrinsify-floor", type=float, default=1.0,
                    help="minimum for the current run's per-kind "
                         "*_intrins_speedup.geomean keys (hotness, "
                         "fused, entryexit — probe-dominated by "
                         "construction; the sparse-probe branch kind "
                         "is exempt). Same-run invariant; 0 disables")
    ap.add_argument("--obs-profile-ceiling", type=float, default=1.10,
                    help="maximum for the current run's sampling-"
                         "profiler overhead geomeans "
                         "((int|jit).profile_ratio.geomean in "
                         "BENCH_obs_overhead.json; same-run "
                         "invariant; 0 disables)")
    ap.add_argument("--fuzz-steady-ceiling", type=float, default=1.02,
                    help="maximum for the current run's one-shot "
                         "coverage-probe steady-state overhead "
                         "(jit.coverage_steady_ratio.geomean in "
                         "BENCH_fuzz.json — after first-fire "
                         "batch-detach, coverage must cost nothing; "
                         "same-run invariant; 0 disables)")
    ap.add_argument("--serving-p50-ceiling", type=float, default=1.10,
                    help="maximum for the current run's per-thread-"
                         "count instrumented p50 latency ratio "
                         "(serve.t<N>.instr_p50_ratio in "
                         "BENCH_serving.json; same-run invariant; "
                         "0 disables)")
    ap.add_argument("--serving-scaling-floor", type=float, default=3.5,
                    help="minimum uninstrumented invocations/sec "
                         "scaling from 1 to 16 workers "
                         "(serve.scaling_t1_t16) - applied only when "
                         "the run's serve.hw_threads is >= 16, so "
                         "small CI hosts report without flaking "
                         "(same-run invariant; 0 disables)")
    ap.add_argument("--serving-pause-ceiling", type=float, default=1.0,
                    help="maximum for serve.pause.vs_p99: the worst "
                         "per-worker pause of a 10k-site batch attach "
                         "against 16 busy workers, as a fraction of "
                         "the uninstrumented t16 p99 latency "
                         "(same-run invariant; 0 disables)")
    ap.add_argument("--gate-absolute", action="store_true",
                    help="also gate absolute time metrics (same-machine "
                         "comparisons only)")
    ap.add_argument("-v", "--verbose", action="store_true",
                    help="list every compared metric")
    args = ap.parse_args()

    baseline_files = {
        f for f in os.listdir(args.baseline_dir)
        if f.startswith("BENCH_") and f.endswith(".json")
        and f not in SKIP_FILES
    }
    try:
        current_files = {
            f for f in os.listdir(args.current_dir)
            if f.startswith("BENCH_") and f.endswith(".json")
            and f not in SKIP_FILES
        }
    except FileNotFoundError:
        current_files = set()

    common = sorted(baseline_files & current_files)
    if not common:
        print("check_bench: no current BENCH_*.json found in "
              f"{args.current_dir} - skipping (run bench_all first)")
        return 77

    # Same-run gates and the fresh-report file + key shape each one
    # reads. Used after the comparison loop to report gates whose
    # input columns are missing entirely (a bench that stopped
    # emitting them must not pass vacuously). The serving scaling
    # floor is absent by design: it only applies on >=16-hw-thread
    # hosts, so a missing column there is expected.
    same_run_gates = [
        ("--dispatch-floor", args.dispatch_floor,
         "BENCH_sec54_interp_vs_jit.json",
         re.compile(r"\.dispatch_threaded_speedup$")),
        ("--superinst-floor", args.superinst_floor,
         "BENCH_superinst.json",
         re.compile(r"\.superinst_speedup$")),
        ("--intrinsify-floor", args.intrinsify_floor,
         "BENCH_fig4_jit_intrinsify.json",
         re.compile(
             r"(hotness|fused|entryexit)_intrins_speedup\.geomean$")),
        ("--obs-profile-ceiling", args.obs_profile_ceiling,
         "BENCH_obs_overhead.json",
         re.compile(r"^(int|jit)\.profile_ratio\.geomean$")),
        ("--fuzz-steady-ceiling", args.fuzz_steady_ceiling,
         "BENCH_fuzz.json",
         re.compile(r"^jit\.coverage_steady_ratio\.geomean$")),
        ("--serving-p50-ceiling", args.serving_p50_ceiling,
         "BENCH_serving.json",
         re.compile(r"^serve\.t\d+\.instr_p50_ratio$")),
        ("--serving-pause-ceiling", args.serving_pause_ceiling,
         "BENCH_serving.json",
         re.compile(r"^serve\.pause\.vs_p99$")),
    ]

    regressions = []   # (file, key, base, cur, ratio, limit)
    missing = []       # (file, gate flag) — gate columns absent
    compared = 0
    skipped_noisy = 0
    skipped_absolute = 0
    worst = []         # (margin, file, key, ratio, limit)
    cur_by_file = {}

    for fname in common:
        base = load_metrics(os.path.join(args.baseline_dir, fname))
        cur = load_metrics(os.path.join(args.current_dir, fname))
        if base is None or cur is None:
            print(f"check_bench: {fname}: not a flat metrics report",
                  file=sys.stderr)
            return 2
        cur_by_file[fname] = cur

        # Baseline keys that vanished from the fresh report would
        # otherwise drop out of `set(base) & set(cur)` silently; a
        # renamed or dropped column may be a gate losing its input,
        # so skip them loudly.
        gone = [k for k in sorted(set(base) - set(cur))
                if not matches_any(k, NOISY_ALLOWLIST)
                and not (ABSOLUTE_RE.search(k)
                         and not matches_any(k, DETERMINISTIC))]
        if gone:
            shown = ", ".join(gone[:5])
            more = f" (+{len(gone) - 5} more)" if len(gone) > 5 else ""
            print(f"check_bench: WARNING: {fname}: {len(gone)} gated "
                  f"baseline key(s) absent from the fresh report, "
                  f"skipped: {shown}{more}")

        limit = args.threshold
        fast_mismatch = bool(cur.get("fast_mode", 0)) != bool(
            base.get("fast_mode", 0))
        if fast_mismatch:
            limit = 1.0 + (args.threshold - 1.0) * args.fast_slack

        for key in sorted(set(base) & set(cur)):
            if matches_any(key, NOISY_ALLOWLIST):
                skipped_noisy += 1
                continue
            deterministic = matches_any(key, DETERMINISTIC)
            if fast_mismatch and not matches_any(key, FAST_STABLE):
                # Summary stats aggregate over the fast subset, and
                # same-machine experiments show general overhead
                # ratios swing >2x between fast and full runs: only
                # the FAST_STABLE metrics carry signal here.
                skipped_noisy += 1
                continue
            if not deterministic and ABSOLUTE_RE.search(key) \
                    and not args.gate_absolute:
                skipped_absolute += 1
                continue
            b, c = float(base[key]), float(cur[key])
            if b <= 0 or c <= 0:
                continue
            if deterministic:
                ratio = max(b / c, c / b)   # any drift is suspect
            elif matches_any(key, HIGHER_IS_BETTER):
                ratio = b / c   # >1 means the speedup dropped
            else:
                ratio = c / b   # >1 means the overhead grew
            compared += 1
            if args.verbose:
                print(f"  {fname}:{key}: base {b:.4g} cur {c:.4g} "
                      f"ratio {ratio:.3f} (limit {limit:.2f})")
            if ratio > limit:
                regressions.append((fname, key, b, c, ratio, limit))
            else:
                worst.append((limit - ratio, fname, key, ratio, limit))

        # Same-run intrinsification floor (the JIT lowering layer's
        # acceptance invariant, docs/JIT.md): each probe-dominated
        # kind's generic/intrinsified speedup geomean must not fall
        # below the floor — on any host, in any mode.
        if args.intrinsify_floor > 0:
            floor_re = re.compile(
                r"(hotness|fused|entryexit)_intrins_speedup\.geomean$")
            for k, v in cur.items():
                if not floor_re.search(k) or v <= 0:
                    continue
                compared += 1
                if float(v) < args.intrinsify_floor:
                    regressions.append(
                        (fname, k, args.intrinsify_floor, float(v),
                         args.intrinsify_floor / float(v), 1.0))

        # Same-run sampling-profiler ceiling (the observability
        # layer's acceptance invariant, docs/OBSERVABILITY.md): the
        # default-budget profiler must stay cheap on the fig6 corpus
        # geomean, in both tiers, on any host.
        if args.obs_profile_ceiling > 0:
            ceiling_re = re.compile(
                r"^(int|jit)\.profile_ratio\.geomean$")
            for k, v in cur.items():
                if not ceiling_re.search(k) or v <= 0:
                    continue
                compared += 1
                if float(v) > args.obs_profile_ceiling:
                    regressions.append(
                        (fname, k, args.obs_profile_ceiling, float(v),
                         float(v) / args.obs_profile_ceiling, 1.0))

        # Same-run one-shot coverage ceiling (the fuzzing subsystem's
        # acceptance invariant, docs/FUZZING.md): after the first fire
        # detaches every saturated probe, steady-state coverage must
        # time like the uninstrumented baseline on any host.
        if args.fuzz_steady_ceiling > 0:
            fuzz_re = re.compile(
                r"^jit\.coverage_steady_ratio\.geomean$")
            for k, v in cur.items():
                if not fuzz_re.search(k) or v <= 0:
                    continue
                compared += 1
                if float(v) > args.fuzz_steady_ceiling:
                    regressions.append(
                        (fname, k, args.fuzz_steady_ceiling, float(v),
                         float(v) / args.fuzz_steady_ceiling, 1.0))

        # Same-run serving gates (the serving runtime's acceptance
        # invariants, docs/SERVING.md): steady-state instrumentation
        # must not move p50 at any thread count; a 10k-site fleet
        # attach must pause no worker longer than an invocation's
        # p99; and on a >= 16-hw-thread host, throughput must scale.
        if args.serving_p50_ceiling > 0:
            p50_re = re.compile(r"^serve\.t\d+\.instr_p50_ratio$")
            for k, v in cur.items():
                if not p50_re.search(k) or v <= 0:
                    continue
                compared += 1
                if float(v) > args.serving_p50_ceiling:
                    regressions.append(
                        (fname, k, args.serving_p50_ceiling, float(v),
                         float(v) / args.serving_p50_ceiling, 1.0))
        if args.serving_pause_ceiling > 0 \
                and "serve.pause.vs_p99" in cur:
            v = float(cur["serve.pause.vs_p99"])
            if v > 0:
                compared += 1
                if v > args.serving_pause_ceiling:
                    regressions.append(
                        (fname, "serve.pause.vs_p99",
                         args.serving_pause_ceiling, v,
                         v / args.serving_pause_ceiling, 1.0))
        if args.serving_scaling_floor > 0 \
                and cur.get("serve.hw_threads", 0) >= 16 \
                and "serve.scaling_t1_t16" in cur:
            v = float(cur["serve.scaling_t1_t16"])
            if v > 0:
                compared += 1
                if v < args.serving_scaling_floor:
                    regressions.append(
                        (fname, "serve.scaling_t1_t16",
                         args.serving_scaling_floor, v,
                         args.serving_scaling_floor / v, 1.0))

        # Same-run threaded-dispatch floor: independent of the
        # baseline and of the host, so it gates in every mode.
        if args.dispatch_floor > 0:
            speedups = [
                float(v) for k, v in cur.items()
                if k.endswith(".dispatch_threaded_speedup") and v > 0
            ]
            if speedups:
                geomean = 1.0
                for s in speedups:
                    geomean *= s ** (1.0 / len(speedups))
                compared += 1
                if geomean < args.dispatch_floor:
                    regressions.append(
                        (fname, "<dispatch_threaded_speedup geomean>",
                         args.dispatch_floor, geomean,
                         args.dispatch_floor / geomean, 1.0))

        # Same-run superinstruction floor (the interpreter fusion
        # layer's acceptance invariant, docs/INTERPRETER.md): the
        # geomean of the fused-vs-unfused interpreter speedups over
        # the fig6 corpus — two configurations of one binary measured
        # back to back — must stay above the floor on any host.
        if args.superinst_floor > 0:
            speedups = [
                float(v) for k, v in cur.items()
                if k.endswith(".superinst_speedup") and v > 0
            ]
            if speedups:
                geomean = 1.0
                for s in speedups:
                    geomean *= s ** (1.0 / len(speedups))
                compared += 1
                if geomean < args.superinst_floor:
                    regressions.append(
                        (fname, "<superinst_speedup geomean>",
                         args.superinst_floor, geomean,
                         args.superinst_floor / geomean, 1.0))

    # Gate columns that are absent from a fresh report the run DID
    # produce: the gate would pass vacuously, so that is a failure in
    # its own right — and all of them are reported together with any
    # violations, in one run.
    for flag, enabled, fname, key_re in same_run_gates:
        if enabled <= 0 or fname not in cur_by_file:
            continue
        if not any(key_re.search(k) for k in cur_by_file[fname]):
            missing.append((fname, flag, key_re.pattern))

    if missing:
        print("check_bench: MISSING GATE COLUMNS "
              f"({len(missing)} same-run gate(s) with no input keys "
              "in the fresh report):\n")
        for fname, flag, pattern in missing:
            print(f"  {fname}: {flag} found no key matching "
                  f"{pattern}")
        print()

    if regressions:
        print("check_bench: PERFORMANCE REGRESSIONS "
              f"({len(regressions)} of {compared} gated metrics):\n")
        w = max(len(f"{f}:{k}") for f, k, *_ in regressions)
        print(f"  {'metric':<{w}}  {'baseline':>10}  {'current':>10}  "
              f"{'ratio':>7}  {'limit':>6}")
        for f, k, b, c, r, lim in sorted(regressions,
                                         key=lambda t: -t[4]):
            print(f"  {f + ':' + k:<{w}}  {b:>10.4g}  {c:>10.4g}  "
                  f"{r:>6.2f}x  {lim:>5.2f}x")
    if regressions or missing:
        print("\ncheck_bench: FAIL - raise the metric, fix the "
              "regression (or restore the missing gate columns), or "
              "allowlist a genuinely noisy metric in "
              "scripts/check_bench.py")
        return 1

    print(f"check_bench: OK - {compared} gated metrics across "
          f"{len(common)} bench files within {args.threshold:.2f}x "
          f"({skipped_absolute} absolute and {skipped_noisy} "
          "noisy-allowlisted metrics not gated)")
    worst.sort(key=lambda t: t[0])
    for margin, f, k, r, lim in worst[:3]:
        print(f"  closest to the limit: {f}:{k} at {r:.2f}x "
              f"(limit {lim:.2f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
