#!/bin/sh
# Builds the ThreadSanitizer preset and runs the concurrency suites
# under it (test_serve + test_obs: the serving runtime's RCU
# generation gate, the work-stealing executor, the InstancePool fleet
# ops and the metrics registry's callback/snapshot paths).
#
# Why not plain `ctest --preset tsan`: TSan's shadow mapping conflicts
# with high-entropy ASLR (kernel vm.mmap_rnd_bits > 28, the default on
# recent distros); affected binaries exit non-zero before main() with
# no output. `setarch -R` disables ASLR for the test processes, which
# is the documented workaround and a no-op on unaffected kernels.
#
# Usage: scripts/run_tsan.sh [extra ctest args...]
set -eu

cd "$(dirname "$0")/.."

cmake --preset tsan
cmake --build --preset tsan -j"$(nproc 2>/dev/null || echo 4)"

TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"
export TSAN_OPTIONS

if command -v setarch >/dev/null 2>&1; then
    exec setarch "$(uname -m)" -R ctest --preset tsan "$@"
else
    exec ctest --preset tsan "$@"
fi
