#!/usr/bin/env python3
"""Rank superinstruction fusion candidates from pair-profile reports.

Folds one or more reports written by `wizeng --profile-pairs=<out>`
(executed straight-line opcode pair/triple histograms) across a corpus
and ranks candidates by saved dispatches: a fused window of n members
executed c times saves c*(n-1) handler dispatches.

Candidates are filtered to members a fused handler can actually
absorb: locals, single-byte consts, pure i32/f64 arithmetic and
comparisons, plain loads/stores, and a window-terminating br_if.
Trapping div/rem, calls and interior control flow are excluded — the
same constraints src/interp/fusion.cc enforces at match time.

With --table=src/interp/fusion.cc the current WIZPP pattern table is
parsed and each candidate is marked [fused] or [miss], so the output
reads as a to-do list for retuning the table.

Usage:
  wizeng --mode=int --profile-pairs=out/p.txt @gemm
  scripts/mine_superinsts.py [--top=N] [--table=FILE] out/*.txt
"""

import re
import sys

# Members a fused handler can absorb mid-window.
FUSABLE = {
    "local.get", "local.set", "local.tee",
    "i32.const", "i64.const", "f32.const", "f64.const",
    "i32.add", "i32.sub", "i32.mul", "i32.and", "i32.or", "i32.xor",
    "i32.shl", "i32.shr_s", "i32.shr_u",
    "i32.eq", "i32.ne", "i32.lt_s", "i32.lt_u", "i32.gt_s", "i32.gt_u",
    "i32.le_s", "i32.le_u", "i32.ge_s", "i32.ge_u", "i32.eqz",
    "i64.add", "i64.sub", "i64.mul",
    "f32.add", "f32.sub", "f32.mul",
    "f64.add", "f64.sub", "f64.mul", "f64.neg", "f64.abs",
    "i32.load", "i64.load", "f32.load", "f64.load",
    "i32.store", "i64.store", "f32.store", "f64.store",
}
# May only terminate a window (the branch target is outside it).
TERMINAL = {"br_if"}


def fusable(seq):
    if any(op not in FUSABLE and op not in TERMINAL for op in seq):
        return False
    # br_if only in terminal position.
    return all(op not in TERMINAL for op in seq[:-1])


def fold(paths):
    pairs, triples = {}, {}
    instructions = 0
    for path in paths:
        with open(path) as f:
            for line in f:
                parts = line.split()
                if not parts:
                    continue
                if parts[0] == "instructions":
                    instructions += int(parts[1])
                elif parts[0] == "pair" and len(parts) == 4:
                    key = (parts[1], parts[2])
                    pairs[key] = pairs.get(key, 0) + int(parts[3])
                elif parts[0] == "triple" and len(parts) == 5:
                    key = (parts[1], parts[2], parts[3])
                    triples[key] = triples.get(key, 0) + int(parts[4])
    return instructions, pairs, triples


def parse_table(path):
    """Extracts member-name sequences from fusion.cc's kPatterns."""
    table = set()
    text = open(path).read()
    block = re.search(r"kPatterns\[\]\s*=\s*\{(.*?)\n\};", text,
                      re.DOTALL)
    if not block:
        return table
    # Entries look like: {SOP_X, 3, {OP_LOCAL_GET, OP_I32_CONST, ...}}
    dotted = ("i32", "i64", "f32", "f64", "local", "global", "memory")
    def name(op):
        op = op.lower()
        head = op.split("_", 1)[0]
        return op.replace("_", ".", 1) if head in dotted else op
    for m in re.finditer(r"\{SOP_\w+,\s*\d+,\s*\{([^}]*)\}", block.group(1)):
        ops = re.findall(r"OP_(\w+)", m.group(1))
        table.add(tuple(name(o) for o in ops))
    return table


def main(argv):
    top = 40
    table_path = None
    paths = []
    for a in argv[1:]:
        if a.startswith("--top="):
            top = int(a[6:])
        elif a.startswith("--table="):
            table_path = a[8:]
        elif a.startswith("--"):
            sys.stderr.write(f"unknown option {a}\n{__doc__}")
            return 1
        else:
            paths.append(a)
    if not paths:
        sys.stderr.write(__doc__)
        return 1

    instructions, pairs, triples = fold(paths)
    table = parse_table(table_path) if table_path else None

    # Saved dispatches: count * (members - 1). Triples subsume their
    # two constituent pairs when the greedy matcher picks the longer
    # window, but both are reported — the matcher is longest-first, so
    # a triple in the table makes its prefix pair's count conditional.
    candidates = []
    for seq, count in pairs.items():
        if fusable(seq):
            candidates.append((count * 1, count, seq))
    for seq, count in triples.items():
        if fusable(seq):
            candidates.append((count * 2, count, seq))
    candidates.sort(key=lambda c: (-c[0], c[2]))

    print(f"{instructions} instructions over {len(paths)} report(s)")
    print(f"{'saved':>12} {'count':>12}  candidate")
    for saved, count, seq in candidates[:top]:
        mark = ""
        if table is not None:
            mark = "  [fused]" if seq in table else "  [miss]"
        print(f"{saved:12} {count:12}  {' ; '.join(seq)}{mark}")
    if table is not None:
        mined = {seq for _, _, seq in candidates}
        stale = sorted(t for t in table if t not in mined)
        for t in stale:
            print(f"table-only (not observed): {' ; '.join(t)}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
