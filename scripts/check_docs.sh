#!/bin/sh
# Documentation checks (registered as the CI "docs" job and as the
# ctest case docs.check):
#
#   1. Every intra-repo markdown link in tracked *.md files resolves
#      to an existing file (anchors are stripped; external http(s)/
#      mailto links are skipped).
#   2. Every ```cpp snippet in the subsystem guides (docs/PROBES.md,
#      docs/ANALYSIS.md, docs/OBSERVABILITY.md, docs/FUZZING.md,
#      docs/SERVING.md) is a
#      complete translation unit that compiles
#      against src/ (extract-and-compile with -fsyntax-only, so the
#      snippets cannot rot).
#
# Usage: scripts/check_docs.sh   (from anywhere; cd's to the repo root)
set -eu

cd "$(dirname "$0")/.."
status=0

# ---------------------------------------------------------- link check
MDFILES=$(find . \( -path ./build -o -path ./build-asan \
                    -o -path ./build-tsan -o -path ./build-debug \
                    -o -path ./.git \) \
               -prune -o -name '*.md' -print | sort)

for md in $MDFILES; do
    dir=$(dirname "$md")
    # Pull out [text](target) destinations, one per line, skipping
    # fenced code blocks, inline code spans, and image links (the
    # paper extraction in PAPERS.md references images we do not ship).
    links=$(awk '
        /^```/ { fence = !fence; next }
        fence  { next }
        {
            line = $0
            gsub(/`[^`]*`/, "", line)
            while (match(line, /\[[^]]*\]\([^)]+\)/)) {
                m = substr(line, RSTART, RLENGTH)
                pre = RSTART > 1 ? substr(line, RSTART - 1, 1) : ""
                line = substr(line, RSTART + RLENGTH)
                sub(/^\[[^]]*\]\(/, "", m)
                sub(/\)$/, "", m)
                if (pre != "!") print m
            }
        }
    ' "$md")
    [ -n "$links" ] || continue
    for target in $links; do
        case $target in
            http://*|https://*|mailto:*|\#*) continue ;;
        esac
        path=${target%%#*}
        [ -n "$path" ] || continue
        if [ ! -e "$dir/$path" ]; then
            echo "check_docs: broken link in $md -> $target" >&2
            status=1
        fi
    done
done

# --------------------------------------------- snippet extract+compile
CXX=${CXX:-c++}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

count=0
for doc in docs/PROBES.md docs/ANALYSIS.md docs/OBSERVABILITY.md \
           docs/FUZZING.md docs/SERVING.md; do
    base=$(basename "$doc" .md)
    awk -v out="$tmp" -v base="$base" '
        /^```cpp$/ { n++; f = sprintf("%s/%s_%02d.cc", out, base, n); next }
        /^```/     { f = "" }
        f          { print > f }
    ' "$doc"

    found=0
    for cc in "$tmp/${base}"_*.cc; do
        [ -e "$cc" ] || break
        found=$((found + 1))
        if ! "$CXX" -std=c++20 -Wall -fsyntax-only -Isrc "$cc"; then
            echo "check_docs: snippet $(basename "$cc") from $doc" \
                 "does not compile" >&2
            status=1
        fi
    done

    if [ "$found" -eq 0 ]; then
        echo "check_docs: no \`\`\`cpp snippets found in $doc" >&2
        status=1
    fi
    count=$((count + found))
done

if [ "$status" -eq 0 ]; then
    echo "check_docs: OK ($(echo "$MDFILES" | wc -l | tr -d ' ') markdown" \
         "files link-checked, $count snippets compiled)"
fi
exit $status
