#!/bin/sh
# clang-tidy lint gate (ctest lint.tidy; .clang-tidy at the repo root).
#
# Scope: the static-analysis subsystem plus the decode/probe-manager
# files it leans on — the code where a lint-grade defect (dangling
# reference into a facts map, accidental copy of a per-pc state
# vector) would corrupt analysis results silently — and the
# observability layer (src/obs/), whose registry hands out long-lived
# references and whose profiler walks live frames, and the fuzzing
# subsystem (src/fuzz/), whose minimizer/reproducer plumbing shuffles
# byte buffers and owning pointers around callbacks. The whole tree is
# not linted: the interpreter/JIT cores are -Werror clean and their
# opcode switches drown tidy in style noise.
#
# Exit codes: 0 clean, 1 findings, 77 clang-tidy unavailable (the
# ctest case declares SKIP_RETURN_CODE 77, so local builds without
# clang-tidy skip instead of failing; CI installs it and asserts the
# case did not skip).
#
# Usage: scripts/run_tidy.sh [clang-tidy-binary]

set -u
cd "$(dirname "$0")/.."

TIDY=${1:-clang-tidy}
if ! command -v "$TIDY" >/dev/null 2>&1; then
    echo "run_tidy: $TIDY not found - skipping (exit 77)"
    exit 77
fi

FILES="
src/analysis/audit.cc
src/analysis/dataflow.cc
src/analysis/taint.cc
src/fuzz/coverage.cc
src/fuzz/fuzzer.cc
src/fuzz/minimize.cc
src/fuzz/repro.cc
src/fuzz/shake.cc
src/obs/metrics.cc
src/obs/profiler.cc
src/obs/timeline.cc
src/probes/probemanager.cc
src/wasm/decoder.cc
"

status=0
for f in $FILES; do
    echo "--- $TIDY $f ---"
    "$TIDY" --quiet "$f" -- -std=c++20 -Isrc || status=1
done

if [ "$status" -eq 0 ]; then
    echo "run_tidy: OK - $(echo $FILES | wc -w) files clean"
else
    echo "run_tidy: FAIL - fix the findings or adjust .clang-tidy" >&2
fi
exit $status
