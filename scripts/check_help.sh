#!/bin/sh
# CLI surface checks (registered as the ctest case wizeng.help_audit):
#
#   1. `wizeng --help` exits 0 and lists every public flag with a
#      one-liner — the flags table in tools/wizeng.cc is the single
#      source of truth, and this check keeps it honest when a PR adds
#      a flag but forgets the table.
#   2. An unknown `--flag` exits non-zero, names the flag, and offers
#      a nearest-flag suggestion; a known flag used with the wrong
#      value shape gets a usage hint instead of silently becoming the
#      module target.
#
# Usage: scripts/check_help.sh <path-to-wizeng>
set -u

WIZENG=${1:?usage: check_help.sh <path-to-wizeng>}
status=0

# Every flag the engine has grown, PRs 2 through 10. A flag missing
# here is fine (the list is a floor, not a ceiling); a flag missing
# from --help is a failure.
FLAGS="
--monitors
--mode
--dispatch
--no-fuse
--profile-pairs
--no-intrinsify
--invoke
--list-programs
--trace
--replay-check
--trace-report
--emit-wasm
--analyze
--audit-lowering
--metrics
--timeline
--profile
--profile-budget
--profile-every-instr
--fuzz
--fuzz-runs
--fuzz-seed
--fuzz-max-arg
--fuzz-out
--shake
--shake-seed
--repro
--serve
--serve-threads
--serve-requests
--serve-instrument
--help
"

help=$("$WIZENG" --help 2>&1)
if [ $? -ne 0 ]; then
    echo "check_help: wizeng --help exited non-zero" >&2
    status=1
fi
for flag in $FLAGS; do
    if ! printf '%s\n' "$help" | grep -q -- "^  $flag"; then
        echo "check_help: --help does not list $flag" >&2
        status=1
    fi
done

# Unknown flag: non-zero exit + a did-you-mean suggestion.
if out=$("$WIZENG" --timelin=x @gemm 2>&1); then
    echo "check_help: unknown flag --timelin exited 0" >&2
    status=1
fi
case $out in
    *"did you mean --timeline"*) ;;
    *) echo "check_help: no suggestion for --timelin (got: $out)" >&2
       status=1 ;;
esac

# The fusion flags follow the same contract: nearest-flag suggestion
# for a typo, usage hint for a value-taking flag used bare.
if out=$("$WIZENG" --no-fus @gemm 2>&1); then
    echo "check_help: unknown flag --no-fus exited 0" >&2
    status=1
fi
case $out in
    *"did you mean --no-fuse"*) ;;
    *) echo "check_help: no suggestion for --no-fus (got: $out)" >&2
       status=1 ;;
esac
if out=$("$WIZENG" --profile-pair=/dev/null @gemm 2>&1); then
    echo "check_help: unknown flag --profile-pair exited 0" >&2
    status=1
fi
case $out in
    *"did you mean --profile-pairs"*) ;;
    *) echo "check_help: no suggestion for --profile-pair" >&2
       status=1 ;;
esac
if out=$("$WIZENG" --profile-pairs @gemm 2>&1); then
    echo "check_help: bare --profile-pairs exited 0" >&2
    status=1
fi
case $out in
    *"--profile-pairs=<file>"*) ;;
    *) echo "check_help: no usage hint for bare --profile-pairs" >&2
       status=1 ;;
esac

# Known flag, missing value: non-zero exit + the expected shape.
if out=$("$WIZENG" --timeline @gemm 2>&1); then
    echo "check_help: bare --timeline exited 0" >&2
    status=1
fi
case $out in
    *"--timeline=<file>"*) ;;
    *) echo "check_help: no usage hint for bare --timeline" >&2
       status=1 ;;
esac

if [ "$status" -eq 0 ]; then
    echo "check_help: OK ($(echo $FLAGS | wc -w) flags listed," \
         "unknown-flag and missing-value paths reject)"
fi
exit $status
