/**
 * @file
 * Figure 4: relative execution times of the hotness and branch
 * monitors on the compiled tier, with and without probe
 * intrinsification, on PolyBench/C. Ratios are relative to
 * uninstrumented compiled-tier execution. Also prints the Section 5.3
 * summary ranges (paper: hotness 7-134x -> 2.2-7.7x intrinsified;
 * branch 1.0-16.6x -> 1.0-2.8x).
 *
 * Extended with one column pair per lowering kind of the
 * instrumentation-lowering layer (docs/JIT.md):
 *
 *  - fused: a CountProbe+EmptyProbe pair at every instruction, so
 *    every site is multi-member — pre-resolved fused call vs the full
 *    generic path, on the PolyBench programs (probe-dominated, like
 *    the hotness columns);
 *  - entry/exit: FunctionEntryExit hooks measured on call-dominated
 *    micro programs (PolyBench bodies are loops with few calls, so
 *    entry/exit cost would vanish in loop time there).
 *
 * The per-kind `*_intrins_speedup.geomean` keys (generic time /
 * intrinsified time, same run, >= 1.0 when intrinsification helps)
 * are gated by scripts/check_bench.py --intrinsify-floor.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "harness.h"
#include "monitors/entryexit.h"
#include "wat/wat.h"

using namespace wizpp;
using namespace wizpp::bench;

namespace {

/** Call-dominated micro programs for the entry/exit kind: a hot loop
    whose body is calls through a small helper chain. "deep" stacks
    three call levels; "condexit" exits the helper through a
    conditional branch targeting the function end, exercising the
    top-of-stack (needsTopOfStack) variant of the lowered probe. */
struct EeMicro
{
    const char* name;
    const char* wat;
};

const EeMicro kEeMicros[] = {
    {"calls",
     R"WAT((module
       (func $leaf (param $x i32) (result i32)
         (i32.add (local.get $x) (i32.const 1)))
       (func (export "run") (param $n i32) (result i32)
         (local $i i32) (local $a i32)
         (block $done
           (loop $l
             (br_if $done (i32.ge_u (local.get $i) (local.get $n)))
             (local.set $a (call $leaf (local.get $a)))
             (local.set $a (call $leaf (local.get $a)))
             (local.set $a (call $leaf (local.get $a)))
             (local.set $a (call $leaf (local.get $a)))
             (local.set $i (i32.add (local.get $i) (i32.const 1)))
             (br $l)))
         (local.get $a))))WAT"},
    {"deep",
     R"WAT((module
       (func $leaf (param $x i32) (result i32)
         (i32.add (local.get $x) (i32.const 1)))
       (func $mid (param $x i32) (result i32)
         (call $leaf (call $leaf (local.get $x))))
       (func $top (param $x i32) (result i32)
         (call $mid (call $mid (local.get $x))))
       (func (export "run") (param $n i32) (result i32)
         (local $i i32) (local $a i32)
         (block $done
           (loop $l
             (br_if $done (i32.ge_u (local.get $i) (local.get $n)))
             (local.set $a (call $top (local.get $a)))
             (local.set $i (i32.add (local.get $i) (i32.const 1)))
             (br $l)))
         (local.get $a))))WAT"},
    {"condexit",
     R"WAT((module
       (func $step (param $x i32) (result i32)
         (local $r i32)
         (local.set $r (i32.add (local.get $x) (i32.const 1)))
         (local.get $r)
         (br_if 0 (i32.and (local.get $x) (i32.const 1)))
         (drop)
         (i32.add (local.get $x) (i32.const 2)))
       (func (export "run") (param $n i32) (result i32)
         (local $i i32) (local $a i32)
         (block $done
           (loop $l
             (br_if $done (i32.ge_u (local.get $i) (local.get $n)))
             (local.set $a (call $step (local.get $a)))
             (local.set $a (call $step (local.get $a)))
             (local.set $i (i32.add (local.get $i) (i32.const 1)))
             (br $l)))
         (local.get $a))))WAT"},
};

/** One timed run of an entry/exit-instrumented micro program. */
double
runEeMicro(const Module& module, bool instrument, bool intrinsify,
           uint32_t n, uint64_t* fires)
{
    EngineConfig cfg;
    cfg.mode = ExecMode::Jit;
    cfg.intrinsifyCountProbe = intrinsify;
    cfg.intrinsifyOperandProbe = intrinsify;
    cfg.intrinsifyEntryExitProbe = intrinsify;
    cfg.intrinsifyFusedProbe = intrinsify;

    double t0 = 0, t1 = 0;
    {
        Engine eng(cfg);
        Module copy = module;
        if (!eng.loadModule(std::move(copy)).ok()) return -1;
        uint64_t count = 0;
        std::unique_ptr<FunctionEntryExit> ee;
        t0 = bench::nowSeconds();
        if (instrument) {
            ee = std::make_unique<FunctionEntryExit>(
                eng, [&count](uint32_t, uint64_t) { count++; },
                [&count](uint32_t, uint64_t) { count++; });
            ee->instrumentAll();
        }
        if (!eng.instantiate().ok()) return -1;
        auto r = eng.callExport("run", {Value::makeI32(
            static_cast<int32_t>(n))});
        if (!r.ok()) return -1;
        t1 = bench::nowSeconds();
        if (fires) *fires = count;
    }
    return t1 - t0;
}

double
measureEeMicro(const Module& module, bool instrument, bool intrinsify,
               uint32_t n, uint64_t* fires)
{
    double best = -1;
    for (int i = 0; i < reps(); i++) {
        double t = runEeMicro(module, instrument, intrinsify, n, fires);
        if (t < 0) return -1;
        if (best < 0 || t < best) best = t;
    }
    return best;
}

} // namespace

int
main()
{
    printf("=== Figure 4: JIT probe intrinsification (PolyBench/C) "
           "===\n");
    printf("%-16s %12s | %12s %12s | %12s %12s | %12s %12s | %14s\n",
           "program", "uninstr(ms)", "hot-intrins", "hot-generic",
           "br-intrins", "br-generic", "fus-intrins", "fus-generic",
           "probe fires");

    std::vector<std::string> csv;
    JsonReport json("fig4_jit_intrinsify");
    std::vector<double> hi, hn, bi, bn, fi, fn;
    std::vector<double> hs, bs, fs, es;
    for (const BenchProgram* p : selectPrograms("polybench")) {
        uint32_t n = p->defaultN;
        auto base = measureWizard(*p, ExecMode::Jit, Tool::None, true, n);
        auto hotI = measureWizard(*p, ExecMode::Jit, Tool::HotnessLocal,
                                  true, n);
        auto hotN = measureWizard(*p, ExecMode::Jit, Tool::HotnessLocal,
                                  false, n);
        auto brI = measureWizard(*p, ExecMode::Jit, Tool::BranchLocal,
                                 true, n);
        auto brN = measureWizard(*p, ExecMode::Jit, Tool::BranchLocal,
                                 false, n);
        auto fusI = measureWizard(*p, ExecMode::Jit, Tool::FusedPair,
                                  true, n);
        auto fusN = measureWizard(*p, ExecMode::Jit, Tool::FusedPair,
                                  false, n);
        double rHI = hotI.seconds / base.seconds;
        double rHN = hotN.seconds / base.seconds;
        double rBI = brI.seconds / base.seconds;
        double rBN = brN.seconds / base.seconds;
        double rFI = fusI.seconds / base.seconds;
        double rFN = fusN.seconds / base.seconds;
        hi.push_back(rHI);
        hn.push_back(rHN);
        bi.push_back(rBI);
        bn.push_back(rBN);
        fi.push_back(rFI);
        fn.push_back(rFN);
        hs.push_back(rHN / rHI);
        bs.push_back(rBN / rBI);
        fs.push_back(rFN / rFI);
        printf("%-16s %12.2f | %12s %12s | %12s %12s | %12s %12s "
               "| %14llu\n",
               p->name.c_str(), base.seconds * 1e3, fmtRatio(rHI).c_str(),
               fmtRatio(rHN).c_str(), fmtRatio(rBI).c_str(),
               fmtRatio(rBN).c_str(), fmtRatio(rFI).c_str(),
               fmtRatio(rFN).c_str(),
               static_cast<unsigned long long>(hotI.probeFires));
        csv.push_back(p->name + "," + std::to_string(base.seconds) + "," +
                      std::to_string(rHI) + "," + std::to_string(rHN) +
                      "," + std::to_string(rBI) + "," +
                      std::to_string(rBN) + "," + std::to_string(rFI) +
                      "," + std::to_string(rFN) + "," +
                      std::to_string(hotI.probeFires));
        json.put(p->name + ".uninstr_s", base.seconds);
        json.put(p->name + ".hotness_intrins", rHI);
        json.put(p->name + ".hotness_generic", rHN);
        json.put(p->name + ".branch_intrins", rBI);
        json.put(p->name + ".branch_generic", rBN);
        json.put(p->name + ".fused_intrins", rFI);
        json.put(p->name + ".fused_generic", rFN);
    }
    writeCsv("fig4.csv",
             "program,uninstr_s,hotness_intrins,hotness_generic,"
             "branch_intrins,branch_generic,fused_intrins,fused_generic,"
             "hotness_fires",
             csv);

    // ---- Entry/exit kind on the call-dominated micro programs ----
    printf("\n--- entry/exit lowering kind (call-dominated micros) "
           "---\n");
    printf("%-16s %12s | %12s %12s %9s | %14s\n", "program",
           "uninstr(ms)", "ee-intrins", "ee-generic", "speedup",
           "hook fires");
    const uint32_t eeN = fastMode() ? 60000 : 250000;
    for (const EeMicro& m : kEeMicros) {
        auto parsed = parseWat(m.wat);
        if (!parsed.ok()) {
            fprintf(stderr, "fig4: %s parse failed: %s\n", m.name,
                    parsed.error().toString().c_str());
            return 1;
        }
        Module module = parsed.take();
        uint64_t fires = 0;
        double tBase = measureEeMicro(module, false, true, eeN, nullptr);
        double tI = measureEeMicro(module, true, true, eeN, &fires);
        double tN = measureEeMicro(module, true, false, eeN, nullptr);
        if (tBase <= 0 || tI <= 0 || tN <= 0) {
            fprintf(stderr, "fig4: ee micro %s failed\n", m.name);
            return 1;
        }
        double rEI = tI / tBase;
        double rEN = tN / tBase;
        es.push_back(rEN / rEI);
        printf("%-16s %12.2f | %12s %12s %8.2fx | %14llu\n", m.name,
               tBase * 1e3, fmtRatio(rEI).c_str(), fmtRatio(rEN).c_str(),
               rEN / rEI, static_cast<unsigned long long>(fires));
        std::string prefix = std::string("eemicro.") + m.name;
        json.put(prefix + ".uninstr_s", tBase);
        json.put(prefix + ".entryexit_intrins", rEI);
        json.put(prefix + ".entryexit_generic", rEN);
        json.put(prefix + ".fires", fires);
    }

    auto range = [](const std::vector<double>& v) {
        double lo = v[0], hi2 = v[0];
        for (double x : v) {
            lo = std::min(lo, x);
            hi2 = std::max(hi2, x);
        }
        return std::make_pair(lo, hi2);
    };
    auto [hiLo, hiHi] = range(hi);
    auto [hnLo, hnHi] = range(hn);
    auto [biLo, biHi] = range(bi);
    auto [bnLo, bnHi] = range(bn);
    printf("\nSummary (Section 5.3; paper: hotness 7-134x generic vs "
           "2.2-7.7x intrinsified; branch 1.0-16.6x vs 1.0-2.8x):\n");
    printf("  hotness: generic %.1f-%.1fx (geomean %.1fx), intrinsified "
           "%.1f-%.1fx (geomean %.1fx)\n", hnLo, hnHi, geomean(hn), hiLo,
           hiHi, geomean(hi));
    printf("  branch:  generic %.1f-%.1fx (geomean %.1fx), intrinsified "
           "%.1f-%.1fx (geomean %.1fx)\n", bnLo, bnHi, geomean(bn), biLo,
           biHi, geomean(bi));
    printf("  per-kind intrinsify speedups (generic/intrins, geomean): "
           "count %.2fx, operand %.2fx, fused %.2fx, entry/exit "
           "%.2fx\n",
           geomean(hs), geomean(bs), geomean(fs), geomean(es));

    json.putRange("hotness_intrins", hi);
    json.putRange("hotness_generic", hn);
    json.putRange("branch_intrins", bi);
    json.putRange("branch_generic", bn);
    json.putRange("fused_intrins", fi);
    json.putRange("fused_generic", fn);
    // Per-kind same-run speedups: generic time / intrinsified time.
    // The hotness/fused/entryexit geomeans are floor-gated (>= 1.0)
    // by scripts/check_bench.py; the branch kind rides the baseline
    // comparison only (branch probes are sparse on PolyBench, so its
    // speedup hovers just above 1 and a hard floor would flake).
    json.put("hotness_intrins_speedup.geomean", geomean(hs));
    json.put("branch_intrins_speedup.geomean", geomean(bs));
    json.put("fused_intrins_speedup.geomean", geomean(fs));
    json.put("entryexit_intrins_speedup.geomean", geomean(es));
    const std::string jsonPath = json.write();
    if (!jsonPath.empty()) printf("wrote %s\n", jsonPath.c_str());
    return 0;
}
