/**
 * @file
 * Figure 4: relative execution times of the hotness and branch
 * monitors on the compiled tier, with and without probe
 * intrinsification, on PolyBench/C. Ratios are relative to
 * uninstrumented compiled-tier execution. Also prints the Section 5.3
 * summary ranges (paper: hotness 7-134x -> 2.2-7.7x intrinsified;
 * branch 1.0-16.6x -> 1.0-2.8x).
 */

#include <cstdio>
#include <vector>

#include "harness.h"

using namespace wizpp;
using namespace wizpp::bench;

int
main()
{
    printf("=== Figure 4: JIT probe intrinsification (PolyBench/C) "
           "===\n");
    printf("%-16s %12s | %12s %12s | %12s %12s | %14s\n", "program",
           "uninstr(ms)", "hot-intrins", "hot-generic", "br-intrins",
           "br-generic", "probe fires");

    std::vector<std::string> csv;
    JsonReport json("fig4_jit_intrinsify");
    std::vector<double> hi, hn, bi, bn;
    for (const BenchProgram* p : selectPrograms("polybench")) {
        uint32_t n = p->defaultN;
        auto base = measureWizard(*p, ExecMode::Jit, Tool::None, true, n);
        auto hotI = measureWizard(*p, ExecMode::Jit, Tool::HotnessLocal,
                                  true, n);
        auto hotN = measureWizard(*p, ExecMode::Jit, Tool::HotnessLocal,
                                  false, n);
        auto brI = measureWizard(*p, ExecMode::Jit, Tool::BranchLocal,
                                 true, n);
        auto brN = measureWizard(*p, ExecMode::Jit, Tool::BranchLocal,
                                 false, n);
        double rHI = hotI.seconds / base.seconds;
        double rHN = hotN.seconds / base.seconds;
        double rBI = brI.seconds / base.seconds;
        double rBN = brN.seconds / base.seconds;
        hi.push_back(rHI);
        hn.push_back(rHN);
        bi.push_back(rBI);
        bn.push_back(rBN);
        printf("%-16s %12.2f | %12s %12s | %12s %12s | %14llu\n",
               p->name.c_str(), base.seconds * 1e3, fmtRatio(rHI).c_str(),
               fmtRatio(rHN).c_str(), fmtRatio(rBI).c_str(),
               fmtRatio(rBN).c_str(),
               static_cast<unsigned long long>(hotI.probeFires));
        csv.push_back(p->name + "," + std::to_string(base.seconds) + "," +
                      std::to_string(rHI) + "," + std::to_string(rHN) +
                      "," + std::to_string(rBI) + "," +
                      std::to_string(rBN) + "," +
                      std::to_string(hotI.probeFires));
        json.put(p->name + ".uninstr_s", base.seconds);
        json.put(p->name + ".hotness_intrins", rHI);
        json.put(p->name + ".hotness_generic", rHN);
        json.put(p->name + ".branch_intrins", rBI);
        json.put(p->name + ".branch_generic", rBN);
    }
    writeCsv("fig4.csv",
             "program,uninstr_s,hotness_intrins,hotness_generic,"
             "branch_intrins,branch_generic,hotness_fires",
             csv);

    auto range = [](const std::vector<double>& v) {
        double lo = v[0], hi2 = v[0];
        for (double x : v) {
            lo = std::min(lo, x);
            hi2 = std::max(hi2, x);
        }
        return std::make_pair(lo, hi2);
    };
    auto [hiLo, hiHi] = range(hi);
    auto [hnLo, hnHi] = range(hn);
    auto [biLo, biHi] = range(bi);
    auto [bnLo, bnHi] = range(bn);
    printf("\nSummary (Section 5.3; paper: hotness 7-134x generic vs "
           "2.2-7.7x intrinsified; branch 1.0-16.6x vs 1.0-2.8x):\n");
    printf("  hotness: generic %.1f-%.1fx (geomean %.1fx), intrinsified "
           "%.1f-%.1fx (geomean %.1fx)\n", hnLo, hnHi, geomean(hn), hiLo,
           hiHi, geomean(hi));
    printf("  branch:  generic %.1f-%.1fx (geomean %.1fx), intrinsified "
           "%.1f-%.1fx (geomean %.1fx)\n", bnLo, bnHi, geomean(bn), biLo,
           biHi, geomean(bi));

    json.putRange("hotness_intrins", hi);
    json.putRange("hotness_generic", hn);
    json.putRange("branch_intrins", bi);
    json.putRange("branch_generic", bn);
    const std::string jsonPath = json.write();
    if (!jsonPath.empty()) printf("wrote %s\n", jsonPath.c_str());
    return 0;
}
