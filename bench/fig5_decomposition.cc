/**
 * @file
 * Figure 5: decomposition of instrumented execution time into program
 * time (T_JIT), probe-dispatch overhead (T_PD) and M-code time (T_M),
 * using the paper's empty-probe methodology (Section 5.3):
 *   1. uninstrumented time            ~ T_JIT
 *   2. instrumented, empty probes     ~ T_PD + T_JIT
 *   3. instrumented, real probes      ~ T_PD + T_M + T_JIT
 * The cross-hatched region of the paper's figure — overhead saved by
 * intrinsification — is printed as the "saved" column.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "harness.h"

using namespace wizpp;
using namespace wizpp::bench;

namespace {

struct Decomp
{
    double programPct;
    double dispatchPct;
    double mcodePct;
    double savedPct;  ///< fraction of runtime removed by intrinsification
};

Decomp
decompose(const BenchProgram& p, Tool emptyTool, Tool realTool, uint32_t n)
{
    auto tu = measureWizard(p, ExecMode::Jit, Tool::None, false, n);
    auto te = measureWizard(p, ExecMode::Jit, emptyTool, false, n);
    auto tf = measureWizard(p, ExecMode::Jit, realTool, false, n);
    auto ti = measureWizard(p, ExecMode::Jit, realTool, true, n);

    double total = std::max(tf.seconds, 1e-12);
    double tJit = std::min(tu.seconds, total);
    double tPd = std::clamp(te.seconds - tu.seconds, 0.0, total - tJit);
    double tM = std::clamp(tf.seconds - te.seconds, 0.0,
                           total - tJit - tPd);
    Decomp d;
    d.programPct = 100.0 * tJit / total;
    d.dispatchPct = 100.0 * tPd / total;
    d.mcodePct = 100.0 * tM / total;
    d.savedPct =
        100.0 * std::clamp(tf.seconds - ti.seconds, 0.0, total) / total;
    return d;
}

} // namespace

int
main()
{
    printf("=== Figure 5: execution-time decomposition (PolyBench/C, "
           "compiled tier) ===\n");
    printf("%-16s | %28s | %28s\n", "",
           "hotness (program/dispatch/Mcode)",
           "branch (program/dispatch/Mcode)");
    printf("%-16s | %8s %8s %6s %6s | %8s %8s %6s %6s\n", "program",
           "prog%", "disp%", "M%", "saved%", "prog%", "disp%", "M%",
           "saved%");

    std::vector<std::string> csv;
    JsonReport json("fig5_decomposition");
    for (const BenchProgram* p : selectPrograms("polybench")) {
        uint32_t n = p->defaultN;
        Decomp h = decompose(*p, Tool::HotnessEmpty, Tool::HotnessLocal,
                             n);
        Decomp b = decompose(*p, Tool::BranchEmpty, Tool::BranchLocal, n);
        json.put(p->name + ".hot_dispatch_pct", h.dispatchPct);
        json.put(p->name + ".hot_mcode_pct", h.mcodePct);
        json.put(p->name + ".hot_saved_pct", h.savedPct);
        json.put(p->name + ".br_dispatch_pct", b.dispatchPct);
        json.put(p->name + ".br_mcode_pct", b.mcodePct);
        json.put(p->name + ".br_saved_pct", b.savedPct);
        printf("%-16s | %7.1f%% %7.1f%% %5.1f%% %5.1f%% | %7.1f%% %7.1f%% "
               "%5.1f%% %5.1f%%\n",
               p->name.c_str(), h.programPct, h.dispatchPct, h.mcodePct,
               h.savedPct, b.programPct, b.dispatchPct, b.mcodePct,
               b.savedPct);
        csv.push_back(p->name + "," + std::to_string(h.programPct) + "," +
                      std::to_string(h.dispatchPct) + "," +
                      std::to_string(h.mcodePct) + "," +
                      std::to_string(h.savedPct) + "," +
                      std::to_string(b.programPct) + "," +
                      std::to_string(b.dispatchPct) + "," +
                      std::to_string(b.mcodePct) + "," +
                      std::to_string(b.savedPct));
    }
    writeCsv("fig5.csv",
             "program,hot_prog_pct,hot_dispatch_pct,hot_mcode_pct,"
             "hot_saved_pct,br_prog_pct,br_dispatch_pct,br_mcode_pct,"
             "br_saved_pct",
             csv);
    printf("\nExpected shape (paper Section 5.3): non-intrinsified "
           "hotness is dominated by probe dispatch; non-intrinsified "
           "branch M-code includes FrameAccessor construction; "
           "intrinsification removes most of both.\n");
    const std::string jsonPath = json.write();
    if (!jsonPath.empty()) printf("wrote %s\n", jsonPath.c_str());
    return 0;
}
