/**
 * @file
 * Monitor scalability: attach-time and steady-state probe overhead as
 * the number of instrumented sites grows (the ROADMAP "Monitor
 * scalability" item; no direct paper figure — see docs/BENCHMARKS.md).
 *
 * A synthetic module with >10k instruction sites spread over many
 * worker functions is instrumented at S = 10/100/1k/10k sites and
 * measured three ways:
 *
 *  - attach time: one-by-one insertLocal() vs one insertBatch() call
 *    (the batch pays one epoch bump and one list build per site);
 *  - detach time: one-by-one removeLocal() vs one removeBatch() call
 *    (same asymmetry on the way out — FunctionEntryExit's destructor
 *    is the shipped consumer);
 *  - steady-state per-fire cost in the interpreter (fused single-probe
 *    sites resolve through the dense per-function site index);
 *  - steady-state per-fire cost in the compiled tier (single
 *    CountProbes intrinsify to inline increments; 2-probe fused sites
 *    lower to one pre-resolved fused call);
 *  - tiered-recompile cost of landing probes in a *hot* Tiered
 *    engine: attaching one probe at a time while execution continues
 *    forces one invalidation + one lazy recompile per probe, while
 *    one insertBatch dirties each touched function once and the
 *    engine recompiles it exactly once per batch (docs/JIT.md). The
 *    recompile counts are deterministic and gated by
 *    scripts/check_bench.py.
 *
 * Unlike the fig* benches this intentionally times the steady state
 * only (attach cost is reported separately), because attach scaling is
 * exactly what is under test.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "harness.h"
#include "suites/watbuild.h"
#include "wat/wat.h"

using namespace wizpp;
using namespace wizpp::bench;

namespace {

constexpr uint32_t kWorkers = 110;
constexpr uint32_t kGroups = 25;  // 4 sites per group in each loop body

/** One worker: a counted loop over a chain of add groups. */
std::string
workerWat(uint32_t k)
{
    using namespace wizpp::watbuild;
    std::string body;
    for (uint32_t g = 0; g < kGroups; g++) {
        body += "(local.set $a (i32.add (local.get $a) (i32.const 1)))";
    }
    return "(func (export \"w" + std::to_string(k) +
           "\") (param $n i32) (result i32)"
           "(local $i i32) (local $a i32)" +
           forUp("$i", get("$n"), body) + "(local.get $a))";
}

std::string
moduleWat()
{
    std::string m = "(module ";
    for (uint32_t k = 0; k < kWorkers; k++) m += workerWat(k);
    m += ")";
    return m;
}

std::unique_ptr<Engine>
makeEngineWithConfig(const Module& module, EngineConfig cfg,
                     bool instantiate = true)
{
    auto eng = std::make_unique<Engine>(cfg);
    Module copy = module;
    auto lr = eng->loadModule(std::move(copy));
    if (!lr.ok()) { std::fprintf(stderr, "load failed\n"); std::abort(); }
    if (instantiate) {
        auto ir = eng->instantiate();
        if (!ir.ok()) { std::fprintf(stderr, "inst failed\n"); std::abort(); }
    }
    return eng;
}

std::unique_ptr<Engine>
makeEngine(const Module& module, ExecMode mode, bool instantiate = true)
{
    EngineConfig cfg;
    cfg.mode = mode;
    return makeEngineWithConfig(module, cfg, instantiate);
}

/** Probes for the first @p s instrumentable sites, worker by worker:
    one CountProbe per site plus (probesPerSite - 1) empty fusion
    fillers. */
std::vector<ProbeManager::SiteProbe>
selectSites(Engine& eng, size_t s, int probesPerSite)
{
    std::vector<ProbeManager::SiteProbe> sites;
    size_t distinct = 0;
    for (uint32_t f = 0; f < eng.numFuncs() && distinct < s; f++) {
        for (uint32_t pc : eng.funcState(f).sideTable.instrBoundaries) {
            if (distinct >= s) break;
            distinct++;
            sites.push_back({f, pc, std::make_shared<CountProbe>()});
            for (int extra = 1; extra < probesPerSite; extra++) {
                sites.push_back({f, pc, std::make_shared<EmptyProbe>()});
            }
        }
    }
    return sites;
}

/** Workers touched by the first @p s sites (they hold ~113 sites each). */
uint32_t
workersFor(Engine& eng, size_t s)
{
    size_t seen = 0;
    for (uint32_t f = 0; f < eng.numFuncs(); f++) {
        seen += eng.funcState(f).sideTable.instrBoundaries.size();
        if (seen >= s) return f + 1;
    }
    return eng.numFuncs();
}

/** Shared steady-clock timer (bench/harness.h). */
double
now()
{
    return nowSeconds();
}

struct TieredResult
{
    double seconds = 0;
    uint64_t recompiles = 0;
};

double runWorkers(Engine& eng, uint32_t k, uint32_t n);

/**
 * Attaches the first @p s sites' probes to a fully-warmed Tiered
 * engine (threshold 1, so every touched worker is compiled) and
 * re-runs the touched workers, two ways:
 *
 *  - one at a time, running the probe's worker after each insert —
 *    the "monitor attaches while the program runs" interleaving;
 *    every insert invalidates freshly-recompiled code, so the engine
 *    pays one lazy recompile per probe;
 *  - one insertBatch, then the same per-worker runs — each touched
 *    function is dirtied once and recompiled exactly once per batch.
 *
 * The time includes the worker runs (they are what forces the lazy
 * recompiles), with n=1 so translation, not execution, dominates.
 */
TieredResult
tieredAttach(const Module& module, size_t s, bool batched)
{
    EngineConfig cfg;
    cfg.mode = ExecMode::Tiered;
    cfg.tierUpThreshold = 1;
    auto eng = makeEngineWithConfig(module, cfg);
    uint32_t workers = workersFor(*eng, s);
    runWorkers(*eng, workers, 1);  // warm: every touched worker compiles
    auto sites = selectSites(*eng, s, 1);

    uint64_t compiled0 = eng->stats.functionsCompiled;
    double t0 = now();
    if (batched) {
        eng->probes().insertBatch(sites);
        runWorkers(*eng, workers, 1);
    } else {
        for (auto& sp : sites) {
            uint32_t f = sp.funcIndex;
            eng->probes().insertLocal(f, sp.pc, std::move(sp.probe));
            auto r = eng->callFunction(f, {Value::makeI32(1)});
            if (!r.ok()) {
                std::fprintf(stderr, "tiered run failed\n");
                std::abort();
            }
        }
    }
    TieredResult out;
    out.seconds = now() - t0;
    out.recompiles = eng->stats.functionsCompiled - compiled0;
    return out;
}

/** Calls w0..w<k-1> with n iterations each; returns wall seconds. */
double
runWorkers(Engine& eng, uint32_t k, uint32_t n)
{
    double t0 = now();
    for (uint32_t f = 0; f < k; f++) {
        auto r = eng.callFunction(f, {Value::makeI32(static_cast<int32_t>(n))});
        if (!r.ok()) { std::fprintf(stderr, "run failed\n"); std::abort(); }
    }
    return now() - t0;
}

struct SteadyState
{
    double relTime = 0;    ///< instrumented / uninstrumented
    double perFireNs = 0;  ///< (Ti - Tu) / probe fires
};

/**
 * Steady-state overhead at @p s sites with @p probesPerSite probes
 * fused per site: min-of-reps instrumented and uninstrumented timings
 * over the same worker calls (engines pre-instantiated and warmed, so
 * attach and compile time stay out of the timed region).
 */
SteadyState
steadyState(const Module& module, ExecMode mode, size_t s,
            int probesPerSite, uint32_t n)
{
    auto base = makeEngine(module, mode);
    auto inst = makeEngine(module, mode);
    auto sites = selectSites(*inst, s, probesPerSite);
    // Count fires through the probes' own counters: the manager's
    // localFireCount misses the compiled tier's intrinsified counter
    // increments, which never reach fireSite. Every probe at a site
    // fires equally often, so member fires = counter sum x fan-out.
    std::vector<std::shared_ptr<CountProbe>> counters;
    for (const auto& sp : sites) {
        if (auto c = std::dynamic_pointer_cast<CountProbe>(sp.probe)) {
            counters.push_back(std::move(c));
        }
    }
    auto countSum = [&counters] {
        uint64_t t = 0;
        for (const auto& c : counters) t += c->count;
        return t;
    };
    inst->probes().insertBatch(sites);
    uint32_t k = workersFor(*inst, s);

    runWorkers(*base, k, n);  // warm-up (and tier-up in Jit mode)
    runWorkers(*inst, k, n);
    uint64_t fires0 = countSum();
    double tu = 1e100, ti = 1e100;
    for (int i = 0; i < reps(); i++) {
        tu = std::min(tu, runWorkers(*base, k, n));
        ti = std::min(ti, runWorkers(*inst, k, n));
    }
    uint64_t fires = (countSum() - fires0) *
                     static_cast<uint64_t>(probesPerSite) /
                     static_cast<uint64_t>(reps());

    SteadyState out;
    out.relTime = ti / tu;
    out.perFireNs = fires ? (ti - tu) * 1e9 / static_cast<double>(fires) : 0;
    return out;
}

} // namespace

int
main()
{
    printf("=== Monitor scaling: attach time and per-fire overhead vs "
           "site count ===\n");
    auto parsed = parseWat(moduleWat());
    if (!parsed.ok()) {
        std::fprintf(stderr, "module parse failed\n");
        return 1;
    }
    Module module = parsed.take();

    JsonReport json("monitor_scaling");
    std::vector<std::string> csv;

    {
        auto probe = makeEngine(module, ExecMode::Interpreter, false);
        size_t total = 0;
        for (uint32_t f = 0; f < probe->numFuncs(); f++) {
            total += probe->funcState(f).sideTable.instrBoundaries.size();
        }
        json.put("module.funcs", static_cast<uint64_t>(probe->numFuncs()));
        json.put("module.sites_total", static_cast<uint64_t>(total));
        printf("module: %zu funcs, %zu instrumentable sites\n",
               static_cast<size_t>(probe->numFuncs()), total);
    }

    std::vector<size_t> siteCounts =
        fastMode() ? std::vector<size_t>{10, 1000}
                   : std::vector<size_t>{10, 100, 1000, 10000};
    const uint64_t firesTarget = fastMode() ? 500000 : 2000000;

    printf("%8s | %12s %12s %8s | %12s %12s %8s | %9s %11s | %9s %11s "
           "| %12s %12s\n",
           "sites", "attach-1x(us)", "attach-bat(us)", "speedup",
           "detach-1x(us)", "detach-bat(us)", "speedup",
           "int-rel", "int(ns/fire)", "jit-rel", "jit(ns/fire)",
           "fused2-int", "fused2-jit");

    for (size_t s : siteCounts) {
        // --- Attach time: one-by-one vs batch (pre-instantiation, so
        // no compiled code is being invalidated in either variant).
        // Measured once with a single probe per site and once with 4
        // fused probes per site: one-by-one insertion rebuilds a shared
        // site's list and fusion k times, the batch exactly once. ---
        double tSingle = 1e100, tBatch = 1e100;
        double tSingle4 = 1e100, tBatch4 = 1e100;
        double tDetSingle = 1e100, tDetBatch = 1e100;
        double tDetSingle4 = 1e100, tDetBatch4 = 1e100;
        for (int i = 0; i < reps(); i++) {
            for (int per : {1, 4}) {
                double& sMin = per == 1 ? tSingle : tSingle4;
                double& bMin = per == 1 ? tBatch : tBatch4;
                double& dsMin = per == 1 ? tDetSingle : tDetSingle4;
                double& dbMin = per == 1 ? tDetBatch : tDetBatch4;
                {
                    auto eng =
                        makeEngine(module, ExecMode::Interpreter, false);
                    auto sites = selectSites(*eng, s, per);
                    // Keep (site, probe) pairs for the detach pass:
                    // insertBatch consumes the span's probe refs.
                    auto installed = sites;
                    double t0 = now();
                    for (auto& sp : sites) {
                        eng->probes().insertLocal(sp.funcIndex, sp.pc,
                                                  std::move(sp.probe));
                    }
                    sMin = std::min(sMin, now() - t0);
                    // One-by-one detach: at shared sites each removal
                    // rebuilds the member list and fused entry again.
                    t0 = now();
                    for (const auto& sp : installed) {
                        eng->probes().removeLocal(sp.funcIndex, sp.pc,
                                                  sp.probe.get());
                    }
                    dsMin = std::min(dsMin, now() - t0);
                }
                {
                    auto eng =
                        makeEngine(module, ExecMode::Interpreter, false);
                    auto sites = selectSites(*eng, s, per);
                    auto installed = sites;
                    double t0 = now();
                    eng->probes().insertBatch(sites);
                    bMin = std::min(bMin, now() - t0);
                    t0 = now();
                    eng->probes().removeBatch(installed);
                    dbMin = std::min(dbMin, now() - t0);
                }
            }
        }

        // --- Steady state: single CountProbe per site (intrinsifiable
        // in the compiled tier) and 2-probe fused sites (one virtual
        // call per site; one pre-resolved call in the compiled tier). ---
        uint32_t n = static_cast<uint32_t>(
            std::max<uint64_t>(1, firesTarget / s));
        SteadyState i1 = steadyState(module, ExecMode::Interpreter, s, 1, n);
        SteadyState j1 = steadyState(module, ExecMode::Jit, s, 1, n);
        SteadyState i2 = steadyState(module, ExecMode::Interpreter, s, 2, n);
        SteadyState j2 = steadyState(module, ExecMode::Jit, s, 2, n);

        double speedup = tBatch > 0 ? tSingle / tBatch : 0;
        double detSpeedup = tDetBatch > 0 ? tDetSingle / tDetBatch : 0;
        printf("%8zu | %12.1f %12.1f %8.2f | %12.1f %12.1f %8.2f "
               "| %9.2f %11.2f | %9.2f %11.2f | %12.2f %12.2f\n",
               s, tSingle * 1e6, tBatch * 1e6, speedup, tDetSingle * 1e6,
               tDetBatch * 1e6, detSpeedup, i1.relTime, i1.perFireNs,
               j1.relTime, j1.perFireNs, i2.perFireNs, j2.perFireNs);

        std::string key = std::to_string(s);
        json.put("attach_single_us." + key, tSingle * 1e6);
        json.put("attach_batch_us." + key, tBatch * 1e6);
        json.put("attach_speedup." + key, speedup);
        json.put("detach_single_us." + key, tDetSingle * 1e6);
        json.put("detach_batch_us." + key, tDetBatch * 1e6);
        json.put("detach_speedup." + key, detSpeedup);
        json.put("detach4_single_us." + key, tDetSingle4 * 1e6);
        json.put("detach4_batch_us." + key, tDetBatch4 * 1e6);
        json.put("detach4_speedup." + key,
                 tDetBatch4 > 0 ? tDetSingle4 / tDetBatch4 : 0);
        json.put("attach4_single_us." + key, tSingle4 * 1e6);
        json.put("attach4_batch_us." + key, tBatch4 * 1e6);
        json.put("attach4_speedup." + key,
                 tBatch4 > 0 ? tSingle4 / tBatch4 : 0);
        json.put("int.rel_time." + key, i1.relTime);
        json.put("int.perfire_ns." + key, i1.perFireNs);
        json.put("jit.rel_time." + key, j1.relTime);
        json.put("jit.perfire_ns." + key, j1.perFireNs);
        json.put("int.fused2_perfire_ns." + key, i2.perFireNs);
        json.put("jit.fused2_perfire_ns." + key, j2.perFireNs);
        csv.push_back(key + "," + std::to_string(tSingle * 1e6) + "," +
                      std::to_string(tBatch * 1e6) + "," +
                      std::to_string(tDetSingle * 1e6) + "," +
                      std::to_string(tDetBatch * 1e6) + "," +
                      std::to_string(i1.relTime) + "," +
                      std::to_string(i1.perFireNs) + "," +
                      std::to_string(j1.relTime) + "," +
                      std::to_string(j1.perFireNs) + "," +
                      std::to_string(i2.perFireNs) + "," +
                      std::to_string(j2.perFireNs));
    }

    // --- Tiered recompile batching: probes landing in a hot engine.
    // Recompile counts are structural (single = one per probe, batch =
    // one per touched function) and gated as deterministic metrics. ---
    printf("\n--- tiered recompile batching (hot engine, threshold 1) "
           "---\n");
    printf("%8s | %14s %14s | %12s %12s | %9s\n", "sites",
           "single(us)", "batch(us)", "recomp-1x", "recomp-bat",
           "speedup");
    std::vector<std::string> tieredCsv;
    for (size_t s : siteCounts) {
        TieredResult single, batch;
        double tSingle = 1e100, tBatch = 1e100;
        for (int i = 0; i < reps(); i++) {
            single = tieredAttach(module, s, false);
            tSingle = std::min(tSingle, single.seconds);
            batch = tieredAttach(module, s, true);
            tBatch = std::min(tBatch, batch.seconds);
        }
        double speedup =
            batch.recompiles
                ? static_cast<double>(single.recompiles) /
                      static_cast<double>(batch.recompiles)
                : 0;
        printf("%8zu | %14.1f %14.1f | %12llu %12llu | %8.1fx\n", s,
               tSingle * 1e6, tBatch * 1e6,
               static_cast<unsigned long long>(single.recompiles),
               static_cast<unsigned long long>(batch.recompiles),
               speedup);
        std::string key = std::to_string(s);
        json.put("tiered.attach_single_us." + key, tSingle * 1e6);
        json.put("tiered.attach_batch_us." + key, tBatch * 1e6);
        json.put("tiered.recompiles_single." + key, single.recompiles);
        json.put("tiered.recompiles_batch." + key, batch.recompiles);
        json.put("tiered.recompile_speedup." + key, speedup);
        tieredCsv.push_back(key + "," + std::to_string(tSingle * 1e6) +
                            "," + std::to_string(tBatch * 1e6) + "," +
                            std::to_string(single.recompiles) + "," +
                            std::to_string(batch.recompiles));
    }
    writeCsv("monitor_scaling_tiered.csv",
             "sites,attach_single_us,attach_batch_us,recompiles_single,"
             "recompiles_batch",
             tieredCsv);

    writeCsv("monitor_scaling.csv",
             "sites,attach_single_us,attach_batch_us,detach_single_us,"
             "detach_batch_us,int_rel,"
             "int_perfire_ns,jit_rel,jit_perfire_ns,int_fused2_perfire_ns,"
             "jit_fused2_perfire_ns",
             csv);
    const std::string jsonPath = json.write();
    if (!jsonPath.empty()) printf("wrote %s\n", jsonPath.c_str());
    return 0;
}
