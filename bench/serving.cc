/**
 * @file
 * Serving-runtime benchmark: one ValidatedModule shared by an
 * InstancePool fleet, thousands of short-lived invocations through
 * the work-stealing executor, instrumented vs not, at 1/4/16 worker
 * threads (docs/SERVING.md, docs/BENCHMARKS.md).
 *
 * Acceptance invariants held by scripts/check_bench.py, all same-run
 * (cross-machine comparisons of threaded latency are noise):
 *
 *  - --serving-p50-ceiling: with the steady-state serving
 *    instrumentation attached (one CountProbe per function entry),
 *    p50 invocation latency stays <= 1.10x uninstrumented at every
 *    thread count (`serve.t<N>.instr_p50_ratio`).
 *  - --serving-scaling-floor: uninstrumented invocations/sec scale
 *    >= 3.5x from 1 to 16 workers (`serve.scaling_t1_t16`) — gated
 *    only when the recorded `serve.hw_threads` is >= 16, so a small
 *    CI box reports the number without flaking on it.
 *  - --serving-pause-ceiling: batch-attaching a CountProbe at every
 *    instruction boundary (>= 10k sites) against 16 busy workers
 *    keeps the worst per-worker quiescent-point pause below the
 *    uninstrumented t16 p99 (`serve.pause.vs_p99` < 1.0).
 *
 * Latencies are exact per-invocation samples (per-worker vectors, no
 * histogram bucketing) so the p50 ratio is meaningful at 1.10x. Fire
 * counts from a fixed-work phase are deterministic and gated
 * symmetrically. Emits BENCH_serving.json and results/serving.csv.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "harness.h"
#include "monitors/monitor.h"
#include "serve/pool.h"
#include "wasm/validator.h"
#include "wat/wat.h"

using namespace wizpp;
using namespace wizpp::bench;

namespace {

constexpr int kFuncs = 64;
constexpr int kRoundsPerFunc = 26;  // ~160 instrs/func -> >=10k sites

/**
 * The synthetic serving module: kFuncs straight-line arithmetic
 * functions (the >= 10k probe sites) plus an exported "run" whose
 * parameter scales dynamic work, so service time is calibrated at
 * runtime without changing the module's static shape.
 */
std::string
makeServingWat()
{
    std::ostringstream w;
    w << "(module\n";
    for (int i = 0; i < kFuncs; i++) {
        w << "  (func $w" << i << " (param $x i32) (result i32)\n"
          << "    (local $a i32)\n"
          << "    (local.set $a (local.get $x))\n";
        for (int k = 0; k < kRoundsPerFunc; k++) {
            w << "    (local.set $a (i32.add (i32.mul (local.get $a)"
              << " (i32.const 3)) (i32.const " << (i + k + 1)
              << ")))\n";
        }
        w << "    (local.get $a))\n";
    }
    w << "  (func (export \"run\") (param $r i32) (result i32)\n"
      << "    (local $i i32) (local $a i32)\n"
      << "    (block $x (loop $t\n"
      << "      (br_if $x (i32.ge_u (local.get $i) (local.get $r)))\n";
    for (int i = 0; i < kFuncs; i++) {
        w << "      (local.set $a (call $w" << i
          << " (local.get $a)))\n";
    }
    w << "      (local.set $i (i32.add (local.get $i) (i32.const 1)))\n"
      << "      (br $t)))\n"
      << "    (local.get $a))\n"
      << ")";
    return w.str();
}

/** One CountProbe at every function's first instruction boundary —
    the steady-state serving instrumentation (--serve-instrument=entry). */
std::vector<ProbeManager::SiteProbe>
entryPlan(Engine& eng)
{
    std::vector<ProbeManager::SiteProbe> probes;
    for (uint32_t fi = 0; fi < eng.numFuncs(); fi++) {
        FuncState& fs = eng.funcState(fi);
        if (fs.decl->imported || fs.sideTable.instrBoundaries.empty())
            continue;
        probes.push_back({fi, fs.sideTable.instrBoundaries.front(),
                          std::make_shared<CountProbe>()});
    }
    return probes;
}

/** A CountProbe at *every* instruction boundary: the 10k-site batch. */
std::vector<ProbeManager::SiteProbe>
everySitePlan(Engine& eng)
{
    std::vector<ProbeManager::SiteProbe> probes;
    for (uint32_t fi = 0; fi < eng.numFuncs(); fi++) {
        FuncState& fs = eng.funcState(fi);
        if (fs.decl->imported) continue;
        for (uint32_t pc : fs.sideTable.instrBoundaries) {
            probes.push_back({fi, pc, std::make_shared<CountProbe>()});
        }
    }
    return probes;
}

struct LoadRun
{
    double wallS = 0;
    std::vector<uint64_t> latUs;  ///< exact, merged across workers
};

uint64_t
quantileUs(std::vector<uint64_t>& xs, double q)
{
    if (xs.empty()) return 0;
    std::sort(xs.begin(), xs.end());
    size_t i = (size_t)(q * (double)(xs.size() - 1));
    return xs[i];
}

std::atomic<uint64_t> gTraps{0};

/**
 * Drives @p requests invocations through the pool's executor,
 * recording the exact service time of each into a per-worker vector
 * (owner-thread writes only; merged after drain). Submitting directly
 * keeps the timed region to the call itself — queueing delay is
 * reported via wall-clock throughput instead.
 */
LoadRun
runLoad(serve::InstancePool& pool, uint32_t f, int requests, int r)
{
    uint32_t workers = pool.workers();
    std::vector<std::vector<uint64_t>> lat(workers);
    for (auto& v : lat) v.reserve((size_t)requests);
    std::vector<Value> args{Value::makeI32(r)};

    double t0 = nowSeconds();
    for (int i = 0; i < requests; i++) {
        pool.executor().submit([&pool, &lat, &args, f](uint32_t w) {
            auto s = std::chrono::steady_clock::now();
            auto res = pool.workerEngine(w).callFunction(f, args);
            auto us = std::chrono::duration_cast<
                          std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - s)
                          .count();
            lat[w].push_back((uint64_t)us);
            if (!res.ok())
                gTraps.fetch_add(1, std::memory_order_relaxed);
        });
    }
    pool.executor().drain();

    LoadRun out;
    out.wallS = nowSeconds() - t0;
    for (auto& v : lat)
        out.latUs.insert(out.latUs.end(), v.begin(), v.end());
    return out;
}

} // namespace

int
main()
{
    const std::string wat = makeServingWat();
    auto parsed = parseWat(wat);
    if (!parsed.ok()) {
        std::cerr << "serving: module parse failed: "
                  << parsed.error().toString() << "\n";
        return 1;
    }
    auto vr = ValidatedModule::create(parsed.take());
    if (!vr.ok()) {
        std::cerr << "serving: validation failed\n";
        return 1;
    }
    std::shared_ptr<const ValidatedModule> vm = vr.take();
    EngineConfig cfg;

    // Module shape (deterministic: fixed generator).
    uint64_t sites = 0, funcs = 0;
    {
        Engine eng(cfg);
        (void)eng.loadShared(vm);
        for (uint32_t fi = 0; fi < eng.numFuncs(); fi++) {
            FuncState& fs = eng.funcState(fi);
            if (fs.decl->imported) continue;
            funcs++;
            sites += fs.sideTable.instrBoundaries.size();
        }
    }
    if (sites < 10000) {
        std::cerr << "serving: module too small (" << sites
                  << " sites, need >= 10000)\n";
        return 1;
    }

    // Calibrate the per-request loop count for a mid-single-digit-ms
    // service time: long enough that a 10k-site attach pause can beat
    // p99, short enough that thousands of requests stay cheap.
    int r = 16;
    {
        Engine eng(cfg);
        (void)eng.loadShared(vm);
        (void)eng.instantiate();
        // Warm once (JIT compile), then time.
        (void)eng.callExport("run", {Value::makeI32(4)});
        double best = 1e9;
        for (int i = 0; i < reps(); i++) {
            double t0 = nowSeconds();
            (void)eng.callExport("run", {Value::makeI32(r)});
            best = std::min(best, nowSeconds() - t0);
        }
        const double targetS = 6e-3;
        double scaled = (double)r * targetS / std::max(best, 1e-7);
        r = (int)std::min(std::max(scaled, 8.0), 65536.0);
    }

    const bool fast = fastMode();
    const int reqPerWorker = fast ? 24 : 64;

    JsonReport report("serving");
    report.put("serve.hw_threads",
               (uint64_t)std::thread::hardware_concurrency());
    report.put("serve.funcs", funcs);
    report.put("serve.sites", sites);
    report.put("serve.calibrated_r", (uint64_t)r);

    std::vector<std::string> csv;
    std::cout << "=== serving (" << funcs << " funcs, " << sites
              << " sites, r=" << r << ", reps=" << reps()
              << ") ===\n";

    double t1InvS = 0, t16InvS = 0;
    uint64_t t16BaseP99 = 0;
    for (uint32_t threads : {1u, 4u, 16u}) {
        serve::InstancePool pool(vm, cfg, serve::PoolOptions{threads});
        if (!pool.start().ok()) {
            std::cerr << "serving: pool start failed\n";
            return 1;
        }
        int32_t f = pool.findFunc("run");
        if (f < 0) return 1;
        const int requests = reqPerWorker * (int)threads;

        // Uninstrumented, then the same load with entry probes
        // attached fleet-wide; min-of-reps on p50 and throughput.
        LoadRun base, instr;
        for (int i = 0; i < reps(); i++) {
            LoadRun x = runLoad(pool, (uint32_t)f, requests, r);
            if (i == 0 || x.wallS < base.wallS) base = std::move(x);
        }
        uint64_t batch = pool.attachEach(
            [](Engine& eng, uint32_t) { return entryPlan(eng); });
        for (int i = 0; i < reps(); i++) {
            LoadRun x = runLoad(pool, (uint32_t)f, requests, r);
            if (i == 0 || x.wallS < instr.wallS) instr = std::move(x);
        }
        pool.detachBatch(batch);
        pool.stop();

        double baseInvS = (double)requests / base.wallS;
        double instrInvS = (double)requests / instr.wallS;
        uint64_t bp50 = quantileUs(base.latUs, 0.50);
        uint64_t bp99 = quantileUs(base.latUs, 0.99);
        uint64_t ip50 = quantileUs(instr.latUs, 0.50);
        uint64_t ip99 = quantileUs(instr.latUs, 0.99);
        double p50Ratio = bp50 ? (double)ip50 / (double)bp50 : 1.0;

        std::string key = "serve.t" + std::to_string(threads);
        report.put(key + ".base_inv_s", baseInvS);
        report.put(key + ".base_p50_us", bp50);
        report.put(key + ".base_p99_us", bp99);
        report.put(key + ".instr_inv_s", instrInvS);
        report.put(key + ".instr_p50_us", ip50);
        report.put(key + ".instr_p99_us", ip99);
        report.put(key + ".instr_p50_ratio", p50Ratio);
        report.put(key + ".steals", pool.executor().steals());
        csv.push_back(std::to_string(threads) + "," +
                      std::to_string(baseInvS) + "," +
                      std::to_string(bp50) + "," +
                      std::to_string(bp99) + "," +
                      std::to_string(instrInvS) + "," +
                      std::to_string(ip50) + "," +
                      std::to_string(ip99) + "," +
                      std::to_string(p50Ratio));
        std::cout << "  t" << threads << ": " << (uint64_t)baseInvS
                  << " inv/s base (p50=" << bp50 << "us p99=" << bp99
                  << "us), " << (uint64_t)instrInvS
                  << " inv/s instrumented (p50=" << ip50
                  << "us), p50 ratio " << fmtRatio(p50Ratio) << "\n";

        if (threads == 1) t1InvS = baseInvS;
        if (threads == 16) {
            t16InvS = baseInvS;
            t16BaseP99 = bp99;
        }
    }
    report.put("serve.scaling_t1_t16", t16InvS / t1InvS);
    std::cout << "  scaling 1->16 workers: "
              << fmtRatio(t16InvS / t1InvS) << " ("
              << std::thread::hardware_concurrency()
              << " hw threads)\n";

    // Deterministic fire counts: fixed work (r=8, 64 requests), entry
    // probes attached before any traffic. Independent of host, thread
    // interleaving and the calibrated r.
    {
        constexpr int kDetR = 8, kDetReq = 64;
        serve::InstancePool pool(vm, cfg, serve::PoolOptions{4});
        if (!pool.start().ok()) return 1;
        int32_t f = pool.findFunc("run");
        uint64_t batch = pool.attachEach(
            [](Engine& eng, uint32_t) { return entryPlan(eng); });
        for (int i = 0; i < kDetReq; i++) {
            pool.submit((uint32_t)f, {Value::makeI32(kDetR)});
        }
        pool.drain();
        uint64_t fires = 0;
        for (uint32_t w = 0; w < pool.workers(); w++) {
            for (const auto& sp : pool.attachedProbes(batch, w)) {
                fires +=
                    static_cast<CountProbe*>(sp.probe.get())->count;
            }
        }
        pool.detachBatch(batch);
        pool.stop();
        // Every request: one entry fire + kDetR fires per worker func.
        uint64_t perInvocation = 1 + (uint64_t)kFuncs * kDetR;
        report.put("serve.fires.per_invocation", perInvocation);
        report.put("serve.fires.total", fires);
        std::cout << "  fires: " << fires << " total ("
                  << perInvocation << "/invocation x " << kDetReq
                  << " requests)\n";
        if (fires != perInvocation * kDetReq) {
            std::cerr << "serving: nondeterministic fire count\n";
            return 1;
        }
    }

    // Bounded-pause phase: batch-attach the full >= 10k-site plan
    // against 16 busy workers. The worst per-worker quiescent-point
    // pause (probe-plan build + insertBatch on its own engine) must
    // stay below an uninstrumented invocation's p99.
    {
        serve::InstancePool pool(vm, cfg, serve::PoolOptions{16});
        if (!pool.start().ok()) return 1;
        int32_t f = pool.findFunc("run");
        const int phaseReq = fast ? 96 : 192;
        const int phaseR = std::max(r / 2, 8);
        for (int i = 0; i < phaseReq; i++) {
            pool.submit((uint32_t)f, {Value::makeI32(phaseR)});
        }
        // Mid-flight: the queue is deep on every worker.
        double t0 = nowSeconds();
        uint64_t batch = pool.attachEach(
            [](Engine& eng, uint32_t) { return everySitePlan(eng); });
        double wallUs = (nowSeconds() - t0) * 1e6;
        uint64_t maxPauseUs = 0;
        for (uint32_t w = 0; w < pool.workers(); w++) {
            maxPauseUs = std::max(
                maxPauseUs,
                pool.workerStats(w).applyPauseMaxUs.load());
        }
        pool.detachBatch(batch);
        pool.drain();
        pool.stop();
        double vsP99 =
            t16BaseP99 ? (double)maxPauseUs / (double)t16BaseP99 : 0;
        report.put("serve.pause.attach_sites", sites);
        report.put("serve.pause.max_worker_us", maxPauseUs);
        report.put("serve.pause.writer_wall_us", wallUs);
        report.put("serve.pause.vs_p99", vsP99);
        std::cout << "  10k-site attach vs 16 busy workers: max "
                     "worker pause "
                  << maxPauseUs << "us, writer wall "
                  << (uint64_t)wallUs << "us, pause/p99 "
                  << fmtRatio(vsP99) << "\n";
    }

    if (gTraps.load() != 0) {
        std::cerr << "serving: " << gTraps.load() << " trap(s)\n";
        return 1;
    }

    std::string path = report.write();
    writeCsv("serving.csv",
             "threads,base_inv_s,base_p50_us,base_p99_us,instr_inv_s,"
             "instr_p50_us,instr_p99_us,instr_p50_ratio",
             csv);
    if (!path.empty()) std::cout << "wrote " << path << "\n";
    return 0;
}
