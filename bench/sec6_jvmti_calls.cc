/**
 * @file
 * Section 6 comparison: a MethodEntry agent through a JVMTI-like
 * generic event pipe versus the probe-based Calls monitor, on the
 * Richards benchmark. The paper measures 50-100x overhead for JVMTI on
 * the JVM versus 2.5-3x for Wizard's Calls monitor; the reproduced
 * claim is the *shape*: the generic event pipe is an order of
 * magnitude more expensive than direct probes.
 *
 * Following the paper's appendix methodology, base engine startup time
 * is subtracted using a zero-loop run: relative execution time is
 * (Ti - Tbi) / (Tu - Tbu).
 */

#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "harness.h"
#include "jvmti/jvmti.h"
#include "monitors/monitors.h"
#include "wat/wat.h"

using namespace wizpp;
using namespace wizpp::bench;

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

enum class Agent { None, Calls, Jvmti };

double
timeRichards(const Module& m, Agent agent, uint32_t n)
{
    double best = 0;
    for (int i = 0; i < reps(); i++) {
        double t0 = now();
        EngineConfig cfg;
        cfg.mode = ExecMode::Jit;
        Engine eng(cfg);
        if (!eng.loadModule(m).ok()) return -1;
        std::unique_ptr<CallsMonitor> calls;
        std::unique_ptr<MethodEntryAgent> jvmti;
        if (agent == Agent::Calls) {
            calls = std::make_unique<CallsMonitor>();
            eng.attachMonitor(calls.get());
        }
        if (!eng.instantiate().ok()) return -1;
        if (agent == Agent::Jvmti) {
            jvmti = std::make_unique<MethodEntryAgent>(eng);
        }
        auto r = eng.callExport("run", {Value::makeI32(n)});
        if (!r.ok()) return -1;
        double dt = now() - t0;
        if (i == 0 || dt < best) best = dt;
    }
    return best;
}

} // namespace

int
main()
{
    auto pm = parseWat(richardsProgram().wat);
    if (!pm.ok()) {
        fprintf(stderr, "richards parse failed\n");
        return 1;
    }
    Module m = pm.take();

    printf("=== Section 6: JVMTI-like agent vs probe-based Calls "
           "monitor (Richards) ===\n");
    printf("%-8s %14s %14s %14s | %12s %12s\n", "loops", "uninstr(ms)",
           "calls(ms)", "jvmti(ms)", "calls rel", "jvmti rel");

    // Baseline startup (zero-loop) runs, per the paper's appendix.
    double bu = timeRichards(m, Agent::None, 0);
    double bc = timeRichards(m, Agent::Calls, 0);
    double bj = timeRichards(m, Agent::Jvmti, 0);

    std::vector<std::string> csv;
    JsonReport json("sec6_jvmti_calls");
    for (uint32_t n : {4u, 8u, 16u, 32u}) {
        double tu = timeRichards(m, Agent::None, n);
        double tc = timeRichards(m, Agent::Calls, n);
        double tj = timeRichards(m, Agent::Jvmti, n);
        double relCalls = (tc - bc) / (tu - bu);
        double relJvmti = (tj - bj) / (tu - bu);
        printf("%-8u %14.2f %14.2f %14.2f | %12s %12s\n", n, tu * 1e3,
               tc * 1e3, tj * 1e3, fmtRatio(relCalls).c_str(),
               fmtRatio(relJvmti).c_str());
        csv.push_back(std::to_string(n) + "," + std::to_string(tu) + "," +
                      std::to_string(tc) + "," + std::to_string(tj) +
                      "," + std::to_string(relCalls) + "," +
                      std::to_string(relJvmti));
        json.put("loops" + std::to_string(n) + ".calls_rel", relCalls);
        json.put("loops" + std::to_string(n) + ".jvmti_rel", relJvmti);
    }
    writeCsv("sec6_jvmti.csv",
             "loops,uninstr_s,calls_s,jvmti_s,calls_rel,jvmti_rel", csv);
    printf("\nExpected shape (paper Section 6: JVMTI 50-100x vs Wizard "
           "Calls 2.5-3x): the generic event pipe costs a large factor "
           "more than direct probes.\n");
    const std::string jsonPath = json.write();
    if (!jsonPath.empty()) printf("wrote %s\n", jsonPath.c_str());
    return 0;
}
