/**
 * @file
 * Microbenchmarks (google-benchmark) backing the paper's Section 4
 * claims that are not in a numbered figure:
 *
 *  - zero overhead when instrumentation is not in use: execution time
 *    is unchanged after inserting and then removing probes (bytecode
 *    overwriting restores the original bytes; dispatch-table switching
 *    restores the normal table);
 *  - probe insertion/removal is a cheap constant-time operation;
 *  - dispatch-table switching (global probe enable/disable) is cheap
 *    and does not discard compiled code;
 *  - FrameAccessor objects are lazily materialized.
 */

#include <benchmark/benchmark.h>

#include "engine/engine.h"
#include "probes/frameaccessor.h"
#include "wat/wat.h"

namespace wizpp {
namespace {

const char* kLoopWat = R"((module
  (func (export "f") (param $n i32) (result i32)
    (local $i i32) (local $acc i32)
    (block $x (loop $t
      (br_if $x (i32.ge_u (local.get $i) (local.get $n)))
      (local.set $acc (i32.add (local.get $acc)
                               (i32.mul (local.get $i) (i32.const 3))))
      (local.set $i (i32.add (local.get $i) (i32.const 1)))
      (br $t)))
    (local.get $acc))
))";

std::unique_ptr<Engine>
freshEngine(ExecMode mode)
{
    EngineConfig cfg;
    cfg.mode = mode;
    auto eng = std::make_unique<Engine>(cfg);
    auto m = parseWat(kLoopWat);
    if (!m.ok()) std::abort();
    if (!eng->loadModule(m.take()).ok()) std::abort();
    if (!eng->instantiate().ok()) std::abort();
    return eng;
}

void
BM_UninstrumentedInterpreter(benchmark::State& state)
{
    auto eng = freshEngine(ExecMode::Interpreter);
    for (auto _ : state) {
        auto r = eng->callFunction(0, {Value::makeI32(10000)});
        benchmark::DoNotOptimize(r.value()[0].bits);
    }
}
BENCHMARK(BM_UninstrumentedInterpreter);

void
BM_InterpreterAfterProbeInsertRemove(benchmark::State& state)
{
    // Must match BM_UninstrumentedInterpreter: removal restores the
    // original bytecode, so the disabled-instrumentation cost is zero.
    auto eng = freshEngine(ExecMode::Interpreter);
    auto probe = std::make_shared<CountProbe>();
    uint32_t pc = eng->funcState(0).sideTable.instrBoundaries[3];
    eng->probes().insertLocal(0, pc, probe);
    eng->probes().removeLocal(0, pc, probe.get());
    for (auto _ : state) {
        auto r = eng->callFunction(0, {Value::makeI32(10000)});
        benchmark::DoNotOptimize(r.value()[0].bits);
    }
}
BENCHMARK(BM_InterpreterAfterProbeInsertRemove);

void
BM_UninstrumentedJit(benchmark::State& state)
{
    auto eng = freshEngine(ExecMode::Jit);
    for (auto _ : state) {
        auto r = eng->callFunction(0, {Value::makeI32(10000)});
        benchmark::DoNotOptimize(r.value()[0].bits);
    }
}
BENCHMARK(BM_UninstrumentedJit);

void
BM_JitAfterGlobalProbeEnableDisable(benchmark::State& state)
{
    // Global probe enable/disable must leave compiled-tier performance
    // untouched (dispatch-table switching; no code discarded).
    auto eng = freshEngine(ExecMode::Jit);
    auto probe = std::make_shared<CountProbe>();
    eng->probes().insertGlobal(probe);
    eng->probes().removeGlobal(probe.get());
    for (auto _ : state) {
        auto r = eng->callFunction(0, {Value::makeI32(10000)});
        benchmark::DoNotOptimize(r.value()[0].bits);
    }
}
BENCHMARK(BM_JitAfterGlobalProbeEnableDisable);

void
BM_ProbeInsertRemovePair(benchmark::State& state)
{
    auto eng = freshEngine(ExecMode::Interpreter);
    auto probe = std::make_shared<CountProbe>();
    uint32_t pc = eng->funcState(0).sideTable.instrBoundaries[3];
    for (auto _ : state) {
        eng->probes().insertLocal(0, pc, probe);
        eng->probes().removeLocal(0, pc, probe.get());
    }
}
BENCHMARK(BM_ProbeInsertRemovePair);

void
BM_DispatchTableSwitchPair(benchmark::State& state)
{
    auto eng = freshEngine(ExecMode::Interpreter);
    auto probe = std::make_shared<CountProbe>();
    for (auto _ : state) {
        eng->probes().insertGlobal(probe);
        eng->probes().removeGlobal(probe.get());
    }
}
BENCHMARK(BM_DispatchTableSwitchPair);

void
BM_IntrinsifiedCountProbeLoop(benchmark::State& state)
{
    auto eng = freshEngine(ExecMode::Jit);
    auto probe = std::make_shared<CountProbe>();
    uint32_t pc = eng->funcState(0).sideTable.instrBoundaries[3];
    eng->probes().insertLocal(0, pc, probe);
    for (auto _ : state) {
        auto r = eng->callFunction(0, {Value::makeI32(10000)});
        benchmark::DoNotOptimize(r.value()[0].bits);
    }
    state.counters["fires"] = static_cast<double>(probe->count);
}
BENCHMARK(BM_IntrinsifiedCountProbeLoop);

void
BM_GenericProbeLoop(benchmark::State& state)
{
    EngineConfig cfg;
    cfg.mode = ExecMode::Jit;
    cfg.intrinsifyCountProbe = false;
    auto eng = std::make_unique<Engine>(cfg);
    auto m = parseWat(kLoopWat);
    if (!eng->loadModule(m.take()).ok()) std::abort();
    if (!eng->instantiate().ok()) std::abort();
    auto probe = std::make_shared<CountProbe>();
    uint32_t pc = eng->funcState(0).sideTable.instrBoundaries[3];
    eng->probes().insertLocal(0, pc, probe);
    for (auto _ : state) {
        auto r = eng->callFunction(0, {Value::makeI32(10000)});
        benchmark::DoNotOptimize(r.value()[0].bits);
    }
}
BENCHMARK(BM_GenericProbeLoop);

void
BM_FrameAccessorMaterialization(benchmark::State& state)
{
    auto eng = freshEngine(ExecMode::Interpreter);
    uint32_t pc = eng->funcState(0).sideTable.instrBoundaries[0];
    std::shared_ptr<FrameAccessor> acc;
    eng->probes().insertLocal(0, pc, makeProbe([&](ProbeContext& ctx) {
        acc = ctx.accessor();
        benchmark::DoNotOptimize(acc->getLocal(0).bits);
    }));
    for (auto _ : state) {
        auto r = eng->callFunction(0, {Value::makeI32(4)});
        benchmark::DoNotOptimize(r.value()[0].bits);
    }
}
BENCHMARK(BM_FrameAccessorMaterialization);

} // namespace
} // namespace wizpp

BENCHMARK_MAIN();
