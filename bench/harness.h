/**
 * @file
 * Shared benchmark harness (paper Section 5.1 methodology).
 *
 * Every measurement is the total wall-clock time of loading,
 * validating, instrumenting, instantiating and executing a program —
 * "total execution time of the entire program, including engine
 * startup and program load". Static-instrumentation baselines include
 * their transformation passes in the timed region (they are part of
 * program load for those tools).
 *
 * Metrics follow the paper: given instrumented time Ti and
 * uninstrumented time Tu, absolute overhead is Ti - Tu and relative
 * execution time is Ti / Tu.
 *
 * Environment knobs:
 *   WIZPP_BENCH_REPS  repetitions per measurement (default 2; min).
 *   WIZPP_BENCH_FAST  if set, run a representative subset per suite.
 */

#ifndef WIZPP_BENCH_HARNESS_H
#define WIZPP_BENCH_HARNESS_H

#include <cstdint>
#include <string>
#include <vector>

#include "dbt/dbt.h"
#include "engine/engine.h"
#include "rewriter/rewriter.h"
#include "suites/suites.h"
#include "wasabi/wasabi.h"

namespace wizpp::bench {

/** What instrumentation runs during a Wizard-engine measurement. */
enum class Tool : uint8_t {
    None,            ///< uninstrumented baseline
    HotnessLocal,    ///< CountProbe at every instruction
    HotnessGlobal,   ///< one global probe + M-state lookup
    BranchLocal,     ///< OperandProbe at every branch
    BranchGlobal,    ///< one global probe + branch-site lookup
    HotnessEmpty,    ///< empty probes at every instruction (T_PD)
    BranchEmpty,     ///< empty operand probes at branches (T_PD)
    FusedPair,       ///< count+empty probes fused at every instruction
    EntryExit,       ///< FunctionEntryExit hooks on every function
};

/** One measurement outcome. */
struct Measurement
{
    double seconds = 0;
    uint64_t probeFires = 0;
};

/** Repetitions (min-of-k) from WIZPP_BENCH_REPS. */
int reps();

/** Monotonic wall-clock seconds (steady_clock), for local timing in
    benches that measure phases the Tool harness cannot express. */
double nowSeconds();

/** True if WIZPP_BENCH_FAST is set. */
bool fastMode();

/** Programs of a suite, honoring fast mode. */
std::vector<const BenchProgram*> selectPrograms(const std::string& suite);

/** Times one run on the engine with the given instrumentation. */
Measurement runWizard(const BenchProgram& p, ExecMode mode, Tool tool,
                      bool intrinsify, uint32_t n);

/** Min-of-reps wrapper. */
Measurement measureWizard(const BenchProgram& p, ExecMode mode, Tool tool,
                          bool intrinsify, uint32_t n);

/** One run under a fully custom engine config (ablations). */
Measurement runWizardWithConfig(const BenchProgram& p,
                                const EngineConfig& cfg, Tool tool,
                                uint32_t n);

/**
 * Times a warmed run, optionally after briefly enabling and disabling
 * a global probe (the Section 4.1 compiled-code-survives claim): with
 * and without the excursion must time the same.
 */
double timeAfterGlobalExcursion(const BenchProgram& p, uint32_t n,
                                bool excursion);

/** Static bytecode-rewriting baseline (runs on the compiled tier). */
Measurement measureRewrite(const BenchProgram& p, RewriteKind kind,
                           uint32_t n);

/** Wasabi-like injected-hook baseline (runs on the compiled tier). */
Measurement measureWasabi(const BenchProgram& p, WasabiKind kind,
                          uint32_t n);

/** DynamoRIO-like DBT baseline over the compiled tier. */
Measurement measureDbt(const BenchProgram& p, DbtKind kind, uint32_t n);

/** Formats a ratio as "12.34x". */
std::string fmtRatio(double r);

/**
 * Machine-readable result sink. Accumulates flat key/value metrics and
 * writes them as `BENCH_<name>.json` into `WIZPP_BENCH_JSON_DIR`
 * (default: the current directory). The flat namespace keeps the
 * cross-PR trajectory diffable: per-program keys are
 * "<program>.<metric>", summary keys are "<group>.<stat>".
 */
class JsonReport
{
  public:
    explicit JsonReport(std::string name);

    void put(const std::string& key, double value);
    void put(const std::string& key, uint64_t value);
    /** Emits <prefix>.min, <prefix>.max and <prefix>.geomean. */
    void putRange(const std::string& prefix,
                  const std::vector<double>& xs);

    /**
     * Writes BENCH_<name>.json; returns the path written, or an empty
     * string (after a note on stderr) if the file could not be written.
     */
    std::string write() const;

  private:
    std::string _name;
    std::vector<std::pair<std::string, std::string>> _entries;
};

/** Writes a CSV file under results/ (created if needed). */
void writeCsv(const std::string& filename, const std::string& header,
              const std::vector<std::string>& rows);

/** Geometric mean. */
double geomean(const std::vector<double>& xs);

} // namespace wizpp::bench

#endif // WIZPP_BENCH_HARNESS_H
