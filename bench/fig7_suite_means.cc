/**
 * @file
 * Figure 7: per-suite geometric-mean relative execution times of the
 * hotness and branch monitors under the six Figure-6 configurations.
 * Reads results/fig6.csv when available (run fig6_all_programs first);
 * otherwise measures a fresh (fast-mode) sweep itself.
 */

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "harness.h"

using namespace wizpp;
using namespace wizpp::bench;

namespace {

struct Row
{
    std::string suite;
    double hot[6];
    double br[6];
};

bool
readCsv(std::vector<Row>* out)
{
    std::ifstream in("results/fig6.csv");
    if (!in) return false;
    std::string line;
    std::getline(in, line);  // header
    while (std::getline(in, line)) {
        std::istringstream ss(line);
        std::string field;
        Row r;
        std::getline(ss, r.suite, ',');
        std::getline(ss, field, ',');  // program
        std::getline(ss, field, ',');  // exec_s
        for (int i = 0; i < 6; i++) {
            std::getline(ss, field, ',');
            r.hot[i] = std::stod(field);
        }
        for (int i = 0; i < 6; i++) {
            std::getline(ss, field, ',');
            r.br[i] = std::stod(field);
        }
        out->push_back(r);
    }
    return !out->empty();
}

void
measureFresh(std::vector<Row>* out)
{
    for (const char* suite : {"polybench", "libsodium", "ostrich"}) {
        for (const BenchProgram* p : selectPrograms(suite)) {
            uint32_t nHot = 1;
            uint32_t nBr = std::max(1u, p->defaultN / 2);
            auto jb = measureWizard(*p, ExecMode::Jit, Tool::None, true,
                                    nBr);
            auto jbh = measureWizard(*p, ExecMode::Jit, Tool::None, true,
                                     nHot);
            auto ib = measureWizard(*p, ExecMode::Interpreter, Tool::None,
                                    true, nBr);
            auto ibh = measureWizard(*p, ExecMode::Interpreter,
                                     Tool::None, true, nHot);
            Row r;
            r.suite = suite;
            r.hot[0] = measureDbt(*p, DbtKind::Hotness, nHot).seconds /
                       jbh.seconds;
            r.hot[1] = measureWasabi(*p, WasabiKind::Hotness, nHot)
                           .seconds / jbh.seconds;
            r.hot[2] = measureWizard(*p, ExecMode::Interpreter,
                                     Tool::HotnessLocal, true, nHot)
                           .seconds / ibh.seconds;
            r.hot[3] = measureWizard(*p, ExecMode::Jit,
                                     Tool::HotnessLocal, true, nHot)
                           .seconds / jbh.seconds;
            r.hot[4] = measureWizard(*p, ExecMode::Jit,
                                     Tool::HotnessLocal, false, nHot)
                           .seconds / jbh.seconds;
            r.hot[5] = measureRewrite(*p, RewriteKind::Hotness, nHot)
                           .seconds / jbh.seconds;
            r.br[0] = measureDbt(*p, DbtKind::Branch, nBr).seconds /
                      jb.seconds;
            r.br[1] = measureWasabi(*p, WasabiKind::Branch, nBr).seconds /
                      jb.seconds;
            r.br[2] = measureWizard(*p, ExecMode::Interpreter,
                                    Tool::BranchLocal, true, nBr)
                          .seconds / ib.seconds;
            r.br[3] = measureWizard(*p, ExecMode::Jit, Tool::BranchLocal,
                                    true, nBr).seconds / jb.seconds;
            r.br[4] = measureWizard(*p, ExecMode::Jit, Tool::BranchLocal,
                                    false, nBr).seconds / jb.seconds;
            r.br[5] = measureRewrite(*p, RewriteKind::Branch, nBr)
                          .seconds / jb.seconds;
            out->push_back(r);
            fprintf(stderr, ".");
            fflush(stderr);
        }
    }
    fprintf(stderr, "\n");
}

} // namespace

int
main()
{
    const char* configs[6] = {"native", "wasabi", "interp", "jit-intr",
                              "jit", "rewrite"};
    std::vector<Row> rows;
    bool fromCsv = readCsv(&rows);
    if (!fromCsv) measureFresh(&rows);

    printf("=== Figure 7: per-suite geometric-mean relative execution "
           "time%s ===\n", fromCsv ? " (from results/fig6.csv)" : "");

    std::vector<std::string> csv;
    JsonReport json("fig7_suite_means");
    for (bool hot : {true, false}) {
        printf("\n--- %s monitor ---\n", hot ? "hotness" : "branch");
        printf("%-12s", "suite");
        for (const char* c : configs) printf(" %10s", c);
        printf("\n");
        for (const char* suite : {"polybench", "libsodium", "ostrich"}) {
            std::vector<double> vals[6];
            for (const Row& r : rows) {
                if (r.suite != suite) continue;
                for (int i = 0; i < 6; i++) {
                    vals[i].push_back(hot ? r.hot[i] : r.br[i]);
                }
            }
            if (vals[0].empty()) continue;
            printf("%-12s", suite);
            std::string line = std::string(hot ? "hotness" : "branch") +
                               "," + suite;
            for (int i = 0; i < 6; i++) {
                double g = geomean(vals[i]);
                printf(" %10s", fmtRatio(g).c_str());
                // Two appends: `"," + std::to_string(g)` trips GCC
                // 12's -Wrestrict false positive (PR105651) at -O3.
                line += ',';
                line += std::to_string(g);
                json.put(std::string(hot ? "hotness" : "branch") + "." +
                             suite + "." + configs[i],
                         g);
            }
            printf("\n");
            csv.push_back(line);
        }
    }
    writeCsv("fig7.csv",
             "monitor,suite,native,wasabi,interp,jitintr,jit,rewrite",
             csv);
    printf("\nExpected shape (paper Figure 7): intrinsified JIT beats "
           "static bytecode rewriting; both beat the generic JIT; "
           "wasabi is orders of magnitude slower; native DBT sits "
           "between wasabi and the JIT.\n");
    const std::string jsonPath = json.write();
    if (!jsonPath.empty()) printf("wrote %s\n", jsonPath.c_str());
    return 0;
}
