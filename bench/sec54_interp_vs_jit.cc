/**
 * @file
 * Section 5.4: interpreter vs JIT — relative overheads are much lower
 * in the interpreter (its baseline is slow), but *absolute* overheads
 * are comparable between the two tiers (paper: mean branch-monitor
 * overhead 2.6s interpreter vs 2.3s JIT).
 *
 * Also tracks the interpreter tier itself: absolute uninstrumented
 * interpreter times per program (`interp_base_s.*`) and a dispatch
 * backend comparison (threaded / switch vs the reference table
 * backend; see docs/INTERPRETER.md). `dispatch.threaded_speedup.*`
 * is the CI perf gate's canary for the threaded-dispatch gains.
 */

#include <cstdio>
#include <vector>

#include "harness.h"

using namespace wizpp;
using namespace wizpp::bench;

namespace {

/** Min-of-reps uninstrumented interpreter run under @p backend. */
double
interpTime(const BenchProgram& p, DispatchBackend backend, uint32_t n)
{
    EngineConfig cfg;
    cfg.mode = ExecMode::Interpreter;
    cfg.dispatch = backend;
    double best = 1e100;
    for (int i = 0; i < reps(); i++) {
        best = std::min(
            best, runWizardWithConfig(p, cfg, Tool::None, n).seconds);
    }
    return best;
}

} // namespace

int
main()
{
    printf("=== Section 5.4: interpreter vs JIT (PolyBench/C) ===\n");
    printf("%-16s | %10s %10s %12s | %10s %10s %12s\n", "",
           "hot-int", "hot-jit", "", "br-int", "br-jit", "");
    printf("%-16s | %10s %10s %12s | %10s %10s %12s\n", "program",
           "rel", "rel", "abs-ovh(ms)", "rel", "rel", "abs-ovh(ms)");

    std::vector<double> relHI, relHJ, relBI, relBJ;
    std::vector<double> interpBase;
    double absHI = 0, absHJ = 0, absBI = 0, absBJ = 0;
    std::vector<std::string> csv;
    int count = 0;
    JsonReport json("sec54_interp_vs_jit");
    for (const BenchProgram* p : selectPrograms("polybench")) {
        uint32_t n = p->defaultN;
        auto iBase = measureWizard(*p, ExecMode::Interpreter, Tool::None,
                                   true, n);
        interpBase.push_back(iBase.seconds);
        json.put(p->name + ".interp_base_s", iBase.seconds);
        auto jBase = measureWizard(*p, ExecMode::Jit, Tool::None, true, n);
        auto hi = measureWizard(*p, ExecMode::Interpreter,
                                Tool::HotnessLocal, true, n);
        auto hj = measureWizard(*p, ExecMode::Jit, Tool::HotnessLocal,
                                false, n);
        auto bi = measureWizard(*p, ExecMode::Interpreter,
                                Tool::BranchLocal, true, n);
        auto bj = measureWizard(*p, ExecMode::Jit, Tool::BranchLocal,
                                false, n);
        double rHI = hi.seconds / iBase.seconds;
        double rHJ = hj.seconds / jBase.seconds;
        double rBI = bi.seconds / iBase.seconds;
        double rBJ = bj.seconds / jBase.seconds;
        relHI.push_back(rHI);
        relHJ.push_back(rHJ);
        relBI.push_back(rBI);
        relBJ.push_back(rBJ);
        absHI += hi.seconds - iBase.seconds;
        absHJ += hj.seconds - jBase.seconds;
        absBI += bi.seconds - iBase.seconds;
        absBJ += bj.seconds - jBase.seconds;
        count++;
        printf("%-16s | %10s %10s %5.1f /%5.1f | %10s %10s %5.1f /%5.1f\n",
               p->name.c_str(), fmtRatio(rHI).c_str(),
               fmtRatio(rHJ).c_str(),
               (hi.seconds - iBase.seconds) * 1e3,
               (hj.seconds - jBase.seconds) * 1e3, fmtRatio(rBI).c_str(),
               fmtRatio(rBJ).c_str(), (bi.seconds - iBase.seconds) * 1e3,
               (bj.seconds - jBase.seconds) * 1e3);
        csv.push_back(p->name + "," + std::to_string(rHI) + "," +
                      std::to_string(rHJ) + "," + std::to_string(rBI) +
                      "," + std::to_string(rBJ));
    }
    writeCsv("sec54.csv",
             "program,hotness_interp_rel,hotness_jit_rel,"
             "branch_interp_rel,branch_jit_rel", csv);

    printf("\nSummary (paper: branch interp 1.0-2.2x vs jit 1.0-16.6x; "
           "hotness interp 7.0-13.5x vs jit 7.0-134x; absolute "
           "overheads comparable):\n");
    printf("  hotness: interp geomean %.1fx, jit(generic) geomean "
           "%.1fx\n", geomean(relHI), geomean(relHJ));
    printf("  branch:  interp geomean %.1fx, jit(generic) geomean "
           "%.1fx\n", geomean(relBI), geomean(relBJ));
    printf("  mean absolute overhead, branch: interp %.1f ms vs jit "
           "%.1f ms\n", absBI * 1e3 / count, absBJ * 1e3 / count);
    printf("  mean absolute overhead, hotness: interp %.1f ms vs jit "
           "%.1f ms\n", absHI * 1e3 / count, absHJ * 1e3 / count);

    // --- Interpreter dispatch backends (uninstrumented interp tier) ---
    printf("\nDispatch backends (uninstrumented interpreter time):\n");
    printf("%-16s | %10s %10s %10s | %9s %9s\n", "program", "table(ms)",
           "switch(ms)", "thread(ms)", "thr-spdup", "sw-spdup");
    std::vector<double> thrSpeedup, swSpeedup;
    for (const BenchProgram* p : selectPrograms("polybench")) {
        uint32_t n = p->defaultN;
        double tTab = interpTime(*p, DispatchBackend::Table, n);
        double tSw = interpTime(*p, DispatchBackend::Switch, n);
        double tThr = interpTime(*p, DispatchBackend::Threaded, n);
        thrSpeedup.push_back(tTab / tThr);
        swSpeedup.push_back(tTab / tSw);
        printf("%-16s | %10.2f %10.2f %10.2f | %9.2f %9.2f\n",
               p->name.c_str(), tTab * 1e3, tSw * 1e3, tThr * 1e3,
               tTab / tThr, tTab / tSw);
        json.put(p->name + ".dispatch_table_s", tTab);
        json.put(p->name + ".dispatch_switch_s", tSw);
        json.put(p->name + ".dispatch_threaded_s", tThr);
        // Per-program speedups: the fast-mode CI gate can only use
        // per-program keys (summary stats aggregate over the subset).
        json.put(p->name + ".dispatch_threaded_speedup", tTab / tThr);
        json.put(p->name + ".dispatch_switch_speedup", tTab / tSw);
    }
    printf("  threaded speedup vs table: geomean %.2fx; switch: "
           "%.2fx\n", geomean(thrSpeedup), geomean(swSpeedup));

    json.putRange("interp_base_s", interpBase);
    json.putRange("dispatch.threaded_speedup", thrSpeedup);
    json.putRange("dispatch.switch_speedup", swSpeedup);
    json.putRange("hotness_interp_rel", relHI);
    json.putRange("hotness_jit_rel", relHJ);
    json.putRange("branch_interp_rel", relBI);
    json.putRange("branch_jit_rel", relBJ);
    json.put("mean_abs_overhead_s.hotness_interp", absHI / count);
    json.put("mean_abs_overhead_s.hotness_jit", absHJ / count);
    json.put("mean_abs_overhead_s.branch_interp", absBI / count);
    json.put("mean_abs_overhead_s.branch_jit", absBJ / count);
    const std::string jsonPath = json.write();
    if (!jsonPath.empty()) printf("wrote %s\n", jsonPath.c_str());
    return 0;
}
