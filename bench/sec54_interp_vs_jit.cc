/**
 * @file
 * Section 5.4: interpreter vs JIT — relative overheads are much lower
 * in the interpreter (its baseline is slow), but *absolute* overheads
 * are comparable between the two tiers (paper: mean branch-monitor
 * overhead 2.6s interpreter vs 2.3s JIT).
 */

#include <cstdio>
#include <vector>

#include "harness.h"

using namespace wizpp;
using namespace wizpp::bench;

int
main()
{
    printf("=== Section 5.4: interpreter vs JIT (PolyBench/C) ===\n");
    printf("%-16s | %10s %10s %12s | %10s %10s %12s\n", "",
           "hot-int", "hot-jit", "", "br-int", "br-jit", "");
    printf("%-16s | %10s %10s %12s | %10s %10s %12s\n", "program",
           "rel", "rel", "abs-ovh(ms)", "rel", "rel", "abs-ovh(ms)");

    std::vector<double> relHI, relHJ, relBI, relBJ;
    double absHI = 0, absHJ = 0, absBI = 0, absBJ = 0;
    std::vector<std::string> csv;
    int count = 0;
    for (const BenchProgram* p : selectPrograms("polybench")) {
        uint32_t n = p->defaultN;
        auto iBase = measureWizard(*p, ExecMode::Interpreter, Tool::None,
                                   true, n);
        auto jBase = measureWizard(*p, ExecMode::Jit, Tool::None, true, n);
        auto hi = measureWizard(*p, ExecMode::Interpreter,
                                Tool::HotnessLocal, true, n);
        auto hj = measureWizard(*p, ExecMode::Jit, Tool::HotnessLocal,
                                false, n);
        auto bi = measureWizard(*p, ExecMode::Interpreter,
                                Tool::BranchLocal, true, n);
        auto bj = measureWizard(*p, ExecMode::Jit, Tool::BranchLocal,
                                false, n);
        double rHI = hi.seconds / iBase.seconds;
        double rHJ = hj.seconds / jBase.seconds;
        double rBI = bi.seconds / iBase.seconds;
        double rBJ = bj.seconds / jBase.seconds;
        relHI.push_back(rHI);
        relHJ.push_back(rHJ);
        relBI.push_back(rBI);
        relBJ.push_back(rBJ);
        absHI += hi.seconds - iBase.seconds;
        absHJ += hj.seconds - jBase.seconds;
        absBI += bi.seconds - iBase.seconds;
        absBJ += bj.seconds - jBase.seconds;
        count++;
        printf("%-16s | %10s %10s %5.1f /%5.1f | %10s %10s %5.1f /%5.1f\n",
               p->name.c_str(), fmtRatio(rHI).c_str(),
               fmtRatio(rHJ).c_str(),
               (hi.seconds - iBase.seconds) * 1e3,
               (hj.seconds - jBase.seconds) * 1e3, fmtRatio(rBI).c_str(),
               fmtRatio(rBJ).c_str(), (bi.seconds - iBase.seconds) * 1e3,
               (bj.seconds - jBase.seconds) * 1e3);
        csv.push_back(p->name + "," + std::to_string(rHI) + "," +
                      std::to_string(rHJ) + "," + std::to_string(rBI) +
                      "," + std::to_string(rBJ));
    }
    writeCsv("sec54.csv",
             "program,hotness_interp_rel,hotness_jit_rel,"
             "branch_interp_rel,branch_jit_rel", csv);

    printf("\nSummary (paper: branch interp 1.0-2.2x vs jit 1.0-16.6x; "
           "hotness interp 7.0-13.5x vs jit 7.0-134x; absolute "
           "overheads comparable):\n");
    printf("  hotness: interp geomean %.1fx, jit(generic) geomean "
           "%.1fx\n", geomean(relHI), geomean(relHJ));
    printf("  branch:  interp geomean %.1fx, jit(generic) geomean "
           "%.1fx\n", geomean(relBI), geomean(relBJ));
    printf("  mean absolute overhead, branch: interp %.1f ms vs jit "
           "%.1f ms\n", absBI * 1e3 / count, absBJ * 1e3 / count);
    printf("  mean absolute overhead, hotness: interp %.1f ms vs jit "
           "%.1f ms\n", absHI * 1e3 / count, absHJ * 1e3 / count);

    JsonReport json("sec54_interp_vs_jit");
    json.putRange("hotness_interp_rel", relHI);
    json.putRange("hotness_jit_rel", relHJ);
    json.putRange("branch_interp_rel", relBI);
    json.putRange("branch_jit_rel", relBJ);
    json.put("mean_abs_overhead_s.hotness_interp", absHI / count);
    json.put("mean_abs_overhead_s.hotness_jit", absHJ / count);
    json.put("mean_abs_overhead_s.branch_interp", absBI / count);
    json.put("mean_abs_overhead_s.branch_jit", absBJ / count);
    const std::string jsonPath = json.write();
    if (!jsonPath.empty()) printf("wrote %s\n", jsonPath.c_str());
    return 0;
}
