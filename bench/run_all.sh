#!/bin/sh
# Runs every paper-reproduction benchmark and collects machine-readable
# results.
#
# Usage: bench/run_all.sh <build-dir> [out-dir]
#
# Each fig*/sec*/ablation executable writes BENCH_<name>.json (flat
# metrics; see bench::JsonReport) plus results/<name>.csv. The
# google-benchmark microbenchmark emits its native JSON format. Output
# lands in <out-dir> (default: the current directory).
#
# Knobs (see bench/harness.h):
#   WIZPP_BENCH_REPS  repetitions per measurement (min-of-k; default 2)
#   WIZPP_BENCH_FAST  set to run a representative subset per suite
set -eu

BUILD_DIR=${1:?usage: bench/run_all.sh <build-dir> [out-dir]}
OUT_DIR=${2:-$(pwd)}
mkdir -p "$OUT_DIR"
[ -d "$BUILD_DIR" ] || {
    echo "run_all: build dir $BUILD_DIR not found" >&2
    exit 1
}
# Absolutize both before the cd below so relative arguments work.
BUILD_DIR=$(CDPATH= cd -- "$BUILD_DIR" && pwd)
OUT_DIR=$(CDPATH= cd -- "$OUT_DIR" && pwd)

export WIZPP_BENCH_JSON_DIR="$OUT_DIR"
cd "$OUT_DIR"

# fig6 must precede fig7: fig7 reuses results/fig6.csv when present.
BENCHES="fig3_local_vs_global fig4_jit_intrinsify fig5_decomposition \
fig6_all_programs fig7_suite_means sec54_interp_vs_jit \
sec6_jvmti_calls ablation_engine trace_overhead monitor_scaling \
analysis_pass obs_overhead fuzz_overhead serving superinst"

status=0
for b in $BENCHES; do
    exe="$BUILD_DIR/$b"
    if [ ! -x "$exe" ]; then
        echo "run_all: missing $exe (build the bench targets first)" >&2
        status=1
        continue
    fi
    echo "--- $b ---"
    "$exe" || { echo "run_all: $b FAILED" >&2; status=1; }
done

if [ -x "$BUILD_DIR/micro_zero_overhead" ]; then
    echo "--- micro_zero_overhead ---"
    "$BUILD_DIR/micro_zero_overhead" \
        --benchmark_out="$OUT_DIR/BENCH_micro_zero_overhead.json" \
        --benchmark_out_format=json \
        || { echo "run_all: micro_zero_overhead FAILED" >&2; status=1; }
fi

echo
echo "run_all: wrote $(ls "$OUT_DIR"/BENCH_*.json 2>/dev/null | wc -l) BENCH_*.json file(s) to $OUT_DIR"
exit $status
