/**
 * @file
 * Ablation study for the engine/instrumentation design choices called
 * out in DESIGN.md:
 *
 *  A1  intrinsifyCountProbe on/off (Wizard's Tuning.v3 flag)
 *  A2  intrinsifyOperandProbe on/off
 *  A3  on-stack replacement at loop backedges on/off (Tiered)
 *  A4  tier-up threshold sweep (Tiered, uninstrumented)
 *  A5  global-probe mode excursion: run, enable global probes briefly,
 *      disable, run again — the §4.1 claim that compiled code survives
 *
 * Workload: a PolyBench subset that stresses loops and calls.
 */

#include <cstdio>
#include <vector>

#include "harness.h"

using namespace wizpp;
using namespace wizpp::bench;

namespace {

const char* kPrograms[] = {"gemm", "jacobi-2d", "trisolv", "nqueens"};

const BenchProgram&
prog(const char* name)
{
    const BenchProgram* p = findProgram(name);
    if (!p) std::abort();
    return *p;
}

} // namespace

int
main()
{
    std::vector<std::string> csv;
    JsonReport json("ablation_engine");

    printf("=== A1/A2: intrinsification flags (compiled tier) ===\n");
    printf("%-12s %12s %12s | %12s %12s\n", "program", "count:on",
           "count:off", "operand:on", "operand:off");
    for (const char* name : kPrograms) {
        const BenchProgram& p = prog(name);
        uint32_t n = p.defaultN;
        auto base = measureWizard(p, ExecMode::Jit, Tool::None, true, n);
        auto cntOn = measureWizard(p, ExecMode::Jit, Tool::HotnessLocal,
                                   true, n);
        auto cntOff = measureWizard(p, ExecMode::Jit, Tool::HotnessLocal,
                                    false, n);
        auto opOn = measureWizard(p, ExecMode::Jit, Tool::BranchLocal,
                                  true, n);
        auto opOff = measureWizard(p, ExecMode::Jit, Tool::BranchLocal,
                                   false, n);
        printf("%-12s %12s %12s | %12s %12s\n", name,
               fmtRatio(cntOn.seconds / base.seconds).c_str(),
               fmtRatio(cntOff.seconds / base.seconds).c_str(),
               fmtRatio(opOn.seconds / base.seconds).c_str(),
               fmtRatio(opOff.seconds / base.seconds).c_str());
        csv.push_back(std::string("intrinsify,") + name + "," +
                      std::to_string(cntOn.seconds / base.seconds) + "," +
                      std::to_string(cntOff.seconds / base.seconds) + "," +
                      std::to_string(opOn.seconds / base.seconds) + "," +
                      std::to_string(opOff.seconds / base.seconds));
        json.put(std::string(name) + ".count_intrins",
                 cntOn.seconds / base.seconds);
        json.put(std::string(name) + ".count_generic",
                 cntOff.seconds / base.seconds);
        json.put(std::string(name) + ".operand_intrins",
                 opOn.seconds / base.seconds);
        json.put(std::string(name) + ".operand_generic",
                 opOff.seconds / base.seconds);
    }

    printf("\n=== A3: OSR at loop backedges (Tiered, uninstrumented) "
           "===\n");
    printf("%-12s %12s %12s\n", "program", "osr:on(ms)", "osr:off(ms)");
    for (const char* name : kPrograms) {
        const BenchProgram& p = prog(name);
        uint32_t n = p.defaultN;
        const Module* m = nullptr;
        (void)m;
        auto time = [&](bool osr) {
            // Run in Tiered mode with a high threshold so only OSR (or
            // nothing) promotes the hot loops within the single call.
            double best = 0;
            for (int i = 0; i < reps(); i++) {
                EngineConfig cfg;
                cfg.mode = ExecMode::Tiered;
                cfg.tierUpThreshold = 3;
                cfg.osrAtLoopBackedge = osr;
                Measurement meas = runWizardWithConfig(p, cfg, Tool::None,
                                                       n);
                if (i == 0 || meas.seconds < best) best = meas.seconds;
            }
            return best;
        };
        double on = time(true);
        double off = time(false);
        printf("%-12s %12.2f %12.2f\n", name, on * 1e3, off * 1e3);
        csv.push_back(std::string("osr,") + name + "," +
                      std::to_string(on) + "," + std::to_string(off));
        json.put(std::string(name) + ".osr_on_s", on);
        json.put(std::string(name) + ".osr_off_s", off);
    }

    printf("\n=== A4: tier-up threshold sweep (Tiered, gemm) ===\n");
    printf("%-12s %12s\n", "threshold", "time(ms)");
    for (uint32_t threshold : {1u, 4u, 16u, 64u, 256u}) {
        const BenchProgram& p = prog("gemm");
        double best = 0;
        for (int i = 0; i < reps(); i++) {
            EngineConfig cfg;
            cfg.mode = ExecMode::Tiered;
            cfg.tierUpThreshold = threshold;
            Measurement meas = runWizardWithConfig(p, cfg, Tool::None,
                                                   p.defaultN);
            if (i == 0 || meas.seconds < best) best = meas.seconds;
        }
        printf("%-12u %12.2f\n", threshold, best * 1e3);
        csv.push_back("threshold,gemm," + std::to_string(threshold) +
                      "," + std::to_string(best));
        json.put("gemm.tierup_threshold" + std::to_string(threshold) +
                     "_s",
                 best);
    }

    printf("\n=== A5: global-probe excursion keeps compiled code "
           "(Section 4.1) ===\n");
    {
        const BenchProgram& p = prog("gemm");
        double without = timeAfterGlobalExcursion(p, p.defaultN, false);
        double with = timeAfterGlobalExcursion(p, p.defaultN, true);
        printf("  warmed run without excursion: %.2f ms, after "
               "enable+disable: %.2f ms (delta %+.1f%%)\n",
               without * 1e3, with * 1e3,
               100.0 * (with - without) / without);
        csv.push_back("excursion,gemm," + std::to_string(without) + "," +
                      std::to_string(with));
        json.put("gemm.excursion_without_s", without);
        json.put("gemm.excursion_with_s", with);
    }

    writeCsv("ablation.csv", "study,program,a,b,c,d", csv);
    const std::string jsonPath = json.write();
    if (!jsonPath.empty()) printf("wrote %s\n", jsonPath.c_str());
    return 0;
}
