/**
 * @file
 * Fuzzing-subsystem overhead (docs/FUZZING.md).
 *
 * The one-shot CoverageProbe's whole point is that coverage costs
 * nothing once it has been observed. Three steady-state measurements
 * per program in the JIT tier, each relative to the same-engine
 * uninstrumented call time:
 *
 *  - coverage_attached_ratio: calls after every slot has fired but
 *    before flush() — the intrinsified kJProbeCovered nop path;
 *  - coverage_attached_generic_ratio: the same with intrinsification
 *    off — what the generic probe path would cost instead;
 *  - coverage_steady_ratio: calls after flush() batch-detached the
 *    saturated probes and recompiled — the acceptance invariant held
 *    by scripts/check_bench.py (--fuzz-steady-ceiling): geomean
 *    <= 1.02x, enforced same-run so it gates on any host.
 *
 * The first instrumented call (lowering + every first fire) is
 * reported as coverage_firstrun_ratio, not gated. A bounded fuzz
 * campaign per anchor program reports execs_per_s (absolute, not
 * gated) plus deterministic structural counts — covered sites/edges
 * and the finding count — which check_bench.py gates symmetrically.
 *
 * Emits BENCH_fuzz.json and results/fuzz_overhead.csv.
 */

#include <iostream>
#include <string>
#include <vector>

#include "fuzz/coverage.h"
#include "fuzz/fuzzer.h"
#include "harness.h"
#include "wat/wat.h"

using namespace wizpp;
using namespace wizpp::bench;

namespace {

/** Minimum calls per timed sample; short programs batch further (see
    sampleCalls) so each sample clears OS-jitter territory. The gated
    steady ratio compares two byte-identical compiles, so the signal
    is pure noise floor — batch generously. */
constexpr int kCallsPerSample = 6;

/** Seconds a single timed sample should at least span. */
constexpr double kMinSampleSeconds = 0.02;

struct CoverageRun
{
    double baseCall = 0;      ///< uninstrumented steady call time
    double firstCall = 0;     ///< first instrumented call
    double attachedCall = 0;  ///< saturated, before flush()
    double steadyCall = 0;    ///< after flush() detached everything
    uint64_t sitesCovered = 0;
    uint64_t edgesCovered = 0;
    uint64_t detached = 0;
};

double
timeCalls(Engine& eng, const BenchProgram& p, int calls)
{
    double best = 0;
    int samples = reps() + 2;  // min-of-k: k beyond the global knob
    for (int r = 0; r < samples; r++) {
        double t0 = nowSeconds();
        for (int i = 0; i < calls; i++) {
            auto res = eng.callExport(p.entry, {Value::makeI32(1)});
            if (!res.ok()) {
                std::cerr << "fuzz_overhead: run failed: " << p.name
                          << "\n";
                exit(1);
            }
        }
        double dt = nowSeconds() - t0;
        if (r == 0 || dt < best) best = dt;
    }
    return best / calls;
}

/** Batch size putting one sample above kMinSampleSeconds. The same
    count is used for the base and instrumented engines of a program,
    so the gated ratios always compare like against like. */
int
sampleCalls(Engine& eng, const BenchProgram& p)
{
    double t0 = nowSeconds();
    auto res = eng.callExport(p.entry, {Value::makeI32(1)});
    double one = nowSeconds() - t0;
    if (!res.ok()) {
        std::cerr << "fuzz_overhead: run failed: " << p.name << "\n";
        exit(1);
    }
    int calls = kCallsPerSample;
    while (calls * one < kMinSampleSeconds && calls < 4096) calls *= 2;
    return calls;
}

CoverageRun
measureCoverage(const Module& m, const BenchProgram& p, bool intrinsify)
{
    CoverageRun out;
    EngineConfig cfg;
    cfg.mode = ExecMode::Jit;
    cfg.intrinsifyCoverageProbe = intrinsify;

    Engine base(cfg);
    if (!base.loadModule(Module(m)).ok() || !base.instantiate().ok()) {
        std::cerr << "fuzz_overhead: load failed: " << p.name << "\n";
        exit(1);
    }
    base.callExport(p.entry, {Value::makeI32(1)});  // warm the JIT
    int calls = sampleCalls(base, p);

    Engine eng(cfg);
    if (!eng.loadModule(Module(m)).ok()) {
        std::cerr << "fuzz_overhead: load failed: " << p.name << "\n";
        exit(1);
    }
    fuzz::CoverageIndex cov;
    cov.attach(eng);
    if (!eng.instantiate().ok()) {
        std::cerr << "fuzz_overhead: instantiate failed: " << p.name
                  << "\n";
        exit(1);
    }

    double t0 = nowSeconds();
    auto r = eng.callExport(p.entry, {Value::makeI32(1)});
    out.firstCall = nowSeconds() - t0;
    if (!r.ok()) {
        std::cerr << "fuzz_overhead: run failed: " << p.name << "\n";
        exit(1);
    }
    out.attachedCall = timeCalls(eng, p, calls);

    out.detached = cov.flush();
    // One warm-up call eats the post-flush recompile so the steady
    // samples time the clean code only. The gated steady/base ratio
    // compares two byte-identical compiles, so the samples are
    // interleaved: clock drift between the two engines cancels.
    eng.callExport(p.entry, {Value::makeI32(1)});
    for (int r = 0; r < reps() + 2; r++) {
        double b = timeCalls(base, p, calls);
        double s = timeCalls(eng, p, calls);
        if (r == 0 || b < out.baseCall) out.baseCall = b;
        if (r == 0 || s < out.steadyCall) out.steadyCall = s;
    }
    out.sitesCovered = cov.sitesCovered();
    out.edgesCovered = cov.edgesCovered();
    return out;
}

} // namespace

int
main()
{
    std::vector<const BenchProgram*> programs;
    for (const BenchProgram* p : selectPrograms("polybench")) {
        programs.push_back(p);
    }
    programs.push_back(&richardsProgram());

    JsonReport report("fuzz");
    report.put("fast_mode", static_cast<uint64_t>(fastMode() ? 1 : 0));
    std::vector<std::string> csv;
    std::vector<double> steady, attached, attachedGeneric, firstRun;

    std::cout << "=== coverage-probe overhead (jit, "
              << kCallsPerSample << " calls/sample, reps=" << reps()
              << ") ===\n";
    for (const BenchProgram* p : programs) {
        auto parsed = parseWat(p->wat);
        if (!parsed.ok()) {
            std::cerr << "fuzz_overhead: parse failed: " << p->name
                      << "\n";
            return 1;
        }
        Module m = parsed.take();
        CoverageRun intr = measureCoverage(m, *p, true);
        CoverageRun gen = measureCoverage(m, *p, false);

        double steadyRatio = intr.steadyCall / intr.baseCall;
        double attachedRatio = intr.attachedCall / intr.baseCall;
        double genericRatio = gen.attachedCall / gen.baseCall;
        double firstRatio = intr.firstCall / intr.baseCall;
        steady.push_back(steadyRatio);
        attached.push_back(attachedRatio);
        attachedGeneric.push_back(genericRatio);
        firstRun.push_back(firstRatio);

        std::string key = p->name;
        report.put(key + ".jit.base_call_s", intr.baseCall);
        report.put(key + ".jit.coverage_steady_ratio", steadyRatio);
        report.put(key + ".jit.coverage_attached_ratio", attachedRatio);
        report.put(key + ".jit.coverage_attached_generic_ratio",
                   genericRatio);
        report.put(key + ".jit.coverage_firstrun_ratio", firstRatio);
        report.put(key + ".fuzz.sites_covered", intr.sitesCovered);
        report.put(key + ".fuzz.edges_covered", intr.edgesCovered);
        report.put(key + ".fuzz.probes_detached", intr.detached);
        csv.push_back(p->name + "," + std::to_string(steadyRatio) +
                      "," + std::to_string(attachedRatio) + "," +
                      std::to_string(genericRatio) + "," +
                      std::to_string(firstRatio) + "," +
                      std::to_string(intr.sitesCovered) + "," +
                      std::to_string(intr.edgesCovered));
        std::cout << "  " << p->name << ": steady "
                  << fmtRatio(steadyRatio) << ", attached "
                  << fmtRatio(attachedRatio) << " (generic "
                  << fmtRatio(genericRatio) << "), first run "
                  << fmtRatio(firstRatio) << " ("
                  << intr.sitesCovered << " sites, "
                  << intr.edgesCovered << " edges)\n";
    }

    report.putRange("jit.coverage_steady_ratio", steady);
    report.putRange("jit.coverage_attached_ratio", attached);
    report.putRange("jit.coverage_attached_generic_ratio",
                    attachedGeneric);
    report.putRange("jit.coverage_firstrun_ratio", firstRun);
    std::cout << "jit: steady geomean " << fmtRatio(geomean(steady))
              << " (ceiling 1.02x), attached "
              << fmtRatio(geomean(attached)) << " vs generic "
              << fmtRatio(geomean(attachedGeneric)) << "\n";

    // Bounded fuzz campaigns on two anchors: throughput (absolute,
    // informational) and deterministic structural outcomes (gated).
    for (const char* name : {"gemm", "richards"}) {
        const BenchProgram* p = findProgram(name);
        if (!p) continue;
        auto parsed = parseWat(p->wat);
        if (!parsed.ok()) continue;
        fuzz::FuzzOptions opts;
        opts.entry = p->entry;
        opts.seed = 7;
        opts.runs = 32;
        opts.maxArg = 8;
        EngineConfig cfg;
        cfg.mode = ExecMode::Jit;
        fuzz::FuzzResult fr = runFuzzer(parsed.take(), cfg, opts);
        if (!fr.ok) {
            std::cerr << "fuzz_overhead: campaign failed: " << fr.error
                      << "\n";
            return 1;
        }
        std::string key = std::string(name) + ".fuzz";
        report.put(key + ".execs_per_s", fr.execsPerSec);
        report.put(key + ".sites_covered",
                   static_cast<uint64_t>(fr.sitesCovered));
        report.put(key + ".edges_covered",
                   static_cast<uint64_t>(fr.edgesCovered));
        report.put(key + ".corpus", static_cast<uint64_t>(fr.corpusSize));
        report.put(key + ".findings",
                   static_cast<uint64_t>(fr.findings.size()));
        std::cout << "  fuzz " << name << " [jit]: "
                  << static_cast<uint64_t>(fr.execsPerSec) << " execs/s, "
                  << fr.sitesCovered << "/" << fr.sitesTotal
                  << " sites, corpus " << fr.corpusSize << ", "
                  << fr.findings.size() << " finding(s)\n";
    }

    std::string path = report.write();
    writeCsv("fuzz_overhead.csv",
             "program,steady_ratio,attached_ratio,generic_ratio,"
             "firstrun_ratio,sites_covered,edges_covered",
             csv);
    if (!path.empty()) std::cout << "wrote " << path << "\n";
    return 0;
}
