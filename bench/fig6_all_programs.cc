/**
 * @file
 * Figure 6: relative execution times of the hotness and branch
 * monitors across all programs of all three suites, under six
 * configurations (paper legend order):
 *
 *   native   — DynamoRIO-like DBT over the compiled tier (DESIGN.md S3)
 *   wasabi   — Wasabi-like injected hooks through a boxed host boundary
 *   interp   — Wizard interpreter, local probes
 *   jit-intr — Wizard compiled tier with probe intrinsification
 *   jit      — Wizard compiled tier, generic probes
 *   rewrite  — static bytecode rewriting (in-memory counters)
 *
 * Rows are sorted by uninstrumented execution time, as in the paper.
 * Results are also written to results/fig6.csv (consumed by fig7).
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "harness.h"

using namespace wizpp;
using namespace wizpp::bench;

namespace {

struct Row
{
    const BenchProgram* p;
    double execSeconds;
    // native, wasabi, interp, jit-intr, jit, rewrite
    double hot[6];
    double br[6];
};

Row
measureRow(const BenchProgram& p)
{
    Row r;
    r.p = &p;
    uint32_t nHot = 1;
    uint32_t nBr = std::max(1u, p.defaultN / 2);

    auto jitBaseHot = measureWizard(p, ExecMode::Jit, Tool::None, true,
                                    nHot);
    auto jitBaseBr = measureWizard(p, ExecMode::Jit, Tool::None, true,
                                   nBr);
    auto intBaseHot = measureWizard(p, ExecMode::Interpreter, Tool::None,
                                    true, nHot);
    auto intBaseBr = measureWizard(p, ExecMode::Interpreter, Tool::None,
                                   true, nBr);
    r.execSeconds = jitBaseBr.seconds;

    r.hot[0] = measureDbt(p, DbtKind::Hotness, nHot).seconds /
               jitBaseHot.seconds;
    r.hot[1] = measureWasabi(p, WasabiKind::Hotness, nHot).seconds /
               jitBaseHot.seconds;
    r.hot[2] = measureWizard(p, ExecMode::Interpreter, Tool::HotnessLocal,
                             true, nHot).seconds / intBaseHot.seconds;
    r.hot[3] = measureWizard(p, ExecMode::Jit, Tool::HotnessLocal, true,
                             nHot).seconds / jitBaseHot.seconds;
    r.hot[4] = measureWizard(p, ExecMode::Jit, Tool::HotnessLocal, false,
                             nHot).seconds / jitBaseHot.seconds;
    r.hot[5] = measureRewrite(p, RewriteKind::Hotness, nHot).seconds /
               jitBaseHot.seconds;

    r.br[0] = measureDbt(p, DbtKind::Branch, nBr).seconds /
              jitBaseBr.seconds;
    r.br[1] = measureWasabi(p, WasabiKind::Branch, nBr).seconds /
              jitBaseBr.seconds;
    r.br[2] = measureWizard(p, ExecMode::Interpreter, Tool::BranchLocal,
                            true, nBr).seconds / intBaseBr.seconds;
    r.br[3] = measureWizard(p, ExecMode::Jit, Tool::BranchLocal, true,
                            nBr).seconds / jitBaseBr.seconds;
    r.br[4] = measureWizard(p, ExecMode::Jit, Tool::BranchLocal, false,
                            nBr).seconds / jitBaseBr.seconds;
    r.br[5] = measureRewrite(p, RewriteKind::Branch, nBr).seconds /
              jitBaseBr.seconds;
    return r;
}

} // namespace

int
main()
{
    const char* configs[6] = {"native", "wasabi", "interp", "jit-intr",
                              "jit", "rewrite"};
    std::vector<Row> rows;
    for (const char* suite : {"polybench", "libsodium", "ostrich"}) {
        for (const BenchProgram* p : selectPrograms(suite)) {
            rows.push_back(measureRow(*p));
            fprintf(stderr, ".");
            fflush(stderr);
        }
    }
    fprintf(stderr, "\n");
    std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
        return a.execSeconds < b.execSeconds;
    });

    auto printOne = [&](const char* title, bool hot) {
        printf("\n=== Figure 6 (%s monitor): relative execution time "
               "===\n", title);
        printf("%-28s", "program");
        for (const char* c : configs) printf(" %10s", c);
        printf("\n");
        for (const Row& r : rows) {
            printf("%-28s", (r.p->suite + "/" + r.p->name).c_str());
            const double* vals = hot ? r.hot : r.br;
            for (int i = 0; i < 6; i++) {
                printf(" %10s", fmtRatio(vals[i]).c_str());
            }
            printf("\n");
        }
    };
    printOne("hotness", true);
    printOne("branch", false);

    std::vector<std::string> csv;
    JsonReport json("fig6_all_programs");
    for (const Row& r : rows) {
        std::string line = r.p->suite + "," + r.p->name + "," +
                           std::to_string(r.execSeconds);
        // Two appends, not `"," + std::to_string(x)`: the temporary
        // trips GCC 12's -Wrestrict false positive (PR105651) at -O3.
        for (int i = 0; i < 6; i++) {
            line += ',';
            line += std::to_string(r.hot[i]);
        }
        for (int i = 0; i < 6; i++) {
            line += ',';
            line += std::to_string(r.br[i]);
        }
        csv.push_back(line);
        const std::string id = r.p->suite + "/" + r.p->name;
        json.put(id + ".exec_s", r.execSeconds);
        for (int i = 0; i < 6; i++) {
            json.put(id + ".hot_" + configs[i], r.hot[i]);
            json.put(id + ".br_" + configs[i], r.br[i]);
        }
    }
    writeCsv("fig6.csv",
             "suite,program,exec_s,"
             "hot_native,hot_wasabi,hot_interp,hot_jitintr,hot_jit,"
             "hot_rewrite,"
             "br_native,br_wasabi,br_interp,br_jitintr,br_jit,br_rewrite",
             csv);

    printf("\nExpected shape (paper Section 5.8): wasabi >> native-DBT "
           ">> jit > rewrite >= jit-intr; interpreter relative overheads "
           "are the lowest because the baseline is slow.\n");
    const std::string jsonPath = json.write();
    if (!jsonPath.empty()) printf("wrote %s\n", jsonPath.c_str());
    return 0;
}
