/**
 * @file
 * Observability-layer overhead: the metrics registry + timeline
 * emitter enabled together, and the sampling profiler at its default
 * budget, versus the uninstrumented baseline, in the interpreter and
 * JIT tiers over the fig6 corpus (docs/OBSERVABILITY.md).
 *
 * The acceptance invariant held by scripts/check_bench.py
 * (--obs-profile-ceiling): the default-budget profiler's relative
 * execution time stays <= 1.10x geomean in both tiers. The structural
 * counts — timeline span count per run and profiler sample count —
 * are deterministic (fire-count sampling) and gated symmetrically.
 *
 * Emits BENCH_obs_overhead.json and results/obs_overhead.csv.
 */

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "harness.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/timeline.h"
#include "wat/wat.h"

using namespace wizpp;
using namespace wizpp::bench;

namespace {

struct ObsRun
{
    double seconds = 0;
    uint64_t spans = 0;    ///< timeline events recorded
    uint64_t samples = 0;  ///< profiler samples taken
};

/** One run with the timeline attached and a metrics dump at the end,
    or with the sampling profiler attached — timed like harness
    runWizard (engine construction → result, dump included). */
ObsRun
runObs(const Module& m, const BenchProgram& p, ExecMode mode,
       bool withTimeline, uint64_t profileBudget)
{
    ObsRun out;
    EngineConfig cfg;
    cfg.mode = mode;
    double t0 = nowSeconds();
    Engine eng(cfg);
    obs::Timeline timeline;
    if (withTimeline) eng.setTimeline(&timeline);
    if (!eng.loadModule(m).ok()) {
        std::cerr << "obs_overhead: load failed: " << p.name << "\n";
        exit(1);
    }
    obs::SamplingProfiler::Options opts;
    opts.budget = profileBudget ? profileBudget : 1;
    obs::SamplingProfiler prof(opts);
    if (profileBudget) eng.attachMonitor(&prof);
    if (!eng.instantiate().ok()) {
        std::cerr << "obs_overhead: instantiate failed: " << p.name
                  << "\n";
        exit(1);
    }
    auto r = eng.callExport(p.entry, {Value::makeI32(1)});
    if (!r.ok()) {
        std::cerr << "obs_overhead: run failed: " << p.name << "\n";
        exit(1);
    }
    if (withTimeline) {
        // The enabled-mode cost includes serializing the registry, as
        // `wizeng --metrics --timeline=...` would.
        std::ostringstream sink;
        eng.metrics().write(sink, obs::MetricsFormat::Text);
    }
    out.seconds = nowSeconds() - t0;
    out.spans = timeline.events().size();
    out.samples = prof.sampleCount();
    return out;
}

ObsRun
measureObs(const Module& m, const BenchProgram& p, ExecMode mode,
           bool withTimeline, uint64_t profileBudget)
{
    ObsRun best;
    for (int i = 0; i < reps(); i++) {
        ObsRun r = runObs(m, p, mode, withTimeline, profileBudget);
        if (i == 0 || r.seconds < best.seconds) best = r;
    }
    return best;
}

constexpr uint64_t kDefaultBudget = 4096;

} // namespace

int
main()
{
    // The fig6 corpus selection: every suite (fast-mode subset when
    // WIZPP_BENCH_FAST is set) plus richards.
    std::vector<const BenchProgram*> programs;
    for (const char* suite : {"polybench", "ostrich", "libsodium"}) {
        for (const BenchProgram* p : selectPrograms(suite)) {
            programs.push_back(p);
        }
    }
    programs.push_back(&richardsProgram());

    struct ModeRow
    {
        ExecMode mode;
        const char* name;
    };
    const ModeRow modes[] = {{ExecMode::Interpreter, "int"},
                             {ExecMode::Jit, "jit"}};

    JsonReport report("obs_overhead");
    report.put("fast_mode", static_cast<uint64_t>(fastMode() ? 1 : 0));
    std::vector<std::string> csv;
    std::vector<double> tlRatios[2], profRatios[2];

    std::cout << "=== observability overhead (n=1, reps=" << reps()
              << ", profiler budget " << kDefaultBudget << ") ===\n";
    for (const BenchProgram* p : programs) {
        auto parsed = parseWat(p->wat);
        if (!parsed.ok()) {
            std::cerr << "obs_overhead: parse failed: " << p->name
                      << "\n";
            return 1;
        }
        Module m = parsed.take();

        for (int mi = 0; mi < 2; mi++) {
            const ModeRow& mr = modes[mi];
            Measurement base =
                measureWizard(*p, mr.mode, Tool::None, true, 1);
            ObsRun tl = measureObs(m, *p, mr.mode, true, 0);
            ObsRun prof =
                measureObs(m, *p, mr.mode, false, kDefaultBudget);

            double tlRatio = tl.seconds / base.seconds;
            double profRatio = prof.seconds / base.seconds;
            tlRatios[mi].push_back(tlRatio);
            profRatios[mi].push_back(profRatio);

            std::string key = p->name + std::string(".") + mr.name;
            report.put(key + ".base_s", base.seconds);
            report.put(key + ".timeline_s", tl.seconds);
            report.put(key + ".timeline_ratio", tlRatio);
            report.put(key + ".profile_s", prof.seconds);
            report.put(key + ".profile_ratio", profRatio);
            report.put(key + ".obs.spans", tl.spans);
            report.put(key + ".obs.samples", prof.samples);
            csv.push_back(p->name + "," + mr.name + "," +
                          std::to_string(base.seconds) + "," +
                          std::to_string(tlRatio) + "," +
                          std::to_string(profRatio) + "," +
                          std::to_string(tl.spans) + "," +
                          std::to_string(prof.samples));
            std::cout << "  " << p->name << " [" << mr.name
                      << "]: timeline " << fmtRatio(tlRatio)
                      << ", profile " << fmtRatio(profRatio) << " ("
                      << tl.spans << " spans, " << prof.samples
                      << " samples)\n";
        }
    }

    // Budget sweep on one hot program: how the sampling rate trades
    // against overhead (absolute seconds are reported, not gated; the
    // sample counts are deterministic).
    const BenchProgram* gemm = findProgram("gemm");
    if (gemm) {
        auto parsed = parseWat(gemm->wat);
        Module m = parsed.take();
        Measurement base =
            measureWizard(*gemm, ExecMode::Jit, Tool::None, true, 1);
        for (uint64_t budget : {1024u, 4096u, 16384u}) {
            ObsRun r = measureObs(m, *gemm, ExecMode::Jit, false, budget);
            std::string key = "sweep." + std::to_string(budget);
            report.put(key + ".profile_s", r.seconds);
            report.put(key + ".ratio", r.seconds / base.seconds);
            report.put(key + ".obs.samples", r.samples);
            std::cout << "  sweep gemm [jit] budget " << budget << ": "
                      << fmtRatio(r.seconds / base.seconds) << " ("
                      << r.samples << " samples)\n";
        }
    }

    for (int mi = 0; mi < 2; mi++) {
        report.putRange(std::string(modes[mi].name) + ".timeline_ratio",
                        tlRatios[mi]);
        report.putRange(std::string(modes[mi].name) + ".profile_ratio",
                        profRatios[mi]);
        std::cout << modes[mi].name << ": timeline geomean "
                  << fmtRatio(geomean(tlRatios[mi]))
                  << ", profile geomean "
                  << fmtRatio(geomean(profRatios[mi])) << "\n";
    }

    std::string path = report.write();
    writeCsv("obs_overhead.csv",
             "program,mode,base_s,timeline_ratio,profile_ratio,spans,"
             "samples",
             csv);
    if (!path.empty()) std::cout << "wrote " << path << "\n";
    return 0;
}
