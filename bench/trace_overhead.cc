/**
 * @file
 * Trace-recording overhead: full execution-trace capture (TraceRecorder
 * — entry/exit, branch directions, br_table arms, memory grows) versus
 * the uninstrumented baseline, in the interpreter and JIT tiers.
 *
 * This extends the paper's relative-execution-time methodology to the
 * trace subsystem so its cost joins the cross-PR perf trajectory:
 * tracing is the heaviest probe client in the tree (probes at every
 * function entry, every exit path and every conditional branch), so its
 * ratio is a stress ceiling for the monitor zoo.
 *
 * Emits BENCH_trace_overhead.json and results/trace_overhead.csv.
 */

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "harness.h"
#include "trace/recorder.h"
#include "wat/wat.h"

using namespace wizpp;
using namespace wizpp::bench;

namespace {

double
now()
{
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now().time_since_epoch())
                   .count()) *
           1e-9;
}

struct TracedRun
{
    double seconds = 0;
    uint64_t events = 0;
    uint64_t bytes = 0;
};

/** One traced run, timed like harness runWizard (load → run). */
TracedRun
runTraced(const Module& m, const BenchProgram& p, ExecMode mode,
          uint32_t n)
{
    EngineConfig cfg;
    cfg.mode = mode;
    double t0 = now();
    Engine eng(cfg);
    if (!eng.loadModule(m).ok()) {
        std::cerr << "trace_overhead: load failed: " << p.name << "\n";
        exit(1);
    }
    TraceRecorder rec;
    eng.attachMonitor(&rec);
    if (!eng.instantiate().ok()) {
        std::cerr << "trace_overhead: instantiate failed: " << p.name
                  << "\n";
        exit(1);
    }
    std::vector<Value> args{Value::makeI32(n)};
    rec.setInvocation(p.entry, args);
    auto r = eng.callExport(p.entry, args);
    if (!r.ok()) {
        std::cerr << "trace_overhead: run failed: " << p.name << "\n";
        exit(1);
    }
    rec.finish(TrapReason::None, r.value());
    TracedRun out;
    out.seconds = now() - t0;
    out.events = rec.eventCount();
    out.bytes = rec.bytes().size();
    return out;
}

} // namespace

int
main()
{
    // One representative per suite plus richards: tracing is heavy, so
    // the stress picture matters more than corpus breadth here.
    std::vector<const BenchProgram*> programs;
    for (const char* suite : {"polybench", "ostrich", "libsodium"}) {
        auto ps = programsBySuite(suite);
        if (!ps.empty()) programs.push_back(ps.front());
    }
    programs.push_back(&richardsProgram());

    struct ModeRow
    {
        ExecMode mode;
        const char* name;
    };
    const ModeRow modes[] = {{ExecMode::Interpreter, "int"},
                             {ExecMode::Jit, "jit"}};

    JsonReport report("trace_overhead");
    std::vector<std::string> csv;
    std::vector<double> intRatios, jitRatios;

    std::cout << "=== trace recording overhead (n=1, reps=" << reps()
              << ") ===\n";
    for (const BenchProgram* p : programs) {
        auto parsed = parseWat(p->wat);
        if (!parsed.ok()) {
            std::cerr << "trace_overhead: parse failed: " << p->name
                      << "\n";
            return 1;
        }
        Module m = parsed.take();

        for (const ModeRow& mr : modes) {
            Measurement base =
                measureWizard(*p, mr.mode, Tool::None, true, 1);
            TracedRun traced;
            for (int i = 0; i < reps(); i++) {
                TracedRun t = runTraced(m, *p, mr.mode, 1);
                if (i == 0 || t.seconds < traced.seconds) traced = t;
            }
            double ratio = traced.seconds / base.seconds;
            (mr.mode == ExecMode::Interpreter ? intRatios : jitRatios)
                .push_back(ratio);

            std::string key = p->name + std::string(".") + mr.name;
            report.put(key + ".base_s", base.seconds);
            report.put(key + ".traced_s", traced.seconds);
            report.put(key + ".ratio", ratio);
            if (mr.mode == ExecMode::Interpreter) {
                report.put(p->name + std::string(".events"),
                           traced.events);
                report.put(p->name + std::string(".bytes"),
                           traced.bytes);
            }
            csv.push_back(p->name + "," + mr.name + "," +
                          std::to_string(base.seconds) + "," +
                          std::to_string(traced.seconds) + "," +
                          std::to_string(ratio) + "," +
                          std::to_string(traced.events) + "," +
                          std::to_string(traced.bytes));
            std::cout << "  " << p->name << " [" << mr.name
                      << "]: " << fmtRatio(ratio) << " ("
                      << traced.events << " events, " << traced.bytes
                      << " bytes)\n";
        }
    }

    report.putRange("int.ratio", intRatios);
    report.putRange("jit.ratio", jitRatios);
    std::string path = report.write();
    writeCsv("trace_overhead.csv",
             "program,mode,base_s,traced_s,ratio,events,bytes", csv);
    if (!path.empty()) std::cout << "wrote " << path << "\n";
    return 0;
}
