/**
 * @file
 * Figure 3: relative execution time of the hotness monitor (left) and
 * branch monitor (right) implemented with local probes versus a global
 * probe, in the interpreter, on PolyBench/C. Also prints the probe
 * fire counts shown as points above the paper's bars, and the Section
 * 5.2 summary ranges (branch: local 1.0-2.2x vs global 7.7-16.4x).
 */

#include <cstdio>
#include <vector>

#include "harness.h"

using namespace wizpp;
using namespace wizpp::bench;

int
main()
{
    printf("=== Figure 3: local vs global probes (interpreter, "
           "PolyBench/C) ===\n");
    printf("%-16s %12s | %11s %11s | %11s %11s | %14s %14s\n", "program",
           "uninstr(ms)", "hot-local", "hot-global", "br-local",
           "br-global", "hot fires", "br fires");

    std::vector<std::string> csv;
    JsonReport json("fig3_local_vs_global");
    std::vector<double> hl, hg, bl, bg, base_s;
    for (const BenchProgram* p : selectPrograms("polybench")) {
        uint32_t n = p->defaultN;
        auto base = measureWizard(*p, ExecMode::Interpreter, Tool::None,
                                  true, n);
        auto hotL = measureWizard(*p, ExecMode::Interpreter,
                                  Tool::HotnessLocal, true, n);
        auto hotG = measureWizard(*p, ExecMode::Interpreter,
                                  Tool::HotnessGlobal, true, n);
        auto brL = measureWizard(*p, ExecMode::Interpreter,
                                 Tool::BranchLocal, true, n);
        auto brG = measureWizard(*p, ExecMode::Interpreter,
                                 Tool::BranchGlobal, true, n);
        double rHL = hotL.seconds / base.seconds;
        double rHG = hotG.seconds / base.seconds;
        double rBL = brL.seconds / base.seconds;
        double rBG = brG.seconds / base.seconds;
        hl.push_back(rHL);
        hg.push_back(rHG);
        bl.push_back(rBL);
        bg.push_back(rBG);
        base_s.push_back(base.seconds);
        printf("%-16s %12.2f | %11s %11s | %11s %11s | %14llu %14llu\n",
               p->name.c_str(), base.seconds * 1e3, fmtRatio(rHL).c_str(),
               fmtRatio(rHG).c_str(), fmtRatio(rBL).c_str(),
               fmtRatio(rBG).c_str(),
               static_cast<unsigned long long>(hotL.probeFires),
               static_cast<unsigned long long>(brL.probeFires));
        csv.push_back(p->name + "," + std::to_string(base.seconds) + "," +
                      std::to_string(rHL) + "," + std::to_string(rHG) +
                      "," + std::to_string(rBL) + "," +
                      std::to_string(rBG) + "," +
                      std::to_string(hotL.probeFires) + "," +
                      std::to_string(brL.probeFires));
        json.put(p->name + ".uninstr_s", base.seconds);
        json.put(p->name + ".hotness_local", rHL);
        json.put(p->name + ".hotness_global", rHG);
        json.put(p->name + ".branch_local", rBL);
        json.put(p->name + ".branch_global", rBG);
    }
    writeCsv("fig3.csv",
             "program,uninstr_s,hotness_local,hotness_global,"
             "branch_local,branch_global,hotness_fires,branch_fires",
             csv);

    auto range = [](const std::vector<double>& v) {
        double lo = v[0], hi = v[0];
        for (double x : v) {
            lo = std::min(lo, x);
            hi = std::max(hi, x);
        }
        return std::make_pair(lo, hi);
    };
    auto [hlLo, hlHi] = range(hl);
    auto [hgLo, hgHi] = range(hg);
    auto [blLo, blHi] = range(bl);
    auto [bgLo, bgHi] = range(bg);
    printf("\nSummary (Section 5.2 comparison; paper: branch local "
           "1.0-2.2x, branch global 7.7-16.4x):\n");
    printf("  hotness: local %.1f-%.1fx (geomean %.1fx), global "
           "%.1f-%.1fx (geomean %.1fx)\n", hlLo, hlHi, geomean(hl), hgLo,
           hgHi, geomean(hg));
    printf("  branch:  local %.1f-%.1fx (geomean %.1fx), global "
           "%.1f-%.1fx (geomean %.1fx)\n", blLo, blHi, geomean(bl), bgLo,
           bgHi, geomean(bg));

    json.putRange("hotness_local", hl);
    json.putRange("hotness_global", hg);
    json.putRange("branch_local", bl);
    json.putRange("branch_global", bg);
    // Absolute interpreter-tier baseline (tracks dispatch tuning).
    json.putRange("uninstr_s", base_s);
    const std::string jsonPath = json.write();
    if (!jsonPath.empty()) printf("wrote %s\n", jsonPath.c_str());
    return 0;
}
