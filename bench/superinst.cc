/**
 * @file
 * Superinstruction fusion speedup on the interpreter tier
 * (docs/INTERPRETER.md, "Superinstructions & TOS caching").
 *
 * For every program of the fig6 corpus (all three suites), times the
 * interpreter with fusion on vs off *in the same run* — two engine
 * configurations differing only in EngineConfig::fuseSuperinstructions
 * — and reports the per-program speedup plus the corpus geomean. The
 * geomean is held by the same-run --superinst-floor gate in
 * scripts/check_bench.py: being a ratio of two measurements taken
 * seconds apart on one host with one binary, it is comparable across
 * machines and compilers, unlike the absolute times.
 *
 * Also reports the per-program fused-window count (a deterministic
 * function of the module and the pattern table, gated symmetrically
 * against the baseline) so a silent matcher regression cannot hide
 * behind a fast host.
 */

#include <cstdio>
#include <vector>

#include "harness.h"
#include "wat/wat.h"

using namespace wizpp;
using namespace wizpp::bench;

namespace {

double
oneRun(const BenchProgram& p, bool fuse, uint32_t n)
{
    EngineConfig cfg;
    cfg.mode = ExecMode::Interpreter;
    cfg.fuseSuperinstructions = fuse;
    return runWizardWithConfig(p, cfg, Tool::None, n).seconds;
}

/**
 * Measures fused and unfused interpreter time for one program.
 *
 * Two robustness measures keep the ratio a ratio and not a noise
 * sample: the workload is scaled (via the programs' repetition
 * parameter) until the unfused leg runs at least ~20 ms, and the two
 * legs are interleaved rep by rep, so a load transient hits both
 * mins instead of wiping out one whole leg.
 */
void
measurePair(const BenchProgram& p, double* fusedOut, double* unfusedOut)
{
    uint32_t n = p.defaultN;
    double probe = oneRun(p, false, n);
    if (probe < 0.020) {
        uint32_t scale = static_cast<uint32_t>(0.025 / probe) + 1;
        if (scale > 32) scale = 32;
        n = p.defaultN * scale;
    }
    double fused = 0, unfused = 0;
    int r = reps() < 3 ? 3 : reps();
    for (int i = 0; i < r; i++) {
        double f = oneRun(p, true, n);
        double u = oneRun(p, false, n);
        if (i == 0 || f < fused) fused = f;
        if (i == 0 || u < unfused) unfused = u;
    }
    *fusedOut = fused;
    *unfusedOut = unfused;
}

/** Windows annotated at load: deterministic in (module, table). */
uint64_t
countWindows(const BenchProgram& p)
{
    auto r = parseWat(p.wat);
    if (!r.ok()) std::abort();
    EngineConfig cfg;
    cfg.mode = ExecMode::Interpreter;
    Engine eng(cfg);
    if (!eng.loadModule(r.take()).ok()) std::abort();
    return eng.stats.fusedWindows.value();
}

} // namespace

int
main()
{
    std::vector<std::string> csv;
    JsonReport json("superinst");
    std::vector<double> speedups;
    uint64_t totalWindows = 0;

    printf("=== Superinstruction fusion: interpreter tier, fused vs "
           "unfused (same run) ===\n");
    printf("%-28s %8s %12s %12s %10s\n", "program", "windows",
           "unfused(ms)", "fused(ms)", "speedup");
    for (const char* suite : {"polybench", "libsodium", "ostrich"}) {
        for (const BenchProgram* p : selectPrograms(suite)) {
            double fused, unfused;
            measurePair(*p, &fused, &unfused);
            double speedup = unfused / fused;
            uint64_t windows = countWindows(*p);
            speedups.push_back(speedup);
            totalWindows += windows;

            const std::string id = p->suite + "/" + p->name;
            printf("%-28s %8llu %12.2f %12.2f %9s\n", id.c_str(),
                   static_cast<unsigned long long>(windows),
                   unfused * 1e3, fused * 1e3,
                   fmtRatio(speedup).c_str());
            csv.push_back(p->suite + "," + p->name + "," +
                          std::to_string(windows) + "," +
                          std::to_string(unfused) + "," +
                          std::to_string(fused) + "," +
                          std::to_string(speedup));
            json.put(id + ".superinst_windows", windows);
            json.put(id + ".superinst_unfused_s", unfused);
            json.put(id + ".superinst_fused_s", fused);
            json.put(id + ".superinst_speedup", speedup);
        }
    }

    json.putRange("superinst_speedup", speedups);
    json.put("superinst.total_windows", totalWindows);
    printf("\ncorpus geomean speedup: %s over %zu program(s), %llu "
           "fused window(s)\n", fmtRatio(geomean(speedups)).c_str(),
           speedups.size(),
           static_cast<unsigned long long>(totalWindows));
    printf("gate: scripts/check_bench.py --superinst-floor holds the "
           "geomean (same-run invariant)\n");

    writeCsv("superinst.csv",
             "suite,program,windows,unfused_s,fused_s,speedup", csv);
    const std::string jsonPath = json.write();
    if (!jsonPath.empty()) printf("wrote %s\n", jsonPath.c_str());
    return 0;
}
