/**
 * @file
 * Static-analysis throughput: wall-clock cost of the abstract-
 * interpretation dataflow pass (analysis::Analysis::build + the taint
 * scan, docs/ANALYSIS.md) over every corpus program.
 *
 * Two kinds of metrics join the cross-PR trajectory:
 *  - `<program>.analyze_us` — absolute pass time (reported, not gated;
 *    host-dependent like all absolute times).
 *  - deterministic structural counts (`<program>.findings`, corpus
 *    totals) — identical inputs must produce identical values, so
 *    check_bench.py gates them symmetrically: a drifting finding count
 *    means the analysis changed behavior, not the machine.
 *
 * The full corpus runs even under WIZPP_BENCH_FAST: the pass is
 * milliseconds per program, and the deterministic totals must key
 * against the committed baseline exactly.
 *
 * Emits BENCH_analysis.json and results/analysis_pass.csv.
 */

#include <iostream>
#include <string>
#include <vector>

#include "analysis/analysis.h"
#include "analysis/taint.h"
#include "harness.h"
#include "wat/wat.h"

using namespace wizpp;
using namespace wizpp::bench;

int
main()
{
    std::vector<const BenchProgram*> programs;
    for (const auto& p : allPrograms()) programs.push_back(&p);
    programs.push_back(&richardsProgram());

    JsonReport report("analysis");
    std::vector<std::string> csv;

    uint64_t totalInstrs = 0, totalReachable = 0, totalFindings = 0,
             totalPtrLocals = 0;
    double totalUs = 0;

    std::cout << "=== static-analysis pass (" << programs.size()
              << " programs, reps=" << reps() << ") ===\n";
    for (const BenchProgram* p : programs) {
        auto parsed = parseWat(p->wat);
        if (!parsed.ok()) {
            std::cerr << "analysis_pass: parse failed: " << p->name
                      << "\n";
            return 1;
        }
        Module m = parsed.take();

        double best = 0;
        uint64_t findings = 0, instrs = 0, reachable = 0,
                 ptrLocals = 0;
        for (int i = 0; i < reps(); i++) {
            double t0 = nowSeconds();
            auto ar = analysis::Analysis::build(m);
            if (!ar.ok()) {
                std::cerr << "analysis_pass: analysis failed: "
                          << p->name << "\n";
                return 1;
            }
            analysis::TaintReport rep =
                analysis::analyzeTaint(m, ar.value());
            double dt = nowSeconds() - t0;
            if (i == 0 || dt < best) best = dt;

            findings = rep.findings.size();
            instrs = reachable = ptrLocals = 0;
            for (uint32_t f = 0; f < ar.value().numFuncs(); f++) {
                const analysis::FuncFacts& ff = ar.value().func(f);
                instrs += ff.pcs.size();
                reachable += ff.reachableCount;
                for (uint64_t bits = ff.pointerLocals; bits;
                     bits &= bits - 1) {
                    ptrLocals++;
                }
            }
        }

        double us = best * 1e6;
        totalUs += us;
        totalInstrs += instrs;
        totalReachable += reachable;
        totalFindings += findings;
        totalPtrLocals += ptrLocals;

        report.put(p->name + ".analyze_us", us);
        report.put(p->name + ".findings", findings);
        csv.push_back(p->name + "," + std::to_string(us) + "," +
                      std::to_string(instrs) + "," +
                      std::to_string(reachable) + "," +
                      std::to_string(findings));
        std::cout << "  " << p->name << ": " << us << " us, " << instrs
                  << " instr(s), " << findings << " finding(s)\n";
    }

    report.put("analysis.programs",
               static_cast<uint64_t>(programs.size()));
    report.put("analysis.total_us", totalUs);
    report.put("analysis.total_instrs", totalInstrs);
    report.put("analysis.total_reachable", totalReachable);
    report.put("analysis.total_findings", totalFindings);
    report.put("analysis.total_ptr_locals", totalPtrLocals);

    std::cout << "corpus: " << totalUs << " us total, " << totalInstrs
              << " instrs (" << totalReachable << " reachable), "
              << totalFindings << " taint finding(s), "
              << totalPtrLocals << " pointer-like local(s)\n";

    writeCsv("analysis_pass.csv",
             "program,analyze_us,instrs,reachable,findings", csv);
    std::string path = report.write();
    if (!path.empty()) std::cout << "wrote " << path << "\n";
    return 0;
}
