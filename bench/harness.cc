#include "harness.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <unordered_map>

#include "monitors/entryexit.h"
#include "monitors/monitors.h"
#include "wat/wat.h"
#include "wasm/opcodes.h"

namespace wizpp::bench {

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Parsed-module cache: WAT parsing is our build step, not program
 *  load, so it stays outside the timed region. */
const Module&
parsedModule(const BenchProgram& p)
{
    static std::unordered_map<const BenchProgram*,
                              std::unique_ptr<Module>> cache;
    auto it = cache.find(&p);
    if (it != cache.end()) return *it->second;
    auto r = parseWat(p.wat);
    if (!r.ok()) {
        throw std::runtime_error("parse " + p.name + ": " +
                                 r.error().toString());
    }
    auto m = std::make_unique<Module>(r.take());
    const Module& ref = *m;
    cache.emplace(&p, std::move(m));
    return ref;
}

void
check(bool ok, const std::string& what)
{
    if (!ok) throw std::runtime_error("bench harness: " + what);
}

/** Installs the tool's probes; returns a fire-count reader. */
struct Instrumentation
{
    std::unique_ptr<Monitor> monitor;
    std::vector<std::shared_ptr<CountProbe>> counters;
    std::vector<std::shared_ptr<Probe>> probes;
    std::unique_ptr<FunctionEntryExit> entryExit;
    std::shared_ptr<uint64_t> entryExitFires;
    HotnessMonitor* hotness = nullptr;
    BranchMonitor* branch = nullptr;

    uint64_t
    fires(Engine& eng) const
    {
        if (hotness) return hotness->totalCount();
        if (branch) return branch->totalFires();
        if (entryExitFires) return *entryExitFires;
        uint64_t n = 0;
        for (const auto& c : counters) n += c->count;
        if (!counters.empty()) return n;
        return eng.probes().localFireCount + eng.probes().globalFireCount;
    }
};

void
instrument(Engine& eng, Tool tool, Instrumentation* out)
{
    switch (tool) {
      case Tool::None:
        break;
      case Tool::HotnessLocal: {
        auto m = std::make_unique<HotnessMonitor>(false);
        out->hotness = m.get();
        eng.attachMonitor(m.get());
        out->monitor = std::move(m);
        break;
      }
      case Tool::HotnessGlobal: {
        auto m = std::make_unique<HotnessMonitor>(true);
        out->hotness = m.get();
        eng.attachMonitor(m.get());
        out->monitor = std::move(m);
        break;
      }
      case Tool::BranchLocal: {
        auto m = std::make_unique<BranchMonitor>(false);
        out->branch = m.get();
        eng.attachMonitor(m.get());
        out->monitor = std::move(m);
        break;
      }
      case Tool::BranchGlobal: {
        auto m = std::make_unique<BranchMonitor>(true);
        out->branch = m.get();
        eng.attachMonitor(m.get());
        out->monitor = std::move(m);
        break;
      }
      case Tool::HotnessEmpty: {
        // Empty probes at every instruction: measures T_PD (probe
        // dispatch) without M-code (Section 5.3 methodology).
        for (uint32_t f = 0; f < eng.numFuncs(); f++) {
            FuncState& fs = eng.funcState(f);
            if (fs.decl->imported) continue;
            for (uint32_t pc : fs.sideTable.instrBoundaries) {
                auto p = std::make_shared<EmptyProbe>();
                eng.probes().insertLocal(f, pc, p);
                out->probes.push_back(p);
            }
        }
        break;
      }
      case Tool::BranchEmpty: {
        for (uint32_t f = 0; f < eng.numFuncs(); f++) {
            FuncState& fs = eng.funcState(f);
            if (fs.decl->imported) continue;
            const auto& code = fs.decl->code;
            for (uint32_t pc : fs.sideTable.instrBoundaries) {
                uint8_t op = code[pc];
                if (op != OP_IF && op != OP_BR_IF && op != OP_BR_TABLE) {
                    continue;
                }
                auto p = std::make_shared<EmptyOperandProbe>();
                eng.probes().insertLocal(f, pc, p);
                out->probes.push_back(p);
            }
        }
        break;
      }
      case Tool::FusedPair: {
        // A CountProbe plus an EmptyProbe fused at every instruction:
        // every site has two members, so the compiled tier lowers each
        // to kJProbeFused (one pre-resolved call) when fused
        // intrinsification is on, and to the full generic path when
        // off — the BENCH_fig4 fused-kind comparison.
        std::vector<ProbeManager::SiteProbe> batch;
        for (uint32_t f = 0; f < eng.numFuncs(); f++) {
            FuncState& fs = eng.funcState(f);
            if (fs.decl->imported) continue;
            for (uint32_t pc : fs.sideTable.instrBoundaries) {
                auto c = std::make_shared<CountProbe>();
                out->counters.push_back(c);
                batch.push_back({f, pc, std::move(c)});
                batch.push_back({f, pc, std::make_shared<EmptyProbe>()});
            }
        }
        eng.probes().insertBatch(batch);
        break;
      }
      case Tool::EntryExit: {
        // FunctionEntryExit hooks over the whole module (counting
        // callbacks): entry/exit sites lower to kJProbeEntryExit when
        // entry/exit intrinsification is on.
        auto fires = std::make_shared<uint64_t>(0);
        out->entryExitFires = fires;
        out->entryExit = std::make_unique<FunctionEntryExit>(
            eng,
            [fires](uint32_t, uint64_t) { ++*fires; },
            [fires](uint32_t, uint64_t) { ++*fires; });
        out->entryExit->instrumentAll();
        break;
      }
    }
}

} // namespace

int
reps()
{
    const char* e = std::getenv("WIZPP_BENCH_REPS");
    int r = e ? std::atoi(e) : 2;
    return r < 1 ? 1 : r;
}

double
nowSeconds()
{
    return now();
}

bool
fastMode()
{
    // Presence alone is not enough: WIZPP_BENCH_FAST=0 must mean off,
    // or a full-trajectory run silently measures the subset.
    const char* e = std::getenv("WIZPP_BENCH_FAST");
    return e && *e && std::string(e) != "0";
}

std::vector<const BenchProgram*>
selectPrograms(const std::string& suite)
{
    auto all = programsBySuite(suite);
    if (!fastMode()) return all;
    std::vector<const BenchProgram*> subset;
    for (size_t i = 0; i < all.size(); i += 4) subset.push_back(all[i]);
    return subset;
}

Measurement
runWizard(const BenchProgram& p, ExecMode mode, Tool tool, bool intrinsify,
          uint32_t n)
{
    const Module& m = parsedModule(p);
    EngineConfig cfg;
    cfg.mode = mode;
    cfg.intrinsifyCountProbe = intrinsify;
    cfg.intrinsifyOperandProbe = intrinsify;
    cfg.intrinsifyEntryExitProbe = intrinsify;
    cfg.intrinsifyFusedProbe = intrinsify;

    double t0 = now();
    Engine eng(cfg);
    check(eng.loadModule(m).ok(), "load " + p.name);
    Instrumentation inst;
    instrument(eng, tool, &inst);
    check(eng.instantiate().ok(), "instantiate " + p.name);
    auto r = eng.callExport(p.entry, {Value::makeI32(n)});
    check(r.ok(), "run " + p.name);
    double t1 = now();

    Measurement out;
    out.seconds = t1 - t0;
    out.probeFires = inst.fires(eng);
    return out;
}

Measurement
runWizardWithConfig(const BenchProgram& p, const EngineConfig& cfg,
                    Tool tool, uint32_t n)
{
    const Module& m = parsedModule(p);
    double t0 = now();
    Engine eng(cfg);
    check(eng.loadModule(m).ok(), "load " + p.name);
    Instrumentation inst;
    instrument(eng, tool, &inst);
    check(eng.instantiate().ok(), "instantiate " + p.name);
    auto r = eng.callExport(p.entry, {Value::makeI32(n)});
    check(r.ok(), "run " + p.name);
    Measurement out;
    out.seconds = now() - t0;
    out.probeFires = inst.fires(eng);
    return out;
}

double
timeAfterGlobalExcursion(const BenchProgram& p, uint32_t n,
                         bool excursion)
{
    const Module& m = parsedModule(p);
    double best = 0;
    for (int i = 0; i < reps(); i++) {
        EngineConfig cfg;
        cfg.mode = ExecMode::Jit;
        Engine eng(cfg);
        check(eng.loadModule(m).ok(), "load " + p.name);
        check(eng.instantiate().ok(), "instantiate " + p.name);
        // Warm run.
        check(eng.callExport(p.entry, {Value::makeI32(1)}).ok(), "warm");
        if (excursion) {
            // Brief global-probe excursion: one run in interpreter-only
            // mode, then back.
            auto probe = std::make_shared<CountProbe>();
            eng.probes().insertGlobal(probe);
            check(eng.callExport(p.entry, {Value::makeI32(1)}).ok(),
                  "g-run");
            eng.probes().removeGlobal(probe.get());
        }
        // Timed run: compiled code must (still) be in place.
        double t0 = now();
        check(eng.callExport(p.entry, {Value::makeI32(n)}).ok(), "run");
        double dt = now() - t0;
        if (i == 0 || dt < best) best = dt;
    }
    return best;
}

Measurement
measureWizard(const BenchProgram& p, ExecMode mode, Tool tool,
              bool intrinsify, uint32_t n)
{
    Measurement best;
    for (int i = 0; i < reps(); i++) {
        Measurement m = runWizard(p, mode, tool, intrinsify, n);
        if (i == 0 || m.seconds < best.seconds) {
            best.seconds = m.seconds;
        }
        best.probeFires = m.probeFires;
    }
    return best;
}

Measurement
measureRewrite(const BenchProgram& p, RewriteKind kind, uint32_t n)
{
    const Module& m = parsedModule(p);
    Measurement best;
    for (int i = 0; i < reps(); i++) {
        double t0 = now();
        auto rr = rewriteForCounting(m, kind);
        check(rr.ok(), "rewrite " + p.name);
        EngineConfig cfg;
        cfg.mode = ExecMode::Jit;
        Engine eng(cfg);
        check(eng.loadModule(std::move(rr.value().module)).ok(),
              "load rewritten " + p.name);
        check(eng.instantiate().ok(), "instantiate rewritten " + p.name);
        auto r = eng.callExport(p.entry, {Value::makeI32(n)});
        check(r.ok(), "run rewritten " + p.name);
        double dt = now() - t0;
        if (i == 0 || dt < best.seconds) best.seconds = dt;
        best.probeFires = rr.value().numCounters;
    }
    return best;
}

Measurement
measureWasabi(const BenchProgram& p, WasabiKind kind, uint32_t n)
{
    const Module& m = parsedModule(p);
    Measurement best;
    for (int i = 0; i < reps(); i++) {
        double t0 = now();
        auto wr = wasabiInstrument(m, kind);
        check(wr.ok(), "wasabi " + p.name);
        WasabiHost host;
        EngineConfig cfg;
        cfg.mode = ExecMode::Jit;
        Engine eng(cfg);
        host.bind(&eng.imports());
        check(eng.loadModule(std::move(wr.value().module)).ok(),
              "load wasabi " + p.name);
        check(eng.instantiate().ok(), "instantiate wasabi " + p.name);
        auto r = eng.callExport(p.entry, {Value::makeI32(n)});
        check(r.ok(), "run wasabi " + p.name);
        double dt = now() - t0;
        if (i == 0 || dt < best.seconds) best.seconds = dt;
        best.probeFires = host.instrEvents + host.branchEvents;
    }
    return best;
}

Measurement
measureDbt(const BenchProgram& p, DbtKind kind, uint32_t n)
{
    const Module& m = parsedModule(p);
    Measurement best;
    for (int i = 0; i < reps(); i++) {
        double t0 = now();
        EngineConfig cfg;
        cfg.mode = ExecMode::Jit;
        Engine eng(cfg);
        check(eng.loadModule(m).ok(), "load dbt " + p.name);
        DbtInstrumenter dbt(eng, kind);
        check(eng.instantiate().ok(), "instantiate dbt " + p.name);
        auto r = eng.callExport(p.entry, {Value::makeI32(n)});
        check(r.ok(), "run dbt " + p.name);
        double dt = now() - t0;
        if (i == 0 || dt < best.seconds) best.seconds = dt;
        best.probeFires = dbt.blocksExecuted();
    }
    return best;
}

JsonReport::JsonReport(std::string name) : _name(std::move(name))
{
    put("reps", static_cast<uint64_t>(reps()));
    put("fast_mode", static_cast<uint64_t>(fastMode() ? 1 : 0));
}

void
JsonReport::put(const std::string& key, double value)
{
    char buf[64];
    // %.17g round-trips doubles; non-finite values are not valid JSON,
    // so degrade them to null.
    if (std::isfinite(value)) snprintf(buf, sizeof(buf), "%.17g", value);
    else snprintf(buf, sizeof(buf), "null");
    _entries.emplace_back(key, buf);
}

void
JsonReport::put(const std::string& key, uint64_t value)
{
    _entries.emplace_back(key, std::to_string(value));
}

void
JsonReport::putRange(const std::string& prefix,
                     const std::vector<double>& xs)
{
    if (xs.empty()) return;
    double lo = xs[0], hi = xs[0];
    for (double x : xs) {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
    put(prefix + ".min", lo);
    put(prefix + ".max", hi);
    put(prefix + ".geomean", geomean(xs));
}

std::string
JsonReport::write() const
{
    const char* dir = std::getenv("WIZPP_BENCH_JSON_DIR");
    std::filesystem::path path(dir ? dir : ".");
    std::error_code ec;
    std::filesystem::create_directories(path, ec);
    path /= "BENCH_" + _name + ".json";

    std::ofstream out(path);
    out << "{\n  \"bench\": \"" << _name << "\",\n  \"metrics\": {";
    bool first = true;
    for (const auto& [key, value] : _entries) {
        if (!first) out << ",";
        first = false;
        out << "\n    \"" << key << "\": " << value;
    }
    out << "\n  }\n}\n";
    out.flush();
    if (ec || !out.good()) {
        fprintf(stderr, "JsonReport: FAILED to write %s\n",
                path.string().c_str());
        return {};
    }
    return path.string();
}

std::string
fmtRatio(double r)
{
    char buf[32];
    snprintf(buf, sizeof(buf), "%.2fx", r);
    return buf;
}

void
writeCsv(const std::string& filename, const std::string& header,
         const std::vector<std::string>& rows)
{
    std::filesystem::create_directories("results");
    std::ofstream out("results/" + filename);
    out << header << "\n";
    for (const auto& r : rows) out << r << "\n";
}

double
geomean(const std::vector<double>& xs)
{
    if (xs.empty()) return 0;
    double logSum = 0;
    for (double x : xs) logSum += std::log(x);
    return std::exp(logSum / static_cast<double>(xs.size()));
}

} // namespace wizpp::bench
