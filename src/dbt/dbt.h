/**
 * @file
 * DynamoRIO-like dynamic-binary-translation baseline (paper
 * Section 5.7).
 *
 * The paper instruments natively-compiled benchmark programs with
 * DynamoRIO. We cannot execute native x86 here, so this module
 * reproduces DynamoRIO's *mechanism and cost structure* on the engine's
 * compiled tier (DESIGN.md substitution S3):
 *
 *  - basic blocks are discovered from the control-flow side tables
 *    (block entry = function start, branch target, or post-branch
 *    fall-through), mirroring a DBT's block cache;
 *  - a *clean call* trampoline runs at every block entry: the simulated
 *    machine context (16 GPRs + flags) is saved and restored around the
 *    analysis callback, as DynamoRIO does for unoptimized clean calls;
 *  - the hotness variant additionally increments one counter per
 *    instruction in the block with an EFLAGS spill/restore around each
 *    increment — the exact effect the paper cites for DynamoRIO's
 *    counter overhead ("inserts instructions to spill and restore
 *    EFLAGS for each counter increment").
 */

#ifndef WIZPP_DBT_DBT_H
#define WIZPP_DBT_DBT_H

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "probes/probe.h"
#include "support/result.h"
#include "wasm/module.h"

namespace wizpp {

class Engine;

/** Instrumentation flavor, matching the paper's two monitors. */
enum class DbtKind : uint8_t {
    Hotness,
    Branch,
};

/**
 * Attaches DBT-style instrumentation to an engine. The engine must
 * have a module loaded; blocks are discovered eagerly (DBT block-cache
 * population) and clean-call trampolines installed at block entries.
 */
class DbtInstrumenter
{
  public:
    DbtInstrumenter(Engine& engine, DbtKind kind);

    uint64_t blocksExecuted() const { return _blocksExecuted; }
    uint64_t instructionsCounted() const { return _instructionsCounted; }
    uint64_t branchesTallied() const { return _branchesTallied; }
    size_t numBlocks() const { return _numBlocks; }

  private:
    struct Block
    {
        uint32_t funcIndex;
        uint32_t startPc;
        uint32_t instrCount;      ///< instructions in the block
        uint32_t branchesInBlock;
        std::vector<uint64_t> counters;  ///< per-instruction counters
    };

    void discoverBlocks(Engine& engine);
    void instrumentBlock(Engine& engine, std::shared_ptr<Block> block);

    /** Simulated machine-context save/restore (clean call). */
    void cleanCall(Block& block);

    DbtKind _kind;
    uint64_t _blocksExecuted = 0;
    uint64_t _instructionsCounted = 0;
    uint64_t _branchesTallied = 0;
    size_t _numBlocks = 0;

    /**
     * Simulated machine context spilled/restored around clean calls:
     * 16 GPRs + 16 x 256-bit vector registers + flags, as DynamoRIO
     * preserves for unoptimized clean calls.
     */
    uint64_t _machineContext[81] = {};
    uint64_t _spillArea[81] = {};
    /** Simulated EFLAGS spill slot (lahf/seto ... sahf round trip). */
    volatile uint64_t _eflagsSpill = 0;
    volatile uint64_t _flagsScratch = 0;

    /** Installed trampolines (block-entry probes). */
    std::vector<std::shared_ptr<Probe>> _trampolines;
};

} // namespace wizpp

#endif // WIZPP_DBT_DBT_H
