#include "dbt/dbt.h"

#include <algorithm>
#include <cstring>
#include <set>

#include "engine/engine.h"
#include "wasm/decoder.h"
#include "wasm/opcodes.h"

namespace wizpp {

DbtInstrumenter::DbtInstrumenter(Engine& engine, DbtKind kind)
    : _kind(kind)
{
    discoverBlocks(engine);
}

void
DbtInstrumenter::discoverBlocks(Engine& engine)
{
    for (uint32_t f = 0; f < engine.numFuncs(); f++) {
        FuncState& fs = engine.funcState(f);
        if (fs.decl->imported) continue;
        const SideTable& st = fs.sideTable;
        const std::vector<uint8_t>& code = fs.decl->code;

        // Block leaders: function entry, branch targets, post-branch
        // fall-throughs, post-call sites.
        std::set<uint32_t> leaders;
        leaders.insert(st.instrBoundaries.empty()
                           ? 0 : st.instrBoundaries.front());
        for (const auto& [pc, e] : st.branches) {
            leaders.insert(e.targetPc);
        }
        for (const auto& [pc, arms] : st.brTables) {
            for (const auto& arm : arms) leaders.insert(arm.targetPc);
        }
        for (size_t i = 0; i < st.instrBoundaries.size(); i++) {
            uint32_t pc = st.instrBoundaries[i];
            uint8_t op = code[pc];
            bool endsBlock = isBranchOpcode(op) || isCallOpcode(op) ||
                             op == OP_RETURN || op == OP_LOOP ||
                             op == OP_ELSE;
            if (endsBlock && i + 1 < st.instrBoundaries.size()) {
                leaders.insert(st.instrBoundaries[i + 1]);
            }
        }

        // Materialize blocks and install a clean-call trampoline at
        // each leader (the DBT block-cache + trampoline structure).
        std::vector<uint32_t> sorted(leaders.begin(), leaders.end());
        for (size_t b = 0; b < sorted.size(); b++) {
            uint32_t start = sorted[b];
            uint32_t end = (b + 1 < sorted.size())
                               ? sorted[b + 1]
                               : (st.instrBoundaries.empty()
                                      ? 0 : st.instrBoundaries.back() + 1);
            auto block = std::make_shared<Block>();
            block->funcIndex = f;
            block->startPc = start;
            block->instrCount = 0;
            block->branchesInBlock = 0;
            for (uint32_t pc : st.instrBoundaries) {
                if (pc < start || pc >= end) continue;
                block->instrCount++;
                uint8_t op = code[pc];
                if (op == OP_IF || op == OP_BR_IF || op == OP_BR_TABLE) {
                    block->branchesInBlock++;
                }
            }
            if (block->instrCount == 0) continue;
            block->counters.assign(block->instrCount, 0);
            instrumentBlock(engine, block);
            _numBlocks++;
        }
    }
}

void
DbtInstrumenter::instrumentBlock(Engine& engine,
                                 std::shared_ptr<Block> block)
{
    auto probe = makeProbe([this, block](ProbeContext&) {
        cleanCall(*block);
    });
    engine.probes().insertLocal(block->funcIndex, block->startPc, probe);
    _trampolines.push_back(probe);
}

void
DbtInstrumenter::cleanCall(Block& block)
{
    // Context save: DynamoRIO clean calls spill the full GPR file +
    // flags before entering analysis code, and restore after.
    std::memcpy(_spillArea, _machineContext, sizeof(_machineContext));
    _blocksExecuted++;

    if (_kind == DbtKind::Hotness) {
        // One counter increment per instruction in the block, each
        // bracketed by an EFLAGS spill/restore (lahf/seto ... sahf) —
        // the specific cost the paper cites for DynamoRIO's counters.
        // The spill is a store+load round trip through memory on both
        // sides of the increment.
        for (uint32_t i = 0; i < block.instrCount; i++) {
            _eflagsSpill = _machineContext[80];   // lahf; seto; push
            _flagsScratch = _eflagsSpill + 1;
            block.counters[i]++;
            _instructionsCounted++;
            _eflagsSpill = _flagsScratch;         // pop; add; sahf
            _machineContext[80] = _eflagsSpill - 1;
        }
    } else {
        // Branch monitor: tally branch executions in this block.
        _branchesTallied += block.branchesInBlock;
    }

    // Context restore.
    std::memcpy(_machineContext, _spillArea, sizeof(_machineContext));
}

} // namespace wizpp
