/**
 * @file
 * JVMTI-like agent interface (paper Section 6 comparison).
 *
 * The paper measures a JVMTI MethodEntry agent on the Richards
 * benchmark at 50–100× overhead versus 2.5–3× for Wizard's probe-based
 * Calls monitor. JVMTI's cost comes from its *generality*: every method
 * entry raises a heap-allocated event through a generic environment —
 * the callback is looked up per event, method identity arrives as an
 * opaque id that must be resolved through further environment calls
 * (GetMethodName etc.), and arguments are boxed.
 *
 * This module reproduces that event-pipe architecture on our engine
 * (DESIGN.md substitution S5): an agent registers for METHOD_ENTRY
 * events; every function entry allocates an event record, resolves the
 * callback through a string-keyed environment table, and resolves the
 * method name through an id→name lookup — versus the Calls monitor's
 * direct probes.
 */

#ifndef WIZPP_JVMTI_JVMTI_H
#define WIZPP_JVMTI_JVMTI_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "probes/probe.h"

namespace wizpp {

class Engine;

/** Opaque method id (the jmethodID analogue). */
using MethodId = uint64_t;

/** A generic agent event (the jvmtiEvent analogue). */
struct AgentEvent
{
    std::string type;                 ///< "MethodEntry", ...
    MethodId method = 0;
    std::map<std::string, uint64_t> payload;
};

/**
 * The agent environment: generic, string-keyed event plumbing.
 * Everything goes through this indirection, as in JVMTI.
 */
class AgentEnv
{
  public:
    explicit AgentEnv(Engine& engine);

    /** Registers a callback for an event type (SetEventCallbacks). */
    void setEventCallback(const std::string& type,
                          std::function<void(AgentEnv&,
                                             const AgentEvent&)> cb);

    /** Enables event generation (SetEventNotificationMode). */
    void enableEvent(const std::string& type);

    /** Resolves a method id to its name (GetMethodName). */
    std::string getMethodName(MethodId id);

    /** Raises an event through the generic pipe. */
    void postEvent(std::unique_ptr<AgentEvent> event);

    uint64_t eventsPosted = 0;

  private:
    Engine& _engine;
    std::map<std::string,
             std::function<void(AgentEnv&, const AgentEvent&)>> _callbacks;
    std::map<std::string, bool> _enabled;
    std::map<MethodId, std::string> _methodNames;
    std::vector<std::shared_ptr<Probe>> _probes;
};

/**
 * A MethodEntry-counting agent, the Section 6 experiment's workload:
 * counts entries per method, resolving each method's name through the
 * environment (as the paper's JVMTI CallsMonitor agent does in C).
 */
class MethodEntryAgent
{
  public:
    explicit MethodEntryAgent(Engine& engine);

    uint64_t totalEntries() const { return _totalEntries; }
    const std::map<std::string, uint64_t>& entryCounts() const
    {
        return _entryCounts;
    }

  private:
    AgentEnv _env;
    uint64_t _totalEntries = 0;
    std::map<std::string, uint64_t> _entryCounts;
};

} // namespace wizpp

#endif // WIZPP_JVMTI_JVMTI_H
