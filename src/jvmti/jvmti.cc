#include "jvmti/jvmti.h"

#include "engine/engine.h"

namespace wizpp {

AgentEnv::AgentEnv(Engine& engine) : _engine(engine)
{
    // Populate the method-id table (the VM knows method identities).
    for (uint32_t f = 0; f < engine.numFuncs(); f++) {
        const FuncDecl& d = *engine.funcState(f).decl;
        std::string name = d.name.empty()
                               ? "func" + std::to_string(f) : d.name;
        _methodNames[f] = name;
    }
}

void
AgentEnv::setEventCallback(
    const std::string& type,
    std::function<void(AgentEnv&, const AgentEvent&)> cb)
{
    _callbacks[type] = std::move(cb);
}

std::string
AgentEnv::getMethodName(MethodId id)
{
    auto it = _methodNames.find(id);
    return it == _methodNames.end() ? "<unknown>" : it->second;
}

void
AgentEnv::postEvent(std::unique_ptr<AgentEvent> event)
{
    eventsPosted++;
    // Generic dispatch: enabled check + callback lookup by type string.
    auto en = _enabled.find(event->type);
    if (en == _enabled.end() || !en->second) return;
    auto cb = _callbacks.find(event->type);
    if (cb == _callbacks.end()) return;
    cb->second(*this, *event);
}

void
AgentEnv::enableEvent(const std::string& type)
{
    _enabled[type] = true;
    if (type != "MethodEntry") return;
    // The VM arms method-entry event generation: every function entry
    // allocates a boxed event and posts it through the generic pipe.
    for (uint32_t f = 0; f < _engine.numFuncs(); f++) {
        FuncState& fs = _engine.funcState(f);
        if (fs.decl->imported) continue;
        if (fs.sideTable.instrBoundaries.empty()) continue;
        auto probe = makeProbe([this, f](ProbeContext&) {
            auto event = std::make_unique<AgentEvent>();
            event->type = "MethodEntry";
            event->method = f;
            event->payload["thread"] = 0;
            postEvent(std::move(event));
        });
        _engine.probes().insertLocal(f, 0, probe);
        _probes.push_back(probe);
    }
}

MethodEntryAgent::MethodEntryAgent(Engine& engine) : _env(engine)
{
    _env.setEventCallback(
        "MethodEntry",
        [this](AgentEnv& env, const AgentEvent& e) {
            // Resolve the opaque method id through the environment on
            // every event, as the paper's C agent must.
            std::string name = env.getMethodName(e.method);
            _entryCounts[name]++;
            _totalEntries++;
        });
    _env.enableEvent("MethodEntry");
}

} // namespace wizpp
