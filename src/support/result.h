/**
 * @file
 * Minimal error-carrying result type used by decoders, parsers and the
 * validator. We avoid exceptions in the engine core (interpreter loops
 * and probe dispatch are hot paths) and thread errors explicitly.
 */

#ifndef WIZPP_SUPPORT_RESULT_H
#define WIZPP_SUPPORT_RESULT_H

#include <string>
#include <utility>

namespace wizpp {

/** An error message with an optional byte/character offset. */
struct Error
{
    std::string message;
    size_t offset = 0;

    std::string toString() const
    {
        return message + " @ offset " + std::to_string(offset);
    }
};

/** Either a value or an error. */
template <typename T>
class Result
{
  public:
    Result(T value) : _value(std::move(value)), _ok(true) {}
    Result(Error error) : _error(std::move(error)), _ok(false) {}

    bool ok() const { return _ok; }
    explicit operator bool() const { return _ok; }

    T& value() { return _value; }
    const T& value() const { return _value; }
    T take() { return std::move(_value); }

    const Error& error() const { return _error; }

  private:
    T _value{};
    Error _error{};
    bool _ok;
};

} // namespace wizpp

#endif // WIZPP_SUPPORT_RESULT_H
