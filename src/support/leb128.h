/**
 * @file
 * LEB128 variable-length integer encoding and decoding.
 *
 * WebAssembly's binary format encodes all integers as LEB128: unsigned
 * (ULEB128) for counts and indices, signed (SLEB128) for constants.
 * These helpers are shared by the binary decoder, the encoder, and the
 * bytecode-rewriting baseline.
 */

#ifndef WIZPP_SUPPORT_LEB128_H
#define WIZPP_SUPPORT_LEB128_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wizpp {

/** Result of a LEB128 decode: the value and the number of bytes consumed. */
template <typename T>
struct LebResult
{
    T value = 0;
    size_t length = 0;  ///< bytes consumed; 0 means malformed/truncated
    bool ok() const { return length != 0; }
};

/**
 * Decodes an unsigned LEB128 value of at most @p maxBits bits.
 *
 * @param data  start of the encoded bytes
 * @param end   one past the last readable byte
 * @return value and consumed length; length 0 on malformed input
 */
template <typename T, unsigned maxBits = sizeof(T) * 8>
inline LebResult<T>
decodeULEB(const uint8_t* data, const uint8_t* end)
{
    static_assert(!std::is_signed_v<T>, "use decodeSLEB for signed types");
    LebResult<T> r;
    T result = 0;
    unsigned shift = 0;
    const uint8_t* p = data;
    while (p < end) {
        uint8_t byte = *p++;
        if (shift >= maxBits) return r;  // too many bytes
        // The last byte may only use the remaining bits.
        unsigned remaining = maxBits - shift;
        if (remaining < 7 && (byte & 0x7f) >> remaining) return r;
        result |= static_cast<T>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0) {
            r.value = result;
            r.length = static_cast<size_t>(p - data);
            return r;
        }
        shift += 7;
    }
    return r;  // truncated
}

/**
 * Decodes a signed LEB128 value of at most @p maxBits bits.
 */
template <typename T, unsigned maxBits = sizeof(T) * 8>
inline LebResult<T>
decodeSLEB(const uint8_t* data, const uint8_t* end)
{
    static_assert(std::is_signed_v<T>, "use decodeULEB for unsigned types");
    LebResult<T> r;
    using U = std::make_unsigned_t<T>;
    U result = 0;
    unsigned shift = 0;
    const uint8_t* p = data;
    while (p < end) {
        uint8_t byte = *p++;
        if (shift >= maxBits + 7) return r;
        result |= static_cast<U>(byte & 0x7f) << shift;
        shift += 7;
        if ((byte & 0x80) == 0) {
            // Sign-extend from the last bit written.
            if (shift < sizeof(T) * 8 && (byte & 0x40)) {
                result |= ~U{0} << shift;
            }
            r.value = static_cast<T>(result);
            r.length = static_cast<size_t>(p - data);
            return r;
        }
    }
    return r;  // truncated
}

/** Appends an unsigned LEB128 encoding of @p value to @p out. */
template <typename T>
inline void
encodeULEB(std::vector<uint8_t>& out, T value)
{
    static_assert(!std::is_signed_v<T>);
    do {
        uint8_t byte = value & 0x7f;
        value >>= 7;
        if (value != 0) byte |= 0x80;
        out.push_back(byte);
    } while (value != 0);
}

/** Appends a signed LEB128 encoding of @p value to @p out. */
template <typename T>
inline void
encodeSLEB(std::vector<uint8_t>& out, T value)
{
    static_assert(std::is_signed_v<T>);
    bool more = true;
    while (more) {
        uint8_t byte = value & 0x7f;
        value >>= 7;
        bool signBit = (byte & 0x40) != 0;
        if ((value == 0 && !signBit) || (value == -1 && signBit)) {
            more = false;
        } else {
            byte |= 0x80;
        }
        out.push_back(byte);
    }
}

/** Appends a 5-byte, padded ULEB128 (used for patchable section sizes). */
inline void
encodePaddedULEB32(std::vector<uint8_t>& out, uint32_t value)
{
    for (int i = 0; i < 4; i++) {
        out.push_back(static_cast<uint8_t>((value & 0x7f) | 0x80));
        value >>= 7;
    }
    out.push_back(static_cast<uint8_t>(value & 0x7f));
}

/** Returns the encoded size, in bytes, of a ULEB128 value. */
template <typename T>
inline size_t
sizeULEB(T value)
{
    size_t n = 0;
    do { n++; value >>= 7; } while (value != 0);
    return n;
}

} // namespace wizpp

#endif // WIZPP_SUPPORT_LEB128_H
