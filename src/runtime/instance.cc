#include "runtime/instance.h"

namespace wizpp {

namespace {

Result<Value>
evalInitExpr(const InitExpr& e, const std::vector<GlobalVar>& globals)
{
    switch (e.kind) {
      case InitExpr::Kind::I32Const:
        return Value{ValType::I32, e.bits & 0xffffffffu};
      case InitExpr::Kind::I64Const:
        return Value{ValType::I64, e.bits};
      case InitExpr::Kind::F32Const:
        return Value{ValType::F32, e.bits & 0xffffffffu};
      case InitExpr::Kind::F64Const:
        return Value{ValType::F64, e.bits};
      case InitExpr::Kind::GlobalGet:
        if (e.index >= globals.size()) {
            return Error{"init expr global out of range", 0};
        }
        return globals[e.index].value;
      default:
        return Error{"unsupported init expr", 0};
    }
}

} // namespace

Result<Instance>
Instance::instantiate(const Module& m, const ImportMap& imports)
{
    Instance inst;
    inst.module = &m;

    // Resolve imported functions.
    inst.hostFuncs.resize(m.functions.size());
    for (const auto& f : m.functions) {
        if (!f.imported) continue;
        const HostFunc* hf = imports.findFunc(f.importModule, f.importName);
        if (!hf) {
            return Error{"unresolved import " + f.importModule + "." +
                         f.importName, 0};
        }
        if (!(hf->type == m.types[f.typeIndex])) {
            return Error{"import signature mismatch for " + f.importModule +
                         "." + f.importName, 0};
        }
        inst.hostFuncs[f.index] = *hf;
    }

    // Memory (imported memories are simply allocated by the engine).
    if (!m.memories.empty()) {
        inst.memory = Memory(m.memories[0].limits);
    }

    // Table.
    if (!m.tables.empty()) {
        inst.table = Table(m.tables[0].limits);
    }

    // Globals (imported globals get zero values unless initialized).
    for (const auto& g : m.globals) {
        GlobalVar gv;
        gv.type = g.type;
        gv.mut = g.mut;
        if (g.imported) {
            gv.value = Value::zeroOf(g.type);
        } else {
            auto v = evalInitExpr(g.init, inst.globals);
            if (!v.ok()) return v.error();
            gv.value = v.take();
        }
        inst.globals.push_back(gv);
    }

    // Element segments.
    for (const auto& seg : m.elems) {
        auto off = evalInitExpr(seg.offset, inst.globals);
        if (!off.ok()) return off.error();
        uint64_t base = off.value().i32();
        if (base + seg.funcIndices.size() > inst.table.size()) {
            return Error{"element segment out of bounds", 0};
        }
        for (size_t i = 0; i < seg.funcIndices.size(); i++) {
            inst.table.set(static_cast<uint32_t>(base + i),
                           seg.funcIndices[i]);
        }
    }

    // Data segments.
    for (const auto& seg : m.datas) {
        auto off = evalInitExpr(seg.offset, inst.globals);
        if (!off.ok()) return off.error();
        uint64_t base = off.value().i32();
        if (base + seg.bytes.size() > inst.memory.byteSize()) {
            return Error{"data segment out of bounds", 0};
        }
        std::memcpy(inst.memory.data() + base, seg.bytes.data(),
                    seg.bytes.size());
    }

    return inst;
}

} // namespace wizpp
