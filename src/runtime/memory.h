/**
 * @file
 * Linear memory: a growable, bounds-checked byte array in units of
 * 64 KiB pages.
 */

#ifndef WIZPP_RUNTIME_MEMORY_H
#define WIZPP_RUNTIME_MEMORY_H

#include <cstdint>
#include <cstring>
#include <functional>
#include <vector>

#include "wasm/types.h"

namespace wizpp {

/** A Wasm linear memory instance. */
class Memory
{
  public:
    Memory() = default;

    /** Allocates @p limits.min pages; growth is capped by limits/kMaxPages. */
    explicit Memory(Limits limits) : _limits(limits)
    {
        _bytes.resize(static_cast<size_t>(limits.min) * kPageSize);
    }

    uint32_t pages() const
    {
        return static_cast<uint32_t>(_bytes.size() / kPageSize);
    }
    size_t byteSize() const { return _bytes.size(); }
    uint8_t* data() { return _bytes.data(); }
    const uint8_t* data() const { return _bytes.data(); }

    /**
     * Grows by @p delta pages. Returns the previous page count, or -1 on
     * failure (as the memory.grow instruction requires).
     */
    int32_t
    grow(uint32_t delta)
    {
        uint64_t cur = pages();
        if (_growFault && _growFault(delta, static_cast<uint32_t>(cur)))
            return -1;
        uint64_t next = cur + delta;
        uint64_t cap = _limits.hasMax ? _limits.max : kMaxPages;
        if (next > cap || next > kMaxPages) return -1;
        _bytes.resize(static_cast<size_t>(next) * kPageSize);
        return static_cast<int32_t>(cur);
    }

    /** True if [addr+offset, addr+offset+size) fits in memory. */
    bool
    inBounds(uint32_t addr, uint32_t offset, uint32_t size) const
    {
        uint64_t end = static_cast<uint64_t>(addr) + offset + size;
        return end <= _bytes.size();
    }

    /** Unchecked typed read (callers bounds-check first). */
    template <typename T>
    T
    read(uint32_t ea) const
    {
        T v;
        std::memcpy(&v, _bytes.data() + ea, sizeof(T));
        return v;
    }

    /** Unchecked typed write (callers bounds-check first). */
    template <typename T>
    void
    write(uint32_t ea, T v)
    {
        std::memcpy(_bytes.data() + ea, &v, sizeof(T));
    }

    const Limits& limits() const { return _limits; }

    /**
     * Installs a fault-injection plan for grow(): when the predicate
     * returns true for (delta, pagesBefore), the grow fails with -1
     * exactly as a capacity miss would — the single tier-independent
     * injection point both the interpreter and the compiled tier hit
     * ("shake" perturbation, docs/FUZZING.md). Null disables injection.
     * The instance's Memory is rebuilt on instantiate(), so plans must
     * be (re)installed after instantiation.
     */
    void setGrowFault(std::function<bool(uint32_t, uint32_t)> fault)
    {
        _growFault = std::move(fault);
    }

  private:
    Limits _limits;
    std::vector<uint8_t> _bytes;
    std::function<bool(uint32_t, uint32_t)> _growFault;
};

} // namespace wizpp

#endif // WIZPP_RUNTIME_MEMORY_H
