#include "runtime/trap.h"
#include "runtime/value.h"

namespace wizpp {

const char*
trapReasonName(TrapReason r)
{
    switch (r) {
      case TrapReason::None: return "none";
      case TrapReason::Unreachable: return "unreachable";
      case TrapReason::MemoryOutOfBounds: return "memory access out of bounds";
      case TrapReason::DivByZero: return "integer divide by zero";
      case TrapReason::IntegerOverflow: return "integer overflow";
      case TrapReason::InvalidConversion: return "invalid conversion to integer";
      case TrapReason::TableOutOfBounds: return "table access out of bounds";
      case TrapReason::UninitializedTableEntry: return "uninitialized table entry";
      case TrapReason::IndirectCallTypeMismatch: return "indirect call type mismatch";
      case TrapReason::StackOverflow: return "call stack exhausted";
      case TrapReason::HostError: return "host function error";
    }
    return "<bad-trap>";
}

std::string
Value::toString() const
{
    switch (type) {
      case ValType::I32: return "i32:" + std::to_string(i32s());
      case ValType::I64: return "i64:" + std::to_string(i64s());
      case ValType::F32: return "f32:" + std::to_string(f32());
      case ValType::F64: return "f64:" + std::to_string(f64());
      case ValType::FuncRef: return "funcref:" + std::to_string(bits);
      case ValType::Void: return "void";
    }
    return "<bad-value>";
}

} // namespace wizpp
