/**
 * @file
 * Module instance: the runtime state of an instantiated module —
 * linear memory, table, global values, and resolved host imports.
 */

#ifndef WIZPP_RUNTIME_INSTANCE_H
#define WIZPP_RUNTIME_INSTANCE_H

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "runtime/memory.h"
#include "runtime/trap.h"
#include "runtime/value.h"
#include "support/result.h"
#include "wasm/module.h"

namespace wizpp {

/** Sentinel for an uninitialized (null funcref) table slot. */
constexpr uint32_t kNullFuncIndex = 0xffffffffu;

/**
 * A host (imported) function. Args arrive in declaration order; the
 * implementation returns the results or a trap reason.
 */
struct HostFunc
{
    FuncType type;
    std::function<TrapReason(const std::vector<Value>& args,
                             std::vector<Value>* results)> fn;
};

/** A funcref table instance (slots hold module function indices). */
class Table
{
  public:
    Table() = default;
    explicit Table(Limits limits) : _limits(limits)
    {
        _slots.assign(limits.min, kNullFuncIndex);
    }

    uint32_t size() const { return static_cast<uint32_t>(_slots.size()); }
    uint32_t get(uint32_t i) const { return _slots[i]; }
    void set(uint32_t i, uint32_t funcIndex) { _slots[i] = funcIndex; }
    bool inBounds(uint32_t i) const { return i < _slots.size(); }

  private:
    Limits _limits;
    std::vector<uint32_t> _slots;
};

/** A global variable instance. */
struct GlobalVar
{
    ValType type = ValType::I32;
    bool mut = false;
    Value value;
};

/** Named host imports used to resolve a module's import section. */
class ImportMap
{
  public:
    void
    addFunc(const std::string& module, const std::string& name, HostFunc f)
    {
        _funcs[{module, name}] = std::move(f);
    }

    const HostFunc*
    findFunc(const std::string& module, const std::string& name) const
    {
        auto it = _funcs.find({module, name});
        return it == _funcs.end() ? nullptr : &it->second;
    }

  private:
    std::map<std::pair<std::string, std::string>, HostFunc> _funcs;
};

/** The runtime state of one instantiated module. */
class Instance
{
  public:
    /**
     * Builds an instance: allocates memory/table, evaluates global
     * initializers, applies data and element segments, and binds host
     * functions for imports.
     */
    static Result<Instance> instantiate(const Module& m,
                                        const ImportMap& imports);

    Memory memory;
    Table table;
    std::vector<GlobalVar> globals;

    /** Host functions, indexed by function index (empty for non-imports). */
    std::vector<HostFunc> hostFuncs;

    const Module* module = nullptr;
};

} // namespace wizpp

#endif // WIZPP_RUNTIME_INSTANCE_H
