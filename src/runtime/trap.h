/**
 * @file
 * Trap reasons. Traps unwind the whole Wasm activation; the unwind path
 * also invalidates any FrameAccessor objects attached to unwound frames
 * (paper Section 2.3, "invalidate accessors on unwind").
 */

#ifndef WIZPP_RUNTIME_TRAP_H
#define WIZPP_RUNTIME_TRAP_H

#include <cstdint>

namespace wizpp {

enum class TrapReason : uint8_t {
    None = 0,
    Unreachable,
    MemoryOutOfBounds,
    DivByZero,
    IntegerOverflow,
    InvalidConversion,
    TableOutOfBounds,
    UninitializedTableEntry,
    IndirectCallTypeMismatch,
    StackOverflow,
    HostError,
};

const char* trapReasonName(TrapReason r);

} // namespace wizpp

#endif // WIZPP_RUNTIME_TRAP_H
