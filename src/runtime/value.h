/**
 * @file
 * Runtime value representation.
 *
 * A Value is a tagged 64-bit payload. Both execution tiers and the
 * FrameAccessor API share this representation, which is what lets the
 * engine "rewrite a frame in place" when deoptimizing from the compiled
 * tier back to the interpreter (paper Section 4.6, strategy 4).
 */

#ifndef WIZPP_RUNTIME_VALUE_H
#define WIZPP_RUNTIME_VALUE_H

#include <cstdint>
#include <cstring>
#include <string>

#include "wasm/types.h"

namespace wizpp {

/** A single Wasm value: type tag plus 64-bit payload. */
struct Value
{
    ValType type = ValType::I32;
    uint64_t bits = 0;

    Value() = default;
    Value(ValType t, uint64_t b) : type(t), bits(b) {}

    static Value makeI32(uint32_t v) { return {ValType::I32, v}; }
    static Value makeI32(int32_t v)
    {
        return {ValType::I32, static_cast<uint32_t>(v)};
    }
    static Value makeI64(uint64_t v) { return {ValType::I64, v}; }
    static Value makeI64(int64_t v)
    {
        return {ValType::I64, static_cast<uint64_t>(v)};
    }
    static Value
    makeF32(float v)
    {
        uint32_t b;
        std::memcpy(&b, &v, 4);
        return {ValType::F32, b};
    }
    static Value
    makeF64(double v)
    {
        uint64_t b;
        std::memcpy(&b, &v, 8);
        return {ValType::F64, b};
    }
    static Value zeroOf(ValType t) { return {t, 0}; }

    uint32_t i32() const { return static_cast<uint32_t>(bits); }
    int32_t i32s() const { return static_cast<int32_t>(bits); }
    uint64_t i64() const { return bits; }
    int64_t i64s() const { return static_cast<int64_t>(bits); }
    float
    f32() const
    {
        float v;
        uint32_t b = static_cast<uint32_t>(bits);
        std::memcpy(&v, &b, 4);
        return v;
    }
    double
    f64() const
    {
        double v;
        std::memcpy(&v, &bits, 8);
        return v;
    }

    bool operator==(const Value& o) const
    {
        return type == o.type && bits == o.bits;
    }

    /** Renders "i32:42" style for traces and test diagnostics. */
    std::string toString() const;
};

} // namespace wizpp

#endif // WIZPP_RUNTIME_VALUE_H
