/**
 * @file
 * ProbeManager: dynamic insertion and removal of local and global probes
 * with the paper's consistency guarantees (Section 2.4):
 *
 *  - Insertion order is firing order. Probe lists are append-ordered.
 *  - Deferred inserts on the same event. Firing iterates an immutable
 *    snapshot (copy-on-write lists), so probes inserted on event E while
 *    E fires do not fire until E's next occurrence.
 *  - Deferred removal on the same event. A probe removed during E's
 *    firing is absent from the *new* list but still present in the
 *    snapshot being iterated, so it fires this occurrence but not later.
 *
 * Local probes use bytecode overwriting (Section 4.2): the first byte of
 * the probed instruction in the engine's mutable code copy is replaced
 * with the reserved OP_PROBE opcode and the original byte is saved here.
 * Insertion and removal are O(1) and the bytecode is always consistent
 * with the installed instrumentation.
 *
 * Global probes use dispatch-table switching (Section 4.1): toggling
 * between zero and nonzero global probes swaps the interpreter's
 * dispatch table and enters/leaves interpreter-only execution without
 * discarding compiled code.
 *
 * Scale machinery (see docs/PROBES.md):
 *
 *  - Sites live in per-function dense tables: a pc-indexed slot vector
 *    resolved at attach time, so the per-fire site lookup is two array
 *    loads instead of a hash probe.
 *  - All probes at one site are pre-composed into a single firing entry
 *    (the probe itself for one member, a FusedProbe otherwise), so the
 *    hot path makes exactly one virtual call per instrumented site.
 *  - insertBatch() attaches whole monitors' worth of probes with one
 *    list build per site and a single instrumentation-epoch bump,
 *    instead of O(sites) copy-on-write churn.
 *
 * Thread-safety: engine-private and single-threaded, deliberately —
 * that is what keeps the per-fire path lock-free. Call only from the
 * thread running the owning engine. In a serving pool each worker has
 * its own ProbeManager; fleet-wide mutation goes through
 * serve::InstancePool's RCU writers, which apply per-worker at
 * quiescent points (docs/SERVING.md).
 */

#ifndef WIZPP_PROBES_PROBEMANAGER_H
#define WIZPP_PROBES_PROBEMANAGER_H

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "probes/probe.h"

namespace wizpp {

class Engine;
struct Frame;
struct FuncState;

/** Immutable, shared probe list (copy-on-write). */
using ProbeList = std::vector<std::shared_ptr<Probe>>;
using ProbeListRef = std::shared_ptr<const ProbeList>;

class ProbeManager
{
  public:
    explicit ProbeManager(Engine& engine) : _engine(engine) {}

    // ---- Local probes (location = function index + bytecode pc) ----

    /**
     * Attaches @p probe before the instruction at (funcIndex, pc).
     * pc must be an instruction boundary of a non-imported function.
     * Firing order at a shared site is insertion order. Bumps the
     * instrumentation epoch and invalidates the function's compiled
     * code; prefer insertBatch() when attaching many probes at once.
     * Returns false on an invalid location.
     */
    bool insertLocal(uint32_t funcIndex, uint32_t pc,
                     std::shared_ptr<Probe> probe);

    /** One (site, probe) pair of a batch insertion. */
    struct SiteProbe
    {
        uint32_t funcIndex = 0;
        uint32_t pc = 0;
        std::shared_ptr<Probe> probe;
    };

    /**
     * Attaches every valid entry of @p batch, equivalent to calling
     * insertLocal() on each in order but paying the heavy costs once:
     * the batch is stable-sorted by site (preserving relative insertion
     * order of duplicates at the same site), each touched site's member
     * list and fused firing entry are rebuilt exactly once, and the
     * whole batch performs a single instrumentation-epoch bump with one
     * compiled-code invalidation per touched function.
     *
     * Entries with an invalid location (imported function, out-of-range
     * index, non-boundary pc) are skipped. The span is reordered in
     * place (sorted by site). Returns the number of probes attached.
     *
     * Safe to call from inside a firing probe: sites touched by the
     * batch follow the Section 2.4 deferred-insertion rule — a probe
     * added to the currently-firing site joins at the event's next
     * occurrence.
     */
    size_t insertBatch(std::span<SiteProbe> batch);

    /**
     * Detaches one occurrence of @p probe from (funcIndex, pc). The
     * site's fused firing entry is rebuilt (in-flight firings keep
     * their snapshot — deferred removal); removing the last probe
     * restores the original bytecode byte. Returns false if @p probe
     * was not attached there. Prefer ProbeContext::removeSelf() for
     * self-removal from inside a fire: same semantics, no lookup.
     */
    bool removeLocal(uint32_t funcIndex, uint32_t pc, const Probe* probe);

    /**
     * Detaches every matching entry of @p batch, the bulk mirror of
     * insertBatch(): equivalent to calling removeLocal() on each in
     * order, but each touched site's member list and fused firing
     * entry are rebuilt exactly once, and the whole batch performs a
     * single instrumentation-epoch bump with one compiled-code
     * invalidation per touched function.
     *
     * Entries whose (site, probe) pair is not attached are skipped.
     * The span is reordered in place (sorted by site); the probe
     * pointers are only observed, never consumed. Returns the number
     * of probes detached. Deferred-removal consistency holds: sites
     * touched while their event is firing keep the in-flight snapshot.
     */
    size_t removeBatch(std::span<SiteProbe> batch);

    /** Removes all probes at a location (restores the original byte). */
    void removeAllLocal(uint32_t funcIndex, uint32_t pc);

    /**
     * The insertion-ordered probes at a location (null if none). This
     * is the management view; the firing entry is siteFor().fired.
     */
    ProbeListRef probesAt(uint32_t funcIndex, uint32_t pc) const;

    /**
     * One probed location, as the hot path consumes it: the single
     * firing entry (the lone probe, or the FusedProbe composing all
     * members), the member count for fire accounting, and the saved
     * original opcode byte.
     */
    struct SiteView
    {
        std::shared_ptr<Probe> fired;  ///< null if the site is unprobed
        uint32_t memberCount = 0;
        uint8_t originalByte = 0;
    };

    /**
     * Site lookup for the probe handlers (the hot path of Section 4.2):
     * two dense array loads — funcIndex into the per-function tables,
     * pc into that function's slot index — no hashing. The returned
     * shared_ptr keeps the firing entry alive across any re-fusion the
     * firing probes themselves perform (deferred insert/removal).
     */
    SiteView
    siteFor(uint32_t funcIndex, uint32_t pc) const
    {
        if (funcIndex >= _funcSites.size()) return {};
        const FuncSites& f = _funcSites[funcIndex];
        if (pc >= f.pcToSite.size()) return {};
        uint32_t slot = f.pcToSite[pc];
        if (slot == kNoSite) return {};
        const LocalSite& site = f.slots[slot];
        return {site.fused, static_cast<uint32_t>(site.members->size()),
                site.originalByte};
    }

    /**
     * A site view that borrows the firing entry instead of sharing
     * ownership. Produced by borrowSite() and consumed immediately by
     * fireBorrowed(): the pointer stays valid through that fire (see
     * fireBorrowed for the lifetime argument) but must not be stashed
     * past it — use siteFor() for anything longer-lived.
     */
    struct BorrowedSite
    {
        Probe* fired = nullptr;  ///< null if the site is unprobed
        uint32_t memberCount = 0;
        uint8_t originalByte = 0;
    };

    /**
     * siteFor() minus the shared_ptr copy: the same two dense array
     * loads, but the firing entry comes back as a borrowed raw
     * pointer, skipping the per-fire atomic refcount round-trip —
     * measurable on probe-dense runs (the per-instruction handlers of
     * Section 4.2 are the engine's hottest instrumentation path).
     */
    BorrowedSite
    borrowSite(uint32_t funcIndex, uint32_t pc) const
    {
        if (funcIndex >= _funcSites.size()) return {};
        const FuncSites& f = _funcSites[funcIndex];
        if (pc >= f.pcToSite.size()) return {};
        uint32_t slot = f.pcToSite[pc];
        if (slot == kNoSite) return {};
        const LocalSite& site = f.slots[slot];
        return {site.fused.get(),
                static_cast<uint32_t>(site.members->size()),
                site.originalByte};
    }

    /** The original (pre-overwrite) opcode byte at a probed location. */
    uint8_t originalByte(uint32_t funcIndex, uint32_t pc) const;

    /** Total number of probed locations (for tests/telemetry). */
    size_t numProbedSites() const { return _numSites; }

    // ---- Global probes ----

    /**
     * Attaches a probe firing before every instruction executed.
     * Toggling 0↔nonzero global probes swaps the interpreter dispatch
     * table and pins execution to the interpreter (Section 4.1).
     */
    void insertGlobal(std::shared_ptr<Probe> probe);

    /** Detaches one occurrence of a global probe (deferred-removal). */
    bool removeGlobal(const Probe* probe);

    bool hasGlobalProbes() const { return !_globals->empty(); }

    // ---- Firing (engine internal) ----

    /**
     * Fires all local probes at (fs, pc) against @p frame, resolving
     * the site itself (borrowSite + fireBorrowed). The engine must
     * have checkpointed the frame (pc, sp) before calling. Used by
     * the compiled tier's generic probe path; the interpreter resolves
     * via borrowSite() and calls fireBorrowed() directly.
     */
    void fireLocal(Frame* frame, FuncState* fs, uint32_t pc);

    /**
     * Fires a pre-resolved site snapshot: exactly one virtual call
     * (site.fired->fire). No-op if the view is empty.
     */
    void fireSite(const SiteView& site, Frame* frame, FuncState* fs,
                  uint32_t pc);

    /**
     * Fires a borrowed site view (borrowSite()) without taking
     * ownership of the entry. The Section 2.4 keep-alive that the
     * shared_ptr copy used to provide comes from retirement instead:
     * firings are depth-tracked, and any entry the firing probes swap
     * out (insert, remove, re-fusion at any site) is parked on a
     * retire list that is only drained when the outermost fire
     * returns — so the borrowed entry outlives this call even if the
     * M-code detaches it mid-fire, at zero per-fire cost on the
     * (overwhelmingly common) mutation-free path.
     */
    void fireBorrowed(const BorrowedSite& site, Frame* frame,
                      FuncState* fs, uint32_t pc);

    /**
     * Fires a firing entry the compiled tier resolved at translation
     * time (kJProbeFused sites): same accounting and context rules as
     * fireSite(), no per-fire site lookup. @p fired is kept alive by
     * the calling JitCode's pin list, and any membership change
     * invalidates that code before a stale entry could fire, so the
     * raw pointer is safe and deferred insert/remove semantics hold.
     */
    void fireResolved(Probe* fired, uint32_t memberCount, Frame* frame,
                      FuncState* fs, uint32_t pc);

    /** Fires all global probes. */
    void fireGlobal(Frame* frame, FuncState* fs, uint32_t pc);

    /** Telemetry: total local/global probe fires (for tests). */
    uint64_t localFireCount = 0;
    uint64_t globalFireCount = 0;

    /** Telemetry: violations flagged by the debug-build batch audit
        (analysis/audit.h); warnings only, never fatal. Always zero in
        release builds. */
    uint64_t auditWarnings = 0;

  private:
    static constexpr uint32_t kNoSite = 0xffffffffu;

    /** One probed location: fused firing entry + members + saved byte. */
    struct LocalSite
    {
        std::shared_ptr<Probe> fused;
        ProbeListRef members;
        uint8_t originalByte = 0;
    };

    /** Per-function dense site tables (resolved at attach time). */
    struct FuncSites
    {
        /** pc -> slot index (kNoSite when unprobed); sized lazily to
            the function's code size on first attach. */
        std::vector<uint32_t> pcToSite;
        std::vector<LocalSite> slots;
        std::vector<uint32_t> freeSlots;  ///< recycled slot indices
    };

    /** Validates a location; returns the FuncState or null. */
    FuncState* validSite(uint32_t funcIndex, uint32_t pc) const;

    /** Finds the live site slot, or null. */
    LocalSite* findSite(uint32_t funcIndex, uint32_t pc);
    const LocalSite* findSite(uint32_t funcIndex, uint32_t pc) const;

    /** Creates (or returns) the slot for a validated site, overwriting
        the bytecode on first use. */
    LocalSite& ensureSite(FuncState& fs, uint32_t pc);

    /** Drops a site slot and restores its original bytecode byte. */
    void releaseSite(FuncState& fs, uint32_t pc);

    /** Rebuilds the single firing entry after a membership change,
        retiring the previous entry (it may be firing right now). */
    void rebuildFused(LocalSite& site);

    /** Parks a swapped-out firing entry until the outermost in-flight
        fire returns; destroys it immediately when nothing is firing. */
    void
    retire(std::shared_ptr<Probe> old)
    {
        if (old && _fireDepth) _retired.push_back(std::move(old));
    }

    /** RAII depth guard for borrowed-entry firings: entries retired
        while any fire is on the stack are destroyed only when the
        outermost one unwinds. */
    struct FireScope
    {
        explicit FireScope(ProbeManager& m) : _m(m) { _m._fireDepth++; }
        ~FireScope()
        {
            if (--_m._fireDepth == 0 && !_m._retired.empty()) {
                _m._retired.clear();
            }
        }
        ProbeManager& _m;
    };

    Engine& _engine;
    std::vector<FuncSites> _funcSites;  ///< indexed by funcIndex
    size_t _numSites = 0;
    uint32_t _fireDepth = 0;
    std::vector<std::shared_ptr<Probe>> _retired;
    ProbeListRef _globals = std::make_shared<const ProbeList>();
};

} // namespace wizpp

#endif // WIZPP_PROBES_PROBEMANAGER_H
