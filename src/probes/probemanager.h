/**
 * @file
 * ProbeManager: dynamic insertion and removal of local and global probes
 * with the paper's consistency guarantees (Section 2.4):
 *
 *  - Insertion order is firing order. Probe lists are append-ordered.
 *  - Deferred inserts on the same event. Firing iterates an immutable
 *    snapshot (copy-on-write lists), so probes inserted on event E while
 *    E fires do not fire until E's next occurrence.
 *  - Deferred removal on the same event. A probe removed during E's
 *    firing is absent from the *new* list but still present in the
 *    snapshot being iterated, so it fires this occurrence but not later.
 *
 * Local probes use bytecode overwriting (Section 4.2): the first byte of
 * the probed instruction in the engine's mutable code copy is replaced
 * with the reserved OP_PROBE opcode and the original byte is saved here.
 * Insertion and removal are O(1) and the bytecode is always consistent
 * with the installed instrumentation.
 *
 * Global probes use dispatch-table switching (Section 4.1): toggling
 * between zero and nonzero global probes swaps the interpreter's
 * dispatch table and enters/leaves interpreter-only execution without
 * discarding compiled code.
 */

#ifndef WIZPP_PROBES_PROBEMANAGER_H
#define WIZPP_PROBES_PROBEMANAGER_H

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "probes/probe.h"

namespace wizpp {

class Engine;
struct Frame;
struct FuncState;

/** Immutable, shared probe list (copy-on-write). */
using ProbeList = std::vector<std::shared_ptr<Probe>>;
using ProbeListRef = std::shared_ptr<const ProbeList>;

class ProbeManager
{
  public:
    explicit ProbeManager(Engine& engine) : _engine(engine) {}

    // ---- Local probes (location = function index + bytecode pc) ----

    /**
     * Attaches @p probe before the instruction at (funcIndex, pc).
     * pc must be an instruction boundary of a non-imported function.
     * Returns false on an invalid location.
     */
    bool insertLocal(uint32_t funcIndex, uint32_t pc,
                     std::shared_ptr<Probe> probe);

    /**
     * Detaches one occurrence of @p probe from (funcIndex, pc).
     * Returns false if it was not attached there.
     */
    bool removeLocal(uint32_t funcIndex, uint32_t pc, const Probe* probe);

    /** Removes all probes at a location. */
    void removeAllLocal(uint32_t funcIndex, uint32_t pc);

    /** The probes at a location (null if none). */
    ProbeListRef probesAt(uint32_t funcIndex, uint32_t pc) const;

    /** One probed location: probe-list snapshot + saved opcode. */
    struct SiteView
    {
        ProbeListRef probes;
        uint8_t originalByte = 0;
    };

    /**
     * Single-lookup access for the interpreter's probe handler: the
     * snapshot and original byte together (the hot path of
     * Section 4.2). The snapshot keeps the list alive across COW
     * mutations performed by the firing probes themselves.
     */
    SiteView
    siteFor(uint32_t funcIndex, uint32_t pc) const
    {
        auto it = _sites.find(key(funcIndex, pc));
        if (it == _sites.end()) return {};
        return {it->second.probes, it->second.originalByte};
    }

    /** The original (pre-overwrite) opcode byte at a probed location. */
    uint8_t originalByte(uint32_t funcIndex, uint32_t pc) const;

    /** Total number of probed locations (for tests/telemetry). */
    size_t numProbedSites() const { return _sites.size(); }

    // ---- Global probes ----

    /** Attaches a probe firing before every instruction executed. */
    void insertGlobal(std::shared_ptr<Probe> probe);

    /** Detaches one occurrence of a global probe. */
    bool removeGlobal(const Probe* probe);

    bool hasGlobalProbes() const { return !_globals->empty(); }

    // ---- Firing (engine internal) ----

    /**
     * Fires all local probes at (fs, pc) against @p frame. The engine
     * must have checkpointed the frame (pc, sp) before calling.
     */
    void fireLocal(Frame* frame, FuncState* fs, uint32_t pc);

    /** Fires a pre-looked-up snapshot (interpreter hot path). */
    void fireList(const ProbeList& list, Frame* frame, FuncState* fs,
                  uint32_t pc);

    /** Fires all global probes. */
    void fireGlobal(Frame* frame, FuncState* fs, uint32_t pc);

    /** Telemetry: total local/global probe fires (for tests). */
    uint64_t localFireCount = 0;
    uint64_t globalFireCount = 0;

  private:
    struct LocalSite
    {
        ProbeListRef probes;
        uint8_t originalByte = 0;
    };

    static uint64_t
    key(uint32_t funcIndex, uint32_t pc)
    {
        return (static_cast<uint64_t>(funcIndex) << 32) | pc;
    }

    Engine& _engine;
    std::unordered_map<uint64_t, LocalSite> _sites;
    ProbeListRef _globals = std::make_shared<const ProbeList>();
};

} // namespace wizpp

#endif // WIZPP_PROBES_PROBEMANAGER_H
