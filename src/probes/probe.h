/**
 * @file
 * The probe hierarchy — the paper's fundamental instrumentation
 * primitive (Section 2).
 *
 * A probe fires a callback just before a specified event (a specific
 * bytecode location for local probes; every instruction for global
 * probes). Probe callbacks are M-code: they execute inside the engine's
 * state space, so by construction they cannot perturb Wasm program state
 * except through the explicit FrameAccessor mutation API.
 *
 * CountProbe and OperandProbe are the two specialized kinds that the
 * compiled tier can intrinsify (Section 4.4): a CountProbe compiles to
 * an inline counter increment, and an OperandProbe to a direct call that
 * receives the top-of-stack value without materializing a FrameAccessor.
 *
 * FusedProbe is the engine's pre-composition of all probes sharing one
 * site: the interpreter's probe handler makes exactly one virtual call
 * per instrumented site regardless of how many monitors attached there.
 * See docs/PROBES.md for the full lifecycle and fusion semantics.
 */

#ifndef WIZPP_PROBES_PROBE_H
#define WIZPP_PROBES_PROBE_H

#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/value.h"

namespace wizpp {

class Engine;
class FrameAccessor;
class Probe;
struct Frame;
struct FuncState;

/**
 * What frame state a probe's fire() may reach through its ProbeContext
 * — a *declaration* the compiled tier trusts when choosing how much
 * execution state to spill before calling M-code (Section 4.4; see
 * docs/JIT.md). A probe that declares less than it uses reads stale
 * frame state in compiled code, so the default is the safe maximum.
 */
enum class FrameAccess : uint8_t {
    /** Location only (funcIndex, pc, frameId); never calls accessor(). */
    None,
    /** The top-of-stack operand value only. */
    Operand,
    /** May materialize a FrameAccessor and read/write arbitrary state. */
    Full,
};

/**
 * Everything a firing probe can reach. The location triple
 * (module, function, pc) is immediately available; frame state is
 * reached through the lazily-allocated FrameAccessor (Section 2.3).
 *
 * A ProbeContext is only valid for the duration of the firing that
 * created it; probes must not retain it across callbacks (retain the
 * FrameAccessor instead, which is invalidated safely on unwind).
 */
class ProbeContext
{
  public:
    ProbeContext(Engine& engine, Frame* frame, FuncState* fs, uint32_t pc)
        : _engine(engine), _frame(frame), _fs(fs), _pc(pc)
    {}

    /// The engine this probe fired in (entry point to the full M-API).
    Engine& engine() const { return _engine; }

    /// Per-function engine state of the probed function.
    FuncState* func() const { return _fs; }

    /// Index of the probed function in the module's function space.
    uint32_t funcIndex() const;

    /// Bytecode offset of the probed instruction.
    uint32_t pc() const { return _pc; }

    /**
     * Returns the FrameAccessor for the probed frame, allocating it on
     * first request and caching it in the frame's accessor slot. The
     * accessor may outlive this context; it is invalidated when the
     * frame returns or unwinds.
     */
    std::shared_ptr<FrameAccessor> accessor() const;

    /// Raw frame pointer; internal use by the accessor machinery.
    Frame* frame() const { return _frame; }

    /**
     * Detaches the currently-firing probe from the event that fired it:
     * the local site (funcIndex, pc) for a local probe, the global list
     * for a global probe. O(1) — no site lookup, no holder shared_ptr
     * dance — which makes one-shot probes (coverage bits, run-once
     * hooks) cheap at any site count.
     *
     * Deferred-removal consistency (Section 2.4) still applies: the
     * in-flight firing completes from its immutable snapshot, so other
     * probes fused at the same site are unaffected this occurrence.
     * Returns false if called outside a firing (no current probe).
     */
    bool removeSelf() const;

    /// The probe whose fire() is currently on the stack, if any.
    Probe* firing() const { return _firing; }

  private:
    friend class ProbeManager;
    friend class FusedProbe;

    // -- Firing bookkeeping. Only the ProbeManager and FusedProbe may
    // update these: removeSelf() correctness depends on them tracking
    // the actually-firing probe, so they are compiler-enforced
    // internals rather than part of the M-code API. --

    /// Marks @p p as the currently-firing probe.
    void setFiring(Probe* p) const { _firing = p; }

    /// Marks this firing as a global-probe firing.
    void setGlobalFiring(bool g) const { _globalFiring = g; }

    Engine& _engine;
    Frame* _frame;
    FuncState* _fs;
    uint32_t _pc;
    mutable Probe* _firing = nullptr;
    mutable bool _globalFiring = false;
};

/**
 * Base class of all probes.
 *
 * Thread-safety: an engine is a single-threaded object; probes fire
 * on the thread running the engine and may freely call back into the
 * probe API (insert/remove/removeSelf) — the Section 2.4 deferred
 * insertion/removal guarantees make that safe mid-firing. In a
 * serving pool (src/serve/) each worker owns a private engine and
 * private probe instances; fleet-wide attach reaches an engine only
 * through its worker's quiescent points, never concurrently. Probe
 * objects must not be shared across engines — share the data they
 * point at (with its own synchronization) instead. See
 * docs/SERVING.md for the full contract.
 */
class Probe
{
  public:
    virtual ~Probe() = default;

    /// Called just before the probed event.
    virtual void fire(ProbeContext& ctx) = 0;

    /// Kind discriminators used by the compiled tier for intrinsification
    /// (the lowering pass in src/jit/lowering.cc consumes these).
    virtual bool isCountProbe() const { return false; }
    virtual bool isOperandProbe() const { return false; }
    virtual bool isEntryExitProbe() const { return false; }
    virtual bool isCoverageProbe() const { return false; }

    /**
     * Declared frame-state footprint (see FrameAccess). The compiled
     * tier shrinks the generic probe path's spill/reload set to exactly
     * this; the interpreter ignores it (frame state is always live
     * there).
     */
    virtual FrameAccess frameAccess() const { return FrameAccess::Full; }
};

/**
 * A counter. The compiled tier inlines the increment when
 * intrinsifyCountProbe is enabled (Figure 2, right).
 */
class CountProbe : public Probe
{
  public:
    void fire(ProbeContext&) override { count++; }
    bool isCountProbe() const override { return true; }
    FrameAccess frameAccess() const override { return FrameAccess::None; }

    uint64_t count = 0;
};

/**
 * A probe that only needs the top-of-stack operand value. The compiled
 * tier passes the value directly when intrinsifyOperandProbe is enabled,
 * skipping FrameAccessor materialization (Figure 2, middle).
 */
class OperandProbe : public Probe
{
  public:
    void fire(ProbeContext& ctx) override;
    bool isOperandProbe() const override { return true; }
    FrameAccess frameAccess() const override
    {
        return FrameAccess::Operand;
    }

    /// Receives the value on top of the operand stack.
    virtual void fireOperand(Value topOfStack) = 0;
};

/**
 * A probe that observes only the activation identity and probed
 * location — the shape of function entry/exit hooks (Section 2.5).
 * The compiled tier intrinsifies a lone EntryExitProbe to a
 * pre-resolved direct call (kJProbeEntryExit): no frame checkpoint, no
 * site re-dispatch, no ProbeContext, and for conditional-exit sites
 * the top-of-stack value is passed directly instead of being read
 * through a FrameAccessor (see docs/JIT.md).
 */
class EntryExitProbe : public Probe
{
  public:
    /** Everything an entry/exit hook may consult. */
    struct Activation
    {
        uint32_t funcIndex = 0;
        uint32_t pc = 0;
        uint64_t frameId = 0;
        Value topOfStack;         ///< valid only if hasTopOfStack
        bool hasTopOfStack = false;
    };

    /// Generic-path adapter: builds an Activation from the context
    /// (reading the top-of-stack through the accessor if declared) and
    /// forwards to fireActivation, so both tiers observe identical
    /// behavior.
    void fire(ProbeContext& ctx) override;

    bool isEntryExitProbe() const override { return true; }
    FrameAccess frameAccess() const override
    {
        return needsTopOfStack() ? FrameAccess::Operand
                                 : FrameAccess::None;
    }

    /// True if the hook consults the top-of-stack value (conditional
    /// exits on br_if / br_table). Must be constant per instance: the
    /// compiled tier bakes it into the lowered probe instruction.
    virtual bool needsTopOfStack() const { return false; }

    /// The hook proper — the compiled tier's intrinsified entry point.
    virtual void fireActivation(const Activation& a) = 0;
};

/**
 * A one-shot coverage bit: records "this location executed" exactly
 * once, then becomes inert. The fundamental primitive of the fuzzing
 * subsystem (src/fuzz/, docs/FUZZING.md).
 *
 * Lifecycle contract (the "self-patching slot" lowering of
 * docs/FUZZING.md):
 *
 *  - First execution calls recordHit(): the hit bit is set and the
 *    owning Listener (normally a fuzz::CoverageIndex) is notified
 *    exactly once.
 *  - The probe does NOT detach itself per fire — removeSelf() would
 *    bump the instrumentation epoch and invalidate compiled code once
 *    per covered location. Instead the listener batch-detaches every
 *    fired probe via ProbeManager::removeBatch (one epoch bump for
 *    thousands of bits), after which the bytecode byte is restored and
 *    steady-state cost is literally zero.
 *  - Between the first hit and the batch detach, the compiled tier's
 *    intrinsified slot (kJProbeCoverage, src/jit/lowering.h) rewrites
 *    itself into a nop after the first fire, so a covered location in
 *    a hot loop costs one opcode dispatch, not a hit-bit load and
 *    branch; the interpreter's generic path takes the idempotent
 *    recordHit() early-out instead.
 */
class CoverageProbe : public Probe
{
  public:
    /** Receives first-hit notifications; owns the batching policy. */
    class Listener
    {
      public:
        virtual ~Listener() = default;

        /// Called exactly once per probe, on its first execution.
        /// Fired from probe context (M-code rules apply): mutating
        /// instrumentation here is legal but costs a deopt/epoch bump.
        virtual void onCovered(CoverageProbe& probe) = 0;
    };

    CoverageProbe(uint32_t funcIndex, uint32_t pc,
                  Listener* listener = nullptr)
        : funcIndex(funcIndex), pc(pc), _listener(listener)
    {}

    void fire(ProbeContext&) override { recordHit(); }
    bool isCoverageProbe() const override { return true; }
    FrameAccess frameAccess() const override { return FrameAccess::None; }

    /**
     * Idempotent hit record — the intrinsified slot's entry point and
     * the whole behavior of fire(). Subclasses overriding fire() lose
     * intrinsification (the lowering pass requires the exact dynamic
     * type, same rule as CountProbe).
     */
    void
    recordHit()
    {
        if (_hit) return;
        _hit = true;
        if (_listener) _listener->onCovered(*this);
    }

    bool hit() const { return _hit; }

    /// The location this bit covers (stamped at construction so the
    /// listener needs no site lookup).
    const uint32_t funcIndex;
    const uint32_t pc;

  private:
    Listener* _listener;
    bool _hit = false;
};

/** A probe with an empty fire function (Section 5.3's T_PD methodology). */
class EmptyProbe : public Probe
{
  public:
    void fire(ProbeContext&) override {}
    FrameAccess frameAccess() const override { return FrameAccess::None; }
};

/** An empty probe that still counts as an operand probe (T_PD for branch). */
class EmptyOperandProbe : public OperandProbe
{
  public:
    void fireOperand(Value) override {}
};

/**
 * Pre-composed firing entry for a site shared by several probes.
 *
 * The ProbeManager rebuilds the fusion whenever the site's membership
 * changes (copy-on-write: the member list is immutable once built), so
 * the interpreter and the compiled tier's generic probe path make
 * exactly one virtual call per instrumented site. A firing that holds a
 * FusedProbe snapshot keeps iterating its own members even if M-code
 * re-fuses the site mid-fire — which is precisely the deferred
 * insertion/removal guarantee of Section 2.4.
 *
 * Sites with a single probe are never fused: the member itself is the
 * firing entry, so single-probe sites keep their intrinsification
 * eligibility in the compiled tier and their exact pre-fusion cost.
 */
class FusedProbe : public Probe
{
  public:
    explicit FusedProbe(std::vector<std::shared_ptr<Probe>> members)
        : _members(std::move(members))
    {
        for (const auto& m : _members) {
            if (m->frameAccess() > _access) _access = m->frameAccess();
        }
    }

    /// Fires every member in insertion order (one nested virtual call
    /// each), tracking the current member so removeSelf() works inside
    /// a fused firing.
    void
    fire(ProbeContext& ctx) override
    {
        for (const auto& m : _members) {
            ctx.setFiring(m.get());
            m->fire(ctx);
        }
        ctx.setFiring(this);
    }

    /// The fused members, in firing (= insertion) order.
    const std::vector<std::shared_ptr<Probe>>& members() const
    {
        return _members;
    }

    /// The widest access any member declared (drives the compiled
    /// tier's spill decision for the whole fused site).
    FrameAccess frameAccess() const override { return _access; }

  private:
    const std::vector<std::shared_ptr<Probe>> _members;
    FrameAccess _access = FrameAccess::None;
};

/** Adapter wrapping a lambda as a probe. */
template <typename F>
class LambdaProbe : public Probe
{
  public:
    explicit LambdaProbe(F f) : _f(std::move(f)) {}
    void fire(ProbeContext& ctx) override { _f(ctx); }

  private:
    F _f;
};

/** Makes a probe from a callable taking (ProbeContext&). */
template <typename F>
std::shared_ptr<Probe>
makeProbe(F f)
{
    return std::make_shared<LambdaProbe<F>>(std::move(f));
}

} // namespace wizpp

#endif // WIZPP_PROBES_PROBE_H
