/**
 * @file
 * The probe hierarchy — the paper's fundamental instrumentation
 * primitive (Section 2).
 *
 * A probe fires a callback just before a specified event (a specific
 * bytecode location for local probes; every instruction for global
 * probes). Probe callbacks are M-code: they execute inside the engine's
 * state space, so by construction they cannot perturb Wasm program state
 * except through the explicit FrameAccessor mutation API.
 *
 * CountProbe and OperandProbe are the two specialized kinds that the
 * compiled tier can intrinsify (Section 4.4): a CountProbe compiles to
 * an inline counter increment, and an OperandProbe to a direct call that
 * receives the top-of-stack value without materializing a FrameAccessor.
 */

#ifndef WIZPP_PROBES_PROBE_H
#define WIZPP_PROBES_PROBE_H

#include <cstdint>
#include <memory>

#include "runtime/value.h"

namespace wizpp {

class Engine;
class FrameAccessor;
struct Frame;
struct FuncState;

/**
 * Everything a firing probe can reach. The location triple
 * (module, function, pc) is immediately available; frame state is
 * reached through the lazily-allocated FrameAccessor (Section 2.3).
 */
class ProbeContext
{
  public:
    ProbeContext(Engine& engine, Frame* frame, FuncState* fs, uint32_t pc)
        : _engine(engine), _frame(frame), _fs(fs), _pc(pc)
    {}

    Engine& engine() const { return _engine; }
    FuncState* func() const { return _fs; }
    uint32_t funcIndex() const;
    uint32_t pc() const { return _pc; }

    /**
     * Returns the FrameAccessor for the probed frame, allocating it on
     * first request and caching it in the frame's accessor slot.
     */
    std::shared_ptr<FrameAccessor> accessor() const;

    /** Raw frame pointer; internal use by the accessor machinery. */
    Frame* frame() const { return _frame; }

  private:
    Engine& _engine;
    Frame* _frame;
    FuncState* _fs;
    uint32_t _pc;
};

/** Base class of all probes. */
class Probe
{
  public:
    virtual ~Probe() = default;

    /** Called just before the probed event. */
    virtual void fire(ProbeContext& ctx) = 0;

    /** Kind discriminators used by the compiled tier for intrinsification. */
    virtual bool isCountProbe() const { return false; }
    virtual bool isOperandProbe() const { return false; }
};

/**
 * A counter. The compiled tier inlines the increment when
 * intrinsifyCountProbe is enabled (Figure 2, right).
 */
class CountProbe : public Probe
{
  public:
    void fire(ProbeContext&) override { count++; }
    bool isCountProbe() const override { return true; }

    uint64_t count = 0;
};

/**
 * A probe that only needs the top-of-stack operand value. The compiled
 * tier passes the value directly when intrinsifyOperandProbe is enabled,
 * skipping FrameAccessor materialization (Figure 2, middle).
 */
class OperandProbe : public Probe
{
  public:
    void fire(ProbeContext& ctx) override;
    bool isOperandProbe() const override { return true; }

    /** Receives the value on top of the operand stack. */
    virtual void fireOperand(Value topOfStack) = 0;
};

/** A probe with an empty fire function (Section 5.3's T_PD methodology). */
class EmptyProbe : public Probe
{
  public:
    void fire(ProbeContext&) override {}
};

/** An empty probe that still counts as an operand probe (T_PD for branch). */
class EmptyOperandProbe : public OperandProbe
{
  public:
    void fireOperand(Value) override {}
};

/** Adapter wrapping a lambda as a probe. */
template <typename F>
class LambdaProbe : public Probe
{
  public:
    explicit LambdaProbe(F f) : _f(std::move(f)) {}
    void fire(ProbeContext& ctx) override { _f(ctx); }

  private:
    F _f;
};

/** Makes a probe from a callable taking (ProbeContext&). */
template <typename F>
std::shared_ptr<Probe>
makeProbe(F f)
{
    return std::make_shared<LambdaProbe<F>>(std::move(f));
}

} // namespace wizpp

#endif // WIZPP_PROBES_PROBE_H
