/**
 * @file
 * The FrameAccessor API (paper Section 2.3).
 *
 * A FrameAccessor is a lazily-allocated façade over one execution frame.
 * It abstracts the machine-level frame representation (which differs
 * between tiers and changes across deoptimization) behind a stable
 * interface, and its object identity is observable so monitors can
 * correlate callbacks on the same activation.
 *
 * Dangling-accessor protection follows the paper's chosen combination:
 * the accessor slot is cleared on function entry, accessors are
 * invalidated on return/unwind, and every API call validates that the
 * accessor still matches its frame before touching state.
 *
 * Frame modifications (setLocal/setOperand) take effect immediately and
 * force the frame to deoptimize to the interpreter (Section 2.4.2,
 * "frame modification consistency").
 */

#ifndef WIZPP_PROBES_FRAMEACCESSOR_H
#define WIZPP_PROBES_FRAMEACCESSOR_H

#include <cstdint>
#include <memory>

#include "runtime/value.h"

namespace wizpp {

class Engine;
struct Frame;
struct FuncState;

class FrameAccessor
{
  public:
    FrameAccessor(Engine& engine, uint32_t frameDepth, uint64_t frameId)
        : _engine(engine), _depth(frameDepth), _frameId(frameId)
    {}

    /**
     * True while the underlying frame is still live. All other methods
     * must only be called while valid; they return safe defaults (and
     * flag the misuse via misuseDetected()) otherwise, protecting the
     * runtime from buggy monitors.
     */
    bool valid() const;

    /** Marks the accessor dead (engine calls this on return/unwind). */
    void invalidate() { _invalidated = true; }

    /** Identity of the activation this accessor represents. */
    uint64_t frameId() const { return _frameId; }

    /** Call-stack depth of this frame; 0 is the bottom frame. */
    uint32_t depth() const { return _depth; }

    /** The function this frame executes. */
    FuncState* func() const;

    /** Current bytecode pc of the frame. */
    uint32_t pc() const;

    /** Accessor of the calling frame, or null at the stack bottom. */
    std::shared_ptr<FrameAccessor> caller() const;

    uint32_t numLocals() const;
    Value getLocal(uint32_t i) const;

    /** Number of operand-stack slots currently live in this frame. */
    uint32_t numOperands() const;

    /** Reads operand @p i from the top (0 = top of stack). */
    Value getOperand(uint32_t i) const;

    /**
     * Writes local @p i. The change applies immediately; if the frame is
     * executing compiled code it is deoptimized to the interpreter.
     */
    bool setLocal(uint32_t i, Value v);

    /** Writes operand @p i from the top; same consistency as setLocal. */
    bool setOperand(uint32_t i, Value v);

    /** True if any method was called on an invalid accessor. */
    bool misuseDetected() const { return _misuse; }

  private:
    Frame* liveFrame() const;
    void requestDeopt(Frame* f);

    Engine& _engine;
    uint32_t _depth;
    uint64_t _frameId;
    bool _invalidated = false;
    mutable bool _misuse = false;
};

} // namespace wizpp

#endif // WIZPP_PROBES_FRAMEACCESSOR_H
