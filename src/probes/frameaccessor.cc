#include "probes/frameaccessor.h"

#include "engine/engine.h"

namespace wizpp {

Frame*
FrameAccessor::liveFrame() const
{
    if (_invalidated) return nullptr;
    Frame* f = _engine.frameAt(_depth);
    // Validate that the frame slot still holds the same activation and
    // that the frame still points back at this accessor (Section 2.3,
    // mechanism 5).
    if (!f || f->frameId != _frameId) return nullptr;
    if (f->accessor.get() != this) return nullptr;
    return f;
}

bool
FrameAccessor::valid() const
{
    return liveFrame() != nullptr;
}

FuncState*
FrameAccessor::func() const
{
    Frame* f = liveFrame();
    if (!f) {
        _misuse = true;
        return nullptr;
    }
    return f->fs;
}

uint32_t
FrameAccessor::pc() const
{
    Frame* f = liveFrame();
    if (!f) {
        _misuse = true;
        return 0;
    }
    return f->pc;
}

std::shared_ptr<FrameAccessor>
FrameAccessor::caller() const
{
    Frame* f = liveFrame();
    if (!f || _depth == 0) {
        if (!f) _misuse = true;
        return nullptr;
    }
    Frame* c = _engine.frameAt(_depth - 1);
    if (!c) return nullptr;
    if (!c->accessor) {
        c->accessor = std::make_shared<FrameAccessor>(_engine, _depth - 1,
                                                      c->frameId);
    }
    return c->accessor;
}

uint32_t
FrameAccessor::numLocals() const
{
    Frame* f = liveFrame();
    if (!f) {
        _misuse = true;
        return 0;
    }
    return f->fs->numLocals;
}

Value
FrameAccessor::getLocal(uint32_t i) const
{
    Frame* f = liveFrame();
    if (!f || i >= f->fs->numLocals) {
        _misuse = true;
        return Value{};
    }
    return _engine.values()[f->localsBase + i];
}

uint32_t
FrameAccessor::numOperands() const
{
    Frame* f = liveFrame();
    if (!f) {
        _misuse = true;
        return 0;
    }
    return f->sp - f->stackStart;
}

Value
FrameAccessor::getOperand(uint32_t i) const
{
    Frame* f = liveFrame();
    if (!f || f->sp - f->stackStart <= i) {
        _misuse = true;
        return Value{};
    }
    return _engine.values()[f->sp - 1 - i];
}

void
FrameAccessor::requestDeopt(Frame* f)
{
    // Frame modification consistency (Section 2.4.2): state changes take
    // effect immediately; a frame in compiled code must continue in the
    // interpreter, as almost any invariant the compiler relied on may
    // now be invalid.
    if (f->tier == Tier::Jit) _engine.requestDeopt(f);
    // Frames suspended inside compiled callers also re-check their
    // deopt flag when control returns to them.
    _engine.instrumentationEpoch++;
}

bool
FrameAccessor::setLocal(uint32_t i, Value v)
{
    Frame* f = liveFrame();
    if (!f || i >= f->fs->numLocals) {
        _misuse = true;
        return false;
    }
    if (v.type != f->fs->localTypes[i]) {
        _misuse = true;
        return false;
    }
    _engine.values()[f->localsBase + i] = v;
    requestDeopt(f);
    return true;
}

bool
FrameAccessor::setOperand(uint32_t i, Value v)
{
    Frame* f = liveFrame();
    if (!f || f->sp - f->stackStart <= i) {
        _misuse = true;
        return false;
    }
    Value& slot = _engine.values()[f->sp - 1 - i];
    if (slot.type != v.type) {
        _misuse = true;
        return false;
    }
    slot = v;
    requestDeopt(f);
    return true;
}

} // namespace wizpp
