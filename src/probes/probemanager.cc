#include "probes/probemanager.h"

#include <algorithm>
#include <chrono>

#include "analysis/audit.h"
#include "engine/engine.h"
#include "interp/fusion.h"
#include "obs/timeline.h"
#include "wasm/opcodes.h"

namespace wizpp {

namespace {

/** Clones a COW list for mutation. */
ProbeList
cloneList(const ProbeListRef& ref)
{
    return ref ? ProbeList(*ref) : ProbeList{};
}

/**
 * Shared batch skeleton for insertBatch/removeBatch: stable-sorts
 * @p batch by site (preserving relative order of duplicates at one
 * site — insertion order is firing order; monitors that walk
 * functions in order produce already-sorted batches and skip the
 * sort), then invokes @p fn once per site group with the half-open
 * index range [i, j).
 */
template <typename F>
void
forEachSiteGroup(std::span<ProbeManager::SiteProbe> batch, F&& fn)
{
    auto siteLess = [](const ProbeManager::SiteProbe& a,
                       const ProbeManager::SiteProbe& b) {
        if (a.funcIndex != b.funcIndex) return a.funcIndex < b.funcIndex;
        return a.pc < b.pc;
    };
    if (!std::is_sorted(batch.begin(), batch.end(), siteLess)) {
        std::stable_sort(batch.begin(), batch.end(), siteLess);
    }
    for (size_t i = 0; i < batch.size();) {
        uint32_t funcIndex = batch[i].funcIndex;
        uint32_t pc = batch[i].pc;
        size_t j = i;
        while (j < batch.size() && batch[j].funcIndex == funcIndex &&
               batch[j].pc == pc) {
            j++;
        }
        fn(funcIndex, pc, i, j);
        i = j;
    }
}

} // namespace

// ---------------------------------------------------------------------
// Dense site tables
// ---------------------------------------------------------------------

FuncState*
ProbeManager::validSite(uint32_t funcIndex, uint32_t pc) const
{
    if (funcIndex >= _engine.numFuncs()) return nullptr;
    FuncState& fs = _engine.funcState(funcIndex);
    if (fs.decl->imported) return nullptr;
    if (!fs.sideTable.isInstrBoundary(pc)) return nullptr;
    return &fs;
}

ProbeManager::LocalSite*
ProbeManager::findSite(uint32_t funcIndex, uint32_t pc)
{
    if (funcIndex >= _funcSites.size()) return nullptr;
    FuncSites& f = _funcSites[funcIndex];
    if (pc >= f.pcToSite.size()) return nullptr;
    uint32_t slot = f.pcToSite[pc];
    return slot == kNoSite ? nullptr : &f.slots[slot];
}

const ProbeManager::LocalSite*
ProbeManager::findSite(uint32_t funcIndex, uint32_t pc) const
{
    return const_cast<ProbeManager*>(this)->findSite(funcIndex, pc);
}

ProbeManager::LocalSite&
ProbeManager::ensureSite(FuncState& fs, uint32_t pc)
{
    uint32_t funcIndex = fs.funcIndex;
    if (funcIndex >= _funcSites.size()) {
        _funcSites.resize(_engine.numFuncs());
    }
    FuncSites& f = _funcSites[funcIndex];
    if (f.pcToSite.empty()) {
        // First probe in this function: build the dense pc index once.
        f.pcToSite.assign(fs.code.size(), kNoSite);
    }
    uint32_t slot = f.pcToSite[pc];
    if (slot != kNoSite) return f.slots[slot];

    // New site: take a recycled slot or append, and overwrite the
    // bytecode (Section 4.2).
    if (!f.freeSlots.empty()) {
        slot = f.freeSlots.back();
        f.freeSlots.pop_back();
    } else {
        slot = static_cast<uint32_t>(f.slots.size());
        f.slots.emplace_back();
    }
    f.pcToSite[pc] = slot;
    LocalSite& site = f.slots[slot];
    site.originalByte = fs.code[pc];
    site.members = std::make_shared<const ProbeList>();
    site.fused = nullptr;
    fs.code[pc] = OP_PROBE;
    // Mirror the overwrite into the dispatch annotation and split any
    // superinstruction window covering this pc back to singles, so the
    // probed instruction dispatches through the normal OP_PROBE
    // machinery (src/interp/fusion.h). Rides this change's epoch bump.
    if (fusionOnProbeAttach(fs, pc)) _engine.stats.fusionSplits++;
    _numSites++;
    return site;
}

void
ProbeManager::releaseSite(FuncState& fs, uint32_t pc)
{
    FuncSites& f = _funcSites[fs.funcIndex];
    uint32_t slot = f.pcToSite[pc];
    if (slot == kNoSite) return;
    fs.code[pc] = f.slots[slot].originalByte;
    // Restore the dispatch annotation too; the covering window (if
    // any) re-fuses once its last probe is gone — under removeBatch
    // every re-fusion of the batch shares one epoch bump.
    if (fusionOnProbeDetach(fs, pc, f.slots[slot].originalByte)) {
        _engine.stats.fusionRefusions++;
    }
    // A borrowed firing of this site may be on the stack (a probe
    // removing its own site mid-fire); keep its entry alive.
    retire(std::move(f.slots[slot].fused));
    f.slots[slot] = LocalSite{};
    f.pcToSite[pc] = kNoSite;
    f.freeSlots.push_back(slot);
    _numSites--;
}

void
ProbeManager::rebuildFused(LocalSite& site)
{
    // Single-member sites fire the member directly, keeping their
    // compiled-tier intrinsification eligibility; larger sites get a
    // fresh immutable FusedProbe. In-flight firings may be borrowing
    // the old entry, so park it on the retire list first.
    retire(std::move(site.fused));
    const ProbeList& m = *site.members;
    if (m.size() == 1) {
        site.fused = m[0];
    } else {
        site.fused = std::make_shared<FusedProbe>(m);
    }
}

// ---------------------------------------------------------------------
// Local probe insertion and removal
// ---------------------------------------------------------------------

bool
ProbeManager::insertLocal(uint32_t funcIndex, uint32_t pc,
                          std::shared_ptr<Probe> probe)
{
    FuncState* fs = validSite(funcIndex, pc);
    if (!fs) return false;

    LocalSite& site = ensureSite(*fs, pc);
    ProbeList list = cloneList(site.members);
    list.push_back(std::move(probe));
    site.members = std::make_shared<const ProbeList>(std::move(list));
    rebuildFused(site);
    fs->probeCount++;
    _engine.onLocalProbesChanged(funcIndex);
    return true;
}

size_t
ProbeManager::insertBatch(std::span<SiteProbe> batch)
{
    obs::Timeline::Span span(
        _engine.timeline(), "probes.insertBatch",
        {{"probes", std::to_string(batch.size())}});
    auto t0 = std::chrono::steady_clock::now();
    size_t inserted = 0;
    std::vector<uint32_t> touchedFuncs;
    forEachSiteGroup(batch, [&](uint32_t funcIndex, uint32_t pc,
                                size_t i, size_t j) {
        FuncState* fs = validSite(funcIndex, pc);
        if (!fs) return;  // skip the whole invalid-site group

        // Build this site's new member list exactly once for the whole
        // group, then swap in one new fused firing entry.
        LocalSite& site = ensureSite(*fs, pc);
        ProbeList list = cloneList(site.members);
        list.reserve(list.size() + (j - i));
        for (size_t k = i; k < j; k++) {
            list.push_back(std::move(batch[k].probe));
        }
        site.members = std::make_shared<const ProbeList>(std::move(list));
        rebuildFused(site);
        fs->probeCount += static_cast<uint32_t>(j - i);
        inserted += j - i;
        if (touchedFuncs.empty() || touchedFuncs.back() != funcIndex) {
            touchedFuncs.push_back(funcIndex);  // batch is func-sorted
        }
    });

    // One epoch bump and one compiled-code invalidation per touched
    // function for the entire batch.
    if (inserted) _engine.onProbesBatchChanged(touchedFuncs);

#ifndef NDEBUG
    // Debug builds cross-check the batch against the static dataflow
    // facts (analysis/audit.h): warnings to stderr, never fatal.
    if (inserted) {
        auditWarnings +=
            analysis::debugAuditFunctions(_engine, touchedFuncs);
    }
#endif
    obs::MetricsRegistry& m = _engine.metrics();
    m.counter("probes.batch_inserts")++;
    m.counter("probes.batch_probes_inserted") += inserted;
    m.histogram("probes.insert_batch_us")
        .record((uint64_t)std::chrono::duration_cast<
                    std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count());
    span.close({{"attached", std::to_string(inserted)},
                {"funcs", std::to_string(touchedFuncs.size())}});
    return inserted;
}

bool
ProbeManager::removeLocal(uint32_t funcIndex, uint32_t pc,
                          const Probe* probe)
{
    LocalSite* site = findSite(funcIndex, pc);
    if (!site) return false;
    ProbeList list = cloneList(site->members);
    bool found = false;
    for (auto li = list.begin(); li != list.end(); ++li) {
        if (li->get() == probe) {
            list.erase(li);
            found = true;
            break;
        }
    }
    if (!found) return false;

    FuncState& fs = _engine.funcState(funcIndex);
    if (list.empty()) {
        releaseSite(fs, pc);
    } else {
        site->members = std::make_shared<const ProbeList>(std::move(list));
        rebuildFused(*site);
    }
    fs.probeCount--;
    _engine.onLocalProbesChanged(funcIndex);
    return true;
}

size_t
ProbeManager::removeBatch(std::span<SiteProbe> batch)
{
    // Same site grouping as insertBatch (stable, so duplicate pairs
    // at one site remove the same number of occurrences as one-by-one
    // removeLocal calls would).
    obs::Timeline::Span span(
        _engine.timeline(), "probes.removeBatch",
        {{"probes", std::to_string(batch.size())}});
    size_t removed = 0;
    std::vector<uint32_t> touchedFuncs;
    forEachSiteGroup(batch, [&](uint32_t funcIndex, uint32_t pc,
                                size_t i, size_t j) {
        LocalSite* site = findSite(funcIndex, pc);
        if (!site) return;  // nothing attached at this site group

        // Erase this group's occurrences from one cloned list, then
        // swap in one new fused firing entry (or release the site).
        ProbeList list = cloneList(site->members);
        size_t before = list.size();
        for (size_t k = i; k < j; k++) {
            const Probe* probe = batch[k].probe.get();
            for (auto li = list.begin(); li != list.end(); ++li) {
                if (li->get() == probe) {
                    list.erase(li);
                    break;
                }
            }
        }
        size_t erased = before - list.size();
        if (!erased) return;
        FuncState& fs = _engine.funcState(funcIndex);
        if (list.empty()) {
            releaseSite(fs, pc);
        } else {
            site->members =
                std::make_shared<const ProbeList>(std::move(list));
            rebuildFused(*site);
        }
        fs.probeCount -= static_cast<uint32_t>(erased);
        removed += erased;
        if (touchedFuncs.empty() || touchedFuncs.back() != funcIndex) {
            touchedFuncs.push_back(funcIndex);  // batch is func-sorted
        }
    });

    // One epoch bump and one compiled-code invalidation per touched
    // function for the entire batch.
    if (removed) _engine.onProbesBatchChanged(touchedFuncs);
    obs::MetricsRegistry& m = _engine.metrics();
    m.counter("probes.batch_removes")++;
    m.counter("probes.batch_probes_removed") += removed;
    span.close({{"detached", std::to_string(removed)},
                {"funcs", std::to_string(touchedFuncs.size())}});
    return removed;
}

void
ProbeManager::removeAllLocal(uint32_t funcIndex, uint32_t pc)
{
    LocalSite* site = findSite(funcIndex, pc);
    if (!site) return;
    FuncState& fs = _engine.funcState(funcIndex);
    fs.probeCount -= static_cast<uint32_t>(site->members->size());
    releaseSite(fs, pc);
    _engine.onLocalProbesChanged(funcIndex);
}

ProbeListRef
ProbeManager::probesAt(uint32_t funcIndex, uint32_t pc) const
{
    const LocalSite* site = findSite(funcIndex, pc);
    return site ? site->members : nullptr;
}

uint8_t
ProbeManager::originalByte(uint32_t funcIndex, uint32_t pc) const
{
    const LocalSite* site = findSite(funcIndex, pc);
    if (!site) {
        // Not probed: the live byte is the original.
        return _engine.funcState(funcIndex).code[pc];
    }
    return site->originalByte;
}

// ---------------------------------------------------------------------
// Global probes
// ---------------------------------------------------------------------

void
ProbeManager::insertGlobal(std::shared_ptr<Probe> probe)
{
    ProbeList list = cloneList(_globals);
    list.push_back(std::move(probe));
    _globals = std::make_shared<const ProbeList>(std::move(list));
    _engine.onGlobalProbesChanged();
}

bool
ProbeManager::removeGlobal(const Probe* probe)
{
    ProbeList list = cloneList(_globals);
    bool found = false;
    for (auto li = list.begin(); li != list.end(); ++li) {
        if (li->get() == probe) {
            list.erase(li);
            found = true;
            break;
        }
    }
    if (!found) return false;
    _globals = std::make_shared<const ProbeList>(std::move(list));
    _engine.onGlobalProbesChanged();
    return true;
}

// ---------------------------------------------------------------------
// Firing
// ---------------------------------------------------------------------

void
ProbeManager::fireLocal(Frame* frame, FuncState* fs, uint32_t pc)
{
    BorrowedSite site = borrowSite(fs->funcIndex, pc);
    if (!site.fired) return;
    fireBorrowed(site, frame, fs, pc);
}

void
ProbeManager::fireSite(const SiteView& site, Frame* frame, FuncState* fs,
                       uint32_t pc)
{
    if (!site.fired) return;
    // The snapshot (site.fired) is immutable: inserts/removals by the
    // firing probes swap the site's entry without disturbing this call
    // — all three Section 2.4 guarantees fall out of that.
    localFireCount += site.memberCount;
    ProbeContext ctx(_engine, frame, fs, pc);
    ctx.setFiring(site.fired.get());
    site.fired->fire(ctx);
}

void
ProbeManager::fireBorrowed(const BorrowedSite& site, Frame* frame,
                           FuncState* fs, uint32_t pc)
{
    if (!site.fired) return;
    // Same immutable-snapshot semantics as fireSite, but the entry is
    // borrowed: the FireScope keeps anything the firing probes swap
    // out alive until this (outermost) fire returns, so the M-code may
    // insert, remove or re-fuse freely — including at this very site —
    // and all three Section 2.4 guarantees still hold.
    FireScope scope(*this);
    localFireCount += site.memberCount;
    ProbeContext ctx(_engine, frame, fs, pc);
    ctx.setFiring(site.fired);
    site.fired->fire(ctx);
}

void
ProbeManager::fireResolved(Probe* fired, uint32_t memberCount,
                           Frame* frame, FuncState* fs, uint32_t pc)
{
    // The entry is immutable (a FusedProbe's member list never
    // changes); M-code mutating the site swaps the *site's* entry and
    // invalidates the calling code, so this firing completes from its
    // translation-time snapshot — the Section 2.4 guarantees again.
    localFireCount += memberCount;
    ProbeContext ctx(_engine, frame, fs, pc);
    ctx.setFiring(fired);
    fired->fire(ctx);
}

void
ProbeManager::fireGlobal(Frame* frame, FuncState* fs, uint32_t pc)
{
    ProbeListRef list = _globals;
    ProbeContext ctx(_engine, frame, fs, pc);
    ctx.setGlobalFiring(true);
    for (const auto& p : *list) {
        globalFireCount++;
        ctx.setFiring(p.get());
        p->fire(ctx);
    }
}

// ---------------------------------------------------------------------
// ProbeContext::removeSelf
// ---------------------------------------------------------------------

bool
ProbeContext::removeSelf() const
{
    if (!_firing) return false;
    ProbeManager& pm = _engine.probes();
    if (_globalFiring) return pm.removeGlobal(_firing);
    return pm.removeLocal(funcIndex(), _pc, _firing);
}

} // namespace wizpp
