#include "probes/probemanager.h"

#include "engine/engine.h"
#include "wasm/opcodes.h"

namespace wizpp {

namespace {

/** Clones a COW list for mutation. */
ProbeList
cloneList(const ProbeListRef& ref)
{
    return ref ? ProbeList(*ref) : ProbeList{};
}

} // namespace

bool
ProbeManager::insertLocal(uint32_t funcIndex, uint32_t pc,
                          std::shared_ptr<Probe> probe)
{
    if (funcIndex >= _engine.numFuncs()) return false;
    FuncState& fs = _engine.funcState(funcIndex);
    if (fs.decl->imported) return false;
    if (!fs.sideTable.isInstrBoundary(pc)) return false;

    uint64_t k = key(funcIndex, pc);
    auto it = _sites.find(k);
    if (it == _sites.end()) {
        // First probe here: overwrite the bytecode (Section 4.2).
        LocalSite site;
        site.originalByte = fs.code[pc];
        ProbeList list;
        list.push_back(std::move(probe));
        site.probes = std::make_shared<const ProbeList>(std::move(list));
        _sites.emplace(k, std::move(site));
        fs.code[pc] = OP_PROBE;
    } else {
        ProbeList list = cloneList(it->second.probes);
        list.push_back(std::move(probe));
        it->second.probes =
            std::make_shared<const ProbeList>(std::move(list));
    }
    fs.probeCount++;
    _engine.onLocalProbesChanged(funcIndex);
    return true;
}

bool
ProbeManager::removeLocal(uint32_t funcIndex, uint32_t pc,
                          const Probe* probe)
{
    uint64_t k = key(funcIndex, pc);
    auto it = _sites.find(k);
    if (it == _sites.end()) return false;
    ProbeList list = cloneList(it->second.probes);
    bool found = false;
    for (auto li = list.begin(); li != list.end(); ++li) {
        if (li->get() == probe) {
            list.erase(li);
            found = true;
            break;
        }
    }
    if (!found) return false;

    FuncState& fs = _engine.funcState(funcIndex);
    if (list.empty()) {
        // Last probe removed: restore the original bytecode.
        fs.code[pc] = it->second.originalByte;
        _sites.erase(it);
    } else {
        it->second.probes =
            std::make_shared<const ProbeList>(std::move(list));
    }
    fs.probeCount--;
    _engine.onLocalProbesChanged(funcIndex);
    return true;
}

void
ProbeManager::removeAllLocal(uint32_t funcIndex, uint32_t pc)
{
    uint64_t k = key(funcIndex, pc);
    auto it = _sites.find(k);
    if (it == _sites.end()) return;
    FuncState& fs = _engine.funcState(funcIndex);
    fs.probeCount -= static_cast<uint32_t>(it->second.probes->size());
    fs.code[pc] = it->second.originalByte;
    _sites.erase(it);
    _engine.onLocalProbesChanged(funcIndex);
}

ProbeListRef
ProbeManager::probesAt(uint32_t funcIndex, uint32_t pc) const
{
    auto it = _sites.find(key(funcIndex, pc));
    return it == _sites.end() ? nullptr : it->second.probes;
}

uint8_t
ProbeManager::originalByte(uint32_t funcIndex, uint32_t pc) const
{
    auto it = _sites.find(key(funcIndex, pc));
    if (it == _sites.end()) {
        // Not probed: the live byte is the original.
        return _engine.funcState(funcIndex).code[pc];
    }
    return it->second.originalByte;
}

void
ProbeManager::insertGlobal(std::shared_ptr<Probe> probe)
{
    ProbeList list = cloneList(_globals);
    list.push_back(std::move(probe));
    _globals = std::make_shared<const ProbeList>(std::move(list));
    _engine.onGlobalProbesChanged();
}

bool
ProbeManager::removeGlobal(const Probe* probe)
{
    ProbeList list = cloneList(_globals);
    bool found = false;
    for (auto li = list.begin(); li != list.end(); ++li) {
        if (li->get() == probe) {
            list.erase(li);
            found = true;
            break;
        }
    }
    if (!found) return false;
    _globals = std::make_shared<const ProbeList>(std::move(list));
    _engine.onGlobalProbesChanged();
    return true;
}

void
ProbeManager::fireLocal(Frame* frame, FuncState* fs, uint32_t pc)
{
    // Snapshot semantics give all three consistency guarantees: the
    // list reference is immutable; concurrent inserts/removals replace
    // the map entry with a new list without disturbing this iteration.
    ProbeListRef list = probesAt(fs->funcIndex, pc);
    if (!list) return;
    fireList(*list, frame, fs, pc);
}

void
ProbeManager::fireList(const ProbeList& list, Frame* frame, FuncState* fs,
                       uint32_t pc)
{
    ProbeContext ctx(_engine, frame, fs, pc);
    for (const auto& p : list) {
        localFireCount++;
        p->fire(ctx);
    }
}

void
ProbeManager::fireGlobal(Frame* frame, FuncState* fs, uint32_t pc)
{
    ProbeListRef list = _globals;
    ProbeContext ctx(_engine, frame, fs, pc);
    for (const auto& p : *list) {
        globalFireCount++;
        p->fire(ctx);
    }
}

} // namespace wizpp
