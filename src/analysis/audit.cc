#include "analysis/audit.h"

#include <iostream>

#include "engine/engine.h"
#include "jit/jitcode.h"
#include "jit/lowering.h"
#include "wasm/disasm.h"

namespace wizpp::analysis {

namespace {

void
violation(AuditResult& out, uint32_t funcIndex, uint32_t pc,
          std::string msg)
{
    out.violations.push_back({funcIndex, pc, std::move(msg)});
}

/** Audits every probed site of one function. */
void
auditFunction(Engine& eng, uint32_t funcIndex, AuditResult& out)
{
    FuncState& fs = eng.funcState(funcIndex);
    if (fs.probeCount == 0 || !fs.decl || fs.decl->imported) return;

    FuncFacts ff =
        analyzeFunction(eng.module(), funcIndex, fs.sideTable);
    for (const std::string& d : ff.divergences) {
        violation(out, funcIndex, 0, "analysis divergence: " + d);
    }

    ProbeManager& pm = eng.probes();
    for (uint32_t pc : fs.sideTable.instrBoundaries) {
        ProbeManager::SiteView site = pm.siteFor(funcIndex, pc);
        if (!site.fired) continue;
        out.sitesAudited++;

        const InstrFacts* fa = ff.at(pc);

        // FrameAccess vs operand availability: a probe that declared
        // Operand access (OperandProbe, or an EntryExitProbe whose
        // needsTopOfStack() is true) needs a top-of-stack value, which
        // a statically-empty stack cannot provide. Statically
        // unreachable sites are skip-audited: their probes never fire.
        if (fa && fa->reachable && fa->depth() == 0) {
            ProbeListRef members = pm.probesAt(funcIndex, pc);
            if (members) {
                for (const auto& p : *members) {
                    if (p->frameAccess() != FrameAccess::Operand) {
                        continue;
                    }
                    violation(
                        out, funcIndex, pc,
                        "func #" + std::to_string(funcIndex) + " +" +
                            std::to_string(pc) +
                            ": mis-declared FrameAccess: probe "
                            "declares Operand access but the operand "
                            "stack is statically empty at `" +
                            disassembleInstr(fs.decl->code, pc) + "`");
                }
            }
        }

        // Re-run the single lowering decision point and check its
        // internal invariants and, when the function is currently
        // compiled and clean, agreement with what the JIT recorded.
        ProbeLowering low = lowerProbeSite(eng.config(), site);
        if (low.kind == ProbeLoweringKind::Count &&
            !site.fired->isCountProbe()) {
            violation(out, funcIndex, pc,
                      "func #" + std::to_string(funcIndex) + " +" +
                          std::to_string(pc) +
                          ": Count lowering for a non-CountProbe "
                          "firing entry");
        }
        if (fs.jit && !fs.recompilePending) {
            ProbeLoweringKind recorded = fs.jit->loweringAt(pc);
            if (recorded != low.kind) {
                violation(
                    out, funcIndex, pc,
                    "func #" + std::to_string(funcIndex) + " +" +
                        std::to_string(pc) + ": lowering drift: " +
                        "compiled code recorded '" +
                        probeLoweringKindName(recorded) +
                        "' but lowerProbeSite now decides '" +
                        probeLoweringKindName(low.kind) + "'");
            }
        }
    }
}

} // namespace

AuditResult
auditProbeLowering(Engine& eng)
{
    AuditResult out;
    for (uint32_t i = 0; i < eng.numFuncs(); i++) {
        auditFunction(eng, i, out);
    }
    eng.metrics().counter("analysis.audit_runs")++;
    return out;
}

size_t
debugAuditFunctions(Engine& eng,
                    const std::vector<uint32_t>& funcIndices)
{
    AuditResult out;
    for (uint32_t i : funcIndices) {
        if (i < eng.numFuncs()) auditFunction(eng, i, out);
    }
    for (const AuditFinding& f : out.violations) {
        std::cerr << "[probe-audit] warning: " << f.message << "\n";
    }
    return out.violations.size();
}

} // namespace wizpp::analysis
