/**
 * @file
 * The abstract-interpretation solver behind analysis/analysis.h.
 *
 * A worklist fixpoint over instruction boundaries: the abstract state
 * (operand stack + locals, both vectors of AbstractValue) flows along
 * the same edges the interpreter takes — fallthrough, plus the
 * validator's resolved SideTable entries for br/br_if/br_table, the
 * false edge of `if` and the skip edge of `else`. Branch edges apply
 * the exact SideTableEntry transform the interpreter performs: keep
 * stack[0, popTo), append the top valCount values, continue at
 * targetPc.
 *
 * The lattice is finite (types widen once to Any, origins widen once
 * to Unknown, taint and local-dependency bits only grow) and merges
 * are monotone, so the fixpoint terminates. Reachable-edge merges must
 * agree on stack depth; a depth conflict is recorded as a divergence
 * (and fails the differential gate) instead of being widened away.
 */

#include <deque>
#include <unordered_set>

#include "analysis/analysis.h"
#include "wasm/decoder.h"
#include "wasm/opcodes.h"
#include "wasm/validator.h"

namespace wizpp::analysis {

namespace {

constexpr uint32_t kNoPc = 0xffffffffu;

/** Locals 63 and above share one dependency bit. */
uint64_t
localBit(uint32_t i)
{
    return 1ull << (i < 63 ? i : 63);
}

/** The full abstract state at one program point. */
struct State
{
    std::vector<AbstractValue> stack;
    std::vector<AbstractValue> locals;
};

/** Joins @p from into @p into; returns true if @p into changed. */
bool
mergeValue(AbstractValue& into, const AbstractValue& from)
{
    bool changed = false;
    if (into.type != from.type && into.type != AbsType::Any) {
        into.type = AbsType::Any;
        changed = true;
    }
    bool sameOrigin = into.origin == from.origin &&
                      into.originPc == from.originPc &&
                      into.originIndex == from.originIndex;
    if (!sameOrigin && into.origin != Origin::Unknown) {
        into.origin = Origin::Unknown;
        into.originPc = kNoPc;
        into.originIndex = 0;
        changed = true;
    }
    uint8_t taint = into.taint | from.taint;
    if (taint != into.taint) {
        into.taint = taint;
        changed = true;
    }
    uint64_t deps = into.localDeps | from.localDeps;
    if (deps != into.localDeps) {
        into.localDeps = deps;
        changed = true;
    }
    return changed;
}

class Solver
{
  public:
    Solver(const Module& m, uint32_t funcIndex, const SideTable& st,
           FuncFacts& out)
        : _m(m), _f(m.functions[funcIndex]),
          _sig(m.types[_f.typeIndex]), _st(st), _out(out)
    {}

    void
    run()
    {
        State entry;
        uint32_t numParams = static_cast<uint32_t>(_sig.params.size());
        for (uint32_t i = 0; i < numParams; i++) {
            entry.locals.push_back({absTypeOf(_sig.params[i]),
                                    Origin::Param, kNoPc, i, 0, 0});
        }
        for (size_t i = 0; i < _f.locals.size(); i++) {
            entry.locals.push_back(
                {absTypeOf(_f.locals[i]), Origin::LocalInit, kNoPc,
                 numParams + static_cast<uint32_t>(i), 0, 0});
        }
        if (_f.code.empty()) return;
        mergeInto(0, entry);

        // Safety margin far above what the finite lattice permits; a
        // trip means a monotonicity bug, reported as a divergence.
        size_t maxSteps =
            (_st.instrBoundaries.size() + 1) * 4096 + 65536;
        size_t steps = 0;
        while (!_worklist.empty()) {
            if (++steps > maxSteps) {
                diverge(0, "fixpoint failed to converge");
                break;
            }
            uint32_t pc = _worklist.front();
            _worklist.pop_front();
            _queued.erase(pc);
            step(pc);
        }

        // Export stack facts and compute the pointer-like-local set
        // (locals whose values reach a load/store address slot).
        for (uint32_t pc : _st.instrBoundaries) {
            InstrFacts fa;
            auto it = _in.find(pc);
            if (it != _in.end()) {
                fa.reachable = true;
                fa.stack = it->second.stack;
                _out.reachableCount++;
                accumulateAddressDeps(pc, it->second);
            }
            _out.facts.emplace(pc, std::move(fa));
        }
    }

  private:
    void
    diverge(uint32_t pc, const std::string& msg)
    {
        if (_out.divergences.size() < 64) {
            _out.divergences.push_back(
                "func #" + std::to_string(_f.index) + " +" +
                std::to_string(pc) + ": " + msg);
        }
    }

    /** Joins @p s into the in-state at @p pc, queueing on change. */
    void
    mergeInto(uint32_t pc, const State& s)
    {
        auto it = _in.find(pc);
        if (it == _in.end()) {
            _in.emplace(pc, s);
            enqueue(pc);
            return;
        }
        State& dst = it->second;
        if (dst.stack.size() != s.stack.size()) {
            diverge(pc, "reachable edges meet with depths " +
                            std::to_string(dst.stack.size()) + " and " +
                            std::to_string(s.stack.size()));
            return;
        }
        bool changed = false;
        for (size_t i = 0; i < dst.stack.size(); i++) {
            changed |= mergeValue(dst.stack[i], s.stack[i]);
        }
        for (size_t i = 0; i < dst.locals.size(); i++) {
            changed |= mergeValue(dst.locals[i], s.locals[i]);
        }
        if (changed) enqueue(pc);
    }

    void
    enqueue(uint32_t pc)
    {
        if (_queued.insert(pc).second) _worklist.push_back(pc);
    }

    /** The interpreter's branch transform: keep stack[0, popTo),
        append the top valCount values. */
    bool
    applyEdge(const State& s, const SideTableEntry& e, uint32_t pc,
              State* out)
    {
        if (s.stack.size() <
            static_cast<size_t>(e.popTo) + e.valCount) {
            diverge(pc, "branch edge needs depth >= " +
                            std::to_string(e.popTo + e.valCount) +
                            ", have " + std::to_string(s.stack.size()));
            return false;
        }
        *out = s;
        std::vector<AbstractValue> vals(s.stack.end() - e.valCount,
                                        s.stack.end());
        out->stack.resize(e.popTo);
        out->stack.insert(out->stack.end(), vals.begin(), vals.end());
        return true;
    }

    const SideTableEntry*
    branchEntry(uint32_t pc)
    {
        auto it = _st.branches.find(pc);
        if (it == _st.branches.end()) {
            diverge(pc, "missing side-table branch entry");
            return nullptr;
        }
        return &it->second;
    }

    bool
    pop(State& s, uint32_t pc, AbstractValue* out)
    {
        if (s.stack.empty()) {
            diverge(pc, "operand stack underflow in reachable code");
            return false;
        }
        *out = s.stack.back();
        s.stack.pop_back();
        return true;
    }

    static AbstractValue
    make(AbsType t, Origin o, uint32_t pc, uint32_t index = 0)
    {
        return {t, o, pc, index, 0, 0};
    }

    /** Transfers the in-state through the instruction at @p pc and
        propagates to every successor edge. */
    void
    step(uint32_t pc)
    {
        InstrView v;
        if (!decodeInstr(_f.code, pc, &v)) {
            diverge(pc, "validated code failed to decode");
            return;
        }
        State s = _in.at(pc);  // copy: transfer mutates
        uint32_t next = pc + static_cast<uint32_t>(v.length);
        AbstractValue a, b, c;

        // Derived compute result: taint and local deps flow through.
        auto compute = [&](AbsType t,
                           std::initializer_list<const AbstractValue*>
                               srcs) {
            AbstractValue r = make(t, Origin::Compute, pc);
            for (const AbstractValue* src : srcs) {
                r.taint |= src->taint;
                r.localDeps |= src->localDeps;
            }
            return r;
        };
        auto cvt = [&](AbsType to) {
            if (!pop(s, pc, &a)) return false;
            s.stack.push_back(compute(to, {&a}));
            return true;
        };
        auto fallthrough = [&]() { mergeInto(next, s); };

        switch (v.opcode) {
          case OP_UNREACHABLE:
            return;  // no successors
          case OP_NOP:
          case OP_BLOCK:
          case OP_LOOP:
            fallthrough();
            return;

          case OP_IF: {
            if (!pop(s, pc, &a)) return;  // condition
            const SideTableEntry* e = branchEntry(pc);
            if (!e) return;
            State f;
            if (applyEdge(s, *e, pc, &f)) mergeInto(e->targetPc, f);
            fallthrough();  // then-body
            return;
          }
          case OP_ELSE: {
            // Reached by falling out of the then-branch; the skip
            // edge jumps past `end`. The else-body itself is entered
            // through the `if`'s false edge, not from here.
            const SideTableEntry* e = branchEntry(pc);
            if (!e) return;
            State f;
            if (applyEdge(s, *e, pc, &f)) mergeInto(e->targetPc, f);
            return;
          }
          case OP_END:
            // Identity transfer. The final `end` is the function
            // exit (and the function-label branch target): no
            // successors.
            if (next < _f.code.size()) fallthrough();
            return;

          case OP_BR: {
            const SideTableEntry* e = branchEntry(pc);
            if (!e) return;
            State f;
            if (applyEdge(s, *e, pc, &f)) mergeInto(e->targetPc, f);
            return;
          }
          case OP_BR_IF: {
            if (!pop(s, pc, &a)) return;  // condition
            const SideTableEntry* e = branchEntry(pc);
            if (!e) return;
            State f;
            if (applyEdge(s, *e, pc, &f)) mergeInto(e->targetPc, f);
            fallthrough();
            return;
          }
          case OP_BR_TABLE: {
            if (!pop(s, pc, &a)) return;  // index
            auto it = _st.brTables.find(pc);
            if (it == _st.brTables.end()) {
                diverge(pc, "missing side-table br_table entry");
                return;
            }
            for (const SideTableEntry& e : it->second) {
                State f;
                if (applyEdge(s, e, pc, &f)) mergeInto(e.targetPc, f);
            }
            return;
          }
          case OP_RETURN:
            return;  // no successors

          case OP_CALL: {
            if (v.index >= _m.functions.size()) {
                diverge(pc, "call target out of range");
                return;
            }
            const FuncType& ft = _m.funcType(v.index);
            for (size_t i = 0; i < ft.params.size(); i++) {
                if (!pop(s, pc, &a)) return;
            }
            bool host = _m.functions[v.index].imported;
            for (ValType t : ft.results) {
                s.stack.push_back(make(
                    absTypeOf(t),
                    host ? Origin::HostCallResult : Origin::CallResult,
                    pc, v.index));
            }
            fallthrough();
            return;
          }
          case OP_CALL_INDIRECT: {
            if (v.index >= _m.types.size()) {
                diverge(pc, "call_indirect type out of range");
                return;
            }
            const FuncType& ft = _m.types[v.index];
            if (!pop(s, pc, &a)) return;  // table index
            for (size_t i = 0; i < ft.params.size(); i++) {
                if (!pop(s, pc, &b)) return;
            }
            for (ValType t : ft.results) {
                s.stack.push_back(
                    make(absTypeOf(t), Origin::CallResult, pc, v.index));
            }
            fallthrough();
            return;
          }

          case OP_DROP:
            if (!pop(s, pc, &a)) return;
            fallthrough();
            return;
          case OP_SELECT: {
            if (!pop(s, pc, &c) || !pop(s, pc, &a) || !pop(s, pc, &b)) {
                return;
            }
            AbstractValue r = compute(
                a.type == b.type ? a.type : AbsType::Any, {&a, &b, &c});
            s.stack.push_back(r);
            fallthrough();
            return;
          }

          case OP_LOCAL_GET: {
            if (v.index >= s.locals.size()) {
                diverge(pc, "local index out of range");
                return;
            }
            AbstractValue r = s.locals[v.index];
            r.localDeps |= localBit(v.index);
            s.stack.push_back(r);
            fallthrough();
            return;
          }
          case OP_LOCAL_SET: {
            if (v.index >= s.locals.size()) {
                diverge(pc, "local index out of range");
                return;
            }
            if (!pop(s, pc, &a)) return;
            s.locals[v.index] = a;
            fallthrough();
            return;
          }
          case OP_LOCAL_TEE: {
            if (v.index >= s.locals.size()) {
                diverge(pc, "local index out of range");
                return;
            }
            if (!pop(s, pc, &a)) return;
            s.locals[v.index] = a;
            AbstractValue r = a;
            r.localDeps |= localBit(v.index);
            s.stack.push_back(r);
            fallthrough();
            return;
          }
          case OP_GLOBAL_GET: {
            if (v.index >= _m.globals.size()) {
                diverge(pc, "global index out of range");
                return;
            }
            s.stack.push_back(make(absTypeOf(_m.globals[v.index].type),
                                   Origin::GlobalGet, pc, v.index));
            fallthrough();
            return;
          }
          case OP_GLOBAL_SET:
            if (!pop(s, pc, &a)) return;
            fallthrough();
            return;

          case OP_I32_CONST:
            s.stack.push_back(make(AbsType::I32, Origin::Const, pc));
            fallthrough();
            return;
          case OP_I64_CONST:
            s.stack.push_back(make(AbsType::I64, Origin::Const, pc));
            fallthrough();
            return;
          case OP_F32_CONST:
            s.stack.push_back(make(AbsType::F32, Origin::Const, pc));
            fallthrough();
            return;
          case OP_F64_CONST:
            s.stack.push_back(make(AbsType::F64, Origin::Const, pc));
            fallthrough();
            return;

          case OP_MEMORY_SIZE:
            s.stack.push_back(make(AbsType::I32, Origin::MemSize, pc));
            fallthrough();
            return;
          case OP_MEMORY_GROW: {
            if (!pop(s, pc, &a)) return;
            AbstractValue r = make(AbsType::I32, Origin::MemGrow, pc);
            r.taint = kTaintMemGrow;  // the address-leak taint source
            s.stack.push_back(r);
            fallthrough();
            return;
          }

          case OP_PREFIX_FC:
            switch (v.prefixOp) {
              case FC_I32_TRUNC_SAT_F32_S:
              case FC_I32_TRUNC_SAT_F32_U:
              case FC_I32_TRUNC_SAT_F64_S:
              case FC_I32_TRUNC_SAT_F64_U:
                if (!cvt(AbsType::I32)) return;
                break;
              case FC_I64_TRUNC_SAT_F32_S:
              case FC_I64_TRUNC_SAT_F32_U:
              case FC_I64_TRUNC_SAT_F64_S:
              case FC_I64_TRUNC_SAT_F64_U:
                if (!cvt(AbsType::I64)) return;
                break;
              case FC_MEMORY_FILL:
              case FC_MEMORY_COPY:
                if (!pop(s, pc, &a) || !pop(s, pc, &b) ||
                    !pop(s, pc, &c)) {
                    return;
                }
                break;
              default:
                diverge(pc, "unsupported 0xfc opcode");
                return;
            }
            fallthrough();
            return;

          default:
            if (!numericOrMemory(pc, v, s)) return;
            fallthrough();
            return;
        }
    }

    /** Loads, stores and the numeric opcode ranges (the validator's
        `default` arm, with provenance-carrying results). */
    bool
    numericOrMemory(uint32_t pc, const InstrView& v, State& s)
    {
        uint8_t op = v.opcode;
        AbstractValue a, b;
        auto compute = [&](AbsType t,
                           std::initializer_list<const AbstractValue*>
                               srcs) {
            AbstractValue r = make(t, Origin::Compute, pc);
            for (const AbstractValue* src : srcs) {
                r.taint |= src->taint;
                r.localDeps |= src->localDeps;
            }
            return r;
        };
        auto unop = [&](AbsType t) {
            if (!pop(s, pc, &a)) return false;
            s.stack.push_back(compute(t, {&a}));
            return true;
        };
        auto binop = [&](AbsType t) {
            if (!pop(s, pc, &a) || !pop(s, pc, &b)) return false;
            s.stack.push_back(compute(t, {&a, &b}));
            return true;
        };
        auto relop = [&](AbsType) {
            if (!pop(s, pc, &a) || !pop(s, pc, &b)) return false;
            s.stack.push_back(compute(AbsType::I32, {&a, &b}));
            return true;
        };
        auto cvt = [&](AbsType to) {
            if (!pop(s, pc, &a)) return false;
            s.stack.push_back(compute(to, {&a}));
            return true;
        };

        if (isLoadOpcode(op)) {
            if (!pop(s, pc, &a)) return false;  // address
            s.stack.push_back(make(loadStoreType(op), Origin::MemLoad,
                                   pc));
            return true;
        }
        if (isStoreOpcode(op)) {
            // value, then address
            return pop(s, pc, &a) && pop(s, pc, &b);
        }

        if (op == OP_I32_EQZ) return cvt(AbsType::I32);
        if (op >= OP_I32_EQ && op <= OP_I32_GE_U) {
            return relop(AbsType::I32);
        }
        if (op == OP_I64_EQZ) return cvt(AbsType::I32);
        if (op >= OP_I64_EQ && op <= OP_I64_GE_U) {
            return relop(AbsType::I64);
        }
        if (op >= OP_F32_EQ && op <= OP_F32_GE) return relop(AbsType::F32);
        if (op >= OP_F64_EQ && op <= OP_F64_GE) return relop(AbsType::F64);
        if (op >= OP_I32_CLZ && op <= OP_I32_POPCNT) {
            return unop(AbsType::I32);
        }
        if (op >= OP_I32_ADD && op <= OP_I32_ROTR) {
            return binop(AbsType::I32);
        }
        if (op >= OP_I64_CLZ && op <= OP_I64_POPCNT) {
            return unop(AbsType::I64);
        }
        if (op >= OP_I64_ADD && op <= OP_I64_ROTR) {
            return binop(AbsType::I64);
        }
        if (op >= OP_F32_ABS && op <= OP_F32_SQRT) return unop(AbsType::F32);
        if (op >= OP_F32_ADD && op <= OP_F32_COPYSIGN) {
            return binop(AbsType::F32);
        }
        if (op >= OP_F64_ABS && op <= OP_F64_SQRT) return unop(AbsType::F64);
        if (op >= OP_F64_ADD && op <= OP_F64_COPYSIGN) {
            return binop(AbsType::F64);
        }
        if (op == OP_I32_WRAP_I64) return cvt(AbsType::I32);
        if (op == OP_I32_TRUNC_F32_S || op == OP_I32_TRUNC_F32_U ||
            op == OP_I32_TRUNC_F64_S || op == OP_I32_TRUNC_F64_U ||
            op == OP_I32_REINTERPRET_F32) {
            return cvt(AbsType::I32);
        }
        if (op == OP_I64_EXTEND_I32_S || op == OP_I64_EXTEND_I32_U ||
            op == OP_I64_TRUNC_F32_S || op == OP_I64_TRUNC_F32_U ||
            op == OP_I64_TRUNC_F64_S || op == OP_I64_TRUNC_F64_U ||
            op == OP_I64_REINTERPRET_F64) {
            return cvt(AbsType::I64);
        }
        if (op == OP_F32_CONVERT_I32_S || op == OP_F32_CONVERT_I32_U ||
            op == OP_F32_CONVERT_I64_S || op == OP_F32_CONVERT_I64_U ||
            op == OP_F32_DEMOTE_F64 || op == OP_F32_REINTERPRET_I32) {
            return cvt(AbsType::F32);
        }
        if (op == OP_F64_CONVERT_I32_S || op == OP_F64_CONVERT_I32_U ||
            op == OP_F64_CONVERT_I64_S || op == OP_F64_CONVERT_I64_U ||
            op == OP_F64_PROMOTE_F32 || op == OP_F64_REINTERPRET_I64) {
            return cvt(AbsType::F64);
        }
        if (op == OP_I32_EXTEND8_S || op == OP_I32_EXTEND16_S) {
            return unop(AbsType::I32);
        }
        if (op >= OP_I64_EXTEND8_S && op <= OP_I64_EXTEND32_S) {
            return unop(AbsType::I64);
        }
        diverge(pc, std::string("unmodeled opcode ") + opcodeName(op));
        return false;
    }

    static AbsType
    loadStoreType(uint8_t op)
    {
        switch (op) {
          case OP_I32_LOAD:
          case OP_I32_LOAD8_S:
          case OP_I32_LOAD8_U:
          case OP_I32_LOAD16_S:
          case OP_I32_LOAD16_U:
            return AbsType::I32;
          case OP_F32_LOAD:
            return AbsType::F32;
          case OP_F64_LOAD:
            return AbsType::F64;
          default:
            return AbsType::I64;  // the i64.load* family
        }
    }

    /** Unions the local-dependency bits of every address slot at
        @p pc into the function's pointer-like-local set. */
    void
    accumulateAddressDeps(uint32_t pc, const State& s)
    {
        uint8_t op = _f.code[pc];
        const auto& st = s.stack;
        if (isLoadOpcode(op)) {
            if (!st.empty()) _out.pointerLocals |= st.back().localDeps;
        } else if (isStoreOpcode(op)) {
            if (st.size() >= 2) {
                _out.pointerLocals |= st[st.size() - 2].localDeps;
            }
        } else if (op == OP_PREFIX_FC) {
            InstrView v;
            if (!decodeInstr(_f.code, pc, &v)) return;
            // fill: [dest, val, n]; copy: [dest, src, n] — dest and
            // src are addresses.
            if (v.prefixOp == FC_MEMORY_FILL && st.size() >= 3) {
                _out.pointerLocals |= st[st.size() - 3].localDeps;
            } else if (v.prefixOp == FC_MEMORY_COPY && st.size() >= 3) {
                _out.pointerLocals |= st[st.size() - 3].localDeps;
                _out.pointerLocals |= st[st.size() - 2].localDeps;
            }
        }
    }

    const Module& _m;
    const FuncDecl& _f;
    const FuncType& _sig;
    const SideTable& _st;
    FuncFacts& _out;

    std::unordered_map<uint32_t, State> _in;
    std::deque<uint32_t> _worklist;
    std::unordered_set<uint32_t> _queued;
};

} // namespace

const char*
absTypeName(AbsType t)
{
    switch (t) {
      case AbsType::I32: return "i32";
      case AbsType::I64: return "i64";
      case AbsType::F32: return "f32";
      case AbsType::F64: return "f64";
      case AbsType::FuncRef: return "funcref";
      case AbsType::Any: return "any";
    }
    return "?";
}

AbsType
absTypeOf(ValType t)
{
    switch (t) {
      case ValType::I32: return AbsType::I32;
      case ValType::I64: return AbsType::I64;
      case ValType::F32: return AbsType::F32;
      case ValType::F64: return AbsType::F64;
      case ValType::FuncRef: return AbsType::FuncRef;
      default: return AbsType::Any;
    }
}

const char*
originName(Origin o)
{
    switch (o) {
      case Origin::Unknown: return "unknown";
      case Origin::Const: return "const";
      case Origin::Param: return "param";
      case Origin::LocalInit: return "local-init";
      case Origin::GlobalGet: return "global.get";
      case Origin::MemLoad: return "mem-load";
      case Origin::MemSize: return "memory.size";
      case Origin::MemGrow: return "memory.grow";
      case Origin::CallResult: return "call-result";
      case Origin::HostCallResult: return "host-call-result";
      case Origin::Compute: return "compute";
    }
    return "?";
}

FuncFacts
analyzeFunction(const Module& m, uint32_t funcIndex, const SideTable& st)
{
    FuncFacts out;
    out.funcIndex = funcIndex;
    if (funcIndex >= m.functions.size() ||
        m.functions[funcIndex].imported) {
        return out;
    }
    out.analyzed = true;
    out.pcs = st.instrBoundaries;
    Solver solver(m, funcIndex, st, out);
    solver.run();
    return out;
}

Result<Analysis>
Analysis::build(const Module& m)
{
    auto vr = validateModule(m);
    if (!vr.ok()) return vr.error();
    Analysis a;
    a._funcs.reserve(m.functions.size());
    for (uint32_t i = 0; i < m.functions.size(); i++) {
        a._funcs.push_back(
            analyzeFunction(m, i, vr.value().sideTables[i]));
    }
    return a;
}

} // namespace wizpp::analysis
