/**
 * @file
 * Probe-lowering audit: cross-checks the engine's live instrumentation
 * against the static dataflow facts.
 *
 * For every probed site the audit verifies that
 *  - no attached probe declares FrameAccess::Operand (OperandProbes,
 *    and EntryExitProbes whose needsTopOfStack() is true) at a pc whose
 *    operand stack is statically empty — such a probe would fire with
 *    no top-of-stack value to deliver;
 *  - re-running lowerProbeSite() on the site agrees with the lowering
 *    kind recorded in the function's current compiled code (no drift
 *    between the attach-time decision and what the JIT emitted);
 *  - kind-specific invariants hold (a Count lowering implies the fired
 *    entry is a CountProbe).
 *
 * Two entry points: auditProbeLowering() is the full sweep behind
 * `wizeng --audit-lowering`; debugAuditFunctions() is the targeted
 * per-batch check ProbeManager::insertBatch runs in debug builds
 * (warnings to stderr, never fatal — deliberate mis-declarations are
 * exactly what the audit exists to surface).
 */

#ifndef WIZPP_ANALYSIS_AUDIT_H
#define WIZPP_ANALYSIS_AUDIT_H

#include <string>
#include <vector>

#include "analysis/analysis.h"

namespace wizpp {
class Engine;
}

namespace wizpp::analysis {

/** One audit violation at a probed site. */
struct AuditFinding
{
    uint32_t funcIndex = 0;
    uint32_t pc = 0;
    std::string message;
};

struct AuditResult
{
    std::vector<AuditFinding> violations;
    uint32_t sitesAudited = 0;
};

/** Audits every probed site of @p eng (all functions). */
AuditResult auditProbeLowering(Engine& eng);

/**
 * Audits only the probed sites of @p funcIndices, printing each
 * violation to stderr as a warning. Returns the violation count.
 * Called by ProbeManager::insertBatch in debug builds.
 */
size_t debugAuditFunctions(Engine& eng,
                           const std::vector<uint32_t>& funcIndices);

} // namespace wizpp::analysis

#endif // WIZPP_ANALYSIS_AUDIT_H
