/**
 * @file
 * Static taint/address-leak analysis on top of the dataflow facts.
 *
 * Sources are memory-address-producing values: `memory.grow` results
 * (definite — the value *is* an address in pages) and values derived
 * from pointer-like locals (potential — locals whose values reach a
 * load/store address slot; see FuncFacts::pointerLocals). Sinks are
 * places a value escapes the function: stored to linear memory,
 * returned to the caller, or passed to a host (imported) call.
 *
 * `wizeng --analyze=leaks` reports only the definite (memory.grow)
 * flows; `--analyze=taint` reports both classes. The split keeps the
 * leak report actionable: index arithmetic makes most loop counters
 * pointer-like, so potential flows are plentiful in clean numeric
 * code, while memory.grow-derived flows are rare and deliberate.
 */

#ifndef WIZPP_ANALYSIS_TAINT_H
#define WIZPP_ANALYSIS_TAINT_H

#include <string>
#include <vector>

#include "analysis/analysis.h"

namespace wizpp::analysis {

/** Where a tainted value escaped to. */
enum class SinkKind : uint8_t {
    StoreValue,       ///< stored into linear memory
    ReturnValue,      ///< returned to the caller
    HostCallArg,      ///< passed to an imported function
    IndirectCallArg,  ///< passed through call_indirect (callee unknown)
};

const char* sinkKindName(SinkKind k);

/** One tainted-value-reaches-sink flow. */
struct LeakFinding
{
    uint32_t funcIndex = 0;
    uint32_t pc = 0;          ///< pc of the sink instruction
    SinkKind sink = SinkKind::StoreValue;
    bool definite = false;    ///< memory.grow-derived (vs pointer-like)
    uint8_t taint = 0;        ///< kTaint* bits on the sunk value
    Origin origin = Origin::Unknown;
    uint32_t originPc = 0xffffffffu;
    std::string message;      ///< rendered finding with disasm context
};

struct TaintReport
{
    std::vector<LeakFinding> findings;
    uint32_t definiteCount = 0;
    uint32_t potentialCount = 0;
};

/**
 * Scans every analyzed function of @p a for tainted values reaching
 * sinks. Findings are ordered by (funcIndex, pc). @p m must be the
 * module @p a was built from.
 */
TaintReport analyzeTaint(const Module& m, const Analysis& a);

} // namespace wizpp::analysis

#endif // WIZPP_ANALYSIS_TAINT_H
