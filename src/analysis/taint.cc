#include "analysis/taint.h"

#include "wasm/decoder.h"
#include "wasm/disasm.h"
#include "wasm/opcodes.h"

namespace wizpp::analysis {

namespace {

/** Taint on @p v as seen by a sink: the solver's bits plus the
    derived pointer-like-local bit (localDeps ∩ pointerLocals). */
uint8_t
effectiveTaint(const AbstractValue& v, const FuncFacts& ff)
{
    uint8_t t = v.taint;
    if (v.localDeps & ff.pointerLocals) t |= kTaintPtrLocal;
    return t;
}

void
report(TaintReport& out, const Module& m, const FuncFacts& ff,
       uint32_t pc, SinkKind sink, const AbstractValue& v)
{
    uint8_t taint = effectiveTaint(v, ff);
    if (taint == 0) return;

    LeakFinding fi;
    fi.funcIndex = ff.funcIndex;
    fi.pc = pc;
    fi.sink = sink;
    fi.definite = (taint & kTaintMemGrow) != 0;
    fi.taint = taint;
    fi.origin = v.origin;
    fi.originPc = v.originPc;

    const FuncDecl& f = m.functions[ff.funcIndex];
    std::string what = fi.definite ? "memory.grow-derived address"
                                   : "pointer-like-local-derived value";
    fi.message = "func #" + std::to_string(ff.funcIndex) + " +" +
                 std::to_string(pc) + ": " +
                 (fi.definite ? "definite" : "potential") +
                 " address leak: " + what + " (origin " +
                 originName(v.origin);
    if (v.originPc != 0xffffffffu) {
        fi.message += " @+" + std::to_string(v.originPc);
    }
    fi.message += ") reaches " + std::string(sinkKindName(sink)) +
                  " in `" + disassembleInstr(f.code, pc) + "`";

    if (fi.definite) {
        out.definiteCount++;
    } else {
        out.potentialCount++;
    }
    out.findings.push_back(std::move(fi));
}

void
scanFunction(TaintReport& out, const Module& m, const FuncFacts& ff)
{
    const FuncDecl& f = m.functions[ff.funcIndex];
    const FuncType& sig = m.types[f.typeIndex];
    for (uint32_t pc : ff.pcs) {
        const InstrFacts* fa = ff.at(pc);
        if (!fa || !fa->reachable) continue;
        const auto& st = fa->stack;
        uint8_t op = f.code[pc];

        if (isStoreOpcode(op)) {
            // [..., addr, value] — the stored value is on top.
            if (!st.empty()) {
                report(out, m, ff, pc, SinkKind::StoreValue, st.back());
            }
            continue;
        }
        if (op == OP_RETURN ||
            (op == OP_END && pc + 1 == f.code.size())) {
            if (!sig.results.empty() && !st.empty()) {
                report(out, m, ff, pc, SinkKind::ReturnValue, st.back());
            }
            continue;
        }
        if (op == OP_CALL) {
            InstrView v;
            if (!decodeInstr(f.code, pc, &v)) continue;
            if (v.index >= m.functions.size()) continue;
            if (!m.functions[v.index].imported) continue;
            size_t n = m.funcType(v.index).params.size();
            if (st.size() < n) continue;
            for (size_t i = 0; i < n; i++) {
                report(out, m, ff, pc, SinkKind::HostCallArg,
                       st[st.size() - 1 - i]);
            }
            continue;
        }
        if (op == OP_CALL_INDIRECT) {
            InstrView v;
            if (!decodeInstr(f.code, pc, &v)) continue;
            if (v.index >= m.types.size()) continue;
            // [..., args..., tableIdx] — the table index is on top.
            size_t n = m.types[v.index].params.size();
            if (st.size() < n + 1) continue;
            for (size_t i = 0; i < n; i++) {
                report(out, m, ff, pc, SinkKind::IndirectCallArg,
                       st[st.size() - 2 - i]);
            }
            continue;
        }
    }
}

} // namespace

const char*
sinkKindName(SinkKind k)
{
    switch (k) {
      case SinkKind::StoreValue: return "memory store";
      case SinkKind::ReturnValue: return "function return";
      case SinkKind::HostCallArg: return "host-call argument";
      case SinkKind::IndirectCallArg: return "indirect-call argument";
    }
    return "?";
}

TaintReport
analyzeTaint(const Module& m, const Analysis& a)
{
    TaintReport out;
    for (uint32_t i = 0; i < a.numFuncs(); i++) {
        const FuncFacts& ff = a.func(i);
        if (!ff.analyzed) continue;
        scanFunction(out, m, ff);
    }
    return out;
}

} // namespace wizpp::analysis
