/**
 * @file
 * Static bytecode analysis: a forward abstract-interpretation dataflow
 * engine over validated function bodies.
 *
 * The engine re-uses the exact artifacts the execution tiers run on —
 * decodeInstr for instruction shapes and the validator's SideTable for
 * resolved control-flow edges — so its per-pc facts describe the same
 * bytecode the interpreter executes and the JIT translates. Facts are
 * computed on the *pristine* bytes (FuncDecl::code), never on the
 * engine's probe-overwritten copy.
 *
 * Three clients ship on top (see docs/ANALYSIS.md):
 *  - stack-shape/value-provenance facts (`Analysis::factsAt`),
 *  - static taint/address-leak reporting (analysis/taint.h),
 *  - the probe-lowering audit (analysis/audit.h).
 *
 * Correctness contract: for every reachable pc, the in-state operand
 * depth equals the depth a FrameAccessor observes when a probe fires
 * there. tests/test_analysis.cc enforces this differentially across
 * the whole benchmark corpus; a divergence is a bug in this engine or
 * in the validator, so the gate doubles as a validator oracle.
 */

#ifndef WIZPP_ANALYSIS_ANALYSIS_H
#define WIZPP_ANALYSIS_ANALYSIS_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/result.h"
#include "wasm/module.h"
#include "wasm/sidetable.h"

namespace wizpp::analysis {

/** Abstract value type: the validator's VT lattice with a top (Any). */
enum class AbsType : uint8_t { I32, I64, F32, F64, FuncRef, Any };

const char* absTypeName(AbsType t);
AbsType absTypeOf(ValType t);

/** Where a value came from (provenance). Merge of distinct origins
    widens to Unknown; the pc/index qualifiers stay with the origin. */
enum class Origin : uint8_t {
    Unknown,        ///< untracked, or a merge of different origins
    Const,          ///< *.const immediate
    Param,          ///< function parameter (originIndex = local index)
    LocalInit,      ///< default-zero non-param local
    GlobalGet,      ///< global.get (originIndex = global index)
    MemLoad,        ///< loaded from linear memory
    MemSize,        ///< memory.size result
    MemGrow,        ///< memory.grow result (an address in pages)
    CallResult,     ///< result of a call to a local function
    HostCallResult, ///< result of a call to an imported function
    Compute,        ///< produced by a numeric/conversion instruction
};

const char* originName(Origin o);

/** Taint bit: the value is derived from a memory.grow result. */
constexpr uint8_t kTaintMemGrow = 1;

/** Taint bit: the value is derived from a pointer-like local (a local
    whose value reaches a load/store address slot somewhere in the
    function). Weaker evidence than kTaintMemGrow: index arithmetic
    makes most loop counters pointer-like, so only `--analyze=taint`
    reports these flows (docs/ANALYSIS.md). */
constexpr uint8_t kTaintPtrLocal = 2;

/** One abstract operand-stack (or local) slot. */
struct AbstractValue
{
    AbsType type = AbsType::Any;
    Origin origin = Origin::Unknown;
    uint32_t originPc = 0xffffffffu;  ///< pc of the producing instruction
    uint32_t originIndex = 0;         ///< local/global/callee qualifier
    uint8_t taint = 0;                ///< kTaint* bits
    /** Locals whose values flowed into this one (bit 63 = "63 and
        above"). Drives pointer-like-local inference. */
    uint64_t localDeps = 0;

    bool operator==(const AbstractValue&) const = default;
};

/** Static facts at one instruction boundary: the state *before* the
    instruction executes — exactly what a probe firing there sees. */
struct InstrFacts
{
    bool reachable = false;

    /** Operand stack, bottom first; back() is the top of stack. */
    std::vector<AbstractValue> stack;

    uint32_t depth() const { return static_cast<uint32_t>(stack.size()); }
};

/** Per-function analysis result. */
struct FuncFacts
{
    uint32_t funcIndex = 0;
    bool analyzed = false;  ///< false for imported functions

    /** Instruction boundaries, in pc order (from the side table). */
    std::vector<uint32_t> pcs;

    /** In-state facts, keyed by boundary pc. */
    std::unordered_map<uint32_t, InstrFacts> facts;

    /** Bitmask of pointer-like locals (bit 63 = "63 and above"). */
    uint64_t pointerLocals = 0;

    uint32_t reachableCount = 0;

    /**
     * Internal consistency violations found while solving (e.g. two
     * reachable edges meeting at one pc with different stack depths).
     * Validated code must produce none; any entry is a bug in the
     * analysis or the validator and fails the differential gate.
     */
    std::vector<std::string> divergences;

    /** Facts at @p pc, or null if pc is not an instruction boundary. */
    const InstrFacts*
    at(uint32_t pc) const
    {
        auto it = facts.find(pc);
        return it == facts.end() ? nullptr : &it->second;
    }
};

/**
 * Analyzes one validated function body to a fixpoint. @p st must be
 * the function's validation side table (branch targets resolved).
 * Imported functions yield an empty result with analyzed = false.
 */
FuncFacts analyzeFunction(const Module& m, uint32_t funcIndex,
                          const SideTable& st);

/** Module-wide analysis: validates, then analyzes every function. */
class Analysis
{
  public:
    Analysis() = default;

    /** Validates @p m and analyzes all function bodies. Returns the
        validator's error on invalid input. The module must outlive
        the Analysis only during build (facts are self-contained). */
    static Result<Analysis> build(const Module& m);

    size_t numFuncs() const { return _funcs.size(); }

    const FuncFacts& func(uint32_t funcIndex) const
    {
        return _funcs[funcIndex];
    }

    /** The facts at (funcIndex, pc); null for imports, out-of-range
        indices, or non-boundary pcs. */
    const InstrFacts*
    factsAt(uint32_t funcIndex, uint32_t pc) const
    {
        if (funcIndex >= _funcs.size()) return nullptr;
        if (!_funcs[funcIndex].analyzed) return nullptr;
        return _funcs[funcIndex].at(pc);
    }

  private:
    std::vector<FuncFacts> _funcs;
};

} // namespace wizpp::analysis

#endif // WIZPP_ANALYSIS_ANALYSIS_H
