#include "obs/timeline.h"

#include <ostream>

namespace wizpp::obs {

Timeline::Timeline() : _epoch(std::chrono::steady_clock::now()) {}

uint64_t
Timeline::nowMicros() const
{
    return (uint64_t)std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - _epoch)
        .count();
}

void
Timeline::begin(const std::string& name,
                std::vector<std::pair<std::string, std::string>> args)
{
    _events.push_back({'B', name, nowMicros(), std::move(args)});
    _stack.push_back(name);
}

void
Timeline::end(std::vector<std::pair<std::string, std::string>> args)
{
    if (_stack.empty()) return;
    _events.push_back({'E', _stack.back(), nowMicros(), std::move(args)});
    _stack.pop_back();
}

void
Timeline::instant(const std::string& name,
                  std::vector<std::pair<std::string, std::string>> args)
{
    _events.push_back({'i', name, nowMicros(), std::move(args)});
}

static void
writeJsonString(std::ostream& out, const std::string& s)
{
    out << '"';
    for (char c : s) {
        switch (c) {
        case '"': out << "\\\""; break;
        case '\\': out << "\\\\"; break;
        case '\n': out << "\\n"; break;
        case '\t': out << "\\t"; break;
        default:
            if ((unsigned char)c < 0x20) {
                char buf[8];
                snprintf(buf, sizeof buf, "\\u%04x", c);
                out << buf;
            } else {
                out << c;
            }
        }
    }
    out << '"';
}

void
Timeline::writeJson(std::ostream& out)
{
    // A trap can cut execution short with spans still open; close
    // them now so viewers see matched B/E pairs.
    while (!_stack.empty()) end();

    out << "{\"traceEvents\": [\n";
    bool first = true;
    for (const TimelineEvent& e : _events) {
        if (!first) out << ",\n";
        first = false;
        out << "  {\"name\": ";
        writeJsonString(out, e.name);
        out << ", \"ph\": \"" << e.phase << "\", \"ts\": " << e.tsMicros
            << ", \"pid\": 1, \"tid\": 1";
        if (e.phase == 'i') out << ", \"s\": \"t\"";
        if (!e.args.empty()) {
            out << ", \"args\": {";
            bool firstArg = true;
            for (auto& [k, v] : e.args) {
                if (!firstArg) out << ", ";
                firstArg = false;
                writeJsonString(out, k);
                out << ": ";
                writeJsonString(out, v);
            }
            out << "}";
        }
        out << "}";
    }
    out << "\n]}\n";
}

} // namespace wizpp::obs
