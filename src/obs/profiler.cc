#include "obs/profiler.h"

#include <algorithm>
#include <chrono>
#include <iomanip>
#include <ostream>

#include "engine/engine.h"
#include "jit/jitcode.h"
#include "probes/frameaccessor.h"
#include "probes/probemanager.h"

namespace wizpp::obs {

namespace {

std::string
funcName(Engine& eng, uint32_t funcIndex)
{
    const FuncDecl& d = *eng.funcState(funcIndex).decl;
    if (!d.name.empty()) return d.name;
    return "func" + std::to_string(funcIndex);
}

uint64_t
nowNanos()
{
    return (uint64_t)std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

/**
 * One sample site's probe. Declares FrameAccess::Full honestly: the
 * sampling fire materializes a FrameAccessor and walks the caller
 * chain, so compiled code must checkpoint the frame before calling it
 * (the lowering audit flags anything less). That pins the site to the
 * Generic lowering kind — the attribution table makes the resulting
 * cost visible instead of hiding it.
 */
class SamplingProfiler::SampleProbe : public Probe
{
  public:
    SampleProbe(SamplingProfiler* owner, uint32_t funcIndex, uint32_t pc)
        : funcIndex(funcIndex), pc(pc), _owner(owner)
    {}

    void
    fire(ProbeContext& ctx) override
    {
        // Two increments and a branch: the per-site count (summed
        // lazily by fireCount()) and the shared sampling budget.
        fires++;
        SamplingProfiler* p = _owner;
        if (--p->_countdown == 0) {
            samples++;
            p->takeSample(ctx);
        }
    }

    FrameAccess frameAccess() const override { return FrameAccess::Full; }

    uint32_t funcIndex;
    uint32_t pc;
    uint64_t fires = 0;
    uint64_t samples = 0;

  private:
    SamplingProfiler* _owner;
};

void
SamplingProfiler::ensureCalibrated()
{
    // Measure the generic per-fire base cost by firing a detached
    // probe against a frameless context: same virtual dispatch, same
    // countdown bookkeeping, no sampling (the scratch owner's budget
    // never reaches zero). Deliberately lazy — run at first report()/
    // perFireNanos() call, after the measured region, so the ~100 us
    // loop never lands inside the profiled run itself.
    if (_perFireNanos > 0.0 || !_engine) return;
    constexpr uint64_t kFires = 1u << 16;
    SamplingProfiler scratch(_opts);
    scratch._countdown = kFires + 1;
    SampleProbe probe(&scratch, 0, 0);
    ProbeContext ctx(*_engine, nullptr, nullptr, 0);
    Probe* p = &probe;
    // Opaque the pointer so the loop keeps the virtual dispatch the
    // real fire path pays instead of being devirtualized and folded.
    asm volatile("" : "+r"(p));
    uint64_t t0 = nowNanos();
    for (uint64_t i = 0; i < kFires; i++) p->fire(ctx);
    _perFireNanos = (double)(nowNanos() - t0) / (double)kFires;
}

double
SamplingProfiler::perFireNanos()
{
    ensureCalibrated();
    return _perFireNanos;
}

void
SamplingProfiler::onAttach(Engine& engine)
{
    _engine = &engine;
    if (_opts.budget == 0) _opts.budget = 1;
    _countdown = _opts.budget;

    // One batch for the whole module: entry pc 0 of every function
    // (branch targets never point at pc 0, see monitors/entryexit.h)
    // plus every loop header — or every instruction boundary in
    // everyInstruction mode.
    std::vector<ProbeManager::SiteProbe> batch;
    for (uint32_t f = 0; f < engine.numFuncs(); f++) {
        FuncState& fs = engine.funcState(f);
        if (fs.decl->imported || fs.code.empty()) continue;
        if (_opts.everyInstruction) {
            for (uint32_t pc : fs.sideTable.instrBoundaries) {
                auto probe = std::make_shared<SampleProbe>(this, f, pc);
                _sites.push_back({f, pc, probe});
                batch.push_back({f, pc, probe});
            }
            continue;
        }
        auto entry = std::make_shared<SampleProbe>(this, f, 0);
        _sites.push_back({f, 0, entry});
        batch.push_back({f, 0, entry});
        for (uint32_t headerPc : fs.sideTable.loopHeaders) {
            if (headerPc == 0) continue;  // already probed as the entry
            auto probe = std::make_shared<SampleProbe>(this, f, headerPc);
            _sites.push_back({f, headerPc, probe});
            batch.push_back({f, headerPc, probe});
        }
    }
    engine.probes().insertBatch(batch);
}

void
SamplingProfiler::takeSample(ProbeContext& ctx)
{
    _countdown = _opts.budget;
    _samples++;

    // Root-first stack of function names via the caller chain — the
    // FrameAccessor abstracts the tier, so interpreter, compiled and
    // mixed stacks fold identically.
    std::vector<uint32_t> stack;
    for (auto acc = ctx.accessor(); acc && acc->valid();
         acc = acc->caller()) {
        stack.push_back(acc->func()->funcIndex);
    }
    if (stack.empty()) return;
    std::string key;
    for (size_t i = stack.size(); i > 0; i--) {
        if (!key.empty()) key += ";";
        key += funcName(ctx.engine(), stack[i - 1]);
    }
    _folded[key]++;
}

void
SamplingProfiler::writeFolded(std::ostream& out) const
{
    for (auto& [stack, count] : _folded) {
        out << stack << " " << count << "\n";
    }
}

uint64_t
SamplingProfiler::fireCount() const
{
    // Summed on demand so the fire path only touches its own site's
    // counter (one hot cache line per site, no shared write).
    uint64_t fires = 0;
    for (const Site& s : _sites) fires += s.probe->fires;
    return fires;
}

void
SamplingProfiler::report(std::ostream& out)
{
    out << "sampling profiler: " << _samples << " samples over "
        << fireCount() << " probe fires (budget " << _opts.budget << ", "
        << _sites.size() << " sites)\n";
    if (!_engine) return;
    ensureCalibrated();

    // Self-attribution: estimated profiler overhead per site — the
    // calibrated base cost times this site's fires — labeled with the
    // lowering kind the compiled tier actually chose. Aggregate by
    // kind first, then the hottest sites.
    std::map<std::string, std::pair<uint64_t, uint64_t>> byKind;
    for (const Site& s : _sites) {
        FuncState& fs = _engine->funcState(s.funcIndex);
        const char* kind =
            fs.jit ? probeLoweringKindName(fs.jit->loweringAt(s.pc))
                   : "interp";
        auto& agg = byKind[kind];
        agg.first++;
        agg.second += s.probe->fires;
    }
    out << "  per-fire base cost (calibrated): " << std::fixed
        << std::setprecision(1) << _perFireNanos << " ns\n";
    out << "  probe-fire cost by lowering kind:\n";
    for (auto& [kind, agg] : byKind) {
        out << "    " << std::left << std::setw(12) << kind
            << std::right << std::setw(8) << agg.first << " sites"
            << std::setw(12) << agg.second << " fires  ~"
            << std::setprecision(2)
            << (double)agg.second * _perFireNanos * 1e-6 << " ms\n";
    }

    std::vector<const Site*> hot;
    for (const Site& s : _sites) {
        if (s.probe->fires) hot.push_back(&s);
    }
    std::sort(hot.begin(), hot.end(), [](const Site* a, const Site* b) {
        if (a->probe->fires != b->probe->fires) {
            return a->probe->fires > b->probe->fires;
        }
        return std::make_pair(a->funcIndex, a->pc) <
               std::make_pair(b->funcIndex, b->pc);
    });
    size_t n = std::min<size_t>(hot.size(), 10);
    out << "  hottest sample sites (top " << n << " of " << hot.size()
        << " fired):\n";
    for (size_t i = 0; i < n; i++) {
        const Site& s = *hot[i];
        FuncState& fs = _engine->funcState(s.funcIndex);
        const char* kind =
            fs.jit ? probeLoweringKindName(fs.jit->loweringAt(s.pc))
                   : "interp";
        out << "    " << std::left << std::setw(24)
            << (funcName(*_engine, s.funcIndex) + "+" +
                std::to_string(s.pc))
            << std::right << std::setw(12) << s.probe->fires
            << " fires" << std::setw(8) << s.probe->samples
            << " samples  " << kind << "\n";
    }
    out.unsetf(std::ios::floatfield);
}

} // namespace wizpp::obs
