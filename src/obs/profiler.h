/**
 * @file
 * The sampling profiler monitor (docs/OBSERVABILITY.md).
 *
 * Built purely on the public instrumentation API — local probes via
 * ProbeManager::insertBatch and stack walks via FrameAccessor — with
 * no engine-core edits, like the trace recorder: the profiler is just
 * another monitor, which is the point (DynamoRIO-style tooling on the
 * probe substrate).
 *
 * Sampling contract: one probe per *sample site* — every function's
 * entry (pc 0) plus every loop header, i.e. the places execution must
 * pass to make progress — and a shared fire-count budget. Every probe
 * fire decrements the budget; when it hits zero the profiler walks
 * the active frame stack through FrameAccessor::caller() and records
 * one folded root-first stack, then re-arms the budget. Because the
 * budget counts probe *fires* (deterministic events), not wall-clock
 * ticks, the folded output is byte-identical across all three
 * dispatch backends and all execution tiers for a deterministic
 * program — which is how the parity tests pin it.
 *
 * Self-attribution: each site tracks its own fire count; report()
 * combines that with a calibrated per-fire base cost (measured by
 * firing a detached probe in a loop at attach time) and the lowering
 * kind the compiled tier chose for the site (JitCode::loweringAt) to
 * estimate where the profiler's own overhead went.
 */

#ifndef WIZPP_OBS_PROFILER_H
#define WIZPP_OBS_PROFILER_H

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "monitors/monitor.h"
#include "probes/probe.h"

namespace wizpp::obs {

class SamplingProfiler : public Monitor
{
  public:
    struct Options
    {
        /** Probe fires (function entries + loop backedges) between
            samples. 1 samples on every fire. */
        uint64_t budget = 4096;

        /** Probe every instruction boundary instead of entries + loop
            headers: maximum resolution, tracing-level overhead. */
        bool everyInstruction = false;
    };

    SamplingProfiler() = default;
    explicit SamplingProfiler(Options opts) : _opts(opts) {}

    void onAttach(Engine& engine) override;
    void report(std::ostream& out) override;
    std::string name() const override { return "profile"; }

    /** Emits "root;...;leaf count" folded stacks (flamegraph input),
        sorted by stack string — deterministic across backends/tiers. */
    void writeFolded(std::ostream& out) const;

    uint64_t sampleCount() const { return _samples; }

    /** Total probe fires, summed from the per-site counters (the fire
        path never maintains a shared total). */
    uint64_t fireCount() const;

    const Options& options() const { return _opts; }

    /** Calibrated generic probe-fire base cost, nanoseconds. Runs the
        calibration loop on first use (report() also triggers it), so
        a profiled run that never asks for attribution never pays. */
    double perFireNanos();

  private:
    class SampleProbe;
    friend class SampleProbe;

    void takeSample(ProbeContext& ctx);
    void ensureCalibrated();

    struct Site
    {
        uint32_t funcIndex = 0;
        uint32_t pc = 0;
        std::shared_ptr<SampleProbe> probe;
    };

    Options _opts;
    Engine* _engine = nullptr;
    uint64_t _countdown = 0;
    uint64_t _samples = 0;
    double _perFireNanos = 0.0;
    std::vector<Site> _sites;
    std::map<std::string, uint64_t> _folded;
};

} // namespace wizpp::obs

#endif // WIZPP_OBS_PROFILER_H
