/**
 * @file
 * The engine-event timeline (docs/OBSERVABILITY.md).
 *
 * A Timeline records named lifecycle spans (module decode/validate,
 * per-function compiles, probe batch attach/detach, monitor attach,
 * execution) and instant events (traps, dispatch-table switches) with
 * microsecond timestamps, and writes them as Chrome trace-event JSON
 * — loadable in chrome://tracing and Perfetto.
 *
 * The engine holds a non-owning `Timeline*` that is null by default:
 * every hook is a `if (timeline) ...` on an already-cold path, so a
 * run without `--timeline=` pays one predicted-not-taken branch per
 * compile/batch/trap and nothing per instruction. The recording side
 * is single-threaded by design (the engine is); `events()` exposes
 * the raw record for structural tests.
 *
 * Span discipline: begin()/end() must nest (the timeline keeps the
 * open-span stack and end() pops it), which is what makes the B/E
 * pairs in the JSON well-formed for trace viewers. The Span RAII
 * guard is the normal way to hold that invariant.
 */

#ifndef WIZPP_OBS_TIMELINE_H
#define WIZPP_OBS_TIMELINE_H

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace wizpp::obs {

/** One trace-event record: a span edge ('B'/'E') or instant ('i'). */
struct TimelineEvent
{
    char phase;            // 'B', 'E' or 'i'
    std::string name;      // span taxonomy name, e.g. "jit.compile"
    uint64_t tsMicros;     // microseconds since the timeline epoch
    // Flat key/value args; values are emitted as JSON strings.
    std::vector<std::pair<std::string, std::string>> args;
};

class Timeline
{
  public:
    Timeline();

    /** Opens a span; close with end(). Args attach to the 'B' edge. */
    void begin(const std::string& name,
               std::vector<std::pair<std::string, std::string>> args = {});

    /**
     * Closes the innermost open span. Args attach to the 'E' edge
     * (for results known only at completion, e.g. a lowering
     * summary). No-op when no span is open.
     */
    void end(std::vector<std::pair<std::string, std::string>> args = {});

    /** Records a zero-duration instant event. */
    void instant(const std::string& name,
                 std::vector<std::pair<std::string, std::string>> args = {});

    /** RAII span guard: begins on construction, ends on destruction. */
    class Span
    {
      public:
        Span(Timeline* t, const std::string& name,
             std::vector<std::pair<std::string, std::string>> args = {})
            : _t(t)
        {
            if (_t) _t->begin(name, std::move(args));
        }
        ~Span() { close(); }
        Span(const Span&) = delete;
        Span& operator=(const Span&) = delete;

        /** Closes early, optionally attaching end args. */
        void
        close(std::vector<std::pair<std::string, std::string>> args = {})
        {
            if (_t) _t->end(std::move(args));
            _t = nullptr;
        }

      private:
        Timeline* _t;
    };

    const std::vector<TimelineEvent>& events() const { return _events; }

    /** Open (un-ended) span count; 0 in a well-formed finished trace. */
    size_t openSpans() const { return _stack.size(); }

    /** Microseconds elapsed since the timeline was constructed. */
    uint64_t nowMicros() const;

    /**
     * Writes `{"traceEvents": [...]}` with any still-open spans
     * closed at the current timestamp (so a trace cut short by a trap
     * still loads).
     */
    void writeJson(std::ostream& out);

  private:
    std::chrono::steady_clock::time_point _epoch;
    std::vector<TimelineEvent> _events;
    std::vector<std::string> _stack;  // names of open spans
};

} // namespace wizpp::obs

#endif // WIZPP_OBS_TIMELINE_H
