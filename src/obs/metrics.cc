#include "obs/metrics.h"

#include <cassert>
#include <cmath>
#include <ostream>

namespace wizpp::obs {

uint64_t
Histogram::count() const noexcept
{
    uint64_t n = 0;
    for (int i = 0; i < kBuckets; i++) n += bucketCount(i);
    return n;
}

uint64_t
Histogram::quantile(double q) const noexcept
{
    uint64_t total = count();
    if (total == 0) return 0;
    if (q < 0) q = 0;
    if (q > 1) q = 1;
    // Rank of the q-th sample, 1-based; walk buckets until reached.
    uint64_t rank = (uint64_t)std::ceil(q * (double)total);
    if (rank == 0) rank = 1;
    uint64_t seen = 0;
    for (int i = 0; i < kBuckets; i++) {
        seen += bucketCount(i);
        if (seen >= rank) return bucketLimit(i) - 1;
    }
    return bucketLimit(kBuckets - 1) - 1;
}

Counter&
MetricsRegistry::counter(const std::string& name)
{
    std::lock_guard<std::mutex> lock(_mu);
    Entry& e = _entries[name];
    if (!e.counter) {
        assert(!e.gauge && !e.histogram && !e.callback &&
               "metric registered under two kinds");
        e.counter = std::make_unique<Counter>();
    }
    return *e.counter;
}

Gauge&
MetricsRegistry::gauge(const std::string& name)
{
    std::lock_guard<std::mutex> lock(_mu);
    Entry& e = _entries[name];
    if (!e.gauge) {
        assert(!e.counter && !e.histogram && !e.callback &&
               "metric registered under two kinds");
        e.gauge = std::make_unique<Gauge>();
    }
    return *e.gauge;
}

Histogram&
MetricsRegistry::histogram(const std::string& name)
{
    std::lock_guard<std::mutex> lock(_mu);
    Entry& e = _entries[name];
    if (!e.histogram) {
        assert(!e.counter && !e.gauge && !e.callback &&
               "metric registered under two kinds");
        e.histogram = std::make_unique<Histogram>();
    }
    return *e.histogram;
}

void
MetricsRegistry::registerCallback(const std::string& name,
                                  std::function<uint64_t()> fn)
{
    auto cb = std::make_shared<const std::function<uint64_t()>>(
        std::move(fn));
    std::lock_guard<std::mutex> lock(_mu);
    Entry& e = _entries[name];
    assert(!e.counter && !e.gauge && !e.histogram &&
           "metric registered under two kinds");
    e.callback = std::move(cb);
}

std::map<std::string, double>
MetricsRegistry::snapshot() const
{
    // Instruments (atomics) are read under the lock; callbacks are
    // collected under the lock but invoked outside it, so a callback
    // may itself use the registry (no self-deadlock) and concurrent
    // re-registration stays safe (shared ownership keeps the callable
    // alive while we run it).
    std::map<std::string, double> out;
    std::vector<std::pair<
        std::string, std::shared_ptr<const std::function<uint64_t()>>>>
        callbacks;
    {
        std::lock_guard<std::mutex> lock(_mu);
        for (auto& [name, e] : _entries) {
            if (e.counter) {
                out[name] = (double)e.counter->value();
            } else if (e.gauge) {
                out[name] = (double)e.gauge->value();
            } else if (e.histogram) {
                const Histogram& h = *e.histogram;
                out[name + ".count"] = (double)h.count();
                out[name + ".sum"] = (double)h.sum();
                out[name + ".p50"] = (double)h.quantile(0.50);
                out[name + ".p99"] = (double)h.quantile(0.99);
                out[name + ".max"] = (double)h.quantile(1.0);
            } else if (e.callback) {
                callbacks.emplace_back(name, e.callback);
            }
        }
    }
    for (auto& [name, cb] : callbacks) {
        out[name] = (double)(*cb)();
    }
    return out;
}

double
MetricsRegistry::value(const std::string& name) const
{
    auto snap = snapshot();
    auto it = snap.find(name);
    return it == snap.end() ? 0.0 : it->second;
}

static void
writeJsonNumber(std::ostream& out, double v)
{
    // All registry values are integral counts; keep the JSON clean.
    if (v == (double)(int64_t)v) {
        out << (int64_t)v;
    } else {
        out << v;
    }
}

void
MetricsRegistry::write(std::ostream& out, MetricsFormat format) const
{
    auto snap = snapshot();
    switch (format) {
    case MetricsFormat::Text:
        for (auto& [name, v] : snap) {
            out << name << " ";
            writeJsonNumber(out, v);
            out << "\n";
        }
        break;
    case MetricsFormat::Json: {
        out << "{\n";
        bool first = true;
        for (auto& [name, v] : snap) {
            if (!first) out << ",\n";
            first = false;
            out << "  \"" << name << "\": ";
            writeJsonNumber(out, v);
        }
        out << "\n}\n";
        break;
    }
    case MetricsFormat::Csv:
        out << "metric,value\n";
        for (auto& [name, v] : snap) {
            out << name << ",";
            writeJsonNumber(out, v);
            out << "\n";
        }
        break;
    }
}

bool
parseMetricsFormat(const std::string& s, MetricsFormat* out)
{
    if (s.empty() || s == "text") {
        *out = MetricsFormat::Text;
    } else if (s == "json") {
        *out = MetricsFormat::Json;
    } else if (s == "csv") {
        *out = MetricsFormat::Csv;
    } else {
        return false;
    }
    return true;
}

} // namespace wizpp::obs
