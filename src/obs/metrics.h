/**
 * @file
 * The engine-wide metrics registry (docs/OBSERVABILITY.md).
 *
 * A MetricsRegistry names and owns three kinds of low-overhead
 * instruments plus value callbacks:
 *
 *  - Counter:   a monotonically increasing count (lock-free relaxed
 *               atomic increment; one `lock add` on the writer path).
 *  - Gauge:     a settable signed level (attached monitors, live
 *               probe sites).
 *  - Histogram: fixed power-of-two buckets for latency-style values
 *               (compile micros, batch-attach micros). Recording is a
 *               single relaxed atomic increment per bucket plus a sum;
 *               quantiles are estimated from the buckets at dump time.
 *  - Callback:  a pull-model value sampled only when the registry is
 *               dumped or snapshotted — the idiom for exposing
 *               hot-path counters (probe fire counts) that must stay
 *               plain non-atomic fields on their fast path.
 *
 * Registration takes a mutex and returns a stable reference; the
 * instruments themselves never move, so the hot path holds a direct
 * pointer and performs no lookup, no lock, and no allocation. All
 * instruments are safe to write from concurrent threads; totals are
 * exact (the ASan concurrency smoke in tests/test_obs.cc holds this).
 *
 * Everything here is compiled in unconditionally: the engine's hooks
 * sit on cold paths (compiles, epoch bumps, batch attaches), and hot
 * counters are exported through callbacks, so an engine that never
 * dumps its registry pays nothing measurable
 * (BENCH_obs_overhead.json's metrics columns hold this).
 */

#ifndef WIZPP_OBS_METRICS_H
#define WIZPP_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace wizpp::obs {

/** A monotonically increasing, lock-free counter. */
class Counter
{
  public:
    Counter() = default;
    Counter(const Counter&) = delete;
    Counter& operator=(const Counter&) = delete;

    void inc(uint64_t n = 1) noexcept
    {
        _v.fetch_add(n, std::memory_order_relaxed);
    }

    Counter& operator++() noexcept
    {
        inc();
        return *this;
    }

    /** Post-increment, counter idiom: `stats.frameDeopts++`. */
    void operator++(int) noexcept { inc(); }

    Counter& operator+=(uint64_t n) noexcept
    {
        inc(n);
        return *this;
    }

    uint64_t value() const noexcept
    {
        return _v.load(std::memory_order_relaxed);
    }

    /** Counters compare and read like plain integers in tests. */
    operator uint64_t() const noexcept { return value(); }  // NOLINT

  private:
    std::atomic<uint64_t> _v{0};
};

/** A settable signed level. */
class Gauge
{
  public:
    Gauge() = default;
    Gauge(const Gauge&) = delete;
    Gauge& operator=(const Gauge&) = delete;

    void set(int64_t v) noexcept
    {
        _v.store(v, std::memory_order_relaxed);
    }

    void add(int64_t d) noexcept
    {
        _v.fetch_add(d, std::memory_order_relaxed);
    }

    int64_t value() const noexcept
    {
        return _v.load(std::memory_order_relaxed);
    }

    operator int64_t() const noexcept { return value(); }  // NOLINT

  private:
    std::atomic<int64_t> _v{0};
};

/**
 * A fixed-bucket latency histogram: bucket i counts values v with
 * 2^i <= v < 2^(i+1) (bucket 0 also takes v == 0). Unit-agnostic —
 * the registry convention is a unit suffix in the name (`_us`).
 */
class Histogram
{
  public:
    static constexpr int kBuckets = 32;

    Histogram() = default;
    Histogram(const Histogram&) = delete;
    Histogram& operator=(const Histogram&) = delete;

    void
    record(uint64_t v) noexcept
    {
        _buckets[bucketOf(v)].fetch_add(1, std::memory_order_relaxed);
        _sum.fetch_add(v, std::memory_order_relaxed);
    }

    uint64_t count() const noexcept;
    uint64_t sum() const noexcept
    {
        return _sum.load(std::memory_order_relaxed);
    }

    /**
     * Quantile estimate from the buckets (upper bound of the bucket
     * holding the q-th sample); q in [0, 1]. 0 when empty.
     */
    uint64_t quantile(double q) const noexcept;

    uint64_t bucketCount(int i) const noexcept
    {
        return _buckets[i].load(std::memory_order_relaxed);
    }

    static int
    bucketOf(uint64_t v) noexcept
    {
        if (v < 2) return 0;
        int b = 64 - __builtin_clzll(v) - 1;
        return b < kBuckets ? b : kBuckets - 1;
    }

    /** Upper value bound (exclusive) of bucket @p i. */
    static uint64_t
    bucketLimit(int i) noexcept
    {
        return i >= 63 ? ~0ull : (2ull << i);
    }

  private:
    std::atomic<uint64_t> _buckets[kBuckets]{};
    std::atomic<uint64_t> _sum{0};
};

/** Dump format for MetricsRegistry::write (wizeng --metrics=...). */
enum class MetricsFormat : uint8_t { Text, Json, Csv };

/**
 * The named-instrument registry. One per Engine (Engine::metrics());
 * standalone instances work too (tests, tools).
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    /**
     * Returns the instrument registered under @p name, creating it on
     * first use. References are stable for the registry's lifetime.
     * Registering one name as two different kinds is a programming
     * error (asserted in debug builds; first kind wins in release).
     */
    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    Histogram& histogram(const std::string& name);

    /**
     * Registers a pull-model value: @p fn is invoked only at
     * dump/snapshot time. The callable must stay valid for the
     * registry's lifetime (or until re-registered under the same
     * name, which replaces it).
     *
     * Safe to call concurrently with snapshot()/value()/write() from
     * other threads: callbacks are held by shared ownership, so a
     * replacement never destroys a callable a concurrent snapshot is
     * invoking, and snapshot() invokes callbacks *outside* the
     * registry lock, so a callback may itself read the registry
     * without deadlocking. What the callable reads is the caller's
     * contract: engine-owned callbacks sample that engine's plain
     * fields and must only be snapshotted on the owning worker thread
     * or while it is quiesced (docs/SERVING.md,
     * docs/OBSERVABILITY.md).
     */
    void registerCallback(const std::string& name,
                          std::function<uint64_t()> fn);

    /**
     * A flat name -> value view of every instrument: counters, gauges
     * and callbacks verbatim; histograms expanded to `<name>.count`,
     * `<name>.sum`, `<name>.p50`, `<name>.p99`, `<name>.max`.
     */
    std::map<std::string, double> snapshot() const;

    /** snapshot()[name], or 0 when absent. */
    double value(const std::string& name) const;

    /** Writes every instrument in @p format (sorted by name). */
    void write(std::ostream& out, MetricsFormat format) const;

  private:
    struct Entry
    {
        // Exactly one is set; instruments are pointer-stable.
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
        // Shared so re-registration cannot destroy a callable a
        // concurrent snapshot() is still invoking (the pre-serving
        // code stored the std::function inline, which TSan flags as a
        // data race the moment two threads touch the registry).
        std::shared_ptr<const std::function<uint64_t()>> callback;
    };

    mutable std::mutex _mu;
    std::map<std::string, Entry> _entries;
};

/** Parses "json"/"csv"/"text"; false on an unknown name. */
bool parseMetricsFormat(const std::string& s, MetricsFormat* out);

} // namespace wizpp::obs

#endif // WIZPP_OBS_METRICS_H
