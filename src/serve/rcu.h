/**
 * @file
 * GenerationGate: the RCU-style grace-period primitive behind the
 * serving runtime's concurrency-safe instrumentation
 * (docs/SERVING.md).
 *
 * The single-threaded engine already has an instrumentation *epoch* —
 * a counter bumped once per probe batch so compiled code and cached
 * dispatch state notice that instrumentation changed
 * (docs/INTERPRETER.md). The serving runtime generalizes that counter
 * into a *generation* published across threads:
 *
 *  - Writers (fleet-wide batch attach/detach in serve::InstancePool)
 *    publish new instrumentation state, bump the generation, and wait
 *    for a grace period before reclaiming anything the publication
 *    superseded.
 *  - Readers (pool workers) pin the current generation for the
 *    duration of one invocation — the read-side critical section —
 *    and are quiescent between invocations. Anything a reader can
 *    observe while pinned at generation G stays alive until every
 *    reader is quiescent or pinned at a generation >= the one that
 *    retired it.
 *
 * This is quiescent-state-based reclamation (QSBR): read-side cost is
 * one seq_cst store and one relaxed load per invocation, never a
 * lock, and writers pay the whole price of synchronization. The
 * store/load pairs use seq_cst rather than a fence so ThreadSanitizer
 * models the handshake exactly (TSan cannot reason about
 * atomic_thread_fence, and the cost difference is invisible at
 * invocation granularity). The correctness
 * argument and the memory-ordering table for every atomic below are
 * documented in docs/SERVING.md and verified by the TSan preset
 * (build-tsan) over tests/test_serve.cc.
 */

#ifndef WIZPP_SERVE_RCU_H
#define WIZPP_SERVE_RCU_H

#include <atomic>
#include <cstdint>
#include <vector>

namespace wizpp::serve {

/**
 * A grace-period gate over a fixed set of reader slots (one per
 * worker thread). Writer methods (publish, synchronize) may be called
 * from any thread but must be externally serialized — the pool holds
 * one writer mutex. Reader methods (pin, unpin) are wait-free and
 * must only be called on the slot's owning thread.
 */
class GenerationGate
{
  public:
    /** Slot value meaning "not inside a read-side critical section". */
    static constexpr uint64_t kQuiescent = 0;

    /** @p readers is the fixed number of reader slots (workers). */
    explicit GenerationGate(uint32_t readers) : _slots(readers) {}

    GenerationGate(const GenerationGate&) = delete;
    GenerationGate& operator=(const GenerationGate&) = delete;

    /** The current published generation (starts at 1, only grows). */
    uint64_t
    current() const noexcept
    {
        return _gen.load(std::memory_order_acquire);
    }

    /**
     * Enters a read-side critical section on @p slot and returns the
     * pinned generation. The seq_cst slot store orders the pin before
     * any subsequent load of writer-published state (Dekker with the
     * writer's publish-then-inspect sequence): a writer that observed
     * this slot quiescent is guaranteed the reader will load the
     * *new* publication, never a reclaimed one — the store-load
     * ordering both sides of the RCU handshake rely on.
     */
    uint64_t
    pin(uint32_t slot) noexcept
    {
        uint64_t g = _gen.load(std::memory_order_relaxed);
        _slots[slot].pinned.store(g, std::memory_order_seq_cst);
        return g;
    }

    /**
     * Leaves the read-side critical section. The release store orders
     * every read the critical section performed before the quiescent
     * mark a synchronizing writer acquires.
     */
    void
    unpin(uint32_t slot) noexcept
    {
        _slots[slot].pinned.store(kQuiescent, std::memory_order_release);
    }

    /** True while @p slot is inside a read-side critical section. */
    bool
    pinned(uint32_t slot) const noexcept
    {
        return _slots[slot].pinned.load(std::memory_order_acquire) !=
               kQuiescent;
    }

    /**
     * Writer: advances the generation after new state has been
     * published (store the state first, then publish — readers load
     * in the opposite order). Returns the new generation. The seq_cst
     * bump pairs with the seq_cst slot store in pin().
     */
    uint64_t
    publish() noexcept
    {
        return _gen.fetch_add(1, std::memory_order_seq_cst) + 1;
    }

    /**
     * Writer: blocks until every reader slot has been observed either
     * quiescent or pinned at a generation >= @p gen. Once a slot
     * passes, that reader can no longer hold a reference to anything
     * retired before @p gen: a quiescent reader re-pinning stores its
     * pin seq_cst and then loads post-publication state. Readers
     * quiesce at every
     * invocation boundary, so the wait is bounded by the longest
     * in-flight invocation plus scheduling delay.
     */
    void synchronize(uint64_t gen) const noexcept;

    uint32_t readers() const noexcept
    {
        return static_cast<uint32_t>(_slots.size());
    }

  private:
    /** One cache line per reader so pin/unpin never false-share. */
    struct alignas(64) Slot
    {
        std::atomic<uint64_t> pinned{kQuiescent};
    };

    std::atomic<uint64_t> _gen{1};
    std::vector<Slot> _slots;
};

} // namespace wizpp::serve

#endif // WIZPP_SERVE_RCU_H
