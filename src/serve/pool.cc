#include "serve/pool.h"

#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <utility>

namespace wizpp::serve {

namespace {
uint64_t
microsSince(std::chrono::steady_clock::time_point t0)
{
    return (uint64_t)std::chrono::duration_cast<
               std::chrono::microseconds>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

void
atomicMax(std::atomic<uint64_t>& a, uint64_t v)
{
    uint64_t cur = a.load(std::memory_order_relaxed);
    while (cur < v && !a.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
}
} // namespace

InstancePool::InstancePool(std::shared_ptr<const ValidatedModule> vm,
                           EngineConfig config, PoolOptions opts)
    : _vm(std::move(vm)),
      _config(config),
      _gate(opts.workers == 0 ? 1 : opts.workers),
      _executor(opts.workers == 0 ? 1 : opts.workers,
                WorkerHooks{
                    [this](uint32_t w) { onQuiescent(w); },
                    [this](uint32_t w) { _gate.pin(w); },
                    [this](uint32_t w) { _gate.unpin(w); },
                }),
      _ops(new OpsSnapshot)
{
    _slots.reserve(_gate.readers());
    for (uint32_t w = 0; w < _gate.readers(); w++) {
        _slots.push_back(std::make_unique<WorkerSlot>());
        // Workers start with the initial generation fully applied
        // (the initial snapshot is empty).
        _slots[w]->applied.store(_gate.current(),
                                 std::memory_order_relaxed);
    }
}

InstancePool::~InstancePool()
{
    stop();
    // Workers are joined: no reader can hold any snapshot.
    for (Retired& r : _graveyard) delete r.snap;
    _graveyard.clear();
    delete _ops.load(std::memory_order_relaxed);
}

Result<bool>
InstancePool::start()
{
    if (_started) return Error{"pool already started", 0};
    for (uint32_t w = 0; w < _gate.readers(); w++) {
        auto eng = std::make_unique<Engine>(_config);
        auto lr = eng->loadShared(_vm);
        if (!lr.ok()) return lr.error();
        auto ir = eng->instantiate();
        if (!ir.ok()) return ir.error();
        _slots[w]->engine = std::move(eng);
    }
    _started = true;
    _executor.start();
    return true;
}

void
InstancePool::stop()
{
    if (!_started) return;
    _executor.stop();
    _started = false;
}

int32_t
InstancePool::findFunc(const std::string& name) const
{
    int32_t e = _vm->module.findFuncExport(name);
    if (e >= 0) return e;
    for (const auto& f : _vm->module.functions) {
        if (f.name == name) return static_cast<int32_t>(f.index);
    }
    return -1;
}

void
InstancePool::submit(uint32_t funcIndex, std::vector<Value> args,
                     DoneFn done)
{
    _executor.submit([this, funcIndex, args = std::move(args),
                      done = std::move(done)](uint32_t w) {
        runOne(w, funcIndex, args, done);
    });
}

void
InstancePool::drain()
{
    _executor.drain();
}

void
InstancePool::runOne(uint32_t w, uint32_t funcIndex,
                     const std::vector<Value>& args, const DoneFn& done)
{
    WorkerSlot& slot = *_slots[w];
    bool instrumented = slot.engine->probes().numProbedSites() > 0;
    auto t0 = std::chrono::steady_clock::now();
    auto r = slot.engine->callFunction(funcIndex, args);
    slot.latencyUs.record(microsSince(t0));
    slot.stats.invocations.fetch_add(1, std::memory_order_relaxed);
    if (instrumented) {
        slot.stats.instrumentedInvocations.fetch_add(
            1, std::memory_order_relaxed);
    }
    if (!r.ok()) {
        slot.stats.traps.fetch_add(1, std::memory_order_relaxed);
    }
    if (done) done(w, r);
}

// ---- Reader side -----------------------------------------------------

void
InstancePool::onQuiescent(uint32_t w)
{
    WorkerSlot& slot = *_slots[w];
    if (_gate.current() ==
        slot.applied.load(std::memory_order_relaxed)) {
        return;
    }
    // Pin before loading the snapshot: the RCU handshake guarantees
    // the pointer we load stays alive until we unpin.
    uint64_t g = _gate.pin(w);
    // seq_cst pairs with the writer's seq_cst snapshot swap: either
    // the writer saw our pin (and waits in synchronize), or this load
    // is guaranteed to see the post-swap snapshot — never one the
    // writer went on to reclaim.
    const OpsSnapshot* snap = _ops.load(std::memory_order_seq_cst);
    // Unconditional (release builds too): the retirement stress test
    // leans on this to catch any use-after-retire of a snapshot.
    if (snap->canary != OpsSnapshot::kCanary) {
        std::fprintf(stderr,
                     "serve: ops-snapshot canary dead "
                     "(use-after-retire)\n");
        std::abort();
    }
    uint64_t appliedTo = slot.applied.load(std::memory_order_relaxed);
    uint64_t applied = 0;
    auto t0 = std::chrono::steady_clock::now();
    for (const auto& op : snap->ops) {
        if (op->gen <= appliedTo) continue;
        applyOp(*op, w);
        appliedTo = op->gen;
        applied++;
    }
    if (applied != 0) {
        uint64_t us = microsSince(t0);
        slot.stats.batchesApplied.fetch_add(
            applied, std::memory_order_relaxed);
        slot.stats.applyPauseTotalUs.fetch_add(
            us, std::memory_order_relaxed);
        atomicMax(slot.stats.applyPauseMaxUs, us);
    }
    // The writer compacts the snapshot only after everyone applied,
    // so a snapshot current at pinned generation g contains every op
    // up to g: this worker is now caught up through max(applied, g).
    if (g > appliedTo) appliedTo = g;
    slot.applied.store(appliedTo, std::memory_order_release);
    _gate.unpin(w);
}

void
InstancePool::applyOp(const FleetOp& op, uint32_t w)
{
    WorkerSlot& slot = *_slots[w];
    Engine& eng = *slot.engine;
    switch (op.kind) {
    case FleetOp::Kind::Attach: {
        std::vector<ProbeManager::SiteProbe> probes =
            op.plan(eng, w);
        // insertBatch() consumes the probe pointers (moves them into
        // the site lists); keep our own copy so detachBatch() and
        // attachedProbes() can still see them.
        std::vector<ProbeManager::SiteProbe> record = probes;
        eng.probes().insertBatch(probes);
        slot.batches[op.batchId] =
            BatchRecord{std::move(record), false};
        break;
    }
    case FleetOp::Kind::Detach: {
        auto it = slot.batches.find(op.batchId);
        if (it != slot.batches.end() && !it->second.detached) {
            eng.probes().removeBatch(it->second.probes);
            it->second.detached = true;
        }
        break;
    }
    case FleetOp::Kind::Generic:
        op.op(eng, w);
        break;
    }
}

// ---- Writer side -----------------------------------------------------

uint64_t
InstancePool::publishAndWait(FleetOp op)
{
    std::lock_guard<std::mutex> lock(_writerMu);
    const OpsSnapshot* old = _ops.load(std::memory_order_relaxed);
    uint64_t g = _gate.current() + 1;
    auto shared = std::make_shared<FleetOp>(std::move(op));
    shared->gen = g;

    // Publish: swap the snapshot first, then bump the generation
    // (readers load in the opposite order: generation, fence, then
    // snapshot — see GenerationGate::pin).
    auto* ns = new OpsSnapshot;
    ns->ops = old->ops;
    ns->ops.push_back(std::move(shared));
    _ops.store(ns, std::memory_order_seq_cst);
    // `old` may still be held by readers pinned before the swap; its
    // grace period ends once every reader is quiescent or >= g.
    _graveyard.push_back(Retired{old, g});
    _retiredCount.fetch_add(1, std::memory_order_relaxed);

    uint64_t pg = _gate.publish();
    assert(pg == g);
    (void)pg;

    // Kick parked workers so idle fleets apply promptly (bounded
    // pause does not depend on traffic).
    _executor.wakeAll();
    waitAllApplied(g);
    _gate.synchronize(g);
    reclaim(g);

    // Compact: every worker applied everything, so the op list can
    // shrink back to empty. The pre-compaction snapshot may be held
    // by readers pinned *at* g, so its grace period only ends at a
    // generation after g.
    auto* empty = new OpsSnapshot;
    const OpsSnapshot* prev =
        _ops.exchange(empty, std::memory_order_seq_cst);
    _graveyard.push_back(Retired{prev, g + 1});
    _retiredCount.fetch_add(1, std::memory_order_relaxed);
    return g;
}

void
InstancePool::waitAllApplied(uint64_t gen)
{
    for (auto& slot : _slots) {
        for (int spins = 0;
             slot->applied.load(std::memory_order_acquire) < gen;
             spins++) {
            if (spins < 64) {
                std::this_thread::yield();
            } else {
                _executor.wakeAll();  // belt-and-braces vs lost wakeups
                std::this_thread::sleep_for(
                    std::chrono::microseconds(50));
            }
        }
    }
}

void
InstancePool::reclaim(uint64_t gen)
{
    size_t kept = 0;
    for (Retired& r : _graveyard) {
        if (r.graceGen <= gen) {
            // Poison before free so a stale reader trips the canary
            // check instead of silently reading freed memory.
            const_cast<OpsSnapshot*>(r.snap)->canary = 0;
            delete r.snap;
            _freedCount.fetch_add(1, std::memory_order_relaxed);
        } else {
            _graveyard[kept++] = r;
        }
    }
    _graveyard.resize(kept);
}

uint64_t
InstancePool::attachEach(ProbePlan plan)
{
    uint64_t id;
    {
        std::lock_guard<std::mutex> lock(_writerMu);
        id = _nextBatchId++;
    }
    FleetOp op;
    op.kind = FleetOp::Kind::Attach;
    op.batchId = id;
    op.plan = std::move(plan);
    publishAndWait(std::move(op));
    return id;
}

void
InstancePool::detachBatch(uint64_t batchId)
{
    FleetOp op;
    op.kind = FleetOp::Kind::Detach;
    op.batchId = batchId;
    publishAndWait(std::move(op));
}

void
InstancePool::applyEach(EngineOp fn)
{
    FleetOp op;
    op.kind = FleetOp::Kind::Generic;
    op.op = std::move(fn);
    publishAndWait(std::move(op));
}

void
InstancePool::synchronize()
{
    std::lock_guard<std::mutex> lock(_writerMu);
    _gate.synchronize(_gate.current());
}

// ---- Introspection ---------------------------------------------------

const std::vector<ProbeManager::SiteProbe>&
InstancePool::attachedProbes(uint64_t batchId, uint32_t w) const
{
    static const std::vector<ProbeManager::SiteProbe> kEmpty;
    const WorkerSlot& slot = *_slots[w];
    auto it = slot.batches.find(batchId);
    return it == slot.batches.end() ? kEmpty : it->second.probes;
}

uint64_t
InstancePool::latencyQuantileUs(double q) const
{
    uint64_t counts[obs::Histogram::kBuckets] = {};
    uint64_t total = 0;
    for (const auto& slot : _slots) {
        for (int i = 0; i < obs::Histogram::kBuckets; i++) {
            uint64_t c = slot->latencyUs.bucketCount(i);
            counts[i] += c;
            total += c;
        }
    }
    if (total == 0) return 0;
    if (q < 0) q = 0;
    if (q > 1) q = 1;
    uint64_t target = (uint64_t)(q * (double)(total - 1)) + 1;
    uint64_t seen = 0;
    for (int i = 0; i < obs::Histogram::kBuckets; i++) {
        seen += counts[i];
        if (seen >= target) {
            return obs::Histogram::bucketLimit(i) - 1;
        }
    }
    return obs::Histogram::bucketLimit(obs::Histogram::kBuckets - 1);
}

uint64_t
InstancePool::invocations() const
{
    uint64_t n = 0;
    for (const auto& slot : _slots) {
        n += slot->stats.invocations.load(std::memory_order_relaxed);
    }
    return n;
}

uint64_t
InstancePool::traps() const
{
    uint64_t n = 0;
    for (const auto& slot : _slots) {
        n += slot->stats.traps.load(std::memory_order_relaxed);
    }
    return n;
}

uint64_t
InstancePool::snapshotsRetired() const
{
    return _retiredCount.load(std::memory_order_relaxed);
}

uint64_t
InstancePool::snapshotsFreed() const
{
    return _freedCount.load(std::memory_order_relaxed);
}

} // namespace wizpp::serve
