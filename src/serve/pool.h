/**
 * @file
 * InstancePool: the multi-instance serving runtime (docs/SERVING.md).
 *
 * One ValidatedModule, N engines (one per worker thread, each with
 * its own linear memory, frame stack, probe sites, and compiled
 * code), driven by a WorkStealingExecutor handling thousands of
 * short-lived invocations. The pool is where the single-threaded
 * instrumentation epoch becomes an RCU generation:
 *
 *  - A *fleet op* (batch attach, batch detach, or a generic engine
 *    mutation) is published by swapping an immutable OpsSnapshot
 *    pointer and bumping the GenerationGate.
 *  - Each worker applies pending ops to its *own* engine at its next
 *    quiescent point (between invocations), inside a pinned section.
 *    Because every probe-site structure is engine-private and only
 *    ever mutated by its owner thread at a quiescent point, torn
 *    fused-probe lists are impossible by construction — the fleet
 *    never mutates an engine another thread is executing.
 *  - The writer waits for every worker to apply (bounded by one
 *    invocation per worker — the executor wakes parked workers so
 *    idle fleets apply immediately), then for a grace period, then
 *    reclaims superseded snapshots. Use-after-retire is checked by a
 *    canary in debug and by the TSan/ASan suites.
 *
 * Metrics stay lock-free and per-worker: each worker owns a
 * cache-line-padded WorkerStats block and a latency Histogram written
 * only by relaxed atomics on its own thread; aggregation merges at
 * read time.
 */

#ifndef WIZPP_SERVE_POOL_H
#define WIZPP_SERVE_POOL_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/engine.h"
#include "obs/metrics.h"
#include "serve/executor.h"
#include "serve/rcu.h"

namespace wizpp::serve {

/**
 * Builds the per-worker probe list for a fleet attach. Called on the
 * *owning worker's thread* at a quiescent point, so it may freely
 * inspect the engine and must create fresh Probe instances (probes
 * fire on that worker's thread; sharing one instance across workers
 * would race its state).
 */
using ProbePlan = std::function<std::vector<ProbeManager::SiteProbe>(
    Engine&, uint32_t worker)>;

/** A generic fleet-wide engine mutation, same execution contract. */
using EngineOp = std::function<void(Engine&, uint32_t worker)>;

/** Completion callback for one invocation (runs on the worker). */
using DoneFn =
    std::function<void(uint32_t worker,
                       const Result<std::vector<Value>>& result)>;

struct PoolOptions
{
    uint32_t workers = 1;
};

/** Per-worker counters; padded so owners never false-share. */
struct alignas(64) WorkerStats
{
    std::atomic<uint64_t> invocations{0};
    std::atomic<uint64_t> traps{0};
    /** Invocations that ran with at least one probed site attached. */
    std::atomic<uint64_t> instrumentedInvocations{0};
    std::atomic<uint64_t> batchesApplied{0};
    /** Worst single quiescent-point application pause, microseconds. */
    std::atomic<uint64_t> applyPauseMaxUs{0};
    std::atomic<uint64_t> applyPauseTotalUs{0};
};

class InstancePool
{
  public:
    InstancePool(std::shared_ptr<const ValidatedModule> vm,
                 EngineConfig config, PoolOptions opts);
    ~InstancePool();

    InstancePool(const InstancePool&) = delete;
    InstancePool& operator=(const InstancePool&) = delete;

    /**
     * Builds one engine per worker from the shared module (loadShared
     * + instantiate, including the start function) and starts the
     * executor. Returns the first instantiation error, if any.
     */
    Result<bool> start();

    /** Drains outstanding work and joins the workers. Idempotent. */
    void stop();

    // ---- Request side ----

    /** Resolves an export/function name; -1 if absent. */
    int32_t findFunc(const std::string& name) const;

    /** Enqueues one invocation; @p done (optional) runs on the worker. */
    void submit(uint32_t funcIndex, std::vector<Value> args,
                DoneFn done = {});

    /** Blocks until every submitted invocation has finished. */
    void drain();

    // ---- Fleet instrumentation (the RCU writer side) ----
    // All three are serialized internally and may be called from any
    // non-worker thread while the fleet is busy. They return only
    // after every worker has applied the op *and* a full grace period
    // has elapsed, so the caller observes fleet-wide completion.

    /**
     * Batch-attaches @p plan's probes to every worker's engine at its
     * next quiescent point. Returns a batch id for detachBatch().
     */
    uint64_t attachEach(ProbePlan plan);

    /** Batch-detaches a previous attachEach() everywhere. */
    void detachBatch(uint64_t batchId);

    /** Runs @p op once on every worker's engine (generic fleet op). */
    void applyEach(EngineOp op);

    /**
     * Waits for a full grace period with no op: every invocation that
     * was in flight when this was called has finished.
     */
    void synchronize();

    // ---- Introspection ----
    // Engines and batch records are owned by their workers; read them
    // only while the fleet is quiesced (after drain() with no
    // concurrent submits, after a writer call returned, or after
    // stop()).

    uint32_t workers() const noexcept { return _executor.workers(); }
    WorkStealingExecutor& executor() noexcept { return _executor; }
    const GenerationGate& gate() const noexcept { return _gate; }

    Engine& workerEngine(uint32_t w) { return *_slots[w]->engine; }
    const WorkerStats& workerStats(uint32_t w) const
    {
        return _slots[w]->stats;
    }
    const obs::Histogram& workerLatency(uint32_t w) const
    {
        return _slots[w]->latencyUs;
    }

    /**
     * The exact probes @p batchId attached on @p worker (empty if
     * none). Valid after the attach returned; stable across detach —
     * use it to read per-worker fire counts back out of a detached
     * batch.
     */
    const std::vector<ProbeManager::SiteProbe>& attachedProbes(
        uint64_t batchId, uint32_t w) const;

    /** Merged invocation-latency quantile across all workers (µs). */
    uint64_t latencyQuantileUs(double q) const;

    uint64_t invocations() const;
    uint64_t traps() const;

    /** Snapshots retired / reclaimed so far (retirement telemetry). */
    uint64_t snapshotsRetired() const;
    uint64_t snapshotsFreed() const;

  private:
    struct FleetOp
    {
        enum class Kind : uint8_t { Attach, Detach, Generic };
        Kind kind = Kind::Generic;
        uint64_t gen = 0;      ///< generation that published this op
        uint64_t batchId = 0;  ///< attach: new id; detach: target
        ProbePlan plan;
        EngineOp op;
    };

    /**
     * The immutable publication unit: readers load the pointer inside
     * a pinned section and never see it mutate. Superseded snapshots
     * are reclaimed only after a grace period.
     */
    struct OpsSnapshot
    {
        static constexpr uint64_t kCanary = 0x5ca1ab1e0ddba11ull;
        uint64_t canary = kCanary;
        std::vector<std::shared_ptr<const FleetOp>> ops;  ///< gen asc
    };

    struct BatchRecord
    {
        std::vector<ProbeManager::SiteProbe> probes;
        bool detached = false;
    };

    /** Per-worker state; mutated only by the owning worker thread. */
    struct alignas(64) WorkerSlot
    {
        std::unique_ptr<Engine> engine;
        /** Highest generation whose ops this worker has applied. */
        std::atomic<uint64_t> applied{0};
        WorkerStats stats;
        obs::Histogram latencyUs;
        std::unordered_map<uint64_t, BatchRecord> batches;
    };

    void onQuiescent(uint32_t w);
    void applyOp(const FleetOp& op, uint32_t w);
    void runOne(uint32_t w, uint32_t funcIndex,
                const std::vector<Value>& args, const DoneFn& done);

    /** Publishes @p op and blocks through application + grace. */
    uint64_t publishAndWait(FleetOp op);
    void waitAllApplied(uint64_t gen);
    /** Frees retired snapshots whose grace period ended at <= gen. */
    void reclaim(uint64_t gen);

    std::shared_ptr<const ValidatedModule> _vm;
    EngineConfig _config;
    std::vector<std::unique_ptr<WorkerSlot>> _slots;
    GenerationGate _gate;
    WorkStealingExecutor _executor;

    std::atomic<const OpsSnapshot*> _ops;

    std::mutex _writerMu;  ///< serializes all fleet writers
    struct Retired
    {
        const OpsSnapshot* snap;
        uint64_t graceGen;  ///< free once synchronized through this
    };
    std::vector<Retired> _graveyard;  ///< guarded by _writerMu
    uint64_t _nextBatchId = 1;        ///< guarded by _writerMu
    std::atomic<uint64_t> _retiredCount{0};
    std::atomic<uint64_t> _freedCount{0};
    bool _started = false;
};

} // namespace wizpp::serve

#endif // WIZPP_SERVE_POOL_H
