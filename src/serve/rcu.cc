#include "serve/rcu.h"

#include <chrono>
#include <thread>

namespace wizpp::serve {

void
GenerationGate::synchronize(uint64_t gen) const noexcept
{
    for (const Slot& s : _slots) {
        // Adaptive wait: spin briefly (readers quiesce every
        // invocation, typically microseconds), then back off to short
        // sleeps so a descheduled reader does not burn a core.
        for (int spins = 0;; spins++) {
            // seq_cst: the load must be ordered after the writer's
            // publication (see pin() — the Dekker pair's other side).
            uint64_t p = s.pinned.load(std::memory_order_seq_cst);
            if (p == kQuiescent || p >= gen) break;
            if (spins < 64) {
                std::this_thread::yield();
            } else {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(50));
            }
        }
    }
}

} // namespace wizpp::serve
