/**
 * @file
 * Work-stealing executor for the serving runtime (docs/SERVING.md).
 *
 * A fixed set of worker threads, each with its own deque: the owner
 * pushes and pops at the back (LIFO, cache-warm), thieves steal from
 * the front (FIFO, oldest first). Tasks are short-lived invocations;
 * the executor adds three hooks so the InstancePool can run its RCU
 * protocol at the right points of every worker's loop:
 *
 *  - onQuiescent(worker)  — top of the loop, outside any read-side
 *    critical section; the pool applies pending fleet batches here.
 *  - beforeTask(worker)   — immediately before a task runs; the pool
 *    pins the current generation.
 *  - afterTask(worker)    — immediately after; the pool unpins.
 *
 * wakeAll() kicks parked workers without queueing work, so a writer
 * publishing a new generation gets bounded grace periods even on an
 * idle fleet (parked workers wake, pass through onQuiescent, apply,
 * and park again).
 */

#ifndef WIZPP_SERVE_EXECUTOR_H
#define WIZPP_SERVE_EXECUTOR_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wizpp::serve {

/** A unit of work; receives the executing worker's index. */
using Task = std::function<void(uint32_t worker)>;

/** Pool callbacks woven into each worker's loop (see file header). */
struct WorkerHooks
{
    std::function<void(uint32_t)> onQuiescent;
    std::function<void(uint32_t)> beforeTask;
    std::function<void(uint32_t)> afterTask;
};

class WorkStealingExecutor
{
  public:
    explicit WorkStealingExecutor(uint32_t workers,
                                  WorkerHooks hooks = {});
    ~WorkStealingExecutor();

    WorkStealingExecutor(const WorkStealingExecutor&) = delete;
    WorkStealingExecutor& operator=(const WorkStealingExecutor&) =
        delete;

    /** Starts the worker threads. Idempotent. */
    void start();

    /** Drains remaining work, then joins all workers. Idempotent. */
    void stop();

    /** Enqueues @p t on a worker picked round-robin. */
    void submit(Task t);

    /**
     * Enqueues @p t on @p worker's own deque. Another worker may
     * still steal it; use this for load placement, not affinity
     * guarantees.
     */
    void submitTo(uint32_t worker, Task t);

    /** Blocks until every submitted task has finished. */
    void drain();

    /**
     * Wakes every parked worker without queueing work, so each one
     * passes through onQuiescent promptly. Called by RCU writers
     * after publishing a new generation.
     */
    void wakeAll();

    uint32_t workers() const noexcept { return _n; }

    /** Tasks executed after being stolen from another worker. */
    uint64_t
    steals() const noexcept
    {
        return _steals.load(std::memory_order_relaxed);
    }

    /** Tasks submitted over the executor's lifetime. */
    uint64_t
    submitted() const noexcept
    {
        return _submitted.load(std::memory_order_relaxed);
    }

  private:
    struct alignas(64) Queue
    {
        std::mutex mu;
        std::deque<Task> tasks;
    };

    bool tryPop(uint32_t worker, Task& out);
    bool trySteal(uint32_t thief, Task& out);
    void workerMain(uint32_t worker);

    uint32_t _n;
    WorkerHooks _hooks;
    std::vector<Queue> _queues;
    std::vector<std::thread> _threads;

    std::mutex _parkMu;
    std::condition_variable _parkCv;

    std::mutex _drainMu;
    std::condition_variable _drainCv;

    std::atomic<uint64_t> _pending{0};  // submitted, not yet finished
    std::atomic<uint64_t> _steals{0};
    std::atomic<uint64_t> _submitted{0};
    std::atomic<uint32_t> _rr{0};       // round-robin submit cursor
    std::atomic<uint64_t> _wakeSeq{0};  // bumps on wakeAll/submit
    std::atomic<bool> _stopping{false};
    bool _started = false;
};

} // namespace wizpp::serve

#endif // WIZPP_SERVE_EXECUTOR_H
