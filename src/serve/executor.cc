#include "serve/executor.h"

#include <chrono>
#include <utility>

namespace wizpp::serve {

WorkStealingExecutor::WorkStealingExecutor(uint32_t workers,
                                           WorkerHooks hooks)
    : _n(workers == 0 ? 1 : workers),
      _hooks(std::move(hooks)),
      _queues(_n)
{
}

WorkStealingExecutor::~WorkStealingExecutor() { stop(); }

void
WorkStealingExecutor::start()
{
    if (_started) return;
    _started = true;
    _stopping.store(false, std::memory_order_relaxed);
    _threads.reserve(_n);
    for (uint32_t w = 0; w < _n; w++) {
        _threads.emplace_back([this, w] { workerMain(w); });
    }
}

void
WorkStealingExecutor::stop()
{
    if (!_started) return;
    _stopping.store(true, std::memory_order_release);
    wakeAll();
    for (std::thread& t : _threads) {
        if (t.joinable()) t.join();
    }
    _threads.clear();
    _started = false;
}

void
WorkStealingExecutor::submit(Task t)
{
    uint32_t w = _rr.fetch_add(1, std::memory_order_relaxed) % _n;
    submitTo(w, std::move(t));
}

void
WorkStealingExecutor::submitTo(uint32_t worker, Task t)
{
    _pending.fetch_add(1, std::memory_order_relaxed);
    _submitted.fetch_add(1, std::memory_order_relaxed);
    {
        Queue& q = _queues[worker % _n];
        std::lock_guard<std::mutex> lock(q.mu);
        q.tasks.push_back(std::move(t));
    }
    {
        std::lock_guard<std::mutex> lock(_parkMu);
        _wakeSeq.fetch_add(1, std::memory_order_relaxed);
    }
    _parkCv.notify_all();
}

void
WorkStealingExecutor::drain()
{
    std::unique_lock<std::mutex> lock(_drainMu);
    _drainCv.wait(lock, [this] {
        return _pending.load(std::memory_order_acquire) == 0;
    });
}

void
WorkStealingExecutor::wakeAll()
{
    {
        std::lock_guard<std::mutex> lock(_parkMu);
        _wakeSeq.fetch_add(1, std::memory_order_relaxed);
    }
    _parkCv.notify_all();
}

bool
WorkStealingExecutor::tryPop(uint32_t worker, Task& out)
{
    Queue& q = _queues[worker];
    std::lock_guard<std::mutex> lock(q.mu);
    if (q.tasks.empty()) return false;
    out = std::move(q.tasks.back());  // owner: LIFO, cache-warm
    q.tasks.pop_back();
    return true;
}

bool
WorkStealingExecutor::trySteal(uint32_t thief, Task& out)
{
    for (uint32_t i = 1; i < _n; i++) {
        Queue& q = _queues[(thief + i) % _n];
        std::lock_guard<std::mutex> lock(q.mu);
        if (q.tasks.empty()) continue;
        out = std::move(q.tasks.front());  // thief: FIFO, oldest
        q.tasks.pop_front();
        _steals.fetch_add(1, std::memory_order_relaxed);
        return true;
    }
    return false;
}

void
WorkStealingExecutor::workerMain(uint32_t worker)
{
    while (true) {
        if (_hooks.onQuiescent) _hooks.onQuiescent(worker);

        Task t;
        if (tryPop(worker, t) || trySteal(worker, t)) {
            if (_hooks.beforeTask) _hooks.beforeTask(worker);
            t(worker);
            if (_hooks.afterTask) _hooks.afterTask(worker);
            t = Task();  // release captures before signaling done
            if (_pending.fetch_sub(1, std::memory_order_acq_rel) ==
                1) {
                std::lock_guard<std::mutex> lock(_drainMu);
                _drainCv.notify_all();
            }
            continue;
        }

        if (_stopping.load(std::memory_order_acquire)) return;

        // Park until new work, a wakeAll, or stop. The sequence
        // number read under _parkMu closes the lost-wakeup window
        // between the empty-queue check above and the wait below.
        uint64_t seq;
        {
            std::lock_guard<std::mutex> lock(_parkMu);
            seq = _wakeSeq.load(std::memory_order_relaxed);
        }
        if (_pending.load(std::memory_order_acquire) != 0) continue;
        std::unique_lock<std::mutex> lock(_parkMu);
        _parkCv.wait_for(
            lock, std::chrono::milliseconds(10), [this, seq] {
                return _wakeSeq.load(std::memory_order_relaxed) !=
                           seq ||
                       _stopping.load(std::memory_order_acquire);
            });
    }
}

} // namespace wizpp::serve
