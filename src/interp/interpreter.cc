#include "interp/interpreter.h"

#include <atomic>
#include <cmath>
#include <cstring>
#include <mutex>

#include "interp/fusion.h"
#include "jit/jitcode.h"
#include "probes/frameaccessor.h"
#include "support/leb128.h"
#include "wasm/opcodes.h"

namespace wizpp {

namespace {
constexpr uint32_t kNoPc = 0xffffffffu;
}

/** Live interpreter state threaded through every handler. */
struct Interp
{
    Engine& eng;
    Value* vals = nullptr;
    const uint8_t* code = nullptr;
    /**
     * Dispatch bytes (fs->dcode): identical to `code` except at fused
     * window heads, which hold superinstruction opcodes. All backends
     * dispatch on dcode[pc]; immediates are always read from `code`.
     */
    const uint8_t* dcode = nullptr;
    uint32_t pc = 0;
    uint32_t sp = 0;           ///< absolute index into the value array
    uint32_t codeSize = 0;     ///< cached fs->code.size()
    uint32_t localsBase = 0;   ///< cached frame->localsBase
    uint32_t stackStart = 0;   ///< cached frame->stackStart
    /** Cached dense branch indexes (fs->sideTable.*Slots.data()). */
    const SideTableEntry* const* branchSlots = nullptr;
    const std::vector<SideTableEntry>* const* brTableSlots = nullptr;
    Frame* frame = nullptr;
    FuncState* fs = nullptr;
    Instance* inst = nullptr;
    const void* dispatch = nullptr;
    Signal signal = Signal::Done;
    bool exit = false;
    /** cfg.mode == Tiered, hoisted out of the per-backedge OSR check
        (the only mode in which backedges can ever tier up). */
    bool osrCandidate = false;

    explicit Interp(Engine& e) : eng(e)
    {
        vals = e.values().data();
        inst = &e.instance();
        dispatch = e.dispatchTable();
        osrCandidate = e.config().mode == ExecMode::Tiered;
    }

    void
    loadTopFrame()
    {
        frame = &eng.frames().back();
        fs = frame->fs;
        code = fs->code.data();
        dcode = fs->dcode.data();
        codeSize = static_cast<uint32_t>(fs->code.size());
        pc = frame->pc;
        sp = frame->sp;
        localsBase = frame->localsBase;
        stackStart = frame->stackStart;
        branchSlots = fs->sideTable.branchSlots.data();
        brTableSlots = fs->sideTable.brTableSlots.data();
    }

    void
    sync()
    {
        frame->pc = pc;
        frame->sp = sp;
    }
};

using OpHandler = void (*)(Interp&);

namespace {

OpHandler gNormalTable[256];
OpHandler gProbedTable[256];

inline void
doTrap(Interp& I, TrapReason r)
{
    I.sync();
    I.eng.setTrap(r);
    I.signal = Signal::Trap;
    I.exit = true;
}

// Immediate readers. The code was validated at load time, so the
// encodings are known well-formed; the hot single-byte case skips the
// checked decoder entirely.

inline uint32_t
readU32Imm(Interp& I, uint32_t at, size_t* len)
{
    uint8_t b = I.code[at];
    if (__builtin_expect(b < 0x80, 1)) {
        *len = 1;
        return b;
    }
    auto r = decodeULEB<uint32_t>(I.code + at, I.code + I.codeSize);
    *len = r.length;
    return r.value;
}

// ---------------------------------------------------------------------
// Control flow
// ---------------------------------------------------------------------

/** Applies a resolved branch: collapse the operand stack and jump. */
inline void
applyBranch(Interp& I, const SideTableEntry& e)
{
    uint32_t dst = I.stackStart + e.popTo;
    uint32_t srcBase = I.sp - e.valCount;
    for (uint32_t i = 0; i < e.valCount; i++) {
        I.vals[dst + i] = I.vals[srcBase + i];
    }
    I.sp = dst + e.valCount;
    I.pc = e.targetPc;
}

/**
 * Backedge hook: tier-up accounting and on-stack replacement into
 * compiled code at loop headers (Tiered mode only).
 */
inline void
maybeOsr(Interp& I, uint32_t targetPc, uint32_t fromPc)
{
    if (targetPc > fromPc || !I.osrCandidate) return;  // not a backedge
    Engine& eng = I.eng;
    const EngineConfig& cfg = eng.config();
    if (eng.interpreterOnly()) return;
    FuncState* fs = I.fs;
    if (!fs->jit) {
        // One policy for calls and backedges: dirty functions (probe
        // batch landed) recompile immediately, others earn hotness.
        eng.maybeCompileOnEntry(*fs);
        if (!fs->jit) return;
    }
    if (!cfg.osrAtLoopBackedge) return;
    uint32_t idx = fs->jit->indexOfPc(targetPc);
    if (idx == kNoJitIndex) return;
    I.sync();
    I.frame->tier = Tier::Jit;
    I.frame->jitEpoch = fs->jitEpoch;
    I.frame->jitResumeIdx = idx;
    eng.stats.osrEntries++;
    I.signal = Signal::TierSwitch;
    I.exit = true;
}

void
h_nop(Interp& I)
{
    I.pc += 1;
}

void
h_unreachable(Interp& I)
{
    doTrap(I, TrapReason::Unreachable);
}

void
h_block(Interp& I)
{
    I.pc += 2;  // opcode + blocktype byte
}

void
h_loop(Interp& I)
{
    I.pc += 2;
}

// Branch handlers resolve their side-table entry through the dense
// per-pc slots built by SideTable::finalize() — one array load per
// executed branch instead of a hash lookup.

void
h_if(Interp& I)
{
    uint32_t cond = I.vals[--I.sp].i32();
    if (cond) {
        I.pc += 2;
    } else {
        applyBranch(I, (*I.branchSlots[I.pc]));
    }
}

void
h_else(Interp& I)
{
    // Reached only by falling out of a then-branch: skip to after `end`.
    applyBranch(I, (*I.branchSlots[I.pc]));
}

void
h_br(Interp& I)
{
    uint32_t from = I.pc;
    applyBranch(I, (*I.branchSlots[I.pc]));
    maybeOsr(I, I.pc, from);
}

void
h_br_if(Interp& I)
{
    uint32_t cond = I.vals[--I.sp].i32();
    if (cond) {
        uint32_t from = I.pc;
        applyBranch(I, (*I.branchSlots[I.pc]));
        maybeOsr(I, I.pc, from);
    } else {
        size_t len;
        readU32Imm(I, I.pc + 1, &len);
        I.pc += 1 + static_cast<uint32_t>(len);
    }
}

void
h_br_table(Interp& I)
{
    uint32_t idx = I.vals[--I.sp].i32();
    const auto& entries = *I.brTableSlots[I.pc];
    uint32_t n = static_cast<uint32_t>(entries.size()) - 1;  // last=default
    const SideTableEntry& e = entries[idx < n ? idx : n];
    uint32_t from = I.pc;
    applyBranch(I, e);
    maybeOsr(I, I.pc, from);
}

/** Pops the current frame; returns results to the caller. */
inline void
doReturn(Interp& I)
{
    uint32_t arity = I.fs->numResults;
    uint32_t lb = I.frame->localsBase;
    for (uint32_t i = 0; i < arity; i++) {
        I.vals[lb + i] = I.vals[I.sp - arity + i];
    }
    if (I.frame->accessor) {
        I.frame->accessor->invalidate();
        I.frame->accessor.reset();
    }
    auto& frames = I.eng.frames();
    frames.pop_back();
    if (frames.empty()) {
        I.sp = lb + arity;
        I.signal = Signal::Done;
        I.exit = true;
        return;
    }
    Frame& caller = frames.back();
    caller.sp = lb + arity;
    if (!I.eng.interpreterOnly() && caller.tier == Tier::Jit) {
        FuncState* cfs = caller.fs;
        if (cfs->jit && caller.jitEpoch == cfs->jitEpoch &&
            !caller.deoptRequested) {
            I.signal = Signal::TierSwitch;
            I.exit = true;
            return;
        }
        caller.tier = Tier::Interpreter;
        caller.deoptRequested = false;
        I.eng.stats.frameDeopts++;
    } else if (caller.tier == Tier::Jit) {
        // Interpreter-only (global probe) mode pins frames to the
        // interpreter without discarding compiled code (Section 4.1).
        caller.tier = Tier::Interpreter;
    }
    I.loadTopFrame();
}

void
h_return(Interp& I)
{
    doReturn(I);
}

void
h_end(Interp& I)
{
    if (I.pc + 1 == I.codeSize) {
        doReturn(I);
    } else {
        I.pc += 1;
    }
}

/** Invokes a function (shared by call and call_indirect). */
inline void
doCall(Interp& I, uint32_t calleeIdx, uint32_t pcAfter)
{
    Engine& eng = I.eng;
    FuncState& callee = eng.funcState(calleeIdx);
    if (callee.decl->imported) {
        const HostFunc& hf = I.inst->hostFuncs[calleeIdx];
        uint32_t n = callee.numParams;
        std::vector<Value> args(I.vals + I.sp - n, I.vals + I.sp);
        I.sp -= n;
        std::vector<Value> results;
        I.sync();
        I.frame->pc = pcAfter;
        TrapReason t = hf.fn(args, &results);
        if (t != TrapReason::None) {
            doTrap(I, t);
            return;
        }
        for (const Value& v : results) I.vals[I.sp++] = v;
        I.pc = pcAfter;
        return;
    }

    // Sync the caller; its sp excludes the arguments, which become the
    // callee's first locals in place. Any pending skip-probe flag is
    // dead once the frame progresses past its resume instruction.
    uint32_t nparams = callee.numParams;
    uint32_t localsBase = I.sp - nparams;
    I.frame->pc = pcAfter;
    I.frame->sp = localsBase;
    I.frame->skipProbeOncePc = kNoPc;

    auto& frames = eng.frames();
    if (frames.size() >= eng.config().maxFrames) {
        doTrap(I, TrapReason::StackOverflow);
        return;
    }
    uint32_t stackStart = localsBase + callee.numLocals;
    if (stackStart + callee.maxOperand > eng.values().size()) {
        doTrap(I, TrapReason::StackOverflow);
        return;
    }

    // Tiering decision for the callee. Jit mode lazily recompiles code
    // invalidated by probe changes (Section 4.5).
    Tier tier = Tier::Interpreter;
    if (!eng.interpreterOnly()) {
        eng.maybeCompileOnEntry(callee);
        if (callee.jit) tier = Tier::Jit;
    }

    frames.emplace_back();
    Frame& f = frames.back();
    f.fs = &callee;
    f.pc = 0;
    f.localsBase = localsBase;
    f.stackStart = stackStart;
    f.sp = stackStart;
    f.frameId = eng.nextFrameId();
    f.accessor = nullptr;  // clear accessor slot on entry (Section 2.3)
    f.tier = tier;
    f.jitEpoch = callee.jitEpoch;
    f.jitResumeIdx = 0;
    f.deoptRequested = false;
    f.skipProbeOncePc = kNoPc;

    // Zero the non-parameter locals with correctly-typed zeros.
    for (uint32_t i = nparams; i < callee.numLocals; i++) {
        I.vals[localsBase + i] = Value::zeroOf(callee.localTypes[i]);
    }

    if (tier == Tier::Jit) {
        I.signal = Signal::TierSwitch;
        I.exit = true;
        return;
    }
    I.loadTopFrame();
}

void
h_call(Interp& I)
{
    size_t len;
    uint32_t idx = readU32Imm(I, I.pc + 1, &len);
    doCall(I, idx, I.pc + 1 + static_cast<uint32_t>(len));
}

void
h_call_indirect(Interp& I)
{
    size_t len;
    uint32_t typeIdx = readU32Imm(I, I.pc + 1, &len);
    uint32_t pcAfter = I.pc + 1 + static_cast<uint32_t>(len) + 1;  // +table
    uint32_t slot = I.vals[--I.sp].i32();
    Table& table = I.inst->table;
    if (!table.inBounds(slot)) {
        doTrap(I, TrapReason::TableOutOfBounds);
        return;
    }
    uint32_t target = table.get(slot);
    if (target == kNullFuncIndex) {
        doTrap(I, TrapReason::UninitializedTableEntry);
        return;
    }
    if (I.eng.funcState(target).canonTypeId != I.eng.canonTypeId(typeIdx)) {
        doTrap(I, TrapReason::IndirectCallTypeMismatch);
        return;
    }
    doCall(I, target, pcAfter);
}

// ---------------------------------------------------------------------
// Parametric and variable instructions
// ---------------------------------------------------------------------

void
h_drop(Interp& I)
{
    --I.sp;
    I.pc += 1;
}

void
h_select(Interp& I)
{
    uint32_t cond = I.vals[--I.sp].i32();
    Value v2 = I.vals[--I.sp];
    Value v1 = I.vals[--I.sp];
    I.vals[I.sp++] = cond ? v1 : v2;
    I.pc += 1;
}

void
h_local_get(Interp& I)
{
    size_t len;
    uint32_t idx = readU32Imm(I, I.pc + 1, &len);
    I.vals[I.sp++] = I.vals[I.localsBase + idx];
    I.pc += 1 + static_cast<uint32_t>(len);
}

void
h_local_set(Interp& I)
{
    size_t len;
    uint32_t idx = readU32Imm(I, I.pc + 1, &len);
    I.vals[I.localsBase + idx] = I.vals[--I.sp];
    I.pc += 1 + static_cast<uint32_t>(len);
}

void
h_local_tee(Interp& I)
{
    size_t len;
    uint32_t idx = readU32Imm(I, I.pc + 1, &len);
    I.vals[I.localsBase + idx] = I.vals[I.sp - 1];
    I.pc += 1 + static_cast<uint32_t>(len);
}

void
h_global_get(Interp& I)
{
    size_t len;
    uint32_t idx = readU32Imm(I, I.pc + 1, &len);
    I.vals[I.sp++] = I.inst->globals[idx].value;
    I.pc += 1 + static_cast<uint32_t>(len);
}

void
h_global_set(Interp& I)
{
    size_t len;
    uint32_t idx = readU32Imm(I, I.pc + 1, &len);
    I.inst->globals[idx].value = I.vals[--I.sp];
    I.pc += 1 + static_cast<uint32_t>(len);
}

// ---------------------------------------------------------------------
// Memory instructions
// ---------------------------------------------------------------------

/** Decodes a memarg (align, offset); returns the instruction length. */
inline uint32_t
readMemArg(Interp& I, uint32_t* offset)
{
    const uint8_t* base = I.code + I.pc + 1;
    // Fast path: both align and offset fit in one LEB byte each.
    if (__builtin_expect((base[0] | base[1]) < 0x80, 1)) {
        *offset = base[1];
        return 3;
    }
    const uint8_t* end = I.code + I.codeSize;
    auto a = decodeULEB<uint32_t>(base, end);
    auto o = decodeULEB<uint32_t>(base + a.length, end);
    *offset = o.value;
    return 1 + static_cast<uint32_t>(a.length + o.length);
}

#define MEM_LOAD(NAME, CT, MAKE)                                         \
    void h_##NAME(Interp& I)                                             \
    {                                                                    \
        uint32_t offset;                                                 \
        uint32_t len = readMemArg(I, &offset);                           \
        uint32_t addr = I.vals[I.sp - 1].i32();                          \
        Memory& mem = I.inst->memory;                                    \
        if (!mem.inBounds(addr, offset, sizeof(CT))) {                   \
            doTrap(I, TrapReason::MemoryOutOfBounds);                    \
            return;                                                      \
        }                                                                \
        CT raw = mem.read<CT>(addr + offset);                            \
        I.vals[I.sp - 1] = MAKE;                                         \
        I.pc += len;                                                     \
    }

MEM_LOAD(i32_load, uint32_t, Value::makeI32(raw))
MEM_LOAD(i64_load, uint64_t, Value::makeI64(raw))
MEM_LOAD(f32_load, float, Value::makeF32(raw))
MEM_LOAD(f64_load, double, Value::makeF64(raw))
MEM_LOAD(i32_load8_s, int8_t, Value::makeI32(static_cast<int32_t>(raw)))
MEM_LOAD(i32_load8_u, uint8_t, Value::makeI32(static_cast<uint32_t>(raw)))
MEM_LOAD(i32_load16_s, int16_t, Value::makeI32(static_cast<int32_t>(raw)))
MEM_LOAD(i32_load16_u, uint16_t, Value::makeI32(static_cast<uint32_t>(raw)))
MEM_LOAD(i64_load8_s, int8_t, Value::makeI64(static_cast<int64_t>(raw)))
MEM_LOAD(i64_load8_u, uint8_t, Value::makeI64(static_cast<uint64_t>(raw)))
MEM_LOAD(i64_load16_s, int16_t, Value::makeI64(static_cast<int64_t>(raw)))
MEM_LOAD(i64_load16_u, uint16_t, Value::makeI64(static_cast<uint64_t>(raw)))
MEM_LOAD(i64_load32_s, int32_t, Value::makeI64(static_cast<int64_t>(raw)))
MEM_LOAD(i64_load32_u, uint32_t, Value::makeI64(static_cast<uint64_t>(raw)))

#define MEM_STORE(NAME, CT, GET)                                         \
    void h_##NAME(Interp& I)                                             \
    {                                                                    \
        uint32_t offset;                                                 \
        uint32_t len = readMemArg(I, &offset);                           \
        Value val = I.vals[--I.sp];                                      \
        uint32_t addr = I.vals[--I.sp].i32();                            \
        Memory& mem = I.inst->memory;                                    \
        if (!mem.inBounds(addr, offset, sizeof(CT))) {                   \
            doTrap(I, TrapReason::MemoryOutOfBounds);                    \
            return;                                                      \
        }                                                                \
        mem.write<CT>(addr + offset, static_cast<CT>(GET));              \
        I.pc += len;                                                     \
    }

MEM_STORE(i32_store, uint32_t, val.i32())
MEM_STORE(i64_store, uint64_t, val.i64())
MEM_STORE(f32_store, float, val.f32())
MEM_STORE(f64_store, double, val.f64())
MEM_STORE(i32_store8, uint8_t, val.i32())
MEM_STORE(i32_store16, uint16_t, val.i32())
MEM_STORE(i64_store8, uint8_t, val.i64())
MEM_STORE(i64_store16, uint16_t, val.i64())
MEM_STORE(i64_store32, uint32_t, val.i64())

void
h_memory_size(Interp& I)
{
    I.vals[I.sp++] = Value::makeI32(I.inst->memory.pages());
    I.pc += 2;  // opcode + reserved byte
}

void
h_memory_grow(Interp& I)
{
    uint32_t delta = I.vals[I.sp - 1].i32();
    I.vals[I.sp - 1] = Value::makeI32(I.inst->memory.grow(delta));
    I.pc += 2;
}

// ---------------------------------------------------------------------
// Constants
// ---------------------------------------------------------------------

void
h_i32_const(Interp& I)
{
    uint8_t b = I.code[I.pc + 1];
    if (__builtin_expect(b < 0x80, 1)) {
        // Single-byte SLEB: sign-extend from bit 6.
        int32_t v = static_cast<int32_t>(b << 25) >> 25;
        I.vals[I.sp++] = Value::makeI32(v);
        I.pc += 2;
        return;
    }
    auto r = decodeSLEB<int32_t>(I.code + I.pc + 1, I.code + I.codeSize);
    I.vals[I.sp++] = Value::makeI32(r.value);
    I.pc += 1 + static_cast<uint32_t>(r.length);
}

void
h_i64_const(Interp& I)
{
    uint8_t b = I.code[I.pc + 1];
    if (__builtin_expect(b < 0x80, 1)) {
        int64_t v = static_cast<int64_t>(
            static_cast<int32_t>(b << 25) >> 25);
        I.vals[I.sp++] = Value::makeI64(v);
        I.pc += 2;
        return;
    }
    auto r = decodeSLEB<int64_t>(I.code + I.pc + 1, I.code + I.codeSize);
    I.vals[I.sp++] = Value::makeI64(r.value);
    I.pc += 1 + static_cast<uint32_t>(r.length);
}

void
h_f32_const(Interp& I)
{
    uint32_t bits;
    std::memcpy(&bits, I.code + I.pc + 1, 4);
    I.vals[I.sp++] = Value{ValType::F32, bits};
    I.pc += 5;
}

void
h_f64_const(Interp& I)
{
    uint64_t bits;
    std::memcpy(&bits, I.code + I.pc + 1, 8);
    I.vals[I.sp++] = Value{ValType::F64, bits};
    I.pc += 9;
}

// ---------------------------------------------------------------------
// Numeric instructions
// ---------------------------------------------------------------------

#define UNOP(NAME, POPT, PUSH)                                           \
    void h_##NAME(Interp& I)                                             \
    {                                                                    \
        auto a = I.vals[I.sp - 1].POPT();                                \
        I.vals[I.sp - 1] = PUSH;                                         \
        I.pc += 1;                                                       \
    }

#define BINOP(NAME, POPT, PUSH)                                          \
    void h_##NAME(Interp& I)                                             \
    {                                                                    \
        auto b = I.vals[--I.sp].POPT();                                  \
        auto a = I.vals[I.sp - 1].POPT();                                \
        I.vals[I.sp - 1] = PUSH;                                         \
        I.pc += 1;                                                       \
    }

// i32 comparison
UNOP(i32_eqz, i32, Value::makeI32(uint32_t{a == 0}))
BINOP(i32_eq, i32, Value::makeI32(uint32_t{a == b}))
BINOP(i32_ne, i32, Value::makeI32(uint32_t{a != b}))
BINOP(i32_lt_s, i32s, Value::makeI32(uint32_t{a < b}))
BINOP(i32_lt_u, i32, Value::makeI32(uint32_t{a < b}))
BINOP(i32_gt_s, i32s, Value::makeI32(uint32_t{a > b}))
BINOP(i32_gt_u, i32, Value::makeI32(uint32_t{a > b}))
BINOP(i32_le_s, i32s, Value::makeI32(uint32_t{a <= b}))
BINOP(i32_le_u, i32, Value::makeI32(uint32_t{a <= b}))
BINOP(i32_ge_s, i32s, Value::makeI32(uint32_t{a >= b}))
BINOP(i32_ge_u, i32, Value::makeI32(uint32_t{a >= b}))

// i64 comparison
UNOP(i64_eqz, i64, Value::makeI32(uint32_t{a == 0}))
BINOP(i64_eq, i64, Value::makeI32(uint32_t{a == b}))
BINOP(i64_ne, i64, Value::makeI32(uint32_t{a != b}))
BINOP(i64_lt_s, i64s, Value::makeI32(uint32_t{a < b}))
BINOP(i64_lt_u, i64, Value::makeI32(uint32_t{a < b}))
BINOP(i64_gt_s, i64s, Value::makeI32(uint32_t{a > b}))
BINOP(i64_gt_u, i64, Value::makeI32(uint32_t{a > b}))
BINOP(i64_le_s, i64s, Value::makeI32(uint32_t{a <= b}))
BINOP(i64_le_u, i64, Value::makeI32(uint32_t{a <= b}))
BINOP(i64_ge_s, i64s, Value::makeI32(uint32_t{a >= b}))
BINOP(i64_ge_u, i64, Value::makeI32(uint32_t{a >= b}))

// float comparison
BINOP(f32_eq, f32, Value::makeI32(uint32_t{a == b}))
BINOP(f32_ne, f32, Value::makeI32(uint32_t{a != b}))
BINOP(f32_lt, f32, Value::makeI32(uint32_t{a < b}))
BINOP(f32_gt, f32, Value::makeI32(uint32_t{a > b}))
BINOP(f32_le, f32, Value::makeI32(uint32_t{a <= b}))
BINOP(f32_ge, f32, Value::makeI32(uint32_t{a >= b}))
BINOP(f64_eq, f64, Value::makeI32(uint32_t{a == b}))
BINOP(f64_ne, f64, Value::makeI32(uint32_t{a != b}))
BINOP(f64_lt, f64, Value::makeI32(uint32_t{a < b}))
BINOP(f64_gt, f64, Value::makeI32(uint32_t{a > b}))
BINOP(f64_le, f64, Value::makeI32(uint32_t{a <= b}))
BINOP(f64_ge, f64, Value::makeI32(uint32_t{a >= b}))

// i32 arithmetic
UNOP(i32_clz, i32, Value::makeI32(a ? uint32_t(__builtin_clz(a)) : 32u))
UNOP(i32_ctz, i32, Value::makeI32(a ? uint32_t(__builtin_ctz(a)) : 32u))
UNOP(i32_popcnt, i32, Value::makeI32(uint32_t(__builtin_popcount(a))))
BINOP(i32_add, i32, Value::makeI32(a + b))
BINOP(i32_sub, i32, Value::makeI32(a - b))
BINOP(i32_mul, i32, Value::makeI32(a * b))
BINOP(i32_and, i32, Value::makeI32(a & b))
BINOP(i32_or, i32, Value::makeI32(a | b))
BINOP(i32_xor, i32, Value::makeI32(a ^ b))
BINOP(i32_shl, i32, Value::makeI32(a << (b & 31)))
BINOP(i32_shr_u, i32, Value::makeI32(a >> (b & 31)))
BINOP(i32_shr_s, i32, Value::makeI32(
    uint32_t(static_cast<int32_t>(a) >> (b & 31))))
BINOP(i32_rotl, i32, Value::makeI32(
    (b & 31) ? ((a << (b & 31)) | (a >> (32 - (b & 31)))) : a))
BINOP(i32_rotr, i32, Value::makeI32(
    (b & 31) ? ((a >> (b & 31)) | (a << (32 - (b & 31)))) : a))

void
h_i32_div_s(Interp& I)
{
    int32_t b = I.vals[--I.sp].i32s();
    int32_t a = I.vals[I.sp - 1].i32s();
    if (b == 0) { doTrap(I, TrapReason::DivByZero); return; }
    if (a == INT32_MIN && b == -1) {
        doTrap(I, TrapReason::IntegerOverflow);
        return;
    }
    I.vals[I.sp - 1] = Value::makeI32(a / b);
    I.pc += 1;
}

void
h_i32_div_u(Interp& I)
{
    uint32_t b = I.vals[--I.sp].i32();
    uint32_t a = I.vals[I.sp - 1].i32();
    if (b == 0) { doTrap(I, TrapReason::DivByZero); return; }
    I.vals[I.sp - 1] = Value::makeI32(a / b);
    I.pc += 1;
}

void
h_i32_rem_s(Interp& I)
{
    int32_t b = I.vals[--I.sp].i32s();
    int32_t a = I.vals[I.sp - 1].i32s();
    if (b == 0) { doTrap(I, TrapReason::DivByZero); return; }
    int32_t r = (a == INT32_MIN && b == -1) ? 0 : a % b;
    I.vals[I.sp - 1] = Value::makeI32(r);
    I.pc += 1;
}

void
h_i32_rem_u(Interp& I)
{
    uint32_t b = I.vals[--I.sp].i32();
    uint32_t a = I.vals[I.sp - 1].i32();
    if (b == 0) { doTrap(I, TrapReason::DivByZero); return; }
    I.vals[I.sp - 1] = Value::makeI32(a % b);
    I.pc += 1;
}

// i64 arithmetic
UNOP(i64_clz, i64, Value::makeI64(a ? uint64_t(__builtin_clzll(a)) : 64u))
UNOP(i64_ctz, i64, Value::makeI64(a ? uint64_t(__builtin_ctzll(a)) : 64u))
UNOP(i64_popcnt, i64, Value::makeI64(uint64_t(__builtin_popcountll(a))))
BINOP(i64_add, i64, Value::makeI64(a + b))
BINOP(i64_sub, i64, Value::makeI64(a - b))
BINOP(i64_mul, i64, Value::makeI64(a * b))
BINOP(i64_and, i64, Value::makeI64(a & b))
BINOP(i64_or, i64, Value::makeI64(a | b))
BINOP(i64_xor, i64, Value::makeI64(a ^ b))
BINOP(i64_shl, i64, Value::makeI64(a << (b & 63)))
BINOP(i64_shr_u, i64, Value::makeI64(a >> (b & 63)))
BINOP(i64_shr_s, i64, Value::makeI64(
    uint64_t(static_cast<int64_t>(a) >> (b & 63))))
BINOP(i64_rotl, i64, Value::makeI64(
    (b & 63) ? ((a << (b & 63)) | (a >> (64 - (b & 63)))) : a))
BINOP(i64_rotr, i64, Value::makeI64(
    (b & 63) ? ((a >> (b & 63)) | (a << (64 - (b & 63)))) : a))

void
h_i64_div_s(Interp& I)
{
    int64_t b = I.vals[--I.sp].i64s();
    int64_t a = I.vals[I.sp - 1].i64s();
    if (b == 0) { doTrap(I, TrapReason::DivByZero); return; }
    if (a == INT64_MIN && b == -1) {
        doTrap(I, TrapReason::IntegerOverflow);
        return;
    }
    I.vals[I.sp - 1] = Value::makeI64(a / b);
    I.pc += 1;
}

void
h_i64_div_u(Interp& I)
{
    uint64_t b = I.vals[--I.sp].i64();
    uint64_t a = I.vals[I.sp - 1].i64();
    if (b == 0) { doTrap(I, TrapReason::DivByZero); return; }
    I.vals[I.sp - 1] = Value::makeI64(a / b);
    I.pc += 1;
}

void
h_i64_rem_s(Interp& I)
{
    int64_t b = I.vals[--I.sp].i64s();
    int64_t a = I.vals[I.sp - 1].i64s();
    if (b == 0) { doTrap(I, TrapReason::DivByZero); return; }
    int64_t r = (a == INT64_MIN && b == -1) ? 0 : a % b;
    I.vals[I.sp - 1] = Value::makeI64(r);
    I.pc += 1;
}

void
h_i64_rem_u(Interp& I)
{
    uint64_t b = I.vals[--I.sp].i64();
    uint64_t a = I.vals[I.sp - 1].i64();
    if (b == 0) { doTrap(I, TrapReason::DivByZero); return; }
    I.vals[I.sp - 1] = Value::makeI64(a % b);
    I.pc += 1;
}

// Float min/max with Wasm NaN semantics (either NaN -> NaN; -0 < +0).
template <typename F>
inline F
wasmMin(F a, F b)
{
    if (std::isnan(a) || std::isnan(b)) {
        return std::numeric_limits<F>::quiet_NaN();
    }
    if (a == b) return std::signbit(a) ? a : b;
    return a < b ? a : b;
}

template <typename F>
inline F
wasmMax(F a, F b)
{
    if (std::isnan(a) || std::isnan(b)) {
        return std::numeric_limits<F>::quiet_NaN();
    }
    if (a == b) return std::signbit(a) ? b : a;
    return a > b ? a : b;
}

// f32 arithmetic
UNOP(f32_abs, f32, Value::makeF32(std::fabs(a)))
UNOP(f32_neg, f32, Value::makeF32(-a))
UNOP(f32_ceil, f32, Value::makeF32(std::ceil(a)))
UNOP(f32_floor, f32, Value::makeF32(std::floor(a)))
UNOP(f32_trunc, f32, Value::makeF32(std::trunc(a)))
UNOP(f32_nearest, f32, Value::makeF32(std::nearbyintf(a)))
UNOP(f32_sqrt, f32, Value::makeF32(std::sqrt(a)))
BINOP(f32_add, f32, Value::makeF32(a + b))
BINOP(f32_sub, f32, Value::makeF32(a - b))
BINOP(f32_mul, f32, Value::makeF32(a * b))
BINOP(f32_div, f32, Value::makeF32(a / b))
BINOP(f32_min, f32, Value::makeF32(wasmMin(a, b)))
BINOP(f32_max, f32, Value::makeF32(wasmMax(a, b)))
BINOP(f32_copysign, f32, Value::makeF32(std::copysign(a, b)))

// f64 arithmetic
UNOP(f64_abs, f64, Value::makeF64(std::fabs(a)))
UNOP(f64_neg, f64, Value::makeF64(-a))
UNOP(f64_ceil, f64, Value::makeF64(std::ceil(a)))
UNOP(f64_floor, f64, Value::makeF64(std::floor(a)))
UNOP(f64_trunc, f64, Value::makeF64(std::trunc(a)))
UNOP(f64_nearest, f64, Value::makeF64(std::nearbyint(a)))
UNOP(f64_sqrt, f64, Value::makeF64(std::sqrt(a)))
BINOP(f64_add, f64, Value::makeF64(a + b))
BINOP(f64_sub, f64, Value::makeF64(a - b))
BINOP(f64_mul, f64, Value::makeF64(a * b))
BINOP(f64_div, f64, Value::makeF64(a / b))
BINOP(f64_min, f64, Value::makeF64(wasmMin(a, b)))
BINOP(f64_max, f64, Value::makeF64(wasmMax(a, b)))
BINOP(f64_copysign, f64, Value::makeF64(std::copysign(a, b)))

// Conversions.
UNOP(i32_wrap_i64, i64, Value::makeI32(static_cast<uint32_t>(a)))
UNOP(i64_extend_i32_s, i32s, Value::makeI64(static_cast<int64_t>(a)))
UNOP(i64_extend_i32_u, i32, Value::makeI64(static_cast<uint64_t>(a)))
UNOP(f32_convert_i32_s, i32s, Value::makeF32(static_cast<float>(a)))
UNOP(f32_convert_i32_u, i32, Value::makeF32(static_cast<float>(a)))
UNOP(f32_convert_i64_s, i64s, Value::makeF32(static_cast<float>(a)))
UNOP(f32_convert_i64_u, i64, Value::makeF32(static_cast<float>(a)))
UNOP(f32_demote_f64, f64, Value::makeF32(static_cast<float>(a)))
UNOP(f64_convert_i32_s, i32s, Value::makeF64(static_cast<double>(a)))
UNOP(f64_convert_i32_u, i32, Value::makeF64(static_cast<double>(a)))
UNOP(f64_convert_i64_s, i64s, Value::makeF64(static_cast<double>(a)))
UNOP(f64_convert_i64_u, i64, Value::makeF64(static_cast<double>(a)))
UNOP(f64_promote_f32, f32, Value::makeF64(static_cast<double>(a)))
UNOP(i32_reinterpret_f32, i32, Value(ValType::I32, a))
UNOP(i64_reinterpret_f64, i64, Value(ValType::I64, a))
UNOP(f32_reinterpret_i32, i32, Value(ValType::F32, a))
UNOP(f64_reinterpret_i64, i64, Value(ValType::F64, a))
UNOP(i32_extend8_s, i32,
     Value::makeI32(static_cast<int32_t>(static_cast<int8_t>(a))))
UNOP(i32_extend16_s, i32,
     Value::makeI32(static_cast<int32_t>(static_cast<int16_t>(a))))
UNOP(i64_extend8_s, i64,
     Value::makeI64(static_cast<int64_t>(static_cast<int8_t>(a))))
UNOP(i64_extend16_s, i64,
     Value::makeI64(static_cast<int64_t>(static_cast<int16_t>(a))))
UNOP(i64_extend32_s, i64,
     Value::makeI64(static_cast<int64_t>(static_cast<int32_t>(a))))

// Trapping float->int truncations.
#define TRUNC(NAME, POPT, IT, LO, HI, MAKE)                              \
    void h_##NAME(Interp& I)                                             \
    {                                                                    \
        double v = static_cast<double>(I.vals[I.sp - 1].POPT());         \
        if (std::isnan(v)) {                                             \
            doTrap(I, TrapReason::InvalidConversion);                    \
            return;                                                      \
        }                                                                \
        double t = std::trunc(v);                                        \
        if (!(t >= (LO) && t <= (HI))) {                                 \
            doTrap(I, TrapReason::IntegerOverflow);                      \
            return;                                                      \
        }                                                                \
        I.vals[I.sp - 1] = MAKE(static_cast<IT>(t));                     \
        I.pc += 1;                                                       \
    }

TRUNC(i32_trunc_f32_s, f32, int32_t, -2147483648.0, 2147483647.0,
      Value::makeI32)
TRUNC(i32_trunc_f32_u, f32, uint32_t, 0.0, 4294967295.0, Value::makeI32)
TRUNC(i32_trunc_f64_s, f64, int32_t, -2147483648.0, 2147483647.0,
      Value::makeI32)
TRUNC(i32_trunc_f64_u, f64, uint32_t, 0.0, 4294967295.0, Value::makeI32)

// i64 bounds: the upper bound 2^63-1 is not representable; use < 2^63.
#define TRUNC64(NAME, POPT, IT, CHECK, MAKE)                             \
    void h_##NAME(Interp& I)                                             \
    {                                                                    \
        double v = static_cast<double>(I.vals[I.sp - 1].POPT());         \
        if (std::isnan(v)) {                                             \
            doTrap(I, TrapReason::InvalidConversion);                    \
            return;                                                      \
        }                                                                \
        double t = std::trunc(v);                                        \
        if (!(CHECK)) {                                                  \
            doTrap(I, TrapReason::IntegerOverflow);                      \
            return;                                                      \
        }                                                                \
        I.vals[I.sp - 1] = MAKE(static_cast<IT>(t));                     \
        I.pc += 1;                                                       \
    }

TRUNC64(i64_trunc_f32_s, f32, int64_t,
        t >= -9223372036854775808.0 && t < 9223372036854775808.0,
        Value::makeI64)
TRUNC64(i64_trunc_f32_u, f32, uint64_t,
        t >= 0.0 && t < 18446744073709551616.0, Value::makeI64)
TRUNC64(i64_trunc_f64_s, f64, int64_t,
        t >= -9223372036854775808.0 && t < 9223372036854775808.0,
        Value::makeI64)
TRUNC64(i64_trunc_f64_u, f64, uint64_t,
        t >= 0.0 && t < 18446744073709551616.0, Value::makeI64)

// 0xFC-prefixed opcodes: saturating truncation + bulk memory.
template <typename IT>
inline IT
truncSat(double v, double lo, double hi)
{
    if (std::isnan(v)) return 0;
    double t = std::trunc(v);
    if (t < lo) return std::numeric_limits<IT>::min();
    if (t > hi) return std::numeric_limits<IT>::max();
    return static_cast<IT>(t);
}

void
h_prefix_fc(Interp& I)
{
    auto sub = decodeULEB<uint32_t>(I.code + I.pc + 1,
                                    I.code + I.codeSize);
    uint32_t len = 1 + static_cast<uint32_t>(sub.length);
    switch (sub.value) {
      case FC_I32_TRUNC_SAT_F32_S:
        I.vals[I.sp - 1] = Value::makeI32(truncSat<int32_t>(
            I.vals[I.sp - 1].f32(), -2147483648.0, 2147483647.0));
        break;
      case FC_I32_TRUNC_SAT_F32_U:
        I.vals[I.sp - 1] = Value::makeI32(truncSat<uint32_t>(
            I.vals[I.sp - 1].f32(), 0.0, 4294967295.0));
        break;
      case FC_I32_TRUNC_SAT_F64_S:
        I.vals[I.sp - 1] = Value::makeI32(truncSat<int32_t>(
            I.vals[I.sp - 1].f64(), -2147483648.0, 2147483647.0));
        break;
      case FC_I32_TRUNC_SAT_F64_U:
        I.vals[I.sp - 1] = Value::makeI32(truncSat<uint32_t>(
            I.vals[I.sp - 1].f64(), 0.0, 4294967295.0));
        break;
      case FC_I64_TRUNC_SAT_F32_S:
        I.vals[I.sp - 1] = Value::makeI64(truncSat<int64_t>(
            I.vals[I.sp - 1].f32(), -9223372036854775808.0,
            9223372036854775807.0));
        break;
      case FC_I64_TRUNC_SAT_F32_U:
        I.vals[I.sp - 1] = Value::makeI64(truncSat<uint64_t>(
            I.vals[I.sp - 1].f32(), 0.0, 18446744073709551615.0));
        break;
      case FC_I64_TRUNC_SAT_F64_S:
        I.vals[I.sp - 1] = Value::makeI64(truncSat<int64_t>(
            I.vals[I.sp - 1].f64(), -9223372036854775808.0,
            9223372036854775807.0));
        break;
      case FC_I64_TRUNC_SAT_F64_U:
        I.vals[I.sp - 1] = Value::makeI64(truncSat<uint64_t>(
            I.vals[I.sp - 1].f64(), 0.0, 18446744073709551615.0));
        break;
      case FC_MEMORY_FILL: {
        len += 1;  // memory index byte
        uint32_t n = I.vals[--I.sp].i32();
        uint32_t val = I.vals[--I.sp].i32();
        uint32_t dst = I.vals[--I.sp].i32();
        Memory& mem = I.inst->memory;
        if (!mem.inBounds(dst, 0, n)) {
            doTrap(I, TrapReason::MemoryOutOfBounds);
            return;
        }
        std::memset(mem.data() + dst, val & 0xff, n);
        break;
      }
      case FC_MEMORY_COPY: {
        len += 2;  // two memory index bytes
        uint32_t n = I.vals[--I.sp].i32();
        uint32_t src = I.vals[--I.sp].i32();
        uint32_t dst = I.vals[--I.sp].i32();
        Memory& mem = I.inst->memory;
        if (!mem.inBounds(dst, 0, n) || !mem.inBounds(src, 0, n)) {
            doTrap(I, TrapReason::MemoryOutOfBounds);
            return;
        }
        std::memmove(mem.data() + dst, mem.data() + src, n);
        break;
      }
      default:
        doTrap(I, TrapReason::Unreachable);
        return;
    }
    I.pc += len;
}

void
h_illegal(Interp& I)
{
    doTrap(I, TrapReason::Unreachable);
}

// ---------------------------------------------------------------------
// Superinstruction handlers (src/interp/fusion.h). Each executes one
// fused window with the window's intermediate top-of-stack values
// cached in C++ locals — i.e. registers — touching the value array
// only at the window boundary. The fusion matcher guarantees every
// immediate inside a window is a single LEB byte, so all operand
// offsets below are fixed. Windows end before calls, branches (a
// trailing br_if is the only branch form) and probe boundaries, so
// the cached state is spilled — by construction — everywhere the rest
// of the engine can observe the frame. Handlers that can trap
// reconstruct the exact singles stack state (and the trapping
// sub-instruction's pc) before doTrap.
// ---------------------------------------------------------------------

/** Sign-extends a single-byte SLEB immediate (same idiom as
    h_i32_const's fast path). */
inline int32_t
sext7(uint8_t b)
{
    return static_cast<int32_t>(b << 25) >> 25;
}

// local.get A; local.get B
void
h_sop_get_get(Interp& I)
{
    Value a = I.vals[I.localsBase + I.code[I.pc + 1]];
    Value b = I.vals[I.localsBase + I.code[I.pc + 3]];
    I.vals[I.sp] = a;
    I.vals[I.sp + 1] = b;
    I.sp += 2;
    I.pc += 4;
}

// local.get A; i32.const C
void
h_sop_get_const(Interp& I)
{
    I.vals[I.sp] = I.vals[I.localsBase + I.code[I.pc + 1]];
    I.vals[I.sp + 1] = Value::makeI32(sext7(I.code[I.pc + 3]));
    I.sp += 2;
    I.pc += 4;
}

// i32.const C; local.get B
void
h_sop_const_get(Interp& I)
{
    I.vals[I.sp] = Value::makeI32(sext7(I.code[I.pc + 1]));
    I.vals[I.sp + 1] = I.vals[I.localsBase + I.code[I.pc + 3]];
    I.sp += 2;
    I.pc += 4;
}

// local.set A; local.get B
void
h_sop_set_get(Interp& I)
{
    I.vals[I.localsBase + I.code[I.pc + 1]] = I.vals[--I.sp];
    I.vals[I.sp++] = I.vals[I.localsBase + I.code[I.pc + 3]];
    I.pc += 4;
}

// local.get A; local.get B; local.get C
void
h_sop_get_get_get(Interp& I)
{
    I.vals[I.sp] = I.vals[I.localsBase + I.code[I.pc + 1]];
    I.vals[I.sp + 1] = I.vals[I.localsBase + I.code[I.pc + 3]];
    I.vals[I.sp + 2] = I.vals[I.localsBase + I.code[I.pc + 5]];
    I.sp += 3;
    I.pc += 6;
}

// local.get A; local.get B; i32.mul — both operands and the result
// stay in registers; one stack write replaces two writes + two reads.
void
h_sop_get_get_i32_mul(Interp& I)
{
    uint32_t a = I.vals[I.localsBase + I.code[I.pc + 1]].i32();
    uint32_t b = I.vals[I.localsBase + I.code[I.pc + 3]].i32();
    I.vals[I.sp++] = Value::makeI32(a * b);
    I.pc += 5;
}

// local.get A; i32.const C; i32.add / i32.mul
void
h_sop_get_const_i32_add(Interp& I)
{
    uint32_t a = I.vals[I.localsBase + I.code[I.pc + 1]].i32();
    uint32_t c = static_cast<uint32_t>(sext7(I.code[I.pc + 3]));
    I.vals[I.sp++] = Value::makeI32(a + c);
    I.pc += 5;
}

void
h_sop_get_const_i32_mul(Interp& I)
{
    uint32_t a = I.vals[I.localsBase + I.code[I.pc + 1]].i32();
    uint32_t c = static_cast<uint32_t>(sext7(I.code[I.pc + 3]));
    I.vals[I.sp++] = Value::makeI32(a * c);
    I.pc += 5;
}

// i32.const C; i32.add — add-immediate to the (register-cached) TOS.
void
h_sop_const_i32_add(Interp& I)
{
    uint32_t c = static_cast<uint32_t>(sext7(I.code[I.pc + 1]));
    I.vals[I.sp - 1] = Value::makeI32(I.vals[I.sp - 1].i32() + c);
    I.pc += 3;
}

// i32.const C; i32.mul — multiply-immediate on the TOS.
void
h_sop_const_i32_mul(Interp& I)
{
    uint32_t c = static_cast<uint32_t>(sext7(I.code[I.pc + 1]));
    I.vals[I.sp - 1] = Value::makeI32(I.vals[I.sp - 1].i32() * c);
    I.pc += 3;
}

// i32.const C; i32.mul; i32.add — the scale-and-offset half of the
// corpus's addressing idiom: [x, y] -> [x + y*C] in registers.
void
h_sop_const_i32_mul_add(Interp& I)
{
    uint32_t c = static_cast<uint32_t>(sext7(I.code[I.pc + 1]));
    uint32_t y = I.vals[--I.sp].i32();
    I.vals[I.sp - 1] =
        Value::makeI32(I.vals[I.sp - 1].i32() + y * c);
    I.pc += 4;
}

// i32.mul; i32.add — [x, y, z] -> [x + y*z].
void
h_sop_i32_mul_add(Interp& I)
{
    uint32_t m = I.vals[I.sp - 2].i32() * I.vals[I.sp - 1].i32();
    I.sp -= 2;
    I.vals[I.sp - 1] = Value::makeI32(I.vals[I.sp - 1].i32() + m);
    I.pc += 2;
}

// i32.mul; local.get B; i32.add — [x, y] -> [x*y + B].
void
h_sop_mul_get_add(Interp& I)
{
    uint32_t m = I.vals[I.sp - 2].i32() * I.vals[I.sp - 1].i32();
    uint32_t b = I.vals[I.localsBase + I.code[I.pc + 2]].i32();
    I.sp -= 1;
    I.vals[I.sp - 1] = Value::makeI32(m + b);
    I.pc += 4;
}

// i32.add; i32.const C — fold the add, then push the next constant.
void
h_sop_add_const(Interp& I)
{
    uint32_t b = I.vals[--I.sp].i32();
    I.vals[I.sp - 1] =
        Value::makeI32(I.vals[I.sp - 1].i32() + b);
    I.vals[I.sp++] = Value::makeI32(sext7(I.code[I.pc + 2]));
    I.pc += 3;
}

// i32.add; local.set A — the sum goes straight to the local.
void
h_sop_i32_add_set(Interp& I)
{
    uint32_t b = I.vals[--I.sp].i32();
    uint32_t a = I.vals[--I.sp].i32();
    I.vals[I.localsBase + I.code[I.pc + 2]] = Value::makeI32(a + b);
    I.pc += 3;
}

// i32.const C; i32.add; local.set A — add-immediate into a local.
void
h_sop_const_add_set(Interp& I)
{
    uint32_t c = static_cast<uint32_t>(sext7(I.code[I.pc + 1]));
    uint32_t x = I.vals[--I.sp].i32();
    I.vals[I.localsBase + I.code[I.pc + 4]] = Value::makeI32(x + c);
    I.pc += 5;
}

// local.get B; i32.add — fold a local into the TOS in place.
void
h_sop_get_i32_add(Interp& I)
{
    uint32_t b = I.vals[I.localsBase + I.code[I.pc + 1]].i32();
    I.vals[I.sp - 1] =
        Value::makeI32(I.vals[I.sp - 1].i32() + b);
    I.pc += 3;
}

// local.get A; i32.const C; i32.add; local.set B — the loop-counter
// increment idiom: zero stack traffic, one dispatch instead of four.
void
h_sop_get_inc_set(Interp& I)
{
    uint32_t v = I.vals[I.localsBase + I.code[I.pc + 1]].i32() +
                 static_cast<uint32_t>(sext7(I.code[I.pc + 3]));
    I.vals[I.localsBase + I.code[I.pc + 6]] = Value::makeI32(v);
    I.pc += 7;
}

// local.get A; (i32.const C | local.get B); <i32 cmp>; br_if — the
// loop-exit idiom. Operands never touch the stack; the branch path is
// exactly h_br_if's (same side-table entry, the br_if's pc), so OSR
// and stack collapse behave identically to singles. In both layouts
// the br_if sits at window head + 5.
#define SOP_CMP_BRIF(NAME, LOADB, CMP)                                  \
    void h_sop_##NAME(Interp& I)                                        \
    {                                                                   \
        int32_t a = I.vals[I.localsBase + I.code[I.pc + 1]].i32s();     \
        int32_t b = (LOADB);                                            \
        if (CMP) {                                                      \
            uint32_t from = I.pc + 5;                                   \
            applyBranch(I, (*I.branchSlots[from]));                     \
            maybeOsr(I, I.pc, from);                                    \
        } else {                                                        \
            I.pc += 7;                                                  \
        }                                                               \
    }

SOP_CMP_BRIF(get_const_ge_s_brif, sext7(I.code[I.pc + 3]), a >= b)
SOP_CMP_BRIF(get_get_ge_s_brif,
             I.vals[I.localsBase + I.code[I.pc + 3]].i32s(), a >= b)

// f64.mul; f64.add — the accumulate chain: [c, x, y] -> [c + x*y].
// Operand order matches the singles exactly (a*b then c+m).
void
h_sop_f64_mul_add(Interp& I)
{
    double m = I.vals[I.sp - 2].f64() * I.vals[I.sp - 1].f64();
    I.sp -= 2;
    I.vals[I.sp - 1] = Value::makeF64(I.vals[I.sp - 1].f64() + m);
    I.pc += 2;
}

// f64.mul; f64.add; local.set A — the full accumulate statement:
// [c, x, y] -> (local A) = c + x*y, zero residual stack.
void
h_sop_f64_mul_add_set(Interp& I)
{
    double m = I.vals[I.sp - 2].f64() * I.vals[I.sp - 1].f64();
    I.vals[I.localsBase + I.code[I.pc + 3]] =
        Value::makeF64(I.vals[I.sp - 3].f64() + m);
    I.sp -= 3;
    I.pc += 4;
}

// f64.add; local.set A — the sum goes straight to the local.
void
h_sop_f64_add_set(Interp& I)
{
    double b = I.vals[--I.sp].f64();
    double a = I.vals[--I.sp].f64();
    I.vals[I.localsBase + I.code[I.pc + 2]] = Value::makeF64(a + b);
    I.pc += 3;
}

// i32.add; f64.load — address arithmetic folded into the load. On a
// bounds failure the add has executed: leave the sum as TOS, set pc
// to the load, then trap.
void
h_sop_i32_add_f64_load(Interp& I)
{
    uint32_t offset = I.code[I.pc + 3];
    uint32_t b = I.vals[--I.sp].i32();
    uint32_t addr = I.vals[I.sp - 1].i32() + b;
    Memory& mem = I.inst->memory;
    if (__builtin_expect(!mem.inBounds(addr, offset, 8), 0)) {
        I.vals[I.sp - 1] = Value::makeI32(addr);
        I.pc += 1;
        doTrap(I, TrapReason::MemoryOutOfBounds);
        return;
    }
    I.vals[I.sp - 1] = Value::makeF64(mem.read<double>(addr + offset));
    I.pc += 4;
}

// i32.mul; i32.add; f64.load — the whole element-address computation
// plus the load: [x, y, z] -> [mem[x + y*z + offset]]. On a bounds
// failure the mul and add have executed: leave the sum as TOS, set pc
// to the load, then trap.
void
h_sop_mul_add_f64_load(Interp& I)
{
    uint32_t offset = I.code[I.pc + 4];
    uint32_t m = I.vals[I.sp - 2].i32() * I.vals[I.sp - 1].i32();
    I.sp -= 2;
    uint32_t addr = I.vals[I.sp - 1].i32() + m;
    Memory& mem = I.inst->memory;
    if (__builtin_expect(!mem.inBounds(addr, offset, 8), 0)) {
        I.vals[I.sp - 1] = Value::makeI32(addr);
        I.pc += 2;
        doTrap(I, TrapReason::MemoryOutOfBounds);
        return;
    }
    I.vals[I.sp - 1] = Value::makeF64(mem.read<double>(addr + offset));
    I.pc += 5;
}

// f64.load; f64.add — fold a loaded value into the accumulating TOS:
// [x, addr] -> [x + mem[addr]]. A bounds failure traps at the load,
// the window head, with nothing yet executed.
void
h_sop_f64_load_f64_add(Interp& I)
{
    uint32_t offset = I.code[I.pc + 2];
    uint32_t addr = I.vals[I.sp - 1].i32();
    Memory& mem = I.inst->memory;
    if (__builtin_expect(!mem.inBounds(addr, offset, 8), 0)) {
        doTrap(I, TrapReason::MemoryOutOfBounds);
        return;
    }
    double v = mem.read<double>(addr + offset);
    I.sp -= 1;
    I.vals[I.sp - 1] = Value::makeF64(I.vals[I.sp - 1].f64() + v);
    I.pc += 4;
}

// f64.load; f64.mul; f64.add — the stencil-kernel accumulate:
// [acc, x, addr] -> [acc + x * mem[addr]]. Operand order matches the
// singles exactly (x * v, then acc + m). A bounds failure traps at
// the load, the window head, with nothing yet executed.
void
h_sop_f64_load_mul_add(Interp& I)
{
    uint32_t offset = I.code[I.pc + 2];
    uint32_t addr = I.vals[I.sp - 1].i32();
    Memory& mem = I.inst->memory;
    if (__builtin_expect(!mem.inBounds(addr, offset, 8), 0)) {
        doTrap(I, TrapReason::MemoryOutOfBounds);
        return;
    }
    double m =
        I.vals[I.sp - 2].f64() * mem.read<double>(addr + offset);
    I.sp -= 2;
    I.vals[I.sp - 1] = Value::makeF64(I.vals[I.sp - 1].f64() + m);
    I.pc += 5;
}

// i32.const A; local.get B; i32.const C — three pushes, one dispatch
// (the crypto kernels' argument-staging idiom).
void
h_sop_const_get_const(Interp& I)
{
    I.vals[I.sp] = Value::makeI32(sext7(I.code[I.pc + 1]));
    I.vals[I.sp + 1] = I.vals[I.localsBase + I.code[I.pc + 3]];
    I.vals[I.sp + 2] = Value::makeI32(sext7(I.code[I.pc + 5]));
    I.sp += 3;
    I.pc += 6;
}

// local.set A; local.get B; local.get C
void
h_sop_set_get_get(Interp& I)
{
    I.vals[I.localsBase + I.code[I.pc + 1]] = I.vals[--I.sp];
    I.vals[I.sp] = I.vals[I.localsBase + I.code[I.pc + 3]];
    I.vals[I.sp + 1] = I.vals[I.localsBase + I.code[I.pc + 5]];
    I.sp += 2;
    I.pc += 6;
}

// local.get A; local.get B; i64.mul — the wide-limb multiply of the
// poly1305/blake kernels, operands straight from the locals.
void
h_sop_get_get_i64_mul(Interp& I)
{
    uint64_t a = I.vals[I.localsBase + I.code[I.pc + 1]].i64();
    uint64_t b = I.vals[I.localsBase + I.code[I.pc + 3]].i64();
    I.vals[I.sp++] = Value::makeI64(a * b);
    I.pc += 5;
}

// local.get A; local.get B; i32.and
void
h_sop_get_get_i32_and(Interp& I)
{
    uint32_t a = I.vals[I.localsBase + I.code[I.pc + 1]].i32();
    uint32_t b = I.vals[I.localsBase + I.code[I.pc + 3]].i32();
    I.vals[I.sp++] = Value::makeI32(a & b);
    I.pc += 5;
}

// local.get A; i32.const C; i32.sub
void
h_sop_get_const_i32_sub(Interp& I)
{
    uint32_t a = I.vals[I.localsBase + I.code[I.pc + 1]].i32();
    uint32_t c = static_cast<uint32_t>(sext7(I.code[I.pc + 3]));
    I.vals[I.sp++] = Value::makeI32(a - c);
    I.pc += 5;
}

// i32.xor; local.get B — fold the xor, then push the next operand.
void
h_sop_i32_xor_get(Interp& I)
{
    uint32_t b = I.vals[--I.sp].i32();
    I.vals[I.sp - 1] =
        Value::makeI32(I.vals[I.sp - 1].i32() ^ b);
    I.vals[I.sp++] = I.vals[I.localsBase + I.code[I.pc + 2]];
    I.pc += 3;
}

// i32.const C; i32.mul; i32.load — scale-and-load, the state-word
// indexing idiom: [x] -> [mem[x*C + offset]]. On a bounds failure the
// const and mul have executed and a load traps without popping: leave
// the product as TOS, set pc to the load, then trap.
void
h_sop_const_mul_i32_load(Interp& I)
{
    uint32_t offset = I.code[I.pc + 5];
    uint32_t c = static_cast<uint32_t>(sext7(I.code[I.pc + 1]));
    uint32_t addr = I.vals[I.sp - 1].i32() * c;
    Memory& mem = I.inst->memory;
    if (__builtin_expect(!mem.inBounds(addr, offset, 4), 0)) {
        I.vals[I.sp - 1] = Value::makeI32(addr);
        I.pc += 3;
        doTrap(I, TrapReason::MemoryOutOfBounds);
        return;
    }
    I.vals[I.sp - 1] =
        Value::makeI32(mem.read<uint32_t>(addr + offset));
    I.pc += 6;
}

// i32.mul; i32.add; i32.load / i64.load — the element-address
// computation plus the load, as h_sop_mul_add_f64_load but for the
// integer lane widths the crypto kernels use.
#define SOP_MUL_ADD_LOAD(NAME, CT, MAKE)                                \
    void h_sop_##NAME(Interp& I)                                        \
    {                                                                   \
        uint32_t offset = I.code[I.pc + 4];                             \
        uint32_t m = I.vals[I.sp - 2].i32() * I.vals[I.sp - 1].i32();   \
        I.sp -= 2;                                                      \
        uint32_t addr = I.vals[I.sp - 1].i32() + m;                     \
        Memory& mem = I.inst->memory;                                   \
        if (__builtin_expect(!mem.inBounds(addr, offset,                \
                                           sizeof(CT)), 0)) {           \
            I.vals[I.sp - 1] = Value::makeI32(addr);                    \
            I.pc += 2;                                                  \
            doTrap(I, TrapReason::MemoryOutOfBounds);                   \
            return;                                                     \
        }                                                               \
        CT raw = mem.read<CT>(addr + offset);                          \
        I.vals[I.sp - 1] = MAKE;                                        \
        I.pc += 5;                                                      \
    }

SOP_MUL_ADD_LOAD(mul_add_i32_load, uint32_t, Value::makeI32(raw))
SOP_MUL_ADD_LOAD(mul_add_i64_load, uint64_t, Value::makeI64(raw))

// i32.add; i64.load — as h_sop_i32_add_f64_load for the i64 lane.
void
h_sop_i32_add_i64_load(Interp& I)
{
    uint32_t offset = I.code[I.pc + 3];
    uint32_t b = I.vals[--I.sp].i32();
    uint32_t addr = I.vals[I.sp - 1].i32() + b;
    Memory& mem = I.inst->memory;
    if (__builtin_expect(!mem.inBounds(addr, offset, 8), 0)) {
        I.vals[I.sp - 1] = Value::makeI32(addr);
        I.pc += 1;
        doTrap(I, TrapReason::MemoryOutOfBounds);
        return;
    }
    I.vals[I.sp - 1] =
        Value::makeI64(mem.read<uint64_t>(addr + offset));
    I.pc += 4;
}

// i32.mul; local.get B; i32.store / i32.add; local.get B; i64.store —
// address arithmetic, the value push and the store in one handler:
// [x, y] -> mem[x OP y + offset] = B. A store pops both operands
// before its bounds check, so on failure the stack has shrunk by two
// and pc is the store's.
#define SOP_BIN_GET_STORE(NAME, EXPR, CT, GET)                          \
    void h_sop_##NAME(Interp& I)                                        \
    {                                                                   \
        uint32_t offset = I.code[I.pc + 5];                             \
        uint32_t x = I.vals[I.sp - 2].i32();                            \
        uint32_t y = I.vals[I.sp - 1].i32();                            \
        uint32_t addr = (EXPR);                                         \
        Value val = I.vals[I.localsBase + I.code[I.pc + 2]];            \
        I.sp -= 2;                                                      \
        Memory& mem = I.inst->memory;                                   \
        if (__builtin_expect(!mem.inBounds(addr, offset,                \
                                           sizeof(CT)), 0)) {           \
            I.pc += 3;                                                  \
            doTrap(I, TrapReason::MemoryOutOfBounds);                   \
            return;                                                     \
        }                                                               \
        mem.write<CT>(addr + offset, static_cast<CT>(GET));             \
        I.pc += 6;                                                      \
    }

SOP_BIN_GET_STORE(mul_get_i32_store, x * y, uint32_t, val.i32())
SOP_BIN_GET_STORE(add_get_i64_store, x + y, uint64_t, val.i64())

// local.get B; i64.mul / i64.add — fold a local into the TOS in
// place (the curve25519 field-arithmetic inner step).
void
h_sop_get_i64_mul(Interp& I)
{
    uint64_t b = I.vals[I.localsBase + I.code[I.pc + 1]].i64();
    I.vals[I.sp - 1] =
        Value::makeI64(I.vals[I.sp - 1].i64() * b);
    I.pc += 3;
}

void
h_sop_get_i64_add(Interp& I)
{
    uint64_t b = I.vals[I.localsBase + I.code[I.pc + 1]].i64();
    I.vals[I.sp - 1] =
        Value::makeI64(I.vals[I.sp - 1].i64() + b);
    I.pc += 3;
}

// local.get A; local.get B; i64.add / i64.sub
void
h_sop_get_get_i64_add(Interp& I)
{
    uint64_t a = I.vals[I.localsBase + I.code[I.pc + 1]].i64();
    uint64_t b = I.vals[I.localsBase + I.code[I.pc + 3]].i64();
    I.vals[I.sp++] = Value::makeI64(a + b);
    I.pc += 5;
}

void
h_sop_get_get_i64_sub(Interp& I)
{
    uint64_t a = I.vals[I.localsBase + I.code[I.pc + 1]].i64();
    uint64_t b = I.vals[I.localsBase + I.code[I.pc + 3]].i64();
    I.vals[I.sp++] = Value::makeI64(a - b);
    I.pc += 5;
}

// i64.mul; i64.const C — fold the multiply, then push the next
// constant (the limb-reduction chain's shape).
void
h_sop_i64_mul_const(Interp& I)
{
    uint64_t m = I.vals[I.sp - 2].i64() * I.vals[I.sp - 1].i64();
    I.vals[I.sp - 2] = Value::makeI64(m);
    I.vals[I.sp - 1] =
        Value::makeI64(static_cast<int64_t>(sext7(I.code[I.pc + 2])));
    I.pc += 3;
}

// i64.sub; i64.const C; i64.add — [a, b] -> [a - b + C], the carry
// borrow-adjust idiom, entirely in registers.
void
h_sop_i64_sub_const_add(Interp& I)
{
    uint64_t a = I.vals[I.sp - 2].i64();
    uint64_t b = I.vals[I.sp - 1].i64();
    uint64_t c =
        static_cast<uint64_t>(static_cast<int64_t>(sext7(I.code[I.pc + 2])));
    I.sp -= 1;
    I.vals[I.sp - 1] = Value::makeI64(a - b + c);
    I.pc += 4;
}

// local.get A; local.get B; i32.const C — three pushes, one
// dispatch (the operand-setup prefix of address arithmetic).
void
h_sop_get_get_const(Interp& I)
{
    I.vals[I.sp] = I.vals[I.localsBase + I.code[I.pc + 1]];
    I.vals[I.sp + 1] = I.vals[I.localsBase + I.code[I.pc + 3]];
    I.vals[I.sp + 2] =
        Value::makeI32(static_cast<uint32_t>(sext7(I.code[I.pc + 5])));
    I.sp += 3;
    I.pc += 6;
}

// local.get B; i32.mul; local.get C — fold the local into the TOS,
// then push the next operand: [x] -> [x*B, C].
void
h_sop_get_mul_get(Interp& I)
{
    uint32_t b = I.vals[I.localsBase + I.code[I.pc + 1]].i32();
    I.vals[I.sp - 1] =
        Value::makeI32(I.vals[I.sp - 1].i32() * b);
    I.vals[I.sp++] = I.vals[I.localsBase + I.code[I.pc + 4]];
    I.pc += 5;
}

// local.get A; i64.load; local.set B — a whole load statement:
// (local B) = mem[(local A) + offset], zero stack traffic. On a
// bounds failure the local.get has executed and a load traps without
// popping: push the address, set pc to the load, then trap.
void
h_sop_get_i64_load_set(Interp& I)
{
    uint32_t offset = I.code[I.pc + 4];
    Value a = I.vals[I.localsBase + I.code[I.pc + 1]];
    uint32_t addr = a.i32();
    Memory& mem = I.inst->memory;
    if (__builtin_expect(!mem.inBounds(addr, offset, 8), 0)) {
        I.vals[I.sp++] = a;
        I.pc += 2;
        doTrap(I, TrapReason::MemoryOutOfBounds);
        return;
    }
    I.vals[I.localsBase + I.code[I.pc + 6]] =
        Value::makeI64(mem.read<uint64_t>(addr + offset));
    I.pc += 7;
}

// local.get B; i32.add; i32.const C — fold the local into the TOS,
// then push the next constant: [x] -> [x+B, C].
void
h_sop_get_add_const(Interp& I)
{
    uint32_t b = I.vals[I.localsBase + I.code[I.pc + 1]].i32();
    I.vals[I.sp - 1] =
        Value::makeI32(I.vals[I.sp - 1].i32() + b);
    I.vals[I.sp++] =
        Value::makeI32(static_cast<uint32_t>(sext7(I.code[I.pc + 4])));
    I.pc += 5;
}

// local.get B; i32.store — the state-word writeback: the address is
// already on the stack, the value comes straight from the local. A
// store pops both operands before its bounds check, so on failure
// the stack has shrunk by one (the pushed value and the address both
// popped, the value was never on the stack) and pc is the store's.
void
h_sop_get_i32_store(Interp& I)
{
    uint32_t offset = I.code[I.pc + 4];
    uint32_t addr = I.vals[I.sp - 1].i32();
    Value val = I.vals[I.localsBase + I.code[I.pc + 1]];
    I.sp -= 1;
    Memory& mem = I.inst->memory;
    if (__builtin_expect(!mem.inBounds(addr, offset, 4), 0)) {
        I.pc += 2;
        doTrap(I, TrapReason::MemoryOutOfBounds);
        return;
    }
    mem.write<uint32_t>(addr + offset, val.i32());
    I.pc += 5;
}

// i32.const C; i32.mul; local.get B — scale the TOS, then push the
// next operand: [x] -> [x*C, B].
void
h_sop_const_mul_get(Interp& I)
{
    uint32_t c = static_cast<uint32_t>(sext7(I.code[I.pc + 1]));
    I.vals[I.sp - 1] =
        Value::makeI32(I.vals[I.sp - 1].i32() * c);
    I.vals[I.sp++] = I.vals[I.localsBase + I.code[I.pc + 4]];
    I.pc += 5;
}

// i32.add; i32.const C; i32.mul — [x, y] -> [(x + y) * C] (the
// row-major index-scale step).
void
h_sop_add_const_mul(Interp& I)
{
    uint32_t b = I.vals[--I.sp].i32();
    uint32_t c = static_cast<uint32_t>(sext7(I.code[I.pc + 2]));
    I.vals[I.sp - 1] =
        Value::makeI32((I.vals[I.sp - 1].i32() + b) * c);
    I.pc += 4;
}

// local.get B; i64.sub — fold the local into the TOS in place (the
// limb-difference step; the curve constants around it are multi-byte
// LEBs, so only this const-free core fuses).
void
h_sop_get_i64_sub(Interp& I)
{
    uint64_t b = I.vals[I.localsBase + I.code[I.pc + 1]].i64();
    I.vals[I.sp - 1] =
        Value::makeI64(I.vals[I.sp - 1].i64() - b);
    I.pc += 3;
}

// local.set A; local.get B; local.set C — the register-shuffle idiom
// between statements: one pop, one local-to-local copy.
void
h_sop_set_get_set(Interp& I)
{
    I.vals[I.localsBase + I.code[I.pc + 1]] = I.vals[--I.sp];
    I.vals[I.localsBase + I.code[I.pc + 5]] =
        I.vals[I.localsBase + I.code[I.pc + 3]];
    I.pc += 6;
}

// i32.ge_s; br_if — the loop-exit tail when the bound constant is a
// multi-byte LEB the quad patterns must reject: both operands come
// off the stack, so there is no immediate to constrain. The branch
// path is exactly h_br_if's (same side-table entry, the br_if's pc).
void
h_sop_i32_ge_s_brif(Interp& I)
{
    int32_t b = I.vals[--I.sp].i32s();
    int32_t a = I.vals[--I.sp].i32s();
    if (a >= b) {
        uint32_t from = I.pc + 1;
        applyBranch(I, (*I.branchSlots[from]));
        maybeOsr(I, I.pc, from);
    } else {
        I.pc += 3;
    }
}

// local.get A; i64.load — push a 64-bit lane. The follower is often a
// multi-byte i64.const mask, which stays a single; fusing the
// get+load pair is still one dispatch saved per lane touched.
void
h_sop_get_i64_load(Interp& I)
{
    uint32_t offset = I.code[I.pc + 4];
    uint32_t addr = I.vals[I.localsBase + I.code[I.pc + 1]].i32();
    Memory& mem = I.inst->memory;
    if (__builtin_expect(!mem.inBounds(addr, offset, 8), 0)) {
        // The get executed; the load traps with the address still the
        // TOS, exactly as the singles leave it.
        I.vals[I.sp++] = Value::makeI32(addr);
        I.pc += 2;
        doTrap(I, TrapReason::MemoryOutOfBounds);
        return;
    }
    I.vals[I.sp++] = Value::makeI64(mem.read<uint64_t>(addr + offset));
    I.pc += 5;
}

// i32.xor; local.set A; local.get B — the stream-cipher keystream
// idiom (xor a word into state, reload the next): net one slot popped
// and nothing else touches the stack.
void
h_sop_i32_xor_set_get(Interp& I)
{
    uint32_t b = I.vals[--I.sp].i32();
    uint32_t r = I.vals[--I.sp].i32() ^ b;
    I.vals[I.localsBase + I.code[I.pc + 2]] = Value::makeI32(r);
    I.vals[I.sp++] = I.vals[I.localsBase + I.code[I.pc + 4]];
    I.pc += 5;
}

// local.get B; i32.or — fold the local into the TOS in place.
void
h_sop_get_i32_or(Interp& I)
{
    uint32_t b = I.vals[I.localsBase + I.code[I.pc + 1]].i32();
    I.vals[I.sp - 1] =
        Value::makeI32(I.vals[I.sp - 1].i32() | b);
    I.pc += 3;
}

// local.get A; local.get B; i32.or — the attack-mask union
// (backtracking search kernels): one push, no intermediate traffic.
void
h_sop_get_get_i32_or(Interp& I)
{
    uint32_t a = I.vals[I.localsBase + I.code[I.pc + 1]].i32();
    uint32_t b = I.vals[I.localsBase + I.code[I.pc + 3]].i32();
    I.vals[I.sp++] = Value::makeI32(a | b);
    I.pc += 5;
}

// local.get A; local.get B; i32.eq — push the comparison result.
void
h_sop_get_get_i32_eq(Interp& I)
{
    uint32_t a = I.vals[I.localsBase + I.code[I.pc + 1]].i32();
    uint32_t b = I.vals[I.localsBase + I.code[I.pc + 3]].i32();
    I.vals[I.sp++] = Value::makeI32(a == b ? 1 : 0);
    I.pc += 5;
}

// local.get A; i32.eqz; br_if — branch when the local is zero; the
// operand never touches the stack. Branch path is h_br_if's (same
// side-table entry, the br_if's pc).
void
h_sop_get_eqz_brif(Interp& I)
{
    uint32_t a = I.vals[I.localsBase + I.code[I.pc + 1]].i32();
    if (a == 0) {
        uint32_t from = I.pc + 3;
        applyBranch(I, (*I.branchSlots[from]));
        maybeOsr(I, I.pc, from);
    } else {
        I.pc += 5;
    }
}

// i32.sub; i32.and; local.set A — [x, a, b] -> (local A) = x & (a-b),
// the occupancy-mask update, zero residual stack.
void
h_sop_sub_and_set(Interp& I)
{
    uint32_t b = I.vals[--I.sp].i32();
    uint32_t a = I.vals[--I.sp].i32();
    uint32_t x = I.vals[--I.sp].i32();
    I.vals[I.localsBase + I.code[I.pc + 3]] =
        Value::makeI32(x & (a - b));
    I.pc += 4;
}

// i32.add; local.set A; local.get B — finish one statement, start the
// next: (local A) = x + y, then push B.
void
h_sop_i32_add_set_get(Interp& I)
{
    uint32_t b = I.vals[--I.sp].i32();
    uint32_t a = I.vals[--I.sp].i32();
    I.vals[I.localsBase + I.code[I.pc + 2]] = Value::makeI32(a + b);
    I.vals[I.sp++] = I.vals[I.localsBase + I.code[I.pc + 4]];
    I.pc += 5;
}

// i32.const C; i32.mul; local.set A — (local A) = x * C.
void
h_sop_const_mul_set(Interp& I)
{
    uint32_t c = static_cast<uint32_t>(sext7(I.code[I.pc + 1]));
    uint32_t x = I.vals[--I.sp].i32();
    I.vals[I.localsBase + I.code[I.pc + 4]] = Value::makeI32(x * c);
    I.pc += 5;
}

// i32.const C; local.get A; local.get B — three pushes, one dispatch.
void
h_sop_const_get_get(Interp& I)
{
    I.vals[I.sp] =
        Value::makeI32(static_cast<uint32_t>(sext7(I.code[I.pc + 1])));
    I.vals[I.sp + 1] = I.vals[I.localsBase + I.code[I.pc + 3]];
    I.vals[I.sp + 2] = I.vals[I.localsBase + I.code[I.pc + 5]];
    I.sp += 3;
    I.pc += 6;
}

// local.set A; local.get B; i32.const C — finish one statement, set
// up the next operand pair.
void
h_sop_set_get_const(Interp& I)
{
    I.vals[I.localsBase + I.code[I.pc + 1]] = I.vals[--I.sp];
    I.vals[I.sp] = I.vals[I.localsBase + I.code[I.pc + 3]];
    I.vals[I.sp + 1] =
        Value::makeI32(static_cast<uint32_t>(sext7(I.code[I.pc + 5])));
    I.sp += 2;
    I.pc += 6;
}

// f64.load; i32.const C; local.get B — load an element, then set up
// the next address pair. A bounds failure traps at the load, the
// window head, with nothing yet executed.
void
h_sop_f64_load_const_get(Interp& I)
{
    uint32_t offset = I.code[I.pc + 2];
    uint32_t addr = I.vals[I.sp - 1].i32();
    Memory& mem = I.inst->memory;
    if (__builtin_expect(!mem.inBounds(addr, offset, 8), 0)) {
        doTrap(I, TrapReason::MemoryOutOfBounds);
        return;
    }
    I.vals[I.sp - 1] =
        Value::makeF64(mem.read<double>(addr + offset));
    I.vals[I.sp] =
        Value::makeI32(static_cast<uint32_t>(sext7(I.code[I.pc + 4])));
    I.vals[I.sp + 1] = I.vals[I.localsBase + I.code[I.pc + 6]];
    I.sp += 2;
    I.pc += 7;
}

// i32.mul; i32.add; local.get B — the index chain continues: [x, a,
// b] -> [x + a*b, B].
void
h_sop_mul_add_get(Interp& I)
{
    uint32_t m = I.vals[I.sp - 2].i32() * I.vals[I.sp - 1].i32();
    I.sp -= 2;
    I.vals[I.sp - 1] =
        Value::makeI32(I.vals[I.sp - 1].i32() + m);
    I.vals[I.sp++] = I.vals[I.localsBase + I.code[I.pc + 3]];
    I.pc += 4;
}

// local.get A; i32.const C; local.get B — three pushes, one dispatch.
void
h_sop_get_const_get(Interp& I)
{
    I.vals[I.sp] = I.vals[I.localsBase + I.code[I.pc + 1]];
    I.vals[I.sp + 1] =
        Value::makeI32(static_cast<uint32_t>(sext7(I.code[I.pc + 3])));
    I.vals[I.sp + 2] = I.vals[I.localsBase + I.code[I.pc + 5]];
    I.sp += 3;
    I.pc += 6;
}

// f64.add; local.set A; local.get B — finish the accumulate, start
// the next statement.
void
h_sop_f64_add_set_get(Interp& I)
{
    double b = I.vals[--I.sp].f64();
    double a = I.vals[--I.sp].f64();
    I.vals[I.localsBase + I.code[I.pc + 2]] = Value::makeF64(a + b);
    I.vals[I.sp++] = I.vals[I.localsBase + I.code[I.pc + 4]];
    I.pc += 5;
}

// local.get A; i32.const C; i32.mul; i32.add — [x] -> [x + A*C].
void
h_sop_get_const_mul_add(Interp& I)
{
    uint32_t a = I.vals[I.localsBase + I.code[I.pc + 1]].i32();
    uint32_t c = static_cast<uint32_t>(sext7(I.code[I.pc + 3]));
    I.vals[I.sp - 1] =
        Value::makeI32(I.vals[I.sp - 1].i32() + a * c);
    I.pc += 6;
}

// local.get A; i32.const C; i32.mul; local.get B; i32.add — the full
// row-major index computation x[A*C + B]: five instructions, one
// dispatch, one push.
void
h_sop_idx(Interp& I)
{
    uint32_t a = I.vals[I.localsBase + I.code[I.pc + 1]].i32();
    uint32_t c = static_cast<uint32_t>(sext7(I.code[I.pc + 3]));
    uint32_t b = I.vals[I.localsBase + I.code[I.pc + 6]].i32();
    I.vals[I.sp++] = Value::makeI32(a * c + b);
    I.pc += 8;
}

// SOP_IDX; f64.load — the whole indexed element read. On a bounds
// failure the five address instructions have executed and the load
// traps without popping: push the address, set pc to the load, trap.
void
h_sop_idx_f64_load(Interp& I)
{
    uint32_t a = I.vals[I.localsBase + I.code[I.pc + 1]].i32();
    uint32_t c = static_cast<uint32_t>(sext7(I.code[I.pc + 3]));
    uint32_t b = I.vals[I.localsBase + I.code[I.pc + 6]].i32();
    uint32_t offset = I.code[I.pc + 10];
    uint32_t addr = a * c + b;
    Memory& mem = I.inst->memory;
    if (__builtin_expect(!mem.inBounds(addr, offset, 8), 0)) {
        I.vals[I.sp++] = Value::makeI32(addr);
        I.pc += 8;
        doTrap(I, TrapReason::MemoryOutOfBounds);
        return;
    }
    I.vals[I.sp++] = Value::makeF64(mem.read<double>(addr + offset));
    I.pc += 11;
}

// ---------------------------------------------------------------------
// Probe handlers
// ---------------------------------------------------------------------

/**
 * Probe-path outcome: the byte to execute next (the instruction the
 * probed site covers) and the — possibly epoch-refreshed — dispatch
 * table pointer the loop should continue with.
 */
struct ProbeStep
{
    uint8_t op;
    const void* dispatch;
};

#if defined(__GNUC__) || defined(__clang__)
#define WIZPP_NOINLINE __attribute__((noinline))
#else
#define WIZPP_NOINLINE
#endif

/**
 * Out-of-line core of the local-probe handler: the interpreter tripped
 * over an OP_PROBE byte written by bytecode overwriting. Resolves the
 * site through the dense per-function index (two array loads, no
 * hashing), makes exactly one virtual call — the site's fused firing
 * entry — and reports the saved original instruction byte to execute.
 *
 * The caller must have checkpointed frame->pc/sp. Deliberately takes
 * no pointer into the caller's loop state: the threaded backend's
 * Interp stays register-allocatable because its address never escapes.
 */
WIZPP_NOINLINE ProbeStep
probeStep(Engine& eng, Frame* frame, FuncState* fs, uint32_t pc,
          const void* dispatch)
{
    ProbeManager& pm = eng.probes();
    // One dense lookup fetches the firing entry and the original byte.
    // The entry is borrowed, not shared: fireBorrowed's retire list
    // keeps it alive even if the firing probes re-fuse or remove this
    // very site mid-fire, without a per-fire atomic refcount.
    ProbeManager::BorrowedSite site = pm.borrowSite(fs->funcIndex, pc);
    if (!site.fired) {
        // The site vanished between opcode fetch and lookup — a global
        // probe firing at this instruction removed its local probes.
        // The code byte was restored with the site, so re-dispatch the
        // (now original) instruction.
        return {fs->code[pc], dispatch};
    }
    if (frame->skipProbeOncePc == pc) {
        // Resuming after a deopt at this site: probes already fired in
        // the compiled tier.
        frame->skipProbeOncePc = kNoPc;
        return {site.originalByte, dispatch};
    }
    uint64_t epoch = eng.instrumentationEpoch;
    pm.fireBorrowed(site, frame, fs, pc);
    // Epoch-gated refresh of the cached dispatch pointer (the fired
    // M-code may have toggled global probes); the invariant making
    // this sufficient is documented in docs/INTERPRETER.md.
    if (eng.instrumentationEpoch != epoch) {
        dispatch = eng.dispatchTable();
    }
    // Frame modifications are already visible to the interpreter (it
    // reads the shared value array), so it never deoptimizes; clear any
    // request the M-code raised so the driver does not bounce the frame.
    frame->deoptRequested = false;
    return {site.originalByte, dispatch};
}

/**
 * Out-of-line core of the global-probe stub: fires global probes and
 * reports the live opcode byte, which the caller dispatches through
 * the *normal* table/labels (so OP_PROBE bytes still reach the local
 * probes after global ones). Same no-escape contract as probeStep.
 */
WIZPP_NOINLINE ProbeStep
globalStep(Engine& eng, Frame* frame, FuncState* fs, uint32_t pc,
           const void* dispatch)
{
    // Read the opcode before firing: probes inserted at this very
    // location during the firing are deferred to its next occurrence.
    uint8_t op = fs->code[pc];
    if (frame->skipProbeOncePc == pc) {
        // Deopt resume: this instruction's probes (global and local)
        // already fired before the frame left the compiled tier.
        if (op != OP_PROBE) frame->skipProbeOncePc = kNoPc;
        return {op, dispatch};  // probeStep consumes the flag for locals
    }
    uint64_t epoch = eng.instrumentationEpoch;
    eng.probes().fireGlobal(frame, fs, pc);
    // Epoch-gated refresh, same as probeStep (docs/INTERPRETER.md);
    // the common case here is the last global probe removing itself.
    if (eng.instrumentationEpoch != epoch) {
        dispatch = eng.dispatchTable();
    }
    frame->deoptRequested = false;
    return {op, dispatch};
}

/** Local probe handler (table/switch backends). */
void
h_probe(Interp& I)
{
    I.sync();
    ProbeStep s = probeStep(I.eng, I.frame, I.fs, I.pc, I.dispatch);
    I.dispatch = s.dispatch;
    gNormalTable[s.op](I);
}

/** Global-probe stub (table/switch backends): every entry of the
    instrumented dispatch table points here. */
void
h_global_stub(Interp& I)
{
    I.sync();
    ProbeStep s = globalStep(I.eng, I.frame, I.fs, I.pc, I.dispatch);
    I.dispatch = s.dispatch;
    gNormalTable[s.op](I);
}

// ---------------------------------------------------------------------
// Opcode -> handler map (single source of truth for all backends)
// ---------------------------------------------------------------------

/**
 * X(OPCODE, name) for every opcode whose handler is h_<name>. Every
 * dispatch backend is generated from this one list, so the three
 * backends cannot drift apart. OP_PROBE is intentionally absent: its
 * handler may swap the dispatch table mid-loop, so each backend wires
 * it (and the global-probe stub) explicitly.
 */
#define WIZPP_FOR_EACH_OPCODE(X)                                        \
    X(OP_UNREACHABLE, unreachable)                                      \
    X(OP_NOP, nop)                                                      \
    X(OP_BLOCK, block)                                                  \
    X(OP_LOOP, loop)                                                    \
    X(OP_IF, if)                                                        \
    X(OP_ELSE, else)                                                    \
    X(OP_END, end)                                                      \
    X(OP_BR, br)                                                        \
    X(OP_BR_IF, br_if)                                                  \
    X(OP_BR_TABLE, br_table)                                            \
    X(OP_RETURN, return)                                                \
    X(OP_CALL, call)                                                    \
    X(OP_CALL_INDIRECT, call_indirect)                                  \
    X(OP_DROP, drop)                                                    \
    X(OP_SELECT, select)                                                \
    X(OP_LOCAL_GET, local_get)                                          \
    X(OP_LOCAL_SET, local_set)                                          \
    X(OP_LOCAL_TEE, local_tee)                                          \
    X(OP_GLOBAL_GET, global_get)                                        \
    X(OP_GLOBAL_SET, global_set)                                        \
    X(OP_I32_LOAD, i32_load)                                            \
    X(OP_I64_LOAD, i64_load)                                            \
    X(OP_F32_LOAD, f32_load)                                            \
    X(OP_F64_LOAD, f64_load)                                            \
    X(OP_I32_LOAD8_S, i32_load8_s)                                      \
    X(OP_I32_LOAD8_U, i32_load8_u)                                      \
    X(OP_I32_LOAD16_S, i32_load16_s)                                    \
    X(OP_I32_LOAD16_U, i32_load16_u)                                    \
    X(OP_I64_LOAD8_S, i64_load8_s)                                      \
    X(OP_I64_LOAD8_U, i64_load8_u)                                      \
    X(OP_I64_LOAD16_S, i64_load16_s)                                    \
    X(OP_I64_LOAD16_U, i64_load16_u)                                    \
    X(OP_I64_LOAD32_S, i64_load32_s)                                    \
    X(OP_I64_LOAD32_U, i64_load32_u)                                    \
    X(OP_I32_STORE, i32_store)                                          \
    X(OP_I64_STORE, i64_store)                                          \
    X(OP_F32_STORE, f32_store)                                          \
    X(OP_F64_STORE, f64_store)                                          \
    X(OP_I32_STORE8, i32_store8)                                        \
    X(OP_I32_STORE16, i32_store16)                                      \
    X(OP_I64_STORE8, i64_store8)                                        \
    X(OP_I64_STORE16, i64_store16)                                      \
    X(OP_I64_STORE32, i64_store32)                                      \
    X(OP_MEMORY_SIZE, memory_size)                                      \
    X(OP_MEMORY_GROW, memory_grow)                                      \
    X(OP_I32_CONST, i32_const)                                          \
    X(OP_I64_CONST, i64_const)                                          \
    X(OP_F32_CONST, f32_const)                                          \
    X(OP_F64_CONST, f64_const)                                          \
    X(OP_I32_EQZ, i32_eqz)                                              \
    X(OP_I32_EQ, i32_eq)                                                \
    X(OP_I32_NE, i32_ne)                                                \
    X(OP_I32_LT_S, i32_lt_s)                                            \
    X(OP_I32_LT_U, i32_lt_u)                                            \
    X(OP_I32_GT_S, i32_gt_s)                                            \
    X(OP_I32_GT_U, i32_gt_u)                                            \
    X(OP_I32_LE_S, i32_le_s)                                            \
    X(OP_I32_LE_U, i32_le_u)                                            \
    X(OP_I32_GE_S, i32_ge_s)                                            \
    X(OP_I32_GE_U, i32_ge_u)                                            \
    X(OP_I64_EQZ, i64_eqz)                                              \
    X(OP_I64_EQ, i64_eq)                                                \
    X(OP_I64_NE, i64_ne)                                                \
    X(OP_I64_LT_S, i64_lt_s)                                            \
    X(OP_I64_LT_U, i64_lt_u)                                            \
    X(OP_I64_GT_S, i64_gt_s)                                            \
    X(OP_I64_GT_U, i64_gt_u)                                            \
    X(OP_I64_LE_S, i64_le_s)                                            \
    X(OP_I64_LE_U, i64_le_u)                                            \
    X(OP_I64_GE_S, i64_ge_s)                                            \
    X(OP_I64_GE_U, i64_ge_u)                                            \
    X(OP_F32_EQ, f32_eq)                                                \
    X(OP_F32_NE, f32_ne)                                                \
    X(OP_F32_LT, f32_lt)                                                \
    X(OP_F32_GT, f32_gt)                                                \
    X(OP_F32_LE, f32_le)                                                \
    X(OP_F32_GE, f32_ge)                                                \
    X(OP_F64_EQ, f64_eq)                                                \
    X(OP_F64_NE, f64_ne)                                                \
    X(OP_F64_LT, f64_lt)                                                \
    X(OP_F64_GT, f64_gt)                                                \
    X(OP_F64_LE, f64_le)                                                \
    X(OP_F64_GE, f64_ge)                                                \
    X(OP_I32_CLZ, i32_clz)                                              \
    X(OP_I32_CTZ, i32_ctz)                                              \
    X(OP_I32_POPCNT, i32_popcnt)                                        \
    X(OP_I32_ADD, i32_add)                                              \
    X(OP_I32_SUB, i32_sub)                                              \
    X(OP_I32_MUL, i32_mul)                                              \
    X(OP_I32_DIV_S, i32_div_s)                                          \
    X(OP_I32_DIV_U, i32_div_u)                                          \
    X(OP_I32_REM_S, i32_rem_s)                                          \
    X(OP_I32_REM_U, i32_rem_u)                                          \
    X(OP_I32_AND, i32_and)                                              \
    X(OP_I32_OR, i32_or)                                                \
    X(OP_I32_XOR, i32_xor)                                              \
    X(OP_I32_SHL, i32_shl)                                              \
    X(OP_I32_SHR_S, i32_shr_s)                                          \
    X(OP_I32_SHR_U, i32_shr_u)                                          \
    X(OP_I32_ROTL, i32_rotl)                                            \
    X(OP_I32_ROTR, i32_rotr)                                            \
    X(OP_I64_CLZ, i64_clz)                                              \
    X(OP_I64_CTZ, i64_ctz)                                              \
    X(OP_I64_POPCNT, i64_popcnt)                                        \
    X(OP_I64_ADD, i64_add)                                              \
    X(OP_I64_SUB, i64_sub)                                              \
    X(OP_I64_MUL, i64_mul)                                              \
    X(OP_I64_DIV_S, i64_div_s)                                          \
    X(OP_I64_DIV_U, i64_div_u)                                          \
    X(OP_I64_REM_S, i64_rem_s)                                          \
    X(OP_I64_REM_U, i64_rem_u)                                          \
    X(OP_I64_AND, i64_and)                                              \
    X(OP_I64_OR, i64_or)                                                \
    X(OP_I64_XOR, i64_xor)                                              \
    X(OP_I64_SHL, i64_shl)                                              \
    X(OP_I64_SHR_S, i64_shr_s)                                          \
    X(OP_I64_SHR_U, i64_shr_u)                                          \
    X(OP_I64_ROTL, i64_rotl)                                            \
    X(OP_I64_ROTR, i64_rotr)                                            \
    X(OP_F32_ABS, f32_abs)                                              \
    X(OP_F32_NEG, f32_neg)                                              \
    X(OP_F32_CEIL, f32_ceil)                                            \
    X(OP_F32_FLOOR, f32_floor)                                          \
    X(OP_F32_TRUNC, f32_trunc)                                          \
    X(OP_F32_NEAREST, f32_nearest)                                      \
    X(OP_F32_SQRT, f32_sqrt)                                            \
    X(OP_F32_ADD, f32_add)                                              \
    X(OP_F32_SUB, f32_sub)                                              \
    X(OP_F32_MUL, f32_mul)                                              \
    X(OP_F32_DIV, f32_div)                                              \
    X(OP_F32_MIN, f32_min)                                              \
    X(OP_F32_MAX, f32_max)                                              \
    X(OP_F32_COPYSIGN, f32_copysign)                                    \
    X(OP_F64_ABS, f64_abs)                                              \
    X(OP_F64_NEG, f64_neg)                                              \
    X(OP_F64_CEIL, f64_ceil)                                            \
    X(OP_F64_FLOOR, f64_floor)                                          \
    X(OP_F64_TRUNC, f64_trunc)                                          \
    X(OP_F64_NEAREST, f64_nearest)                                      \
    X(OP_F64_SQRT, f64_sqrt)                                            \
    X(OP_F64_ADD, f64_add)                                              \
    X(OP_F64_SUB, f64_sub)                                              \
    X(OP_F64_MUL, f64_mul)                                              \
    X(OP_F64_DIV, f64_div)                                              \
    X(OP_F64_MIN, f64_min)                                              \
    X(OP_F64_MAX, f64_max)                                              \
    X(OP_F64_COPYSIGN, f64_copysign)                                    \
    X(OP_I32_WRAP_I64, i32_wrap_i64)                                    \
    X(OP_I32_TRUNC_F32_S, i32_trunc_f32_s)                              \
    X(OP_I32_TRUNC_F32_U, i32_trunc_f32_u)                              \
    X(OP_I32_TRUNC_F64_S, i32_trunc_f64_s)                              \
    X(OP_I32_TRUNC_F64_U, i32_trunc_f64_u)                              \
    X(OP_I64_EXTEND_I32_S, i64_extend_i32_s)                            \
    X(OP_I64_EXTEND_I32_U, i64_extend_i32_u)                            \
    X(OP_I64_TRUNC_F32_S, i64_trunc_f32_s)                              \
    X(OP_I64_TRUNC_F32_U, i64_trunc_f32_u)                              \
    X(OP_I64_TRUNC_F64_S, i64_trunc_f64_s)                              \
    X(OP_I64_TRUNC_F64_U, i64_trunc_f64_u)                              \
    X(OP_F32_CONVERT_I32_S, f32_convert_i32_s)                          \
    X(OP_F32_CONVERT_I32_U, f32_convert_i32_u)                          \
    X(OP_F32_CONVERT_I64_S, f32_convert_i64_s)                          \
    X(OP_F32_CONVERT_I64_U, f32_convert_i64_u)                          \
    X(OP_F32_DEMOTE_F64, f32_demote_f64)                                \
    X(OP_F64_CONVERT_I32_S, f64_convert_i32_s)                          \
    X(OP_F64_CONVERT_I32_U, f64_convert_i32_u)                          \
    X(OP_F64_CONVERT_I64_S, f64_convert_i64_s)                          \
    X(OP_F64_CONVERT_I64_U, f64_convert_i64_u)                          \
    X(OP_F64_PROMOTE_F32, f64_promote_f32)                              \
    X(OP_I32_REINTERPRET_F32, i32_reinterpret_f32)                      \
    X(OP_I64_REINTERPRET_F64, i64_reinterpret_f64)                      \
    X(OP_F32_REINTERPRET_I32, f32_reinterpret_i32)                      \
    X(OP_F64_REINTERPRET_I64, f64_reinterpret_i64)                      \
    X(OP_I32_EXTEND8_S, i32_extend8_s)                                  \
    X(OP_I32_EXTEND16_S, i32_extend16_s)                                \
    X(OP_I64_EXTEND8_S, i64_extend8_s)                                  \
    X(OP_I64_EXTEND16_S, i64_extend16_s)                                \
    X(OP_I64_EXTEND32_S, i64_extend32_s)                                \
    X(OP_PREFIX_FC, prefix_fc)

// ---------------------------------------------------------------------
// Dispatch table construction (the reference `table` backend's tables;
// the probe handlers also re-dispatch overwritten bytes through them)
// ---------------------------------------------------------------------

struct TableInit
{
    TableInit()
    {
        for (auto& h : gNormalTable) h = h_illegal;
        for (auto& h : gProbedTable) h = h_global_stub;
#define WIZPP_TABLE_SET(OP, NAME) gNormalTable[OP] = h_##NAME;
        WIZPP_FOR_EACH_OPCODE(WIZPP_TABLE_SET)
        WIZPP_FOR_EACH_SUPERINST(WIZPP_TABLE_SET)
#undef WIZPP_TABLE_SET
        gNormalTable[OP_PROBE] = h_probe;
    }
};

TableInit tableInit;

/** Shared tail of every backend loop: write back the live pc/sp. */
inline Signal
finishInterp(Interp& I)
{
    if (!I.eng.frames().empty() && I.signal != Signal::Trap &&
        &I.eng.frames().back() == I.frame) {
        I.sync();
    }
    return I.signal;
}

// ---------------------------------------------------------------------
// Backend: table (reference). One indirect call per instruction; the
// cached dispatch pointer is itself the handler table.
// ---------------------------------------------------------------------

Signal
runInterpreterTable(Engine& eng)
{
    Interp I(eng);
    I.loadTopFrame();
    while (!I.exit) {
        auto table = static_cast<OpHandler const*>(I.dispatch);
        table[I.dcode[I.pc]](I);
    }
    return finishInterp(I);
}

// ---------------------------------------------------------------------
// Backend: switch (portable fallback). The cached dispatch pointer is
// used only as the mode indicator.
// ---------------------------------------------------------------------

#if defined(__GNUC__) || defined(__clang__)
// Inline every handler body into the loop: the handlers must stay
// address-takable out-of-line functions for the table backend, so
// plain `inline` cannot do it.
#define WIZPP_FLATTEN __attribute__((flatten))
#else
#define WIZPP_FLATTEN
#endif

WIZPP_FLATTEN Signal
runInterpreterSwitch(Engine& eng)
{
    Interp I(eng);
    I.loadTopFrame();
    const void* probedTable = interpDispatchTable(DispatchMode::Probed);
    while (!I.exit) {
        if (I.dispatch == probedTable) {
            // Probed mode: the stub fires global probes, then executes
            // the instruction through the normal table.
            h_global_stub(I);
            continue;
        }
        switch (I.dcode[I.pc]) {
#define WIZPP_SWITCH_CASE(OP, NAME)                                     \
          case OP:                                                      \
            h_##NAME(I);                                                \
            break;
            WIZPP_FOR_EACH_OPCODE(WIZPP_SWITCH_CASE)
            WIZPP_FOR_EACH_SUPERINST(WIZPP_SWITCH_CASE)
#undef WIZPP_SWITCH_CASE
          case OP_PROBE:
            h_probe(I);
            break;
          default:
            h_illegal(I);
            break;
        }
    }
    return finishInterp(I);
}

// ---------------------------------------------------------------------
// Backend: threaded (computed goto, GCC/Clang labels-as-values). The
// handler bodies are inlined into this one translation-unit-local
// function; each handler tail loads the next label ("next-handler
// prefetch") before the exit check and jumps directly to it. Two
// label tables mirror the Normal/Probed dispatch tables; probe
// handlers may swap the engine's table mid-loop, so the two labels
// that consume instrumentation changes re-derive the local jump table
// from the epoch-refreshed cached pointer.
// ---------------------------------------------------------------------

#if defined(__GNUC__) || defined(__clang__)
#define WIZPP_HAS_COMPUTED_GOTO 1
#else
#define WIZPP_HAS_COMPUTED_GOTO 0
#endif

#if WIZPP_HAS_COMPUTED_GOTO

WIZPP_FLATTEN Signal
runInterpreterThreaded(Engine& eng)
{
    Interp I(eng);
    I.loadTopFrame();

    // Per-mode label tables, built on first entry (label addresses
    // are only visible inside this function, so no compile-time init
    // is possible). Each *engine* is single-threaded, but these
    // statics are per-process and an embedder may run independent
    // engines on different threads: double-checked locking makes the
    // one-time init safe (&&label cannot move into a lambda, so a
    // magic static is not an option).
    static const void* normalLabels[256];
    static const void* probedLabels[256];
    static std::atomic<bool> labelsReady{false};
    if (!labelsReady.load(std::memory_order_acquire)) {
        static std::mutex initMutex;
        std::lock_guard<std::mutex> lock(initMutex);
        if (!labelsReady.load(std::memory_order_relaxed)) {
            for (auto& l : normalLabels) l = &&L_illegal;
            for (auto& l : probedLabels) l = &&L_global_stub;
#define WIZPP_LABEL_SET(OP, NAME) normalLabels[OP] = &&L_##NAME;
            WIZPP_FOR_EACH_OPCODE(WIZPP_LABEL_SET)
            WIZPP_FOR_EACH_SUPERINST(WIZPP_LABEL_SET)
#undef WIZPP_LABEL_SET
            normalLabels[OP_PROBE] = &&L_probe;
            labelsReady.store(true, std::memory_order_release);
        }
    }

    const void* probedTable = interpDispatchTable(DispatchMode::Probed);
    const void* const* jt =
        I.dispatch == probedTable ? probedLabels : normalLabels;

// Load the next handler's label before the (unlikely) exit check so
// the target is resolved as early as possible. I.pc always addresses
// a live instruction byte even when a handler set the exit flag, so
// the speculative load is in bounds.
#define WIZPP_NEXT()                                                    \
    do {                                                                \
        const void* next_ = jt[I.dcode[I.pc]];                          \
        if (__builtin_expect(I.exit, 0)) goto L_done;                   \
        goto* next_;                                                    \
    } while (0)

// Re-derive the local jump table after a handler that may have
// swapped the engine's dispatch table (epoch-gated refresh of
// I.dispatch inside h_probe / h_global_stub).
#define WIZPP_RELOAD_JT()                                               \
    (jt = I.dispatch == probedTable ? probedLabels : normalLabels)

    goto* jt[I.dcode[I.pc]];

#define WIZPP_LABEL_BODY(OP, NAME)                                      \
    L_##NAME:                                                           \
        h_##NAME(I);                                                    \
        WIZPP_NEXT();
    WIZPP_FOR_EACH_OPCODE(WIZPP_LABEL_BODY)
    WIZPP_FOR_EACH_SUPERINST(WIZPP_LABEL_BODY)
#undef WIZPP_LABEL_BODY

// Threaded equivalents of the probe machinery: the out-of-line
// probeStep/globalStep cores fire the probes and hand back the byte
// to execute, which is dispatched through the *normal* label set
// (mirroring gNormalTable in the table backend), after re-deriving
// the mode jump table from the possibly-swapped dispatch pointer.
// Keeping &I out of these calls is what lets the compiler hold the
// loop state in registers.

L_probe: {
    I.sync();
    ProbeStep s = probeStep(I.eng, I.frame, I.fs, I.pc, I.dispatch);
    I.dispatch = s.dispatch;
    WIZPP_RELOAD_JT();
    goto* normalLabels[s.op];
}

L_global_stub: {
    I.sync();
    ProbeStep s = globalStep(I.eng, I.frame, I.fs, I.pc, I.dispatch);
    I.dispatch = s.dispatch;
    WIZPP_RELOAD_JT();
    goto* normalLabels[s.op];
}

L_illegal:
    h_illegal(I);
    WIZPP_NEXT();

L_done:
    return finishInterp(I);

#undef WIZPP_NEXT
#undef WIZPP_RELOAD_JT
}

#endif // WIZPP_HAS_COMPUTED_GOTO

} // namespace

const void*
interpDispatchTable(DispatchMode mode)
{
    return mode == DispatchMode::Probed
               ? static_cast<const void*>(gProbedTable)
               : static_cast<const void*>(gNormalTable);
}

bool
threadedDispatchSupported()
{
    return WIZPP_HAS_COMPUTED_GOTO != 0;
}

DispatchBackend
defaultDispatchBackend()
{
#if defined(WIZPP_DISPATCH_DEFAULT_TABLE)
    return DispatchBackend::Table;
#elif defined(WIZPP_DISPATCH_DEFAULT_SWITCH)
    return DispatchBackend::Switch;
#else
    // threaded requested (or nothing configured): fall back to the
    // portable switch loop when computed goto is unavailable.
    return threadedDispatchSupported() ? DispatchBackend::Threaded
                                       : DispatchBackend::Switch;
#endif
}

const char*
dispatchBackendName(DispatchBackend b)
{
    switch (b) {
      case DispatchBackend::Table: return "table";
      case DispatchBackend::Switch: return "switch";
      case DispatchBackend::Threaded: return "threaded";
    }
    return "?";
}

bool
parseDispatchBackend(const std::string& name, DispatchBackend* out)
{
    if (name == "table") *out = DispatchBackend::Table;
    else if (name == "switch") *out = DispatchBackend::Switch;
    else if (name == "threaded") *out = DispatchBackend::Threaded;
    else return false;
    return true;
}

Signal
runInterpreter(Engine& eng)
{
    switch (eng.config().dispatch) {
      case DispatchBackend::Table:
        return runInterpreterTable(eng);
      case DispatchBackend::Switch:
        return runInterpreterSwitch(eng);
      case DispatchBackend::Threaded:
#if WIZPP_HAS_COMPUTED_GOTO
        return runInterpreterThreaded(eng);
#else
        return runInterpreterSwitch(eng);
#endif
    }
    return runInterpreterSwitch(eng);
}

} // namespace wizpp
