#include "interp/interpreter.h"

#include <cmath>
#include <cstring>

#include "jit/jitcode.h"
#include "probes/frameaccessor.h"
#include "support/leb128.h"
#include "wasm/opcodes.h"

namespace wizpp {

namespace {
constexpr uint32_t kNoPc = 0xffffffffu;
}

/** Live interpreter state threaded through every handler. */
struct Interp
{
    Engine& eng;
    Value* vals = nullptr;
    const uint8_t* code = nullptr;
    uint32_t pc = 0;
    uint32_t sp = 0;           ///< absolute index into the value array
    Frame* frame = nullptr;
    FuncState* fs = nullptr;
    Instance* inst = nullptr;
    const void* dispatch = nullptr;
    Signal signal = Signal::Done;
    bool exit = false;

    explicit Interp(Engine& e) : eng(e)
    {
        vals = e.values().data();
        inst = &e.instance();
        dispatch = e.dispatchTable();
    }

    void
    loadTopFrame()
    {
        frame = &eng.frames().back();
        fs = frame->fs;
        code = fs->code.data();
        pc = frame->pc;
        sp = frame->sp;
    }

    void
    sync()
    {
        frame->pc = pc;
        frame->sp = sp;
    }
};

using OpHandler = void (*)(Interp&);

namespace {

OpHandler gNormalTable[256];
OpHandler gProbedTable[256];

inline void
doTrap(Interp& I, TrapReason r)
{
    I.sync();
    I.eng.setTrap(r);
    I.signal = Signal::Trap;
    I.exit = true;
}

inline uint32_t
readU32Imm(Interp& I, uint32_t at, size_t* len)
{
    auto r = decodeULEB<uint32_t>(I.code + at,
                                  I.code + I.fs->code.size());
    *len = r.length;
    return r.value;
}

// ---------------------------------------------------------------------
// Control flow
// ---------------------------------------------------------------------

/** Applies a resolved branch: collapse the operand stack and jump. */
inline void
applyBranch(Interp& I, const SideTableEntry& e)
{
    uint32_t dst = I.frame->stackStart + e.popTo;
    uint32_t srcBase = I.sp - e.valCount;
    for (uint32_t i = 0; i < e.valCount; i++) {
        I.vals[dst + i] = I.vals[srcBase + i];
    }
    I.sp = dst + e.valCount;
    I.pc = e.targetPc;
}

/**
 * Backedge hook: tier-up accounting and on-stack replacement into
 * compiled code at loop headers (Tiered mode only).
 */
inline void
maybeOsr(Interp& I, uint32_t targetPc, uint32_t fromPc)
{
    if (targetPc > fromPc) return;  // not a backedge
    Engine& eng = I.eng;
    const EngineConfig& cfg = eng.config();
    if (cfg.mode != ExecMode::Tiered || eng.interpreterOnly()) return;
    FuncState* fs = I.fs;
    if (!fs->jit) {
        if (++fs->hotness < cfg.tierUpThreshold) return;
        eng.compileFunction(fs->funcIndex);
        if (!fs->jit) return;
    }
    if (!cfg.osrAtLoopBackedge) return;
    uint32_t idx = fs->jit->indexOfPc(targetPc);
    if (idx == kNoJitIndex) return;
    I.sync();
    I.frame->tier = Tier::Jit;
    I.frame->jitEpoch = fs->jitEpoch;
    I.frame->jitResumeIdx = idx;
    eng.stats.osrEntries++;
    I.signal = Signal::TierSwitch;
    I.exit = true;
}

void
h_nop(Interp& I)
{
    I.pc += 1;
}

void
h_unreachable(Interp& I)
{
    doTrap(I, TrapReason::Unreachable);
}

void
h_block(Interp& I)
{
    I.pc += 2;  // opcode + blocktype byte
}

void
h_loop(Interp& I)
{
    I.pc += 2;
}

void
h_if(Interp& I)
{
    uint32_t cond = I.vals[--I.sp].i32();
    if (cond) {
        I.pc += 2;
    } else {
        applyBranch(I, I.fs->sideTable.branchAt(I.pc));
    }
}

void
h_else(Interp& I)
{
    // Reached only by falling out of a then-branch: skip to after `end`.
    applyBranch(I, I.fs->sideTable.branchAt(I.pc));
}

void
h_br(Interp& I)
{
    uint32_t from = I.pc;
    applyBranch(I, I.fs->sideTable.branchAt(I.pc));
    maybeOsr(I, I.pc, from);
}

void
h_br_if(Interp& I)
{
    uint32_t cond = I.vals[--I.sp].i32();
    if (cond) {
        uint32_t from = I.pc;
        applyBranch(I, I.fs->sideTable.branchAt(I.pc));
        maybeOsr(I, I.pc, from);
    } else {
        size_t len;
        readU32Imm(I, I.pc + 1, &len);
        I.pc += 1 + static_cast<uint32_t>(len);
    }
}

void
h_br_table(Interp& I)
{
    uint32_t idx = I.vals[--I.sp].i32();
    const auto& entries = I.fs->sideTable.brTableAt(I.pc);
    uint32_t n = static_cast<uint32_t>(entries.size()) - 1;  // last=default
    const SideTableEntry& e = entries[idx < n ? idx : n];
    uint32_t from = I.pc;
    applyBranch(I, e);
    maybeOsr(I, I.pc, from);
}

/** Pops the current frame; returns results to the caller. */
inline void
doReturn(Interp& I)
{
    uint32_t arity = I.fs->numResults;
    uint32_t lb = I.frame->localsBase;
    for (uint32_t i = 0; i < arity; i++) {
        I.vals[lb + i] = I.vals[I.sp - arity + i];
    }
    if (I.frame->accessor) {
        I.frame->accessor->invalidate();
        I.frame->accessor.reset();
    }
    auto& frames = I.eng.frames();
    frames.pop_back();
    if (frames.empty()) {
        I.sp = lb + arity;
        I.signal = Signal::Done;
        I.exit = true;
        return;
    }
    Frame& caller = frames.back();
    caller.sp = lb + arity;
    if (!I.eng.interpreterOnly() && caller.tier == Tier::Jit) {
        FuncState* cfs = caller.fs;
        if (cfs->jit && caller.jitEpoch == cfs->jitEpoch &&
            !caller.deoptRequested) {
            I.signal = Signal::TierSwitch;
            I.exit = true;
            return;
        }
        caller.tier = Tier::Interpreter;
        caller.deoptRequested = false;
        I.eng.stats.frameDeopts++;
    } else if (caller.tier == Tier::Jit) {
        // Interpreter-only (global probe) mode pins frames to the
        // interpreter without discarding compiled code (Section 4.1).
        caller.tier = Tier::Interpreter;
    }
    I.loadTopFrame();
}

void
h_return(Interp& I)
{
    doReturn(I);
}

void
h_end(Interp& I)
{
    if (I.pc + 1 == I.fs->code.size()) {
        doReturn(I);
    } else {
        I.pc += 1;
    }
}

/** Invokes a function (shared by call and call_indirect). */
inline void
doCall(Interp& I, uint32_t calleeIdx, uint32_t pcAfter)
{
    Engine& eng = I.eng;
    FuncState& callee = eng.funcState(calleeIdx);
    if (callee.decl->imported) {
        const HostFunc& hf = I.inst->hostFuncs[calleeIdx];
        uint32_t n = callee.numParams;
        std::vector<Value> args(I.vals + I.sp - n, I.vals + I.sp);
        I.sp -= n;
        std::vector<Value> results;
        I.sync();
        I.frame->pc = pcAfter;
        TrapReason t = hf.fn(args, &results);
        if (t != TrapReason::None) {
            doTrap(I, t);
            return;
        }
        for (const Value& v : results) I.vals[I.sp++] = v;
        I.pc = pcAfter;
        return;
    }

    // Sync the caller; its sp excludes the arguments, which become the
    // callee's first locals in place. Any pending skip-probe flag is
    // dead once the frame progresses past its resume instruction.
    uint32_t nparams = callee.numParams;
    uint32_t localsBase = I.sp - nparams;
    I.frame->pc = pcAfter;
    I.frame->sp = localsBase;
    I.frame->skipProbeOncePc = kNoPc;

    auto& frames = eng.frames();
    if (frames.size() >= eng.config().maxFrames) {
        doTrap(I, TrapReason::StackOverflow);
        return;
    }
    uint32_t stackStart = localsBase + callee.numLocals;
    if (stackStart + callee.maxOperand > eng.values().size()) {
        doTrap(I, TrapReason::StackOverflow);
        return;
    }

    // Tiering decision for the callee. Jit mode lazily recompiles code
    // invalidated by probe changes (Section 4.5).
    Tier tier = Tier::Interpreter;
    const EngineConfig& cfg = eng.config();
    if (!eng.interpreterOnly()) {
        if (!callee.jit) {
            if (cfg.mode == ExecMode::Jit) {
                eng.compileFunction(calleeIdx);
            } else if (cfg.mode == ExecMode::Tiered &&
                       ++callee.hotness >= cfg.tierUpThreshold) {
                eng.compileFunction(calleeIdx);
            }
        }
        if (callee.jit) tier = Tier::Jit;
    }

    frames.emplace_back();
    Frame& f = frames.back();
    f.fs = &callee;
    f.pc = 0;
    f.localsBase = localsBase;
    f.stackStart = stackStart;
    f.sp = stackStart;
    f.frameId = eng.nextFrameId();
    f.accessor = nullptr;  // clear accessor slot on entry (Section 2.3)
    f.tier = tier;
    f.jitEpoch = callee.jitEpoch;
    f.jitResumeIdx = 0;
    f.deoptRequested = false;
    f.skipProbeOncePc = kNoPc;

    // Zero the non-parameter locals with correctly-typed zeros.
    for (uint32_t i = nparams; i < callee.numLocals; i++) {
        I.vals[localsBase + i] = Value::zeroOf(callee.localTypes[i]);
    }

    if (tier == Tier::Jit) {
        I.signal = Signal::TierSwitch;
        I.exit = true;
        return;
    }
    I.loadTopFrame();
}

void
h_call(Interp& I)
{
    size_t len;
    uint32_t idx = readU32Imm(I, I.pc + 1, &len);
    doCall(I, idx, I.pc + 1 + static_cast<uint32_t>(len));
}

void
h_call_indirect(Interp& I)
{
    size_t len;
    uint32_t typeIdx = readU32Imm(I, I.pc + 1, &len);
    uint32_t pcAfter = I.pc + 1 + static_cast<uint32_t>(len) + 1;  // +table
    uint32_t slot = I.vals[--I.sp].i32();
    Table& table = I.inst->table;
    if (!table.inBounds(slot)) {
        doTrap(I, TrapReason::TableOutOfBounds);
        return;
    }
    uint32_t target = table.get(slot);
    if (target == kNullFuncIndex) {
        doTrap(I, TrapReason::UninitializedTableEntry);
        return;
    }
    if (I.eng.funcState(target).canonTypeId != I.eng.canonTypeId(typeIdx)) {
        doTrap(I, TrapReason::IndirectCallTypeMismatch);
        return;
    }
    doCall(I, target, pcAfter);
}

// ---------------------------------------------------------------------
// Parametric and variable instructions
// ---------------------------------------------------------------------

void
h_drop(Interp& I)
{
    --I.sp;
    I.pc += 1;
}

void
h_select(Interp& I)
{
    uint32_t cond = I.vals[--I.sp].i32();
    Value v2 = I.vals[--I.sp];
    Value v1 = I.vals[--I.sp];
    I.vals[I.sp++] = cond ? v1 : v2;
    I.pc += 1;
}

void
h_local_get(Interp& I)
{
    size_t len;
    uint32_t idx = readU32Imm(I, I.pc + 1, &len);
    I.vals[I.sp++] = I.vals[I.frame->localsBase + idx];
    I.pc += 1 + static_cast<uint32_t>(len);
}

void
h_local_set(Interp& I)
{
    size_t len;
    uint32_t idx = readU32Imm(I, I.pc + 1, &len);
    I.vals[I.frame->localsBase + idx] = I.vals[--I.sp];
    I.pc += 1 + static_cast<uint32_t>(len);
}

void
h_local_tee(Interp& I)
{
    size_t len;
    uint32_t idx = readU32Imm(I, I.pc + 1, &len);
    I.vals[I.frame->localsBase + idx] = I.vals[I.sp - 1];
    I.pc += 1 + static_cast<uint32_t>(len);
}

void
h_global_get(Interp& I)
{
    size_t len;
    uint32_t idx = readU32Imm(I, I.pc + 1, &len);
    I.vals[I.sp++] = I.inst->globals[idx].value;
    I.pc += 1 + static_cast<uint32_t>(len);
}

void
h_global_set(Interp& I)
{
    size_t len;
    uint32_t idx = readU32Imm(I, I.pc + 1, &len);
    I.inst->globals[idx].value = I.vals[--I.sp];
    I.pc += 1 + static_cast<uint32_t>(len);
}

// ---------------------------------------------------------------------
// Memory instructions
// ---------------------------------------------------------------------

/** Decodes a memarg (align, offset); returns the instruction length. */
inline uint32_t
readMemArg(Interp& I, uint32_t* offset)
{
    const uint8_t* base = I.code + I.pc + 1;
    const uint8_t* end = I.code + I.fs->code.size();
    auto a = decodeULEB<uint32_t>(base, end);
    auto o = decodeULEB<uint32_t>(base + a.length, end);
    *offset = o.value;
    return 1 + static_cast<uint32_t>(a.length + o.length);
}

#define MEM_LOAD(NAME, CT, MAKE)                                         \
    void h_##NAME(Interp& I)                                             \
    {                                                                    \
        uint32_t offset;                                                 \
        uint32_t len = readMemArg(I, &offset);                           \
        uint32_t addr = I.vals[I.sp - 1].i32();                          \
        Memory& mem = I.inst->memory;                                    \
        if (!mem.inBounds(addr, offset, sizeof(CT))) {                   \
            doTrap(I, TrapReason::MemoryOutOfBounds);                    \
            return;                                                      \
        }                                                                \
        CT raw = mem.read<CT>(addr + offset);                            \
        I.vals[I.sp - 1] = MAKE;                                         \
        I.pc += len;                                                     \
    }

MEM_LOAD(i32_load, uint32_t, Value::makeI32(raw))
MEM_LOAD(i64_load, uint64_t, Value::makeI64(raw))
MEM_LOAD(f32_load, float, Value::makeF32(raw))
MEM_LOAD(f64_load, double, Value::makeF64(raw))
MEM_LOAD(i32_load8_s, int8_t, Value::makeI32(static_cast<int32_t>(raw)))
MEM_LOAD(i32_load8_u, uint8_t, Value::makeI32(static_cast<uint32_t>(raw)))
MEM_LOAD(i32_load16_s, int16_t, Value::makeI32(static_cast<int32_t>(raw)))
MEM_LOAD(i32_load16_u, uint16_t, Value::makeI32(static_cast<uint32_t>(raw)))
MEM_LOAD(i64_load8_s, int8_t, Value::makeI64(static_cast<int64_t>(raw)))
MEM_LOAD(i64_load8_u, uint8_t, Value::makeI64(static_cast<uint64_t>(raw)))
MEM_LOAD(i64_load16_s, int16_t, Value::makeI64(static_cast<int64_t>(raw)))
MEM_LOAD(i64_load16_u, uint16_t, Value::makeI64(static_cast<uint64_t>(raw)))
MEM_LOAD(i64_load32_s, int32_t, Value::makeI64(static_cast<int64_t>(raw)))
MEM_LOAD(i64_load32_u, uint32_t, Value::makeI64(static_cast<uint64_t>(raw)))

#define MEM_STORE(NAME, CT, GET)                                         \
    void h_##NAME(Interp& I)                                             \
    {                                                                    \
        uint32_t offset;                                                 \
        uint32_t len = readMemArg(I, &offset);                           \
        Value val = I.vals[--I.sp];                                      \
        uint32_t addr = I.vals[--I.sp].i32();                            \
        Memory& mem = I.inst->memory;                                    \
        if (!mem.inBounds(addr, offset, sizeof(CT))) {                   \
            doTrap(I, TrapReason::MemoryOutOfBounds);                    \
            return;                                                      \
        }                                                                \
        mem.write<CT>(addr + offset, static_cast<CT>(GET));              \
        I.pc += len;                                                     \
    }

MEM_STORE(i32_store, uint32_t, val.i32())
MEM_STORE(i64_store, uint64_t, val.i64())
MEM_STORE(f32_store, float, val.f32())
MEM_STORE(f64_store, double, val.f64())
MEM_STORE(i32_store8, uint8_t, val.i32())
MEM_STORE(i32_store16, uint16_t, val.i32())
MEM_STORE(i64_store8, uint8_t, val.i64())
MEM_STORE(i64_store16, uint16_t, val.i64())
MEM_STORE(i64_store32, uint32_t, val.i64())

void
h_memory_size(Interp& I)
{
    I.vals[I.sp++] = Value::makeI32(I.inst->memory.pages());
    I.pc += 2;  // opcode + reserved byte
}

void
h_memory_grow(Interp& I)
{
    uint32_t delta = I.vals[I.sp - 1].i32();
    I.vals[I.sp - 1] = Value::makeI32(I.inst->memory.grow(delta));
    I.pc += 2;
}

// ---------------------------------------------------------------------
// Constants
// ---------------------------------------------------------------------

void
h_i32_const(Interp& I)
{
    auto r = decodeSLEB<int32_t>(I.code + I.pc + 1,
                                 I.code + I.fs->code.size());
    I.vals[I.sp++] = Value::makeI32(r.value);
    I.pc += 1 + static_cast<uint32_t>(r.length);
}

void
h_i64_const(Interp& I)
{
    auto r = decodeSLEB<int64_t>(I.code + I.pc + 1,
                                 I.code + I.fs->code.size());
    I.vals[I.sp++] = Value::makeI64(r.value);
    I.pc += 1 + static_cast<uint32_t>(r.length);
}

void
h_f32_const(Interp& I)
{
    uint32_t bits;
    std::memcpy(&bits, I.code + I.pc + 1, 4);
    I.vals[I.sp++] = Value{ValType::F32, bits};
    I.pc += 5;
}

void
h_f64_const(Interp& I)
{
    uint64_t bits;
    std::memcpy(&bits, I.code + I.pc + 1, 8);
    I.vals[I.sp++] = Value{ValType::F64, bits};
    I.pc += 9;
}

// ---------------------------------------------------------------------
// Numeric instructions
// ---------------------------------------------------------------------

#define UNOP(NAME, POPT, PUSH)                                           \
    void h_##NAME(Interp& I)                                             \
    {                                                                    \
        auto a = I.vals[I.sp - 1].POPT();                                \
        I.vals[I.sp - 1] = PUSH;                                         \
        I.pc += 1;                                                       \
    }

#define BINOP(NAME, POPT, PUSH)                                          \
    void h_##NAME(Interp& I)                                             \
    {                                                                    \
        auto b = I.vals[--I.sp].POPT();                                  \
        auto a = I.vals[I.sp - 1].POPT();                                \
        I.vals[I.sp - 1] = PUSH;                                         \
        I.pc += 1;                                                       \
    }

// i32 comparison
UNOP(i32_eqz, i32, Value::makeI32(uint32_t{a == 0}))
BINOP(i32_eq, i32, Value::makeI32(uint32_t{a == b}))
BINOP(i32_ne, i32, Value::makeI32(uint32_t{a != b}))
BINOP(i32_lt_s, i32s, Value::makeI32(uint32_t{a < b}))
BINOP(i32_lt_u, i32, Value::makeI32(uint32_t{a < b}))
BINOP(i32_gt_s, i32s, Value::makeI32(uint32_t{a > b}))
BINOP(i32_gt_u, i32, Value::makeI32(uint32_t{a > b}))
BINOP(i32_le_s, i32s, Value::makeI32(uint32_t{a <= b}))
BINOP(i32_le_u, i32, Value::makeI32(uint32_t{a <= b}))
BINOP(i32_ge_s, i32s, Value::makeI32(uint32_t{a >= b}))
BINOP(i32_ge_u, i32, Value::makeI32(uint32_t{a >= b}))

// i64 comparison
UNOP(i64_eqz, i64, Value::makeI32(uint32_t{a == 0}))
BINOP(i64_eq, i64, Value::makeI32(uint32_t{a == b}))
BINOP(i64_ne, i64, Value::makeI32(uint32_t{a != b}))
BINOP(i64_lt_s, i64s, Value::makeI32(uint32_t{a < b}))
BINOP(i64_lt_u, i64, Value::makeI32(uint32_t{a < b}))
BINOP(i64_gt_s, i64s, Value::makeI32(uint32_t{a > b}))
BINOP(i64_gt_u, i64, Value::makeI32(uint32_t{a > b}))
BINOP(i64_le_s, i64s, Value::makeI32(uint32_t{a <= b}))
BINOP(i64_le_u, i64, Value::makeI32(uint32_t{a <= b}))
BINOP(i64_ge_s, i64s, Value::makeI32(uint32_t{a >= b}))
BINOP(i64_ge_u, i64, Value::makeI32(uint32_t{a >= b}))

// float comparison
BINOP(f32_eq, f32, Value::makeI32(uint32_t{a == b}))
BINOP(f32_ne, f32, Value::makeI32(uint32_t{a != b}))
BINOP(f32_lt, f32, Value::makeI32(uint32_t{a < b}))
BINOP(f32_gt, f32, Value::makeI32(uint32_t{a > b}))
BINOP(f32_le, f32, Value::makeI32(uint32_t{a <= b}))
BINOP(f32_ge, f32, Value::makeI32(uint32_t{a >= b}))
BINOP(f64_eq, f64, Value::makeI32(uint32_t{a == b}))
BINOP(f64_ne, f64, Value::makeI32(uint32_t{a != b}))
BINOP(f64_lt, f64, Value::makeI32(uint32_t{a < b}))
BINOP(f64_gt, f64, Value::makeI32(uint32_t{a > b}))
BINOP(f64_le, f64, Value::makeI32(uint32_t{a <= b}))
BINOP(f64_ge, f64, Value::makeI32(uint32_t{a >= b}))

// i32 arithmetic
UNOP(i32_clz, i32, Value::makeI32(a ? uint32_t(__builtin_clz(a)) : 32u))
UNOP(i32_ctz, i32, Value::makeI32(a ? uint32_t(__builtin_ctz(a)) : 32u))
UNOP(i32_popcnt, i32, Value::makeI32(uint32_t(__builtin_popcount(a))))
BINOP(i32_add, i32, Value::makeI32(a + b))
BINOP(i32_sub, i32, Value::makeI32(a - b))
BINOP(i32_mul, i32, Value::makeI32(a * b))
BINOP(i32_and, i32, Value::makeI32(a & b))
BINOP(i32_or, i32, Value::makeI32(a | b))
BINOP(i32_xor, i32, Value::makeI32(a ^ b))
BINOP(i32_shl, i32, Value::makeI32(a << (b & 31)))
BINOP(i32_shr_u, i32, Value::makeI32(a >> (b & 31)))
BINOP(i32_shr_s, i32, Value::makeI32(
    uint32_t(static_cast<int32_t>(a) >> (b & 31))))
BINOP(i32_rotl, i32, Value::makeI32(
    (b & 31) ? ((a << (b & 31)) | (a >> (32 - (b & 31)))) : a))
BINOP(i32_rotr, i32, Value::makeI32(
    (b & 31) ? ((a >> (b & 31)) | (a << (32 - (b & 31)))) : a))

void
h_i32_div_s(Interp& I)
{
    int32_t b = I.vals[--I.sp].i32s();
    int32_t a = I.vals[I.sp - 1].i32s();
    if (b == 0) { doTrap(I, TrapReason::DivByZero); return; }
    if (a == INT32_MIN && b == -1) {
        doTrap(I, TrapReason::IntegerOverflow);
        return;
    }
    I.vals[I.sp - 1] = Value::makeI32(a / b);
    I.pc += 1;
}

void
h_i32_div_u(Interp& I)
{
    uint32_t b = I.vals[--I.sp].i32();
    uint32_t a = I.vals[I.sp - 1].i32();
    if (b == 0) { doTrap(I, TrapReason::DivByZero); return; }
    I.vals[I.sp - 1] = Value::makeI32(a / b);
    I.pc += 1;
}

void
h_i32_rem_s(Interp& I)
{
    int32_t b = I.vals[--I.sp].i32s();
    int32_t a = I.vals[I.sp - 1].i32s();
    if (b == 0) { doTrap(I, TrapReason::DivByZero); return; }
    int32_t r = (a == INT32_MIN && b == -1) ? 0 : a % b;
    I.vals[I.sp - 1] = Value::makeI32(r);
    I.pc += 1;
}

void
h_i32_rem_u(Interp& I)
{
    uint32_t b = I.vals[--I.sp].i32();
    uint32_t a = I.vals[I.sp - 1].i32();
    if (b == 0) { doTrap(I, TrapReason::DivByZero); return; }
    I.vals[I.sp - 1] = Value::makeI32(a % b);
    I.pc += 1;
}

// i64 arithmetic
UNOP(i64_clz, i64, Value::makeI64(a ? uint64_t(__builtin_clzll(a)) : 64u))
UNOP(i64_ctz, i64, Value::makeI64(a ? uint64_t(__builtin_ctzll(a)) : 64u))
UNOP(i64_popcnt, i64, Value::makeI64(uint64_t(__builtin_popcountll(a))))
BINOP(i64_add, i64, Value::makeI64(a + b))
BINOP(i64_sub, i64, Value::makeI64(a - b))
BINOP(i64_mul, i64, Value::makeI64(a * b))
BINOP(i64_and, i64, Value::makeI64(a & b))
BINOP(i64_or, i64, Value::makeI64(a | b))
BINOP(i64_xor, i64, Value::makeI64(a ^ b))
BINOP(i64_shl, i64, Value::makeI64(a << (b & 63)))
BINOP(i64_shr_u, i64, Value::makeI64(a >> (b & 63)))
BINOP(i64_shr_s, i64, Value::makeI64(
    uint64_t(static_cast<int64_t>(a) >> (b & 63))))
BINOP(i64_rotl, i64, Value::makeI64(
    (b & 63) ? ((a << (b & 63)) | (a >> (64 - (b & 63)))) : a))
BINOP(i64_rotr, i64, Value::makeI64(
    (b & 63) ? ((a >> (b & 63)) | (a << (64 - (b & 63)))) : a))

void
h_i64_div_s(Interp& I)
{
    int64_t b = I.vals[--I.sp].i64s();
    int64_t a = I.vals[I.sp - 1].i64s();
    if (b == 0) { doTrap(I, TrapReason::DivByZero); return; }
    if (a == INT64_MIN && b == -1) {
        doTrap(I, TrapReason::IntegerOverflow);
        return;
    }
    I.vals[I.sp - 1] = Value::makeI64(a / b);
    I.pc += 1;
}

void
h_i64_div_u(Interp& I)
{
    uint64_t b = I.vals[--I.sp].i64();
    uint64_t a = I.vals[I.sp - 1].i64();
    if (b == 0) { doTrap(I, TrapReason::DivByZero); return; }
    I.vals[I.sp - 1] = Value::makeI64(a / b);
    I.pc += 1;
}

void
h_i64_rem_s(Interp& I)
{
    int64_t b = I.vals[--I.sp].i64s();
    int64_t a = I.vals[I.sp - 1].i64s();
    if (b == 0) { doTrap(I, TrapReason::DivByZero); return; }
    int64_t r = (a == INT64_MIN && b == -1) ? 0 : a % b;
    I.vals[I.sp - 1] = Value::makeI64(r);
    I.pc += 1;
}

void
h_i64_rem_u(Interp& I)
{
    uint64_t b = I.vals[--I.sp].i64();
    uint64_t a = I.vals[I.sp - 1].i64();
    if (b == 0) { doTrap(I, TrapReason::DivByZero); return; }
    I.vals[I.sp - 1] = Value::makeI64(a % b);
    I.pc += 1;
}

// Float min/max with Wasm NaN semantics (either NaN -> NaN; -0 < +0).
template <typename F>
inline F
wasmMin(F a, F b)
{
    if (std::isnan(a) || std::isnan(b)) {
        return std::numeric_limits<F>::quiet_NaN();
    }
    if (a == b) return std::signbit(a) ? a : b;
    return a < b ? a : b;
}

template <typename F>
inline F
wasmMax(F a, F b)
{
    if (std::isnan(a) || std::isnan(b)) {
        return std::numeric_limits<F>::quiet_NaN();
    }
    if (a == b) return std::signbit(a) ? b : a;
    return a > b ? a : b;
}

// f32 arithmetic
UNOP(f32_abs, f32, Value::makeF32(std::fabs(a)))
UNOP(f32_neg, f32, Value::makeF32(-a))
UNOP(f32_ceil, f32, Value::makeF32(std::ceil(a)))
UNOP(f32_floor, f32, Value::makeF32(std::floor(a)))
UNOP(f32_trunc, f32, Value::makeF32(std::trunc(a)))
UNOP(f32_nearest, f32, Value::makeF32(std::nearbyintf(a)))
UNOP(f32_sqrt, f32, Value::makeF32(std::sqrt(a)))
BINOP(f32_add, f32, Value::makeF32(a + b))
BINOP(f32_sub, f32, Value::makeF32(a - b))
BINOP(f32_mul, f32, Value::makeF32(a * b))
BINOP(f32_div, f32, Value::makeF32(a / b))
BINOP(f32_min, f32, Value::makeF32(wasmMin(a, b)))
BINOP(f32_max, f32, Value::makeF32(wasmMax(a, b)))
BINOP(f32_copysign, f32, Value::makeF32(std::copysign(a, b)))

// f64 arithmetic
UNOP(f64_abs, f64, Value::makeF64(std::fabs(a)))
UNOP(f64_neg, f64, Value::makeF64(-a))
UNOP(f64_ceil, f64, Value::makeF64(std::ceil(a)))
UNOP(f64_floor, f64, Value::makeF64(std::floor(a)))
UNOP(f64_trunc, f64, Value::makeF64(std::trunc(a)))
UNOP(f64_nearest, f64, Value::makeF64(std::nearbyint(a)))
UNOP(f64_sqrt, f64, Value::makeF64(std::sqrt(a)))
BINOP(f64_add, f64, Value::makeF64(a + b))
BINOP(f64_sub, f64, Value::makeF64(a - b))
BINOP(f64_mul, f64, Value::makeF64(a * b))
BINOP(f64_div, f64, Value::makeF64(a / b))
BINOP(f64_min, f64, Value::makeF64(wasmMin(a, b)))
BINOP(f64_max, f64, Value::makeF64(wasmMax(a, b)))
BINOP(f64_copysign, f64, Value::makeF64(std::copysign(a, b)))

// Conversions.
UNOP(i32_wrap_i64, i64, Value::makeI32(static_cast<uint32_t>(a)))
UNOP(i64_extend_i32_s, i32s, Value::makeI64(static_cast<int64_t>(a)))
UNOP(i64_extend_i32_u, i32, Value::makeI64(static_cast<uint64_t>(a)))
UNOP(f32_convert_i32_s, i32s, Value::makeF32(static_cast<float>(a)))
UNOP(f32_convert_i32_u, i32, Value::makeF32(static_cast<float>(a)))
UNOP(f32_convert_i64_s, i64s, Value::makeF32(static_cast<float>(a)))
UNOP(f32_convert_i64_u, i64, Value::makeF32(static_cast<float>(a)))
UNOP(f32_demote_f64, f64, Value::makeF32(static_cast<float>(a)))
UNOP(f64_convert_i32_s, i32s, Value::makeF64(static_cast<double>(a)))
UNOP(f64_convert_i32_u, i32, Value::makeF64(static_cast<double>(a)))
UNOP(f64_convert_i64_s, i64s, Value::makeF64(static_cast<double>(a)))
UNOP(f64_convert_i64_u, i64, Value::makeF64(static_cast<double>(a)))
UNOP(f64_promote_f32, f32, Value::makeF64(static_cast<double>(a)))
UNOP(i32_reinterpret_f32, i32, Value(ValType::I32, a))
UNOP(i64_reinterpret_f64, i64, Value(ValType::I64, a))
UNOP(f32_reinterpret_i32, i32, Value(ValType::F32, a))
UNOP(f64_reinterpret_i64, i64, Value(ValType::F64, a))
UNOP(i32_extend8_s, i32,
     Value::makeI32(static_cast<int32_t>(static_cast<int8_t>(a))))
UNOP(i32_extend16_s, i32,
     Value::makeI32(static_cast<int32_t>(static_cast<int16_t>(a))))
UNOP(i64_extend8_s, i64,
     Value::makeI64(static_cast<int64_t>(static_cast<int8_t>(a))))
UNOP(i64_extend16_s, i64,
     Value::makeI64(static_cast<int64_t>(static_cast<int16_t>(a))))
UNOP(i64_extend32_s, i64,
     Value::makeI64(static_cast<int64_t>(static_cast<int32_t>(a))))

// Trapping float->int truncations.
#define TRUNC(NAME, POPT, IT, LO, HI, MAKE)                              \
    void h_##NAME(Interp& I)                                             \
    {                                                                    \
        double v = static_cast<double>(I.vals[I.sp - 1].POPT());         \
        if (std::isnan(v)) {                                             \
            doTrap(I, TrapReason::InvalidConversion);                    \
            return;                                                      \
        }                                                                \
        double t = std::trunc(v);                                        \
        if (!(t >= (LO) && t <= (HI))) {                                 \
            doTrap(I, TrapReason::IntegerOverflow);                      \
            return;                                                      \
        }                                                                \
        I.vals[I.sp - 1] = MAKE(static_cast<IT>(t));                     \
        I.pc += 1;                                                       \
    }

TRUNC(i32_trunc_f32_s, f32, int32_t, -2147483648.0, 2147483647.0,
      Value::makeI32)
TRUNC(i32_trunc_f32_u, f32, uint32_t, 0.0, 4294967295.0, Value::makeI32)
TRUNC(i32_trunc_f64_s, f64, int32_t, -2147483648.0, 2147483647.0,
      Value::makeI32)
TRUNC(i32_trunc_f64_u, f64, uint32_t, 0.0, 4294967295.0, Value::makeI32)

// i64 bounds: the upper bound 2^63-1 is not representable; use < 2^63.
#define TRUNC64(NAME, POPT, IT, CHECK, MAKE)                             \
    void h_##NAME(Interp& I)                                             \
    {                                                                    \
        double v = static_cast<double>(I.vals[I.sp - 1].POPT());         \
        if (std::isnan(v)) {                                             \
            doTrap(I, TrapReason::InvalidConversion);                    \
            return;                                                      \
        }                                                                \
        double t = std::trunc(v);                                        \
        if (!(CHECK)) {                                                  \
            doTrap(I, TrapReason::IntegerOverflow);                      \
            return;                                                      \
        }                                                                \
        I.vals[I.sp - 1] = MAKE(static_cast<IT>(t));                     \
        I.pc += 1;                                                       \
    }

TRUNC64(i64_trunc_f32_s, f32, int64_t,
        t >= -9223372036854775808.0 && t < 9223372036854775808.0,
        Value::makeI64)
TRUNC64(i64_trunc_f32_u, f32, uint64_t,
        t >= 0.0 && t < 18446744073709551616.0, Value::makeI64)
TRUNC64(i64_trunc_f64_s, f64, int64_t,
        t >= -9223372036854775808.0 && t < 9223372036854775808.0,
        Value::makeI64)
TRUNC64(i64_trunc_f64_u, f64, uint64_t,
        t >= 0.0 && t < 18446744073709551616.0, Value::makeI64)

// 0xFC-prefixed opcodes: saturating truncation + bulk memory.
template <typename IT>
inline IT
truncSat(double v, double lo, double hi)
{
    if (std::isnan(v)) return 0;
    double t = std::trunc(v);
    if (t < lo) return std::numeric_limits<IT>::min();
    if (t > hi) return std::numeric_limits<IT>::max();
    return static_cast<IT>(t);
}

void
h_prefix_fc(Interp& I)
{
    auto sub = decodeULEB<uint32_t>(I.code + I.pc + 1,
                                    I.code + I.fs->code.size());
    uint32_t len = 1 + static_cast<uint32_t>(sub.length);
    switch (sub.value) {
      case FC_I32_TRUNC_SAT_F32_S:
        I.vals[I.sp - 1] = Value::makeI32(truncSat<int32_t>(
            I.vals[I.sp - 1].f32(), -2147483648.0, 2147483647.0));
        break;
      case FC_I32_TRUNC_SAT_F32_U:
        I.vals[I.sp - 1] = Value::makeI32(truncSat<uint32_t>(
            I.vals[I.sp - 1].f32(), 0.0, 4294967295.0));
        break;
      case FC_I32_TRUNC_SAT_F64_S:
        I.vals[I.sp - 1] = Value::makeI32(truncSat<int32_t>(
            I.vals[I.sp - 1].f64(), -2147483648.0, 2147483647.0));
        break;
      case FC_I32_TRUNC_SAT_F64_U:
        I.vals[I.sp - 1] = Value::makeI32(truncSat<uint32_t>(
            I.vals[I.sp - 1].f64(), 0.0, 4294967295.0));
        break;
      case FC_I64_TRUNC_SAT_F32_S:
        I.vals[I.sp - 1] = Value::makeI64(truncSat<int64_t>(
            I.vals[I.sp - 1].f32(), -9223372036854775808.0,
            9223372036854775807.0));
        break;
      case FC_I64_TRUNC_SAT_F32_U:
        I.vals[I.sp - 1] = Value::makeI64(truncSat<uint64_t>(
            I.vals[I.sp - 1].f32(), 0.0, 18446744073709551615.0));
        break;
      case FC_I64_TRUNC_SAT_F64_S:
        I.vals[I.sp - 1] = Value::makeI64(truncSat<int64_t>(
            I.vals[I.sp - 1].f64(), -9223372036854775808.0,
            9223372036854775807.0));
        break;
      case FC_I64_TRUNC_SAT_F64_U:
        I.vals[I.sp - 1] = Value::makeI64(truncSat<uint64_t>(
            I.vals[I.sp - 1].f64(), 0.0, 18446744073709551615.0));
        break;
      case FC_MEMORY_FILL: {
        len += 1;  // memory index byte
        uint32_t n = I.vals[--I.sp].i32();
        uint32_t val = I.vals[--I.sp].i32();
        uint32_t dst = I.vals[--I.sp].i32();
        Memory& mem = I.inst->memory;
        if (!mem.inBounds(dst, 0, n)) {
            doTrap(I, TrapReason::MemoryOutOfBounds);
            return;
        }
        std::memset(mem.data() + dst, val & 0xff, n);
        break;
      }
      case FC_MEMORY_COPY: {
        len += 2;  // two memory index bytes
        uint32_t n = I.vals[--I.sp].i32();
        uint32_t src = I.vals[--I.sp].i32();
        uint32_t dst = I.vals[--I.sp].i32();
        Memory& mem = I.inst->memory;
        if (!mem.inBounds(dst, 0, n) || !mem.inBounds(src, 0, n)) {
            doTrap(I, TrapReason::MemoryOutOfBounds);
            return;
        }
        std::memmove(mem.data() + dst, mem.data() + src, n);
        break;
      }
      default:
        doTrap(I, TrapReason::Unreachable);
        return;
    }
    I.pc += len;
}

void
h_illegal(Interp& I)
{
    doTrap(I, TrapReason::Unreachable);
}

// ---------------------------------------------------------------------
// Probe handlers
// ---------------------------------------------------------------------

/**
 * Local probe handler: the interpreter tripped over an OP_PROBE byte
 * written by bytecode overwriting. Resolves the site through the dense
 * per-function index (two array loads, no hashing), makes exactly one
 * virtual call — the site's fused firing entry — and then executes the
 * saved original instruction.
 */
void
h_probe(Interp& I)
{
    uint32_t pc = I.pc;
    ProbeManager& pm = I.eng.probes();
    // One dense lookup fetches the firing entry and the original byte.
    // The shared_ptr snapshot keeps the entry alive even if the firing
    // probes re-fuse or remove this very site mid-fire.
    ProbeManager::SiteView site = pm.siteFor(I.fs->funcIndex, pc);
    if (!site.fired) {
        // The site vanished between opcode fetch and lookup — a global
        // probe firing at this instruction removed its local probes.
        // The code byte was restored with the site, so re-dispatch the
        // (now original) instruction.
        gNormalTable[I.code[pc]](I);
        return;
    }
    if (I.frame->skipProbeOncePc == pc) {
        // Resuming after a deopt at this site: probes already fired in
        // the compiled tier.
        I.frame->skipProbeOncePc = kNoPc;
        gNormalTable[site.originalByte](I);
        return;
    }
    I.sync();
    uint64_t epoch = I.eng.instrumentationEpoch;
    pm.fireSite(site, I.frame, I.fs, pc);
    // Invariant: every instrumentation change — probe insert/remove
    // (single or batch), deopt request — bumps instrumentationEpoch,
    // and the dispatch table is only ever swapped under such a bump
    // (onGlobalProbesChanged). So an unchanged epoch proves the cached
    // dispatch pointer is still current; on a bump, re-read it, because
    // the fired M-code may have toggled global probes this occurrence.
    if (I.eng.instrumentationEpoch != epoch) {
        I.dispatch = I.eng.dispatchTable();
    }
    // Frame modifications are already visible to the interpreter (it
    // reads the shared value array), so it never deoptimizes; clear any
    // request the M-code raised so the driver does not bounce the frame.
    I.frame->deoptRequested = false;
    gNormalTable[site.originalByte](I);
}

/**
 * Global-probe stub: every entry of the instrumented dispatch table
 * points here. Fires global probes, then dispatches the instruction
 * through the normal table (which handles OP_PROBE bytes, so local
 * probes still fire after global ones).
 */
void
h_global_stub(Interp& I)
{
    // Read the opcode before firing: probes inserted at this very
    // location during the firing are deferred to its next occurrence.
    uint8_t op = I.code[I.pc];
    if (I.frame->skipProbeOncePc == I.pc) {
        // Deopt resume: this instruction's probes (global and local)
        // already fired before the frame left the compiled tier.
        if (op != OP_PROBE) I.frame->skipProbeOncePc = kNoPc;
        gNormalTable[op](I);  // h_probe consumes the flag for locals
        return;
    }
    I.sync();
    uint64_t epoch = I.eng.instrumentationEpoch;
    I.eng.probes().fireGlobal(I.frame, I.fs, I.pc);
    // Same invariant as h_probe: dispatch-table swaps always ride an
    // instrumentationEpoch bump, so the cached pointer is only re-read
    // when the epoch moved (e.g. the last global probe removed itself
    // and the engine switched back to the normal table).
    if (I.eng.instrumentationEpoch != epoch) {
        I.dispatch = I.eng.dispatchTable();
    }
    I.frame->deoptRequested = false;
    gNormalTable[op](I);
}

// ---------------------------------------------------------------------
// Dispatch table construction
// ---------------------------------------------------------------------

struct TableInit
{
    TableInit()
    {
        for (auto& h : gNormalTable) h = h_illegal;
        for (auto& h : gProbedTable) h = h_global_stub;

        auto set = [&](uint8_t op, OpHandler h) { gNormalTable[op] = h; };

        set(OP_UNREACHABLE, h_unreachable);
        set(OP_NOP, h_nop);
        set(OP_BLOCK, h_block);
        set(OP_LOOP, h_loop);
        set(OP_IF, h_if);
        set(OP_ELSE, h_else);
        set(OP_END, h_end);
        set(OP_BR, h_br);
        set(OP_BR_IF, h_br_if);
        set(OP_BR_TABLE, h_br_table);
        set(OP_RETURN, h_return);
        set(OP_CALL, h_call);
        set(OP_CALL_INDIRECT, h_call_indirect);
        set(OP_DROP, h_drop);
        set(OP_SELECT, h_select);
        set(OP_LOCAL_GET, h_local_get);
        set(OP_LOCAL_SET, h_local_set);
        set(OP_LOCAL_TEE, h_local_tee);
        set(OP_GLOBAL_GET, h_global_get);
        set(OP_GLOBAL_SET, h_global_set);
        set(OP_I32_LOAD, h_i32_load);
        set(OP_I64_LOAD, h_i64_load);
        set(OP_F32_LOAD, h_f32_load);
        set(OP_F64_LOAD, h_f64_load);
        set(OP_I32_LOAD8_S, h_i32_load8_s);
        set(OP_I32_LOAD8_U, h_i32_load8_u);
        set(OP_I32_LOAD16_S, h_i32_load16_s);
        set(OP_I32_LOAD16_U, h_i32_load16_u);
        set(OP_I64_LOAD8_S, h_i64_load8_s);
        set(OP_I64_LOAD8_U, h_i64_load8_u);
        set(OP_I64_LOAD16_S, h_i64_load16_s);
        set(OP_I64_LOAD16_U, h_i64_load16_u);
        set(OP_I64_LOAD32_S, h_i64_load32_s);
        set(OP_I64_LOAD32_U, h_i64_load32_u);
        set(OP_I32_STORE, h_i32_store);
        set(OP_I64_STORE, h_i64_store);
        set(OP_F32_STORE, h_f32_store);
        set(OP_F64_STORE, h_f64_store);
        set(OP_I32_STORE8, h_i32_store8);
        set(OP_I32_STORE16, h_i32_store16);
        set(OP_I64_STORE8, h_i64_store8);
        set(OP_I64_STORE16, h_i64_store16);
        set(OP_I64_STORE32, h_i64_store32);
        set(OP_MEMORY_SIZE, h_memory_size);
        set(OP_MEMORY_GROW, h_memory_grow);
        set(OP_I32_CONST, h_i32_const);
        set(OP_I64_CONST, h_i64_const);
        set(OP_F32_CONST, h_f32_const);
        set(OP_F64_CONST, h_f64_const);
        set(OP_I32_EQZ, h_i32_eqz);
        set(OP_I32_EQ, h_i32_eq);
        set(OP_I32_NE, h_i32_ne);
        set(OP_I32_LT_S, h_i32_lt_s);
        set(OP_I32_LT_U, h_i32_lt_u);
        set(OP_I32_GT_S, h_i32_gt_s);
        set(OP_I32_GT_U, h_i32_gt_u);
        set(OP_I32_LE_S, h_i32_le_s);
        set(OP_I32_LE_U, h_i32_le_u);
        set(OP_I32_GE_S, h_i32_ge_s);
        set(OP_I32_GE_U, h_i32_ge_u);
        set(OP_I64_EQZ, h_i64_eqz);
        set(OP_I64_EQ, h_i64_eq);
        set(OP_I64_NE, h_i64_ne);
        set(OP_I64_LT_S, h_i64_lt_s);
        set(OP_I64_LT_U, h_i64_lt_u);
        set(OP_I64_GT_S, h_i64_gt_s);
        set(OP_I64_GT_U, h_i64_gt_u);
        set(OP_I64_LE_S, h_i64_le_s);
        set(OP_I64_LE_U, h_i64_le_u);
        set(OP_I64_GE_S, h_i64_ge_s);
        set(OP_I64_GE_U, h_i64_ge_u);
        set(OP_F32_EQ, h_f32_eq);
        set(OP_F32_NE, h_f32_ne);
        set(OP_F32_LT, h_f32_lt);
        set(OP_F32_GT, h_f32_gt);
        set(OP_F32_LE, h_f32_le);
        set(OP_F32_GE, h_f32_ge);
        set(OP_F64_EQ, h_f64_eq);
        set(OP_F64_NE, h_f64_ne);
        set(OP_F64_LT, h_f64_lt);
        set(OP_F64_GT, h_f64_gt);
        set(OP_F64_LE, h_f64_le);
        set(OP_F64_GE, h_f64_ge);
        set(OP_I32_CLZ, h_i32_clz);
        set(OP_I32_CTZ, h_i32_ctz);
        set(OP_I32_POPCNT, h_i32_popcnt);
        set(OP_I32_ADD, h_i32_add);
        set(OP_I32_SUB, h_i32_sub);
        set(OP_I32_MUL, h_i32_mul);
        set(OP_I32_DIV_S, h_i32_div_s);
        set(OP_I32_DIV_U, h_i32_div_u);
        set(OP_I32_REM_S, h_i32_rem_s);
        set(OP_I32_REM_U, h_i32_rem_u);
        set(OP_I32_AND, h_i32_and);
        set(OP_I32_OR, h_i32_or);
        set(OP_I32_XOR, h_i32_xor);
        set(OP_I32_SHL, h_i32_shl);
        set(OP_I32_SHR_S, h_i32_shr_s);
        set(OP_I32_SHR_U, h_i32_shr_u);
        set(OP_I32_ROTL, h_i32_rotl);
        set(OP_I32_ROTR, h_i32_rotr);
        set(OP_I64_CLZ, h_i64_clz);
        set(OP_I64_CTZ, h_i64_ctz);
        set(OP_I64_POPCNT, h_i64_popcnt);
        set(OP_I64_ADD, h_i64_add);
        set(OP_I64_SUB, h_i64_sub);
        set(OP_I64_MUL, h_i64_mul);
        set(OP_I64_DIV_S, h_i64_div_s);
        set(OP_I64_DIV_U, h_i64_div_u);
        set(OP_I64_REM_S, h_i64_rem_s);
        set(OP_I64_REM_U, h_i64_rem_u);
        set(OP_I64_AND, h_i64_and);
        set(OP_I64_OR, h_i64_or);
        set(OP_I64_XOR, h_i64_xor);
        set(OP_I64_SHL, h_i64_shl);
        set(OP_I64_SHR_S, h_i64_shr_s);
        set(OP_I64_SHR_U, h_i64_shr_u);
        set(OP_I64_ROTL, h_i64_rotl);
        set(OP_I64_ROTR, h_i64_rotr);
        set(OP_F32_ABS, h_f32_abs);
        set(OP_F32_NEG, h_f32_neg);
        set(OP_F32_CEIL, h_f32_ceil);
        set(OP_F32_FLOOR, h_f32_floor);
        set(OP_F32_TRUNC, h_f32_trunc);
        set(OP_F32_NEAREST, h_f32_nearest);
        set(OP_F32_SQRT, h_f32_sqrt);
        set(OP_F32_ADD, h_f32_add);
        set(OP_F32_SUB, h_f32_sub);
        set(OP_F32_MUL, h_f32_mul);
        set(OP_F32_DIV, h_f32_div);
        set(OP_F32_MIN, h_f32_min);
        set(OP_F32_MAX, h_f32_max);
        set(OP_F32_COPYSIGN, h_f32_copysign);
        set(OP_F64_ABS, h_f64_abs);
        set(OP_F64_NEG, h_f64_neg);
        set(OP_F64_CEIL, h_f64_ceil);
        set(OP_F64_FLOOR, h_f64_floor);
        set(OP_F64_TRUNC, h_f64_trunc);
        set(OP_F64_NEAREST, h_f64_nearest);
        set(OP_F64_SQRT, h_f64_sqrt);
        set(OP_F64_ADD, h_f64_add);
        set(OP_F64_SUB, h_f64_sub);
        set(OP_F64_MUL, h_f64_mul);
        set(OP_F64_DIV, h_f64_div);
        set(OP_F64_MIN, h_f64_min);
        set(OP_F64_MAX, h_f64_max);
        set(OP_F64_COPYSIGN, h_f64_copysign);
        set(OP_I32_WRAP_I64, h_i32_wrap_i64);
        set(OP_I32_TRUNC_F32_S, h_i32_trunc_f32_s);
        set(OP_I32_TRUNC_F32_U, h_i32_trunc_f32_u);
        set(OP_I32_TRUNC_F64_S, h_i32_trunc_f64_s);
        set(OP_I32_TRUNC_F64_U, h_i32_trunc_f64_u);
        set(OP_I64_EXTEND_I32_S, h_i64_extend_i32_s);
        set(OP_I64_EXTEND_I32_U, h_i64_extend_i32_u);
        set(OP_I64_TRUNC_F32_S, h_i64_trunc_f32_s);
        set(OP_I64_TRUNC_F32_U, h_i64_trunc_f32_u);
        set(OP_I64_TRUNC_F64_S, h_i64_trunc_f64_s);
        set(OP_I64_TRUNC_F64_U, h_i64_trunc_f64_u);
        set(OP_F32_CONVERT_I32_S, h_f32_convert_i32_s);
        set(OP_F32_CONVERT_I32_U, h_f32_convert_i32_u);
        set(OP_F32_CONVERT_I64_S, h_f32_convert_i64_s);
        set(OP_F32_CONVERT_I64_U, h_f32_convert_i64_u);
        set(OP_F32_DEMOTE_F64, h_f32_demote_f64);
        set(OP_F64_CONVERT_I32_S, h_f64_convert_i32_s);
        set(OP_F64_CONVERT_I32_U, h_f64_convert_i32_u);
        set(OP_F64_CONVERT_I64_S, h_f64_convert_i64_s);
        set(OP_F64_CONVERT_I64_U, h_f64_convert_i64_u);
        set(OP_F64_PROMOTE_F32, h_f64_promote_f32);
        set(OP_I32_REINTERPRET_F32, h_i32_reinterpret_f32);
        set(OP_I64_REINTERPRET_F64, h_i64_reinterpret_f64);
        set(OP_F32_REINTERPRET_I32, h_f32_reinterpret_i32);
        set(OP_F64_REINTERPRET_I64, h_f64_reinterpret_i64);
        set(OP_I32_EXTEND8_S, h_i32_extend8_s);
        set(OP_I32_EXTEND16_S, h_i32_extend16_s);
        set(OP_I64_EXTEND8_S, h_i64_extend8_s);
        set(OP_I64_EXTEND16_S, h_i64_extend16_s);
        set(OP_I64_EXTEND32_S, h_i64_extend32_s);
        set(OP_PREFIX_FC, h_prefix_fc);
        set(OP_PROBE, h_probe);
    }
};

TableInit tableInit;

} // namespace

const void*
interpNormalTable()
{
    return static_cast<const void*>(gNormalTable);
}

const void*
interpProbedTable()
{
    return static_cast<const void*>(gProbedTable);
}

Signal
runInterpreter(Engine& eng)
{
    Interp I(eng);
    I.loadTopFrame();
    while (!I.exit) {
        auto table = static_cast<OpHandler const*>(I.dispatch);
        table[I.code[I.pc]](I);
    }
    if (!eng.frames().empty() && I.signal != Signal::Trap &&
        &eng.frames().back() == I.frame) {
        I.sync();
    }
    return I.signal;
}

} // namespace wizpp
