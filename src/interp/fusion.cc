#include "interp/fusion.h"

#include <algorithm>

#include "engine/frame.h"
#include "wasm/decoder.h"
#include "wasm/opcodes.h"

namespace wizpp {

namespace {

/**
 * One fusion pattern: the opcode sequence of a window. Patterns are
 * matched greedily (longest match wins at each head pc); the handler
 * offsets in src/interp/interpreter.cc assume every immediate inside
 * a window is a single LEB byte, which the matcher enforces.
 */
struct Pattern
{
    uint8_t sop;
    uint8_t n;
    uint8_t ops[6];
};

const Pattern kPatterns[] = {
    // Mined from the fig6 corpus (scripts/mine_superinsts.py over
    // `wizeng --profile-pairs` reports); see the ranking comments in
    // fusion.h. Quads first only by convention; the matcher picks the
    // longest match regardless of order.
    {SOP_IDX_F64_LOAD, 6,
     {OP_LOCAL_GET, OP_I32_CONST, OP_I32_MUL, OP_LOCAL_GET,
      OP_I32_ADD, OP_F64_LOAD}},
    {SOP_IDX, 5,
     {OP_LOCAL_GET, OP_I32_CONST, OP_I32_MUL, OP_LOCAL_GET,
      OP_I32_ADD}},
    {SOP_GET_CONST_MUL_ADD, 4,
     {OP_LOCAL_GET, OP_I32_CONST, OP_I32_MUL, OP_I32_ADD}},
    {SOP_GET_INC_SET, 4,
     {OP_LOCAL_GET, OP_I32_CONST, OP_I32_ADD, OP_LOCAL_SET}},
    {SOP_GET_CONST_GE_S_BRIF, 4,
     {OP_LOCAL_GET, OP_I32_CONST, OP_I32_GE_S, OP_BR_IF}},
    {SOP_GET_GET_GE_S_BRIF, 4,
     {OP_LOCAL_GET, OP_LOCAL_GET, OP_I32_GE_S, OP_BR_IF}},
    {SOP_GET_GET_GET, 3, {OP_LOCAL_GET, OP_LOCAL_GET, OP_LOCAL_GET}},
    {SOP_CONST_GET_CONST, 3,
     {OP_I32_CONST, OP_LOCAL_GET, OP_I32_CONST}},
    {SOP_SET_GET_GET, 3, {OP_LOCAL_SET, OP_LOCAL_GET, OP_LOCAL_GET}},
    {SOP_GET_GET_I64_MUL, 3, {OP_LOCAL_GET, OP_LOCAL_GET, OP_I64_MUL}},
    {SOP_GET_GET_I32_AND, 3, {OP_LOCAL_GET, OP_LOCAL_GET, OP_I32_AND}},
    {SOP_GET_CONST_I32_SUB, 3,
     {OP_LOCAL_GET, OP_I32_CONST, OP_I32_SUB}},
    {SOP_CONST_MUL_I32_LOAD, 3,
     {OP_I32_CONST, OP_I32_MUL, OP_I32_LOAD}},
    {SOP_MUL_ADD_I32_LOAD, 3, {OP_I32_MUL, OP_I32_ADD, OP_I32_LOAD}},
    {SOP_MUL_ADD_I64_LOAD, 3, {OP_I32_MUL, OP_I32_ADD, OP_I64_LOAD}},
    {SOP_MUL_GET_I32_STORE, 3,
     {OP_I32_MUL, OP_LOCAL_GET, OP_I32_STORE}},
    {SOP_ADD_GET_I64_STORE, 3,
     {OP_I32_ADD, OP_LOCAL_GET, OP_I64_STORE}},
    {SOP_GET_GET_I64_ADD, 3, {OP_LOCAL_GET, OP_LOCAL_GET, OP_I64_ADD}},
    {SOP_GET_GET_I64_SUB, 3, {OP_LOCAL_GET, OP_LOCAL_GET, OP_I64_SUB}},
    {SOP_I64_SUB_CONST_ADD, 3, {OP_I64_SUB, OP_I64_CONST, OP_I64_ADD}},
    {SOP_GET_GET_CONST, 3,
     {OP_LOCAL_GET, OP_LOCAL_GET, OP_I32_CONST}},
    {SOP_GET_MUL_GET, 3, {OP_LOCAL_GET, OP_I32_MUL, OP_LOCAL_GET}},
    {SOP_GET_ADD_CONST, 3, {OP_LOCAL_GET, OP_I32_ADD, OP_I32_CONST}},
    {SOP_ADD_CONST_MUL, 3, {OP_I32_ADD, OP_I32_CONST, OP_I32_MUL}},
    {SOP_SET_GET_SET, 3, {OP_LOCAL_SET, OP_LOCAL_GET, OP_LOCAL_SET}},
    {SOP_GET_I64_LOAD_SET, 3,
     {OP_LOCAL_GET, OP_I64_LOAD, OP_LOCAL_SET}},
    {SOP_CONST_MUL_GET, 3, {OP_I32_CONST, OP_I32_MUL, OP_LOCAL_GET}},
    {SOP_GET_GET_I32_MUL, 3, {OP_LOCAL_GET, OP_LOCAL_GET, OP_I32_MUL}},
    {SOP_GET_CONST_I32_ADD, 3, {OP_LOCAL_GET, OP_I32_CONST, OP_I32_ADD}},
    {SOP_GET_CONST_I32_MUL, 3, {OP_LOCAL_GET, OP_I32_CONST, OP_I32_MUL}},
    {SOP_CONST_I32_MUL_ADD, 3, {OP_I32_CONST, OP_I32_MUL, OP_I32_ADD}},
    {SOP_MUL_GET_ADD, 3, {OP_I32_MUL, OP_LOCAL_GET, OP_I32_ADD}},
    {SOP_CONST_ADD_SET, 3, {OP_I32_CONST, OP_I32_ADD, OP_LOCAL_SET}},
    {SOP_MUL_ADD_F64_LOAD, 3, {OP_I32_MUL, OP_I32_ADD, OP_F64_LOAD}},
    {SOP_F64_MUL_ADD_SET, 3, {OP_F64_MUL, OP_F64_ADD, OP_LOCAL_SET}},
    {SOP_F64_LOAD_MUL_ADD, 3, {OP_F64_LOAD, OP_F64_MUL, OP_F64_ADD}},
    {SOP_GET_GET, 2, {OP_LOCAL_GET, OP_LOCAL_GET}},
    {SOP_GET_CONST, 2, {OP_LOCAL_GET, OP_I32_CONST}},
    {SOP_CONST_GET, 2, {OP_I32_CONST, OP_LOCAL_GET}},
    {SOP_SET_GET, 2, {OP_LOCAL_SET, OP_LOCAL_GET}},
    {SOP_CONST_I32_ADD, 2, {OP_I32_CONST, OP_I32_ADD}},
    {SOP_CONST_I32_MUL, 2, {OP_I32_CONST, OP_I32_MUL}},
    {SOP_I32_MUL_ADD, 2, {OP_I32_MUL, OP_I32_ADD}},
    {SOP_ADD_CONST, 2, {OP_I32_ADD, OP_I32_CONST}},
    {SOP_I32_ADD_SET, 2, {OP_I32_ADD, OP_LOCAL_SET}},
    {SOP_GET_I32_ADD, 2, {OP_LOCAL_GET, OP_I32_ADD}},
    {SOP_F64_MUL_ADD, 2, {OP_F64_MUL, OP_F64_ADD}},
    {SOP_F64_ADD_SET, 2, {OP_F64_ADD, OP_LOCAL_SET}},
    {SOP_I32_ADD_F64_LOAD, 2, {OP_I32_ADD, OP_F64_LOAD}},
    {SOP_F64_LOAD_F64_ADD, 2, {OP_F64_LOAD, OP_F64_ADD}},
    {SOP_I32_XOR_GET, 2, {OP_I32_XOR, OP_LOCAL_GET}},
    {SOP_I32_ADD_I64_LOAD, 2, {OP_I32_ADD, OP_I64_LOAD}},
    {SOP_GET_I64_MUL, 2, {OP_LOCAL_GET, OP_I64_MUL}},
    {SOP_GET_I64_ADD, 2, {OP_LOCAL_GET, OP_I64_ADD}},
    {SOP_I64_MUL_CONST, 2, {OP_I64_MUL, OP_I64_CONST}},
    {SOP_GET_I32_STORE, 2, {OP_LOCAL_GET, OP_I32_STORE}},
    {SOP_GET_I64_SUB, 2, {OP_LOCAL_GET, OP_I64_SUB}},
    // Const-free idioms: absorb sequences whose adjacent constants
    // are multi-byte LEBs (loop bounds >= 128, i64 masks) that the
    // immediate-bearing patterns above must reject.
    {SOP_I32_XOR_SET_GET, 3, {OP_I32_XOR, OP_LOCAL_SET, OP_LOCAL_GET}},
    {SOP_I32_GE_S_BRIF, 2, {OP_I32_GE_S, OP_BR_IF}},
    {SOP_GET_I64_LOAD, 2, {OP_LOCAL_GET, OP_I64_LOAD}},
    // Third retune round (low-range bytes): branch-test, bitwise and
    // shuffle idioms.
    {SOP_GET_EQZ_BRIF, 3, {OP_LOCAL_GET, OP_I32_EQZ, OP_BR_IF}},
    {SOP_GET_GET_I32_OR, 3, {OP_LOCAL_GET, OP_LOCAL_GET, OP_I32_OR}},
    {SOP_GET_GET_I32_EQ, 3, {OP_LOCAL_GET, OP_LOCAL_GET, OP_I32_EQ}},
    {SOP_SUB_AND_SET, 3, {OP_I32_SUB, OP_I32_AND, OP_LOCAL_SET}},
    {SOP_I32_ADD_SET_GET, 3, {OP_I32_ADD, OP_LOCAL_SET, OP_LOCAL_GET}},
    {SOP_CONST_MUL_SET, 3, {OP_I32_CONST, OP_I32_MUL, OP_LOCAL_SET}},
    {SOP_CONST_GET_GET, 3, {OP_I32_CONST, OP_LOCAL_GET, OP_LOCAL_GET}},
    {SOP_SET_GET_CONST, 3, {OP_LOCAL_SET, OP_LOCAL_GET, OP_I32_CONST}},
    {SOP_F64_LOAD_CONST_GET, 3,
     {OP_F64_LOAD, OP_I32_CONST, OP_LOCAL_GET}},
    {SOP_MUL_ADD_GET, 3, {OP_I32_MUL, OP_I32_ADD, OP_LOCAL_GET}},
    {SOP_GET_CONST_GET, 3, {OP_LOCAL_GET, OP_I32_CONST, OP_LOCAL_GET}},
    {SOP_F64_ADD_SET_GET, 3, {OP_F64_ADD, OP_LOCAL_SET, OP_LOCAL_GET}},
    {SOP_GET_I32_OR, 2, {OP_LOCAL_GET, OP_I32_OR}},
};

/**
 * Byte length of a window member at @p pc when its immediates all fit
 * the single-byte fast path (fixed handler offsets); 0 rejects the
 * match. Only the opcodes appearing in kPatterns are consulted.
 */
uint32_t
fusedMemberLen(const std::vector<uint8_t>& code, size_t pc, uint8_t op)
{
    switch (op) {
      case OP_LOCAL_GET:
      case OP_LOCAL_SET:
      case OP_LOCAL_TEE:
      case OP_I32_CONST:
      case OP_I64_CONST:
      case OP_BR_IF:
        if (pc + 1 >= code.size() || code[pc + 1] >= 0x80) return 0;
        return 2;
      case OP_I32_LOAD:
      case OP_I64_LOAD:
      case OP_F64_LOAD:
      case OP_I32_STORE:
      case OP_I64_STORE:
      case OP_F64_STORE:
        if (pc + 2 >= code.size() || code[pc + 1] >= 0x80 ||
            code[pc + 2] >= 0x80) {
            return 0;
        }
        return 3;
      default:
        return 1;  // pure stack operation, no immediates
    }
}

FusedWindow*
windowCovering(FuncState& fs, uint32_t pc)
{
    auto& ws = fs.fusedWindows;
    auto it = std::upper_bound(
        ws.begin(), ws.end(), pc,
        [](uint32_t p, const FusedWindow& w) { return p < w.headPc; });
    if (it == ws.begin()) return nullptr;
    --it;
    return pc < it->endPc ? &*it : nullptr;
}

} // namespace

const char*
superOpcodeName(uint8_t sop)
{
    switch (sop) {
#define WIZPP_SOP_NAME(OP, NAME)                                        \
      case OP:                                                          \
        return #NAME;
        WIZPP_FOR_EACH_SUPERINST(WIZPP_SOP_NAME)
#undef WIZPP_SOP_NAME
      default:
        return "<not-a-superinstruction>";
    }
}

uint32_t
fuseFunction(FuncState& fs, bool enable)
{
    fs.dcode = fs.code;
    fs.fusedWindows.clear();
    if (!enable) return 0;

    const std::vector<uint8_t>& code = fs.code;
    const size_t n = code.size();
    size_t pc = 0;
    while (pc < n) {
        const uint8_t op = code[pc];
        size_t bestEnd = 0;
        uint8_t bestSop = 0;
        for (const Pattern& p : kPatterns) {
            if (p.ops[0] != op) continue;
            size_t q = pc;
            bool ok = true;
            for (uint8_t k = 0; k < p.n; k++) {
                if (q >= n || code[q] != p.ops[k]) {
                    ok = false;
                    break;
                }
                uint32_t len = fusedMemberLen(code, q, p.ops[k]);
                if (!len) {
                    ok = false;
                    break;
                }
                q += len;
            }
            if (ok && q > bestEnd) {
                bestEnd = q;
                bestSop = p.sop;
            }
        }
        if (bestEnd) {
            fs.fusedWindows.push_back({static_cast<uint32_t>(pc),
                                       static_cast<uint32_t>(bestEnd),
                                       bestSop, op, 0});
            fs.dcode[pc] = bestSop;
            pc = bestEnd;
        } else {
            pc += instrLength(code, pc);
        }
    }
    return static_cast<uint32_t>(fs.fusedWindows.size());
}

bool
fusionOnProbeAttach(FuncState& fs, uint32_t pc)
{
    if (pc >= fs.dcode.size()) return false;
    fs.dcode[pc] = OP_PROBE;  // mirror the bytecode overwrite
    FusedWindow* w = windowCovering(fs, pc);
    if (!w) return false;
    bool split = (w->probeRefs++ == 0);
    if (split && pc != w->headPc) {
        // Split: the head dispatches as its original single again, so
        // every pc of the window (including the probed one) executes
        // individually through the normal machinery. A probe at the
        // head itself is already split by the OP_PROBE mirror above.
        fs.dcode[w->headPc] = w->headByte;
    }
    return split;
}

bool
fusionOnProbeDetach(FuncState& fs, uint32_t pc, uint8_t originalByte)
{
    if (pc >= fs.dcode.size()) return false;
    FusedWindow* w = windowCovering(fs, pc);
    if (!w) {
        fs.dcode[pc] = originalByte;
        return false;
    }
    // Still split while other probes cover the window: the head stays
    // a single (originalByte == headByte when pc is the head).
    fs.dcode[pc] = (pc == w->headPc) ? w->headByte : originalByte;
    if (--w->probeRefs == 0) {
        fs.dcode[w->headPc] = w->sop;  // re-fuse
        return true;
    }
    return false;
}

} // namespace wizpp
