/**
 * @file
 * The in-place bytecode interpreter tier.
 *
 * The interpreter executes the engine's mutable code copy directly
 * (LEB immediates are decoded on the fly; control flow uses the
 * validator-built side table). Dispatch is through a 256-entry handler
 * table:
 *
 *  - The normal table maps each opcode to its handler; the reserved
 *    OP_PROBE opcode maps to the local-probe handler (bytecode
 *    overwriting, Section 4.2) — uninstrumented instructions pay zero
 *    overhead.
 *  - The instrumented table maps *every* opcode to a stub that fires
 *    global probes and then dispatches through the normal table
 *    (dispatch-table switching, Section 4.1) — enabling/disabling
 *    global probes is a single pointer swap with zero disabled cost.
 */

#ifndef WIZPP_INTERP_INTERPRETER_H
#define WIZPP_INTERP_INTERPRETER_H

#include "engine/engine.h"

namespace wizpp {

/**
 * Runs the interpreter on the engine's top frame until the program
 * finishes, traps, or the top frame should enter the compiled tier.
 */
Signal runInterpreter(Engine& eng);

/** The normal dispatch table (opaque pointer; see file comment). */
const void* interpNormalTable();

/** The global-probe dispatch table. */
const void* interpProbedTable();

} // namespace wizpp

#endif // WIZPP_INTERP_INTERPRETER_H
