/**
 * @file
 * The in-place bytecode interpreter tier.
 *
 * The interpreter executes the engine's mutable code copy directly
 * (LEB immediates are decoded on the fly; control flow uses dense
 * per-pc branch slots precomputed from the validator-built side
 * table). The main loop exists in three behaviorally identical
 * dispatch backends — threaded (computed goto), switch, and the
 * reference 256-entry handler table — selected per engine via
 * EngineConfig::dispatch; see docs/INTERPRETER.md for the backend
 * design, the Normal/Probed per-mode jump tables, and the
 * epoch-gated table-swap invariant.
 */

#ifndef WIZPP_INTERP_INTERPRETER_H
#define WIZPP_INTERP_INTERPRETER_H

#include "engine/engine.h"

namespace wizpp {

/**
 * Runs the interpreter on the engine's top frame until the program
 * finishes, traps, or the top frame should enter the compiled tier.
 * Dispatches to the backend selected by eng.config().dispatch.
 */
Signal runInterpreter(Engine& eng);

/**
 * The handler table for @p mode (opaque pointer). The engine caches
 * the active table in Engine::_dispatch; every backend treats that
 * pointer as the mode indicator, and the table backend additionally
 * calls through it.
 */
const void* interpDispatchTable(DispatchMode mode);

} // namespace wizpp

#endif // WIZPP_INTERP_INTERPRETER_H
