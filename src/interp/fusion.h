/**
 * @file
 * Superinstruction fusion for the interpreter tier (see
 * docs/INTERPRETER.md, "Superinstructions & TOS caching").
 *
 * A per-function fusion pass runs once at module load and annotates
 * hot multi-instruction sequences ("windows") so the interpreter can
 * execute each window with a single fused handler, keeping the
 * intermediate top-of-stack values in registers instead of bouncing
 * them through the value array.
 *
 * The annotation is a *side table*, not a bytecode rewrite:
 * FuncState::dcode is a copy of FuncState::code in which only the
 * head byte of each fused window is replaced by a superinstruction
 * opcode. The interpreter dispatches on dcode but reads immediates
 * from it all the same (dcode differs from code only at window
 * heads, which fused handlers never read as immediates). Everything
 * else in the engine — the JIT, static analysis, the trace/replay pc
 * stream, probe overwriting — keeps observing `code`, which stays
 * byte-identical to the unfused engine. WZTR byte-identity therefore
 * holds by construction.
 *
 * Probe interaction (split / re-fuse protocol):
 *  - Attaching a local probe at any pc covered by a window splits the
 *    window back to singles: the head byte in dcode is restored, so
 *    every instruction of the window dispatches individually and the
 *    probed pc traps into the normal OP_PROBE machinery.
 *  - Detaching the last probe covering a window re-fuses it (the head
 *    byte in dcode becomes the superinstruction opcode again). Both
 *    directions ride the caller's instrumentation-epoch bump, so a
 *    batched detach re-fuses every window with one epoch change.
 *  - Global probes never consult dcode (the Probed dispatch tables
 *    route every byte through the global stub, which re-dispatches
 *    the `code` byte), so global instrumentation always observes the
 *    exact singles instruction stream.
 *
 * Windows never contain calls, probes or interior control flow (a
 * trailing br_if is the only branch form), so the per-handler
 * cached/spilled TOS state is static: registers are live strictly
 * inside one handler and every call/branch/probe boundary sees a
 * fully materialized value stack. Fused memory handlers reconstruct
 * the exact singles stack state before trapping.
 */

#ifndef WIZPP_INTERP_FUSION_H
#define WIZPP_INTERP_FUSION_H

#include <cstdint>

namespace wizpp {

struct FuncState;

/**
 * Superinstruction opcodes. They occupy the reserved byte ranges
 * 0xc5..0xdf (between the last core opcode 0xc4 and OP_PROBE 0xe0),
 * 0xe1..0xfb (above OP_PROBE, below the 0xfc prefix byte),
 * 0xfd..0xff (above the prefix byte), and the wasm-reserved encoding
 * gaps 0x06..0x0a, 0x12..0x19 and 0x1c..0x1e. They exist only in
 * FuncState::dcode — never in FuncState::code, the wire format, or a
 * trace.
 */
enum SuperOpcode : uint8_t {
    // -- low range: wasm-reserved encoding gaps (0x06..0x0a and
    //    0x12..0x19). The validator rejects these bytes in wire code,
    //    so they are free in dcode; they host the third retune round
    //    (branch-test, bitwise and shuffle idioms the corpus fold
    //    ranked after the high range filled up) --
    SOP_GET_I32_OR          = 0x06,  ///< lg B; i32.or
    SOP_GET_GET_I32_OR      = 0x07,  ///< lg A; lg B; i32.or
    SOP_GET_EQZ_BRIF        = 0x08,  ///< lg A; i32.eqz; br_if
    SOP_SUB_AND_SET         = 0x09,  ///< i32.sub; i32.and; ls A
    SOP_I32_ADD_SET_GET     = 0x0a,  ///< i32.add; ls A; lg B
    SOP_CONST_MUL_SET       = 0x12,  ///< i32.const C; i32.mul; ls A
    SOP_CONST_GET_GET       = 0x13,  ///< i32.const C; lg A; lg B
    SOP_SET_GET_CONST       = 0x14,  ///< ls A; lg B; i32.const C
    SOP_F64_LOAD_CONST_GET  = 0x15,  ///< f64.load; i32.const C; lg B
    SOP_MUL_ADD_GET         = 0x16,  ///< i32.mul; i32.add; lg B
    SOP_GET_CONST_GET       = 0x17,  ///< lg A; i32.const C; lg B
    SOP_F64_ADD_SET_GET     = 0x18,  ///< f64.add; ls A; lg B
    SOP_GET_GET_I32_EQ      = 0x19,  ///< lg A; lg B; i32.eq

    // -- long windows: the row-major x[i*N+j] addressing chain, the
    //    hottest straight-line sequence in the corpus (the 5- and
    //    6-member forms collapse 3 dispatches into 1) --
    SOP_IDX                 = 0x1c,  ///< lg A; i32.const C; i32.mul;
                                     ///  lg B; i32.add
    SOP_IDX_F64_LOAD        = 0x1d,  ///< SOP_IDX; f64.load
    SOP_GET_CONST_MUL_ADD   = 0x1e,  ///< lg A; i32.const C; i32.mul;
                                     ///  i32.add

    /** First byte of the contiguous high superinstruction range. */
    SOP_FIRST = 0xc5,

    // The table is mined from executed pair/triple histograms over
    // the fig6 corpus (`wizeng --profile-pairs` folded by
    // scripts/mine_superinsts.py); each entry's comment cites its
    // corpus-wide saved-dispatch count (count x (members-1)).

    // -- local/const pushes --
    SOP_GET_GET             = 0xc5,  ///< lg A; lg B             (8.1M)
    SOP_GET_CONST           = 0xc6,  ///< lg A; i32.const C      (11.5M)
    SOP_CONST_GET           = 0xc7,  ///< i32.const C; lg B      (4.9M)
    SOP_SET_GET             = 0xc8,  ///< ls A; lg B             (1.8M)
    SOP_GET_GET_GET         = 0xc9,  ///< lg A; lg B; lg C       (4.3M)

    // -- local/const operand + i32 binop --
    SOP_GET_GET_I32_MUL     = 0xca,  ///< lg A; lg B; i32.mul    (4.1M)
    SOP_GET_CONST_I32_ADD   = 0xcb,  ///< lg A; i32.const; add   (4.9M)
    SOP_GET_CONST_I32_MUL   = 0xcc,  ///< lg A; i32.const; mul   (6.6M)
    SOP_GET_I32_ADD         = 0xcd,  ///< lg A; i32.add          (3.3M)
    SOP_CONST_I32_ADD       = 0xce,  ///< i32.const C; i32.add   (2.4M)
    SOP_CONST_I32_MUL       = 0xcf,  ///< i32.const C; i32.mul   (6.8M)
    SOP_CONST_I32_MUL_ADD   = 0xd0,  ///< i32.const; mul; add    (10.1M)
    SOP_I32_MUL_ADD         = 0xd1,  ///< i32.mul; i32.add       (5.1M)
    SOP_MUL_GET_ADD         = 0xd2,  ///< i32.mul; lg B; i32.add (6.2M)
    SOP_ADD_CONST           = 0xd3,  ///< i32.add; i32.const C   (3.7M)
    SOP_I32_ADD_SET         = 0xd4,  ///< i32.add; ls A          (2.2M)
    SOP_CONST_ADD_SET       = 0xd5,  ///< i32.const; add; ls A   (4.0M)

    // -- loop idioms --
    SOP_GET_INC_SET         = 0xd6,  ///< lg A; i32.const C; i32.add;
                                     ///  ls B                   (6.0M)
    SOP_GET_CONST_GE_S_BRIF = 0xd7,  ///< lg A; i32.const C; i32.ge_s;
                                     ///  br_if                  (4.8M)
    SOP_GET_GET_GE_S_BRIF   = 0xd8,  ///< lg A; lg B; i32.ge_s;
                                     ///  br_if                  (1.4M)

    // -- f64 accumulate chains --
    SOP_F64_MUL_ADD         = 0xd9,  ///< f64.mul; f64.add       (0.9M)
    SOP_F64_MUL_ADD_SET     = 0xda,  ///< f64.mul; f64.add; ls A (1.5M)
    SOP_F64_ADD_SET         = 0xdb,  ///< f64.add; ls A          (0.8M)

    // -- memory --
    SOP_I32_ADD_F64_LOAD    = 0xdc,  ///< i32.add; f64.load      (1.7M)
    SOP_MUL_ADD_F64_LOAD    = 0xdd,  ///< i32.mul; i32.add;
                                     ///  f64.load               (3.3M)
    SOP_F64_LOAD_F64_ADD    = 0xde,  ///< f64.load; f64.add      (0.7M)
    SOP_F64_LOAD_MUL_ADD    = 0xdf,  ///< f64.load; f64.mul;
                                     ///  f64.add                (1.6M)

    // 0xe0 is OP_PROBE — never a superinstruction.

    // -- crypto-kernel idioms (mined over the libsodium suite alone,
    //    131M instructions: i32 state-word addressing feeding i64
    //    lanes; counts below are libsodium-only saved dispatches) --
    SOP_CONST_GET_CONST     = 0xe1,  ///< i32.const; lg B;
                                     ///  i32.const              (7.7M)
    SOP_SET_GET_GET         = 0xe2,  ///< ls A; lg B; lg C       (4.1M)
    SOP_GET_GET_I64_MUL     = 0xe3,  ///< lg A; lg B; i64.mul    (2.0M)
    SOP_GET_GET_I32_AND     = 0xe4,  ///< lg A; lg B; i32.and    (1.7M)
    SOP_GET_CONST_I32_SUB   = 0xe5,  ///< lg A; i32.const; sub   (1.4M)
    SOP_I32_XOR_GET         = 0xe6,  ///< i32.xor; lg B          (1.4M)
    SOP_CONST_MUL_I32_LOAD  = 0xe7,  ///< i32.const; i32.mul;
                                     ///  i32.load               (5.2M)
    SOP_MUL_ADD_I32_LOAD    = 0xe8,  ///< i32.mul; i32.add;
                                     ///  i32.load               (1.8M)
    SOP_MUL_ADD_I64_LOAD    = 0xe9,  ///< i32.mul; i32.add;
                                     ///  i64.load               (3.6M)
    SOP_I32_ADD_I64_LOAD    = 0xea,  ///< i32.add; i64.load      (2.0M)
    SOP_MUL_GET_I32_STORE   = 0xeb,  ///< i32.mul; lg B;
                                     ///  i32.store              (2.2M)
    SOP_ADD_GET_I64_STORE   = 0xec,  ///< i32.add; lg B;
                                     ///  i64.store              (1.8M)

    // -- i64 field-arithmetic chains (curve25519 / poly1305 / siphash
    //    kernels; counts are libsodium-only saved dispatches) --
    SOP_GET_I64_MUL         = 0xed,  ///< lg B; i64.mul          (0.5M)
    SOP_GET_I64_ADD         = 0xee,  ///< lg B; i64.add          (0.3M)
    SOP_GET_GET_I64_ADD     = 0xef,  ///< lg A; lg B; i64.add    (0.4M)
    SOP_GET_GET_I64_SUB     = 0xf0,  ///< lg A; lg B; i64.sub    (0.4M)
    SOP_I64_MUL_CONST       = 0xf1,  ///< i64.mul; i64.const C   (0.5M)
    SOP_I64_SUB_CONST_ADD   = 0xf2,  ///< i64.sub; i64.const;
                                     ///  i64.add                (0.4M)

    // -- second retune round: the corpus-wide fold ranked these above
    //    the i64-const chains they replaced (which saved under 1M
    //    dispatches each; these save 5..10M) --
    SOP_GET_GET_CONST       = 0xf3,  ///< lg A; lg B; i32.const  (6.8M)
    SOP_GET_MUL_GET         = 0xf4,  ///< lg B; i32.mul; lg C    (9.6M)
    SOP_GET_I64_LOAD_SET    = 0xf5,  ///< lg A; i64.load; ls B   (0.2M)
    SOP_GET_ADD_CONST       = 0xf6,  ///< lg B; i32.add;
                                     ///  i32.const C            (7.7M)
    SOP_GET_I32_STORE       = 0xf7,  ///< lg B; i32.store        (0.4M)
    SOP_CONST_MUL_GET       = 0xf8,  ///< i32.const; i32.mul;
                                     ///  lg B                   (0.9M)
    SOP_ADD_CONST_MUL       = 0xf9,  ///< i32.add; i32.const C;
                                     ///  i32.mul                (7.5M)
    SOP_GET_I64_SUB         = 0xfa,  ///< lg B; i64.sub   (curve limb
                                     ///  diffs w/ multi-byte consts)
    SOP_SET_GET_SET         = 0xfb,  ///< ls A; lg B; ls C (register
                                     ///  shuffle between statements)

    // 0xfc is OP_PREFIX_FC — never a superinstruction.

    // -- const-free idioms above the FC prefix: these absorb the hot
    //    sequences whose adjacent constants are multi-byte LEBs the
    //    immediate-bearing patterns must reject --
    SOP_I32_GE_S_BRIF       = 0xfd,  ///< i32.ge_s; br_if        (loop
                                     ///  exits w/ multi-byte bounds)
    SOP_GET_I64_LOAD        = 0xfe,  ///< lg A; i64.load
    SOP_I32_XOR_SET_GET     = 0xff,  ///< i32.xor; ls A; lg B
                                     ///  (stream-cipher keystream)

    /** The last superinstruction byte (inclusive: the SOP range runs
     *  to the top of the byte, around the 0xe0 probe and 0xfc prefix
     *  holes; see isSuperOpcode). */
    SOP_LAST                = 0xff,
};

/**
 * X(SOP_BYTE, name) for every superinstruction whose handler is
 * h_<name>. Like WIZPP_FOR_EACH_OPCODE, all three dispatch backends
 * generate their fused entries from this one list and cannot drift.
 */
#define WIZPP_FOR_EACH_SUPERINST(X)                                     \
    X(SOP_GET_GET, sop_get_get)                                         \
    X(SOP_GET_CONST, sop_get_const)                                     \
    X(SOP_CONST_GET, sop_const_get)                                     \
    X(SOP_SET_GET, sop_set_get)                                         \
    X(SOP_GET_GET_GET, sop_get_get_get)                                 \
    X(SOP_GET_GET_I32_MUL, sop_get_get_i32_mul)                         \
    X(SOP_GET_CONST_I32_ADD, sop_get_const_i32_add)                     \
    X(SOP_GET_CONST_I32_MUL, sop_get_const_i32_mul)                     \
    X(SOP_GET_I32_ADD, sop_get_i32_add)                                 \
    X(SOP_CONST_I32_ADD, sop_const_i32_add)                             \
    X(SOP_CONST_I32_MUL, sop_const_i32_mul)                             \
    X(SOP_CONST_I32_MUL_ADD, sop_const_i32_mul_add)                     \
    X(SOP_I32_MUL_ADD, sop_i32_mul_add)                                 \
    X(SOP_MUL_GET_ADD, sop_mul_get_add)                                 \
    X(SOP_ADD_CONST, sop_add_const)                                     \
    X(SOP_I32_ADD_SET, sop_i32_add_set)                                 \
    X(SOP_CONST_ADD_SET, sop_const_add_set)                             \
    X(SOP_GET_INC_SET, sop_get_inc_set)                                 \
    X(SOP_GET_CONST_GE_S_BRIF, sop_get_const_ge_s_brif)                 \
    X(SOP_GET_GET_GE_S_BRIF, sop_get_get_ge_s_brif)                     \
    X(SOP_F64_MUL_ADD, sop_f64_mul_add)                                 \
    X(SOP_F64_MUL_ADD_SET, sop_f64_mul_add_set)                         \
    X(SOP_F64_ADD_SET, sop_f64_add_set)                                 \
    X(SOP_I32_ADD_F64_LOAD, sop_i32_add_f64_load)                       \
    X(SOP_MUL_ADD_F64_LOAD, sop_mul_add_f64_load)                       \
    X(SOP_F64_LOAD_F64_ADD, sop_f64_load_f64_add)                       \
    X(SOP_F64_LOAD_MUL_ADD, sop_f64_load_mul_add)                       \
    X(SOP_CONST_GET_CONST, sop_const_get_const)                         \
    X(SOP_SET_GET_GET, sop_set_get_get)                                 \
    X(SOP_GET_GET_I64_MUL, sop_get_get_i64_mul)                         \
    X(SOP_GET_GET_I32_AND, sop_get_get_i32_and)                         \
    X(SOP_GET_CONST_I32_SUB, sop_get_const_i32_sub)                     \
    X(SOP_I32_XOR_GET, sop_i32_xor_get)                                 \
    X(SOP_CONST_MUL_I32_LOAD, sop_const_mul_i32_load)                   \
    X(SOP_MUL_ADD_I32_LOAD, sop_mul_add_i32_load)                       \
    X(SOP_MUL_ADD_I64_LOAD, sop_mul_add_i64_load)                       \
    X(SOP_I32_ADD_I64_LOAD, sop_i32_add_i64_load)                       \
    X(SOP_MUL_GET_I32_STORE, sop_mul_get_i32_store)                     \
    X(SOP_ADD_GET_I64_STORE, sop_add_get_i64_store)                     \
    X(SOP_GET_I64_MUL, sop_get_i64_mul)                                 \
    X(SOP_GET_I64_ADD, sop_get_i64_add)                                 \
    X(SOP_GET_GET_I64_ADD, sop_get_get_i64_add)                         \
    X(SOP_GET_GET_I64_SUB, sop_get_get_i64_sub)                         \
    X(SOP_I64_MUL_CONST, sop_i64_mul_const)                             \
    X(SOP_I64_SUB_CONST_ADD, sop_i64_sub_const_add)                     \
    X(SOP_GET_GET_CONST, sop_get_get_const)                             \
    X(SOP_GET_MUL_GET, sop_get_mul_get)                                 \
    X(SOP_GET_I64_LOAD_SET, sop_get_i64_load_set)                       \
    X(SOP_GET_ADD_CONST, sop_get_add_const)                             \
    X(SOP_GET_I32_STORE, sop_get_i32_store)                             \
    X(SOP_CONST_MUL_GET, sop_const_mul_get)                             \
    X(SOP_ADD_CONST_MUL, sop_add_const_mul)                             \
    X(SOP_GET_I64_SUB, sop_get_i64_sub)                                 \
    X(SOP_SET_GET_SET, sop_set_get_set)                                 \
    X(SOP_I32_GE_S_BRIF, sop_i32_ge_s_brif)                             \
    X(SOP_GET_I64_LOAD, sop_get_i64_load)                               \
    X(SOP_I32_XOR_SET_GET, sop_i32_xor_set_get)                         \
    X(SOP_GET_I32_OR, sop_get_i32_or)                                   \
    X(SOP_GET_GET_I32_OR, sop_get_get_i32_or)                           \
    X(SOP_GET_EQZ_BRIF, sop_get_eqz_brif)                               \
    X(SOP_SUB_AND_SET, sop_sub_and_set)                                 \
    X(SOP_I32_ADD_SET_GET, sop_i32_add_set_get)                         \
    X(SOP_CONST_MUL_SET, sop_const_mul_set)                             \
    X(SOP_CONST_GET_GET, sop_const_get_get)                             \
    X(SOP_SET_GET_CONST, sop_set_get_const)                             \
    X(SOP_F64_LOAD_CONST_GET, sop_f64_load_const_get)                   \
    X(SOP_MUL_ADD_GET, sop_mul_add_get)                                 \
    X(SOP_GET_CONST_GET, sop_get_const_get)                             \
    X(SOP_F64_ADD_SET_GET, sop_f64_add_set_get)                         \
    X(SOP_GET_GET_I32_EQ, sop_get_get_i32_eq)                           \
    X(SOP_IDX, sop_idx)                                                 \
    X(SOP_IDX_F64_LOAD, sop_idx_f64_load)                               \
    X(SOP_GET_CONST_MUL_ADD, sop_get_const_mul_add)

/** True for a superinstruction (dcode-only) opcode byte. */
inline bool
isSuperOpcode(uint8_t op)
{
    // High range 0xc5..0xff: 0xe0 (OP_PROBE) and 0xfc (OP_PREFIX_FC)
    // sit inside it and are real opcodes, not superinstructions. Low
    // range: the wasm-reserved encoding gaps.
    if (op >= SOP_FIRST) return op != 0xe0 && op != 0xfc;
    return (op >= 0x06 && op <= 0x0a) || (op >= 0x12 && op <= 0x19) ||
           (op >= 0x1c && op <= 0x1e);
}

/** Mnemonic for a superinstruction byte ("sop_get_get", ...). */
const char* superOpcodeName(uint8_t sop);

/**
 * Builds fs.dcode and, when @p enable is set, runs the fusion pass:
 * greedy longest-match, left-to-right, non-overlapping windows whose
 * immediates are all single-byte LEBs (fixed handler offsets). Always
 * (re)initializes dcode, so a disabled engine still dispatches on a
 * valid singles copy. Returns the number of windows annotated.
 */
uint32_t fuseFunction(FuncState& fs, bool enable);

/**
 * Probe-attach hook (ProbeManager::ensureSite): mirrors the OP_PROBE
 * overwrite into dcode and splits the window covering @p pc, if any.
 * Returns true if a window transitioned fused -> split.
 */
bool fusionOnProbeAttach(FuncState& fs, uint32_t pc);

/**
 * Probe-detach hook (ProbeManager::releaseSite): restores the dcode
 * byte at @p pc (@p originalByte is the saved pre-overwrite opcode)
 * and re-fuses the covering window once its last probe is gone.
 * Returns true if a window transitioned split -> fused.
 */
bool fusionOnProbeDetach(FuncState& fs, uint32_t pc,
                         uint8_t originalByte);

} // namespace wizpp

#endif // WIZPP_INTERP_FUSION_H
