#include "rewriter/rewriter.h"

#include <cassert>

#include "support/leb128.h"
#include "wasm/decoder.h"
#include "wasm/opcodes.h"

namespace wizpp {

namespace {

/** Emits: i32.const addr ; i32.const addr ; i64.load ; i64.const 1 ;
 *  i64.add ; i64.store — a stack-neutral counter increment. */
void
emitCounterIncrement(std::vector<uint8_t>& out, uint32_t addr)
{
    out.push_back(OP_I32_CONST);
    encodeSLEB(out, static_cast<int32_t>(addr));
    out.push_back(OP_I32_CONST);
    encodeSLEB(out, static_cast<int32_t>(addr));
    out.push_back(OP_I64_LOAD);
    encodeULEB(out, 3u);  // align
    encodeULEB(out, 0u);  // offset
    out.push_back(OP_I64_CONST);
    encodeSLEB(out, int64_t{1});
    out.push_back(OP_I64_ADD);
    out.push_back(OP_I64_STORE);
    encodeULEB(out, 3u);
    encodeULEB(out, 0u);
}

bool
wantsCounter(RewriteKind kind, uint8_t op)
{
    if (kind == RewriteKind::Hotness) return true;
    return op == OP_IF || op == OP_BR_IF || op == OP_BR_TABLE;
}

} // namespace

Result<RewriteResult>
rewriteForCounting(const Module& in, RewriteKind kind)
{
    RewriteResult r;
    r.module = in;  // copy; bodies are rewritten below
    Module& m = r.module;

    // Counters go above the program's declared memory.
    if (m.memories.empty()) {
        MemoryDecl md;
        md.limits.min = 0;
        m.memories.push_back(md);
    }
    uint32_t origPages = m.memories[0].limits.min;
    r.counterBase = origPages * kPageSize;

    // First pass: count sites so we know how many pages to add.
    for (auto& f : m.functions) {
        if (f.imported) continue;
        size_t pc = 0;
        while (pc < f.code.size()) {
            InstrView v;
            if (!decodeInstr(f.code, pc, &v)) {
                return Error{"malformed body during rewrite", pc};
            }
            if (wantsCounter(kind, v.opcode)) {
                r.sites.push_back({f.index, static_cast<uint32_t>(pc)});
            }
            pc += v.length;
        }
    }
    r.numCounters = static_cast<uint32_t>(r.sites.size());
    uint32_t extraPages =
        (r.numCounters * 8 + kPageSize - 1) / kPageSize;
    m.memories[0].limits.min = origPages + extraPages;
    if (m.memories[0].limits.hasMax) {
        m.memories[0].limits.max += extraPages;
    }

    // Second pass: rebuild each body with injected increments.
    uint32_t counter = 0;
    for (auto& f : m.functions) {
        if (f.imported) continue;
        std::vector<uint8_t> out;
        out.reserve(f.code.size() * 4);
        size_t pc = 0;
        while (pc < f.code.size()) {
            InstrView v;
            if (!decodeInstr(f.code, pc, &v)) {
                // The first pass decoded this same body successfully;
                // a zero-length view here would loop forever.
                assert(false && "validated code must decode");
                break;
            }
            if (wantsCounter(kind, v.opcode)) {
                emitCounterIncrement(out, r.counterBase + counter * 8);
                counter++;
            }
            out.insert(out.end(), f.code.begin() + pc,
                       f.code.begin() + pc + v.length);
            pc += v.length;
        }
        f.code = std::move(out);
    }

    return r;
}

std::vector<uint64_t>
readCounters(const Memory& mem, const RewriteResult& r)
{
    std::vector<uint64_t> counts;
    counts.reserve(r.numCounters);
    for (uint32_t i = 0; i < r.numCounters; i++) {
        counts.push_back(mem.read<uint64_t>(r.counterBase + i * 8));
    }
    return counts;
}

} // namespace wizpp
