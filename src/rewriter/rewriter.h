/**
 * @file
 * Static bytecode-rewriting baseline (paper Section 5.5).
 *
 * Reproduces the Walrus-based wasm-bytecode-instrumenter the paper
 * compares against: the module is transformed *before* execution by
 * injecting an in-memory counter increment before each instruction
 * (hotness) or before each branching instruction (branch). Counters
 * live in linear memory above the program's data, so the transformed
 * program needs loads and stores for every count — exactly the
 * intrusive static approach the paper contrasts with probes.
 *
 * Wasm's structured control flow (label-indexed branches) means no
 * branch relocation is needed; only section sizes change.
 */

#ifndef WIZPP_REWRITER_REWRITER_H
#define WIZPP_REWRITER_REWRITER_H

#include <cstdint>
#include <vector>

#include "runtime/memory.h"
#include "support/result.h"
#include "wasm/module.h"

namespace wizpp {

/** Which instructions get counters. */
enum class RewriteKind : uint8_t {
    Hotness,  ///< count every instruction
    Branch,   ///< count if / br_if / br_table executions
};

/** A rewritten module plus the counter-array layout. */
struct RewriteResult
{
    Module module;
    uint32_t counterBase = 0;   ///< byte address of counter[0]
    uint32_t numCounters = 0;   ///< one i64 counter per instrumented site

    /** (funcIndex, pc) of each counter, in counter order. */
    std::vector<std::pair<uint32_t, uint32_t>> sites;
};

/** Statically instruments @p in. The input module must be valid. */
Result<RewriteResult> rewriteForCounting(const Module& in,
                                         RewriteKind kind);

/** Reads the counter array back out of the instance memory. */
std::vector<uint64_t> readCounters(const Memory& mem,
                                   const RewriteResult& r);

} // namespace wizpp

#endif // WIZPP_REWRITER_REWRITER_H
