/**
 * @file
 * The Engine: a multi-tier WebAssembly execution engine with
 * first-class, non-intrusive dynamic instrumentation.
 *
 * The engine hosts one module at a time (like `wizeng module.wasm`),
 * executes it in an in-place interpreter tier and a compiled tier, and
 * exposes the probe-based instrumentation API that is the paper's core
 * contribution. Monitors attach before execution and register probes;
 * probes may be inserted and removed dynamically during execution with
 * the consistency guarantees of Section 2.4.
 */

#ifndef WIZPP_ENGINE_ENGINE_H
#define WIZPP_ENGINE_ENGINE_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/frame.h"
#include "obs/metrics.h"
#include "probes/probemanager.h"
#include "runtime/instance.h"
#include "runtime/trap.h"
#include "runtime/value.h"
#include "support/result.h"
#include "wasm/module.h"
#include "wasm/validator.h"

namespace wizpp {

class Monitor;
struct Interp;

namespace obs {
class Timeline;
}

/** How the engine executes code. */
enum class ExecMode : uint8_t {
    Interpreter,  ///< interpreter only; nothing is ever compiled
    Jit,          ///< compile every function eagerly at instantiation
    Tiered,       ///< interpret first, tier up hot functions dynamically
};

/**
 * Interpreter dispatch backend (see docs/INTERPRETER.md). All three
 * are always compiled and behaviorally identical; they differ only in
 * how the main loop reaches the next handler.
 */
enum class DispatchBackend : uint8_t {
    Table,     ///< indirect call through a 256-entry handler table
    Switch,    ///< portable switch-based loop
    Threaded,  ///< computed-goto (labels-as-values) threaded dispatch
};

/**
 * Interpreter dispatch mode: Normal maps each opcode to its handler
 * (OP_PROBE to the local-probe handler); Probed routes *every* opcode
 * through the global-probe stub first (Section 4.1 dispatch-table
 * switching). Every backend keeps one jump table per mode.
 */
enum class DispatchMode : uint8_t { Normal, Probed };

/** The build-time default backend (CMake option WIZPP_DISPATCH). */
DispatchBackend defaultDispatchBackend();

/** True if this build supports computed-goto threaded dispatch. */
bool threadedDispatchSupported();

/** Lowercase backend name ("table", "switch", "threaded"). */
const char* dispatchBackendName(DispatchBackend b);

/** Parses a backend name; returns false on an unknown name. */
bool parseDispatchBackend(const std::string& name, DispatchBackend* out);

/** Engine tuning knobs (cf. Wizard's src/engine/Tuning.v3). */
struct EngineConfig
{
    ExecMode mode = ExecMode::Jit;

    /**
     * Interpreter dispatch backend. Defaults to the build's configured
     * backend (WIZPP_DISPATCH, normally threaded on GCC/Clang); tests
     * and benchmarks override it per engine to compare backends.
     */
    DispatchBackend dispatch = defaultDispatchBackend();

    // Probe-intrinsification knobs, one per lowering kind (Section 4.4;
    // see src/jit/lowering.h and docs/JIT.md). `wizeng
    // --no-intrinsify[=count,operand,entry,fused]` wires these per run.

    /** Intrinsify CountProbes to inline counter increments (Section 4.4). */
    bool intrinsifyCountProbe = true;

    /** Intrinsify OperandProbes to direct top-of-stack calls. */
    bool intrinsifyOperandProbe = true;

    /** Intrinsify EntryExitProbes to pre-resolved direct calls. */
    bool intrinsifyEntryExitProbe = true;

    /** Pre-resolve fused multi-probe sites to one direct fused call
        (no per-fire site re-dispatch). */
    bool intrinsifyFusedProbe = true;

    /** Intrinsify one-shot CoverageProbes to self-patching slots
        (docs/FUZZING.md). Off, they take the generic-lite path. */
    bool intrinsifyCoverageProbe = true;

    /**
     * Fuse hot instruction sequences into superinstructions at module
     * load (interpreter tier only; see src/interp/fusion.h). The
     * annotation is a dispatch side table — bytecode, traces and probe
     * semantics are unchanged, probed windows split back to singles —
     * so this is safe to leave on; `wizeng --no-fuse` and ablation
     * benchmarks turn it off.
     */
    bool fuseSuperinstructions = true;

    /** Calls (or backedges) before a function tiers up in Tiered mode. */
    uint32_t tierUpThreshold = 10;

    /** Allow on-stack replacement into compiled code at loop backedges. */
    bool osrAtLoopBackedge = true;

    /** Value-stack capacity in slots (locals + operands of all frames). */
    uint32_t valueStackSize = 1u << 20;

    /** Maximum call depth. */
    uint32_t maxFrames = 1u << 14;
};

/** Outcome signals from the tier execution loops (engine internal). */
enum class Signal : uint8_t {
    Done,        ///< bottom frame returned; results on the value stack
    Trap,        ///< trapped; Engine::_trap holds the reason
    TierSwitch,  ///< top frame should (re)enter the other tier
};

class Engine
{
  public:
    explicit Engine(EngineConfig config = {});
    ~Engine();

    Engine(const Engine&) = delete;
    Engine& operator=(const Engine&) = delete;

    // ---- Loading and instantiation ----

    /** Host imports to link against (populate before instantiate()). */
    ImportMap& imports() { return _imports; }

    /**
     * Validates @p m, builds per-function engine state (side tables,
     * mutable code copies) and takes ownership of the module.
     * Equivalent to ValidatedModule::create + loadShared.
     */
    Result<bool> loadModule(Module m);

    /**
     * Builds engine state from an already-validated shared module.
     * Many engines may load the same ValidatedModule concurrently —
     * the shared state is immutable; everything probe insertion
     * mutates (code copies, side-table slots, sites, compiled code)
     * is private to this engine. The serving runtime's instance pool
     * is built on this (docs/SERVING.md).
     */
    Result<bool> loadShared(std::shared_ptr<const ValidatedModule> vm);

    /** Allocates the instance and runs the start function, if any. */
    Result<bool> instantiate();

    // ---- Execution ----

    /** Calls an exported function by name. */
    Result<std::vector<Value>> callExport(const std::string& name,
                                          const std::vector<Value>& args);

    /** Calls a function by index. */
    Result<std::vector<Value>> callFunction(uint32_t funcIndex,
                                            const std::vector<Value>& args);

    TrapReason lastTrap() const { return _trap; }

    // ---- Instrumentation ----

    ProbeManager& probes() { return _probes; }

    /**
     * Attaches a monitor (must be after loadModule). The monitor
     * registers its probes against this engine; the engine does not take
     * ownership.
     */
    void attachMonitor(Monitor* m);

    const std::vector<Monitor*>& monitors() const { return _monitors; }

    // ---- Observability (docs/OBSERVABILITY.md) ----

    /**
     * The engine's metrics registry: every engine counter (compiles,
     * invalidations, deopts, probe batches, trace bytes, ...) lives
     * here under a dotted name; `stats` below aliases the engine.*
     * counters for compatibility. Dumped by `wizeng --metrics`.
     */
    obs::MetricsRegistry& metrics() { return _metrics; }

    /**
     * Points the engine at a timeline to receive lifecycle spans
     * (module validate, per-function compiles, probe batches, monitor
     * attach, execution, traps). Non-owning; null (the default)
     * disables every hook — the hooks all sit on cold paths behind a
     * single null check, so a run without a timeline pays nothing
     * measurable (BENCH_obs_overhead.json).
     */
    void setTimeline(obs::Timeline* t) { _timeline = t; }
    obs::Timeline* timeline() const { return _timeline; }

    // ---- Introspection ----

    const EngineConfig& config() const { return _config; }
    const Module& module() const { return _vm->module; }
    /** The shared validated module (null before load). */
    const std::shared_ptr<const ValidatedModule>& validatedModule() const
    {
        return _vm;
    }
    Instance& instance() { return _instance; }
    bool loaded() const { return _loaded; }

    size_t numFuncs() const { return _funcs.size(); }
    FuncState& funcState(uint32_t idx) { return _funcs[idx]; }

    /** Finds a function index by debug/export name; -1 if absent. */
    int32_t findFunc(const std::string& name) const;

    // ---- Engine internals (used by tiers, probes, accessors) ----

    /** The shared value array (locals and operand stacks of all frames). */
    std::vector<Value>& values() { return _values; }

    /** The frame stack; back() is the executing frame. */
    std::vector<Frame>& frames() { return _frames; }

    Frame* frameAt(uint32_t depth)
    {
        return depth < _frames.size() ? &_frames[depth] : nullptr;
    }

    /** True while global probes force interpreter-only execution. */
    bool interpreterOnly() const { return _interpreterOnly; }

    /** Active interpreter dispatch table (swapped for global probes). */
    const void* dispatchTable() const { return _dispatch; }

    /** Active dispatch mode (Probed while global probes are attached). */
    DispatchMode dispatchMode() const { return _dispatchMode; }

    /** Marks @p frame for deoptimization to the interpreter. */
    void requestDeopt(Frame* frame);

    /** ProbeManager hook: probes changed in @p funcIndex (Section 4.5). */
    void onLocalProbesChanged(uint32_t funcIndex);

    /**
     * ProbeManager hook for batch insertion: probes changed in every
     * function of @p funcIndices (sorted, unique). Semantically one
     * onLocalProbesChanged per function, but the instrumentation epoch
     * is bumped exactly once for the whole batch.
     */
    void onProbesBatchChanged(const std::vector<uint32_t>& funcIndices);

    /** ProbeManager hook: global probe count went 0↔nonzero. */
    void onGlobalProbesChanged();

    /** Compiles @p funcIndex into the jit tier (no-op for imports). */
    void compileFunction(uint32_t funcIndex);

    /**
     * The single tier-up/recompile policy, applied when @p fs is about
     * to execute (call or loop backedge) without compiled code: Jit
     * mode recompiles unconditionally (lazy recompilation, Section
     * 4.5); Tiered mode recompiles dirty functions immediately
     * (FuncState::recompilePending — one recompile per probe batch,
     * docs/JIT.md) and otherwise charges one hotness event against
     * the tier-up threshold. Check fs.jit afterwards.
     */
    void
    maybeCompileOnEntry(FuncState& fs)
    {
        if (fs.jit) return;
        if (_config.mode == ExecMode::Jit) {
            compileFunction(fs.funcIndex);
        } else if (_config.mode == ExecMode::Tiered &&
                   (fs.recompilePending ||
                    ++fs.hotness >= _config.tierUpThreshold)) {
            compileFunction(fs.funcIndex);
        }
    }

    /** Sets the trap state (tier loops call this). */
    void setTrap(TrapReason r) { _trap = r; }

    /** Allocates a fresh frame id. */
    uint64_t nextFrameId() { return _nextFrameId++; }

    /**
     * Bumped on every instrumentation change (probe insert/remove,
     * deopt request). The compiled tier re-checks it after intrinsified
     * operand-probe calls so even hostile M-code cannot keep stale
     * compiled code running.
     */
    uint64_t instrumentationEpoch = 0;

    /** Canonical type id for call_indirect signature checks. */
    uint32_t canonTypeId(uint32_t typeIndex) const
    {
        return _canonTypeIds[typeIndex];
    }

  private:
    // Declared ahead of `stats` so the registry outlives and
    // pre-dates the counter references it hands out.
    obs::MetricsRegistry _metrics;

  public:
    /**
     * Statistics (tests assert on these). Each field aliases the
     * `engine.*` metrics-registry counter of the same name, so
     * `stats.functionsCompiled++` and
     * `metrics().value("engine.functions_compiled")` are one number —
     * one counting idiom engine-wide (docs/OBSERVABILITY.md).
     */
    struct Stats
    {
        explicit Stats(obs::MetricsRegistry& m);
        obs::Counter& functionsCompiled;
        obs::Counter& jitInvalidations;
        obs::Counter& frameDeopts;
        obs::Counter& osrEntries;
        obs::Counter& dispatchTableSwitches;
        /** Superinstruction windows annotated at module load. */
        obs::Counter& fusedWindows;
        /** Windows split to singles by a covering probe attach. */
        obs::Counter& fusionSplits;
        /** Windows re-fused after their last covering probe left. */
        obs::Counter& fusionRefusions;
    };
    Stats stats{_metrics};

  private:
    friend struct Interp;

    Result<std::vector<Value>> execute(uint32_t funcIndex,
                                       const std::vector<Value>& args);

    /** Runs the driver loop until Done or Trap. */
    Signal run();

    /** Unwinds all frames (trap path), invalidating accessors. */
    void unwindAll();

    EngineConfig _config;
    std::shared_ptr<const ValidatedModule> _vm;
    ImportMap _imports;
    Instance _instance;
    std::vector<FuncState> _funcs;
    std::vector<uint32_t> _canonTypeIds;
    ProbeManager _probes{*this};
    std::vector<Monitor*> _monitors;

    std::vector<Value> _values;
    std::vector<Frame> _frames;
    uint64_t _nextFrameId = 1;

    obs::Timeline* _timeline = nullptr;

    const void* _dispatch = nullptr;
    DispatchMode _dispatchMode = DispatchMode::Normal;
    bool _interpreterOnly = false;
    bool _loaded = false;
    bool _instantiated = false;
    TrapReason _trap = TrapReason::None;

    /**
     * Invalidated compiled code is parked here instead of being freed:
     * a probe firing from inside the compiled tier may invalidate the
     * very code object the tier loop is executing. Retired code is
     * reclaimed once execution returns to the driver.
     */
    std::vector<std::unique_ptr<JitCode>> _retiredJit;
};

} // namespace wizpp

#endif // WIZPP_ENGINE_ENGINE_H
