#include "engine/engine.h"

#include <chrono>

#include "interp/fusion.h"
#include "interp/interpreter.h"
#include "jit/jitcode.h"
#include "jit/jitexec.h"
#include "monitors/monitor.h"
#include "obs/timeline.h"
#include "probes/frameaccessor.h"

namespace wizpp {

namespace {
constexpr uint32_t kNoPc = 0xffffffffu;

uint64_t
microsSince(std::chrono::steady_clock::time_point t0)
{
    return (uint64_t)std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - t0)
        .count();
}
}

Engine::Stats::Stats(obs::MetricsRegistry& m)
    : functionsCompiled(m.counter("engine.functions_compiled")),
      jitInvalidations(m.counter("engine.jit_invalidations")),
      frameDeopts(m.counter("engine.frame_deopts")),
      osrEntries(m.counter("engine.osr_entries")),
      dispatchTableSwitches(m.counter("engine.dispatch_table_switches")),
      fusedWindows(m.counter("engine.fused_windows")),
      fusionSplits(m.counter("engine.fusion_splits")),
      fusionRefusions(m.counter("engine.fusion_refusions"))
{
}

FuncState::FuncState() = default;
FuncState::~FuncState() = default;
FuncState::FuncState(FuncState&&) noexcept = default;
FuncState& FuncState::operator=(FuncState&&) noexcept = default;

Engine::Engine(EngineConfig config) : _config(config)
{
    _values.resize(_config.valueStackSize);
    _frames.reserve(_config.maxFrames);
    _dispatch = interpDispatchTable(DispatchMode::Normal);

    // Pull-model metrics (docs/OBSERVABILITY.md): hot-path counters
    // stay plain non-atomic fields on their fire paths and are only
    // sampled here at dump/snapshot time.
    _metrics.registerCallback("probes.local_fires",
                              [this] { return _probes.localFireCount; });
    _metrics.registerCallback("probes.global_fires",
                              [this] { return _probes.globalFireCount; });
    _metrics.registerCallback("probes.audit_warnings",
                              [this] { return _probes.auditWarnings; });
    _metrics.registerCallback("probes.sites", [this] {
        return (uint64_t)_probes.numProbedSites();
    });
    _metrics.registerCallback("probes.epoch",
                              [this] { return instrumentationEpoch; });
    _metrics.registerCallback("engine.monitors", [this] {
        return (uint64_t)_monitors.size();
    });
    // Live probe-site population by lowering kind across all compiled
    // functions (how the lowering layer resolved the current
    // instrumentation; see src/jit/lowering.h).
    using LK = ProbeLoweringKind;
    for (LK k : {LK::Count, LK::Operand, LK::EntryExit, LK::Fused,
                 LK::GenericLite, LK::Generic, LK::Coverage}) {
        _metrics.registerCallback(
            std::string("jit.lowering.") + probeLoweringKindName(k),
            [this, k] {
                uint64_t n = 0;
                for (const FuncState& fs : _funcs) {
                    if (!fs.jit) continue;
                    for (auto& [pc, kind] : fs.jit->probeLowering) {
                        (void)pc;
                        if (kind == k) n++;
                    }
                }
                return n;
            });
    }
}

Engine::~Engine() = default;

Result<bool>
Engine::loadModule(Module m)
{
    if (_loaded) return Error{"engine already has a module", 0};
    if (_timeline) {
        _timeline->begin(
            "module.validate",
            {{"functions", std::to_string(m.functions.size())}});
    }
    auto vr = ValidatedModule::create(std::move(m));
    if (_timeline) _timeline->end({{"ok", vr.ok() ? "1" : "0"}});
    if (!vr.ok()) return vr.error();
    return loadShared(vr.take());
}

Result<bool>
Engine::loadShared(std::shared_ptr<const ValidatedModule> vm)
{
    if (_loaded) return Error{"engine already has a module", 0};
    if (!vm) return Error{"null validated module", 0};
    _vm = std::move(vm);
    const Module& mod = _vm->module;
    const ValidationInfo& info = _vm->info;

    // Canonicalize (deduplicate) types for call_indirect checks.
    _canonTypeIds.resize(mod.types.size());
    for (size_t i = 0; i < mod.types.size(); i++) {
        uint32_t id = static_cast<uint32_t>(i);
        for (size_t j = 0; j < i; j++) {
            if (mod.types[j] == mod.types[i]) {
                id = static_cast<uint32_t>(j);
                break;
            }
        }
        _canonTypeIds[i] = id;
    }

    _funcs.clear();
    _funcs.reserve(mod.functions.size());
    for (size_t i = 0; i < mod.functions.size(); i++) {
        const FuncDecl& decl = mod.functions[i];
        const FuncType& type = mod.types[decl.typeIndex];
        FuncState fs;
        fs.decl = &decl;
        fs.type = &type;
        fs.funcIndex = static_cast<uint32_t>(i);
        fs.numParams = static_cast<uint32_t>(type.params.size());
        fs.numResults = static_cast<uint32_t>(type.results.size());
        fs.localTypes = type.params;
        fs.localTypes.insert(fs.localTypes.end(), decl.locals.begin(),
                             decl.locals.end());
        fs.numLocals = static_cast<uint32_t>(fs.localTypes.size());
        fs.canonTypeId = _canonTypeIds[decl.typeIndex];
        if (!decl.imported) {
            fs.code = decl.code;  // private mutable copy for overwriting
            // Copy (not move): the validation output is shared
            // immutably across engines. finalize() below rebuilds the
            // dense slots against this engine's own copy.
            fs.sideTable = info.sideTables[i];
            fs.maxOperand = info.maxOperandStack[i];
        }
        _funcs.push_back(std::move(fs));
    }
    // Build the dense per-pc branch slots the interpreter's branch
    // handlers index directly (after the moves above: the slots point
    // into the side tables' node-stable maps).
    for (FuncState& fs : _funcs) {
        if (!fs.decl->imported) {
            fs.sideTable.finalize(static_cast<uint32_t>(fs.code.size()));
            // Superinstruction fusion pass: annotates dcode windows
            // (always builds dcode, even with fusion disabled).
            stats.fusedWindows +=
                fuseFunction(fs, _config.fuseSuperinstructions);
        }
    }
    _loaded = true;
    return true;
}

Result<bool>
Engine::instantiate()
{
    if (!_loaded) return Error{"no module loaded", 0};
    obs::Timeline::Span span(_timeline, "engine.instantiate");
    auto ir = Instance::instantiate(module(), _imports);
    if (!ir.ok()) return ir.error();
    _instance = ir.take();
    _instantiated = true;

    if (_config.mode == ExecMode::Jit) {
        for (auto& fs : _funcs) {
            if (!fs.decl->imported && !fs.jit) {
                compileFunction(fs.funcIndex);
            }
        }
    }

    if (module().start) {
        auto r = execute(*module().start, {});
        if (!r.ok()) return r.error();
    }
    return true;
}

int32_t
Engine::findFunc(const std::string& name) const
{
    int32_t e = module().findFuncExport(name);
    if (e >= 0) return e;
    for (const auto& f : module().functions) {
        if (f.name == name) return static_cast<int32_t>(f.index);
    }
    return -1;
}

Result<std::vector<Value>>
Engine::callExport(const std::string& name, const std::vector<Value>& args)
{
    int32_t idx = module().findFuncExport(name);
    if (idx < 0) return Error{"no exported function '" + name + "'", 0};
    return callFunction(static_cast<uint32_t>(idx), args);
}

Result<std::vector<Value>>
Engine::callFunction(uint32_t funcIndex, const std::vector<Value>& args)
{
    if (!_instantiated) return Error{"engine not instantiated", 0};
    if (funcIndex >= _funcs.size()) {
        return Error{"function index out of range", 0};
    }
    const FuncType& type = *_funcs[funcIndex].type;
    if (args.size() != type.params.size()) {
        return Error{"argument count mismatch", 0};
    }
    for (size_t i = 0; i < args.size(); i++) {
        if (args[i].type != type.params[i]) {
            return Error{"argument type mismatch at " + std::to_string(i),
                         0};
        }
    }
    return execute(funcIndex, args);
}

Result<std::vector<Value>>
Engine::execute(uint32_t funcIndex, const std::vector<Value>& args)
{
    FuncState& fs = _funcs[funcIndex];
    if (fs.decl->imported) return Error{"cannot call an import", 0};

    if (_timeline) {
        _timeline->begin("engine.execute",
                         {{"func", std::to_string(funcIndex)},
                          {"name", fs.decl->name}});
    }

    _frames.clear();
    _trap = TrapReason::None;

    // Arguments become the first locals of the bottom frame.
    for (size_t i = 0; i < args.size(); i++) _values[i] = args[i];
    for (uint32_t i = fs.numParams; i < fs.numLocals; i++) {
        _values[i] = Value::zeroOf(fs.localTypes[i]);
    }

    // Tiering decision for the entry frame. In Jit mode, functions
    // whose code was invalidated by probe changes are recompiled on
    // their next call (Section 4.5: "hot functions will eventually be
    // recompiled").
    Tier tier = Tier::Interpreter;
    if (!_interpreterOnly) {
        maybeCompileOnEntry(fs);
        if (fs.jit) tier = Tier::Jit;
    }

    _frames.emplace_back();
    Frame& f = _frames.back();
    f.fs = &fs;
    f.pc = 0;
    f.localsBase = 0;
    f.stackStart = fs.numLocals;
    f.sp = f.stackStart;
    f.frameId = nextFrameId();
    f.accessor = nullptr;
    f.tier = tier;
    f.jitEpoch = fs.jitEpoch;
    f.jitResumeIdx = 0;
    f.deoptRequested = false;
    f.skipProbeOncePc = kNoPc;

    Signal s = run();
    _retiredJit.clear();

    if (s == Signal::Trap) {
        if (_timeline) {
            _timeline->instant("trap",
                               {{"reason", trapReasonName(_trap)}});
            _timeline->end({{"outcome", "trap"}});
        }
        unwindAll();
        return Error{std::string("trap: ") + trapReasonName(_trap), 0};
    }
    if (_timeline) _timeline->end({{"outcome", "ok"}});

    std::vector<Value> results;
    for (uint32_t i = 0; i < fs.numResults; i++) results.push_back(_values[i]);
    return results;
}

Signal
Engine::run()
{
    while (true) {
        if (_frames.empty()) return Signal::Done;
        Frame& f = _frames.back();
        bool useJit = false;
        if (f.tier == Tier::Jit) {
            if (_interpreterOnly) {
                // Global-probe mode pins execution to the interpreter
                // without discarding compiled code (Section 4.1).
                f.tier = Tier::Interpreter;
            } else if (!f.fs->jit || f.jitEpoch != f.fs->jitEpoch ||
                       f.deoptRequested) {
                f.tier = Tier::Interpreter;
                f.deoptRequested = false;
                stats.frameDeopts++;
            } else {
                useJit = true;
            }
        }
        Signal s = useJit ? runJitTier(*this) : runInterpreter(*this);
        if (s != Signal::TierSwitch) return s;
    }
}

void
Engine::unwindAll()
{
    // Invalidate accessors on unwind (Section 2.3, mechanism 3).
    for (Frame& f : _frames) {
        if (f.accessor) {
            f.accessor->invalidate();
            f.accessor.reset();
        }
    }
    _frames.clear();
}

void
Engine::attachMonitor(Monitor* m)
{
    obs::Timeline::Span span(_timeline, "monitor.attach",
                             {{"monitor", m->name()}});
    _monitors.push_back(m);
    m->onAttach(*this);
}

void
Engine::requestDeopt(Frame* frame)
{
    frame->deoptRequested = true;
    instrumentationEpoch++;
}

void
Engine::onLocalProbesChanged(uint32_t funcIndex)
{
    instrumentationEpoch++;
    FuncState& fs = _funcs[funcIndex];
    if (fs.jit) {
        // The compiled code was specialized to the old instrumentation
        // and is now invalid (Section 4.5). Live frames notice the epoch
        // bump and return to the interpreter; the dirty mark makes the
        // Tiered engine recompile on the next call/backedge instead of
        // re-earning hotness.
        fs.jitEpoch++;
        _retiredJit.push_back(std::move(fs.jit));
        fs.recompilePending = true;
        stats.jitInvalidations++;
    }
}

void
Engine::onProbesBatchChanged(const std::vector<uint32_t>& funcIndices)
{
    // One epoch bump for the whole batch; per-function invalidation is
    // still required (each function's compiled code was specialized to
    // its old instrumentation, Section 4.5). Each touched function is
    // marked dirty exactly once, so the whole batch costs one lazy
    // recompile per function — not one per probe.
    instrumentationEpoch++;
    for (uint32_t funcIndex : funcIndices) {
        FuncState& fs = _funcs[funcIndex];
        if (fs.jit) {
            fs.jitEpoch++;
            _retiredJit.push_back(std::move(fs.jit));
            fs.recompilePending = true;
            stats.jitInvalidations++;
        }
    }
}

void
Engine::onGlobalProbesChanged()
{
    instrumentationEpoch++;
    bool enable = _probes.hasGlobalProbes();
    if (enable == _interpreterOnly) return;
    _interpreterOnly = enable;
    _dispatchMode = enable ? DispatchMode::Probed : DispatchMode::Normal;
    _dispatch = interpDispatchTable(_dispatchMode);
    stats.dispatchTableSwitches++;
    if (_timeline) {
        _timeline->instant("dispatch.switch",
                           {{"mode", enable ? "probed" : "normal"}});
    }
}

void
Engine::compileFunction(uint32_t funcIndex)
{
    FuncState& fs = _funcs[funcIndex];
    if (fs.decl->imported || _config.mode == ExecMode::Interpreter) return;
    bool recompile = fs.recompilePending;
    if (_timeline) {
        _timeline->begin("jit.compile",
                         {{"func", std::to_string(funcIndex)},
                          {"name", fs.decl->name},
                          {"recompile", recompile ? "1" : "0"}});
    }
    auto t0 = std::chrono::steady_clock::now();
    fs.recompilePending = false;
    fs.jit = translateFunction(*this, fs);
    _metrics.histogram("jit.compile_us").record(microsSince(t0));
    if (fs.jit) {
        stats.functionsCompiled++;
        if (recompile) _metrics.counter("jit.recompiles")++;
    }
    if (_timeline) {
        std::vector<std::pair<std::string, std::string>> endArgs;
        if (fs.jit) {
            endArgs.emplace_back("insts",
                                 std::to_string(fs.jit->insts.size()));
            // Lowering summary: "count=2 generic=1" style, sorted by
            // kind; empty when the function has no probe sites.
            uint64_t byKind[kNumProbeLoweringKinds] = {};
            for (auto& [pc, kind] : fs.jit->probeLowering) {
                (void)pc;
                byKind[(int)kind]++;
            }
            std::string lowering;
            for (int k = 1; k < kNumProbeLoweringKinds; k++) {
                if (!byKind[k]) continue;
                if (!lowering.empty()) lowering += " ";
                lowering += probeLoweringKindName((ProbeLoweringKind)k);
                lowering += "=";
                lowering += std::to_string(byKind[k]);
            }
            endArgs.emplace_back("lowering", lowering);
        }
        _timeline->end(std::move(endArgs));
    }
}

// ---- ProbeContext ----

uint32_t
ProbeContext::funcIndex() const
{
    return _fs->funcIndex;
}

std::shared_ptr<FrameAccessor>
ProbeContext::accessor() const
{
    if (!_frame) return nullptr;
    if (!_frame->accessor) {
        uint32_t depth = static_cast<uint32_t>(
            _frame - _engine.frames().data());
        _frame->accessor = std::make_shared<FrameAccessor>(
            _engine, depth, _frame->frameId);
    }
    return _frame->accessor;
}

void
OperandProbe::fire(ProbeContext& ctx)
{
    // Generic path: reach the top-of-stack through the FrameAccessor.
    // The compiled tier's intrinsified path calls fireOperand directly.
    fireOperand(ctx.accessor()->getOperand(0));
}

void
EntryExitProbe::fire(ProbeContext& ctx)
{
    // Generic path (interpreter, fused sites, intrinsification off):
    // assemble the same Activation the compiled tier's intrinsified
    // path passes, so the hook cannot observe which path fired it.
    Activation a;
    a.funcIndex = ctx.funcIndex();
    a.pc = ctx.pc();
    a.frameId = ctx.frame()->frameId;
    if (needsTopOfStack()) {
        a.topOfStack = ctx.accessor()->getOperand(0);
        a.hasTopOfStack = true;
    }
    fireActivation(a);
}

} // namespace wizpp
