/**
 * @file
 * Execution frames and per-function engine state.
 *
 * FuncState is the engine-side companion of a FuncDecl: the mutable
 * bytecode copy used for probe overwriting, the control-flow side table,
 * tier-up counters and compiled code. Frame is one activation; frames of
 * both tiers share the same layout so a frame can be deoptimized by
 * simply flipping its tier field (paper Section 4.6, strategy 4).
 */

#ifndef WIZPP_ENGINE_FRAME_H
#define WIZPP_ENGINE_FRAME_H

#include <cstdint>
#include <memory>
#include <vector>

#include "wasm/module.h"
#include "wasm/sidetable.h"

namespace wizpp {

class FrameAccessor;
struct JitCode;

/** Execution tier of a frame. */
enum class Tier : uint8_t {
    Interpreter = 0,
    Jit = 1,
};

/**
 * One fused superinstruction window: a side annotation over the
 * function's bytecode (src/interp/fusion.h). The head byte in
 * FuncState::dcode is the superinstruction opcode while the window is
 * fused; probes covering any pc of the window split it back to
 * singles (probeRefs tracks how many).
 */
struct FusedWindow
{
    uint32_t headPc = 0;    ///< pc of the window's first instruction
    uint32_t endPc = 0;     ///< one past the window's last byte
    uint8_t sop = 0;        ///< superinstruction opcode (dcode head)
    uint8_t headByte = 0;   ///< original single opcode at headPc
    uint32_t probeRefs = 0; ///< live probed pcs inside [headPc, endPc)
};

/** Engine-side state for one function. */
struct FuncState
{
    const FuncDecl* decl = nullptr;
    const FuncType* type = nullptr;
    uint32_t funcIndex = 0;

    /** Total locals including params. */
    uint32_t numLocals = 0;
    uint32_t numParams = 0;
    uint32_t numResults = 0;

    /** Types of all locals (params first). */
    std::vector<ValType> localTypes;

    /** Maximum operand-stack height (from validation; frame sizing). */
    uint32_t maxOperand = 0;

    /** Canonical (structural) type id for call_indirect checks. */
    uint32_t canonTypeId = 0;

    /**
     * Mutable instruction bytes. Local probes overwrite the first byte of
     * an instrumented instruction here with OP_PROBE; the pristine bytes
     * remain in decl->code (Section 4.2, bytecode overwriting).
     */
    std::vector<uint8_t> code;

    /**
     * Dispatch-byte side annotation (superinstruction fusion, see
     * src/interp/fusion.h and docs/INTERPRETER.md): a copy of `code`
     * in which the head byte of every fused window is replaced by the
     * window's superinstruction opcode. The interpreter *dispatches*
     * on these bytes; immediates, probe state, traces, analysis and
     * the JIT keep reading `code`, which stays byte-identical to an
     * unfused engine. Probe attach/detach mirrors OP_PROBE here and
     * splits/re-fuses the covering window.
     */
    std::vector<uint8_t> dcode;

    /** Fused windows, sorted by headPc (empty when fusion is off). */
    std::vector<FusedWindow> fusedWindows;

    SideTable sideTable;

    /** Compiled-tier code; null when not compiled. */
    std::unique_ptr<JitCode> jit;

    /**
     * Bumped whenever compiled code is invalidated (probe insertion or
     * removal). Frames remember the epoch they entered under; a mismatch
     * forces them back to the interpreter (Section 4.5).
     */
    uint64_t jitEpoch = 0;

    /** Call-count for tier-up heuristics. */
    uint32_t hotness = 0;

    /**
     * Set when a probe change invalidated this function's compiled
     * code while it was already hot: the Tiered engine recompiles a
     * dirty function on its next call or backedge without waiting for
     * the hotness counter to climb again. One insertBatch/removeBatch
     * marks each touched function dirty exactly once, so a batch costs
     * one recompile per function instead of one per probe
     * (Section 4.5; docs/JIT.md).
     */
    bool recompilePending = false;

    /** Number of local probes currently in this function. */
    uint32_t probeCount = 0;

    FuncState();
    ~FuncState();
    FuncState(FuncState&&) noexcept;
    FuncState& operator=(FuncState&&) noexcept;
};

/** One activation record. */
struct Frame
{
    FuncState* fs = nullptr;

    /**
     * Resume pc (bytecode offset). While a frame is running in a tier
     * loop, its live pc is cached in the loop; it is written back at
     * every checkpoint (probe fire, call, return, trap).
     */
    uint32_t pc = 0;

    /** Index of local 0 in the engine value array. */
    uint32_t localsBase = 0;

    /** Index of operand-stack slot 0 (== localsBase + numLocals). */
    uint32_t stackStart = 0;

    /** Saved operand-stack height (absolute value-array index). */
    uint32_t sp = 0;

    /** Monotonic id distinguishing reuses of the same stack slot. */
    uint64_t frameId = 0;

    /**
     * Accessor slot: the lazily-allocated FrameAccessor for this frame
     * (paper Section 2.3). Cleared on function entry; invalidated on
     * return and unwind.
     */
    std::shared_ptr<FrameAccessor> accessor;

    Tier tier = Tier::Interpreter;

    /** Jit epoch the frame entered compiled code under. */
    uint64_t jitEpoch = 0;

    /** Decoded-code resume index when tier == Jit. */
    uint32_t jitResumeIdx = 0;

    /** Set by frame modifications: forces deopt to the interpreter. */
    bool deoptRequested = false;

    /**
     * When resuming at this pc in the interpreter after a deopt, probes
     * at the pc already fired in the compiled tier and must not re-fire.
     */
    uint32_t skipProbeOncePc = 0xffffffffu;
};

} // namespace wizpp

#endif // WIZPP_ENGINE_FRAME_H
