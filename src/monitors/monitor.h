/**
 * @file
 * Monitor base class (paper Section 1.1): a self-contained dynamic
 * analysis that attaches to an engine, registers probes, and produces a
 * post-execution report. Monitor code (M-code) executes in the engine's
 * state space, never the program's, so monitors are non-intrusive by
 * construction.
 */

#ifndef WIZPP_MONITORS_MONITOR_H
#define WIZPP_MONITORS_MONITOR_H

#include <iosfwd>
#include <string>

namespace wizpp {

class Engine;

class Monitor
{
  public:
    virtual ~Monitor() = default;

    /**
     * Called when the monitor is attached to an engine (after the module
     * is loaded, before execution). This is where probes are registered.
     */
    virtual void onAttach(Engine& engine) = 0;

    /** Emits the post-execution report. */
    virtual void report(std::ostream&) {}

    /** The monitor's flag name (wizeng --monitors=<name> equivalent). */
    virtual std::string name() const = 0;
};

} // namespace wizpp

#endif // WIZPP_MONITORS_MONITOR_H
