/**
 * @file
 * Monitor base class (paper Section 1.1): a self-contained dynamic
 * analysis that attaches to an engine, registers probes, and produces a
 * post-execution report. Monitor code (M-code) executes in the engine's
 * state space, never the program's, so monitors are non-intrusive by
 * construction.
 *
 * See docs/ARCHITECTURE.md for how monitors sit on top of the probe
 * subsystem, and docs/PROBES.md for the attachment patterns (batch
 * insertion, fusion at shared sites, one-shot self-removal).
 */

#ifndef WIZPP_MONITORS_MONITOR_H
#define WIZPP_MONITORS_MONITOR_H

#include <iosfwd>
#include <string>

namespace wizpp {

class Engine;

/**
 * Base class of all monitors.
 *
 * Lifecycle contract: construct → Engine::attachMonitor() (which calls
 * onAttach) → program execution (probes fire) → report(). The engine
 * never takes ownership; a monitor must outlive every probe it
 * registered (probes are shared_ptr-held by the ProbeManager, but
 * their callbacks typically capture `this`).
 *
 * Thread-safety: the engine is single-threaded; all hooks run on the
 * execution thread.
 */
class Monitor
{
  public:
    virtual ~Monitor() = default;

    /**
     * Called when the monitor is attached to an engine (after the
     * module is loaded, before execution). This is where probes are
     * registered — use ProbeManager::insertBatch() for module-wide
     * instrumentation so each site's probe list is built once and the
     * engine pays a single instrumentation-epoch bump (see
     * docs/PROBES.md).
     */
    virtual void onAttach(Engine& engine) = 0;

    /**
     * Emits the post-execution report. May be called at any point
     * between runs; must not mutate instrumentation.
     */
    virtual void report(std::ostream&) {}

    /** The monitor's flag name (wizeng --monitors=<name> equivalent). */
    virtual std::string name() const = 0;
};

} // namespace wizpp

#endif // WIZPP_MONITORS_MONITOR_H
