/**
 * @file
 * The Monitor Zoo (paper Section 3): ready-made dynamic analyses built
 * on the probe API. Each monitor is a dozen-or-two lines of actual
 * instrumentation logic; most of the code is report formatting — as the
 * paper notes.
 */

#ifndef WIZPP_MONITORS_MONITORS_H
#define WIZPP_MONITORS_MONITORS_H

#include <algorithm>
#include <cstdint>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "monitors/monitor.h"
#include "probes/probe.h"

namespace wizpp {

class Engine;

/**
 * Prints every executed instruction (with optional operand stack).
 * Uses a single global probe — the paper's canonical global-probe use.
 */
class TraceMonitor : public Monitor
{
  public:
    explicit TraceMonitor(std::ostream& out, bool showStack = false)
        : _out(out), _showStack(showStack)
    {}

    void onAttach(Engine& engine) override;
    std::string name() const override { return "trace"; }

    uint64_t instructionsTraced = 0;

  private:
    std::ostream& _out;
    bool _showStack;
    std::shared_ptr<Probe> _probe;
};

/**
 * Code coverage: a local probe at every instruction that marks a bit
 * and removes itself, so covered paths asymptotically return to zero
 * overhead (the paper's example of dynamic probe removal).
 */
class CoverageMonitor : public Monitor
{
  public:
    void onAttach(Engine& engine) override;
    void report(std::ostream& out) override;
    std::string name() const override { return "coverage"; }

    /** Fraction of instructions executed in function @p funcIndex. */
    double covered(uint32_t funcIndex) const;

    /** Total covered / total instrumented (whole module). */
    double totalCoverage() const;

  private:
    Engine* _engine = nullptr;
    /** Per function: covered-bit per instruction boundary. */
    std::map<uint32_t, std::vector<bool>> _bits;
    std::map<uint32_t, std::vector<uint32_t>> _pcs;
};

/** Counts loop iterations with a CountProbe at every loop header. */
class LoopMonitor : public Monitor
{
  public:
    void onAttach(Engine& engine) override;
    void report(std::ostream& out) override;
    std::string name() const override { return "loops"; }

    struct LoopSite
    {
        uint32_t funcIndex;
        uint32_t pc;
        std::shared_ptr<CountProbe> probe;
    };
    const std::vector<LoopSite>& sites() const { return _sites; }

  private:
    Engine* _engine = nullptr;
    std::vector<LoopSite> _sites;
};

/**
 * Execution frequency of every instruction: a CountProbe per
 * instruction (the paper's heavyweight benchmark monitor, Section 5).
 * Can alternatively be implemented with one global probe (Section 5.2's
 * comparison); select with `useGlobalProbe`.
 */
class HotnessMonitor : public Monitor
{
  public:
    explicit HotnessMonitor(bool useGlobalProbe = false)
        : _useGlobalProbe(useGlobalProbe)
    {}

    void onAttach(Engine& engine) override;
    void report(std::ostream& out) override;
    std::string name() const override { return "hotness"; }

    /** Total probe fires (== instructions executed). */
    uint64_t totalCount() const;

    /** Count for one location. */
    uint64_t countAt(uint32_t funcIndex, uint32_t pc) const;

  private:
    bool _useGlobalProbe;
    Engine* _engine = nullptr;
    // Local-probe implementation: one CountProbe per instruction.
    std::map<uint64_t, std::shared_ptr<CountProbe>> _counters;
    // Global-probe implementation: M-state lookup per fire.
    std::shared_ptr<Probe> _globalProbe;
    std::unordered_map<uint64_t, uint64_t> _globalCounts;
};

/**
 * Branch profiler: instruments if/br_if/br_table and uses the
 * top-of-stack to tally the direction of each branch (the paper's
 * second benchmark monitor; intrinsifiable OperandProbes).
 */
class BranchMonitor : public Monitor
{
  public:
    explicit BranchMonitor(bool useGlobalProbe = false)
        : _useGlobalProbe(useGlobalProbe)
    {}

    void onAttach(Engine& engine) override;
    void report(std::ostream& out) override;
    std::string name() const override { return "branches"; }

    /** One instrumented branch site. */
    class BranchProbe : public OperandProbe
    {
      public:
        explicit BranchProbe(uint8_t opcode) : opcode(opcode) {}

        void
        fireOperand(Value tos) override
        {
            fires++;
            if (opcode == OP_BR_TABLE_MARKER) {
                uint32_t d = tos.i32();
                if (d >= dests.size()) {
                    dests.resize(std::min<uint32_t>(d + 1, 64), 0);
                }
                dests[std::min<uint32_t>(d, 63)]++;
            } else if (tos.i32()) {
                taken++;
            } else {
                notTaken++;
            }
        }

        static constexpr uint8_t OP_BR_TABLE_MARKER = 0x0e;

        uint8_t opcode;
        uint64_t fires = 0;
        uint64_t taken = 0;
        uint64_t notTaken = 0;
        std::vector<uint64_t> dests;
    };

    struct Site
    {
        uint32_t funcIndex;
        uint32_t pc;
        std::shared_ptr<BranchProbe> probe;
    };
    const std::vector<Site>& sites() const { return _sites; }

    uint64_t totalFires() const;

  private:
    Engine* _engine = nullptr;
    bool _useGlobalProbe;
    std::vector<Site> _sites;
    std::shared_ptr<Probe> _globalProbe;
    std::unordered_map<uint64_t, std::shared_ptr<BranchProbe>> _globalSites;
};

/** Traces all memory accesses: addresses and values (Section 3). */
class MemoryMonitor : public Monitor
{
  public:
    explicit MemoryMonitor(std::ostream& out) : _out(out) {}

    void onAttach(Engine& engine) override;
    std::string name() const override { return "memory"; }

    uint64_t loads = 0;
    uint64_t stores = 0;

  private:
    std::ostream& _out;
    std::vector<std::shared_ptr<Probe>> _probes;
};

/**
 * Call-site statistics: direct call counts and the resolved targets of
 * indirect calls — enough to build a dynamic call graph (Section 3).
 */
class CallsMonitor : public Monitor
{
  public:
    void onAttach(Engine& engine) override;
    void report(std::ostream& out) override;
    std::string name() const override { return "calls"; }

    struct CallSite
    {
        uint32_t funcIndex;       ///< caller
        uint32_t pc;
        bool indirect;
        uint32_t directTarget;    ///< for direct calls
        uint64_t count = 0;
        std::map<uint32_t, uint64_t> indirectTargets;  ///< resolved targets
    };

    const std::vector<CallSite>& callSites() const { return *_sites; }

    /** Edges of the dynamic call graph: (caller, callee) -> count. */
    std::map<std::pair<uint32_t, uint32_t>, uint64_t> callGraph() const;

  private:
    Engine* _engine = nullptr;
    std::shared_ptr<std::vector<CallSite>> _sites =
        std::make_shared<std::vector<CallSite>>();
    std::vector<std::shared_ptr<Probe>> _probes;
};

/**
 * Calling-context-tree profiler with self/nested wall-clock time and
 * flame-graph output (Section 3's "Call tree profiler"). Built on the
 * function entry/exit library, which itself is built on local probes —
 * demonstrating the instrumentation hierarchy.
 */
class CallTreeMonitor : public Monitor
{
  public:
    void onAttach(Engine& engine) override;
    void report(std::ostream& out) override;
    std::string name() const override { return "calltree"; }

    struct Node
    {
        uint32_t funcIndex = 0;
        uint64_t calls = 0;
        uint64_t totalNanos = 0;
        std::map<uint32_t, std::unique_ptr<Node>> children;
    };

    const Node& root() const { return _root; }

    /** Emits "a;b;c count" folded stacks for flame graphs. */
    void writeFlameGraph(std::ostream& out) const;

  private:
    struct Activation
    {
        Node* node;
        uint64_t startNanos;
        uint64_t frameId;
    };

    void onEntry(uint32_t funcIndex, uint64_t frameId);
    void onExit(uint64_t frameId);

    Engine* _engine = nullptr;
    Node _root;
    std::vector<Activation> _stack;
    std::shared_ptr<void> _entryExit;  // keeps the utility alive
};

/** Creates a monitor by its flag name (wizeng --monitors=<name>). */
std::unique_ptr<Monitor> createMonitor(const std::string& name,
                                       std::ostream& out);

/** Names accepted by createMonitor. */
std::vector<std::string> monitorNames();

} // namespace wizpp

#endif // WIZPP_MONITORS_MONITORS_H
