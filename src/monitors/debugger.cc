#include "monitors/debugger.h"

#include <cassert>
#include <sstream>

#include "engine/engine.h"
#include "probes/frameaccessor.h"
#include "wasm/decoder.h"
#include "wasm/opcodes.h"

namespace wizpp {

namespace {

std::string
funcLabel(Engine& eng, uint32_t funcIndex)
{
    const FuncDecl& d = *eng.funcState(funcIndex).decl;
    if (!d.name.empty()) return d.name;
    return "func" + std::to_string(funcIndex);
}

} // namespace

void
DebuggerMonitor::onAttach(Engine& engine)
{
    _engine = &engine;
    _out << "(wdb) attached; " << engine.numFuncs() << " functions\n";
    commandLoop(nullptr);
}

void
DebuggerMonitor::stopAt(ProbeContext& ctx, const std::string& why)
{
    const FuncDecl& d = *ctx.func()->decl;
    uint8_t op = d.code[ctx.pc()];
    _out << "(wdb) " << why << " at " << funcLabel(*_engine,
        ctx.funcIndex()) << "+" << ctx.pc() << ": " << opcodeName(op)
        << "\n";
    commandLoop(&ctx);
}

void
DebuggerMonitor::cmdBreak(const std::string& funcRef, uint32_t pc,
                          bool remove)
{
    int32_t f = _engine->findFunc(funcRef);
    if (f < 0) {
        char* end = nullptr;
        long v = strtol(funcRef.c_str(), &end, 10);
        if (end && *end == '\0') f = static_cast<int32_t>(v);
    }
    if (f < 0 || static_cast<size_t>(f) >= _engine->numFuncs()) {
        _out << "(wdb) no such function: " << funcRef << "\n";
        return;
    }
    auto key = std::make_pair(static_cast<uint32_t>(f), pc);
    if (remove) {
        auto it = _breakpoints.find(key);
        if (it == _breakpoints.end()) {
            _out << "(wdb) no breakpoint there\n";
            return;
        }
        _engine->probes().removeLocal(key.first, key.second,
                                      it->second.get());
        _breakpoints.erase(it);
        _out << "(wdb) deleted breakpoint " << funcRef << "+" << pc << "\n";
        return;
    }
    auto probe = makeProbe([this](ProbeContext& ctx) {
        breakpointHits++;
        stopAt(ctx, "breakpoint");
    });
    if (!_engine->probes().insertLocal(key.first, key.second, probe)) {
        _out << "(wdb) invalid location " << funcRef << "+" << pc << "\n";
        return;
    }
    _breakpoints[key] = probe;
    _out << "(wdb) breakpoint set at " << funcRef << "+" << pc << "\n";
}

void
DebuggerMonitor::cmdWatch(uint32_t addr)
{
    // Watchpoint: instrument every load/store; stop when the effective
    // address matches. (The paper's future-work hardware watchpoints
    // would make this cheaper; probes make it possible today.)
    for (uint32_t f = 0; f < _engine->numFuncs(); f++) {
        FuncState& fs = _engine->funcState(f);
        if (fs.decl->imported) continue;
        const auto& code = fs.decl->code;
        for (uint32_t pc : fs.sideTable.instrBoundaries) {
            uint8_t op = code[pc];
            bool isLoad = isLoadOpcode(op);
            bool isStore = isStoreOpcode(op);
            if (!isLoad && !isStore) continue;
            InstrView v;
            if (!decodeInstr(code, pc, &v)) {
                assert(false && "validated code must decode");
                continue;
            }
            uint32_t offset = v.memOffset;
            auto probe = makeProbe(
                [this, addr, offset, isLoad](ProbeContext& ctx) {
                    auto acc = ctx.accessor();
                    uint32_t a = isLoad ? acc->getOperand(0).i32()
                                        : acc->getOperand(1).i32();
                    if (a + offset == addr) {
                        watchpointHits++;
                        stopAt(ctx, "watchpoint @" + std::to_string(addr));
                    }
                });
            _engine->probes().insertLocal(f, pc, probe);
            _watchProbes.push_back(probe);
        }
    }
    _out << "(wdb) watching address " << addr << "\n";
}

void
DebuggerMonitor::armStep()
{
    // Single-step: a one-shot global probe fires before the next
    // instruction, wherever it is (Section 3's Debugger; the same
    // mechanism as the after-instruction library).
    auto holder = std::make_shared<std::shared_ptr<Probe>>();
    auto probe = makeProbe([this, holder](ProbeContext& ctx) {
        _engine->probes().removeGlobal(holder->get());
        holder->reset();
        stepsTaken++;
        stopAt(ctx, "step");
    });
    *holder = probe;
    _engine->probes().insertGlobal(probe);
}

void
DebuggerMonitor::printLocals(ProbeContext& ctx)
{
    auto acc = ctx.accessor();
    for (uint32_t i = 0; i < acc->numLocals(); i++) {
        _out << "  local[" << i << "] = " << acc->getLocal(i).toString()
             << "\n";
    }
}

void
DebuggerMonitor::printStack(ProbeContext& ctx)
{
    auto acc = ctx.accessor();
    uint32_t n = acc->numOperands();
    _out << "  operand stack (" << n << "):";
    for (uint32_t i = 0; i < n; i++) {
        _out << " " << acc->getOperand(i).toString();
    }
    _out << "\n";
}

void
DebuggerMonitor::printBacktrace(ProbeContext& ctx)
{
    auto acc = ctx.accessor();
    int depth = 0;
    while (acc) {
        _out << "  #" << depth << " "
             << funcLabel(*_engine, acc->func()->funcIndex) << "+"
             << acc->pc() << "\n";
        acc = acc->caller();
        depth++;
    }
}

void
DebuggerMonitor::commandLoop(ProbeContext* ctx)
{
    std::string line;
    while (std::getline(_in, line)) {
        std::istringstream ss(line);
        std::string cmd;
        ss >> cmd;
        if (cmd.empty() || cmd[0] == '#') continue;
        if (cmd == "run" || cmd == "continue" || cmd == "c") return;
        if (cmd == "step" || cmd == "s") {
            armStep();
            return;
        }
        if (cmd == "break" || cmd == "b") {
            std::string f;
            uint32_t pc = 0;
            ss >> f >> pc;
            cmdBreak(f, pc, false);
        } else if (cmd == "delete") {
            std::string f;
            uint32_t pc = 0;
            ss >> f >> pc;
            cmdBreak(f, pc, true);
        } else if (cmd == "watch") {
            uint32_t addr = 0;
            ss >> addr;
            cmdWatch(addr);
        } else if (cmd == "locals") {
            if (ctx) printLocals(*ctx);
            else _out << "(wdb) not stopped\n";
        } else if (cmd == "stack") {
            if (ctx) printStack(*ctx);
            else _out << "(wdb) not stopped\n";
        } else if (cmd == "bt") {
            if (ctx) printBacktrace(*ctx);
            else _out << "(wdb) not stopped\n";
        } else if (cmd == "set") {
            uint32_t idx = 0;
            int64_t val = 0;
            ss >> idx >> val;
            if (!ctx) {
                _out << "(wdb) not stopped\n";
                continue;
            }
            auto acc = ctx->accessor();
            Value v = acc->getLocal(idx);
            switch (v.type) {
              case ValType::I32:
                v = Value::makeI32(static_cast<int32_t>(val));
                break;
              case ValType::I64:
                v = Value::makeI64(val);
                break;
              case ValType::F64:
                v = Value::makeF64(static_cast<double>(val));
                break;
              case ValType::F32:
                v = Value::makeF32(static_cast<float>(val));
                break;
              default:
                break;
            }
            if (acc->setLocal(idx, v)) {
                _out << "(wdb) local[" << idx << "] = " << v.toString()
                     << "\n";
            } else {
                _out << "(wdb) set failed\n";
            }
        } else if (cmd == "setop") {
            // Change a value-stack slot (i from the top), Section 3's
            // "changing the state of value stack slots".
            uint32_t idx = 0;
            int64_t val = 0;
            ss >> idx >> val;
            if (!ctx) {
                _out << "(wdb) not stopped\n";
                continue;
            }
            auto acc = ctx->accessor();
            Value v = acc->getOperand(idx);
            switch (v.type) {
              case ValType::I32:
                v = Value::makeI32(static_cast<int32_t>(val));
                break;
              case ValType::I64:
                v = Value::makeI64(val);
                break;
              case ValType::F64:
                v = Value::makeF64(static_cast<double>(val));
                break;
              case ValType::F32:
                v = Value::makeF32(static_cast<float>(val));
                break;
              default:
                break;
            }
            if (acc->setOperand(idx, v)) {
                _out << "(wdb) stack[" << idx << "] = " << v.toString()
                     << "\n";
            } else {
                _out << "(wdb) setop failed\n";
            }
        } else if (cmd == "info") {
            for (const auto& [k, p] : _breakpoints) {
                _out << "  breakpoint " << funcLabel(*_engine, k.first)
                     << "+" << k.second << "\n";
            }
        } else {
            _out << "(wdb) unknown command: " << cmd << "\n";
        }
    }
}

} // namespace wizpp
