#include "monitors/entryexit.h"

#include "engine/engine.h"
#include "probes/frameaccessor.h"
#include "wasm/opcodes.h"

namespace wizpp {

/**
 * Entry hook: fires on a function's first instruction. Needs only the
 * activation identity, so it intrinsifies with no top-of-stack.
 */
class FunctionEntryExit::EntryProbe : public EntryExitProbe
{
  public:
    explicit EntryProbe(FunctionEntryExit* owner) : _owner(owner) {}

    void
    fireActivation(const Activation& a) override
    {
        _owner->handleEntry(a);
    }

  private:
    FunctionEntryExit* _owner;
};

/**
 * Exit hook: fires on returns, the final end, and exit-targeting
 * branches. Conditional branches consult the top-of-stack to learn
 * whether the exit is taken, so those instances declare it.
 */
class FunctionEntryExit::ExitProbe : public EntryExitProbe
{
  public:
    ExitProbe(FunctionEntryExit* owner, uint8_t opcode)
        : _owner(owner), _opcode(opcode)
    {}

    bool
    needsTopOfStack() const override
    {
        return _opcode == OP_BR_IF || _opcode == OP_BR_TABLE;
    }

    void
    fireActivation(const Activation& a) override
    {
        _owner->handleMaybeExit(a, _opcode);
    }

  private:
    FunctionEntryExit* _owner;
    uint8_t _opcode;
};

FunctionEntryExit::FunctionEntryExit(Engine& engine, EntryFn onEntry,
                                     ExitFn onExit)
    : _engine(engine), _onEntry(std::move(onEntry)),
      _onExit(std::move(onExit))
{}

FunctionEntryExit::~FunctionEntryExit()
{
    // One bulk detach for every installed probe: a single epoch bump
    // and one fused-entry rebuild per touched site, mirroring the
    // batch attach in instrumentAll().
    std::vector<ProbeManager::SiteProbe> batch;
    batch.reserve(_installed.size());
    for (const auto& inst : _installed) {
        batch.push_back({inst.funcIndex, inst.pc, inst.probe});
    }
    _engine.probes().removeBatch(batch);
}

void
FunctionEntryExit::instrumentAll()
{
    // One batch across the whole module: attach-time stays linear in
    // the number of entry/exit sites, with a single epoch bump.
    std::vector<ProbeManager::SiteProbe> batch;
    for (uint32_t i = 0; i < _engine.numFuncs(); i++) {
        if (!_engine.funcState(i).decl->imported) collect(i, batch);
    }
    _engine.probes().insertBatch(batch);
}

void
FunctionEntryExit::instrument(uint32_t funcIndex)
{
    std::vector<ProbeManager::SiteProbe> batch;
    collect(funcIndex, batch);
    _engine.probes().insertBatch(batch);
}

void
FunctionEntryExit::collect(uint32_t funcIndex,
                           std::vector<ProbeManager::SiteProbe>& batch)
{
    FuncState& fs = _engine.funcState(funcIndex);
    const SideTable& st = fs.sideTable;
    const std::vector<uint8_t>& code = fs.decl->code;
    uint32_t endPc = st.instrBoundaries.empty()
                         ? 0 : st.instrBoundaries.back();

    // Entry probe on the first instruction: loop labels resolve past
    // the loop header, so pc 0 is reached exactly once per activation.
    auto entry = std::make_shared<EntryProbe>(this);
    batch.push_back({funcIndex, 0, entry});
    _installed.push_back({funcIndex, 0, std::move(entry)});

    // Exit probes on returns, the final end, and exit-targeting branches.
    for (uint32_t pc : st.instrBoundaries) {
        uint8_t op = code[pc];
        bool candidate = false;
        if (op == OP_RETURN) candidate = true;
        if (op == OP_END && pc == endPc) candidate = true;
        if (op == OP_BR || op == OP_BR_IF) {
            auto it = st.branches.find(pc);
            candidate = it != st.branches.end() &&
                        it->second.targetPc == endPc;
        }
        if (op == OP_BR_TABLE) {
            auto it = st.brTables.find(pc);
            if (it != st.brTables.end()) {
                for (const auto& arm : it->second) {
                    if (arm.targetPc == endPc) candidate = true;
                }
            }
        }
        if (!candidate) continue;
        auto exitProbe = std::make_shared<ExitProbe>(this, op);
        batch.push_back({funcIndex, pc, exitProbe});
        _installed.push_back({funcIndex, pc, std::move(exitProbe)});
    }
}

void
FunctionEntryExit::handleEntry(const EntryExitProbe::Activation& a)
{
    _shadow.push_back({a.funcIndex, a.frameId});
    if (_onEntry) _onEntry(a.funcIndex, a.frameId);
}

void
FunctionEntryExit::handleMaybeExit(const EntryExitProbe::Activation& a,
                                   uint8_t opcode)
{
    // Conditional exits consult the top-of-stack (delivered inline by
    // the compiled tier, via the FrameAccessor on the generic path) to
    // learn whether the branch will be taken (Section 2.5 / 2.6).
    FuncState& fs = _engine.funcState(a.funcIndex);
    const SideTable& st = fs.sideTable;
    uint32_t endPc = st.instrBoundaries.back();
    bool exits = true;
    if (opcode == OP_BR_IF) {
        exits = a.topOfStack.i32() != 0;
    } else if (opcode == OP_BR_TABLE) {
        uint32_t idx = a.topOfStack.i32();
        const auto& arms = st.brTables.at(a.pc);
        uint32_t n = static_cast<uint32_t>(arms.size()) - 1;
        const SideTableEntry& chosen = arms[idx < n ? idx : n];
        exits = chosen.targetPc == endPc;
    }
    if (!exits) return;

    uint64_t id = a.frameId;
    // Pop the shadow stack down to (and including) this activation;
    // anything above it missed its exit (should not happen, but monitor
    // robustness beats silent corruption).
    while (!_shadow.empty()) {
        Shadow top = _shadow.back();
        _shadow.pop_back();
        if (_onExit) _onExit(top.funcIndex, top.frameId);
        if (top.frameId == id) break;
    }
}

void
FunctionEntryExit::flushUnwound()
{
    while (!_shadow.empty()) {
        Shadow top = _shadow.back();
        _shadow.pop_back();
        if (_onExit) _onExit(top.funcIndex, top.frameId);
    }
}

void
runAfterCurrentInstruction(Engine& engine,
                           std::function<void(ProbeContext&)> callback)
{
    engine.probes().insertGlobal(makeProbe(
        [cb = std::move(callback)](ProbeContext& ctx) {
            cb(ctx);
            // One-shot: O(1) self-removal. Deferred-removal consistency
            // means this firing still completes safely.
            ctx.removeSelf();
        }));
}

} // namespace wizpp
