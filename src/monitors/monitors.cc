#include "monitors/monitors.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <iomanip>

#include "engine/engine.h"
#include "monitors/entryexit.h"
#include "probes/frameaccessor.h"
#include "trace/pairprofile.h"
#include "wasm/decoder.h"
#include "wasm/opcodes.h"

namespace wizpp {

namespace {

uint64_t
locKey(uint32_t funcIndex, uint32_t pc)
{
    return (static_cast<uint64_t>(funcIndex) << 32) | pc;
}

std::string
funcName(Engine& eng, uint32_t funcIndex)
{
    const FuncDecl& d = *eng.funcState(funcIndex).decl;
    if (!d.name.empty()) return d.name;
    return "func" + std::to_string(funcIndex);
}

uint64_t
nowNanos()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

// ---------------------------------------------------------------------
// TraceMonitor
// ---------------------------------------------------------------------

void
TraceMonitor::onAttach(Engine& engine)
{
    _probe = makeProbe([this, &engine](ProbeContext& ctx) {
        instructionsTraced++;
        const FuncDecl& d = *ctx.func()->decl;
        uint8_t op = d.code[ctx.pc()];
        _out << funcName(engine, ctx.funcIndex()) << "+" << ctx.pc()
             << ": " << opcodeName(op);
        if (_showStack) {
            auto acc = ctx.accessor();
            uint32_t n = acc->numOperands();
            _out << "  [";
            for (uint32_t i = n; i > 0; i--) {
                _out << acc->getOperand(i - 1).toString();
                if (i > 1) _out << " ";
            }
            _out << "]";
        }
        _out << "\n";
    });
    engine.probes().insertGlobal(_probe);
}

// ---------------------------------------------------------------------
// CoverageMonitor
// ---------------------------------------------------------------------

void
CoverageMonitor::onAttach(Engine& engine)
{
    _engine = &engine;
    // One batch for the whole module: each site's probe list is built
    // once and the engine pays a single epoch bump, instead of O(sites)
    // copy-on-write churn.
    std::vector<ProbeManager::SiteProbe> batch;
    for (uint32_t f = 0; f < engine.numFuncs(); f++) {
        FuncState& fs = engine.funcState(f);
        if (fs.decl->imported) continue;
        const auto& pcs = fs.sideTable.instrBoundaries;
        _pcs[f] = pcs;
        _bits[f] = std::vector<bool>(pcs.size(), false);
        for (size_t i = 0; i < pcs.size(); i++) {
            // One-shot: mark the bit, then O(1) self-removal so covered
            // locations return to zero overhead (dynamic probe removal,
            // Section 3) — no holder shared_ptr, no site lookup.
            batch.push_back({f, pcs[i], makeProbe(
                [this, f, i](ProbeContext& ctx) {
                    _bits[f][i] = true;
                    ctx.removeSelf();
                })});
        }
    }
    engine.probes().insertBatch(batch);
}

double
CoverageMonitor::covered(uint32_t funcIndex) const
{
    auto it = _bits.find(funcIndex);
    if (it == _bits.end() || it->second.empty()) return 0.0;
    size_t n = 0;
    for (bool b : it->second) n += b;
    return static_cast<double>(n) / static_cast<double>(it->second.size());
}

double
CoverageMonitor::totalCoverage() const
{
    size_t n = 0, total = 0;
    for (const auto& [f, bits] : _bits) {
        total += bits.size();
        for (bool b : bits) n += b;
    }
    return total ? static_cast<double>(n) / static_cast<double>(total) : 0.0;
}

void
CoverageMonitor::report(std::ostream& out)
{
    out << "=== coverage ===\n";
    for (const auto& [f, bits] : _bits) {
        size_t n = 0;
        for (bool b : bits) n += b;
        out << "  " << funcName(*_engine, f) << ": " << n << "/"
            << bits.size() << " ("
            << std::fixed << std::setprecision(1)
            << 100.0 * covered(f) << "%)\n";
    }
    out << "  total: " << std::fixed << std::setprecision(1)
        << 100.0 * totalCoverage() << "%\n";
}

// ---------------------------------------------------------------------
// LoopMonitor
// ---------------------------------------------------------------------

void
LoopMonitor::onAttach(Engine& engine)
{
    _engine = &engine;
    std::vector<ProbeManager::SiteProbe> batch;
    for (uint32_t f = 0; f < engine.numFuncs(); f++) {
        FuncState& fs = engine.funcState(f);
        if (fs.decl->imported) continue;
        for (uint32_t headerPc : fs.sideTable.loopHeaders) {
            auto probe = std::make_shared<CountProbe>();
            batch.push_back({f, headerPc, probe});
            _sites.push_back({f, headerPc, std::move(probe)});
        }
    }
    engine.probes().insertBatch(batch);
}

void
LoopMonitor::report(std::ostream& out)
{
    out << "=== loop iteration counts ===\n";
    for (const auto& s : _sites) {
        out << "  " << funcName(*_engine, s.funcIndex) << "+" << s.pc
            << ": " << s.probe->count << "\n";
    }
}

// ---------------------------------------------------------------------
// HotnessMonitor
// ---------------------------------------------------------------------

void
HotnessMonitor::onAttach(Engine& engine)
{
    _engine = &engine;
    if (_useGlobalProbe) {
        // Emulating local probes with a global probe requires M-state
        // lookups in the monitor (Section 2.2, footnote 6).
        _globalProbe = makeProbe([this](ProbeContext& ctx) {
            _globalCounts[locKey(ctx.funcIndex(), ctx.pc())]++;
        });
        engine.probes().insertGlobal(_globalProbe);
        return;
    }
    std::vector<ProbeManager::SiteProbe> batch;
    for (uint32_t f = 0; f < engine.numFuncs(); f++) {
        FuncState& fs = engine.funcState(f);
        if (fs.decl->imported) continue;
        for (uint32_t pc : fs.sideTable.instrBoundaries) {
            auto probe = std::make_shared<CountProbe>();
            batch.push_back({f, pc, probe});
            _counters[locKey(f, pc)] = std::move(probe);
        }
    }
    engine.probes().insertBatch(batch);
}

uint64_t
HotnessMonitor::totalCount() const
{
    uint64_t n = 0;
    for (const auto& [k, p] : _counters) n += p->count;
    for (const auto& [k, c] : _globalCounts) n += c;
    return n;
}

uint64_t
HotnessMonitor::countAt(uint32_t funcIndex, uint32_t pc) const
{
    uint64_t k = locKey(funcIndex, pc);
    auto it = _counters.find(k);
    if (it != _counters.end()) return it->second->count;
    auto git = _globalCounts.find(k);
    return git == _globalCounts.end() ? 0 : git->second;
}

void
HotnessMonitor::report(std::ostream& out)
{
    struct Row
    {
        uint64_t key;
        uint64_t count;
    };
    std::vector<Row> rows;
    for (const auto& [k, p] : _counters) rows.push_back({k, p->count});
    for (const auto& [k, c] : _globalCounts) rows.push_back({k, c});
    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) { return a.count > b.count; });
    out << "=== hottest instructions ===\n";
    size_t shown = 0;
    for (const Row& r : rows) {
        if (r.count == 0 || shown >= 20) break;
        uint32_t f = static_cast<uint32_t>(r.key >> 32);
        uint32_t pc = static_cast<uint32_t>(r.key);
        uint8_t op = _engine->funcState(f).decl->code[pc];
        out << "  " << funcName(*_engine, f) << "+" << pc << " "
            << opcodeName(op) << ": " << r.count << "\n";
        shown++;
    }
    out << "  total fires: " << totalCount() << "\n";
}

// ---------------------------------------------------------------------
// BranchMonitor
// ---------------------------------------------------------------------

void
BranchMonitor::onAttach(Engine& engine)
{
    _engine = &engine;
    auto branchPcs = [&](uint32_t f, auto&& fn) {
        FuncState& fs = engine.funcState(f);
        if (fs.decl->imported) return;
        const std::vector<uint8_t>& code = fs.decl->code;
        for (uint32_t pc : fs.sideTable.instrBoundaries) {
            uint8_t op = code[pc];
            if (op == OP_IF || op == OP_BR_IF || op == OP_BR_TABLE) {
                fn(pc, op);
            }
        }
    };

    if (_useGlobalProbe) {
        for (uint32_t f = 0; f < engine.numFuncs(); f++) {
            branchPcs(f, [&](uint32_t pc, uint8_t op) {
                _globalSites[locKey(f, pc)] =
                    std::make_shared<BranchProbe>(op);
            });
        }
        _globalProbe = makeProbe([this](ProbeContext& ctx) {
            auto it = _globalSites.find(locKey(ctx.funcIndex(), ctx.pc()));
            if (it == _globalSites.end()) return;
            it->second->fireOperand(ctx.accessor()->getOperand(0));
        });
        engine.probes().insertGlobal(_globalProbe);
        return;
    }

    std::vector<ProbeManager::SiteProbe> batch;
    for (uint32_t f = 0; f < engine.numFuncs(); f++) {
        branchPcs(f, [&](uint32_t pc, uint8_t op) {
            auto probe = std::make_shared<BranchProbe>(op);
            batch.push_back({f, pc, probe});
            _sites.push_back({f, pc, std::move(probe)});
        });
    }
    engine.probes().insertBatch(batch);
}

uint64_t
BranchMonitor::totalFires() const
{
    uint64_t n = 0;
    for (const auto& s : _sites) n += s.probe->fires;
    for (const auto& [k, p] : _globalSites) n += p->fires;
    return n;
}

void
BranchMonitor::report(std::ostream& out)
{
    out << "=== branch profile ===\n";
    auto row = [&](uint32_t f, uint32_t pc, const BranchProbe& p) {
        if (p.fires == 0) return;
        out << "  " << funcName(*_engine, f) << "+" << pc << " "
            << opcodeName(p.opcode) << ": ";
        if (p.opcode == OP_BR_TABLE) {
            out << p.fires << " fires, dests [";
            for (size_t i = 0; i < p.dests.size(); i++) {
                if (i) out << " ";
                out << p.dests[i];
            }
            out << "]";
        } else {
            out << "taken " << p.taken << ", not-taken " << p.notTaken;
        }
        out << "\n";
    };
    for (const auto& s : _sites) row(s.funcIndex, s.pc, *s.probe);
    for (const auto& [k, p] : _globalSites) {
        row(static_cast<uint32_t>(k >> 32), static_cast<uint32_t>(k), *p);
    }
    out << "  total branch fires: " << totalFires() << "\n";
}

// ---------------------------------------------------------------------
// MemoryMonitor
// ---------------------------------------------------------------------

void
MemoryMonitor::onAttach(Engine& engine)
{
    std::vector<ProbeManager::SiteProbe> batch;
    for (uint32_t f = 0; f < engine.numFuncs(); f++) {
        FuncState& fs = engine.funcState(f);
        if (fs.decl->imported) continue;
        const std::vector<uint8_t>& code = fs.decl->code;
        for (uint32_t pc : fs.sideTable.instrBoundaries) {
            uint8_t op = code[pc];
            bool isLoad = isLoadOpcode(op);
            bool isStore = isStoreOpcode(op);
            if (!isLoad && !isStore) continue;
            InstrView v;
            if (!decodeInstr(code, pc, &v)) {
                assert(false && "validated code must decode");
                continue;
            }
            uint32_t offset = v.memOffset;
            auto probe = makeProbe(
                [this, op, offset, isLoad, &engine](ProbeContext& ctx) {
                    auto acc = ctx.accessor();
                    if (isLoad) {
                        loads++;
                        uint32_t addr = acc->getOperand(0).i32();
                        _out << "load  " << opcodeName(op) << " @"
                             << addr + offset << "\n";
                    } else {
                        stores++;
                        Value val = acc->getOperand(0);
                        uint32_t addr = acc->getOperand(1).i32();
                        _out << "store " << opcodeName(op) << " @"
                             << addr + offset << " = " << val.toString()
                             << "\n";
                    }
                });
            batch.push_back({f, pc, probe});
            _probes.push_back(std::move(probe));
        }
    }
    engine.probes().insertBatch(batch);
}

// ---------------------------------------------------------------------
// CallsMonitor
// ---------------------------------------------------------------------

void
CallsMonitor::onAttach(Engine& engine)
{
    _engine = &engine;
    std::vector<ProbeManager::SiteProbe> batch;
    for (uint32_t f = 0; f < engine.numFuncs(); f++) {
        FuncState& fs = engine.funcState(f);
        if (fs.decl->imported) continue;
        const std::vector<uint8_t>& code = fs.decl->code;
        for (uint32_t pc : fs.sideTable.instrBoundaries) {
            uint8_t op = code[pc];
            if (op != OP_CALL && op != OP_CALL_INDIRECT) continue;
            InstrView v;
            if (!decodeInstr(code, pc, &v)) {
                assert(false && "validated code must decode");
                continue;
            }
            CallSite site;
            site.funcIndex = f;
            site.pc = pc;
            site.indirect = op == OP_CALL_INDIRECT;
            site.directTarget = site.indirect ? 0 : v.index;
            size_t idx = _sites->size();
            _sites->push_back(site);
            auto probe = makeProbe(
                [this, idx, &engine](ProbeContext& ctx) {
                    CallSite& s = (*_sites)[idx];
                    s.count++;
                    if (s.indirect) {
                        // Resolve the target before the call happens by
                        // reading the table slot off the operand stack —
                        // the paper's "after-instruction" workaround for
                        // call_indirect (Section 2.6, strategy 1 spirit).
                        uint32_t slot = ctx.accessor()->getOperand(0).i32();
                        Table& t = engine.instance().table;
                        if (t.inBounds(slot) &&
                            t.get(slot) != kNullFuncIndex) {
                            s.indirectTargets[t.get(slot)]++;
                        }
                    }
                });
            batch.push_back({f, pc, probe});
            _probes.push_back(std::move(probe));
        }
    }
    engine.probes().insertBatch(batch);
}

std::map<std::pair<uint32_t, uint32_t>, uint64_t>
CallsMonitor::callGraph() const
{
    std::map<std::pair<uint32_t, uint32_t>, uint64_t> edges;
    for (const auto& s : *_sites) {
        if (s.indirect) {
            for (const auto& [target, n] : s.indirectTargets) {
                edges[{s.funcIndex, target}] += n;
            }
        } else if (s.count) {
            edges[{s.funcIndex, s.directTarget}] += s.count;
        }
    }
    return edges;
}

void
CallsMonitor::report(std::ostream& out)
{
    out << "=== call sites ===\n";
    for (const auto& s : *_sites) {
        if (s.count == 0) continue;
        out << "  " << funcName(*_engine, s.funcIndex) << "+" << s.pc;
        if (s.indirect) {
            out << " call_indirect x" << s.count << " ->";
            for (const auto& [t, n] : s.indirectTargets) {
                out << " " << funcName(*_engine, t) << ":" << n;
            }
        } else {
            out << " call " << funcName(*_engine, s.directTarget) << " x"
                << s.count;
        }
        out << "\n";
    }
}

// ---------------------------------------------------------------------
// CallTreeMonitor
// ---------------------------------------------------------------------

void
CallTreeMonitor::onAttach(Engine& engine)
{
    _engine = &engine;
    auto util = std::make_shared<FunctionEntryExit>(
        engine,
        [this](uint32_t f, uint64_t id) { onEntry(f, id); },
        [this](uint32_t, uint64_t id) { onExit(id); });
    util->instrumentAll();
    _entryExit = util;
}

void
CallTreeMonitor::onEntry(uint32_t funcIndex, uint64_t frameId)
{
    Node* parent = _stack.empty() ? &_root : _stack.back().node;
    auto& slot = parent->children[funcIndex];
    if (!slot) {
        slot = std::make_unique<Node>();
        slot->funcIndex = funcIndex;
    }
    slot->calls++;
    _stack.push_back({slot.get(), nowNanos(), frameId});
}

void
CallTreeMonitor::onExit(uint64_t)
{
    if (_stack.empty()) return;
    Activation a = _stack.back();
    _stack.pop_back();
    a.node->totalNanos += nowNanos() - a.startNanos;
}

namespace {

void
printNode(std::ostream& out, Engine& eng,
          const CallTreeMonitor::Node& node, int depth)
{
    uint64_t childNanos = 0;
    for (const auto& [f, c] : node.children) childNanos += c->totalNanos;
    uint64_t self = node.totalNanos > childNanos
                        ? node.totalNanos - childNanos : 0;
    for (int i = 0; i < depth; i++) out << "  ";
    out << funcName(eng, node.funcIndex) << " calls=" << node.calls
        << " total=" << node.totalNanos / 1000 << "us self="
        << self / 1000 << "us\n";
    for (const auto& [f, c] : node.children) {
        printNode(out, eng, *c, depth + 1);
    }
}

void
foldNode(std::ostream& out, Engine& eng, const CallTreeMonitor::Node& node,
         std::string prefix)
{
    std::string path = prefix.empty()
                           ? funcName(eng, node.funcIndex)
                           : prefix + ";" + funcName(eng, node.funcIndex);
    uint64_t childNanos = 0;
    for (const auto& [f, c] : node.children) childNanos += c->totalNanos;
    uint64_t self = node.totalNanos > childNanos
                        ? node.totalNanos - childNanos : 0;
    if (self) out << path << " " << self << "\n";
    for (const auto& [f, c] : node.children) foldNode(out, eng, *c, path);
}

} // namespace

void
CallTreeMonitor::report(std::ostream& out)
{
    // Flush activations that never saw an exit (trap unwinds).
    std::static_pointer_cast<FunctionEntryExit>(_entryExit)->flushUnwound();
    out << "=== calling context tree ===\n";
    for (const auto& [f, c] : _root.children) {
        printNode(out, *_engine, *c, 1);
    }
}

void
CallTreeMonitor::writeFlameGraph(std::ostream& out) const
{
    for (const auto& [f, c] : _root.children) {
        foldNode(out, *_engine, *c, "");
    }
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

std::unique_ptr<Monitor>
createMonitor(const std::string& name, std::ostream& out)
{
    if (name == "trace") return std::make_unique<TraceMonitor>(out);
    if (name == "trace-stack") {
        return std::make_unique<TraceMonitor>(out, true);
    }
    if (name == "coverage") return std::make_unique<CoverageMonitor>();
    if (name == "loops") return std::make_unique<LoopMonitor>();
    if (name == "hotness") return std::make_unique<HotnessMonitor>();
    if (name == "hotness-global") {
        return std::make_unique<HotnessMonitor>(true);
    }
    if (name == "branches") return std::make_unique<BranchMonitor>();
    if (name == "branches-global") {
        return std::make_unique<BranchMonitor>(true);
    }
    if (name == "memory") return std::make_unique<MemoryMonitor>(out);
    if (name == "calls") return std::make_unique<CallsMonitor>();
    if (name == "calltree") return std::make_unique<CallTreeMonitor>();
    if (name == "pairs") return std::make_unique<PairProfileMonitor>();
    return nullptr;
}

std::vector<std::string>
monitorNames()
{
    return {"trace", "trace-stack", "coverage", "loops", "hotness",
            "hotness-global", "branches", "branches-global", "memory",
            "calls", "calltree", "pairs"};
}

} // namespace wizpp
