/**
 * @file
 * Higher-level instrumentation utilities built purely from probes,
 * demonstrating the paper's instrumentation hierarchy (Sections 2.5 and
 * 2.6): the engine only provides global/local probes; function
 * entry/exit hooks and "after-instruction" hooks are libraries on top.
 */

#ifndef WIZPP_MONITORS_ENTRYEXIT_H
#define WIZPP_MONITORS_ENTRYEXIT_H

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "probes/probe.h"
#include "probes/probemanager.h"

namespace wizpp {

class Engine;

/**
 * Function entry/exit hooks (paper Section 2.5, strategy 1).
 *
 * Entry is detected with a local probe on each function's first
 * instruction: branch targets never point at pc 0 (loop labels resolve
 * past the loop header), so the probe fires exactly once per
 * activation, including (tail-)recursive calls.
 *
 * Exit is detected by probing `return` instructions and the function's
 * final `end`, plus branches that target the function's outermost label
 * — for conditional branches the top-of-stack value decides whether
 * the branch (and hence the exit) will be taken. Activations unwound
 * by traps are flushed via flushUnwound().
 *
 * All probes are EntryExitProbes, so in compiled code every entry and
 * exit site lowers to the intrinsified kJProbeEntryExit form: a
 * pre-resolved direct call with no frame checkpoint, and the
 * conditional-exit top-of-stack delivered inline instead of through a
 * FrameAccessor (Section 4.4; docs/JIT.md).
 */
class FunctionEntryExit
{
  public:
    using EntryFn = std::function<void(uint32_t funcIndex,
                                       uint64_t frameId)>;
    using ExitFn = std::function<void(uint32_t funcIndex,
                                      uint64_t frameId)>;

    FunctionEntryExit(Engine& engine, EntryFn onEntry, ExitFn onExit);
    ~FunctionEntryExit();

    /** Instruments one function (a single-function batch insertion). */
    void instrument(uint32_t funcIndex);

    /**
     * Instruments every non-imported function with one batch insertion
     * across the whole module: one epoch bump, one probe-list build per
     * entry/exit site.
     */
    void instrumentAll();

    /** Flushes activations discarded by a trap unwind. */
    void flushUnwound();

    /** Currently live (shadow-stack) activation depth. */
    size_t liveDepth() const { return _shadow.size(); }

  private:
    struct Shadow
    {
        uint32_t funcIndex;
        uint64_t frameId;
    };

    class EntryProbe;
    class ExitProbe;

    void collect(uint32_t funcIndex,
                 std::vector<ProbeManager::SiteProbe>& batch);
    void handleEntry(const EntryExitProbe::Activation& a);
    void handleMaybeExit(const EntryExitProbe::Activation& a,
                         uint8_t opcode);

    Engine& _engine;
    EntryFn _onEntry;
    ExitFn _onExit;
    std::vector<Shadow> _shadow;
    struct Installed
    {
        uint32_t funcIndex;
        uint32_t pc;
        std::shared_ptr<Probe> probe;
    };
    std::vector<Installed> _installed;
};

/**
 * "After-instruction" hook (paper Section 2.6, strategy 3): runs
 * @p callback once, just before the *next* instruction executed, by
 * inserting a one-shot global probe that removes itself. Dispatch-table
 * switching makes this cheap: no compiled code is discarded.
 */
void runAfterCurrentInstruction(
    Engine& engine, std::function<void(ProbeContext&)> callback);

} // namespace wizpp

#endif // WIZPP_MONITORS_ENTRYEXIT_H
