/**
 * @file
 * The Debugger REPL monitor (paper Section 3): interactive bytecode-
 * level debugging built from local probes (breakpoints, watchpoints)
 * and a global probe (single-step). It is the zoo's only monitor that
 * modifies frames (set-local), which exercises the frame-modification
 * consistency machinery: immediate deoptimization of compiled frames.
 *
 * The REPL is stream-driven so tests and examples can script it.
 * Commands:
 *   break <func> <pc>     set a breakpoint (func by name or index)
 *   delete <func> <pc>    remove a breakpoint
 *   watch <addr>          break when memory address is accessed
 *   step                  execute one instruction, then stop
 *   continue              resume until the next stop
 *   locals                print the stopped frame's locals
 *   stack                 print the stopped frame's operand stack
 *   bt                    print a backtrace
 *   set <local> <value>   write an i32 local (frame modification)
 *   info                  list breakpoints
 *   run                   finish the setup phase and start execution
 */

#ifndef WIZPP_MONITORS_DEBUGGER_H
#define WIZPP_MONITORS_DEBUGGER_H

#include <iostream>
#include <map>
#include <memory>
#include <string>

#include "monitors/monitor.h"
#include "probes/probe.h"

namespace wizpp {

class DebuggerMonitor : public Monitor
{
  public:
    DebuggerMonitor(std::istream& in, std::ostream& out)
        : _in(in), _out(out)
    {}

    void onAttach(Engine& engine) override;
    std::string name() const override { return "debugger"; }

    uint64_t breakpointHits = 0;
    uint64_t stepsTaken = 0;
    uint64_t watchpointHits = 0;

  private:
    /** Reads and executes commands until continue/step/run/EOF. */
    void commandLoop(ProbeContext* ctx);

    void cmdBreak(const std::string& funcRef, uint32_t pc, bool remove);
    void cmdWatch(uint32_t addr);
    void armStep();
    void printLocals(ProbeContext& ctx);
    void printStack(ProbeContext& ctx);
    void printBacktrace(ProbeContext& ctx);
    void stopAt(ProbeContext& ctx, const std::string& why);

    Engine* _engine = nullptr;
    std::istream& _in;
    std::ostream& _out;
    std::map<std::pair<uint32_t, uint32_t>,
             std::shared_ptr<Probe>> _breakpoints;
    std::vector<std::shared_ptr<Probe>> _watchProbes;
    bool _stepArmed = false;
};

} // namespace wizpp

#endif // WIZPP_MONITORS_DEBUGGER_H
