#include "jit/lowering.h"

#include <typeinfo>

#include "engine/engine.h"
#include "probes/probe.h"

namespace wizpp {

const char*
probeLoweringKindName(ProbeLoweringKind k)
{
    switch (k) {
      case ProbeLoweringKind::None: return "none";
      case ProbeLoweringKind::Count: return "count";
      case ProbeLoweringKind::Operand: return "operand";
      case ProbeLoweringKind::EntryExit: return "entryexit";
      case ProbeLoweringKind::Fused: return "fused";
      case ProbeLoweringKind::GenericLite: return "generic-lite";
      case ProbeLoweringKind::Generic: return "generic";
      case ProbeLoweringKind::Coverage: return "coverage";
    }
    return "?";
}

ProbeLowering
lowerProbeSite(const EngineConfig& cfg, const ProbeManager::SiteView& site)
{
    ProbeLowering low;
    if (!site.fired) return low;

    Probe* p = site.fired.get();

    if (site.memberCount == 1) {
        // CountProbe intrinsifies to a bare `++count` — valid only when
        // fire() is exactly CountProbe::fire (a subclass may override
        // fire() and still answer isCountProbe(), so the dynamic type
        // must be CountProbe itself). This is the single place that
        // predicate exists; recompiles after a site grows, shrinks or
        // is re-probed re-run it and cannot disagree with themselves.
        if (cfg.intrinsifyCountProbe && p->isCountProbe() &&
            typeid(*p) == typeid(CountProbe)) {
            low.kind = ProbeLoweringKind::Count;
            low.op = kJProbeCount;
            low.ptr = &static_cast<CountProbe*>(p)->count;
            low.needsSpill = false;
            low.pin = site.fired;
            return low;
        }
        // CoverageProbe intrinsifies to the self-patching one-shot
        // slot — recordHit() IS fire(), so the same exact-dynamic-type
        // rule as CountProbe applies (a subclass overriding fire()
        // must take the generic path).
        if (cfg.intrinsifyCoverageProbe && p->isCoverageProbe() &&
            typeid(*p) == typeid(CoverageProbe)) {
            low.kind = ProbeLoweringKind::Coverage;
            low.op = kJProbeCoverage;
            low.ptr = static_cast<CoverageProbe*>(p);
            low.needsSpill = false;
            low.pin = site.fired;
            return low;
        }
        // OperandProbe's contract is that fireOperand() IS the
        // behavior (the base fire() merely routes the accessor-read
        // top-of-stack into it), so every subclass intrinsifies.
        if (cfg.intrinsifyOperandProbe && p->isOperandProbe()) {
            low.kind = ProbeLoweringKind::Operand;
            low.op = kJProbeOperand;
            low.ptr = static_cast<OperandProbe*>(p);
            low.needsSpill = false;
            low.pin = site.fired;
            return low;
        }
        // EntryExitProbe: same contract shape — fireActivation() is
        // the behavior, the base fire() only assembles the Activation.
        if (cfg.intrinsifyEntryExitProbe && p->isEntryExitProbe()) {
            auto* ee = static_cast<EntryExitProbe*>(p);
            low.kind = ProbeLoweringKind::EntryExit;
            low.op = kJProbeEntryExit;
            low.aux = ee->needsTopOfStack() ? 1 : 0;
            low.ptr = ee;
            low.needsSpill = false;
            low.pin = site.fired;
            return low;
        }
    } else if (cfg.intrinsifyFusedProbe) {
        // Multi-probe site: one pre-resolved call to the fused firing
        // entry. Membership changes always invalidate this code (epoch
        // bump) before the stale entry could fire, and the pin keeps
        // the entry alive for any in-flight retired frame.
        low.kind = ProbeLoweringKind::Fused;
        low.op = kJProbeFused;
        low.aux = static_cast<uint16_t>(site.memberCount);
        low.ptr = p;
        low.needsSpill = p->frameAccess() != FrameAccess::None;
        low.pin = site.fired;
        return low;
    }

    // Generic path: runtime site dispatch through fireLocal, honoring
    // the full deferred-insert/remove semantics. The spill set shrinks
    // to nothing when every probe at the site declared that it never
    // touches frame state.
    if (p->frameAccess() == FrameAccess::None) {
        low.kind = ProbeLoweringKind::GenericLite;
        low.op = kJProbeGenericLite;
        low.needsSpill = false;
    } else {
        low.kind = ProbeLoweringKind::Generic;
        low.op = kJProbeGeneric;
        low.needsSpill = true;
    }
    return low;
}

} // namespace wizpp
