/**
 * @file
 * Compiled-tier execution loop.
 */

#ifndef WIZPP_JIT_JITEXEC_H
#define WIZPP_JIT_JITEXEC_H

#include "engine/engine.h"

namespace wizpp {

/**
 * Runs the compiled tier on the engine's top frame (which must have
 * valid compiled code) until the program finishes, traps, or the top
 * frame must continue in the interpreter.
 */
Signal runJitTier(Engine& eng);

} // namespace wizpp

#endif // WIZPP_JIT_JITEXEC_H
