/**
 * @file
 * Compiled-tier code representation.
 *
 * The "baseline JIT" of this reproduction pre-decodes a function body
 * into a dense array of JInst records: immediates are fully decoded,
 * control flow is resolved to instruction indices, and probed locations
 * are compiled to explicit probe instructions — a generic runtime call,
 * or an intrinsified form for CountProbes (inline counter increment)
 * and OperandProbes (direct top-of-stack call), exactly mirroring
 * Figure 2 of the paper. See DESIGN.md substitution S1 for why this
 * stands in for native code emission.
 */

#ifndef WIZPP_JIT_JITCODE_H
#define WIZPP_JIT_JITCODE_H

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace wizpp {

class Engine;
struct FuncState;

/** Extended opcode space for compiled instructions. */

/** 0xFC-prefixed ops are encoded as kJFcBase + subopcode. */
constexpr uint16_t kJFcBase = 256;

/** Generic probe: checkpoint, runtime call into ProbeManager. */
constexpr uint16_t kJProbeGeneric = 512;

/** Intrinsified CountProbe: inline counter increment (Figure 2). */
constexpr uint16_t kJProbeCount = 513;

/** Intrinsified OperandProbe: direct call with top-of-stack value. */
constexpr uint16_t kJProbeOperand = 514;

/** Returned by JitCode::indexOfPc for unmapped pcs. */
constexpr uint32_t kNoJitIndex = 0xffffffffu;

/** One pre-decoded instruction. */
struct JInst
{
    uint16_t op = 0;    ///< opcode byte, kJFcBase+sub, or kJProbe*
    uint16_t aux = 0;   ///< branch valCount / br_table entry count
    uint32_t a = 0;     ///< target idx / local idx / func idx / mem offset
    uint32_t b = 0;     ///< branch popTo
    uint32_t pc = 0;    ///< original bytecode pc (deopt anchor)
    uint64_t imm = 0;   ///< constant payload
    void* ptr = nullptr;  ///< intrinsified probe target
};

/** A resolved br_table arm. */
struct JBranch
{
    uint32_t target = 0;
    uint32_t popTo = 0;
    uint16_t valCount = 0;
};

/** Compiled code for one function. */
struct JitCode
{
    std::vector<JInst> insts;
    std::vector<JBranch> brTableArms;
    std::unordered_map<uint32_t, uint32_t> pcToIndex;

    /** Maps a bytecode pc to its compiled index (kNoJitIndex if absent). */
    uint32_t
    indexOfPc(uint32_t pc) const
    {
        auto it = pcToIndex.find(pc);
        return it == pcToIndex.end() ? kNoJitIndex : it->second;
    }
};

/**
 * Compiles @p fs with the engine's current instrumentation baked in
 * (probe sites become probe instructions; see Section 4.3-4.4).
 */
std::unique_ptr<JitCode> translateFunction(Engine& eng, FuncState& fs);

} // namespace wizpp

#endif // WIZPP_JIT_JITCODE_H
