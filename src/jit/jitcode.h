/**
 * @file
 * Compiled-tier code representation.
 *
 * The "baseline JIT" of this reproduction pre-decodes a function body
 * into a dense array of JInst records: immediates are fully decoded,
 * control flow is resolved to instruction indices, and probed locations
 * are compiled to explicit probe instructions whose shape the
 * instrumentation-lowering layer (jit/lowering.h, docs/JIT.md) picks
 * per site — intrinsified count/operand/entry-exit forms, one
 * pre-resolved fused call, or the generic runtime call, mirroring
 * Figure 2 of the paper. See DESIGN.md substitution S1 for why this
 * stands in for native code emission.
 */

#ifndef WIZPP_JIT_JITCODE_H
#define WIZPP_JIT_JITCODE_H

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "jit/lowering.h"

namespace wizpp {

class Engine;
struct FuncState;

/** Extended opcode space for compiled instructions (probe opcodes —
    kJProbe* — live with their decision logic in jit/lowering.h). */

/** 0xFC-prefixed ops are encoded as kJFcBase + subopcode. */
constexpr uint16_t kJFcBase = 256;

/** Returned by JitCode::indexOfPc for unmapped pcs. */
constexpr uint32_t kNoJitIndex = 0xffffffffu;

/** One pre-decoded instruction. */
struct JInst
{
    uint16_t op = 0;    ///< opcode byte, kJFcBase+sub, or kJProbe*
    uint16_t aux = 0;   ///< branch valCount / br_table entry count
    uint32_t a = 0;     ///< target idx / local idx / func idx / mem offset
    uint32_t b = 0;     ///< branch popTo
    uint32_t pc = 0;    ///< original bytecode pc (deopt anchor)
    uint64_t imm = 0;   ///< constant payload
    void* ptr = nullptr;  ///< intrinsified probe target
};

/** A resolved br_table arm. */
struct JBranch
{
    uint32_t target = 0;
    uint32_t popTo = 0;
    uint16_t valCount = 0;
};

/** Compiled code for one function. */
struct JitCode
{
    std::vector<JInst> insts;
    std::vector<JBranch> brTableArms;
    std::unordered_map<uint32_t, uint32_t> pcToIndex;

    /**
     * Owners of every pre-resolved probe target baked into insts
     * (counter addresses, operand/entry-exit/fused probe pointers).
     * Compiled code pins what it points at: even if M-code detaches a
     * probe and drops the last external reference while this (then
     * retired) code is still executing, no JInst::ptr can dangle.
     */
    std::vector<std::shared_ptr<Probe>> pinned;

    /**
     * pc -> lowering kind for every probe site compiled into this
     * code (introspection: tests assert intrinsification decisions,
     * benchmarks label per-kind columns).
     */
    std::unordered_map<uint32_t, ProbeLoweringKind> probeLowering;

    /** Maps a bytecode pc to its compiled index (kNoJitIndex if absent). */
    uint32_t
    indexOfPc(uint32_t pc) const
    {
        auto it = pcToIndex.find(pc);
        return it == pcToIndex.end() ? kNoJitIndex : it->second;
    }

    /** The lowering kind at @p pc (None when the pc is unprobed). */
    ProbeLoweringKind
    loweringAt(uint32_t pc) const
    {
        auto it = probeLowering.find(pc);
        return it == probeLowering.end() ? ProbeLoweringKind::None
                                         : it->second;
    }
};

/**
 * Compiles @p fs with the engine's current instrumentation baked in
 * (probe sites become probe instructions; see Section 4.3-4.4).
 */
std::unique_ptr<JitCode> translateFunction(Engine& eng, FuncState& fs);

} // namespace wizpp

#endif // WIZPP_JIT_JITCODE_H
