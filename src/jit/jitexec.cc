#include "jit/jitexec.h"

#include <cmath>
#include <cstring>

#include "jit/jitcode.h"
#include "probes/frameaccessor.h"
#include "wasm/opcodes.h"

namespace wizpp {

namespace {

constexpr uint32_t kNoPc = 0xffffffffu;

/** Live compiled-tier state. */
struct JState
{
    Engine& eng;
    Value* vals;
    Instance* inst;
    Frame* frame = nullptr;
    FuncState* fs = nullptr;
    JitCode* jc = nullptr;  ///< non-const: coverage slots self-patch
    uint32_t idx = 0;      ///< next instruction index
    uint32_t sp = 0;
    Signal signal = Signal::Done;
    bool exit = false;

    explicit JState(Engine& e)
        : eng(e), vals(e.values().data()), inst(&e.instance())
    {}

    void
    loadTopFrame()
    {
        frame = &eng.frames().back();
        fs = frame->fs;
        jc = fs->jit.get();
        idx = frame->jitResumeIdx;
        sp = frame->sp;
    }
};

inline void
doTrap(JState& J, uint32_t pc, TrapReason r)
{
    J.frame->pc = pc;
    J.frame->sp = J.sp;
    J.eng.setTrap(r);
    J.signal = Signal::Trap;
    J.exit = true;
}

inline void
applyBranch(JState& J, uint32_t target, uint32_t popTo, uint32_t valCount)
{
    uint32_t dst = J.frame->stackStart + popTo;
    uint32_t srcBase = J.sp - valCount;
    for (uint32_t i = 0; i < valCount; i++) {
        J.vals[dst + i] = J.vals[srcBase + i];
    }
    J.sp = dst + valCount;
    J.idx = target;
}

/** Leaves compiled code: the top frame resumes in the interpreter. */
inline void
deoptHere(JState& J, uint32_t pc, bool skipProbes)
{
    J.frame->pc = pc;
    J.frame->sp = J.sp;
    J.frame->tier = Tier::Interpreter;
    if (skipProbes) J.frame->skipProbeOncePc = pc;
    J.eng.stats.frameDeopts++;
    J.signal = Signal::TierSwitch;
    J.exit = true;
}

inline void
doReturn(JState& J)
{
    uint32_t arity = J.fs->numResults;
    uint32_t lb = J.frame->localsBase;
    for (uint32_t i = 0; i < arity; i++) {
        J.vals[lb + i] = J.vals[J.sp - arity + i];
    }
    if (J.frame->accessor) {
        J.frame->accessor->invalidate();
        J.frame->accessor.reset();
    }
    auto& frames = J.eng.frames();
    frames.pop_back();
    if (frames.empty()) {
        J.sp = lb + arity;
        J.signal = Signal::Done;
        J.exit = true;
        return;
    }
    Frame& caller = frames.back();
    caller.sp = lb + arity;
    FuncState* cfs = caller.fs;
    if (!J.eng.interpreterOnly() && caller.tier == Tier::Jit && cfs->jit &&
        caller.jitEpoch == cfs->jitEpoch && !caller.deoptRequested) {
        J.loadTopFrame();
        return;
    }
    J.signal = Signal::TierSwitch;
    J.exit = true;
}

/** Calls a function from compiled code; nextIdx resumes the caller. */
inline void
doCall(JState& J, uint32_t calleeIdx, uint32_t nextIdx)
{
    Engine& eng = J.eng;
    FuncState& callee = eng.funcState(calleeIdx);
    uint32_t nextPc = J.jc->insts[nextIdx].pc;

    if (callee.decl->imported) {
        const HostFunc& hf = J.inst->hostFuncs[calleeIdx];
        uint32_t n = callee.numParams;
        std::vector<Value> args(J.vals + J.sp - n, J.vals + J.sp);
        J.sp -= n;
        J.frame->pc = nextPc;
        J.frame->sp = J.sp;
        J.frame->jitResumeIdx = nextIdx;
        std::vector<Value> results;
        TrapReason t = hf.fn(args, &results);
        if (t != TrapReason::None) {
            doTrap(J, J.jc->insts[nextIdx - 1].pc, t);
            return;
        }
        for (const Value& v : results) J.vals[J.sp++] = v;
        J.idx = nextIdx;
        return;
    }

    uint32_t nparams = callee.numParams;
    uint32_t localsBase = J.sp - nparams;
    J.frame->pc = nextPc;
    J.frame->sp = localsBase;
    J.frame->jitResumeIdx = nextIdx;

    auto& frames = eng.frames();
    if (frames.size() >= eng.config().maxFrames) {
        doTrap(J, J.jc->insts[nextIdx - 1].pc, TrapReason::StackOverflow);
        return;
    }
    uint32_t stackStart = localsBase + callee.numLocals;
    if (stackStart + callee.maxOperand > eng.values().size()) {
        doTrap(J, J.jc->insts[nextIdx - 1].pc, TrapReason::StackOverflow);
        return;
    }

    // Tier-up accounting also applies to calls made from compiled code;
    // Jit mode lazily recompiles invalidated code (Section 4.5).
    eng.maybeCompileOnEntry(callee);

    frames.emplace_back();
    Frame& f = frames.back();
    f.fs = &callee;
    f.pc = 0;
    f.localsBase = localsBase;
    f.stackStart = stackStart;
    f.sp = stackStart;
    f.frameId = eng.nextFrameId();
    f.accessor = nullptr;
    f.jitEpoch = callee.jitEpoch;
    f.jitResumeIdx = 0;
    f.deoptRequested = false;
    f.skipProbeOncePc = kNoPc;

    for (uint32_t i = nparams; i < callee.numLocals; i++) {
        J.vals[localsBase + i] = Value::zeroOf(callee.localTypes[i]);
    }

    if (callee.jit) {
        f.tier = Tier::Jit;
        J.loadTopFrame();
    } else {
        f.tier = Tier::Interpreter;
        J.signal = Signal::TierSwitch;
        J.exit = true;
    }
}

template <typename F>
inline F
wasmMin(F a, F b)
{
    if (std::isnan(a) || std::isnan(b)) {
        return std::numeric_limits<F>::quiet_NaN();
    }
    if (a == b) return std::signbit(a) ? a : b;
    return a < b ? a : b;
}

template <typename F>
inline F
wasmMax(F a, F b)
{
    if (std::isnan(a) || std::isnan(b)) {
        return std::numeric_limits<F>::quiet_NaN();
    }
    if (a == b) return std::signbit(a) ? b : a;
    return a > b ? a : b;
}

template <typename IT>
inline IT
truncSat(double v, double lo, double hi)
{
    if (std::isnan(v)) return 0;
    double t = std::trunc(v);
    if (t < lo) return std::numeric_limits<IT>::min();
    if (t > hi) return std::numeric_limits<IT>::max();
    return static_cast<IT>(t);
}

} // namespace

Signal
runJitTier(Engine& eng)
{
    JState J(eng);
    J.loadTopFrame();

#define TOP J.vals[J.sp - 1]
#define PUSH(v) J.vals[J.sp++] = (v)
#define POP() J.vals[--J.sp]
#define BINOP_CASE(OPC, POPT, MAKE_EXPR)                                  \
    case OPC: {                                                           \
        auto b = POP().POPT();                                            \
        auto a = TOP.POPT();                                              \
        TOP = MAKE_EXPR;                                                  \
        J.idx++;                                                          \
        break;                                                            \
    }
#define UNOP_CASE(OPC, POPT, MAKE_EXPR)                                   \
    case OPC: {                                                           \
        auto a = TOP.POPT();                                              \
        TOP = MAKE_EXPR;                                                  \
        J.idx++;                                                          \
        break;                                                            \
    }
#define LOAD_CASE(OPC, CT, MAKE)                                          \
    case OPC: {                                                           \
        uint32_t addr = TOP.i32();                                        \
        Memory& mem = J.inst->memory;                                     \
        if (!mem.inBounds(addr, n.a, sizeof(CT))) {                       \
            doTrap(J, n.pc, TrapReason::MemoryOutOfBounds);               \
            break;                                                        \
        }                                                                 \
        CT raw = mem.read<CT>(addr + n.a);                                \
        TOP = MAKE;                                                       \
        J.idx++;                                                          \
        break;                                                            \
    }
#define STORE_CASE(OPC, CT, GET)                                          \
    case OPC: {                                                           \
        Value val = POP();                                                \
        uint32_t addr = POP().i32();                                      \
        Memory& mem = J.inst->memory;                                     \
        if (!mem.inBounds(addr, n.a, sizeof(CT))) {                       \
            doTrap(J, n.pc, TrapReason::MemoryOutOfBounds);               \
            break;                                                        \
        }                                                                 \
        mem.write<CT>(addr + n.a, static_cast<CT>(GET));                  \
        J.idx++;                                                          \
        break;                                                            \
    }
#define TRUNC_CASE(OPC, POPT, IT, LO, HI, MAKE)                           \
    case OPC: {                                                           \
        double v = static_cast<double>(TOP.POPT());                       \
        if (std::isnan(v)) {                                              \
            doTrap(J, n.pc, TrapReason::InvalidConversion);               \
            break;                                                        \
        }                                                                 \
        double t = std::trunc(v);                                         \
        if (!(t >= (LO) && t < (HI))) {                                   \
            doTrap(J, n.pc, TrapReason::IntegerOverflow);                 \
            break;                                                        \
        }                                                                 \
        TOP = MAKE(static_cast<IT>(t));                                   \
        J.idx++;                                                          \
        break;                                                            \
    }

    while (!J.exit) {
        const JInst& n = J.jc->insts[J.idx];
        switch (n.op) {
          // ---- Probes (Section 4.3-4.4; lowering kinds in
          // jit/lowering.h, per-kind contracts in docs/JIT.md) ----
          case kJProbeGeneric: {
            uint32_t pc = n.pc;
            // Checkpoint program and VM state, then call M-code.
            J.frame->pc = pc;
            J.frame->sp = J.sp;
            J.frame->jitResumeIdx = J.idx;
            FuncState* fs = J.fs;
            eng.probes().fireLocal(J.frame, fs, pc);
            // The probes may have modified the frame or invalidated this
            // code; if so, continue in the interpreter (Section 4.5).
            if (J.frame->deoptRequested ||
                J.frame->jitEpoch != fs->jitEpoch || eng.interpreterOnly()) {
                J.frame->deoptRequested = false;
                deoptHere(J, pc, /*skipProbes=*/true);
                break;
            }
            J.idx++;
            break;
          }
          case kJProbeGenericLite: {
            // Runtime-dispatched like kJProbeGeneric, but every probe
            // at the site declared FrameAccess::None, so the frame
            // checkpoint (the spill) is dropped entirely.
            FuncState* fs = J.fs;
            eng.probes().fireLocal(J.frame, fs, n.pc);
            if (J.frame->deoptRequested ||
                J.frame->jitEpoch != fs->jitEpoch ||
                eng.interpreterOnly()) {
                J.frame->deoptRequested = false;
                deoptHere(J, n.pc, /*skipProbes=*/true);
                break;
            }
            J.idx++;
            break;
          }
          case kJProbeFused: {
            // One pre-resolved call to the site's fused firing entry —
            // no per-fire site lookup or snapshot copy. The spill
            // decision was made at lowering time from the members'
            // declared FrameAccess.
            uint32_t pc = n.pc;
            if (n.b) {
                J.frame->pc = pc;
                J.frame->sp = J.sp;
                J.frame->jitResumeIdx = J.idx;
            }
            FuncState* fs = J.fs;
            eng.probes().fireResolved(static_cast<Probe*>(n.ptr), n.aux,
                                      J.frame, fs, pc);
            if (J.frame->deoptRequested ||
                J.frame->jitEpoch != fs->jitEpoch || eng.interpreterOnly()) {
                J.frame->deoptRequested = false;
                deoptHere(J, pc, /*skipProbes=*/true);
                break;
            }
            J.idx++;
            break;
          }
          case kJProbeCount:
            // Fully intrinsified counter increment (Figure 2, right).
            ++*static_cast<uint64_t*>(n.ptr);
            J.idx++;
            break;
          case kJProbeCoverage: {
            // One-shot coverage slot (docs/FUZZING.md): record the hit,
            // then patch this very instruction into the covered nop so
            // steady-state coverage costs one dispatch. The listener
            // callback is M-code, so the epoch is re-checked like any
            // intrinsified call; a listener that mutates
            // instrumentation deopts here and the (invalidated) code —
            // patched or not — is never re-entered.
            uint64_t epoch = eng.instrumentationEpoch;
            static_cast<CoverageProbe*>(n.ptr)->recordHit();
            if (eng.instrumentationEpoch != epoch) {
                J.frame->deoptRequested = false;
                deoptHere(J, n.pc, /*skipProbes=*/true);
                break;
            }
            J.jc->insts[J.idx].op = kJProbeCovered;
            J.idx++;
            break;
          }
          case kJProbeCovered:
            // Self-patched coverage slot after its first fire: inert
            // until the owning index batch-detaches the probe and the
            // function recompiles without the slot.
            J.idx++;
            break;
          case kJProbeOperand: {
            // Direct call with the top-of-stack value; no FrameAccessor.
            uint64_t epoch = eng.instrumentationEpoch;
            static_cast<OperandProbe*>(n.ptr)->fireOperand(TOP);
            if (eng.instrumentationEpoch != epoch) {
                // M-code touched instrumentation; bail out safely.
                J.frame->deoptRequested = false;
                deoptHere(J, n.pc, /*skipProbes=*/true);
                break;
            }
            J.idx++;
            break;
          }
          case kJProbeEntryExit: {
            // Pre-resolved entry/exit hook: the inline pre-sequence
            // assembles the Activation from live loop state (no frame
            // checkpoint, no ProbeContext, no FrameAccessor); the
            // post-sequence re-checks the instrumentation epoch so
            // hook callbacks that mutate instrumentation deopt safely.
            auto* ee = static_cast<EntryExitProbe*>(n.ptr);
            EntryExitProbe::Activation a;
            a.funcIndex = J.fs->funcIndex;
            a.pc = n.pc;
            a.frameId = J.frame->frameId;
            if (n.aux) {
                a.topOfStack = TOP;
                a.hasTopOfStack = true;
            }
            uint64_t epoch = eng.instrumentationEpoch;
            ee->fireActivation(a);
            if (eng.instrumentationEpoch != epoch) {
                J.frame->deoptRequested = false;
                deoptHere(J, n.pc, /*skipProbes=*/true);
                break;
            }
            J.idx++;
            break;
          }

          // ---- Control flow ----
          case OP_UNREACHABLE:
            doTrap(J, n.pc, TrapReason::Unreachable);
            break;
          case OP_IF: {
            uint32_t cond = POP().i32();
            if (cond) {
                J.idx++;
            } else {
                applyBranch(J, n.a, n.b, n.aux);
            }
            break;
          }
          case OP_ELSE:
          case OP_BR:
            applyBranch(J, n.a, n.b, n.aux);
            break;
          case OP_BR_IF: {
            uint32_t cond = POP().i32();
            if (cond) {
                applyBranch(J, n.a, n.b, n.aux);
            } else {
                J.idx++;
            }
            break;
          }
          case OP_BR_TABLE: {
            uint32_t v = POP().i32();
            uint32_t count = n.aux;  // includes default
            uint32_t arm = v < count - 1 ? v : count - 1;
            const JBranch& br = J.jc->brTableArms[n.a + arm];
            applyBranch(J, br.target, br.popTo, br.valCount);
            break;
          }
          case OP_RETURN:
            doReturn(J);
            break;
          case OP_CALL:
            doCall(J, n.a, J.idx + 1);
            break;
          case OP_CALL_INDIRECT: {
            uint32_t slot = POP().i32();
            Table& table = J.inst->table;
            if (!table.inBounds(slot)) {
                doTrap(J, n.pc, TrapReason::TableOutOfBounds);
                break;
            }
            uint32_t target = table.get(slot);
            if (target == kNullFuncIndex) {
                doTrap(J, n.pc, TrapReason::UninitializedTableEntry);
                break;
            }
            if (eng.funcState(target).canonTypeId != n.a) {
                doTrap(J, n.pc, TrapReason::IndirectCallTypeMismatch);
                break;
            }
            doCall(J, target, J.idx + 1);
            break;
          }

          // ---- Parametric / variable ----
          case OP_DROP:
            --J.sp;
            J.idx++;
            break;
          case OP_SELECT: {
            uint32_t cond = POP().i32();
            Value v2 = POP();
            Value v1 = POP();
            PUSH(cond ? v1 : v2);
            J.idx++;
            break;
          }
          case OP_LOCAL_GET:
            PUSH(J.vals[J.frame->localsBase + n.a]);
            J.idx++;
            break;
          case OP_LOCAL_SET:
            J.vals[J.frame->localsBase + n.a] = POP();
            J.idx++;
            break;
          case OP_LOCAL_TEE:
            J.vals[J.frame->localsBase + n.a] = TOP;
            J.idx++;
            break;
          case OP_GLOBAL_GET:
            PUSH(J.inst->globals[n.a].value);
            J.idx++;
            break;
          case OP_GLOBAL_SET:
            J.inst->globals[n.a].value = POP();
            J.idx++;
            break;

          // ---- Memory ----
          LOAD_CASE(OP_I32_LOAD, uint32_t, Value::makeI32(raw))
          LOAD_CASE(OP_I64_LOAD, uint64_t, Value::makeI64(raw))
          LOAD_CASE(OP_F32_LOAD, float, Value::makeF32(raw))
          LOAD_CASE(OP_F64_LOAD, double, Value::makeF64(raw))
          LOAD_CASE(OP_I32_LOAD8_S, int8_t,
                    Value::makeI32(static_cast<int32_t>(raw)))
          LOAD_CASE(OP_I32_LOAD8_U, uint8_t,
                    Value::makeI32(static_cast<uint32_t>(raw)))
          LOAD_CASE(OP_I32_LOAD16_S, int16_t,
                    Value::makeI32(static_cast<int32_t>(raw)))
          LOAD_CASE(OP_I32_LOAD16_U, uint16_t,
                    Value::makeI32(static_cast<uint32_t>(raw)))
          LOAD_CASE(OP_I64_LOAD8_S, int8_t,
                    Value::makeI64(static_cast<int64_t>(raw)))
          LOAD_CASE(OP_I64_LOAD8_U, uint8_t,
                    Value::makeI64(static_cast<uint64_t>(raw)))
          LOAD_CASE(OP_I64_LOAD16_S, int16_t,
                    Value::makeI64(static_cast<int64_t>(raw)))
          LOAD_CASE(OP_I64_LOAD16_U, uint16_t,
                    Value::makeI64(static_cast<uint64_t>(raw)))
          LOAD_CASE(OP_I64_LOAD32_S, int32_t,
                    Value::makeI64(static_cast<int64_t>(raw)))
          LOAD_CASE(OP_I64_LOAD32_U, uint32_t,
                    Value::makeI64(static_cast<uint64_t>(raw)))
          STORE_CASE(OP_I32_STORE, uint32_t, val.i32())
          STORE_CASE(OP_I64_STORE, uint64_t, val.i64())
          STORE_CASE(OP_F32_STORE, float, val.f32())
          STORE_CASE(OP_F64_STORE, double, val.f64())
          STORE_CASE(OP_I32_STORE8, uint8_t, val.i32())
          STORE_CASE(OP_I32_STORE16, uint16_t, val.i32())
          STORE_CASE(OP_I64_STORE8, uint8_t, val.i64())
          STORE_CASE(OP_I64_STORE16, uint16_t, val.i64())
          STORE_CASE(OP_I64_STORE32, uint32_t, val.i64())
          case OP_MEMORY_SIZE:
            PUSH(Value::makeI32(J.inst->memory.pages()));
            J.idx++;
            break;
          case OP_MEMORY_GROW:
            TOP = Value::makeI32(J.inst->memory.grow(TOP.i32()));
            J.idx++;
            break;

          // ---- Constants ----
          case OP_I32_CONST:
            PUSH(Value(ValType::I32, n.imm & 0xffffffffu));
            J.idx++;
            break;
          case OP_I64_CONST:
            PUSH(Value(ValType::I64, n.imm));
            J.idx++;
            break;
          case OP_F32_CONST:
            PUSH(Value(ValType::F32, n.imm & 0xffffffffu));
            J.idx++;
            break;
          case OP_F64_CONST:
            PUSH(Value(ValType::F64, n.imm));
            J.idx++;
            break;

          // ---- i32 compare/arithmetic ----
          UNOP_CASE(OP_I32_EQZ, i32, Value::makeI32(uint32_t{a == 0}))
          BINOP_CASE(OP_I32_EQ, i32, Value::makeI32(uint32_t{a == b}))
          BINOP_CASE(OP_I32_NE, i32, Value::makeI32(uint32_t{a != b}))
          BINOP_CASE(OP_I32_LT_S, i32s, Value::makeI32(uint32_t{a < b}))
          BINOP_CASE(OP_I32_LT_U, i32, Value::makeI32(uint32_t{a < b}))
          BINOP_CASE(OP_I32_GT_S, i32s, Value::makeI32(uint32_t{a > b}))
          BINOP_CASE(OP_I32_GT_U, i32, Value::makeI32(uint32_t{a > b}))
          BINOP_CASE(OP_I32_LE_S, i32s, Value::makeI32(uint32_t{a <= b}))
          BINOP_CASE(OP_I32_LE_U, i32, Value::makeI32(uint32_t{a <= b}))
          BINOP_CASE(OP_I32_GE_S, i32s, Value::makeI32(uint32_t{a >= b}))
          BINOP_CASE(OP_I32_GE_U, i32, Value::makeI32(uint32_t{a >= b}))
          UNOP_CASE(OP_I32_CLZ, i32,
                    Value::makeI32(a ? uint32_t(__builtin_clz(a)) : 32u))
          UNOP_CASE(OP_I32_CTZ, i32,
                    Value::makeI32(a ? uint32_t(__builtin_ctz(a)) : 32u))
          UNOP_CASE(OP_I32_POPCNT, i32,
                    Value::makeI32(uint32_t(__builtin_popcount(a))))
          BINOP_CASE(OP_I32_ADD, i32, Value::makeI32(a + b))
          BINOP_CASE(OP_I32_SUB, i32, Value::makeI32(a - b))
          BINOP_CASE(OP_I32_MUL, i32, Value::makeI32(a * b))
          BINOP_CASE(OP_I32_AND, i32, Value::makeI32(a & b))
          BINOP_CASE(OP_I32_OR, i32, Value::makeI32(a | b))
          BINOP_CASE(OP_I32_XOR, i32, Value::makeI32(a ^ b))
          BINOP_CASE(OP_I32_SHL, i32, Value::makeI32(a << (b & 31)))
          BINOP_CASE(OP_I32_SHR_U, i32, Value::makeI32(a >> (b & 31)))
          BINOP_CASE(OP_I32_SHR_S, i32,
                     Value::makeI32(uint32_t(int32_t(a) >> (b & 31))))
          BINOP_CASE(OP_I32_ROTL, i32, Value::makeI32(
              (b & 31) ? ((a << (b & 31)) | (a >> (32 - (b & 31)))) : a))
          BINOP_CASE(OP_I32_ROTR, i32, Value::makeI32(
              (b & 31) ? ((a >> (b & 31)) | (a << (32 - (b & 31)))) : a))
          case OP_I32_DIV_S: {
            int32_t b = POP().i32s();
            int32_t a = TOP.i32s();
            if (b == 0) { doTrap(J, n.pc, TrapReason::DivByZero); break; }
            if (a == INT32_MIN && b == -1) {
                doTrap(J, n.pc, TrapReason::IntegerOverflow);
                break;
            }
            TOP = Value::makeI32(a / b);
            J.idx++;
            break;
          }
          case OP_I32_DIV_U: {
            uint32_t b = POP().i32();
            uint32_t a = TOP.i32();
            if (b == 0) { doTrap(J, n.pc, TrapReason::DivByZero); break; }
            TOP = Value::makeI32(a / b);
            J.idx++;
            break;
          }
          case OP_I32_REM_S: {
            int32_t b = POP().i32s();
            int32_t a = TOP.i32s();
            if (b == 0) { doTrap(J, n.pc, TrapReason::DivByZero); break; }
            TOP = Value::makeI32((a == INT32_MIN && b == -1) ? 0 : a % b);
            J.idx++;
            break;
          }
          case OP_I32_REM_U: {
            uint32_t b = POP().i32();
            uint32_t a = TOP.i32();
            if (b == 0) { doTrap(J, n.pc, TrapReason::DivByZero); break; }
            TOP = Value::makeI32(a % b);
            J.idx++;
            break;
          }

          // ---- i64 compare/arithmetic ----
          UNOP_CASE(OP_I64_EQZ, i64, Value::makeI32(uint32_t{a == 0}))
          BINOP_CASE(OP_I64_EQ, i64, Value::makeI32(uint32_t{a == b}))
          BINOP_CASE(OP_I64_NE, i64, Value::makeI32(uint32_t{a != b}))
          BINOP_CASE(OP_I64_LT_S, i64s, Value::makeI32(uint32_t{a < b}))
          BINOP_CASE(OP_I64_LT_U, i64, Value::makeI32(uint32_t{a < b}))
          BINOP_CASE(OP_I64_GT_S, i64s, Value::makeI32(uint32_t{a > b}))
          BINOP_CASE(OP_I64_GT_U, i64, Value::makeI32(uint32_t{a > b}))
          BINOP_CASE(OP_I64_LE_S, i64s, Value::makeI32(uint32_t{a <= b}))
          BINOP_CASE(OP_I64_LE_U, i64, Value::makeI32(uint32_t{a <= b}))
          BINOP_CASE(OP_I64_GE_S, i64s, Value::makeI32(uint32_t{a >= b}))
          BINOP_CASE(OP_I64_GE_U, i64, Value::makeI32(uint32_t{a >= b}))
          UNOP_CASE(OP_I64_CLZ, i64,
                    Value::makeI64(a ? uint64_t(__builtin_clzll(a)) : 64u))
          UNOP_CASE(OP_I64_CTZ, i64,
                    Value::makeI64(a ? uint64_t(__builtin_ctzll(a)) : 64u))
          UNOP_CASE(OP_I64_POPCNT, i64,
                    Value::makeI64(uint64_t(__builtin_popcountll(a))))
          BINOP_CASE(OP_I64_ADD, i64, Value::makeI64(a + b))
          BINOP_CASE(OP_I64_SUB, i64, Value::makeI64(a - b))
          BINOP_CASE(OP_I64_MUL, i64, Value::makeI64(a * b))
          BINOP_CASE(OP_I64_AND, i64, Value::makeI64(a & b))
          BINOP_CASE(OP_I64_OR, i64, Value::makeI64(a | b))
          BINOP_CASE(OP_I64_XOR, i64, Value::makeI64(a ^ b))
          BINOP_CASE(OP_I64_SHL, i64, Value::makeI64(a << (b & 63)))
          BINOP_CASE(OP_I64_SHR_U, i64, Value::makeI64(a >> (b & 63)))
          BINOP_CASE(OP_I64_SHR_S, i64,
                     Value::makeI64(uint64_t(int64_t(a) >> (b & 63))))
          BINOP_CASE(OP_I64_ROTL, i64, Value::makeI64(
              (b & 63) ? ((a << (b & 63)) | (a >> (64 - (b & 63)))) : a))
          BINOP_CASE(OP_I64_ROTR, i64, Value::makeI64(
              (b & 63) ? ((a >> (b & 63)) | (a << (64 - (b & 63)))) : a))
          case OP_I64_DIV_S: {
            int64_t b = POP().i64s();
            int64_t a = TOP.i64s();
            if (b == 0) { doTrap(J, n.pc, TrapReason::DivByZero); break; }
            if (a == INT64_MIN && b == -1) {
                doTrap(J, n.pc, TrapReason::IntegerOverflow);
                break;
            }
            TOP = Value::makeI64(a / b);
            J.idx++;
            break;
          }
          case OP_I64_DIV_U: {
            uint64_t b = POP().i64();
            uint64_t a = TOP.i64();
            if (b == 0) { doTrap(J, n.pc, TrapReason::DivByZero); break; }
            TOP = Value::makeI64(a / b);
            J.idx++;
            break;
          }
          case OP_I64_REM_S: {
            int64_t b = POP().i64s();
            int64_t a = TOP.i64s();
            if (b == 0) { doTrap(J, n.pc, TrapReason::DivByZero); break; }
            TOP = Value::makeI64((a == INT64_MIN && b == -1) ? 0 : a % b);
            J.idx++;
            break;
          }
          case OP_I64_REM_U: {
            uint64_t b = POP().i64();
            uint64_t a = TOP.i64();
            if (b == 0) { doTrap(J, n.pc, TrapReason::DivByZero); break; }
            TOP = Value::makeI64(a % b);
            J.idx++;
            break;
          }

          // ---- float compare/arithmetic ----
          BINOP_CASE(OP_F32_EQ, f32, Value::makeI32(uint32_t{a == b}))
          BINOP_CASE(OP_F32_NE, f32, Value::makeI32(uint32_t{a != b}))
          BINOP_CASE(OP_F32_LT, f32, Value::makeI32(uint32_t{a < b}))
          BINOP_CASE(OP_F32_GT, f32, Value::makeI32(uint32_t{a > b}))
          BINOP_CASE(OP_F32_LE, f32, Value::makeI32(uint32_t{a <= b}))
          BINOP_CASE(OP_F32_GE, f32, Value::makeI32(uint32_t{a >= b}))
          BINOP_CASE(OP_F64_EQ, f64, Value::makeI32(uint32_t{a == b}))
          BINOP_CASE(OP_F64_NE, f64, Value::makeI32(uint32_t{a != b}))
          BINOP_CASE(OP_F64_LT, f64, Value::makeI32(uint32_t{a < b}))
          BINOP_CASE(OP_F64_GT, f64, Value::makeI32(uint32_t{a > b}))
          BINOP_CASE(OP_F64_LE, f64, Value::makeI32(uint32_t{a <= b}))
          BINOP_CASE(OP_F64_GE, f64, Value::makeI32(uint32_t{a >= b}))
          UNOP_CASE(OP_F32_ABS, f32, Value::makeF32(std::fabs(a)))
          UNOP_CASE(OP_F32_NEG, f32, Value::makeF32(-a))
          UNOP_CASE(OP_F32_CEIL, f32, Value::makeF32(std::ceil(a)))
          UNOP_CASE(OP_F32_FLOOR, f32, Value::makeF32(std::floor(a)))
          UNOP_CASE(OP_F32_TRUNC, f32, Value::makeF32(std::trunc(a)))
          UNOP_CASE(OP_F32_NEAREST, f32, Value::makeF32(std::nearbyintf(a)))
          UNOP_CASE(OP_F32_SQRT, f32, Value::makeF32(std::sqrt(a)))
          BINOP_CASE(OP_F32_ADD, f32, Value::makeF32(a + b))
          BINOP_CASE(OP_F32_SUB, f32, Value::makeF32(a - b))
          BINOP_CASE(OP_F32_MUL, f32, Value::makeF32(a * b))
          BINOP_CASE(OP_F32_DIV, f32, Value::makeF32(a / b))
          BINOP_CASE(OP_F32_MIN, f32, Value::makeF32(wasmMin(a, b)))
          BINOP_CASE(OP_F32_MAX, f32, Value::makeF32(wasmMax(a, b)))
          BINOP_CASE(OP_F32_COPYSIGN, f32,
                     Value::makeF32(std::copysign(a, b)))
          UNOP_CASE(OP_F64_ABS, f64, Value::makeF64(std::fabs(a)))
          UNOP_CASE(OP_F64_NEG, f64, Value::makeF64(-a))
          UNOP_CASE(OP_F64_CEIL, f64, Value::makeF64(std::ceil(a)))
          UNOP_CASE(OP_F64_FLOOR, f64, Value::makeF64(std::floor(a)))
          UNOP_CASE(OP_F64_TRUNC, f64, Value::makeF64(std::trunc(a)))
          UNOP_CASE(OP_F64_NEAREST, f64, Value::makeF64(std::nearbyint(a)))
          UNOP_CASE(OP_F64_SQRT, f64, Value::makeF64(std::sqrt(a)))
          BINOP_CASE(OP_F64_ADD, f64, Value::makeF64(a + b))
          BINOP_CASE(OP_F64_SUB, f64, Value::makeF64(a - b))
          BINOP_CASE(OP_F64_MUL, f64, Value::makeF64(a * b))
          BINOP_CASE(OP_F64_DIV, f64, Value::makeF64(a / b))
          BINOP_CASE(OP_F64_MIN, f64, Value::makeF64(wasmMin(a, b)))
          BINOP_CASE(OP_F64_MAX, f64, Value::makeF64(wasmMax(a, b)))
          BINOP_CASE(OP_F64_COPYSIGN, f64,
                     Value::makeF64(std::copysign(a, b)))

          // ---- conversions ----
          UNOP_CASE(OP_I32_WRAP_I64, i64, Value::makeI32(uint32_t(a)))
          UNOP_CASE(OP_I64_EXTEND_I32_S, i32s, Value::makeI64(int64_t(a)))
          UNOP_CASE(OP_I64_EXTEND_I32_U, i32, Value::makeI64(uint64_t(a)))
          UNOP_CASE(OP_F32_CONVERT_I32_S, i32s, Value::makeF32(float(a)))
          UNOP_CASE(OP_F32_CONVERT_I32_U, i32, Value::makeF32(float(a)))
          UNOP_CASE(OP_F32_CONVERT_I64_S, i64s, Value::makeF32(float(a)))
          UNOP_CASE(OP_F32_CONVERT_I64_U, i64, Value::makeF32(float(a)))
          UNOP_CASE(OP_F32_DEMOTE_F64, f64, Value::makeF32(float(a)))
          UNOP_CASE(OP_F64_CONVERT_I32_S, i32s, Value::makeF64(double(a)))
          UNOP_CASE(OP_F64_CONVERT_I32_U, i32, Value::makeF64(double(a)))
          UNOP_CASE(OP_F64_CONVERT_I64_S, i64s, Value::makeF64(double(a)))
          UNOP_CASE(OP_F64_CONVERT_I64_U, i64, Value::makeF64(double(a)))
          UNOP_CASE(OP_F64_PROMOTE_F32, f32, Value::makeF64(double(a)))
          UNOP_CASE(OP_I32_REINTERPRET_F32, i32, Value(ValType::I32, a))
          UNOP_CASE(OP_I64_REINTERPRET_F64, i64, Value(ValType::I64, a))
          UNOP_CASE(OP_F32_REINTERPRET_I32, i32, Value(ValType::F32, a))
          UNOP_CASE(OP_F64_REINTERPRET_I64, i64, Value(ValType::F64, a))
          UNOP_CASE(OP_I32_EXTEND8_S, i32,
                    Value::makeI32(int32_t(int8_t(a))))
          UNOP_CASE(OP_I32_EXTEND16_S, i32,
                    Value::makeI32(int32_t(int16_t(a))))
          UNOP_CASE(OP_I64_EXTEND8_S, i64,
                    Value::makeI64(int64_t(int8_t(a))))
          UNOP_CASE(OP_I64_EXTEND16_S, i64,
                    Value::makeI64(int64_t(int16_t(a))))
          UNOP_CASE(OP_I64_EXTEND32_S, i64,
                    Value::makeI64(int64_t(int32_t(a))))
          TRUNC_CASE(OP_I32_TRUNC_F32_S, f32, int32_t, -2147483648.0,
                     2147483648.0, Value::makeI32)
          TRUNC_CASE(OP_I32_TRUNC_F32_U, f32, uint32_t, 0.0, 4294967296.0,
                     Value::makeI32)
          TRUNC_CASE(OP_I32_TRUNC_F64_S, f64, int32_t, -2147483648.0,
                     2147483648.0, Value::makeI32)
          TRUNC_CASE(OP_I32_TRUNC_F64_U, f64, uint32_t, 0.0, 4294967296.0,
                     Value::makeI32)
          TRUNC_CASE(OP_I64_TRUNC_F32_S, f32, int64_t,
                     -9223372036854775808.0, 9223372036854775808.0,
                     Value::makeI64)
          TRUNC_CASE(OP_I64_TRUNC_F32_U, f32, uint64_t, 0.0,
                     18446744073709551616.0, Value::makeI64)
          TRUNC_CASE(OP_I64_TRUNC_F64_S, f64, int64_t,
                     -9223372036854775808.0, 9223372036854775808.0,
                     Value::makeI64)
          TRUNC_CASE(OP_I64_TRUNC_F64_U, f64, uint64_t, 0.0,
                     18446744073709551616.0, Value::makeI64)

          // ---- 0xFC prefixed ----
          case kJFcBase + FC_I32_TRUNC_SAT_F32_S:
            TOP = Value::makeI32(truncSat<int32_t>(TOP.f32(),
                -2147483648.0, 2147483647.0));
            J.idx++;
            break;
          case kJFcBase + FC_I32_TRUNC_SAT_F32_U:
            TOP = Value::makeI32(truncSat<uint32_t>(TOP.f32(), 0.0,
                4294967295.0));
            J.idx++;
            break;
          case kJFcBase + FC_I32_TRUNC_SAT_F64_S:
            TOP = Value::makeI32(truncSat<int32_t>(TOP.f64(),
                -2147483648.0, 2147483647.0));
            J.idx++;
            break;
          case kJFcBase + FC_I32_TRUNC_SAT_F64_U:
            TOP = Value::makeI32(truncSat<uint32_t>(TOP.f64(), 0.0,
                4294967295.0));
            J.idx++;
            break;
          case kJFcBase + FC_I64_TRUNC_SAT_F32_S:
            TOP = Value::makeI64(truncSat<int64_t>(TOP.f32(),
                -9223372036854775808.0, 9223372036854775807.0));
            J.idx++;
            break;
          case kJFcBase + FC_I64_TRUNC_SAT_F32_U:
            TOP = Value::makeI64(truncSat<uint64_t>(TOP.f32(), 0.0,
                18446744073709551615.0));
            J.idx++;
            break;
          case kJFcBase + FC_I64_TRUNC_SAT_F64_S:
            TOP = Value::makeI64(truncSat<int64_t>(TOP.f64(),
                -9223372036854775808.0, 9223372036854775807.0));
            J.idx++;
            break;
          case kJFcBase + FC_I64_TRUNC_SAT_F64_U:
            TOP = Value::makeI64(truncSat<uint64_t>(TOP.f64(), 0.0,
                18446744073709551615.0));
            J.idx++;
            break;
          case kJFcBase + FC_MEMORY_FILL: {
            uint32_t cnt = POP().i32();
            uint32_t val = POP().i32();
            uint32_t dst = POP().i32();
            Memory& mem = J.inst->memory;
            if (!mem.inBounds(dst, 0, cnt)) {
                doTrap(J, n.pc, TrapReason::MemoryOutOfBounds);
                break;
            }
            std::memset(mem.data() + dst, val & 0xff, cnt);
            J.idx++;
            break;
          }
          case kJFcBase + FC_MEMORY_COPY: {
            uint32_t cnt = POP().i32();
            uint32_t src = POP().i32();
            uint32_t dst = POP().i32();
            Memory& mem = J.inst->memory;
            if (!mem.inBounds(dst, 0, cnt) || !mem.inBounds(src, 0, cnt)) {
                doTrap(J, n.pc, TrapReason::MemoryOutOfBounds);
                break;
            }
            std::memmove(mem.data() + dst, mem.data() + src, cnt);
            J.idx++;
            break;
          }

          default:
            doTrap(J, n.pc, TrapReason::Unreachable);
            break;
        }
    }

#undef TOP
#undef PUSH
#undef POP
#undef BINOP_CASE
#undef UNOP_CASE
#undef LOAD_CASE
#undef STORE_CASE
#undef TRUNC_CASE

    return J.signal;
}

} // namespace wizpp
