/**
 * @file
 * The instrumentation-lowering layer of the compiled tier.
 *
 * Every probe site in a function being translated maps to exactly one
 * *lowering kind* that decides the shape of the probe instruction in
 * the compiled code (Section 4.4; docs/JIT.md has the full per-kind
 * contract):
 *
 *  - Count:      a lone CountProbe -> inline counter increment.
 *  - Operand:    a lone OperandProbe -> direct top-of-stack call.
 *  - EntryExit:  a lone EntryExitProbe -> pre-resolved direct call
 *                with an inline pre/post sequence (no frame
 *                checkpoint, epoch re-check after the call).
 *  - Fused:      a multi-probe site -> one pre-resolved call to the
 *                site's fused firing entry (no per-fire re-dispatch).
 *  - GenericLite: runtime-dispatched generic call whose spill set is
 *                empty because every probe at the site declared
 *                FrameAccess::None.
 *  - Generic:    the full spill/reload path — checkpoint pc/sp/resume
 *                index, runtime site dispatch through fireLocal.
 *
 * The decision lives here — translator.cc only executes it — so the
 * intrinsification predicate cannot drift between call sites when a
 * site grows, shrinks, or is re-probed mid-run: recompilation always
 * re-runs the same single decision function.
 */

#ifndef WIZPP_JIT_LOWERING_H
#define WIZPP_JIT_LOWERING_H

#include <cstdint>
#include <memory>

#include "probes/probemanager.h"

namespace wizpp {

struct EngineConfig;

/** Extended opcode space for compiled probe instructions. */

/** Generic probe: full checkpoint, runtime call into ProbeManager. */
constexpr uint16_t kJProbeGeneric = 512;

/** Intrinsified CountProbe: inline counter increment (Figure 2). */
constexpr uint16_t kJProbeCount = 513;

/** Intrinsified OperandProbe: direct call with top-of-stack value. */
constexpr uint16_t kJProbeOperand = 514;

/** Intrinsified EntryExitProbe: pre-resolved direct activation call. */
constexpr uint16_t kJProbeEntryExit = 515;

/** Fused multi-probe site: one pre-resolved fused call. */
constexpr uint16_t kJProbeFused = 516;

/** Generic probe whose declared access needs no frame checkpoint. */
constexpr uint16_t kJProbeGenericLite = 517;

/**
 * Intrinsified one-shot CoverageProbe: a self-patching slot. The first
 * execution records the hit, then rewrites its own JInst opcode to
 * kJProbeCovered, so every later execution of the (still-attached)
 * site costs exactly one dispatch until the owning index batch-detaches
 * the fired probes and the function recompiles without the slot
 * (docs/FUZZING.md).
 */
constexpr uint16_t kJProbeCoverage = 518;

/** A coverage slot after its first fire: a pure nop (self-patched). */
constexpr uint16_t kJProbeCovered = 519;

/** How one probe site lowers into compiled code. */
enum class ProbeLoweringKind : uint8_t {
    None,         ///< unprobed instruction (no probe JInst emitted)
    Count,        ///< kJProbeCount
    Operand,      ///< kJProbeOperand
    EntryExit,    ///< kJProbeEntryExit
    Fused,        ///< kJProbeFused
    GenericLite,  ///< kJProbeGenericLite
    Generic,      ///< kJProbeGeneric
    Coverage,     ///< kJProbeCoverage (one-shot self-patching slot)
};

/** Number of ProbeLoweringKind values (metrics/timeline loops). */
constexpr int kNumProbeLoweringKinds = 8;

/** Lowercase kind name ("count", "fused", ... ) for reports/tests. */
const char* probeLoweringKindName(ProbeLoweringKind k);

/** The translator-facing decision for one probe site. */
struct ProbeLowering
{
    ProbeLoweringKind kind = ProbeLoweringKind::None;

    /** JInst opcode implementing the kind (kJProbe*). */
    uint16_t op = 0;

    /** Kind-specific immediate: EntryExit -> needsTopOfStack flag,
        Fused -> member count (fire accounting). */
    uint16_t aux = 0;

    /** Pre-resolved target: &CountProbe::count, OperandProbe*,
        EntryExitProbe*, or the fused Probe*. Null for the runtime-
        dispatched kinds. */
    void* ptr = nullptr;

    /** Whether the executing tier must checkpoint frame state
        (pc/sp/resume index) before the call. Derived from the site's
        declared FrameAccess; pre-computed here so the executor takes
        no per-fire decision. */
    bool needsSpill = true;

    /** Owner of @p ptr. The translator moves this into
        JitCode::pinned so a pre-resolved target can never dangle,
        even if M-code detaches the probe and drops its last external
        reference while the (retired) code is still on a stack. */
    std::shared_ptr<Probe> pin;
};

/**
 * Maps one probe site to its lowering, under @p cfg's per-kind
 * intrinsification switches. @p site must be live (site.fired set).
 * Disabled kinds degrade to the runtime-dispatched generic path,
 * whose spill set still honors the site's declared FrameAccess
 * (GenericLite when every member declared None).
 */
ProbeLowering lowerProbeSite(const EngineConfig& cfg,
                             const ProbeManager::SiteView& site);

} // namespace wizpp

#endif // WIZPP_JIT_LOWERING_H
