#include "jit/jitcode.h"

#include "engine/engine.h"
#include "jit/lowering.h"
#include "wasm/decoder.h"
#include "wasm/opcodes.h"

namespace wizpp {

namespace {

/** True if the op needs no compiled instruction (pure structure). */
bool
isStructural(uint8_t op)
{
    return op == OP_NOP || op == OP_BLOCK || op == OP_LOOP;
}

} // namespace

std::unique_ptr<JitCode>
translateFunction(Engine& eng, FuncState& fs)
{
    auto jc = std::make_unique<JitCode>();
    const std::vector<uint8_t>& pristine = fs.decl->code;
    const SideTable& st = fs.sideTable;
    ProbeManager& pm = eng.probes();
    const EngineConfig& cfg = eng.config();
    const size_t codeSize = pristine.size();

    struct Fixup
    {
        uint32_t instIdx;    ///< index into insts, or arm index if isArm
        bool isArm;
        uint32_t targetPc;
    };
    std::vector<Fixup> fixups;

    for (uint32_t pc : st.instrBoundaries) {
        jc->pcToIndex[pc] = static_cast<uint32_t>(jc->insts.size());

        // Instrumentation: the lowering layer (jit/lowering.h) picks
        // the shape of each probe site's compiled instruction. The
        // site's fused firing entry IS the probe itself whenever
        // exactly one probe is attached (ProbeManager never wraps a
        // single member in a FusedProbe), so a site that was fused and
        // shrank back to one probe re-lowers identically to a probe
        // that was always alone — the decision is a pure function of
        // (config, current site).
        uint8_t rawByte = fs.code[pc];
        uint8_t op = rawByte;
        if (rawByte == OP_PROBE) {
            ProbeManager::SiteView site = pm.siteFor(fs.funcIndex, pc);
            op = site.originalByte;
            ProbeLowering low = lowerProbeSite(cfg, site);
            JInst pi;
            pi.pc = pc;
            pi.op = low.op;
            pi.aux = low.aux;
            pi.b = low.needsSpill ? 1 : 0;
            pi.ptr = low.ptr;
            if (low.pin) jc->pinned.push_back(std::move(low.pin));
            jc->probeLowering.emplace(pc, low.kind);
            jc->insts.push_back(pi);
        }

        InstrView v;
        if (!decodeInstr(pristine, pc, &v)) {
            // Validation guarantees this cannot happen.
            return nullptr;
        }

        if (isStructural(op)) continue;

        JInst ji;
        ji.pc = pc;
        ji.op = op;

        switch (op) {
          case OP_END:
            if (pc + v.length == codeSize) {
                ji.op = OP_RETURN;  // function end returns
                jc->insts.push_back(ji);
            }
            continue;
          case OP_IF:
          case OP_ELSE:
          case OP_BR:
          case OP_BR_IF: {
            const SideTableEntry& e = st.branchAt(pc);
            ji.aux = static_cast<uint16_t>(e.valCount);
            ji.b = e.popTo;
            fixups.push_back({static_cast<uint32_t>(jc->insts.size()),
                              false, e.targetPc});
            jc->insts.push_back(ji);
            continue;
          }
          case OP_BR_TABLE: {
            const auto& entries = st.brTableAt(pc);
            ji.a = static_cast<uint32_t>(jc->brTableArms.size());
            ji.aux = static_cast<uint16_t>(entries.size());
            for (const SideTableEntry& e : entries) {
                fixups.push_back(
                    {static_cast<uint32_t>(jc->brTableArms.size()), true,
                     e.targetPc});
                jc->brTableArms.push_back(
                    {0, e.popTo, static_cast<uint16_t>(e.valCount)});
            }
            jc->insts.push_back(ji);
            continue;
          }
          case OP_CALL:
            ji.a = v.index;
            break;
          case OP_CALL_INDIRECT:
            ji.a = eng.canonTypeId(v.index);
            break;
          case OP_LOCAL_GET:
          case OP_LOCAL_SET:
          case OP_LOCAL_TEE:
          case OP_GLOBAL_GET:
          case OP_GLOBAL_SET:
            ji.a = v.index;
            break;
          case OP_I32_CONST:
          case OP_I64_CONST:
            ji.imm = static_cast<uint64_t>(v.i64Const);
            break;
          case OP_F32_CONST:
          case OP_F64_CONST:
            ji.imm = v.fBits;
            break;
          case OP_PREFIX_FC:
            ji.op = static_cast<uint16_t>(kJFcBase + v.prefixOp);
            break;
          default:
            if (isLoadOpcode(op) || isStoreOpcode(op)) {
                ji.a = v.memOffset;
            }
            break;
        }
        jc->insts.push_back(ji);
    }

    // Resolve branch targets to instruction indices.
    for (const Fixup& f : fixups) {
        auto it = jc->pcToIndex.find(f.targetPc);
        uint32_t idx = (it == jc->pcToIndex.end()) ? kNoJitIndex
                                                   : it->second;
        if (f.isArm) {
            jc->brTableArms[f.instIdx].target = idx;
        } else {
            jc->insts[f.instIdx].a = idx;
        }
    }

    return jc;
}

} // namespace wizpp
