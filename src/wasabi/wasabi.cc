#include "wasabi/wasabi.h"

#include <cassert>

#include "support/leb128.h"
#include "wasm/decoder.h"
#include "wasm/opcodes.h"

namespace wizpp {

namespace {

/** Rewrites a function body, shifting call targets by @p shift and
 *  injecting hook calls per @p kind. Adds a scratch local for branch
 *  condition duplication (Wasm has no dup instruction — Wasabi adds
 *  locals the same way). */
std::vector<uint8_t>
injectBody(const FuncDecl& f, uint32_t funcIndexAfterShift, uint32_t shift,
           WasabiKind kind, uint32_t hookInstrIdx, uint32_t hookBranchIdx,
           uint32_t scratchLocal, uint64_t* sites)
{
    std::vector<uint8_t> out;
    out.reserve(f.code.size() * 4);
    size_t pc = 0;
    while (pc < f.code.size()) {
        InstrView v;
        if (!decodeInstr(f.code, pc, &v)) {
            // Bodies were validated at load time; a zero-length decode
            // here would silently desynchronize the rewritten body (or
            // loop forever), so never fall through on failure.
            assert(false && "validated code must decode");
            break;
        }
        bool isBranch = v.opcode == OP_IF || v.opcode == OP_BR_IF ||
                        v.opcode == OP_BR_TABLE;
        if (kind == WasabiKind::Hotness) {
            // i32.const f ; i32.const pc ; call $hook_instr
            out.push_back(OP_I32_CONST);
            encodeSLEB(out, static_cast<int32_t>(funcIndexAfterShift));
            out.push_back(OP_I32_CONST);
            encodeSLEB(out, static_cast<int32_t>(pc));
            out.push_back(OP_CALL);
            encodeULEB(out, hookInstrIdx);
            (*sites)++;
        } else if (isBranch) {
            // local.tee $scratch ; i32.const f ; i32.const pc ;
            // local.get $scratch ; call $hook_branch
            out.push_back(OP_LOCAL_TEE);
            encodeULEB(out, scratchLocal);
            out.push_back(OP_I32_CONST);
            encodeSLEB(out, static_cast<int32_t>(funcIndexAfterShift));
            out.push_back(OP_I32_CONST);
            encodeSLEB(out, static_cast<int32_t>(pc));
            out.push_back(OP_LOCAL_GET);
            encodeULEB(out, scratchLocal);
            out.push_back(OP_CALL);
            encodeULEB(out, hookBranchIdx);
            (*sites)++;
        }
        // Re-encode the instruction, adjusting call targets.
        if (v.opcode == OP_CALL) {
            out.push_back(OP_CALL);
            encodeULEB(out, v.index + shift);
        } else {
            out.insert(out.end(), f.code.begin() + pc,
                       f.code.begin() + pc + v.length);
        }
        pc += v.length;
    }
    return out;
}

} // namespace

Result<WasabiModule>
wasabiInstrument(const Module& in, WasabiKind kind)
{
    WasabiModule w;
    Module& m = w.module;
    m = in;

    // Wasabi's hooks become the first imports, shifting every function
    // index in the module.
    const uint32_t shift = 2;
    w.numHookImports = shift;

    FuncType instrType;
    instrType.params = {ValType::I32, ValType::I32};
    FuncType branchType;
    branchType.params = {ValType::I32, ValType::I32, ValType::I32};
    uint32_t instrTypeIdx = m.internType(instrType);
    uint32_t branchTypeIdx = m.internType(branchType);

    std::vector<FuncDecl> newFuncs;
    FuncDecl hookInstr;
    hookInstr.index = 0;
    hookInstr.typeIndex = instrTypeIdx;
    hookInstr.imported = true;
    hookInstr.importModule = "wasabi";
    hookInstr.importName = "hook_instr";
    newFuncs.push_back(hookInstr);
    FuncDecl hookBranch;
    hookBranch.index = 1;
    hookBranch.typeIndex = branchTypeIdx;
    hookBranch.imported = true;
    hookBranch.importModule = "wasabi";
    hookBranch.importName = "hook_branch";
    newFuncs.push_back(hookBranch);

    for (const FuncDecl& f : in.functions) {
        if (f.imported) {
            return Error{"wasabi baseline does not support instrumenting "
                         "modules that already import functions", 0};
        }
        FuncDecl nf = f;
        nf.index = f.index + shift;
        // Scratch local for branch-condition duplication.
        uint32_t scratchLocal = 0;
        if (kind == WasabiKind::Branch) {
            const FuncType& ft = in.types[f.typeIndex];
            scratchLocal = static_cast<uint32_t>(ft.params.size() +
                                                 f.locals.size());
            nf.locals.push_back(ValType::I32);
        }
        nf.code = injectBody(f, nf.index, shift, kind, 0, 1, scratchLocal,
                             &w.sitesInstrumented);
        newFuncs.push_back(std::move(nf));
    }
    m.functions = std::move(newFuncs);

    for (auto& e : m.exports) {
        if (e.kind == ExternKind::Func) e.index += shift;
    }
    for (auto& seg : m.elems) {
        for (auto& idx : seg.funcIndices) idx += shift;
    }
    if (m.start) *m.start += shift;

    return w;
}

WasabiHost::WasabiHost()
{
    // Hooks registered by name, resolved per event — the
    // dynamically-typed dispatch a JS engine performs. A Wasabi
    // analysis receives a fresh JS location object per event and
    // typically accumulates into objects keyed by "func:instr" strings
    // (JS property keys); both are reproduced here.
    _hooks["hook_instr"] = [this](const std::vector<Value>& args) {
        instrEvents++;
        LocationObject loc;
        loc.props["func"] = args[0].i32();
        loc.props["instr"] = args[1].i32();
        std::string key = std::to_string(args[0].i32()) + ":" +
                          std::to_string(args[1].i32());
        _counts[key]++;
        if (onInstr) onInstr(args[0].i32(), args[1].i32());
    };
    _hooks["hook_branch"] = [this](const std::vector<Value>& args) {
        branchEvents++;
        LocationObject loc;
        loc.props["func"] = args[0].i32();
        loc.props["instr"] = args[1].i32();
        loc.props["condition"] = args[2].i32();
        std::string key = std::to_string(args[0].i32()) + ":" +
                          std::to_string(args[1].i32());
        _counts[key]++;
        if (onBranch) onBranch(args[0].i32(), args[1].i32(),
                               args[2].i32());
    };
}

void
WasabiHost::dispatch(const std::string& hookName,
                     const std::vector<Value>& boxedArgs)
{
    // The JS boundary in V8-hosted Wasabi resolves the low-level hook,
    // re-boxes the arguments into a JS arguments object, and then
    // resolves the user analysis callback on the analysis object —
    // two dynamic property lookups and two boxing steps per event.
    auto it = _hooks.find(hookName);
    if (it == _hooks.end()) return;
    std::vector<Value> argumentsObject(boxedArgs);
    auto user = _hooks.find("analysis." + hookName);
    if (user != _hooks.end()) {
        user->second(argumentsObject);
    } else {
        it->second(argumentsObject);
    }
}

void
WasabiHost::bind(ImportMap* imports)
{
    HostFunc hi;
    hi.type.params = {ValType::I32, ValType::I32};
    hi.fn = [this](const std::vector<Value>& args, std::vector<Value>*) {
        // Boxing: copy args into a fresh heap vector (JS boundary).
        std::vector<Value> boxed(args);
        dispatch("hook_instr", boxed);
        return TrapReason::None;
    };
    imports->addFunc("wasabi", "hook_instr", hi);

    HostFunc hb;
    hb.type.params = {ValType::I32, ValType::I32, ValType::I32};
    hb.fn = [this](const std::vector<Value>& args, std::vector<Value>*) {
        std::vector<Value> boxed(args);
        dispatch("hook_branch", boxed);
        return TrapReason::None;
    };
    imports->addFunc("wasabi", "hook_branch", hb);
}

} // namespace wizpp
