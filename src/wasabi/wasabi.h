/**
 * @file
 * Wasabi-like dynamic-analysis baseline (paper Section 5.6).
 *
 * Wasabi statically injects trampolines into Wasm bytecode that call
 * *imported hooks* implemented in JavaScript; the dominant cost is the
 * Wasm→JS boundary (argument boxing, dynamically-typed dispatch).
 *
 * This reproduction keeps the architecture: a static injector that adds
 * imported hook functions and rewrites every call site (imports shift
 * the function index space), plus a host-side hook runtime that crosses
 * a dynamically-typed boundary — arguments are boxed into heap vectors,
 * hooks are resolved by name through string-keyed maps, and a per-event
 * "location object" is materialized, mimicking Wasabi's JS analysis
 * API. See DESIGN.md substitution S2.
 */

#ifndef WIZPP_WASABI_WASABI_H
#define WIZPP_WASABI_WASABI_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "runtime/instance.h"
#include "support/result.h"
#include "wasm/module.h"

namespace wizpp {

/** Which events get hooks injected. */
enum class WasabiKind : uint8_t {
    Hotness,  ///< hook before every instruction
    Branch,   ///< hook before if/br_if/br_table with the condition value
};

/** Result of the static injection pass. */
struct WasabiModule
{
    Module module;
    uint32_t numHookImports = 0;
    uint64_t sitesInstrumented = 0;
};

/** Injects hook calls into @p in (imports shift all function indices). */
Result<WasabiModule> wasabiInstrument(const Module& in, WasabiKind kind);

/**
 * The host-side "JS" analysis runtime. Register it with an engine's
 * ImportMap before instantiating a wasabiInstrument()ed module.
 */
class WasabiHost
{
  public:
    WasabiHost();

    /** Installs the hook imports into @p imports. */
    void bind(ImportMap* imports);

    /** Analysis callback: every instruction (funcIdx, pc). */
    std::function<void(uint32_t, uint32_t)> onInstr;

    /** Analysis callback: branches (funcIdx, pc, condition/index). */
    std::function<void(uint32_t, uint32_t, uint32_t)> onBranch;

    uint64_t instrEvents = 0;
    uint64_t branchEvents = 0;

    /** Per-location counts keyed "func:instr", as a Wasabi JS analysis
     *  accumulates into objects with string property keys. */
    const std::map<std::string, uint64_t>& counts() const
    {
        return _counts;
    }

  private:
    /** A Wasabi-style per-event location object. */
    struct LocationObject
    {
        std::map<std::string, uint64_t> props;
    };

    /** Boxed dynamic dispatch: the JS-boundary cost model. */
    void dispatch(const std::string& hookName,
                  const std::vector<Value>& boxedArgs);

    std::map<std::string,
             std::function<void(const std::vector<Value>&)>> _hooks;
    std::map<std::string, uint64_t> _counts;
};

} // namespace wizpp

#endif // WIZPP_WASABI_WASABI_H
