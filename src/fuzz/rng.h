/**
 * @file
 * Deterministic PRNG for the fuzzing subsystem.
 *
 * SplitMix64: tiny, fast, and — unlike std::mt19937 driven through
 * std::uniform_int_distribution — with output that is fully specified
 * by this header, so a recorded seed reproduces the identical mutation
 * and perturbation sequence on every platform and standard library.
 * Every fuzz and shake run records its seed (docs/FUZZING.md); replay
 * determinism starts here.
 */

#ifndef WIZPP_FUZZ_RNG_H
#define WIZPP_FUZZ_RNG_H

#include <cstdint>

namespace wizpp::fuzz {

/** SplitMix64 (Steele/Lea/Flood 2014 finalizer), seedable, copyable. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 1) : _state(seed) {}

    /** Next 64 uniformly distributed bits. */
    uint64_t
    next()
    {
        uint64_t z = (_state += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform in [0, bound); returns 0 for bound == 0. */
    uint64_t
    below(uint64_t bound)
    {
        return bound ? next() % bound : 0;
    }

    /** One byte. */
    uint8_t nextByte() { return static_cast<uint8_t>(next()); }

    /** True with probability 1/n (n >= 1). */
    bool oneIn(uint64_t n) { return below(n) == 0; }

    /**
     * Derives an independent stream: hashing (seed, salt) through one
     * extra mix so e.g. each host import gets its own deterministic
     * sequence regardless of call interleaving.
     */
    static Rng
    derive(uint64_t seed, uint64_t salt)
    {
        Rng r(seed ^ (salt * 0xff51afd7ed558ccdull + 0x2545f4914f6cdd1dull));
        r.next();
        return r;
    }

  private:
    uint64_t _state;
};

} // namespace wizpp::fuzz

#endif // WIZPP_FUZZ_RNG_H
