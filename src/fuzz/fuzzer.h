/**
 * @file
 * The in-process coverage-guided fuzzer (docs/FUZZING.md;
 * `wizeng --fuzz=<entry>`).
 *
 * One engine, many executions: each run re-instantiates the module
 * (fresh memory/globals/host streams), derives the entry arguments and
 * a linear-memory seed from a mutated byte string, and executes under
 * the configured tier. The corpus scheduler keys on new coverage from
 * the CoverageIndex — one-shot location bits plus branch-direction
 * edges — whose probes batch-detach as coverage saturates, so the
 * fuzzing loop gets faster as it learns (the paper's batched-removal
 * machinery as fuzzing infrastructure).
 *
 * Every trap (and, with crossTierCheck, every cross-tier trace
 * divergence) becomes a FuzzFinding: deduplicated by failure
 * signature, delta-minimized (minimize.h), re-recorded as a golden
 * WZTR trace, and packaged as a reproducer (repro.h) ready to commit
 * to tests/fixtures/fuzz/.
 *
 * Everything is deterministic in (module, config, FuzzOptions): the
 * PRNG is seeded and recorded, and the shake environment re-derives
 * fresh per-import streams on every execution, so an input that traps
 * mid-campaign traps identically in a fresh engine.
 */

#ifndef WIZPP_FUZZ_FUZZER_H
#define WIZPP_FUZZ_FUZZER_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "fuzz/minimize.h"
#include "fuzz/repro.h"
#include "fuzz/shake.h"

namespace wizpp::fuzz {

struct FuzzOptions
{
    /** Exported entry function to drive. */
    std::string entry;

    /** Campaign PRNG seed (recorded; same seed ⇒ same campaign). */
    uint64_t seed = 1;

    /** Executions to attempt. */
    uint32_t runs = 256;

    /** i32 arguments are reduced mod (maxArg + 1) to keep loop bounds
        small; 0 disables the clamp (raw 32-bit args). */
    uint32_t maxArg = 64;

    /** Mutated inputs never grow beyond this many bytes. */
    uint32_t maxInputBytes = 64;

    /** Environment perturbations applied to every execution. The
        fuzzer overrides memSeed per run from the input tail. */
    ShakeOptions shake;

    /** Delta-minimize findings (costs extra executions). */
    bool minimizeFindings = true;

    /** Exec budget per finding minimization. */
    size_t minimizeBudget = 600;

    /** After the campaign, replay corpus entries across all three
        tiers and flag trace divergences as findings (bounded). */
    bool crossTierCheck = false;

    /** WAT source of the module, if known: enables reproducer
        emission (a reproducer embeds its module). */
    std::string watSource;
};

/** One deduplicated failure, minimized and packaged. */
struct FuzzFinding
{
    FailureSignature signature;
    std::vector<uint8_t> input;   ///< minimized input bytes
    std::vector<uint8_t> trace;   ///< golden WZTR of the minimized run
    size_t origTraceEvents = 0;   ///< trace length before minimization
    size_t minTraceEvents = 0;    ///< trace length after
    bool haveRepro = false;       ///< repro populated (watSource known)
    Reproducer repro;
};

struct FuzzResult
{
    bool ok = false;          ///< the campaign ran (≠ "no findings")
    std::string error;        ///< set when !ok
    uint64_t seed = 0;        ///< recorded campaign seed
    uint64_t execs = 0;
    double execsPerSec = 0;
    size_t corpusSize = 0;
    size_t sitesTotal = 0;
    size_t sitesCovered = 0;
    size_t edgesTotal = 0;
    size_t edgesCovered = 0;
    std::vector<FuzzFinding> findings;
};

/** Runs one fuzzing campaign. @p module is copied per internal engine. */
FuzzResult runFuzzer(const Module& module, const EngineConfig& config,
                     const FuzzOptions& opts);

/** Human-readable campaign summary (wizeng --fuzz output). */
void writeFuzzReport(std::ostream& out, const FuzzResult& r);

} // namespace wizpp::fuzz

#endif // WIZPP_FUZZ_FUZZER_H
