/**
 * @file
 * CoverageIndex: the engine-side coverage map of the fuzzing subsystem
 * (docs/FUZZING.md), built entirely on the probe API.
 *
 * attach() plants one probe per reachable location of every local
 * function in a single insertBatch:
 *
 *  - a one-shot CoverageProbe at plain instruction boundaries — the
 *    compiled tier lowers a lone CoverageProbe to the self-patching
 *    kJProbeCoverage slot (src/jit/lowering.h), so a covered location
 *    costs one nop dispatch until the next flush();
 *  - an EdgeProbe (an OperandProbe) at if/br_if sites, recording which
 *    directions executed — the drcov-style *edge* signal the corpus
 *    scheduler keys on. A lone OperandProbe intrinsifies to a direct
 *    top-of-stack call, so edges ride the existing fast path.
 *
 * flush() batch-detaches everything that has nothing left to observe
 * (hit coverage bits, both-ways edges) with ONE epoch bump and one
 * recompile per touched function, restoring the original bytecode: the
 * steady-state cost of coverage converges to zero as coverage saturates
 * — the paper's batched-removal machinery doing fuzzing work.
 */

#ifndef WIZPP_FUZZ_COVERAGE_H
#define WIZPP_FUZZ_COVERAGE_H

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <vector>

#include "probes/probe.h"

namespace wizpp {
class Engine;
}

namespace wizpp::fuzz {

/** What attach() instruments. */
struct CoverageOptions
{
    /** Instrument if/br_if sites with direction-edge probes (else they
        get plain one-shot location bits like everything else). */
    bool branchEdges = true;
};

class CoverageIndex : public CoverageProbe::Listener
{
  public:
    CoverageIndex() = default;
    ~CoverageIndex() override;

    CoverageIndex(const CoverageIndex&) = delete;
    CoverageIndex& operator=(const CoverageIndex&) = delete;

    /**
     * Instruments every local function of @p engine (one insertBatch).
     * Must be called after loadModule, once per index.
     */
    void attach(Engine& engine, const CoverageOptions& opts = {});

    /** CoverageProbe::Listener — first execution of a location bit. */
    void onCovered(CoverageProbe& probe) override;

    /** EdgeProbe callback: a branch direction executed for the first
        time. @p taken is the direction; internal use. */
    void onEdgeBit(uint32_t func, uint32_t pc, bool taken);

    /**
     * Batch-detaches every probe with nothing left to observe: hit
     * location bits, and edge probes that have seen both directions.
     * One epoch bump total. Returns the number of probes detached.
     * Call between executions, not from probe context.
     */
    size_t flush();

    /** New coverage events (bits or edges) since resetNewHits(). */
    uint64_t newHits() const { return _newHits; }
    void resetNewHits() { _newHits = 0; }

    // ---- Totals ----

    size_t sitesTotal() const { return _sites.size() + _edges.size(); }
    size_t sitesCovered() const { return _sitesCovered; }
    size_t edgesTotal() const { return _edges.size() * 2; }
    size_t edgesCovered() const { return _edgesCovered; }

    /** Covered (func, pc) locations, sorted. */
    std::vector<std::pair<uint32_t, uint32_t>> coveredSites() const;

    /**
     * Branch-direction coverage: site key ((func << 32) | pc) → bit 0
     * = taken seen, bit 1 = not-taken seen. Only sites with at least
     * one executed direction appear (parity with the trace sidecar's
     * TraceAnalysis::branches).
     */
    std::map<uint64_t, uint8_t> branchEdges() const;

    /** drcov-style text report (covered funcs, sites, one-sided edges). */
    void writeReport(std::ostream& out) const;

  private:
    class EdgeProbe;

    struct SiteEntry
    {
        std::shared_ptr<CoverageProbe> probe;
        bool attached = true;
    };
    struct EdgeEntry
    {
        std::shared_ptr<EdgeProbe> probe;
        bool attached = true;
    };

    Engine* _engine = nullptr;
    std::vector<SiteEntry> _sites;
    std::vector<EdgeEntry> _edges;
    size_t _sitesCovered = 0;
    size_t _edgesCovered = 0;
    uint64_t _newHits = 0;
};

} // namespace wizpp::fuzz

#endif // WIZPP_FUZZ_COVERAGE_H
