#include "fuzz/minimize.h"

#include <algorithm>
#include <cstring>

namespace wizpp::fuzz {

std::string
FailureSignature::toString() const
{
    switch (kind) {
      case Kind::None: return "none";
      case Kind::Trap:
        return std::string("trap:") + trapReasonName(trap);
      case Kind::Divergence: return "divergence";
    }
    return "?";
}

bool
FailureSignature::parse(const std::string& s, FailureSignature* out)
{
    if (s == "none") {
        *out = {};
        return true;
    }
    if (s == "divergence") {
        out->kind = Kind::Divergence;
        out->trap = TrapReason::None;
        return true;
    }
    if (s.rfind("trap:", 0) == 0) {
        std::string name = s.substr(5);
        for (int r = 1; r <= static_cast<int>(TrapReason::HostError);
             r++) {
            if (name == trapReasonName(static_cast<TrapReason>(r))) {
                out->kind = Kind::Trap;
                out->trap = static_cast<TrapReason>(r);
                return true;
            }
        }
    }
    return false;
}

namespace {

/** One budgeted runner probe: does @p candidate still fail like
    @p target? */
bool
stillFails(const FailureRunner& run, const FailureSignature& target,
           const std::vector<uint8_t>& candidate, size_t* execs,
           size_t maxExecs)
{
    if (*execs >= maxExecs) return false;
    (*execs)++;
    return run(candidate).matches(target);
}

} // namespace

MinimizeResult
minimizeInput(std::vector<uint8_t> input, const FailureRunner& run,
              const FailureSignature& target, const MinimizeOptions& opts)
{
    MinimizeResult res;

    // Sanity: the starting input must reproduce the failure, otherwise
    // there is nothing meaningful to preserve while shrinking.
    if (!stillFails(run, target, input, &res.execs, opts.maxExecs)) {
        res.input = std::move(input);
        return res;
    }

    // Phase 1: ddmin chunk removal. Try dropping contiguous chunks,
    // halving the chunk size until single bytes; restart at the
    // current size after any successful removal.
    size_t chunk = std::max<size_t>(1, input.size() / 2);
    while (true) {
        bool shrunk = false;
        for (size_t at = 0; at < input.size() && !input.empty();) {
            size_t len = std::min(chunk, input.size() - at);
            std::vector<uint8_t> candidate;
            candidate.reserve(input.size() - len);
            candidate.insert(candidate.end(), input.begin(),
                             input.begin() + static_cast<long>(at));
            candidate.insert(candidate.end(),
                             input.begin() + static_cast<long>(at + len),
                             input.end());
            if (stillFails(run, target, candidate, &res.execs,
                           opts.maxExecs)) {
                input = std::move(candidate);
                shrunk = true;
                // keep `at`: the next chunk slid into this position
            } else {
                at += len;
            }
        }
        if (res.execs >= opts.maxExecs) break;
        if (!shrunk) {
            if (chunk == 1) break;
            chunk = std::max<size_t>(1, chunk / 2);
        }
    }

    // Phase 2: value shrinking — drive each surviving byte toward 0
    // (0, v/2, v-1) to a fixpoint. Smaller bytes mean smaller args and
    // shorter loops, i.e. shorter reproducer traces.
    bool changed = true;
    while (changed && res.execs < opts.maxExecs) {
        changed = false;
        for (size_t i = 0; i < input.size(); i++) {
            uint8_t v = input[i];
            if (v == 0) continue;
            for (uint8_t cand :
                 {static_cast<uint8_t>(0), static_cast<uint8_t>(v / 2),
                  static_cast<uint8_t>(v - 1)}) {
                if (cand >= v) continue;
                std::vector<uint8_t> candidate = input;
                candidate[i] = cand;
                if (stillFails(run, target, candidate, &res.execs,
                               opts.maxExecs)) {
                    input = std::move(candidate);
                    changed = true;
                    break;
                }
            }
        }
    }

    res.input = std::move(input);
    return res;
}

} // namespace wizpp::fuzz
