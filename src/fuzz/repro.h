/**
 * @file
 * Reproducer files: the minimizer's output format IS the regression-
 * fixture format (the .repro files in tests/fixtures/fuzz/;
 * docs/FUZZING.md).
 *
 * A reproducer is a self-contained text file: the module (inline WAT),
 * the entry and arguments, the recorded shake environment (seed +
 * modes + memory seed), the expected failure signature, and the golden
 * minimized WZTR trace. verifyReproducer() re-runs it under all three
 * execution tiers and checks (a) the failure reproduces and (b) every
 * tier's fresh trace is byte-identical to the stored one — a committed
 * fuzz finding doubles as a tier-independence regression test.
 *
 * Format (line-oriented header, then the module to EOF):
 *
 *     # wizpp fuzz reproducer v1
 *     entry: run
 *     seed: 7
 *     shake: grow,short            (omitted when no modes)
 *     expect: trap:MemoryOutOfBounds
 *     args: i32:5 i64:-1           (f32/f64 as raw-bit hex)
 *     mem: 00ff3a                  (omitted when empty)
 *     trace: 575a54...             (hex of the golden WZTR bytes)
 *     module:
 *     (module ...)
 */

#ifndef WIZPP_FUZZ_REPRO_H
#define WIZPP_FUZZ_REPRO_H

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/minimize.h"
#include "runtime/value.h"
#include "support/result.h"

namespace wizpp::fuzz {

/** One parsed (or to-be-written) reproducer. */
struct Reproducer
{
    std::string entry;
    uint64_t seed = 1;
    std::string shakeModes;         ///< "grow,short,random" subset
    FailureSignature expect;
    std::vector<Value> args;
    std::vector<uint8_t> memSeed;   ///< written at offset 0
    std::vector<uint8_t> trace;     ///< golden minimized WZTR
    std::string watModule;          ///< inline module source
};

/** Renders @p r in the file format above. */
std::string renderReproducer(const Reproducer& r);

/** Parses the file format; Error carries the offending line. */
Result<Reproducer> parseReproducer(const std::string& text);

/** File I/O wrappers. */
bool writeReproducer(const std::string& path, const Reproducer& r);
Result<Reproducer> readReproducer(const std::string& path);

/** Outcome of re-running a reproducer. */
struct ReproVerdict
{
    bool ok = false;
    std::string message;  ///< verdict, or first mismatch
};

/**
 * Re-runs @p r under Interpreter, Jit and Tiered tiers with its
 * recorded shake environment. For a trap expectation, every tier must
 * reproduce the trap AND record a trace byte-identical to the stored
 * golden one. For a divergence expectation, the interpreter trace must
 * match the golden trace and at least one compiled tier must diverge
 * from it.
 */
ReproVerdict verifyReproducer(const Reproducer& r);

/** "i32:-5", "f64:0x3ff0000000000000" <-> Value (raw-bit exact). */
std::string valueToText(const Value& v);
bool valueFromText(const std::string& s, Value* out);

} // namespace wizpp::fuzz

#endif // WIZPP_FUZZ_REPRO_H
