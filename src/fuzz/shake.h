/**
 * @file
 * "Shake": deterministic environmental perturbation (docs/FUZZING.md).
 *
 * A shake run executes the program in a hostile-but-reproducible
 * environment: memory.grow failures injected on a seeded schedule,
 * host "reads" returning fewer bytes than asked, host calls returning
 * randomized results — every perturbation a pure function of the
 * recorded seed. The run is captured to WZTR and replayVerify is the
 * oracle: re-running under the same ShakeOptions (any tier) must
 * reproduce the trace byte for byte.
 *
 * The injection points are deliberately tier-independent:
 *  - Memory::setGrowFault sits under both the interpreter's and the
 *    compiled tier's memory.grow implementation;
 *  - host imports are resolved once at instantiation, shared by every
 *    tier.
 *
 * makeShakeEnv() packages the whole environment as a trace::ReplayEnv,
 * so recordTrace/replayVerify construct identical worlds on the
 * recording and the verifying engine.
 */

#ifndef WIZPP_FUZZ_SHAKE_H
#define WIZPP_FUZZ_SHAKE_H

#include <cstdint>
#include <string>
#include <vector>

#include "trace/replay.h"

namespace wizpp::fuzz {

/** The recorded environment of one shake run. */
struct ShakeOptions
{
    /** Seed for every perturbation stream (recorded in reproducers). */
    uint64_t seed = 1;

    /** Fail memory.grow on a seeded schedule (~1 in 2 per call). */
    bool failMemGrow = false;

    /**
     * Short reads: an import shaped like a read — last param i32
     * (the requested length), single i32 result — returns a seeded
     * value in [0, requested] instead of the stub default.
     */
    bool shortReads = false;

    /** Randomize every host-call result (seeded, finite floats). */
    bool randomHost = false;

    /** Bytes written to linear memory at offset 0 after instantiate. */
    std::vector<uint8_t> memSeed;
};

/**
 * Builds the ReplayEnv for @p opts against @p module: preInstantiate
 * binds a deterministic host function for every function import (zero
 * results unless a shake mode overrides); postInstantiate installs the
 * grow-fault schedule and writes the memory seed. Each engine the env
 * is applied to gets fresh per-import streams derived from the seed,
 * so record and replay perturb identically.
 */
ReplayEnv makeShakeEnv(const Module& module, const ShakeOptions& opts);

/**
 * Parses a "grow,short,random" mode list into @p opts flags.
 * Returns false (and leaves @p opts unspecified) on an unknown mode.
 */
bool parseShakeModes(const std::string& csv, ShakeOptions* opts);

/** Renders the enabled modes back to the canonical csv ("" if none). */
std::string shakeModesToString(const ShakeOptions& opts);

} // namespace wizpp::fuzz

#endif // WIZPP_FUZZ_SHAKE_H
