/**
 * @file
 * Delta-minimization of failing fuzz inputs (docs/FUZZING.md).
 *
 * The minimizer shrinks a byte-level input while a caller-supplied
 * runner keeps reproducing the same failure signature. Because the
 * engine is deterministic given (input, seed, environment), shrinking
 * the input shrinks the execution: the minimized input's golden WZTR
 * trace is the minimal reproducer trace prefix the ISSUE's pipeline
 * checks into tests/fixtures/fuzz/.
 *
 * The algorithm is classic ddmin (Zeller/Hildebrandt) over byte chunks
 * — remove chunks of n/2, n/4, ... 1 bytes while the failure persists
 * — followed by per-byte value shrinking (0, v/2, v-1) to a fixpoint
 * or the exec budget, whichever first. Fully deterministic: same
 * input, same runner, same result.
 */

#ifndef WIZPP_FUZZ_MINIMIZE_H
#define WIZPP_FUZZ_MINIMIZE_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "runtime/trap.h"

namespace wizpp::fuzz {

/** What went wrong — the equivalence class minimization preserves. */
struct FailureSignature
{
    enum class Kind : uint8_t {
        None,        ///< the run completed normally
        Trap,        ///< trapped; `trap` holds the reason
        Divergence,  ///< tiers disagreed (trace mismatch)
    };

    Kind kind = Kind::None;
    TrapReason trap = TrapReason::None;

    bool failing() const { return kind != Kind::None; }

    /** Same failure class: traps must match by reason; divergences
        match each other (the diverging site may move as the input
        shrinks — the bug class is "tiers disagree"). */
    bool
    matches(const FailureSignature& o) const
    {
        if (kind != o.kind) return false;
        if (kind == Kind::Trap) return trap == o.trap;
        return true;
    }

    /** "trap:MemoryOutOfBounds" / "divergence" / "none". */
    std::string toString() const;

    /** Inverse of toString(); returns false on an unknown rendering. */
    static bool parse(const std::string& s, FailureSignature* out);
};

/** Runs one input, reports how it failed. Must be deterministic. */
using FailureRunner =
    std::function<FailureSignature(const std::vector<uint8_t>&)>;

struct MinimizeOptions
{
    /** Hard budget on runner invocations. */
    size_t maxExecs = 2000;
};

struct MinimizeResult
{
    std::vector<uint8_t> input;  ///< smallest still-failing input
    size_t execs = 0;            ///< runner invocations spent
};

/**
 * Shrinks @p input while @p run keeps producing a signature matching
 * @p target. @p input must already fail (callers pass the signature
 * the fuzzer observed); if it does not, it is returned unchanged.
 */
MinimizeResult minimizeInput(std::vector<uint8_t> input,
                             const FailureRunner& run,
                             const FailureSignature& target,
                             const MinimizeOptions& opts = {});

} // namespace wizpp::fuzz

#endif // WIZPP_FUZZ_MINIMIZE_H
