#include "fuzz/fuzzer.h"

#include <algorithm>
#include <chrono>
#include <ostream>
#include <set>

#include "fuzz/coverage.h"
#include "fuzz/rng.h"
#include "trace/reader.h"
#include "trace/replay.h"

namespace wizpp::fuzz {

namespace {

double
nowSeconds()
{
    using namespace std::chrono;
    return duration<double>(steady_clock::now().time_since_epoch())
        .count();
}

/** Little-endian byte consumption; missing bytes read as zero so a
    short input still maps to a full argument vector. */
uint32_t
take32(const std::vector<uint8_t>& in, size_t* at)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; i++) {
        if (*at < in.size()) v |= static_cast<uint32_t>(in[*at]) << (8 * i);
        (*at)++;
    }
    return v;
}

uint64_t
take64(const std::vector<uint8_t>& in, size_t* at)
{
    uint64_t lo = take32(in, at);
    uint64_t hi = take32(in, at);
    return lo | (hi << 32);
}

/**
 * Maps input bytes to entry arguments (the leading bytes, fixed width
 * per parameter) and reports where the memory-seed tail starts.
 * Integer args are clamped mod (maxArg + 1) to keep loop bounds small;
 * float args are built from small integers so every bit pattern is
 * finite and canonical.
 */
std::vector<Value>
argsFromInput(const std::vector<uint8_t>& in, const FuncType& type,
              uint32_t maxArg, size_t* tail)
{
    std::vector<Value> args;
    size_t at = 0;
    for (ValType t : type.params) {
        switch (t) {
          case ValType::I32: {
              uint32_t v = take32(in, &at);
              if (maxArg) v %= maxArg + 1;
              args.push_back(Value::makeI32(v));
              break;
          }
          case ValType::I64: {
              uint64_t v = take64(in, &at);
              if (maxArg) v %= static_cast<uint64_t>(maxArg) + 1;
              args.push_back(Value::makeI64(v));
              break;
          }
          case ValType::F32:
              args.push_back(Value::makeF32(
                  static_cast<float>(take32(in, &at) % 4096) / 8.0f));
              break;
          case ValType::F64:
              args.push_back(Value::makeF64(
                  static_cast<double>(take32(in, &at) % 65536) / 32.0));
              break;
          default:
              args.push_back(Value::zeroOf(t));
              break;
        }
    }
    *tail = std::min(at, in.size());
    return args;
}

/** One mutated child of a scheduled corpus entry. */
std::vector<uint8_t>
mutate(const std::vector<std::vector<uint8_t>>& corpus, Rng& rng,
       uint32_t maxBytes)
{
    std::vector<uint8_t> input = corpus[rng.below(corpus.size())];
    int rounds = 1 + static_cast<int>(rng.below(4));
    for (int i = 0; i < rounds; i++) {
        switch (rng.below(6)) {
          case 0:  // bit flip
            if (input.empty()) input.push_back(0);
            input[rng.below(input.size())] ^=
                static_cast<uint8_t>(1u << rng.below(8));
            break;
          case 1:  // random byte
            if (input.empty()) input.push_back(0);
            input[rng.below(input.size())] = rng.nextByte();
            break;
          case 2:  // small arithmetic
            if (input.empty()) input.push_back(0);
            input[rng.below(input.size())] += static_cast<uint8_t>(
                static_cast<int64_t>(rng.below(9)) - 4);
            break;
          case 3:  // extend
            input.push_back(rng.nextByte());
            break;
          case 4:  // truncate
            if (!input.empty()) {
                input.resize(rng.below(input.size() + 1));
            }
            break;
          default: {  // splice with another corpus entry
              const std::vector<uint8_t>& other =
                  corpus[rng.below(corpus.size())];
              if (!other.empty()) {
                  size_t cut = rng.below(other.size() + 1);
                  input.insert(input.end(), other.begin(),
                               other.begin() + static_cast<long>(cut));
              }
              break;
          }
        }
    }
    if (input.size() > maxBytes) input.resize(maxBytes);
    return input;
}

size_t
traceEventCount(const std::vector<uint8_t>& bytes)
{
    if (bytes.empty()) return 0;
    auto parsed = readTrace(bytes);
    return parsed.ok() ? parsed.value().events.size() : 0;
}

} // namespace

FuzzResult
runFuzzer(const Module& module, const EngineConfig& config,
          const FuzzOptions& opts)
{
    FuzzResult res;
    res.seed = opts.seed;

    int32_t entryIdx = module.findFuncExport(opts.entry);
    if (entryIdx < 0) {
        res.error = "no exported function '" + opts.entry + "'";
        return res;
    }
    const FuncType& type = module.funcType(
        static_cast<uint32_t>(entryIdx));

    Engine eng(config);
    auto lr = eng.loadModule(Module(module));
    if (!lr.ok()) {
        res.error = "load failed: " + lr.error().toString();
        return res;
    }
    CoverageIndex cov;
    cov.attach(eng);

    // Per-run shake environment: the recorded modes plus this input's
    // memory-seed tail. Rebuilt per execution so host streams restart
    // exactly as they would in a fresh engine — an input that fails
    // mid-campaign fails identically when replayed alone.
    auto shakeFor = [&opts](const std::vector<uint8_t>& input,
                            size_t tail) {
        ShakeOptions sh = opts.shake;
        if (tail < input.size()) {
            sh.memSeed.assign(input.begin() + static_cast<long>(tail),
                              input.end());
        }
        return sh;
    };

    // Fresh-engine reference run (interpreter unless asked otherwise):
    // the minimizer's runner and the golden-trace recorder.
    EngineConfig refCfg = config;
    refCfg.mode = ExecMode::Interpreter;
    auto traceFor = [&](const EngineConfig& cfg,
                        const std::vector<uint8_t>& input) {
        size_t tail = 0;
        std::vector<Value> args =
            argsFromInput(input, type, opts.maxArg, &tail);
        ReplayEnv env = makeShakeEnv(module, shakeFor(input, tail));
        return recordTrace(module, cfg, opts.entry, args, {}, env);
    };
    auto signatureOf = [](const std::vector<uint8_t>& bytes) {
        FailureSignature sig;
        if (bytes.empty()) return sig;
        auto parsed = readTrace(bytes);
        if (parsed.ok() &&
            parsed.value().trapReason() != TrapReason::None) {
            sig.kind = FailureSignature::Kind::Trap;
            sig.trap = parsed.value().trapReason();
        }
        return sig;
    };
    FailureRunner trapRunner = [&](const std::vector<uint8_t>& input) {
        return signatureOf(traceFor(refCfg, input));
    };

    std::set<std::string> seenSignatures;
    auto addFinding = [&](const std::vector<uint8_t>& input,
                          const FailureSignature& sig,
                          const FailureRunner& runner) {
        if (!seenSignatures.insert(sig.toString()).second) return;
        FuzzFinding f;
        f.signature = sig;
        f.origTraceEvents = traceEventCount(traceFor(refCfg, input));
        std::vector<uint8_t> minInput = input;
        if (opts.minimizeFindings) {
            MinimizeOptions mo;
            mo.maxExecs = opts.minimizeBudget;
            MinimizeResult m = minimizeInput(input, runner, sig, mo);
            minInput = std::move(m.input);
            res.execs += m.execs;
        }
        f.input = minInput;
        f.trace = traceFor(refCfg, minInput);
        f.minTraceEvents = traceEventCount(f.trace);
        if (!opts.watSource.empty()) {
            size_t tail = 0;
            f.repro.entry = opts.entry;
            f.repro.seed = opts.shake.seed;
            f.repro.shakeModes = shakeModesToString(opts.shake);
            f.repro.expect = sig;
            f.repro.args =
                argsFromInput(minInput, type, opts.maxArg, &tail);
            f.repro.memSeed = shakeFor(minInput, tail).memSeed;
            f.repro.trace = f.trace;
            f.repro.watModule = opts.watSource;
            f.haveRepro = true;
        }
        res.findings.push_back(std::move(f));
    };

    // ---- The campaign loop ----
    Rng rng(opts.seed);
    std::vector<std::vector<uint8_t>> corpus;
    corpus.push_back({});
    corpus.push_back(std::vector<uint8_t>(
        std::min<uint32_t>(opts.maxInputBytes, 16), 0));

    double t0 = nowSeconds();
    for (uint32_t run = 0; run < opts.runs; run++) {
        std::vector<uint8_t> input =
            run < corpus.size()
                ? corpus[run]
                : mutate(corpus, rng, opts.maxInputBytes);
        size_t tail = 0;
        std::vector<Value> args =
            argsFromInput(input, type, opts.maxArg, &tail);
        ReplayEnv env = makeShakeEnv(module, shakeFor(input, tail));
        env.preInstantiate(eng);
        auto ir = eng.instantiate();
        if (!ir.ok()) {
            res.error = "instantiate failed: " + ir.error().toString();
            return res;
        }
        env.postInstantiate(eng);

        cov.resetNewHits();
        auto r = eng.callExport(opts.entry, args);
        res.execs++;
        bool trapped = !r.ok() && eng.lastTrap() != TrapReason::None;
        if (!r.ok() && !trapped) {
            res.error = "invoke failed: " + r.error().toString();
            return res;
        }

        if (cov.newHits() > 0) corpus.push_back(input);
        cov.flush();

        if (trapped) {
            FailureSignature sig;
            sig.kind = FailureSignature::Kind::Trap;
            sig.trap = eng.lastTrap();
            addFinding(input, sig, trapRunner);
        }
    }
    double elapsed = nowSeconds() - t0;

    // ---- Optional cross-tier divergence sweep over the corpus ----
    if (opts.crossTierCheck) {
        EngineConfig jitCfg = config;
        jitCfg.mode = ExecMode::Jit;
        EngineConfig tieredCfg = config;
        tieredCfg.mode = ExecMode::Tiered;
        tieredCfg.tierUpThreshold = 2;
        FailureRunner divergeRunner =
            [&](const std::vector<uint8_t>& input) {
                FailureSignature sig;
                std::vector<uint8_t> a = traceFor(refCfg, input);
                if (a.empty()) return sig;
                if (traceFor(jitCfg, input) != a ||
                    traceFor(tieredCfg, input) != a) {
                    sig.kind = FailureSignature::Kind::Divergence;
                }
                return sig;
            };
        size_t limit = std::min<size_t>(corpus.size(), 32);
        for (size_t i = 0; i < limit; i++) {
            res.execs += 3;
            FailureSignature sig = divergeRunner(corpus[i]);
            if (sig.kind == FailureSignature::Kind::Divergence) {
                addFinding(corpus[i], sig, divergeRunner);
            }
        }
    }

    res.ok = true;
    res.corpusSize = corpus.size();
    res.sitesTotal = cov.sitesTotal();
    res.sitesCovered = cov.sitesCovered();
    res.edgesTotal = cov.edgesTotal();
    res.edgesCovered = cov.edgesCovered();
    res.execsPerSec =
        elapsed > 0 ? static_cast<double>(res.execs) / elapsed : 0;
    return res;
}

void
writeFuzzReport(std::ostream& out, const FuzzResult& r)
{
    if (!r.ok) {
        out << "fuzz: error: " << r.error << "\n";
        return;
    }
    out << "== fuzz ==\n"
        << "seed:     " << r.seed << "\n"
        << "execs:    " << r.execs << " (" << static_cast<uint64_t>(
            r.execsPerSec) << "/s)\n"
        << "corpus:   " << r.corpusSize << "\n"
        << "coverage: " << r.sitesCovered << "/" << r.sitesTotal
        << " locations, " << r.edgesCovered << "/" << r.edgesTotal
        << " edges\n"
        << "findings: " << r.findings.size() << "\n";
    for (const FuzzFinding& f : r.findings) {
        out << "  " << f.signature.toString() << ": input "
            << f.input.size() << " byte(s), trace " << f.minTraceEvents
            << " event(s)";
        if (f.origTraceEvents > f.minTraceEvents) {
            out << " (minimized from " << f.origTraceEvents << ")";
        }
        out << "\n";
    }
}

} // namespace wizpp::fuzz
