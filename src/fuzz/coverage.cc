#include "fuzz/coverage.h"

#include <algorithm>
#include <ostream>
#include <set>

#include "engine/engine.h"
#include "wasm/opcodes.h"

namespace wizpp::fuzz {

/**
 * Direction coverage for one if/br_if site. An OperandProbe so a lone
 * edge probe intrinsifies to a direct top-of-stack call; once both
 * directions executed it reports nothing further and flush() detaches
 * it.
 */
class CoverageIndex::EdgeProbe : public OperandProbe
{
  public:
    EdgeProbe(CoverageIndex& idx, uint32_t func, uint32_t pc)
        : funcIndex(func), pc(pc), _idx(idx)
    {}

    void
    fireOperand(Value tos) override
    {
        uint8_t bit = tos.i32() != 0 ? 1 : 2;
        if (bits & bit) return;
        bits |= bit;
        _idx.onEdgeBit(funcIndex, pc, bit == 1);
    }

    const uint32_t funcIndex;
    const uint32_t pc;
    uint8_t bits = 0;  ///< 1 = taken seen, 2 = not-taken seen

  private:
    CoverageIndex& _idx;
};

CoverageIndex::~CoverageIndex() = default;

void
CoverageIndex::attach(Engine& engine, const CoverageOptions& opts)
{
    _engine = &engine;
    std::vector<ProbeManager::SiteProbe> batch;
    for (uint32_t f = 0; f < engine.numFuncs(); f++) {
        FuncState& fs = engine.funcState(f);
        if (fs.decl->imported) continue;
        const std::vector<uint8_t>& code = fs.decl->code;
        for (uint32_t pc : fs.sideTable.instrBoundaries) {
            uint8_t op = code[pc];
            if (opts.branchEdges && (op == OP_IF || op == OP_BR_IF)) {
                auto p = std::make_shared<EdgeProbe>(*this, f, pc);
                batch.push_back({f, pc, p});
                _edges.push_back({std::move(p)});
            } else {
                auto p = std::make_shared<CoverageProbe>(f, pc, this);
                batch.push_back({f, pc, p});
                _sites.push_back({std::move(p)});
            }
        }
    }
    engine.probes().insertBatch(batch);
}

void
CoverageIndex::onCovered(CoverageProbe&)
{
    _sitesCovered++;
    _newHits++;
}

void
CoverageIndex::onEdgeBit(uint32_t, uint32_t, bool)
{
    _edgesCovered++;
    _newHits++;
}

size_t
CoverageIndex::flush()
{
    if (!_engine) return 0;
    std::vector<ProbeManager::SiteProbe> batch;
    for (SiteEntry& s : _sites) {
        if (s.attached && s.probe->hit()) {
            batch.push_back(
                {s.probe->funcIndex, s.probe->pc, s.probe});
            s.attached = false;
        }
    }
    for (EdgeEntry& e : _edges) {
        if (e.attached && e.probe->bits == 3) {
            batch.push_back(
                {e.probe->funcIndex, e.probe->pc, e.probe});
            e.attached = false;
        }
    }
    if (batch.empty()) return 0;
    return _engine->probes().removeBatch(batch);
}

std::vector<std::pair<uint32_t, uint32_t>>
CoverageIndex::coveredSites() const
{
    std::vector<std::pair<uint32_t, uint32_t>> out;
    for (const SiteEntry& s : _sites) {
        if (s.probe->hit()) {
            out.emplace_back(s.probe->funcIndex, s.probe->pc);
        }
    }
    for (const EdgeEntry& e : _edges) {
        if (e.probe->bits) {
            out.emplace_back(e.probe->funcIndex, e.probe->pc);
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::map<uint64_t, uint8_t>
CoverageIndex::branchEdges() const
{
    std::map<uint64_t, uint8_t> out;
    for (const EdgeEntry& e : _edges) {
        if (e.probe->bits) {
            uint64_t key = (static_cast<uint64_t>(e.probe->funcIndex)
                            << 32) |
                           e.probe->pc;
            out[key] = e.probe->bits;
        }
    }
    return out;
}

void
CoverageIndex::writeReport(std::ostream& out) const
{
    out << "== coverage ==\n"
        << "locations: " << sitesCovered() << "/" << sitesTotal() << "\n"
        << "edges:     " << edgesCovered() << "/" << edgesTotal() << "\n";

    std::set<uint32_t> funcs;
    for (const auto& [f, pc] : coveredSites()) {
        (void)pc;
        funcs.insert(f);
    }
    out << "functions covered: " << funcs.size() << "\n";

    for (const EdgeEntry& e : _edges) {
        if (e.probe->bits == 1 || e.probe->bits == 2) {
            out << "one-sided branch " << e.probe->funcIndex << ":"
                << e.probe->pc << " only "
                << (e.probe->bits == 1 ? "taken" : "not-taken") << "\n";
        }
    }
}

} // namespace wizpp::fuzz
