#include "fuzz/repro.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "fuzz/shake.h"
#include "trace/reader.h"
#include "trace/replay.h"
#include "wat/wat.h"

namespace wizpp::fuzz {

namespace {

std::string
toHex(const std::vector<uint8_t>& bytes)
{
    static const char* kDigits = "0123456789abcdef";
    std::string out;
    out.reserve(bytes.size() * 2);
    for (uint8_t b : bytes) {
        out += kDigits[b >> 4];
        out += kDigits[b & 0xf];
    }
    return out;
}

bool
fromHex(const std::string& hex, std::vector<uint8_t>* out)
{
    if (hex.size() % 2) return false;
    out->clear();
    out->reserve(hex.size() / 2);
    auto nib = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        return -1;
    };
    for (size_t i = 0; i < hex.size(); i += 2) {
        int hi = nib(hex[i]), lo = nib(hex[i + 1]);
        if (hi < 0 || lo < 0) return false;
        out->push_back(static_cast<uint8_t>((hi << 4) | lo));
    }
    return true;
}

} // namespace

std::string
valueToText(const Value& v)
{
    char buf[32];
    switch (v.type) {
      case ValType::I32:
        return "i32:" + std::to_string(v.i32s());
      case ValType::I64:
        return "i64:" + std::to_string(v.i64s());
      case ValType::F32:
        // Raw bits: std::to_string(float) is lossy and a reproducer
        // must round-trip exactly.
        std::snprintf(buf, sizeof buf, "f32:0x%08x", v.i32());
        return buf;
      case ValType::F64:
        std::snprintf(buf, sizeof buf, "f64:0x%016llx",
                      static_cast<unsigned long long>(v.bits));
        return buf;
      default:
        return "i32:0";
    }
}

bool
valueFromText(const std::string& s, Value* out)
{
    size_t colon = s.find(':');
    if (colon == std::string::npos) return false;
    std::string type = s.substr(0, colon);
    std::string payload = s.substr(colon + 1);
    if (payload.empty()) return false;
    try {
        if (type == "i32") {
            *out = Value::makeI32(
                static_cast<int32_t>(std::stoll(payload)));
        } else if (type == "i64") {
            *out = Value::makeI64(
                static_cast<int64_t>(std::stoll(payload)));
        } else if (type == "f32") {
            *out = Value{ValType::F32,
                         static_cast<uint32_t>(
                             std::stoull(payload, nullptr, 0))};
        } else if (type == "f64") {
            *out =
                Value{ValType::F64, std::stoull(payload, nullptr, 0)};
        } else {
            return false;
        }
    } catch (...) {
        return false;
    }
    return true;
}

std::string
renderReproducer(const Reproducer& r)
{
    std::ostringstream out;
    out << "# wizpp fuzz reproducer v1\n";
    out << "entry: " << r.entry << "\n";
    out << "seed: " << r.seed << "\n";
    if (!r.shakeModes.empty()) out << "shake: " << r.shakeModes << "\n";
    out << "expect: " << r.expect.toString() << "\n";
    out << "args:";
    for (const Value& v : r.args) out << " " << valueToText(v);
    out << "\n";
    if (!r.memSeed.empty()) out << "mem: " << toHex(r.memSeed) << "\n";
    out << "trace: " << toHex(r.trace) << "\n";
    out << "module:\n";
    out << r.watModule;
    if (!r.watModule.empty() && r.watModule.back() != '\n') out << "\n";
    return out.str();
}

Result<Reproducer>
parseReproducer(const std::string& text)
{
    Reproducer r;
    std::istringstream in(text);
    std::string line;
    bool sawEntry = false, sawTrace = false, sawExpect = false;
    size_t lineNo = 0;
    while (std::getline(in, line)) {
        lineNo++;
        if (line.empty() || line[0] == '#') continue;
        if (line == "module:") {
            std::ostringstream rest;
            rest << in.rdbuf();
            r.watModule = rest.str();
            // render/parse normalization: rendering guarantees one
            // trailing newline, so parsing drops exactly one.
            if (!r.watModule.empty() && r.watModule.back() == '\n') {
                r.watModule.pop_back();
            }
            break;
        }
        size_t colon = line.find(": ");
        if (colon == std::string::npos) {
            return Error{"reproducer: malformed line '" + line + "'",
                         lineNo};
        }
        std::string key = line.substr(0, colon);
        std::string val = line.substr(colon + 2);
        if (key == "entry") {
            r.entry = val;
            sawEntry = true;
        } else if (key == "seed") {
            try {
                r.seed = std::stoull(val);
            } catch (...) {
                return Error{"reproducer: bad seed '" + val + "'",
                             lineNo};
            }
        } else if (key == "shake") {
            ShakeOptions probeParse;
            if (!parseShakeModes(val, &probeParse)) {
                return Error{"reproducer: bad shake modes '" + val + "'",
                             lineNo};
            }
            r.shakeModes = val;
        } else if (key == "expect") {
            if (!FailureSignature::parse(val, &r.expect)) {
                return Error{"reproducer: bad expect '" + val + "'",
                             lineNo};
            }
            sawExpect = true;
        } else if (key == "args") {
            std::istringstream args(val);
            std::string tok;
            while (args >> tok) {
                Value v;
                if (!valueFromText(tok, &v)) {
                    return Error{"reproducer: bad arg '" + tok + "'",
                                 lineNo};
                }
                r.args.push_back(v);
            }
        } else if (key == "mem") {
            if (!fromHex(val, &r.memSeed)) {
                return Error{"reproducer: bad mem hex", lineNo};
            }
        } else if (key == "trace") {
            if (!fromHex(val, &r.trace)) {
                return Error{"reproducer: bad trace hex", lineNo};
            }
            sawTrace = true;
        } else {
            return Error{"reproducer: unknown key '" + key + "'",
                         lineNo};
        }
    }
    if (!sawEntry || !sawExpect || !sawTrace || r.watModule.empty()) {
        return Error{"reproducer: missing entry/expect/trace/module "
                     "section",
                     lineNo};
    }
    return r;
}

bool
writeReproducer(const std::string& path, const Reproducer& r)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out) return false;
    out << renderReproducer(r);
    return static_cast<bool>(out);
}

Result<Reproducer>
readReproducer(const std::string& path)
{
    std::ifstream in(path);
    if (!in) return Error{"cannot open reproducer '" + path + "'", 0};
    std::ostringstream text;
    text << in.rdbuf();
    return parseReproducer(text.str());
}

ReproVerdict
verifyReproducer(const Reproducer& r)
{
    ReproVerdict v;

    auto parsed = parseWat(r.watModule);
    if (!parsed.ok()) {
        v.message =
            "reproducer module does not parse: " +
            parsed.error().toString();
        return v;
    }
    const Module& module = parsed.value();

    ShakeOptions shake;
    shake.seed = r.seed;
    if (!parseShakeModes(r.shakeModes, &shake)) {
        v.message = "bad shake modes '" + r.shakeModes + "'";
        return v;
    }
    shake.memSeed = r.memSeed;

    struct TierRun
    {
        const char* name;
        EngineConfig cfg;
    };
    TierRun tiers[3] = {{"int", {}}, {"jit", {}}, {"tiered", {}}};
    tiers[0].cfg.mode = ExecMode::Interpreter;
    tiers[1].cfg.mode = ExecMode::Jit;
    tiers[2].cfg.mode = ExecMode::Tiered;
    tiers[2].cfg.tierUpThreshold = 2;

    std::vector<uint8_t> traces[3];
    for (int i = 0; i < 3; i++) {
        ReplayEnv env = makeShakeEnv(module, shake);
        traces[i] = recordTrace(module, tiers[i].cfg, r.entry, r.args,
                                {}, env);
        if (traces[i].empty()) {
            v.message = std::string("tier ") + tiers[i].name +
                        ": run failed to record a trace";
            return v;
        }
    }

    // The interpreter run is the reference: its outcome must match the
    // expected signature and (always) the stored golden trace.
    auto ref = readTrace(traces[0]);
    if (!ref.ok()) {
        v.message = "interpreter trace unreadable";
        return v;
    }
    FailureSignature got;
    if (ref.value().trapReason() != TrapReason::None) {
        got.kind = FailureSignature::Kind::Trap;
        got.trap = ref.value().trapReason();
    }
    if (r.expect.kind == FailureSignature::Kind::Trap &&
        !got.matches(r.expect)) {
        v.message = "expected " + r.expect.toString() + ", got " +
                    got.toString();
        return v;
    }
    if (traces[0] != r.trace) {
        v.message = "interpreter trace differs from the stored golden "
                    "trace";
        return v;
    }

    if (r.expect.kind == FailureSignature::Kind::Divergence) {
        if (traces[1] == traces[0] && traces[2] == traces[0]) {
            v.message = "expected a cross-tier divergence but all "
                        "tiers agree";
            return v;
        }
        v.ok = true;
        v.message = "divergence reproduced";
        return v;
    }

    for (int i = 1; i < 3; i++) {
        if (traces[i] != traces[0]) {
            v.message = std::string("tier ") + tiers[i].name +
                        " trace diverges from the interpreter trace";
            return v;
        }
    }
    v.ok = true;
    v.message = "reproduced " + r.expect.toString() + " on all tiers, " +
                std::to_string(r.trace.size()) + " trace byte(s) " +
                "identical";
    return v;
}

} // namespace wizpp::fuzz
