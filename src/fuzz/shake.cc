#include "fuzz/shake.h"

#include <algorithm>
#include <cstring>
#include <memory>

#include "engine/engine.h"
#include "fuzz/rng.h"

namespace wizpp::fuzz {

namespace {

/** "Looks like a read": last param i32 (length), single i32 result. */
bool
isShortReadShape(const FuncType& t)
{
    return t.results.size() == 1 && t.results[0] == ValType::I32 &&
           !t.params.empty() && t.params.back() == ValType::I32;
}

/** Seeded value of type @p t. Floats are built from small integers so
    every produced bit pattern is finite and canonical. */
Value
randomValue(ValType t, Rng& rng)
{
    switch (t) {
      case ValType::I32:
        return Value::makeI32(static_cast<uint32_t>(rng.next()));
      case ValType::I64:
        return Value::makeI64(rng.next());
      case ValType::F32:
        return Value::makeF32(
            static_cast<float>(rng.below(1u << 16)) / 16.0f);
      case ValType::F64:
        return Value::makeF64(
            static_cast<double>(rng.below(1u << 20)) / 32.0);
      default:
        return Value::zeroOf(t);
    }
}

} // namespace

ReplayEnv
makeShakeEnv(const Module& module, const ShakeOptions& opts)
{
    // Import declarations are captured up front: the Module handed to
    // recordTrace is moved into the engine before the hooks run.
    struct Import
    {
        std::string mod, name;
        FuncType type;
        uint64_t salt = 0;
    };
    auto imports = std::make_shared<std::vector<Import>>();
    uint64_t salt = 0;
    for (const FuncDecl& f : module.functions) {
        if (!f.imported) break;
        imports->push_back(
            {f.importModule, f.importName, module.types[f.typeIndex],
             salt++});
    }

    ShakeOptions o = opts;
    ReplayEnv env;
    env.preInstantiate = [imports, o](Engine& eng) {
        for (const Import& imp : *imports) {
            // One fresh stream per (engine, import), derived from the
            // recorded seed: the hook body runs once per engine, so the
            // recording and the verifying engine see identical
            // sequences regardless of tier.
            auto rng =
                std::make_shared<Rng>(Rng::derive(o.seed, imp.salt));
            FuncType type = imp.type;
            bool shortRead = o.shortReads && isShortReadShape(type);
            bool random = o.randomHost;
            eng.imports().addFunc(
                imp.mod, imp.name,
                HostFunc{type,
                         [rng, type, shortRead, random](
                             const std::vector<Value>& args,
                             std::vector<Value>* results) {
                             results->clear();
                             if (shortRead) {
                                 uint32_t asked =
                                     args.empty() ? 0 : args.back().i32();
                                 results->push_back(Value::makeI32(
                                     static_cast<uint32_t>(rng->below(
                                         static_cast<uint64_t>(asked) +
                                         1))));
                                 return TrapReason::None;
                             }
                             for (ValType t : type.results) {
                                 results->push_back(
                                     random ? randomValue(t, *rng)
                                            : Value::zeroOf(t));
                             }
                             return TrapReason::None;
                         }});
        }
    };
    env.postInstantiate = [o](Engine& eng) {
        if (o.failMemGrow) {
            // The schedule is a pure function of (seed, call ordinal):
            // roughly every other grow fails, in an order the replay
            // reproduces exactly.
            auto calls = std::make_shared<uint64_t>(0);
            uint64_t seed = o.seed;
            eng.instance().memory.setGrowFault(
                [calls, seed](uint32_t, uint32_t) {
                    uint64_t n = (*calls)++;
                    return (Rng::derive(seed, 0x6001 + n).next() & 1) !=
                           0;
                });
        }
        if (!o.memSeed.empty()) {
            Memory& mem = eng.instance().memory;
            size_t n = std::min(o.memSeed.size(), mem.byteSize());
            if (n) std::memcpy(mem.data(), o.memSeed.data(), n);
        }
    };
    return env;
}

bool
parseShakeModes(const std::string& csv, ShakeOptions* opts)
{
    size_t start = 0;
    while (start <= csv.size()) {
        size_t comma = csv.find(',', start);
        std::string mode =
            csv.substr(start, comma == std::string::npos
                                  ? std::string::npos
                                  : comma - start);
        if (!mode.empty()) {
            if (mode == "grow") {
                opts->failMemGrow = true;
            } else if (mode == "short") {
                opts->shortReads = true;
            } else if (mode == "random") {
                opts->randomHost = true;
            } else {
                return false;
            }
        }
        if (comma == std::string::npos) break;
        start = comma + 1;
    }
    return true;
}

std::string
shakeModesToString(const ShakeOptions& opts)
{
    std::string out;
    auto add = [&out](const char* m) {
        if (!out.empty()) out += ",";
        out += m;
    };
    if (opts.failMemGrow) add("grow");
    if (opts.shortReads) add("short");
    if (opts.randomHost) add("random");
    return out;
}

} // namespace wizpp::fuzz
