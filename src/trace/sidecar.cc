#include "trace/sidecar.h"

#include <algorithm>
#include <ostream>
#include <vector>

namespace wizpp {

TraceAnalysis
analyzeTrace(const Trace& trace)
{
    TraceAnalysis a;
    a.runs = 1;
    a.events = trace.events.size();
    for (const TraceEvent& e : trace.events) {
        uint64_t key = TraceAnalysis::siteKey(e.func, e.pc);
        switch (e.kind) {
          case TraceKind::FuncEntry:
            a.funcEntries[e.func]++;
            break;
          case TraceKind::Branch:
            if (e.a) a.branches[key].taken++;
            else a.branches[key].notTaken++;
            break;
          case TraceKind::BrTable:
            a.tables[key][static_cast<uint32_t>(e.a)]++;
            break;
          case TraceKind::MemGrow:
            a.memGrows++;
            break;
          case TraceKind::ProbeFire:
            a.probeFires[key]++;
            break;
          case TraceKind::Trap:
            a.trappedRuns++;
            break;
          default:
            break;
        }
    }
    return a;
}

void
TraceAnalysis::merge(const TraceAnalysis& other)
{
    runs += other.runs;
    events += other.events;
    memGrows += other.memGrows;
    trappedRuns += other.trappedRuns;
    for (const auto& [f, n] : other.funcEntries) funcEntries[f] += n;
    for (const auto& [k, bc] : other.branches) {
        branches[k].taken += bc.taken;
        branches[k].notTaken += bc.notTaken;
    }
    for (const auto& [k, arms] : other.tables) {
        for (const auto& [arm, n] : arms) tables[k][arm] += n;
    }
    for (const auto& [k, n] : other.probeFires) probeFires[k] += n;
}

std::set<uint32_t>
TraceAnalysis::coveredFuncs() const
{
    std::set<uint32_t> out;
    for (const auto& [f, n] : funcEntries) {
        if (n) out.insert(f);
    }
    return out;
}

void
writeCoverageReport(std::ostream& out, const TraceAnalysis& a)
{
    size_t bothWays = 0;
    for (const auto& [k, bc] : a.branches) {
        if (bc.bothWays()) bothWays++;
    }
    out << "=== trace coverage (" << a.runs << " run(s), " << a.events
        << " event(s)) ===\n";
    out << "functions entered: " << a.coveredFuncs().size() << "\n";
    out << "branch sites seen: " << a.branches.size() << " ("
        << bothWays << " exercised both ways)\n";
    out << "br_table sites seen: " << a.tables.size() << "\n";
    if (a.trappedRuns) out << "trapped runs: " << a.trappedRuns << "\n";

    for (const auto& [f, n] : a.funcEntries) {
        out << "  func " << f << ": " << n << " entr"
            << (n == 1 ? "y" : "ies") << "\n";
    }
    for (const auto& [k, bc] : a.branches) {
        if (bc.bothWays()) continue;
        out << "  one-sided branch: func " << TraceAnalysis::siteFunc(k)
            << " pc " << TraceAnalysis::sitePc(k) << " ("
            << (bc.taken ? "always taken" : "never taken") << ", "
            << bc.total() << " fire(s))\n";
    }
}

namespace {

template <typename K>
std::vector<std::pair<K, uint64_t>>
topOf(const std::map<K, uint64_t>& counts, size_t topN)
{
    std::vector<std::pair<K, uint64_t>> v(counts.begin(), counts.end());
    std::stable_sort(v.begin(), v.end(), [](const auto& x, const auto& y) {
        return x.second > y.second;
    });
    if (v.size() > topN) v.resize(topN);
    return v;
}

} // namespace

void
writeProfileReport(std::ostream& out, const TraceAnalysis& a,
                   size_t topN)
{
    out << "=== hot-path profile (" << a.runs << " run(s)) ===\n";

    out << "hottest functions (by entries):\n";
    for (const auto& [f, n] : topOf(a.funcEntries, topN)) {
        out << "  func " << f << ": " << n << "\n";
    }

    std::map<uint64_t, uint64_t> siteTotals;
    for (const auto& [k, bc] : a.branches) siteTotals[k] = bc.total();
    for (const auto& [k, arms] : a.tables) {
        uint64_t total = 0;
        for (const auto& [arm, n] : arms) total += n;
        siteTotals[k] += total;
    }
    out << "hottest branch sites (by executions):\n";
    for (const auto& [k, n] : topOf(siteTotals, topN)) {
        out << "  func " << TraceAnalysis::siteFunc(k) << " pc "
            << TraceAnalysis::sitePc(k) << ": " << n << "\n";
    }

    if (!a.probeFires.empty()) {
        out << "probe points (by fires):\n";
        for (const auto& [k, n] : topOf(a.probeFires, topN)) {
            out << "  func " << TraceAnalysis::siteFunc(k) << " pc "
                << TraceAnalysis::sitePc(k) << ": " << n << "\n";
        }
    }
    if (a.memGrows) out << "memory grows: " << a.memGrows << "\n";
}

} // namespace wizpp
