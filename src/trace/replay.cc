#include "trace/replay.h"

#include <algorithm>

#include "trace/recorder.h"

namespace wizpp {

std::vector<uint8_t>
recordTrace(Module module, const EngineConfig& config,
            const std::string& entry, const std::vector<Value>& args,
            const std::vector<std::pair<uint32_t, uint32_t>>& probePoints,
            const ReplayEnv& env)
{
    Engine engine(config);
    auto lr = engine.loadModule(std::move(module));
    if (!lr.ok()) return {};

    TraceRecorder recorder;
    engine.attachMonitor(&recorder);
    for (const auto& [f, pc] : probePoints) {
        recorder.addProbePoint(f, pc);
    }

    if (env.preInstantiate) env.preInstantiate(engine);
    auto ir = engine.instantiate();
    if (!ir.ok()) return {};
    if (env.postInstantiate) env.postInstantiate(engine);

    recorder.setInvocation(entry, args);
    auto r = engine.callExport(entry, args);
    if (!r.ok() && engine.lastTrap() == TrapReason::None) {
        // Invocation error (no such export, bad arity) — the program
        // never ran, so there is no outcome to seal into a trace.
        return {};
    }
    recorder.finish(r.ok() ? TrapReason::None : engine.lastTrap(),
                    r.ok() ? r.value() : std::vector<Value>{});
    return recorder.bytes();
}

namespace {

/** Renders the first event-level difference between two parsed traces. */
void
describeDivergence(const Trace& golden, const Trace& replay,
                   ReplayOutcome* out)
{
    size_t n = std::min(golden.events.size(), replay.events.size());
    for (size_t i = 0; i < n; i++) {
        std::string g = golden.events[i].toString();
        std::string r = replay.events[i].toString();
        if (g != r) {
            out->eventIndex = i;
            out->goldenEvent = g;
            out->replayEvent = r;
            return;
        }
    }
    out->eventIndex = n;
    out->goldenEvent =
        n < golden.events.size() ? golden.events[n].toString() : "<none>";
    out->replayEvent =
        n < replay.events.size() ? replay.events[n].toString() : "<none>";
}

} // namespace

ReplayOutcome
replayVerify(const std::vector<uint8_t>& golden, Module module,
             const EngineConfig& config, const ReplayEnv& env)
{
    ReplayOutcome out;

    auto parsed = readTrace(golden);
    if (!parsed.ok()) {
        out.message = "golden trace unreadable: " +
                      parsed.error().toString();
        return out;
    }
    const Trace& g = parsed.value();

    uint64_t fp = moduleFingerprint(module);
    if (fp != g.fingerprint) {
        out.message = "module fingerprint mismatch (trace was recorded "
                      "from a different module)";
        return out;
    }

    // Probe points are replayed from the golden stream: the distinct
    // set of sites that fired. A site that never fired inserts nothing,
    // which a deterministic replay reproduces vacuously.
    std::vector<std::pair<uint32_t, uint32_t>> points;
    for (const TraceEvent& e : g.events) {
        if (e.kind != TraceKind::ProbeFire) continue;
        std::pair<uint32_t, uint32_t> p{e.func, e.pc};
        if (std::find(points.begin(), points.end(), p) == points.end()) {
            points.push_back(p);
        }
    }

    std::vector<uint8_t> fresh = recordTrace(std::move(module), config,
                                             g.entry, g.args, points, env);
    if (fresh.empty()) {
        out.message = "replay failed to load, instantiate or invoke "
                      "the recorded entry '" + g.entry + "'";
        return out;
    }
    out.ran = true;

    if (fresh == golden) {
        out.ok = true;
        out.message = "replay-check PASS: " +
                      std::to_string(g.events.size()) + " event(s), " +
                      std::to_string(golden.size()) +
                      " byte(s) identical";
        return out;
    }

    auto freshParsed = readTrace(fresh);
    if (freshParsed.ok()) {
        describeDivergence(g, freshParsed.value(), &out);
    }
    out.message = "replay-check FAIL: divergence at event " +
                  std::to_string(out.eventIndex) + ": recorded {" +
                  out.goldenEvent + "} vs replayed {" + out.replayEvent +
                  "}";
    return out;
}

} // namespace wizpp
