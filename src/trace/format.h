/**
 * @file
 * Structured execution-trace format (the "what did this run do?"
 * subsystem): a compact, versioned, LEB128-framed binary event stream.
 *
 * A trace is a determinism certificate for one invocation: it captures
 * the control-flow and engine-event skeleton of a run — function
 * entries/exits, directions of conditional branches, br_table arm
 * selections, memory grows, user probe firings, and the final trap or
 * result — all recorded purely through the probe API (no engine-core
 * hooks). Two runs of the same module with the same entry and arguments
 * must produce byte-identical traces, in *any* execution tier; comparing
 * an interpreter-recorded trace against a JIT-recorded one is therefore
 * a cross-tier divergence oracle (see replay.h).
 *
 * Layout (all integers ULEB128 unless noted):
 *
 *   header:
 *     magic      4 bytes "WZTR"
 *     version    u32                  (kTraceVersion)
 *     fprint     8 bytes LE           (module fingerprint, FNV-1a 64)
 *     entry      u32 length + bytes   (invoked export name)
 *     argc       u32; per arg: 1 type byte + u64 raw bits
 *   events: 1 kind byte + payload each (see TraceKind)
 *   trailer:
 *     End        u64 event count, 8 bytes LE FNV-1a 64 of everything
 *                before the End kind byte
 *
 * Deliberately excluded from the stream: the execution mode, wall-clock
 * times, and anything else tier- or host-dependent — byte-identity
 * across tiers is the whole point.
 */

#ifndef WIZPP_TRACE_FORMAT_H
#define WIZPP_TRACE_FORMAT_H

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/trap.h"
#include "runtime/value.h"
#include "support/leb128.h"

namespace wizpp {

struct Module;

/** Trace format version (bump on any layout change). */
constexpr uint32_t kTraceVersion = 1;

/** Header magic: "WZTR". */
constexpr uint8_t kTraceMagic[4] = {'W', 'Z', 'T', 'R'};

/** Event kinds (the byte that frames each record). */
enum class TraceKind : uint8_t {
    FuncEntry = 0x01,  ///< funcIndex
    FuncExit  = 0x02,  ///< funcIndex
    Branch    = 0x03,  ///< funcIndex, pc, taken (1 byte)
    BrTable   = 0x04,  ///< funcIndex, pc, resolved arm index
    MemGrow   = 0x05,  ///< delta pages, pages before the grow
    ProbeFire = 0x06,  ///< funcIndex, pc (a user-registered probe point)
    Trap      = 0x07,  ///< TrapReason
    Result    = 0x08,  ///< count; per value: 1 type byte + u64 raw bits
    End       = 0x09,  ///< trailer: event count + stream checksum
};

/** Canonical display name of an event kind. */
const char* traceKindName(TraceKind k);

/**
 * Content fingerprint of a module: function count plus every function's
 * signature index and pristine body bytes. Replay verification refuses
 * to run a trace against a module with a different fingerprint.
 */
uint64_t moduleFingerprint(const Module& m);

/** FNV-1a 64 over a byte range (the trace checksum function). */
uint64_t fnv1a64(const uint8_t* data, size_t size, uint64_t seed = 0);

/**
 * Append-only encoder for the trace byte stream. The recorder owns one.
 * Header and event body are buffered separately — events may stream in
 * before the invocation (entry, args) is known, e.g. from a start
 * function — and end() assembles header + body + trailer.
 */
class TraceWriter
{
  public:
    /** Stamps magic, version, fingerprint, entry and args. */
    void setHeader(uint64_t fingerprint, const std::string& entry,
                   const std::vector<Value>& args);

    void funcEntry(uint32_t funcIndex);
    void funcExit(uint32_t funcIndex);
    void branch(uint32_t funcIndex, uint32_t pc, bool taken);
    void brTable(uint32_t funcIndex, uint32_t pc, uint32_t arm);
    void memGrow(uint32_t deltaPages, uint32_t pagesBefore);
    void probeFire(uint32_t funcIndex, uint32_t pc);
    void trap(TrapReason reason);
    void result(const std::vector<Value>& values);

    /**
     * Assembles header + events + End trailer (event count, checksum)
     * into the final stream returned by bytes().
     */
    void end();

    uint64_t eventCount() const { return _events; }

    /** The assembled stream; only valid after end(). */
    const std::vector<uint8_t>& bytes() const { return _final; }

  private:
    void kind(TraceKind k)
    {
        _body.push_back(static_cast<uint8_t>(k));
        _events++;
    }

    void u32(uint32_t v) { encodeULEB(_body, v); }
    void u64(uint64_t v) { encodeULEB(_body, v); }

    static void appendFixed64(std::vector<uint8_t>& out, uint64_t v)
    {
        for (int i = 0; i < 8; i++) {
            out.push_back(static_cast<uint8_t>(v >> (8 * i)));
        }
    }

    std::vector<uint8_t> _header;
    std::vector<uint8_t> _body;
    std::vector<uint8_t> _final;
    uint64_t _events = 0;
};

} // namespace wizpp

#endif // WIZPP_TRACE_FORMAT_H
