/**
 * @file
 * TraceReader: parses and validates the binary trace format produced by
 * TraceWriter/TraceRecorder back into structured events.
 *
 * Parsing is strict: bad magic, unknown version, unknown event kinds,
 * truncation, a missing End trailer, an event-count mismatch or a
 * checksum mismatch are all hard errors. The sidecar analyses
 * (sidecar.h) and the replay verifier (replay.h) both build on this.
 */

#ifndef WIZPP_TRACE_READER_H
#define WIZPP_TRACE_READER_H

#include <cstdint>
#include <string>
#include <vector>

#include "support/result.h"
#include "trace/format.h"

namespace wizpp {

/** One decoded trace event. Field use depends on kind (see TraceKind). */
struct TraceEvent
{
    TraceKind kind = TraceKind::End;
    uint32_t func = 0;   ///< FuncEntry/FuncExit/Branch/BrTable/ProbeFire
    uint32_t pc = 0;     ///< Branch/BrTable/ProbeFire
    uint64_t a = 0;      ///< Branch: taken; BrTable: arm; MemGrow: delta;
                         ///< Trap: reason
    uint64_t b = 0;      ///< MemGrow: pages before the grow
    std::vector<Value> values;  ///< Result payload

    /** Renders "branch f=3 pc=17 taken" style (divergence reports). */
    std::string toString() const;
};

/** A fully parsed and validated trace. */
struct Trace
{
    uint32_t version = 0;
    uint64_t fingerprint = 0;
    std::string entry;
    std::vector<Value> args;
    std::vector<TraceEvent> events;  ///< excludes the End trailer
    uint64_t checksum = 0;

    /** The trap event's reason, or TrapReason::None if the run finished. */
    TrapReason trapReason() const;

    /** The recorded final results (empty if the run trapped). */
    std::vector<Value> results() const;
};

/** Parses @p bytes; returns the trace or a positioned parse error. */
Result<Trace> readTrace(const std::vector<uint8_t>& bytes);

/** Reads a whole file and parses it. */
Result<Trace> readTraceFile(const std::string& path);

} // namespace wizpp

#endif // WIZPP_TRACE_READER_H
