/**
 * @file
 * Sidecar analyses over saved traces — no execution required.
 *
 * Once a run is captured as a trace, tools that would classically each
 * need their own instrumented run become pure stream folds (the
 * drcov-style model: record once, analyze offline, merge across runs):
 *
 *  - TraceAnalysis: per-trace tallies of function entries, branch
 *    directions, br_table arms, memory grows and probe fires.
 *  - merge(): drcov-style union across runs, e.g. accumulating
 *    coverage over a whole corpus of inputs.
 *  - writeCoverageReport(): which functions and branch directions were
 *    ever exercised (and which branch sites are still one-sided).
 *  - writeProfileReport(): hot-path histogram — hottest functions by
 *    entry count and hottest branch sites by execution count.
 */

#ifndef WIZPP_TRACE_SIDECAR_H
#define WIZPP_TRACE_SIDECAR_H

#include <cstdint>
#include <iosfwd>
#include <map>
#include <set>
#include <string>

#include "trace/reader.h"

namespace wizpp {

/** Aggregated view of one or more traces. */
struct TraceAnalysis
{
    /** Per-site direction counts for if/br_if. */
    struct BranchCounts
    {
        uint64_t taken = 0;
        uint64_t notTaken = 0;
        uint64_t total() const { return taken + notTaken; }
        bool bothWays() const { return taken && notTaken; }
    };

    uint64_t runs = 0;        ///< traces folded in
    uint64_t events = 0;      ///< total events folded in
    uint64_t memGrows = 0;
    uint64_t trappedRuns = 0;

    std::map<uint32_t, uint64_t> funcEntries;  ///< func → entry count
    std::map<uint64_t, BranchCounts> branches; ///< site key → directions
    std::map<uint64_t, std::map<uint32_t, uint64_t>> tables;
                                               ///< site key → arm counts
    std::map<uint64_t, uint64_t> probeFires;   ///< site key → fire count

    static uint64_t siteKey(uint32_t func, uint32_t pc)
    {
        return (static_cast<uint64_t>(func) << 32) | pc;
    }
    static uint32_t siteFunc(uint64_t key)
    {
        return static_cast<uint32_t>(key >> 32);
    }
    static uint32_t sitePc(uint64_t key)
    {
        return static_cast<uint32_t>(key);
    }

    /** Folds another analysis in (coverage/profile merge across runs). */
    void merge(const TraceAnalysis& other);

    /** Functions ever entered. */
    std::set<uint32_t> coveredFuncs() const;
};

/** Tallies one parsed trace. */
TraceAnalysis analyzeTrace(const Trace& trace);

/** Merged coverage report (functions, branch sites, one-sided sites). */
void writeCoverageReport(std::ostream& out, const TraceAnalysis& a);

/** Hot-path histogram: top-N functions and branch sites. */
void writeProfileReport(std::ostream& out, const TraceAnalysis& a,
                        size_t topN = 10);

} // namespace wizpp

#endif // WIZPP_TRACE_SIDECAR_H
