/**
 * @file
 * Executed opcode pair/triple profiling — the data source for the
 * superinstruction fusion table (src/interp/fusion.h).
 *
 * One global probe observes every executed instruction and tallies
 * straight-line adjacent opcode pairs and triples: (a, b) counts one
 * occurrence when instruction b executes immediately after a in the
 * same activation and b's pc is exactly a's pc plus a's encoded length
 * (i.e. fall-through, no branch/call/return in between). That is
 * precisely the adjacency a fused handler can exploit, so ranking
 * these histograms over a corpus ranks fusion candidates.
 *
 * The companion miner, scripts/mine_superinsts.py, folds the reports
 * written by `wizeng --profile-pairs=<out>` across the corpus and
 * ranks candidates against the current WIZPP_FOR_EACH_SUPERINST table.
 *
 * Global-probe mode pins execution to the interpreter in Probed
 * dispatch, which reads un-fused bytes — so the profile observes the
 * singles stream even in an engine with fusion enabled, and counts are
 * identical across the three dispatch backends (held by ctest).
 */

#ifndef WIZPP_TRACE_PAIRPROFILE_H
#define WIZPP_TRACE_PAIRPROFILE_H

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>

#include "monitors/monitor.h"
#include "probes/probe.h"

namespace wizpp {

/** Straight-line executed pair/triple histograms for one run. */
struct PairProfile
{
    /** (op a << 8 | op b) → times b fell through directly after a. */
    std::map<uint32_t, uint64_t> pairs;

    /** (a << 16 | b << 8 | c) → fall-through triple count. */
    std::map<uint32_t, uint64_t> triples;

    uint64_t instructions = 0;  ///< instructions observed

    /** Folds another profile in (corpus accumulation). */
    void merge(const PairProfile& other);

    /**
     * Deterministic text report: `pair <name-a> <name-b> <count>` and
     * `triple <a> <b> <c> <count>` lines sorted by count descending,
     * opcode bytes ascending on ties — byte-identical across runs and
     * dispatch backends for a deterministic program.
     */
    void writeReport(std::ostream& out) const;
};

/**
 * Monitor that records a PairProfile via a single global probe
 * (`wizeng --profile-pairs=<out>` / `--monitors=pairs`).
 */
class PairProfileMonitor : public Monitor
{
  public:
    void onAttach(Engine& engine) override;
    void report(std::ostream& out) override;
    std::string name() const override { return "pairs"; }

    const PairProfile& profile() const { return _profile; }

  private:
    PairProfile _profile;
    std::shared_ptr<Probe> _probe;

    // Fall-through chain state: the previous two observed
    // instructions, valid only while execution stays straight-line in
    // one activation.
    uint64_t _lastFrameId = 0;
    uint32_t _lastPc = 0;
    uint32_t _lastLen = 0;
    int _chain = 0;          ///< 0 none, 1 have prev, 2 have prev two
    uint8_t _prevOp = 0;
    uint8_t _prevOp2 = 0;
};

} // namespace wizpp

#endif // WIZPP_TRACE_PAIRPROFILE_H
