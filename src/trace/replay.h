/**
 * @file
 * ReplayVerifier: re-executes a recorded invocation and checks that the
 * fresh trace is byte-identical to the golden one — a determinism
 * certificate for the engine.
 *
 * Because the trace format deliberately contains nothing tier-dependent
 * (format.h), the replay may run in a *different* execution tier than
 * the recording: record under ExecMode::Interpreter, verify under Jit
 * or Tiered, and any divergence in control flow, memory growth, probe
 * firing order or final result between the tiers is caught as a byte
 * mismatch and reported as the first diverging event.
 */

#ifndef WIZPP_TRACE_REPLAY_H
#define WIZPP_TRACE_REPLAY_H

#include <cstdint>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "trace/reader.h"

namespace wizpp {

/** Outcome of a replay verification. */
struct ReplayOutcome
{
    bool ok = false;       ///< traces are byte-identical
    bool ran = false;      ///< the replay executed (false: setup error)
    std::string message;   ///< one-line verdict

    /** On divergence: index of the first differing event and both
     *  renderings ("<none>" when one stream ended early). */
    size_t eventIndex = 0;
    std::string goldenEvent;
    std::string replayEvent;
};

/**
 * Replays @p golden against @p module under @p config and compares.
 * The entry, arguments and probe points are taken from the golden
 * trace itself; the module must have the recorded fingerprint.
 */
ReplayOutcome replayVerify(const std::vector<uint8_t>& golden,
                           Module module, const EngineConfig& config);

/**
 * Records one invocation of @p entry(@p args) on a fresh engine built
 * from @p module under @p config and returns the trace bytes. Probe
 * points (func, pc pairs) are installed before execution. This is the
 * primitive both replayVerify and `wizeng --trace` build on.
 */
std::vector<uint8_t> recordTrace(
    Module module, const EngineConfig& config, const std::string& entry,
    const std::vector<Value>& args,
    const std::vector<std::pair<uint32_t, uint32_t>>& probePoints = {});

} // namespace wizpp

#endif // WIZPP_TRACE_REPLAY_H
