/**
 * @file
 * ReplayVerifier: re-executes a recorded invocation and checks that the
 * fresh trace is byte-identical to the golden one — a determinism
 * certificate for the engine.
 *
 * Because the trace format deliberately contains nothing tier-dependent
 * (format.h), the replay may run in a *different* execution tier than
 * the recording: record under ExecMode::Interpreter, verify under Jit
 * or Tiered, and any divergence in control flow, memory growth, probe
 * firing order or final result between the tiers is caught as a byte
 * mismatch and reported as the first diverging event.
 */

#ifndef WIZPP_TRACE_REPLAY_H
#define WIZPP_TRACE_REPLAY_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "trace/reader.h"

namespace wizpp {

/**
 * Optional environment hooks for recordTrace/replayVerify. Both build a
 * fresh Engine internally; a caller that needs host imports or
 * fault-injection plans ("shake", src/fuzz/shake.h) supplies them here
 * so record and replay construct *identical* environments — the
 * determinism certificate covers the perturbations too.
 *
 *  - preInstantiate runs after loadModule + monitor attach, before
 *    instantiate(): the place to populate engine.imports().
 *  - postInstantiate runs after instantiate(): the place to install
 *    Memory::setGrowFault plans and write memory seeds (the instance's
 *    memory exists only from here on).
 *
 * Hooks must be deterministic functions of the engine they receive: a
 * hook that consumes external state across calls breaks replay.
 */
struct ReplayEnv
{
    std::function<void(Engine&)> preInstantiate;
    std::function<void(Engine&)> postInstantiate;
};

/** Outcome of a replay verification. */
struct ReplayOutcome
{
    bool ok = false;       ///< traces are byte-identical
    bool ran = false;      ///< the replay executed (false: setup error)
    std::string message;   ///< one-line verdict

    /** On divergence: index of the first differing event and both
     *  renderings ("<none>" when one stream ended early). */
    size_t eventIndex = 0;
    std::string goldenEvent;
    std::string replayEvent;
};

/**
 * Replays @p golden against @p module under @p config and compares.
 * The entry, arguments and probe points are taken from the golden
 * trace itself; the module must have the recorded fingerprint.
 */
ReplayOutcome replayVerify(const std::vector<uint8_t>& golden,
                           Module module, const EngineConfig& config,
                           const ReplayEnv& env = {});

/**
 * Records one invocation of @p entry(@p args) on a fresh engine built
 * from @p module under @p config and returns the trace bytes. Probe
 * points (func, pc pairs) are installed before execution. This is the
 * primitive both replayVerify and `wizeng --trace` build on.
 */
std::vector<uint8_t> recordTrace(
    Module module, const EngineConfig& config, const std::string& entry,
    const std::vector<Value>& args,
    const std::vector<std::pair<uint32_t, uint32_t>>& probePoints = {},
    const ReplayEnv& env = {});

} // namespace wizpp

#endif // WIZPP_TRACE_REPLAY_H
