/**
 * @file
 * TraceRecorder: a monitor that records the structured execution trace
 * of one invocation (format.h) purely through the probe API — function
 * entry/exit via the FunctionEntryExit library, branch directions and
 * br_table arm selections via OperandProbes, memory grows via an
 * OperandProbe on memory.grow sites, and user-registered probe points.
 *
 * No engine-core hook is involved anywhere on the recording path: the
 * recorder is a client of ProbeManager and FrameAccessor exactly like
 * any other monitor, which is the paper's completeness claim (probes
 * suffice to build every dynamic-analysis tool) exercised on a
 * record/replay tool.
 *
 * Lifecycle: attach (after loadModule, like any monitor), optionally
 * addProbePoint(), setInvocation() with the entry/args about to run,
 * execute, then finish() with the outcome. bytes() then holds the
 * complete trace. One recorder records one invocation.
 */

#ifndef WIZPP_TRACE_RECORDER_H
#define WIZPP_TRACE_RECORDER_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "monitors/entryexit.h"
#include "monitors/monitor.h"
#include "probes/probe.h"
#include "trace/format.h"

namespace wizpp {

class TraceRecorder : public Monitor
{
  public:
    void onAttach(Engine& engine) override;
    void report(std::ostream& out) override;
    std::string name() const override { return "tracer"; }

    /**
     * Registers a probe point: a local probe at (funcIndex, pc) that
     * emits a ProbeFire event every time the location executes. Points
     * are deduplicated per site. Must be called after attach, before
     * execution. Returns false on an invalid location.
     */
    bool addProbePoint(uint32_t funcIndex, uint32_t pc);

    /** Stamps the header with what is about to be invoked. */
    void setInvocation(const std::string& entry,
                       const std::vector<Value>& args);

    /**
     * Seals the trace with the run's outcome: a Trap event if
     * @p trap != None, otherwise a Result event with @p results.
     */
    void finish(TrapReason trap, const std::vector<Value>& results);

    /** The complete trace stream; valid after finish(). */
    const std::vector<uint8_t>& bytes() const { return _writer.bytes(); }

    /** Writes bytes() to a file; false on I/O failure. */
    bool writeFile(const std::string& path) const;

    uint64_t eventCount() const { return _writer.eventCount(); }
    bool finished() const { return _finished; }

  private:
    class BranchProbe;
    class BrTableProbe;
    class MemGrowProbe;
    class PointProbe;

    void instrumentSites();

    Engine* _engine = nullptr;
    TraceWriter _writer;
    bool _finished = false;
    std::unique_ptr<FunctionEntryExit> _entryExit;
    std::vector<std::shared_ptr<Probe>> _probes;
    std::vector<uint64_t> _points;  ///< registered probe-point sites
};

} // namespace wizpp

#endif // WIZPP_TRACE_RECORDER_H
