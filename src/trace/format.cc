#include "trace/format.h"

#include "wasm/module.h"

namespace wizpp {

const char*
traceKindName(TraceKind k)
{
    switch (k) {
      case TraceKind::FuncEntry: return "func_entry";
      case TraceKind::FuncExit: return "func_exit";
      case TraceKind::Branch: return "branch";
      case TraceKind::BrTable: return "br_table";
      case TraceKind::MemGrow: return "mem_grow";
      case TraceKind::ProbeFire: return "probe_fire";
      case TraceKind::Trap: return "trap";
      case TraceKind::Result: return "result";
      case TraceKind::End: return "end";
    }
    return "?";
}

uint64_t
fnv1a64(const uint8_t* data, size_t size, uint64_t seed)
{
    uint64_t h = seed ? seed : 0xcbf29ce484222325ull;
    for (size_t i = 0; i < size; i++) {
        h ^= data[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

uint64_t
moduleFingerprint(const Module& m)
{
    // Hash the executable content only: function count, signature
    // indices and pristine body bytes. Names, exports and debug info do
    // not affect what a trace can observe.
    std::vector<uint8_t> head;
    encodeULEB(head, static_cast<uint32_t>(m.functions.size()));
    uint64_t h = fnv1a64(head.data(), head.size());
    for (const FuncDecl& f : m.functions) {
        std::vector<uint8_t> meta;
        encodeULEB(meta, f.typeIndex);
        encodeULEB(meta, static_cast<uint32_t>(f.code.size()));
        h = fnv1a64(meta.data(), meta.size(), h);
        h = fnv1a64(f.code.data(), f.code.size(), h);
    }
    return h;
}

void
TraceWriter::setHeader(uint64_t fingerprint, const std::string& entry,
                       const std::vector<Value>& args)
{
    _header.assign(kTraceMagic, kTraceMagic + 4);
    encodeULEB(_header, kTraceVersion);
    appendFixed64(_header, fingerprint);
    encodeULEB(_header, static_cast<uint32_t>(entry.size()));
    _header.insert(_header.end(), entry.begin(), entry.end());
    encodeULEB(_header, static_cast<uint32_t>(args.size()));
    for (const Value& v : args) {
        _header.push_back(static_cast<uint8_t>(v.type));
        encodeULEB(_header, v.bits);
    }
}

void
TraceWriter::funcEntry(uint32_t funcIndex)
{
    kind(TraceKind::FuncEntry);
    u32(funcIndex);
}

void
TraceWriter::funcExit(uint32_t funcIndex)
{
    kind(TraceKind::FuncExit);
    u32(funcIndex);
}

void
TraceWriter::branch(uint32_t funcIndex, uint32_t pc, bool taken)
{
    kind(TraceKind::Branch);
    u32(funcIndex);
    u32(pc);
    _body.push_back(taken ? 1 : 0);
}

void
TraceWriter::brTable(uint32_t funcIndex, uint32_t pc, uint32_t arm)
{
    kind(TraceKind::BrTable);
    u32(funcIndex);
    u32(pc);
    u32(arm);
}

void
TraceWriter::memGrow(uint32_t deltaPages, uint32_t pagesBefore)
{
    kind(TraceKind::MemGrow);
    u32(deltaPages);
    u32(pagesBefore);
}

void
TraceWriter::probeFire(uint32_t funcIndex, uint32_t pc)
{
    kind(TraceKind::ProbeFire);
    u32(funcIndex);
    u32(pc);
}

void
TraceWriter::trap(TrapReason reason)
{
    kind(TraceKind::Trap);
    u32(static_cast<uint32_t>(reason));
}

void
TraceWriter::result(const std::vector<Value>& values)
{
    kind(TraceKind::Result);
    u32(static_cast<uint32_t>(values.size()));
    for (const Value& v : values) {
        _body.push_back(static_cast<uint8_t>(v.type));
        u64(v.bits);
    }
}

void
TraceWriter::end()
{
    if (_header.empty()) setHeader(0, "", {});
    _final = _header;
    _final.insert(_final.end(), _body.begin(), _body.end());
    uint64_t checksum = fnv1a64(_final.data(), _final.size());
    _final.push_back(static_cast<uint8_t>(TraceKind::End));
    encodeULEB(_final, _events);
    appendFixed64(_final, checksum);
}

} // namespace wizpp
