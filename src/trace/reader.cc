#include "trace/reader.h"

#include <cstring>
#include <fstream>
#include <sstream>

namespace wizpp {

namespace {

/** Cursor over the trace bytes with positioned-error helpers. */
struct Cursor
{
    const uint8_t* p;
    const uint8_t* end;
    const uint8_t* base;

    size_t offset() const { return static_cast<size_t>(p - base); }
    bool atEnd() const { return p >= end; }

    bool
    u32(uint32_t* out)
    {
        auto r = decodeULEB<uint32_t>(p, end);
        if (!r.ok()) return false;
        *out = r.value;
        p += r.length;
        return true;
    }

    bool
    u64(uint64_t* out)
    {
        auto r = decodeULEB<uint64_t>(p, end);
        if (!r.ok()) return false;
        *out = r.value;
        p += r.length;
        return true;
    }

    bool
    byte(uint8_t* out)
    {
        if (atEnd()) return false;
        *out = *p++;
        return true;
    }

    bool
    fixed64(uint64_t* out)
    {
        if (end - p < 8) return false;
        uint64_t v = 0;
        for (int i = 0; i < 8; i++) {
            v |= static_cast<uint64_t>(*p++) << (8 * i);
        }
        *out = v;
        return true;
    }
};

bool
isValType(uint8_t b)
{
    switch (static_cast<ValType>(b)) {
      case ValType::I32:
      case ValType::I64:
      case ValType::F32:
      case ValType::F64:
      case ValType::FuncRef:
        return true;
      default:
        return false;
    }
}

bool
readValues(Cursor& c, std::vector<Value>* out)
{
    uint32_t count = 0;
    if (!c.u32(&count)) return false;
    // Each value takes at least 2 bytes (type byte + 1 LEB byte), so a
    // count beyond half the remaining bytes is malformed; checking
    // before the reserve keeps hostile counts from allocating.
    if (count > static_cast<size_t>(c.end - c.p) / 2) return false;
    out->clear();
    out->reserve(count);
    for (uint32_t i = 0; i < count; i++) {
        uint8_t t = 0;
        uint64_t bits = 0;
        if (!c.byte(&t) || !isValType(t) || !c.u64(&bits)) return false;
        out->push_back({static_cast<ValType>(t), bits});
    }
    return true;
}

Error
errAt(const Cursor& c, const std::string& msg)
{
    return Error{"trace: " + msg, c.offset()};
}

} // namespace

std::string
TraceEvent::toString() const
{
    std::ostringstream out;
    out << traceKindName(kind);
    switch (kind) {
      case TraceKind::FuncEntry:
      case TraceKind::FuncExit:
        out << " f=" << func;
        break;
      case TraceKind::Branch:
        out << " f=" << func << " pc=" << pc
            << (a ? " taken" : " not-taken");
        break;
      case TraceKind::BrTable:
        out << " f=" << func << " pc=" << pc << " arm=" << a;
        break;
      case TraceKind::MemGrow:
        out << " delta=" << a << " before=" << b;
        break;
      case TraceKind::ProbeFire:
        out << " f=" << func << " pc=" << pc;
        break;
      case TraceKind::Trap:
        out << " "
            << trapReasonName(static_cast<TrapReason>(a));
        break;
      case TraceKind::Result:
        for (const Value& v : values) out << " " << v.toString();
        break;
      case TraceKind::End:
        break;
    }
    return out.str();
}

TrapReason
Trace::trapReason() const
{
    for (auto it = events.rbegin(); it != events.rend(); ++it) {
        if (it->kind == TraceKind::Trap) {
            return static_cast<TrapReason>(it->a);
        }
    }
    return TrapReason::None;
}

std::vector<Value>
Trace::results() const
{
    for (auto it = events.rbegin(); it != events.rend(); ++it) {
        if (it->kind == TraceKind::Result) return it->values;
    }
    return {};
}

Result<Trace>
readTrace(const std::vector<uint8_t>& bytes)
{
    Cursor c{bytes.data(), bytes.data() + bytes.size(), bytes.data()};
    Trace t;

    if (bytes.size() < 4 || std::memcmp(bytes.data(), kTraceMagic, 4)) {
        return errAt(c, "bad magic (not a WZTR trace)");
    }
    c.p += 4;
    if (!c.u32(&t.version)) return errAt(c, "truncated version");
    if (t.version != kTraceVersion) {
        return errAt(c, "unsupported version " +
                     std::to_string(t.version));
    }
    if (!c.fixed64(&t.fingerprint)) {
        return errAt(c, "truncated fingerprint");
    }
    uint32_t entryLen = 0;
    if (!c.u32(&entryLen) ||
        static_cast<size_t>(c.end - c.p) < entryLen) {
        return errAt(c, "truncated entry name");
    }
    t.entry.assign(reinterpret_cast<const char*>(c.p), entryLen);
    c.p += entryLen;
    if (!readValues(c, &t.args)) return errAt(c, "malformed args");

    bool sawEnd = false;
    while (!c.atEnd()) {
        size_t kindOffset = c.offset();
        uint8_t k = 0;
        c.byte(&k);
        TraceEvent e;
        e.kind = static_cast<TraceKind>(k);
        bool ok = true;
        switch (e.kind) {
          case TraceKind::FuncEntry:
          case TraceKind::FuncExit:
            ok = c.u32(&e.func);
            break;
          case TraceKind::Branch: {
            uint8_t taken = 0;
            ok = c.u32(&e.func) && c.u32(&e.pc) && c.byte(&taken) &&
                 taken <= 1;
            e.a = taken;
            break;
          }
          case TraceKind::BrTable: {
            uint32_t arm = 0;
            ok = c.u32(&e.func) && c.u32(&e.pc) && c.u32(&arm);
            e.a = arm;
            break;
          }
          case TraceKind::MemGrow: {
            uint32_t delta = 0, before = 0;
            ok = c.u32(&delta) && c.u32(&before);
            e.a = delta;
            e.b = before;
            break;
          }
          case TraceKind::ProbeFire:
            ok = c.u32(&e.func) && c.u32(&e.pc);
            break;
          case TraceKind::Trap: {
            uint32_t reason = 0;
            ok = c.u32(&reason) &&
                 reason <= static_cast<uint32_t>(TrapReason::HostError);
            e.a = reason;
            break;
          }
          case TraceKind::Result:
            ok = readValues(c, &e.values);
            break;
          case TraceKind::End: {
            uint64_t count = 0;
            if (!c.u64(&count) || !c.fixed64(&t.checksum)) {
                return errAt(c, "truncated trailer");
            }
            if (count != t.events.size()) {
                return errAt(c, "event count mismatch: trailer says " +
                             std::to_string(count) + ", stream has " +
                             std::to_string(t.events.size()));
            }
            uint64_t actual = fnv1a64(bytes.data(), kindOffset);
            if (actual != t.checksum) {
                return errAt(c, "checksum mismatch");
            }
            if (!c.atEnd()) {
                return errAt(c, "trailing bytes after End");
            }
            sawEnd = true;
            continue;
          }
          default:
            return errAt(c, "unknown event kind " + std::to_string(k));
        }
        if (!ok) {
            return errAt(c, std::string("malformed ") +
                         traceKindName(e.kind) + " event");
        }
        t.events.push_back(std::move(e));
    }
    if (!sawEnd) return errAt(c, "missing End trailer");
    return t;
}

Result<Trace>
readTraceFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) return Error{"trace: cannot open " + path, 0};
    std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());
    return readTrace(bytes);
}

} // namespace wizpp
