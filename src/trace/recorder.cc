#include "trace/recorder.h"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "engine/engine.h"
#include "wasm/opcodes.h"

namespace wizpp {

/**
 * Records the direction of an if/br_if from the condition on top of the
 * operand stack. An OperandProbe so the compiled tier can pass the
 * value directly (intrinsified) when it is the only probe at the site.
 */
class TraceRecorder::BranchProbe : public OperandProbe
{
  public:
    BranchProbe(TraceWriter& w, uint32_t func, uint32_t pc)
        : _w(w), _func(func), _pc(pc)
    {}

    void
    fireOperand(Value tos) override
    {
        _w.branch(_func, _pc, tos.i32() != 0);
    }

  private:
    TraceWriter& _w;
    uint32_t _func, _pc;
};

/** Records the resolved arm (clamped to the default) of a br_table. */
class TraceRecorder::BrTableProbe : public OperandProbe
{
  public:
    BrTableProbe(TraceWriter& w, uint32_t func, uint32_t pc,
                 uint32_t numArms)
        : _w(w), _func(func), _pc(pc), _numArms(numArms)
    {}

    void
    fireOperand(Value tos) override
    {
        _w.brTable(_func, _pc, std::min(tos.i32(), _numArms - 1));
    }

  private:
    TraceWriter& _w;
    uint32_t _func, _pc;
    uint32_t _numArms;  ///< targets including the default (last)
};

/** Records delta and pre-grow size at memory.grow sites. */
class TraceRecorder::MemGrowProbe : public OperandProbe
{
  public:
    MemGrowProbe(TraceWriter& w, Engine& engine) : _w(w), _engine(engine)
    {}

    void
    fireOperand(Value tos) override
    {
        _w.memGrow(tos.i32(), _engine.instance().memory.pages());
    }

  private:
    TraceWriter& _w;
    Engine& _engine;
};

/** A user-registered probe point: one ProbeFire event per execution. */
class TraceRecorder::PointProbe : public Probe
{
  public:
    PointProbe(TraceWriter& w, uint32_t func, uint32_t pc)
        : _w(w), _func(func), _pc(pc)
    {}

    void fire(ProbeContext&) override { _w.probeFire(_func, _pc); }

  private:
    TraceWriter& _w;
    uint32_t _func, _pc;
};

void
TraceRecorder::onAttach(Engine& engine)
{
    _engine = &engine;

    // Phase 1: entry/exit instrumentation. Installed before the branch
    // probes so that at a shared site (e.g. a br_if that exits the
    // function) the FuncExit event precedes the Branch event — probe
    // insertion order is firing order, in every tier.
    _entryExit = std::make_unique<FunctionEntryExit>(
        engine,
        [this](uint32_t funcIndex, uint64_t) {
            _writer.funcEntry(funcIndex);
        },
        [this](uint32_t funcIndex, uint64_t) {
            _writer.funcExit(funcIndex);
        });
    _entryExit->instrumentAll();

    // Phase 2: branch, br_table and memory.grow sites, in (func, pc)
    // order so record and replay instrument identically.
    instrumentSites();
}

void
TraceRecorder::instrumentSites()
{
    Engine& eng = *_engine;
    // Collected into one batch insertion: (func, pc)-sorted order is
    // what insertBatch groups by anyway, so record and replay
    // instrument identically with a single epoch bump.
    std::vector<ProbeManager::SiteProbe> batch;
    for (uint32_t f = 0; f < eng.numFuncs(); f++) {
        FuncState& fs = eng.funcState(f);
        if (fs.decl->imported) continue;
        const std::vector<uint8_t>& code = fs.decl->code;
        for (uint32_t pc : fs.sideTable.instrBoundaries) {
            std::shared_ptr<Probe> probe;
            switch (code[pc]) {
              case OP_IF:
              case OP_BR_IF:
                probe = std::make_shared<BranchProbe>(_writer, f, pc);
                break;
              case OP_BR_TABLE: {
                auto it = fs.sideTable.brTables.find(pc);
                if (it == fs.sideTable.brTables.end()) continue;
                probe = std::make_shared<BrTableProbe>(
                    _writer, f, pc,
                    static_cast<uint32_t>(it->second.size()));
                break;
              }
              case OP_MEMORY_GROW:
                probe = std::make_shared<MemGrowProbe>(_writer, eng);
                break;
              default:
                continue;
            }
            batch.push_back({f, pc, probe});
            _probes.push_back(std::move(probe));
        }
    }
    eng.probes().insertBatch(batch);
}

bool
TraceRecorder::addProbePoint(uint32_t funcIndex, uint32_t pc)
{
    if (!_engine) return false;
    uint64_t site = (static_cast<uint64_t>(funcIndex) << 32) | pc;
    if (std::find(_points.begin(), _points.end(), site) != _points.end()) {
        return true;  // already registered
    }
    auto probe = std::make_shared<PointProbe>(_writer, funcIndex, pc);
    if (!_engine->probes().insertLocal(funcIndex, pc, probe)) {
        return false;
    }
    _points.push_back(site);
    _probes.push_back(std::move(probe));
    return true;
}

void
TraceRecorder::setInvocation(const std::string& entry,
                             const std::vector<Value>& args)
{
    _writer.setHeader(
        _engine ? moduleFingerprint(_engine->module()) : 0, entry, args);
}

void
TraceRecorder::finish(TrapReason trap, const std::vector<Value>& results)
{
    if (_finished) return;
    if (trap != TrapReason::None) {
        // Activations discarded by the unwind get no FuncExit events;
        // the Trap event is the terminator.
        _writer.trap(trap);
    } else {
        _writer.result(results);
    }
    _writer.end();
    _finished = true;
    if (_engine) {
        // Cold path (one finish per recording): fold the stream totals
        // into the engine's metrics registry.
        _engine->metrics().counter("trace.bytes_written") +=
            _writer.bytes().size();
        _engine->metrics().counter("trace.events") +=
            _writer.eventCount();
        _engine->metrics().counter("trace.recordings")++;
    }
}

bool
TraceRecorder::writeFile(const std::string& path) const
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    const std::vector<uint8_t>& b = _writer.bytes();
    out.write(reinterpret_cast<const char*>(b.data()),
              static_cast<std::streamsize>(b.size()));
    return static_cast<bool>(out);
}

void
TraceRecorder::report(std::ostream& out)
{
    out << "tracer: " << _writer.eventCount() << " event(s), "
        << _writer.bytes().size() << " byte(s)\n";
}

} // namespace wizpp
