#include "trace/pairprofile.h"

#include <algorithm>
#include <ostream>
#include <vector>

#include "engine/engine.h"
#include "wasm/decoder.h"
#include "wasm/opcodes.h"

namespace wizpp {

void
PairProfile::merge(const PairProfile& other)
{
    for (const auto& [k, n] : other.pairs) pairs[k] += n;
    for (const auto& [k, n] : other.triples) triples[k] += n;
    instructions += other.instructions;
}

namespace {

/** Sorts (key, count) by count desc, then key asc — deterministic. */
std::vector<std::pair<uint32_t, uint64_t>>
ranked(const std::map<uint32_t, uint64_t>& hist)
{
    std::vector<std::pair<uint32_t, uint64_t>> v(hist.begin(),
                                                 hist.end());
    std::sort(v.begin(), v.end(), [](const auto& a, const auto& b) {
        if (a.second != b.second) return a.second > b.second;
        return a.first < b.first;
    });
    return v;
}

} // namespace

void
PairProfile::writeReport(std::ostream& out) const
{
    out << "instructions " << instructions << "\n";
    for (const auto& [key, count] : ranked(pairs)) {
        out << "pair " << opcodeName((key >> 8) & 0xff) << " "
            << opcodeName(key & 0xff) << " " << count << "\n";
    }
    for (const auto& [key, count] : ranked(triples)) {
        out << "triple " << opcodeName((key >> 16) & 0xff) << " "
            << opcodeName((key >> 8) & 0xff) << " "
            << opcodeName(key & 0xff) << " " << count << "\n";
    }
}

void
PairProfileMonitor::onAttach(Engine& engine)
{
    _probe = makeProbe([this](ProbeContext& ctx) {
        const FuncState& fs = *ctx.func();
        uint32_t pc = ctx.pc();
        uint8_t op = fs.code[pc];
        // A concurrently-attached local probe shadows the opcode; the
        // pristine byte is in the declaration.
        if (op == OP_PROBE) op = fs.decl->code[pc];
        _profile.instructions++;

        uint64_t frameId = ctx.frame()->frameId;
        bool fallThrough = _chain > 0 && frameId == _lastFrameId &&
                           pc == _lastPc + _lastLen;
        if (fallThrough) {
            _profile.pairs[(uint32_t(_prevOp) << 8) | op]++;
            if (_chain >= 2) {
                _profile.triples[(uint32_t(_prevOp2) << 16) |
                                 (uint32_t(_prevOp) << 8) | op]++;
            }
            _chain = 2;
        } else {
            _chain = 1;
        }
        _prevOp2 = _prevOp;
        _prevOp = op;
        _lastFrameId = frameId;
        _lastPc = pc;
        _lastLen =
            static_cast<uint32_t>(instrLength(fs.decl->code, pc));
    });
    engine.probes().insertGlobal(_probe);
}

void
PairProfileMonitor::report(std::ostream& out)
{
    _profile.writeReport(out);
}

} // namespace wizpp
