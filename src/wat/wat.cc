#include "wat/wat.h"

#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "support/leb128.h"
#include "wasm/opcodes.h"

namespace wizpp {

namespace {

// ---------------------------------------------------------------------
// S-expression representation
// ---------------------------------------------------------------------

struct Sexpr
{
    bool isList = false;
    std::string atom;                 ///< valid when !isList
    std::vector<Sexpr> items;         ///< valid when isList
    size_t offset = 0;                ///< source offset for errors

    bool isAtom() const { return !isList; }
    bool
    headIs(const char* s) const
    {
        return isList && !items.empty() && items[0].isAtom() &&
               items[0].atom == s;
    }
};

class Lexer
{
  public:
    explicit Lexer(const std::string& src) : _src(src) {}

    bool failed() const { return _failed; }
    const Error& error() const { return _error; }

    /** Parses the whole input as one (module ...) expression. */
    std::optional<Sexpr>
    parseTop()
    {
        skipSpace();
        auto e = parseExpr();
        if (!e) return std::nullopt;
        skipSpace();
        if (_pos != _src.size()) {
            fail("trailing input after module");
            return std::nullopt;
        }
        return e;
    }

  private:
    void
    fail(const std::string& msg)
    {
        if (!_failed) {
            _failed = true;
            _error = {msg, _pos};
        }
    }

    void
    skipSpace()
    {
        while (_pos < _src.size()) {
            char c = _src[_pos];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
                _pos++;
            } else if (c == ';' && _pos + 1 < _src.size() &&
                       _src[_pos + 1] == ';') {
                while (_pos < _src.size() && _src[_pos] != '\n') _pos++;
            } else if (c == '(' && _pos + 1 < _src.size() &&
                       _src[_pos + 1] == ';') {
                int depth = 1;
                _pos += 2;
                while (_pos + 1 < _src.size() && depth > 0) {
                    if (_src[_pos] == '(' && _src[_pos + 1] == ';') {
                        depth++;
                        _pos += 2;
                    } else if (_src[_pos] == ';' && _src[_pos + 1] == ')') {
                        depth--;
                        _pos += 2;
                    } else {
                        _pos++;
                    }
                }
            } else {
                break;
            }
        }
    }

    std::optional<Sexpr>
    parseExpr()
    {
        skipSpace();
        if (_pos >= _src.size()) {
            fail("unexpected end of input");
            return std::nullopt;
        }
        size_t start = _pos;
        char c = _src[_pos];
        if (c == '(') {
            _pos++;
            Sexpr list;
            list.isList = true;
            list.offset = start;
            while (true) {
                skipSpace();
                if (_pos >= _src.size()) {
                    fail("unterminated list");
                    return std::nullopt;
                }
                if (_src[_pos] == ')') {
                    _pos++;
                    return list;
                }
                auto child = parseExpr();
                if (!child) return std::nullopt;
                list.items.push_back(std::move(*child));
            }
        }
        if (c == ')') {
            fail("unexpected ')'");
            return std::nullopt;
        }
        if (c == '"') {
            // Keep the quotes so the parser can tell strings from atoms.
            _pos++;
            std::string s = "\"";
            while (_pos < _src.size() && _src[_pos] != '"') {
                if (_src[_pos] == '\\' && _pos + 1 < _src.size()) {
                    s += _src[_pos++];
                }
                s += _src[_pos++];
            }
            if (_pos >= _src.size()) {
                fail("unterminated string");
                return std::nullopt;
            }
            _pos++;  // closing quote
            s += '"';
            Sexpr a;
            a.atom = std::move(s);
            a.offset = start;
            return a;
        }
        // Plain atom.
        std::string s;
        while (_pos < _src.size()) {
            char d = _src[_pos];
            if (d == ' ' || d == '\t' || d == '\n' || d == '\r' ||
                d == '(' || d == ')' || d == ';' || d == '"') {
                break;
            }
            s += d;
            _pos++;
        }
        if (s.empty()) {
            fail("empty atom");
            return std::nullopt;
        }
        Sexpr a;
        a.atom = std::move(s);
        a.offset = start;
        return a;
    }

    const std::string& _src;
    size_t _pos = 0;
    bool _failed = false;
    Error _error;
};

/** Decodes a quoted WAT string literal into raw bytes. */
std::vector<uint8_t>
decodeString(const std::string& quoted)
{
    std::vector<uint8_t> out;
    // quoted includes surrounding quotes
    for (size_t i = 1; i + 1 < quoted.size(); i++) {
        char c = quoted[i];
        if (c != '\\') {
            out.push_back(static_cast<uint8_t>(c));
            continue;
        }
        char e = quoted[++i];
        switch (e) {
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case '\\': out.push_back('\\'); break;
          case '"': out.push_back('"'); break;
          case '\'': out.push_back('\''); break;
          default: {
            // \hh hex escape
            auto hex = [](char h) -> int {
                if (h >= '0' && h <= '9') return h - '0';
                if (h >= 'a' && h <= 'f') return h - 'a' + 10;
                if (h >= 'A' && h <= 'F') return h - 'A' + 10;
                return -1;
            };
            int hi = hex(e);
            int lo = (i + 1 < quoted.size()) ? hex(quoted[i + 1]) : -1;
            if (hi >= 0 && lo >= 0) {
                out.push_back(static_cast<uint8_t>(hi * 16 + lo));
                i++;
            }
            break;
          }
        }
    }
    return out;
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

class WatParser
{
  public:
    Result<Module>
    parse(const Sexpr& top)
    {
        if (!top.headIs("module")) {
            return Error{"expected (module ...)", top.offset};
        }
        // Pass 1: register all names and fixed index spaces.
        for (size_t i = 1; i < top.items.size(); i++) {
            if (!scanField(top.items[i])) return _error;
        }
        // Pass 2: parse contents (bodies, inits, exports).
        for (size_t i = 1; i < top.items.size(); i++) {
            if (!parseField(top.items[i])) return _error;
        }
        return std::move(_m);
    }

  private:
    bool
    fail(const Sexpr& at, const std::string& msg)
    {
        _error = {msg, at.offset};
        return false;
    }

    static bool isName(const Sexpr& e)
    {
        return e.isAtom() && !e.atom.empty() && e.atom[0] == '$';
    }
    static bool isString(const Sexpr& e)
    {
        return e.isAtom() && !e.atom.empty() && e.atom[0] == '"';
    }

    static std::optional<ValType>
    valType(const Sexpr& e)
    {
        if (!e.isAtom()) return std::nullopt;
        if (e.atom == "i32") return ValType::I32;
        if (e.atom == "i64") return ValType::I64;
        if (e.atom == "f32") return ValType::F32;
        if (e.atom == "f64") return ValType::F64;
        if (e.atom == "funcref") return ValType::FuncRef;
        return std::nullopt;
    }

    /** Parses an integer atom (decimal/hex, optional sign, '_' allowed). */
    static std::optional<uint64_t>
    parseIntAtom(const std::string& s0, bool* negative)
    {
        std::string s;
        for (char c : s0) {
            if (c != '_') s += c;
        }
        *negative = false;
        size_t i = 0;
        if (i < s.size() && (s[i] == '+' || s[i] == '-')) {
            *negative = s[i] == '-';
            i++;
        }
        if (i >= s.size()) return std::nullopt;
        uint64_t v = 0;
        if (s.size() - i > 2 && s[i] == '0' &&
            (s[i + 1] == 'x' || s[i + 1] == 'X')) {
            for (size_t j = i + 2; j < s.size(); j++) {
                char c = s[j];
                int d;
                if (c >= '0' && c <= '9') d = c - '0';
                else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
                else if (c >= 'A' && c <= 'F') d = c - 'A' + 10;
                else return std::nullopt;
                v = v * 16 + static_cast<uint64_t>(d);
            }
        } else {
            for (size_t j = i; j < s.size(); j++) {
                char c = s[j];
                if (c < '0' || c > '9') return std::nullopt;
                v = v * 10 + static_cast<uint64_t>(c - '0');
            }
        }
        return v;
    }

    // ---- Pass 1: name registration ----

    bool
    scanField(const Sexpr& f)
    {
        if (!f.isList || f.items.empty() || !f.items[0].isAtom()) {
            return fail(f, "expected module field");
        }
        const std::string& kind = f.items[0].atom;
        if (kind == "type") {
            size_t i = 1;
            std::string name;
            if (i < f.items.size() && isName(f.items[i])) {
                name = f.items[i].atom;
                i++;
            }
            if (i >= f.items.size() || !f.items[i].headIs("func")) {
                return fail(f, "expected (func ...) in type");
            }
            FuncType ft;
            if (!parseFuncSig(f.items[i], &ft, nullptr)) return false;
            uint32_t idx = static_cast<uint32_t>(_m.types.size());
            _m.types.push_back(std::move(ft));
            if (!name.empty()) _typeNames[name] = idx;
        } else if (kind == "import") {
            // (import "m" "n" (func $f (param..) (result..)))
            if (f.items.size() < 4 || !isString(f.items[1]) ||
                !isString(f.items[2])) {
                return fail(f, "malformed import");
            }
            const Sexpr& desc = f.items[3];
            if (desc.headIs("func")) {
                FuncDecl fd;
                fd.imported = true;
                fd.importModule = str(f.items[1]);
                fd.importName = str(f.items[2]);
                size_t i = 1;
                if (i < desc.items.size() && isName(desc.items[i])) {
                    _funcNames[desc.items[i].atom] =
                        static_cast<uint32_t>(_m.functions.size());
                    fd.name = desc.items[i].atom.substr(1);
                    i++;
                }
                FuncType ft;
                if (!parseFuncSigItems(desc, i, &ft, nullptr)) return false;
                fd.typeIndex = _m.internType(ft);
                fd.index = static_cast<uint32_t>(_m.functions.size());
                if (_sawLocalFunc) {
                    return fail(f, "imports must precede functions");
                }
                _m.functions.push_back(std::move(fd));
            } else {
                return fail(f, "only function imports supported");
            }
        } else if (kind == "func") {
            _sawLocalFunc = true;
            uint32_t idx = static_cast<uint32_t>(_m.functions.size());
            FuncDecl fd;
            fd.index = idx;
            size_t i = 1;
            if (i < f.items.size() && isName(f.items[i])) {
                _funcNames[f.items[i].atom] = idx;
                fd.name = f.items[i].atom.substr(1);
            }
            _m.functions.push_back(std::move(fd));
        } else if (kind == "memory") {
            size_t i = 1;
            if (i < f.items.size() && isName(f.items[i])) i++;
            // Inline export handled in pass 2.
        } else if (kind == "global") {
            size_t i = 1;
            if (i < f.items.size() && isName(f.items[i])) {
                _globalNames[f.items[i].atom] =
                    static_cast<uint32_t>(_numGlobalsScanned);
            }
            _numGlobalsScanned++;
        } else if (kind == "table") {
            if (isName(f.items.size() > 1 ? f.items[1] : f.items[0])) {
                // named table: ignore the name (single table)
            }
        }
        return true;
    }

    // ---- Pass 2 ----

    bool
    parseField(const Sexpr& f)
    {
        const std::string& kind = f.items[0].atom;
        if (kind == "func") return parseFunc(f);
        if (kind == "memory") return parseMemory(f);
        if (kind == "global") return parseGlobal(f);
        if (kind == "table") return parseTable(f);
        if (kind == "elem") return parseElem(f);
        if (kind == "data") return parseData(f);
        if (kind == "export") return parseExport(f);
        if (kind == "start") return parseStart(f);
        if (kind == "type" || kind == "import") return true;  // pass 1
        return fail(f, "unknown module field: " + kind);
    }

    uint32_t
    _numImports() const
    {
        uint32_t n = 0;
        for (const auto& fd : _m.functions) {
            if (fd.imported) n++;
            else break;
        }
        return n;
    }

    static std::string
    str(const Sexpr& e)
    {
        auto bytes = decodeString(e.atom);
        return std::string(bytes.begin(), bytes.end());
    }

    /** Parses (func (param...) (result...)) signature lists. */
    bool
    parseFuncSig(const Sexpr& e, FuncType* ft,
                 std::vector<std::string>* paramNames)
    {
        return parseFuncSigItems(e, 1, ft, paramNames);
    }

    bool
    parseFuncSigItems(const Sexpr& e, size_t start, FuncType* ft,
                      std::vector<std::string>* paramNames)
    {
        for (size_t i = start; i < e.items.size(); i++) {
            const Sexpr& c = e.items[i];
            if (c.headIs("param")) {
                size_t j = 1;
                if (j < c.items.size() && isName(c.items[j])) {
                    auto t = valType(c.items[j + 1]);
                    if (!t) return fail(c, "bad param type");
                    if (paramNames) paramNames->push_back(c.items[j].atom);
                    ft->params.push_back(*t);
                } else {
                    for (; j < c.items.size(); j++) {
                        auto t = valType(c.items[j]);
                        if (!t) return fail(c, "bad param type");
                        if (paramNames) paramNames->push_back("");
                        ft->params.push_back(*t);
                    }
                }
            } else if (c.headIs("result")) {
                for (size_t j = 1; j < c.items.size(); j++) {
                    auto t = valType(c.items[j]);
                    if (!t) return fail(c, "bad result type");
                    ft->results.push_back(*t);
                }
            } else {
                return fail(c, "unexpected item in signature");
            }
        }
        return true;
    }

    bool
    parseMemory(const Sexpr& f)
    {
        MemoryDecl md;
        size_t i = 1;
        if (i < f.items.size() && isName(f.items[i])) i++;
        // Inline export.
        while (i < f.items.size() && f.items[i].headIs("export")) {
            ExportDecl e;
            e.name = str(f.items[i].items[1]);
            e.kind = ExternKind::Memory;
            e.index = static_cast<uint32_t>(_m.memories.size());
            _m.exports.push_back(e);
            i++;
        }
        bool neg;
        if (i >= f.items.size() || !f.items[i].isAtom()) {
            return fail(f, "memory needs min pages");
        }
        auto mn = parseIntAtom(f.items[i].atom, &neg);
        if (!mn) return fail(f, "bad memory min");
        md.limits.min = static_cast<uint32_t>(*mn);
        i++;
        if (i < f.items.size() && f.items[i].isAtom()) {
            auto mx = parseIntAtom(f.items[i].atom, &neg);
            if (mx) {
                md.limits.hasMax = true;
                md.limits.max = static_cast<uint32_t>(*mx);
            }
        }
        _m.memories.push_back(md);
        return true;
    }

    bool
    parseTable(const Sexpr& f)
    {
        TableDecl td;
        size_t i = 1;
        if (i < f.items.size() && isName(f.items[i])) i++;
        bool neg;
        if (i < f.items.size() && f.items[i].isAtom() &&
            f.items[i].atom != "funcref") {
            auto mn = parseIntAtom(f.items[i].atom, &neg);
            if (!mn) return fail(f, "bad table min");
            td.limits.min = static_cast<uint32_t>(*mn);
            i++;
            if (i < f.items.size() && f.items[i].isAtom() &&
                f.items[i].atom != "funcref") {
                auto mx = parseIntAtom(f.items[i].atom, &neg);
                if (mx) {
                    td.limits.hasMax = true;
                    td.limits.max = static_cast<uint32_t>(*mx);
                }
                i++;
            }
        }
        _m.tables.push_back(td);
        return true;
    }

    bool
    parseInitExpr(const Sexpr& e, InitExpr* out)
    {
        if (e.headIs("i32.const")) {
            bool neg;
            auto v = parseIntAtom(e.items[1].atom, &neg);
            if (!v) return fail(e, "bad i32.const");
            // Two's-complement negation on the unsigned value avoids
            // signed-overflow UB for INT64_MIN.
            int64_t sv = static_cast<int64_t>(neg ? ~*v + 1 : *v);
            *out = InitExpr::i32(static_cast<int32_t>(sv));
            return true;
        }
        if (e.headIs("i64.const")) {
            bool neg;
            auto v = parseIntAtom(e.items[1].atom, &neg);
            if (!v) return fail(e, "bad i64.const");
            // Two's-complement negation on the unsigned value avoids
            // signed-overflow UB for INT64_MIN.
            int64_t sv = static_cast<int64_t>(neg ? ~*v + 1 : *v);
            *out = InitExpr::i64(sv);
            return true;
        }
        if (e.headIs("f64.const")) {
            double d = std::strtod(e.items[1].atom.c_str(), nullptr);
            uint64_t bits;
            std::memcpy(&bits, &d, 8);
            *out = InitExpr{InitExpr::Kind::F64Const, bits, 0};
            return true;
        }
        if (e.headIs("f32.const")) {
            float d = std::strtof(e.items[1].atom.c_str(), nullptr);
            uint32_t bits;
            std::memcpy(&bits, &d, 4);
            *out = InitExpr{InitExpr::Kind::F32Const, bits, 0};
            return true;
        }
        if (e.headIs("global.get")) {
            uint32_t idx;
            if (!resolveGlobal(e.items[1], &idx)) return false;
            *out = InitExpr{InitExpr::Kind::GlobalGet, 0, idx};
            return true;
        }
        return fail(e, "unsupported init expr");
    }

    bool
    parseGlobal(const Sexpr& f)
    {
        GlobalDecl g;
        size_t i = 1;
        if (i < f.items.size() && isName(f.items[i])) {
            g.name = f.items[i].atom.substr(1);
            i++;
        }
        while (i < f.items.size() && f.items[i].headIs("export")) {
            ExportDecl e;
            e.name = str(f.items[i].items[1]);
            e.kind = ExternKind::Global;
            e.index = static_cast<uint32_t>(_m.globals.size());
            _m.exports.push_back(e);
            i++;
        }
        if (i >= f.items.size()) return fail(f, "global needs a type");
        const Sexpr& ty = f.items[i];
        if (ty.headIs("mut")) {
            g.mut = true;
            auto t = valType(ty.items[1]);
            if (!t) return fail(ty, "bad global type");
            g.type = *t;
        } else {
            auto t = valType(ty);
            if (!t) return fail(ty, "bad global type");
            g.type = *t;
        }
        i++;
        if (i >= f.items.size()) return fail(f, "global needs an init");
        if (!parseInitExpr(f.items[i], &g.init)) return false;
        _m.globals.push_back(std::move(g));
        return true;
    }

    bool
    parseElem(const Sexpr& f)
    {
        ElemSegment seg;
        size_t i = 1;
        if (i >= f.items.size() || !f.items[i].isList) {
            return fail(f, "elem needs an offset expression");
        }
        if (!parseInitExpr(f.items[i], &seg.offset)) return false;
        i++;
        for (; i < f.items.size(); i++) {
            uint32_t idx;
            if (!resolveFunc(f.items[i], &idx)) return false;
            seg.funcIndices.push_back(idx);
        }
        _m.elems.push_back(std::move(seg));
        return true;
    }

    bool
    parseData(const Sexpr& f)
    {
        DataSegment seg;
        size_t i = 1;
        if (i >= f.items.size() || !f.items[i].isList) {
            return fail(f, "data needs an offset expression");
        }
        if (!parseInitExpr(f.items[i], &seg.offset)) return false;
        i++;
        for (; i < f.items.size(); i++) {
            if (!isString(f.items[i])) return fail(f, "data needs strings");
            auto bytes = decodeString(f.items[i].atom);
            seg.bytes.insert(seg.bytes.end(), bytes.begin(), bytes.end());
        }
        _m.datas.push_back(std::move(seg));
        return true;
    }

    bool
    parseExport(const Sexpr& f)
    {
        if (f.items.size() != 3 || !isString(f.items[1]) ||
            !f.items[2].isList) {
            return fail(f, "malformed export");
        }
        ExportDecl e;
        e.name = str(f.items[1]);
        const Sexpr& d = f.items[2];
        if (d.headIs("func")) {
            e.kind = ExternKind::Func;
            if (!resolveFunc(d.items[1], &e.index)) return false;
        } else if (d.headIs("memory")) {
            e.kind = ExternKind::Memory;
            e.index = 0;
        } else if (d.headIs("global")) {
            e.kind = ExternKind::Global;
            if (!resolveGlobal(d.items[1], &e.index)) return false;
        } else if (d.headIs("table")) {
            e.kind = ExternKind::Table;
            e.index = 0;
        } else {
            return fail(f, "bad export kind");
        }
        _m.exports.push_back(std::move(e));
        return true;
    }

    bool
    parseStart(const Sexpr& f)
    {
        uint32_t idx;
        if (!resolveFunc(f.items[1], &idx)) return false;
        _m.start = idx;
        return true;
    }

    bool
    resolveFunc(const Sexpr& e, uint32_t* out)
    {
        if (isName(e)) {
            auto it = _funcNames.find(e.atom);
            if (it == _funcNames.end()) {
                return fail(e, "unknown function " + e.atom);
            }
            *out = it->second;
            return true;
        }
        bool neg;
        auto v = parseIntAtom(e.atom, &neg);
        if (!v) return fail(e, "bad function reference");
        *out = static_cast<uint32_t>(*v);
        return true;
    }

    bool
    resolveGlobal(const Sexpr& e, uint32_t* out)
    {
        if (isName(e)) {
            auto it = _globalNames.find(e.atom);
            if (it == _globalNames.end()) {
                return fail(e, "unknown global " + e.atom);
            }
            *out = it->second;
            return true;
        }
        bool neg;
        auto v = parseIntAtom(e.atom, &neg);
        if (!v) return fail(e, "bad global reference");
        *out = static_cast<uint32_t>(*v);
        return true;
    }

    bool
    resolveType(const Sexpr& e, uint32_t* out)
    {
        if (isName(e)) {
            auto it = _typeNames.find(e.atom);
            if (it == _typeNames.end()) {
                return fail(e, "unknown type " + e.atom);
            }
            *out = it->second;
            return true;
        }
        bool neg;
        auto v = parseIntAtom(e.atom, &neg);
        if (!v) return fail(e, "bad type reference");
        *out = static_cast<uint32_t>(*v);
        return true;
    }

    // ---- Function bodies ----

    struct BodyCtx
    {
        std::vector<uint8_t> code;
        std::map<std::string, uint32_t> localNames;
        std::vector<std::string> labels;  ///< innermost last

        void emit(uint8_t b) { code.push_back(b); }
        void emitU32(uint32_t v) { encodeULEB(code, v); }
        void emitI32(int32_t v) { encodeSLEB(code, v); }
        void emitI64(int64_t v) { encodeSLEB(code, v); }
    };

    bool
    parseFunc(const Sexpr& f)
    {
        uint32_t numImports = _numImports();
        uint32_t funcIdx = numImports + _funcCursor;
        _funcCursor++;
        FuncDecl& fd = _m.functions[funcIdx];

        size_t i = 1;
        if (i < f.items.size() && isName(f.items[i])) i++;

        // Inline exports.
        while (i < f.items.size() && f.items[i].headIs("export")) {
            ExportDecl e;
            e.name = str(f.items[i].items[1]);
            e.kind = ExternKind::Func;
            e.index = funcIdx;
            _m.exports.push_back(e);
            i++;
        }

        BodyCtx ctx;
        FuncType ft;
        std::vector<std::string> paramNames;

        // (type $t) reference and/or inline signature.
        bool hasTypeRef = false;
        uint32_t typeRef = 0;
        if (i < f.items.size() && f.items[i].headIs("type")) {
            if (!resolveType(f.items[i].items[1], &typeRef)) return false;
            hasTypeRef = true;
            i++;
        }
        while (i < f.items.size() &&
               (f.items[i].headIs("param") || f.items[i].headIs("result"))) {
            const Sexpr& c = f.items[i];
            if (c.headIs("param")) {
                size_t j = 1;
                if (j < c.items.size() && isName(c.items[j])) {
                    auto t = valType(c.items[j + 1]);
                    if (!t) return fail(c, "bad param type");
                    paramNames.push_back(c.items[j].atom);
                    ft.params.push_back(*t);
                } else {
                    for (; j < c.items.size(); j++) {
                        auto t = valType(c.items[j]);
                        if (!t) return fail(c, "bad param type");
                        paramNames.push_back("");
                        ft.params.push_back(*t);
                    }
                }
            } else {
                for (size_t j = 1; j < c.items.size(); j++) {
                    auto t = valType(c.items[j]);
                    if (!t) return fail(c, "bad result type");
                    ft.results.push_back(*t);
                }
            }
            i++;
        }
        if (hasTypeRef) {
            if (typeRef >= _m.types.size()) {
                return fail(f, "type index out of range");
            }
            fd.typeIndex = typeRef;
            ft = _m.types[typeRef];
            // Named params may still have been given inline.
        } else {
            fd.typeIndex = _m.internType(ft);
        }

        for (size_t p = 0; p < paramNames.size(); p++) {
            if (!paramNames[p].empty()) {
                ctx.localNames[paramNames[p]] = static_cast<uint32_t>(p);
            }
        }

        // Locals.
        uint32_t localIdx = static_cast<uint32_t>(ft.params.size());
        while (i < f.items.size() && f.items[i].headIs("local")) {
            const Sexpr& c = f.items[i];
            size_t j = 1;
            if (j < c.items.size() && isName(c.items[j])) {
                auto t = valType(c.items[j + 1]);
                if (!t) return fail(c, "bad local type");
                ctx.localNames[c.items[j].atom] = localIdx++;
                fd.locals.push_back(*t);
            } else {
                for (; j < c.items.size(); j++) {
                    auto t = valType(c.items[j]);
                    if (!t) return fail(c, "bad local type");
                    localIdx++;
                    fd.locals.push_back(*t);
                }
            }
            i++;
        }

        // Body instructions.
        for (; i < f.items.size(); i++) {
            if (!parseInstr(f.items[i], ctx)) return false;
        }
        ctx.emit(OP_END);
        fd.code = std::move(ctx.code);
        return true;
    }

    bool
    resolveLocal(BodyCtx& ctx, const Sexpr& e, uint32_t* out)
    {
        if (isName(e)) {
            auto it = ctx.localNames.find(e.atom);
            if (it == ctx.localNames.end()) {
                return fail(e, "unknown local " + e.atom);
            }
            *out = it->second;
            return true;
        }
        bool neg;
        auto v = parseIntAtom(e.atom, &neg);
        if (!v) return fail(e, "bad local index");
        *out = static_cast<uint32_t>(*v);
        return true;
    }

    bool
    resolveLabel(BodyCtx& ctx, const Sexpr& e, uint32_t* out)
    {
        if (isName(e)) {
            for (size_t d = 0; d < ctx.labels.size(); d++) {
                if (ctx.labels[ctx.labels.size() - 1 - d] == e.atom) {
                    *out = static_cast<uint32_t>(d);
                    return true;
                }
            }
            return fail(e, "unknown label " + e.atom);
        }
        bool neg;
        auto v = parseIntAtom(e.atom, &neg);
        if (!v) return fail(e, "bad label");
        *out = static_cast<uint32_t>(*v);
        return true;
    }

    /** Parses a block type: optional (result t). Returns the byte. */
    uint8_t
    blockTypeByte(const Sexpr& parent, size_t* i)
    {
        if (*i < parent.items.size() && parent.items[*i].headIs("result")) {
            auto t = valType(parent.items[*i].items[1]);
            (*i)++;
            if (t) return static_cast<uint8_t>(*t);
        }
        return 0x40;
    }

    /** Emits a memarg; returns true and advances *i past offset=/align=. */
    void
    parseMemArg(const Sexpr& parent, size_t* i, BodyCtx& ctx,
                uint32_t naturalAlign)
    {
        uint32_t offset = 0;
        uint32_t align = naturalAlign;
        while (*i < parent.items.size() && parent.items[*i].isAtom()) {
            const std::string& a = parent.items[*i].atom;
            if (a.rfind("offset=", 0) == 0) {
                bool neg;
                auto v = parseIntAtom(a.substr(7), &neg);
                if (v) offset = static_cast<uint32_t>(*v);
                (*i)++;
            } else if (a.rfind("align=", 0) == 0) {
                bool neg;
                auto v = parseIntAtom(a.substr(6), &neg);
                if (v) {
                    uint32_t bytes = static_cast<uint32_t>(*v);
                    align = 0;
                    while (bytes > 1) {
                        bytes >>= 1;
                        align++;
                    }
                }
                (*i)++;
            } else {
                break;
            }
        }
        ctx.emitU32(align);
        ctx.emitU32(offset);
    }

    /**
     * Parses one instruction, folded or flat. For folded lists, child
     * operand expressions are emitted before the operator.
     */
    bool
    parseInstr(const Sexpr& e, BodyCtx& ctx)
    {
        if (e.isAtom()) {
            return fail(e, "flat instructions must be lists in this "
                           "dialect: (" + e.atom + " ...)");
        }
        if (e.items.empty() || !e.items[0].isAtom()) {
            return fail(e, "expected instruction");
        }
        const std::string& op = e.items[0].atom;

        // --- Structured control ---
        if (op == "block" || op == "loop") {
            size_t i = 1;
            std::string label;
            if (i < e.items.size() && isName(e.items[i])) {
                label = e.items[i].atom;
                i++;
            }
            ctx.emit(op == "block" ? OP_BLOCK : OP_LOOP);
            ctx.emit(blockTypeByte(e, &i));
            ctx.labels.push_back(label);
            for (; i < e.items.size(); i++) {
                if (!parseInstr(e.items[i], ctx)) return false;
            }
            ctx.labels.pop_back();
            ctx.emit(OP_END);
            return true;
        }
        if (op == "if") {
            size_t i = 1;
            std::string label;
            if (i < e.items.size() && isName(e.items[i])) {
                label = e.items[i].atom;
                i++;
            }
            uint8_t bt = blockTypeByte(e, &i);
            // Condition expressions: everything before (then ...).
            size_t thenIdx = i;
            while (thenIdx < e.items.size() &&
                   !e.items[thenIdx].headIs("then")) {
                thenIdx++;
            }
            if (thenIdx >= e.items.size()) {
                return fail(e, "if requires (then ...)");
            }
            for (size_t c = i; c < thenIdx; c++) {
                if (!parseInstr(e.items[c], ctx)) return false;
            }
            ctx.emit(OP_IF);
            ctx.emit(bt);
            ctx.labels.push_back(label);
            const Sexpr& thenE = e.items[thenIdx];
            for (size_t c = 1; c < thenE.items.size(); c++) {
                if (!parseInstr(thenE.items[c], ctx)) return false;
            }
            if (thenIdx + 1 < e.items.size()) {
                const Sexpr& elseE = e.items[thenIdx + 1];
                if (!elseE.headIs("else")) {
                    return fail(elseE, "expected (else ...)");
                }
                ctx.emit(OP_ELSE);
                for (size_t c = 1; c < elseE.items.size(); c++) {
                    if (!parseInstr(elseE.items[c], ctx)) return false;
                }
            }
            ctx.labels.pop_back();
            ctx.emit(OP_END);
            return true;
        }

        if (op == "call_indirect") {
            // (call_indirect (type $t) operand-exprs...)
            if (e.items.size() < 2 || !e.items[1].headIs("type")) {
                return fail(e, "call_indirect needs (type $t) first");
            }
            uint32_t typeIdx;
            if (!resolveType(e.items[1].items[1], &typeIdx)) return false;
            for (size_t i = 2; i < e.items.size(); i++) {
                if (!parseInstr(e.items[i], ctx)) return false;
            }
            ctx.emit(OP_CALL_INDIRECT);
            ctx.emitU32(typeIdx);
            ctx.emit(0x00);
            return true;
        }

        // --- Folded operands: all list children are operand exprs ---
        // (except for control ops handled above). Emit them first.
        size_t firstOperand = e.items.size();
        for (size_t i = 1; i < e.items.size(); i++) {
            if (e.items[i].isList) {
                firstOperand = i;
                break;
            }
        }
        for (size_t i = firstOperand; i < e.items.size(); i++) {
            if (!parseInstr(e.items[i], ctx)) return false;
        }

        // --- Simple operators with immediates ---
        auto simple = [&](uint8_t opcode) {
            ctx.emit(opcode);
            return true;
        };

        if (op == "unreachable") return simple(OP_UNREACHABLE);
        if (op == "nop") return simple(OP_NOP);
        if (op == "return") return simple(OP_RETURN);
        if (op == "drop") return simple(OP_DROP);
        if (op == "select") return simple(OP_SELECT);
        if (op == "br" || op == "br_if") {
            uint32_t depth;
            if (!resolveLabel(ctx, e.items[1], &depth)) return false;
            ctx.emit(op == "br" ? OP_BR : OP_BR_IF);
            ctx.emitU32(depth);
            return true;
        }
        if (op == "br_table") {
            std::vector<uint32_t> targets;
            for (size_t i = 1; i < firstOperand; i++) {
                uint32_t depth;
                if (!resolveLabel(ctx, e.items[i], &depth)) return false;
                targets.push_back(depth);
            }
            if (targets.empty()) return fail(e, "br_table needs targets");
            ctx.emit(OP_BR_TABLE);
            ctx.emitU32(static_cast<uint32_t>(targets.size() - 1));
            for (uint32_t t : targets) ctx.emitU32(t);
            return true;
        }
        if (op == "call") {
            uint32_t idx;
            if (!resolveFunc(e.items[1], &idx)) return false;
            ctx.emit(OP_CALL);
            ctx.emitU32(idx);
            return true;
        }
        if (op == "local.get" || op == "local.set" || op == "local.tee") {
            uint32_t idx = 0;
            if (!resolveLocal(ctx, e.items[1], &idx)) return false;
            ctx.emit(op == "local.get" ? OP_LOCAL_GET
                     : op == "local.set" ? OP_LOCAL_SET : OP_LOCAL_TEE);
            ctx.emitU32(idx);
            return true;
        }
        if (op == "global.get" || op == "global.set") {
            uint32_t idx;
            if (!resolveGlobal(e.items[1], &idx)) return false;
            ctx.emit(op == "global.get" ? OP_GLOBAL_GET : OP_GLOBAL_SET);
            ctx.emitU32(idx);
            return true;
        }
        if (op == "i32.const") {
            bool neg;
            auto v = parseIntAtom(e.items[1].atom, &neg);
            if (!v) return fail(e, "bad i32.const");
            // Two's-complement negation on the unsigned value avoids
            // signed-overflow UB for INT64_MIN.
            int64_t sv = static_cast<int64_t>(neg ? ~*v + 1 : *v);
            ctx.emit(OP_I32_CONST);
            ctx.emitI32(static_cast<int32_t>(sv));
            return true;
        }
        if (op == "i64.const") {
            bool neg;
            auto v = parseIntAtom(e.items[1].atom, &neg);
            if (!v) return fail(e, "bad i64.const");
            // Two's-complement negation on the unsigned value avoids
            // signed-overflow UB for INT64_MIN.
            int64_t sv = static_cast<int64_t>(neg ? ~*v + 1 : *v);
            ctx.emit(OP_I64_CONST);
            ctx.emitI64(sv);
            return true;
        }
        if (op == "f32.const") {
            float d = std::strtof(e.items[1].atom.c_str(), nullptr);
            uint32_t bits;
            std::memcpy(&bits, &d, 4);
            ctx.emit(OP_F32_CONST);
            for (int b = 0; b < 4; b++) ctx.emit((bits >> (b * 8)) & 0xff);
            return true;
        }
        if (op == "f64.const") {
            double d = std::strtod(e.items[1].atom.c_str(), nullptr);
            uint64_t bits;
            std::memcpy(&bits, &d, 8);
            ctx.emit(OP_F64_CONST);
            for (int b = 0; b < 8; b++) ctx.emit((bits >> (b * 8)) & 0xff);
            return true;
        }
        if (op == "memory.size") {
            ctx.emit(OP_MEMORY_SIZE);
            ctx.emit(0x00);
            return true;
        }
        if (op == "memory.grow") {
            ctx.emit(OP_MEMORY_GROW);
            ctx.emit(0x00);
            return true;
        }
        if (op == "memory.fill") {
            ctx.emit(OP_PREFIX_FC);
            ctx.emitU32(FC_MEMORY_FILL);
            ctx.emit(0x00);
            return true;
        }
        if (op == "memory.copy") {
            ctx.emit(OP_PREFIX_FC);
            ctx.emitU32(FC_MEMORY_COPY);
            ctx.emit(0x00);
            ctx.emit(0x00);
            return true;
        }

        // Memory access instructions.
        static const struct { const char* name; uint8_t op; uint32_t align; }
        memOps[] = {
            {"i32.load", OP_I32_LOAD, 2},
            {"i64.load", OP_I64_LOAD, 3},
            {"f32.load", OP_F32_LOAD, 2},
            {"f64.load", OP_F64_LOAD, 3},
            {"i32.load8_s", OP_I32_LOAD8_S, 0},
            {"i32.load8_u", OP_I32_LOAD8_U, 0},
            {"i32.load16_s", OP_I32_LOAD16_S, 1},
            {"i32.load16_u", OP_I32_LOAD16_U, 1},
            {"i64.load8_s", OP_I64_LOAD8_S, 0},
            {"i64.load8_u", OP_I64_LOAD8_U, 0},
            {"i64.load16_s", OP_I64_LOAD16_S, 1},
            {"i64.load16_u", OP_I64_LOAD16_U, 1},
            {"i64.load32_s", OP_I64_LOAD32_S, 2},
            {"i64.load32_u", OP_I64_LOAD32_U, 2},
            {"i32.store", OP_I32_STORE, 2},
            {"i64.store", OP_I64_STORE, 3},
            {"f32.store", OP_F32_STORE, 2},
            {"f64.store", OP_F64_STORE, 3},
            {"i32.store8", OP_I32_STORE8, 0},
            {"i32.store16", OP_I32_STORE16, 1},
            {"i64.store8", OP_I64_STORE8, 0},
            {"i64.store16", OP_I64_STORE16, 1},
            {"i64.store32", OP_I64_STORE32, 2},
        };
        for (const auto& mo : memOps) {
            if (op == mo.name) {
                ctx.emit(mo.op);
                size_t i = 1;
                parseMemArg(e, &i, ctx, mo.align);
                return true;
            }
        }

        // Saturating truncation (0xFC prefix).
        static const struct { const char* name; uint32_t sub; }
        fcOps[] = {
            {"i32.trunc_sat_f32_s", FC_I32_TRUNC_SAT_F32_S},
            {"i32.trunc_sat_f32_u", FC_I32_TRUNC_SAT_F32_U},
            {"i32.trunc_sat_f64_s", FC_I32_TRUNC_SAT_F64_S},
            {"i32.trunc_sat_f64_u", FC_I32_TRUNC_SAT_F64_U},
            {"i64.trunc_sat_f32_s", FC_I64_TRUNC_SAT_F32_S},
            {"i64.trunc_sat_f32_u", FC_I64_TRUNC_SAT_F32_U},
            {"i64.trunc_sat_f64_s", FC_I64_TRUNC_SAT_F64_S},
            {"i64.trunc_sat_f64_u", FC_I64_TRUNC_SAT_F64_U},
        };
        for (const auto& fo : fcOps) {
            if (op == fo.name) {
                ctx.emit(OP_PREFIX_FC);
                ctx.emitU32(fo.sub);
                return true;
            }
        }

        // Plain numeric operators: look the mnemonic up by name.
        for (int b = 0; b < 256; b++) {
            const char* n = opcodeName(static_cast<uint8_t>(b));
            if (n[0] != '<' && op == n) {
                ctx.emit(static_cast<uint8_t>(b));
                return true;
            }
        }
        return fail(e, "unknown instruction: " + op);
    }

    Module _m;
    std::map<std::string, uint32_t> _funcNames;
    std::map<std::string, uint32_t> _globalNames;
    std::map<std::string, uint32_t> _typeNames;
    uint32_t _funcCursor = 0;
    size_t _numGlobalsScanned = 0;
    bool _sawLocalFunc = false;
    Error _error;
};

} // namespace

Result<Module>
parseWat(const std::string& source)
{
    Lexer lex(source);
    auto top = lex.parseTop();
    if (!top) return lex.error();
    WatParser p;
    return p.parse(*top);
}

} // namespace wizpp
