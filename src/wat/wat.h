/**
 * @file
 * WAT (WebAssembly Text format) parser.
 *
 * Parses the pragmatic subset of WAT that the benchmark corpus and
 * tests are written in: modules with types, imports (functions),
 * functions (flat and folded instructions), memories, tables + element
 * segments, globals, data segments, exports and start. Block types are
 * limited to zero or one result (core MVP).
 */

#ifndef WIZPP_WAT_WAT_H
#define WIZPP_WAT_WAT_H

#include <string>

#include "support/result.h"
#include "wasm/module.h"

namespace wizpp {

/** Parses WAT source text into a Module. */
Result<Module> parseWat(const std::string& source);

} // namespace wizpp

#endif // WIZPP_WAT_WAT_H
