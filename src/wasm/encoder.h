/**
 * @file
 * WebAssembly binary-format encoder: Module → .wasm bytes.
 *
 * Used by the static-instrumentation baselines (bytecode rewriting and
 * Wasabi-like injection) to materialize transformed modules, and by
 * round-trip tests (decode ∘ encode = identity).
 */

#ifndef WIZPP_WASM_ENCODER_H
#define WIZPP_WASM_ENCODER_H

#include <cstdint>
#include <vector>

#include "wasm/module.h"

namespace wizpp {

/** Encodes @p m into binary form. The module must be structurally valid. */
std::vector<uint8_t> encodeModule(const Module& m);

} // namespace wizpp

#endif // WIZPP_WASM_ENCODER_H
