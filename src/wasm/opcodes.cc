#include "wasm/opcodes.h"

#include "wasm/types.h"

namespace wizpp {

namespace {

const char* kNames[256] = {};

struct NameTableInit
{
    NameTableInit()
    {
        for (auto& n : kNames) n = nullptr;
        kNames[OP_UNREACHABLE] = "unreachable";
        kNames[OP_NOP] = "nop";
        kNames[OP_BLOCK] = "block";
        kNames[OP_LOOP] = "loop";
        kNames[OP_IF] = "if";
        kNames[OP_ELSE] = "else";
        kNames[OP_END] = "end";
        kNames[OP_BR] = "br";
        kNames[OP_BR_IF] = "br_if";
        kNames[OP_BR_TABLE] = "br_table";
        kNames[OP_RETURN] = "return";
        kNames[OP_CALL] = "call";
        kNames[OP_CALL_INDIRECT] = "call_indirect";
        kNames[OP_DROP] = "drop";
        kNames[OP_SELECT] = "select";
        kNames[OP_LOCAL_GET] = "local.get";
        kNames[OP_LOCAL_SET] = "local.set";
        kNames[OP_LOCAL_TEE] = "local.tee";
        kNames[OP_GLOBAL_GET] = "global.get";
        kNames[OP_GLOBAL_SET] = "global.set";
        kNames[OP_I32_LOAD] = "i32.load";
        kNames[OP_I64_LOAD] = "i64.load";
        kNames[OP_F32_LOAD] = "f32.load";
        kNames[OP_F64_LOAD] = "f64.load";
        kNames[OP_I32_LOAD8_S] = "i32.load8_s";
        kNames[OP_I32_LOAD8_U] = "i32.load8_u";
        kNames[OP_I32_LOAD16_S] = "i32.load16_s";
        kNames[OP_I32_LOAD16_U] = "i32.load16_u";
        kNames[OP_I64_LOAD8_S] = "i64.load8_s";
        kNames[OP_I64_LOAD8_U] = "i64.load8_u";
        kNames[OP_I64_LOAD16_S] = "i64.load16_s";
        kNames[OP_I64_LOAD16_U] = "i64.load16_u";
        kNames[OP_I64_LOAD32_S] = "i64.load32_s";
        kNames[OP_I64_LOAD32_U] = "i64.load32_u";
        kNames[OP_I32_STORE] = "i32.store";
        kNames[OP_I64_STORE] = "i64.store";
        kNames[OP_F32_STORE] = "f32.store";
        kNames[OP_F64_STORE] = "f64.store";
        kNames[OP_I32_STORE8] = "i32.store8";
        kNames[OP_I32_STORE16] = "i32.store16";
        kNames[OP_I64_STORE8] = "i64.store8";
        kNames[OP_I64_STORE16] = "i64.store16";
        kNames[OP_I64_STORE32] = "i64.store32";
        kNames[OP_MEMORY_SIZE] = "memory.size";
        kNames[OP_MEMORY_GROW] = "memory.grow";
        kNames[OP_I32_CONST] = "i32.const";
        kNames[OP_I64_CONST] = "i64.const";
        kNames[OP_F32_CONST] = "f32.const";
        kNames[OP_F64_CONST] = "f64.const";
        kNames[OP_I32_EQZ] = "i32.eqz";
        kNames[OP_I32_EQ] = "i32.eq";
        kNames[OP_I32_NE] = "i32.ne";
        kNames[OP_I32_LT_S] = "i32.lt_s";
        kNames[OP_I32_LT_U] = "i32.lt_u";
        kNames[OP_I32_GT_S] = "i32.gt_s";
        kNames[OP_I32_GT_U] = "i32.gt_u";
        kNames[OP_I32_LE_S] = "i32.le_s";
        kNames[OP_I32_LE_U] = "i32.le_u";
        kNames[OP_I32_GE_S] = "i32.ge_s";
        kNames[OP_I32_GE_U] = "i32.ge_u";
        kNames[OP_I64_EQZ] = "i64.eqz";
        kNames[OP_I64_EQ] = "i64.eq";
        kNames[OP_I64_NE] = "i64.ne";
        kNames[OP_I64_LT_S] = "i64.lt_s";
        kNames[OP_I64_LT_U] = "i64.lt_u";
        kNames[OP_I64_GT_S] = "i64.gt_s";
        kNames[OP_I64_GT_U] = "i64.gt_u";
        kNames[OP_I64_LE_S] = "i64.le_s";
        kNames[OP_I64_LE_U] = "i64.le_u";
        kNames[OP_I64_GE_S] = "i64.ge_s";
        kNames[OP_I64_GE_U] = "i64.ge_u";
        kNames[OP_F32_EQ] = "f32.eq";
        kNames[OP_F32_NE] = "f32.ne";
        kNames[OP_F32_LT] = "f32.lt";
        kNames[OP_F32_GT] = "f32.gt";
        kNames[OP_F32_LE] = "f32.le";
        kNames[OP_F32_GE] = "f32.ge";
        kNames[OP_F64_EQ] = "f64.eq";
        kNames[OP_F64_NE] = "f64.ne";
        kNames[OP_F64_LT] = "f64.lt";
        kNames[OP_F64_GT] = "f64.gt";
        kNames[OP_F64_LE] = "f64.le";
        kNames[OP_F64_GE] = "f64.ge";
        kNames[OP_I32_CLZ] = "i32.clz";
        kNames[OP_I32_CTZ] = "i32.ctz";
        kNames[OP_I32_POPCNT] = "i32.popcnt";
        kNames[OP_I32_ADD] = "i32.add";
        kNames[OP_I32_SUB] = "i32.sub";
        kNames[OP_I32_MUL] = "i32.mul";
        kNames[OP_I32_DIV_S] = "i32.div_s";
        kNames[OP_I32_DIV_U] = "i32.div_u";
        kNames[OP_I32_REM_S] = "i32.rem_s";
        kNames[OP_I32_REM_U] = "i32.rem_u";
        kNames[OP_I32_AND] = "i32.and";
        kNames[OP_I32_OR] = "i32.or";
        kNames[OP_I32_XOR] = "i32.xor";
        kNames[OP_I32_SHL] = "i32.shl";
        kNames[OP_I32_SHR_S] = "i32.shr_s";
        kNames[OP_I32_SHR_U] = "i32.shr_u";
        kNames[OP_I32_ROTL] = "i32.rotl";
        kNames[OP_I32_ROTR] = "i32.rotr";
        kNames[OP_I64_CLZ] = "i64.clz";
        kNames[OP_I64_CTZ] = "i64.ctz";
        kNames[OP_I64_POPCNT] = "i64.popcnt";
        kNames[OP_I64_ADD] = "i64.add";
        kNames[OP_I64_SUB] = "i64.sub";
        kNames[OP_I64_MUL] = "i64.mul";
        kNames[OP_I64_DIV_S] = "i64.div_s";
        kNames[OP_I64_DIV_U] = "i64.div_u";
        kNames[OP_I64_REM_S] = "i64.rem_s";
        kNames[OP_I64_REM_U] = "i64.rem_u";
        kNames[OP_I64_AND] = "i64.and";
        kNames[OP_I64_OR] = "i64.or";
        kNames[OP_I64_XOR] = "i64.xor";
        kNames[OP_I64_SHL] = "i64.shl";
        kNames[OP_I64_SHR_S] = "i64.shr_s";
        kNames[OP_I64_SHR_U] = "i64.shr_u";
        kNames[OP_I64_ROTL] = "i64.rotl";
        kNames[OP_I64_ROTR] = "i64.rotr";
        kNames[OP_F32_ABS] = "f32.abs";
        kNames[OP_F32_NEG] = "f32.neg";
        kNames[OP_F32_CEIL] = "f32.ceil";
        kNames[OP_F32_FLOOR] = "f32.floor";
        kNames[OP_F32_TRUNC] = "f32.trunc";
        kNames[OP_F32_NEAREST] = "f32.nearest";
        kNames[OP_F32_SQRT] = "f32.sqrt";
        kNames[OP_F32_ADD] = "f32.add";
        kNames[OP_F32_SUB] = "f32.sub";
        kNames[OP_F32_MUL] = "f32.mul";
        kNames[OP_F32_DIV] = "f32.div";
        kNames[OP_F32_MIN] = "f32.min";
        kNames[OP_F32_MAX] = "f32.max";
        kNames[OP_F32_COPYSIGN] = "f32.copysign";
        kNames[OP_F64_ABS] = "f64.abs";
        kNames[OP_F64_NEG] = "f64.neg";
        kNames[OP_F64_CEIL] = "f64.ceil";
        kNames[OP_F64_FLOOR] = "f64.floor";
        kNames[OP_F64_TRUNC] = "f64.trunc";
        kNames[OP_F64_NEAREST] = "f64.nearest";
        kNames[OP_F64_SQRT] = "f64.sqrt";
        kNames[OP_F64_ADD] = "f64.add";
        kNames[OP_F64_SUB] = "f64.sub";
        kNames[OP_F64_MUL] = "f64.mul";
        kNames[OP_F64_DIV] = "f64.div";
        kNames[OP_F64_MIN] = "f64.min";
        kNames[OP_F64_MAX] = "f64.max";
        kNames[OP_F64_COPYSIGN] = "f64.copysign";
        kNames[OP_I32_WRAP_I64] = "i32.wrap_i64";
        kNames[OP_I32_TRUNC_F32_S] = "i32.trunc_f32_s";
        kNames[OP_I32_TRUNC_F32_U] = "i32.trunc_f32_u";
        kNames[OP_I32_TRUNC_F64_S] = "i32.trunc_f64_s";
        kNames[OP_I32_TRUNC_F64_U] = "i32.trunc_f64_u";
        kNames[OP_I64_EXTEND_I32_S] = "i64.extend_i32_s";
        kNames[OP_I64_EXTEND_I32_U] = "i64.extend_i32_u";
        kNames[OP_I64_TRUNC_F32_S] = "i64.trunc_f32_s";
        kNames[OP_I64_TRUNC_F32_U] = "i64.trunc_f32_u";
        kNames[OP_I64_TRUNC_F64_S] = "i64.trunc_f64_s";
        kNames[OP_I64_TRUNC_F64_U] = "i64.trunc_f64_u";
        kNames[OP_F32_CONVERT_I32_S] = "f32.convert_i32_s";
        kNames[OP_F32_CONVERT_I32_U] = "f32.convert_i32_u";
        kNames[OP_F32_CONVERT_I64_S] = "f32.convert_i64_s";
        kNames[OP_F32_CONVERT_I64_U] = "f32.convert_i64_u";
        kNames[OP_F32_DEMOTE_F64] = "f32.demote_f64";
        kNames[OP_F64_CONVERT_I32_S] = "f64.convert_i32_s";
        kNames[OP_F64_CONVERT_I32_U] = "f64.convert_i32_u";
        kNames[OP_F64_CONVERT_I64_S] = "f64.convert_i64_s";
        kNames[OP_F64_CONVERT_I64_U] = "f64.convert_i64_u";
        kNames[OP_F64_PROMOTE_F32] = "f64.promote_f32";
        kNames[OP_I32_REINTERPRET_F32] = "i32.reinterpret_f32";
        kNames[OP_I64_REINTERPRET_F64] = "i64.reinterpret_f64";
        kNames[OP_F32_REINTERPRET_I32] = "f32.reinterpret_i32";
        kNames[OP_F64_REINTERPRET_I64] = "f64.reinterpret_i64";
        kNames[OP_I32_EXTEND8_S] = "i32.extend8_s";
        kNames[OP_I32_EXTEND16_S] = "i32.extend16_s";
        kNames[OP_I64_EXTEND8_S] = "i64.extend8_s";
        kNames[OP_I64_EXTEND16_S] = "i64.extend16_s";
        kNames[OP_I64_EXTEND32_S] = "i64.extend32_s";
        kNames[OP_PREFIX_FC] = "<0xfc-prefix>";
        kNames[OP_PROBE] = "<probe>";
    }
};

NameTableInit nameTableInit;

} // namespace

const char*
opcodeName(uint8_t op)
{
    const char* n = kNames[op];
    return n ? n : "<illegal>";
}

bool
isBranchOpcode(uint8_t op)
{
    return op == OP_BR || op == OP_BR_IF || op == OP_BR_TABLE ||
           op == OP_IF;
}

bool
isLoadOpcode(uint8_t op)
{
    return op >= OP_I32_LOAD && op <= OP_I64_LOAD32_U;
}

bool
isStoreOpcode(uint8_t op)
{
    return op >= OP_I32_STORE && op <= OP_I64_STORE32;
}

const char*
valTypeName(ValType t)
{
    switch (t) {
      case ValType::I32: return "i32";
      case ValType::I64: return "i64";
      case ValType::F32: return "f32";
      case ValType::F64: return "f64";
      case ValType::FuncRef: return "funcref";
      case ValType::Void: return "void";
    }
    return "<bad-type>";
}

const char*
externKindName(ExternKind k)
{
    switch (k) {
      case ExternKind::Func: return "func";
      case ExternKind::Table: return "table";
      case ExternKind::Memory: return "memory";
      case ExternKind::Global: return "global";
    }
    return "<bad-kind>";
}

std::string
FuncType::toString() const
{
    std::string s = "[";
    for (size_t i = 0; i < params.size(); i++) {
        if (i) s += " ";
        s += valTypeName(params[i]);
    }
    s += "] -> [";
    for (size_t i = 0; i < results.size(); i++) {
        if (i) s += " ";
        s += valTypeName(results[i]);
    }
    s += "]";
    return s;
}

} // namespace wizpp
