/**
 * @file
 * WebAssembly module validator.
 *
 * Implements the standard stack-polymorphic function-body validation
 * algorithm from the core spec, and simultaneously constructs each
 * function's control-flow side table (see sidetable.h).
 */

#ifndef WIZPP_WASM_VALIDATOR_H
#define WIZPP_WASM_VALIDATOR_H

#include <vector>

#include "support/result.h"
#include "wasm/module.h"
#include "wasm/sidetable.h"

namespace wizpp {

/** Validation output: one side table per function (empty for imports). */
struct ValidationInfo
{
    std::vector<SideTable> sideTables;
    std::vector<uint32_t> maxOperandStack;  ///< per-function max height
};

/**
 * Validates all of @p m: section cross-references, types, and every
 * function body. Returns side tables on success.
 */
Result<ValidationInfo> validateModule(const Module& m);

/** Validates a single function body; exposed for targeted tests. */
Result<SideTable> validateFunction(const Module& m, uint32_t funcIndex);

} // namespace wizpp

#endif // WIZPP_WASM_VALIDATOR_H
