/**
 * @file
 * WebAssembly module validator.
 *
 * Implements the standard stack-polymorphic function-body validation
 * algorithm from the core spec, and simultaneously constructs each
 * function's control-flow side table (see sidetable.h).
 */

#ifndef WIZPP_WASM_VALIDATOR_H
#define WIZPP_WASM_VALIDATOR_H

#include <memory>
#include <vector>

#include "support/result.h"
#include "wasm/module.h"
#include "wasm/sidetable.h"

namespace wizpp {

/** Validation output: one side table per function (empty for imports). */
struct ValidationInfo
{
    std::vector<SideTable> sideTables;
    std::vector<uint32_t> maxOperandStack;  ///< per-function max height
};

/**
 * A module validated exactly once and frozen for sharing. Engines
 * built from the same ValidatedModule share the bytes and the
 * validation output immutably (each engine still makes its own
 * mutable code copies — probe insertion overwrites bytecode — and
 * finalizes its own side-table slots). This is the unit the serving
 * runtime's instance pool fans out across worker threads
 * (docs/SERVING.md): validate once, instantiate N times.
 */
struct ValidatedModule
{
    Module module;
    ValidationInfo info;

    /** Validates @p m; on success returns the frozen shared module. */
    static Result<std::shared_ptr<const ValidatedModule>> create(
        Module m);
};

/**
 * Validates all of @p m: section cross-references, types, and every
 * function body. Returns side tables on success.
 */
Result<ValidationInfo> validateModule(const Module& m);

/** Validates a single function body; exposed for targeted tests. */
Result<SideTable> validateFunction(const Module& m, uint32_t funcIndex);

} // namespace wizpp

#endif // WIZPP_WASM_VALIDATOR_H
