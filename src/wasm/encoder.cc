#include "wasm/encoder.h"

#include "support/leb128.h"
#include "wasm/opcodes.h"

namespace wizpp {

namespace {

void
encodeName(std::vector<uint8_t>& out, const std::string& s)
{
    encodeULEB(out, static_cast<uint32_t>(s.size()));
    out.insert(out.end(), s.begin(), s.end());
}

void
encodeLimits(std::vector<uint8_t>& out, const Limits& lim)
{
    out.push_back(lim.hasMax ? 1 : 0);
    encodeULEB(out, lim.min);
    if (lim.hasMax) encodeULEB(out, lim.max);
}

void
encodeInitExpr(std::vector<uint8_t>& out, const InitExpr& e)
{
    switch (e.kind) {
      case InitExpr::Kind::I32Const:
        out.push_back(OP_I32_CONST);
        encodeSLEB(out, static_cast<int32_t>(e.bits));
        break;
      case InitExpr::Kind::I64Const:
        out.push_back(OP_I64_CONST);
        encodeSLEB(out, static_cast<int64_t>(e.bits));
        break;
      case InitExpr::Kind::F32Const: {
        out.push_back(OP_F32_CONST);
        uint32_t bits = static_cast<uint32_t>(e.bits);
        for (int i = 0; i < 4; i++) out.push_back((bits >> (i * 8)) & 0xff);
        break;
      }
      case InitExpr::Kind::F64Const: {
        out.push_back(OP_F64_CONST);
        for (int i = 0; i < 8; i++) out.push_back((e.bits >> (i * 8)) & 0xff);
        break;
      }
      case InitExpr::Kind::GlobalGet:
        out.push_back(OP_GLOBAL_GET);
        encodeULEB(out, e.index);
        break;
      default:
        break;  // RefFunc/RefNull not used in encoded modules
    }
    out.push_back(OP_END);
}

/** Appends a section: id, size, payload. */
void
appendSection(std::vector<uint8_t>& out, uint8_t id,
              const std::vector<uint8_t>& payload)
{
    if (payload.empty()) return;
    out.push_back(id);
    encodeULEB(out, static_cast<uint32_t>(payload.size()));
    out.insert(out.end(), payload.begin(), payload.end());
}

} // namespace

std::vector<uint8_t>
encodeModule(const Module& m)
{
    std::vector<uint8_t> out = {0x00, 'a', 's', 'm', 1, 0, 0, 0};
    std::vector<uint8_t> sec;

    // Type section.
    if (!m.types.empty()) {
        sec.clear();
        encodeULEB(sec, static_cast<uint32_t>(m.types.size()));
        for (const auto& ft : m.types) {
            sec.push_back(0x60);
            encodeULEB(sec, static_cast<uint32_t>(ft.params.size()));
            for (ValType t : ft.params) {
                sec.push_back(static_cast<uint8_t>(t));
            }
            encodeULEB(sec, static_cast<uint32_t>(ft.results.size()));
            for (ValType t : ft.results) {
                sec.push_back(static_cast<uint8_t>(t));
            }
        }
        appendSection(out, 1, sec);
    }

    // Import section.
    uint32_t numImports = 0;
    sec.clear();
    std::vector<uint8_t> imports;
    for (const auto& f : m.functions) {
        if (!f.imported) continue;
        encodeName(imports, f.importModule);
        encodeName(imports, f.importName);
        imports.push_back(0x00);
        encodeULEB(imports, f.typeIndex);
        numImports++;
    }
    for (const auto& t : m.tables) {
        if (!t.imported) continue;
        encodeName(imports, t.importModule);
        encodeName(imports, t.importName);
        imports.push_back(0x01);
        imports.push_back(0x70);
        encodeLimits(imports, t.limits);
        numImports++;
    }
    for (const auto& mem : m.memories) {
        if (!mem.imported) continue;
        encodeName(imports, mem.importModule);
        encodeName(imports, mem.importName);
        imports.push_back(0x02);
        encodeLimits(imports, mem.limits);
        numImports++;
    }
    for (const auto& g : m.globals) {
        if (!g.imported) continue;
        encodeName(imports, g.importModule);
        encodeName(imports, g.importName);
        imports.push_back(0x03);
        imports.push_back(static_cast<uint8_t>(g.type));
        imports.push_back(g.mut ? 1 : 0);
        numImports++;
    }
    if (numImports) {
        encodeULEB(sec, numImports);
        sec.insert(sec.end(), imports.begin(), imports.end());
        appendSection(out, 2, sec);
    }

    // Function section (type indices of local functions).
    uint32_t numLocal = 0;
    for (const auto& f : m.functions) {
        if (!f.imported) numLocal++;
    }
    if (numLocal) {
        sec.clear();
        encodeULEB(sec, numLocal);
        for (const auto& f : m.functions) {
            if (!f.imported) encodeULEB(sec, f.typeIndex);
        }
        appendSection(out, 3, sec);
    }

    // Table section.
    {
        uint32_t n = 0;
        for (const auto& t : m.tables) {
            if (!t.imported) n++;
        }
        if (n) {
            sec.clear();
            encodeULEB(sec, n);
            for (const auto& t : m.tables) {
                if (t.imported) continue;
                sec.push_back(0x70);
                encodeLimits(sec, t.limits);
            }
            appendSection(out, 4, sec);
        }
    }

    // Memory section.
    {
        uint32_t n = 0;
        for (const auto& mem : m.memories) {
            if (!mem.imported) n++;
        }
        if (n) {
            sec.clear();
            encodeULEB(sec, n);
            for (const auto& mem : m.memories) {
                if (!mem.imported) encodeLimits(sec, mem.limits);
            }
            appendSection(out, 5, sec);
        }
    }

    // Global section.
    {
        uint32_t n = 0;
        for (const auto& g : m.globals) {
            if (!g.imported) n++;
        }
        if (n) {
            sec.clear();
            encodeULEB(sec, n);
            for (const auto& g : m.globals) {
                if (g.imported) continue;
                sec.push_back(static_cast<uint8_t>(g.type));
                sec.push_back(g.mut ? 1 : 0);
                encodeInitExpr(sec, g.init);
            }
            appendSection(out, 6, sec);
        }
    }

    // Export section.
    if (!m.exports.empty()) {
        sec.clear();
        encodeULEB(sec, static_cast<uint32_t>(m.exports.size()));
        for (const auto& e : m.exports) {
            encodeName(sec, e.name);
            sec.push_back(static_cast<uint8_t>(e.kind));
            encodeULEB(sec, e.index);
        }
        appendSection(out, 7, sec);
    }

    // Start section.
    if (m.start) {
        sec.clear();
        encodeULEB(sec, *m.start);
        appendSection(out, 8, sec);
    }

    // Element section.
    if (!m.elems.empty()) {
        sec.clear();
        encodeULEB(sec, static_cast<uint32_t>(m.elems.size()));
        for (const auto& seg : m.elems) {
            encodeULEB(sec, 0u);  // flags: active, table 0
            encodeInitExpr(sec, seg.offset);
            encodeULEB(sec, static_cast<uint32_t>(seg.funcIndices.size()));
            for (uint32_t idx : seg.funcIndices) encodeULEB(sec, idx);
        }
        appendSection(out, 9, sec);
    }

    // Code section.
    if (numLocal) {
        sec.clear();
        encodeULEB(sec, numLocal);
        for (const auto& f : m.functions) {
            if (f.imported) continue;
            std::vector<uint8_t> body;
            // Compress locals into runs of identical types.
            std::vector<std::pair<uint32_t, ValType>> groups;
            for (ValType t : f.locals) {
                if (!groups.empty() && groups.back().second == t) {
                    groups.back().first++;
                } else {
                    groups.push_back({1, t});
                }
            }
            encodeULEB(body, static_cast<uint32_t>(groups.size()));
            for (auto [n, t] : groups) {
                encodeULEB(body, n);
                body.push_back(static_cast<uint8_t>(t));
            }
            body.insert(body.end(), f.code.begin(), f.code.end());
            encodeULEB(sec, static_cast<uint32_t>(body.size()));
            sec.insert(sec.end(), body.begin(), body.end());
        }
        appendSection(out, 10, sec);
    }

    // Data section.
    if (!m.datas.empty()) {
        sec.clear();
        encodeULEB(sec, static_cast<uint32_t>(m.datas.size()));
        for (const auto& seg : m.datas) {
            encodeULEB(sec, 0u);  // flags: active, memory 0
            encodeInitExpr(sec, seg.offset);
            encodeULEB(sec, static_cast<uint32_t>(seg.bytes.size()));
            sec.insert(sec.end(), seg.bytes.begin(), seg.bytes.end());
        }
        appendSection(out, 11, sec);
    }

    // Name custom section (function names only).
    {
        std::vector<uint8_t> names;
        uint32_t count = 0;
        for (const auto& f : m.functions) {
            if (!f.name.empty()) count++;
        }
        if (count) {
            std::vector<uint8_t> sub;
            encodeULEB(sub, count);
            for (const auto& f : m.functions) {
                if (f.name.empty()) continue;
                encodeULEB(sub, f.index);
                encodeName(sub, f.name);
            }
            encodeName(names, "name");
            names.push_back(1);  // function-names subsection
            encodeULEB(names, static_cast<uint32_t>(sub.size()));
            names.insert(names.end(), sub.begin(), sub.end());
            appendSection(out, 0, names);
        }
    }

    return out;
}

} // namespace wizpp
