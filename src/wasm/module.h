/**
 * @file
 * In-memory representation of a decoded WebAssembly module.
 *
 * The module IR is pure data: no execution state lives here. The engine
 * attaches per-function runtime state (mutable probe-code copies, side
 * tables, compiled code) in its own parallel structures so that a module
 * can be shared, re-instantiated, re-encoded, and rewritten without
 * dragging engine internals along.
 */

#ifndef WIZPP_WASM_MODULE_H
#define WIZPP_WASM_MODULE_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "wasm/types.h"

namespace wizpp {

/** A constant initializer expression (for globals, element/data offsets). */
struct InitExpr
{
    enum class Kind : uint8_t {
        I32Const, I64Const, F32Const, F64Const, GlobalGet, RefFunc, RefNull,
    };
    Kind kind = Kind::I32Const;
    uint64_t bits = 0;    ///< constant payload (raw bits)
    uint32_t index = 0;   ///< global or function index for GlobalGet/RefFunc

    static InitExpr i32(int32_t v)
    {
        return {Kind::I32Const, static_cast<uint32_t>(v), 0};
    }
    static InitExpr i64(int64_t v)
    {
        return {Kind::I64Const, static_cast<uint64_t>(v), 0};
    }
};

/** A function: either an import stub or a local function with a body. */
struct FuncDecl
{
    uint32_t index = 0;       ///< index in the module function space
    uint32_t typeIndex = 0;   ///< index into Module::types
    bool imported = false;
    std::string importModule; ///< import source, if imported
    std::string importName;

    /** Declared local types (parameters are NOT included). */
    std::vector<ValType> locals;

    /**
     * Body instruction bytes, ending with the terminal 0x0B `end`.
     * Probe locations (pc) are byte offsets into this vector; offset 0 is
     * the first instruction.
     */
    std::vector<uint8_t> code;

    /** Debug name from the name section or WAT identifier (may be empty). */
    std::string name;
};

/** A table declaration. */
struct TableDecl
{
    ValType elemType = ValType::FuncRef;
    Limits limits;
    bool imported = false;
    std::string importModule;
    std::string importName;
};

/** A linear memory declaration. */
struct MemoryDecl
{
    Limits limits;
    bool imported = false;
    std::string importModule;
    std::string importName;
};

/** A global variable declaration. */
struct GlobalDecl
{
    ValType type = ValType::I32;
    bool mut = false;
    InitExpr init;
    bool imported = false;
    std::string importModule;
    std::string importName;
    std::string name;
};

/** An export entry. */
struct ExportDecl
{
    std::string name;
    ExternKind kind = ExternKind::Func;
    uint32_t index = 0;
};

/** An active element segment initializing a table with function indices. */
struct ElemSegment
{
    uint32_t tableIndex = 0;
    InitExpr offset;
    std::vector<uint32_t> funcIndices;
};

/** An active data segment initializing linear memory. */
struct DataSegment
{
    uint32_t memIndex = 0;
    InitExpr offset;
    std::vector<uint8_t> bytes;
};

/**
 * A decoded WebAssembly module.
 *
 * Function, table, memory and global index spaces include imports first,
 * as in the spec. Imported entries carry `imported = true`.
 */
struct Module
{
    std::vector<FuncType> types;
    std::vector<FuncDecl> functions;
    std::vector<TableDecl> tables;
    std::vector<MemoryDecl> memories;
    std::vector<GlobalDecl> globals;
    std::vector<ExportDecl> exports;
    std::vector<ElemSegment> elems;
    std::vector<DataSegment> datas;
    std::optional<uint32_t> start;
    std::string name;

    /** Number of imported functions (they occupy indices [0, n)). */
    uint32_t numImportedFuncs() const
    {
        uint32_t n = 0;
        for (const auto& f : functions) {
            if (!f.imported) break;
            n++;
        }
        return n;
    }

    /** Returns the signature of function @p index. */
    const FuncType& funcType(uint32_t index) const
    {
        return types[functions[index].typeIndex];
    }

    /** Finds an export by name and kind; returns nullptr if absent. */
    const ExportDecl* findExport(const std::string& name,
                                 ExternKind kind) const
    {
        for (const auto& e : exports) {
            if (e.kind == kind && e.name == name) return &e;
        }
        return nullptr;
    }

    /** Finds an exported function index by name; returns -1 if absent. */
    int32_t findFuncExport(const std::string& name) const
    {
        const ExportDecl* e = findExport(name, ExternKind::Func);
        return e ? static_cast<int32_t>(e->index) : -1;
    }

    /** Registers a function type, deduplicating; returns its index. */
    uint32_t internType(const FuncType& ft)
    {
        for (size_t i = 0; i < types.size(); i++) {
            if (types[i] == ft) return static_cast<uint32_t>(i);
        }
        types.push_back(ft);
        return static_cast<uint32_t>(types.size() - 1);
    }
};

} // namespace wizpp

#endif // WIZPP_WASM_MODULE_H
