/**
 * @file
 * Control-flow side tables.
 *
 * Wasm's structured control flow means branch instructions carry label
 * depths, not jump targets. Following the in-place interpreter design the
 * paper builds on (Titzer, OOPSLA'22), validation precomputes a side table
 * per function mapping each branch site to its resolved target pc and the
 * operand-stack adjustment to perform, so the interpreter never re-scans
 * bytecode to find `end`/`else`, and the JIT tier reuses the same
 * information when resolving decoded jump indices.
 */

#ifndef WIZPP_WASM_SIDETABLE_H
#define WIZPP_WASM_SIDETABLE_H

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace wizpp {

/**
 * Resolved branch information.
 *
 * Taking the branch copies the top @ref valCount operand values down to
 * stack height @ref popTo (relative to the frame's operand-stack base),
 * truncates the stack to popTo + valCount, and continues at
 * @ref targetPc.
 */
struct SideTableEntry
{
    uint32_t targetPc = 0;
    uint32_t valCount = 0;
    uint32_t popTo = 0;
};

/** Per-function control-flow side table, keyed by branch-site pc. */
struct SideTable
{
    /** br / br_if / if(false-edge) / else(skip-edge) entries. */
    std::unordered_map<uint32_t, SideTableEntry> branches;

    /** br_table entries: one per target, default last. */
    std::unordered_map<uint32_t, std::vector<SideTableEntry>> brTables;

    /** pcs of `loop` headers (used by monitors and tier-up heuristics). */
    std::vector<uint32_t> loopHeaders;

    /** pc of every instruction, in order (an instruction boundary map). */
    std::vector<uint32_t> instrBoundaries;

    /** Maximum operand-stack height of the function (frame sizing). */
    uint32_t maxOperandHeight = 0;

    /**
     * Dense per-pc branch slots, built by finalize(): the interpreter's
     * branch handlers index these directly (one array load) instead of
     * hashing into the maps on every executed branch. Entries point
     * into the node-stable unordered_maps above, so they survive moves
     * of the whole SideTable.
     */
    std::vector<const SideTableEntry*> branchSlots;
    std::vector<const std::vector<SideTableEntry>*> brTableSlots;

    /**
     * Builds the dense slots for a function of @p codeSize bytes. The
     * engine calls this once per function after module load; call it
     * again if branches/brTables are mutated afterwards.
     */
    void
    finalize(uint32_t codeSize)
    {
        branchSlots.assign(codeSize, nullptr);
        brTableSlots.assign(codeSize, nullptr);
        for (const auto& [pc, e] : branches) {
            if (pc < codeSize) branchSlots[pc] = &e;
        }
        for (const auto& [pc, v] : brTables) {
            if (pc < codeSize) brTableSlots[pc] = &v;
        }
    }

    /** True if @p pc starts an instruction. */
    bool
    isInstrBoundary(uint32_t pc) const
    {
        auto it = std::lower_bound(instrBoundaries.begin(),
                                   instrBoundaries.end(), pc);
        return it != instrBoundaries.end() && *it == pc;
    }

    const SideTableEntry&
    branchAt(uint32_t pc) const
    {
        if (pc < branchSlots.size() && branchSlots[pc]) {
            return *branchSlots[pc];
        }
        return branches.at(pc);
    }

    const std::vector<SideTableEntry>&
    brTableAt(uint32_t pc) const
    {
        if (pc < brTableSlots.size() && brTableSlots[pc]) {
            return *brTableSlots[pc];
        }
        return brTables.at(pc);
    }

};

} // namespace wizpp

#endif // WIZPP_WASM_SIDETABLE_H
