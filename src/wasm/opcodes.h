/**
 * @file
 * WebAssembly opcode definitions (core spec MVP + sign-extension +
 * saturating truncation), plus the reserved probe opcode used by the
 * interpreter's bytecode-overwriting instrumentation (Section 4.2 of the
 * paper).
 */

#ifndef WIZPP_WASM_OPCODES_H
#define WIZPP_WASM_OPCODES_H

#include <cstdint>

namespace wizpp {

/** Single-byte WebAssembly opcodes. */
enum Opcode : uint8_t {
    OP_UNREACHABLE        = 0x00,
    OP_NOP                = 0x01,
    OP_BLOCK              = 0x02,
    OP_LOOP               = 0x03,
    OP_IF                 = 0x04,
    OP_ELSE               = 0x05,
    OP_END                = 0x0b,
    OP_BR                 = 0x0c,
    OP_BR_IF              = 0x0d,
    OP_BR_TABLE           = 0x0e,
    OP_RETURN             = 0x0f,
    OP_CALL               = 0x10,
    OP_CALL_INDIRECT      = 0x11,

    OP_DROP               = 0x1a,
    OP_SELECT             = 0x1b,

    OP_LOCAL_GET          = 0x20,
    OP_LOCAL_SET          = 0x21,
    OP_LOCAL_TEE          = 0x22,
    OP_GLOBAL_GET         = 0x23,
    OP_GLOBAL_SET         = 0x24,

    OP_I32_LOAD           = 0x28,
    OP_I64_LOAD           = 0x29,
    OP_F32_LOAD           = 0x2a,
    OP_F64_LOAD           = 0x2b,
    OP_I32_LOAD8_S        = 0x2c,
    OP_I32_LOAD8_U        = 0x2d,
    OP_I32_LOAD16_S       = 0x2e,
    OP_I32_LOAD16_U       = 0x2f,
    OP_I64_LOAD8_S        = 0x30,
    OP_I64_LOAD8_U        = 0x31,
    OP_I64_LOAD16_S       = 0x32,
    OP_I64_LOAD16_U       = 0x33,
    OP_I64_LOAD32_S       = 0x34,
    OP_I64_LOAD32_U       = 0x35,
    OP_I32_STORE          = 0x36,
    OP_I64_STORE          = 0x37,
    OP_F32_STORE          = 0x38,
    OP_F64_STORE          = 0x39,
    OP_I32_STORE8         = 0x3a,
    OP_I32_STORE16        = 0x3b,
    OP_I64_STORE8         = 0x3c,
    OP_I64_STORE16        = 0x3d,
    OP_I64_STORE32        = 0x3e,
    OP_MEMORY_SIZE        = 0x3f,
    OP_MEMORY_GROW        = 0x40,

    OP_I32_CONST          = 0x41,
    OP_I64_CONST          = 0x42,
    OP_F32_CONST          = 0x43,
    OP_F64_CONST          = 0x44,

    OP_I32_EQZ            = 0x45,
    OP_I32_EQ             = 0x46,
    OP_I32_NE             = 0x47,
    OP_I32_LT_S           = 0x48,
    OP_I32_LT_U           = 0x49,
    OP_I32_GT_S           = 0x4a,
    OP_I32_GT_U           = 0x4b,
    OP_I32_LE_S           = 0x4c,
    OP_I32_LE_U           = 0x4d,
    OP_I32_GE_S           = 0x4e,
    OP_I32_GE_U           = 0x4f,

    OP_I64_EQZ            = 0x50,
    OP_I64_EQ             = 0x51,
    OP_I64_NE             = 0x52,
    OP_I64_LT_S           = 0x53,
    OP_I64_LT_U           = 0x54,
    OP_I64_GT_S           = 0x55,
    OP_I64_GT_U           = 0x56,
    OP_I64_LE_S           = 0x57,
    OP_I64_LE_U           = 0x58,
    OP_I64_GE_S           = 0x59,
    OP_I64_GE_U           = 0x5a,

    OP_F32_EQ             = 0x5b,
    OP_F32_NE             = 0x5c,
    OP_F32_LT             = 0x5d,
    OP_F32_GT             = 0x5e,
    OP_F32_LE             = 0x5f,
    OP_F32_GE             = 0x60,

    OP_F64_EQ             = 0x61,
    OP_F64_NE             = 0x62,
    OP_F64_LT             = 0x63,
    OP_F64_GT             = 0x64,
    OP_F64_LE             = 0x65,
    OP_F64_GE             = 0x66,

    OP_I32_CLZ            = 0x67,
    OP_I32_CTZ            = 0x68,
    OP_I32_POPCNT         = 0x69,
    OP_I32_ADD            = 0x6a,
    OP_I32_SUB            = 0x6b,
    OP_I32_MUL            = 0x6c,
    OP_I32_DIV_S          = 0x6d,
    OP_I32_DIV_U          = 0x6e,
    OP_I32_REM_S          = 0x6f,
    OP_I32_REM_U          = 0x70,
    OP_I32_AND            = 0x71,
    OP_I32_OR             = 0x72,
    OP_I32_XOR            = 0x73,
    OP_I32_SHL            = 0x74,
    OP_I32_SHR_S          = 0x75,
    OP_I32_SHR_U          = 0x76,
    OP_I32_ROTL           = 0x77,
    OP_I32_ROTR           = 0x78,

    OP_I64_CLZ            = 0x79,
    OP_I64_CTZ            = 0x7a,
    OP_I64_POPCNT         = 0x7b,
    OP_I64_ADD            = 0x7c,
    OP_I64_SUB            = 0x7d,
    OP_I64_MUL            = 0x7e,
    OP_I64_DIV_S          = 0x7f,
    OP_I64_DIV_U          = 0x80,
    OP_I64_REM_S          = 0x81,
    OP_I64_REM_U          = 0x82,
    OP_I64_AND            = 0x83,
    OP_I64_OR             = 0x84,
    OP_I64_XOR            = 0x85,
    OP_I64_SHL            = 0x86,
    OP_I64_SHR_S          = 0x87,
    OP_I64_SHR_U          = 0x88,
    OP_I64_ROTL           = 0x89,
    OP_I64_ROTR           = 0x8a,

    OP_F32_ABS            = 0x8b,
    OP_F32_NEG            = 0x8c,
    OP_F32_CEIL           = 0x8d,
    OP_F32_FLOOR          = 0x8e,
    OP_F32_TRUNC          = 0x8f,
    OP_F32_NEAREST        = 0x90,
    OP_F32_SQRT           = 0x91,
    OP_F32_ADD            = 0x92,
    OP_F32_SUB            = 0x93,
    OP_F32_MUL            = 0x94,
    OP_F32_DIV            = 0x95,
    OP_F32_MIN            = 0x96,
    OP_F32_MAX            = 0x97,
    OP_F32_COPYSIGN       = 0x98,

    OP_F64_ABS            = 0x99,
    OP_F64_NEG            = 0x9a,
    OP_F64_CEIL           = 0x9b,
    OP_F64_FLOOR          = 0x9c,
    OP_F64_TRUNC          = 0x9d,
    OP_F64_NEAREST        = 0x9e,
    OP_F64_SQRT           = 0x9f,
    OP_F64_ADD            = 0xa0,
    OP_F64_SUB            = 0xa1,
    OP_F64_MUL            = 0xa2,
    OP_F64_DIV            = 0xa3,
    OP_F64_MIN            = 0xa4,
    OP_F64_MAX            = 0xa5,
    OP_F64_COPYSIGN       = 0xa6,

    OP_I32_WRAP_I64       = 0xa7,
    OP_I32_TRUNC_F32_S    = 0xa8,
    OP_I32_TRUNC_F32_U    = 0xa9,
    OP_I32_TRUNC_F64_S    = 0xaa,
    OP_I32_TRUNC_F64_U    = 0xab,
    OP_I64_EXTEND_I32_S   = 0xac,
    OP_I64_EXTEND_I32_U   = 0xad,
    OP_I64_TRUNC_F32_S    = 0xae,
    OP_I64_TRUNC_F32_U    = 0xaf,
    OP_I64_TRUNC_F64_S    = 0xb0,
    OP_I64_TRUNC_F64_U    = 0xb1,
    OP_F32_CONVERT_I32_S  = 0xb2,
    OP_F32_CONVERT_I32_U  = 0xb3,
    OP_F32_CONVERT_I64_S  = 0xb4,
    OP_F32_CONVERT_I64_U  = 0xb5,
    OP_F32_DEMOTE_F64     = 0xb6,
    OP_F64_CONVERT_I32_S  = 0xb7,
    OP_F64_CONVERT_I32_U  = 0xb8,
    OP_F64_CONVERT_I64_S  = 0xb9,
    OP_F64_CONVERT_I64_U  = 0xba,
    OP_F64_PROMOTE_F32    = 0xbb,
    OP_I32_REINTERPRET_F32 = 0xbc,
    OP_I64_REINTERPRET_F64 = 0xbd,
    OP_F32_REINTERPRET_I32 = 0xbe,
    OP_F64_REINTERPRET_I64 = 0xbf,

    OP_I32_EXTEND8_S      = 0xc0,
    OP_I32_EXTEND16_S     = 0xc1,
    OP_I64_EXTEND8_S      = 0xc2,
    OP_I64_EXTEND16_S     = 0xc3,
    OP_I64_EXTEND32_S     = 0xc4,

    /** Prefix byte for two-byte opcodes (saturating truncation etc.). */
    OP_PREFIX_FC          = 0xfc,

    /**
     * Reserved probe opcode. Illegal in the binary format; the engine
     * overwrites instrumented locations in its private code copy with
     * this byte (bytecode overwriting, paper Section 4.2).
     */
    OP_PROBE              = 0xe0,
};

/** Second byte of 0xFC-prefixed opcodes. */
enum PrefixFcOp : uint32_t {
    FC_I32_TRUNC_SAT_F32_S = 0,
    FC_I32_TRUNC_SAT_F32_U = 1,
    FC_I32_TRUNC_SAT_F64_S = 2,
    FC_I32_TRUNC_SAT_F64_U = 3,
    FC_I64_TRUNC_SAT_F32_S = 4,
    FC_I64_TRUNC_SAT_F32_U = 5,
    FC_I64_TRUNC_SAT_F64_S = 6,
    FC_I64_TRUNC_SAT_F64_U = 7,
    FC_MEMORY_FILL         = 11,
    FC_MEMORY_COPY         = 10,
};

/** Returns the mnemonic for a single-byte opcode, or "<illegal>". */
const char* opcodeName(uint8_t op);

/** True for instructions that transfer control (br, br_if, br_table, if). */
bool isBranchOpcode(uint8_t op);

/** True for memory load opcodes. */
bool isLoadOpcode(uint8_t op);

/** True for memory store opcodes. */
bool isStoreOpcode(uint8_t op);

/** True for call and call_indirect. */
inline bool
isCallOpcode(uint8_t op)
{
    return op == OP_CALL || op == OP_CALL_INDIRECT;
}

} // namespace wizpp

#endif // WIZPP_WASM_OPCODES_H
