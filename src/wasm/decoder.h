/**
 * @file
 * WebAssembly binary-format decoder (core spec).
 *
 * Decodes a `.wasm` byte vector into a Module. Function bodies are kept
 * as raw instruction bytes (the validator checks them and builds side
 * tables; the engine makes its own mutable copy for bytecode
 * overwriting).
 */

#ifndef WIZPP_WASM_DECODER_H
#define WIZPP_WASM_DECODER_H

#include <cstdint>
#include <vector>

#include "support/result.h"
#include "wasm/module.h"

namespace wizpp {

/** Decodes a binary module. Returns the module or a decode error. */
Result<Module> decodeModule(const std::vector<uint8_t>& bytes);

/**
 * Decodes the immediates of a single instruction starting at
 * `code[pc]` and returns the length in bytes of the whole instruction
 * (opcode + immediates), or 0 if malformed. Used by the rewriting
 * baselines, the probe manager and the disassembler to walk bytecode.
 */
size_t instrLength(const std::vector<uint8_t>& code, size_t pc);

/** Immediate views of a decoded instruction (filled on demand). */
struct InstrView
{
    uint8_t opcode = 0;
    uint32_t prefixOp = 0;     ///< second byte value for 0xFC-prefixed ops
    size_t length = 0;         ///< total instruction length in bytes
    uint32_t index = 0;        ///< local/global/func/type/label index
    uint32_t align = 0;        ///< memarg alignment
    uint32_t memOffset = 0;    ///< memarg offset
    int64_t i64Const = 0;      ///< i32/i64 constant payload
    uint64_t fBits = 0;        ///< f32/f64 constant raw bits
    std::vector<uint32_t> brTable;  ///< br_table targets (incl. default last)
};

/**
 * Decodes the instruction at `code[pc]` into an InstrView.
 * Returns false if the bytes are malformed.
 */
bool decodeInstr(const std::vector<uint8_t>& code, size_t pc, InstrView* out);

} // namespace wizpp

#endif // WIZPP_WASM_DECODER_H
