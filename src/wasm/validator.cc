#include "wasm/validator.h"

#include <algorithm>
#include <string>

#include "wasm/decoder.h"
#include "wasm/opcodes.h"

namespace wizpp {

namespace {

/** Value-stack entry: a concrete type or the polymorphic Unknown. */
enum class VT : uint8_t { I32, I64, F32, F64, FuncRef, Unknown };

VT
fromValType(ValType t)
{
    switch (t) {
      case ValType::I32: return VT::I32;
      case ValType::I64: return VT::I64;
      case ValType::F32: return VT::F32;
      case ValType::F64: return VT::F64;
      case ValType::FuncRef: return VT::FuncRef;
      default: return VT::Unknown;
    }
}

const char*
vtName(VT t)
{
    switch (t) {
      case VT::I32: return "i32";
      case VT::I64: return "i64";
      case VT::F32: return "f32";
      case VT::F64: return "f64";
      case VT::FuncRef: return "funcref";
      case VT::Unknown: return "unknown";
    }
    return "?";
}

/** A control frame on the validator's control stack. */
struct Ctrl
{
    uint8_t opcode;          ///< OP_BLOCK/OP_LOOP/OP_IF/OP_ELSE, or 0=func
    ValType resultType;      ///< Void or a single result
    uint32_t height;         ///< value-stack height at entry
    bool unreachable = false;
    uint32_t loopTargetPc = 0;  ///< branch target for loops
    uint32_t ifPc = 0;          ///< pc of `if`, for the false-edge fixup
    bool sawElse = false;
    /** Branch sites whose target is this frame's `end` (pc, br_table slot
     *  or -1 for scalar branch sites). */
    std::vector<std::pair<uint32_t, int>> endFixups;
};

class FuncValidator
{
  public:
    FuncValidator(const Module& m, const FuncDecl& f)
        : _m(m), _f(f), _sig(m.types[f.typeIndex])
    {
        for (ValType t : _sig.params) _locals.push_back(t);
        for (ValType t : f.locals) _locals.push_back(t);
    }

    Result<SideTable>
    run()
    {
        const auto& code = _f.code;
        // Function-level implicit block.
        Ctrl func{};
        func.opcode = 0;
        func.resultType = _sig.results.empty() ? ValType::Void
                                               : _sig.results[0];
        func.height = 0;
        _ctrls.push_back(func);

        size_t pc = 0;
        while (pc < code.size() && !_failed) {
            _table.instrBoundaries.push_back(static_cast<uint32_t>(pc));
            InstrView v;
            if (!decodeInstr(code, pc, &v)) {
                fail(pc, "malformed instruction");
                break;
            }
            check(pc, v);
            pc += v.length;
        }
        if (_failed) return _error;
        if (!_ctrls.empty()) {
            return Error{"unterminated control structure", code.size()};
        }
        if (pc != code.size()) {
            return Error{"trailing bytes after final end", pc};
        }
        return std::move(_table);
    }

  private:
    void
    fail(size_t pc, const std::string& msg)
    {
        if (!_failed) {
            _failed = true;
            _error = {"func #" + std::to_string(_f.index) + ": " + msg, pc};
        }
    }

    Ctrl& top() { return _ctrls.back(); }

    uint32_t height() const { return static_cast<uint32_t>(_vals.size()); }

    void
    push(VT t)
    {
        _vals.push_back(t);
        if (_vals.size() > _table.maxOperandHeight) {
            _table.maxOperandHeight = static_cast<uint32_t>(_vals.size());
        }
    }
    void push(ValType t) { push(fromValType(t)); }

    VT
    pop(size_t pc)
    {
        if (_ctrls.empty()) return VT::Unknown;
        Ctrl& c = top();
        if (height() == c.height) {
            if (c.unreachable) return VT::Unknown;
            fail(pc, "value stack underflow");
            return VT::Unknown;
        }
        VT t = _vals.back();
        _vals.pop_back();
        return t;
    }

    VT
    popExpect(size_t pc, VT expect)
    {
        VT got = pop(pc);
        if (got != expect && got != VT::Unknown && expect != VT::Unknown) {
            fail(pc, std::string("type mismatch: expected ") +
                     vtName(expect) + ", got " + vtName(got));
        }
        return got == VT::Unknown ? expect : got;
    }

    void popExpect(size_t pc, ValType t) { popExpect(pc, fromValType(t)); }

    void
    setUnreachable()
    {
        Ctrl& c = top();
        _vals.resize(c.height);
        c.unreachable = true;
    }

    /** Arity (0 or 1) carried by a branch to control frame @p c. */
    uint32_t
    labelArity(const Ctrl& c) const
    {
        if (c.opcode == OP_LOOP) return 0;  // loop labels target the header
        return c.resultType == ValType::Void ? 0 : 1;
    }

    ValType
    labelType(const Ctrl& c) const
    {
        if (c.opcode == OP_LOOP) return ValType::Void;
        return c.resultType;
    }

    /** Registers a branch at @p pc targeting label depth @p depth. */
    void
    recordBranch(size_t pc, uint32_t depth, int tableSlot)
    {
        if (depth >= _ctrls.size()) {
            fail(pc, "branch label out of range");
            return;
        }
        Ctrl& c = _ctrls[_ctrls.size() - 1 - depth];
        uint32_t arity = labelArity(c);
        uint32_t popTo = std::min(c.height, height() >= arity
                                                ? height() - arity
                                                : c.height);
        if (c.opcode == OP_LOOP) {
            addEntry(pc, tableSlot,
                     {c.loopTargetPc, arity, std::min(c.height, popTo)});
        } else {
            // Target pc is unknown until this frame's `end`; fix up later,
            // but record stack adjustment now.
            addEntry(pc, tableSlot, {0, arity, std::min(c.height, popTo)});
            c.endFixups.push_back({static_cast<uint32_t>(pc), tableSlot});
        }
        // Type-check the carried values (without consuming them).
        if (arity == 1 && !top().unreachable) {
            if (height() == 0 ||
                (height() > 0 && _vals.back() != VT::Unknown &&
                 _vals.back() != fromValType(labelType(c)))) {
                fail(pc, "branch value type mismatch");
            }
        }
    }

    void
    addEntry(size_t pc, int tableSlot, SideTableEntry e)
    {
        if (tableSlot < 0) {
            _table.branches[static_cast<uint32_t>(pc)] = e;
        } else {
            auto& vec = _table.brTables[static_cast<uint32_t>(pc)];
            if (vec.size() <= static_cast<size_t>(tableSlot)) {
                vec.resize(tableSlot + 1);
            }
            vec[tableSlot] = e;
        }
    }

    void
    patchEntry(uint32_t pc, int tableSlot, uint32_t targetPc)
    {
        if (tableSlot < 0) {
            _table.branches[pc].targetPc = targetPc;
        } else {
            _table.brTables[pc][tableSlot].targetPc = targetPc;
        }
    }

    void
    checkMemory(size_t pc)
    {
        if (_m.memories.empty()) fail(pc, "no memory declared");
    }

    void
    checkAlign(size_t pc, uint32_t align, uint32_t naturalLog2)
    {
        if (align > naturalLog2) fail(pc, "alignment too large");
    }

    void check(size_t pc, const InstrView& v);

    const Module& _m;
    const FuncDecl& _f;
    const FuncType& _sig;
    std::vector<ValType> _locals;
    std::vector<VT> _vals;
    std::vector<Ctrl> _ctrls;
    SideTable _table;
    bool _failed = false;
    Error _error;
};

void
FuncValidator::check(size_t pc, const InstrView& v)
{
    const auto& code = _f.code;
    switch (v.opcode) {
      case OP_UNREACHABLE:
        setUnreachable();
        break;
      case OP_NOP:
        break;

      case OP_BLOCK:
      case OP_LOOP:
      case OP_IF: {
        ValType bt = static_cast<ValType>(v.index);
        if (v.opcode == OP_IF) popExpect(pc, VT::I32);
        Ctrl c{};
        c.opcode = v.opcode;
        c.resultType = bt;
        c.height = height();
        if (v.opcode == OP_LOOP) {
            c.loopTargetPc = static_cast<uint32_t>(pc + v.length);
            _table.loopHeaders.push_back(c.loopTargetPc);
        }
        if (v.opcode == OP_IF) {
            c.ifPc = static_cast<uint32_t>(pc);
            // False edge: target patched at `else` or `end`.
            addEntry(pc, -1, {0, 0, c.height});
        }
        _ctrls.push_back(c);
        break;
      }

      case OP_ELSE: {
        if (_ctrls.size() < 2 || top().opcode != OP_IF) {
            fail(pc, "else without if");
            break;
        }
        Ctrl& c = top();
        // Check then-branch produced the result.
        if (!c.unreachable) {
            if (c.resultType != ValType::Void) {
                popExpect(pc, c.resultType);
            }
            if (height() != c.height) {
                fail(pc, "unbalanced then-branch");
            }
        }
        // Runtime: falling into `else` from the then-branch jumps to end.
        addEntry(pc, -1, {0, labelArity(c), c.height});
        c.endFixups.push_back({static_cast<uint32_t>(pc), -1});
        // Patch the if's false edge to the instruction after `else`.
        patchEntry(c.ifPc, -1, static_cast<uint32_t>(pc + v.length));
        c.sawElse = true;
        c.unreachable = false;
        _vals.resize(c.height);
        c.opcode = OP_ELSE;
        break;
      }

      case OP_END: {
        if (_ctrls.empty()) {
            fail(pc, "end without block");
            break;
        }
        Ctrl c = top();
        if (!c.unreachable) {
            if (c.resultType != ValType::Void) {
                popExpect(pc, c.resultType);
            }
            if (height() != c.height) {
                fail(pc, "unbalanced block at end");
            }
        }
        // An `if` with a result type but no else is invalid.
        if (c.opcode == OP_IF && c.resultType != ValType::Void) {
            fail(pc, "if with result type requires else");
        }
        // Patch a bare if's false edge to just after `end`.
        if (c.opcode == OP_IF) {
            patchEntry(c.ifPc, -1, static_cast<uint32_t>(pc + v.length));
        }
        // Patch all branches targeting this frame's end.
        uint32_t target = (_ctrls.size() == 1)
                              ? static_cast<uint32_t>(pc)  // function end
                              : static_cast<uint32_t>(pc + v.length);
        for (auto [bpc, slot] : c.endFixups) {
            patchEntry(bpc, slot, target);
        }
        _ctrls.pop_back();
        _vals.resize(c.height);
        if (c.resultType != ValType::Void) push(c.resultType);
        if (_ctrls.empty()) {
            // Function end: result already checked above against the
            // implicit frame's result type.
            if (pc + v.length != code.size()) {
                fail(pc, "code after function end");
            }
        }
        break;
      }

      case OP_BR: {
        recordBranch(pc, v.index, -1);
        setUnreachable();
        break;
      }
      case OP_BR_IF: {
        popExpect(pc, VT::I32);
        recordBranch(pc, v.index, -1);
        break;
      }
      case OP_BR_TABLE: {
        popExpect(pc, VT::I32);
        for (size_t i = 0; i < v.brTable.size(); i++) {
            recordBranch(pc, v.brTable[i], static_cast<int>(i));
        }
        setUnreachable();
        break;
      }
      case OP_RETURN: {
        if (!_sig.results.empty()) popExpect(pc, _sig.results[0]);
        setUnreachable();
        break;
      }

      case OP_CALL: {
        if (v.index >= _m.functions.size()) {
            fail(pc, "call to undefined function");
            break;
        }
        const FuncType& ft = _m.funcType(v.index);
        for (auto it = ft.params.rbegin(); it != ft.params.rend(); ++it) {
            popExpect(pc, *it);
        }
        for (ValType t : ft.results) push(t);
        break;
      }
      case OP_CALL_INDIRECT: {
        if (_m.tables.empty()) {
            fail(pc, "call_indirect without table");
            break;
        }
        if (v.index >= _m.types.size()) {
            fail(pc, "call_indirect type out of range");
            break;
        }
        popExpect(pc, VT::I32);
        const FuncType& ft = _m.types[v.index];
        for (auto it = ft.params.rbegin(); it != ft.params.rend(); ++it) {
            popExpect(pc, *it);
        }
        for (ValType t : ft.results) push(t);
        break;
      }

      case OP_DROP:
        pop(pc);
        break;
      case OP_SELECT: {
        popExpect(pc, VT::I32);
        VT a = pop(pc);
        VT b = pop(pc);
        if (a != b && a != VT::Unknown && b != VT::Unknown) {
            fail(pc, "select operand types differ");
        }
        push(a == VT::Unknown ? b : a);
        break;
      }

      case OP_LOCAL_GET:
        if (v.index >= _locals.size()) {
            fail(pc, "local index out of range");
            break;
        }
        push(_locals[v.index]);
        break;
      case OP_LOCAL_SET:
        if (v.index >= _locals.size()) {
            fail(pc, "local index out of range");
            break;
        }
        popExpect(pc, _locals[v.index]);
        break;
      case OP_LOCAL_TEE:
        if (v.index >= _locals.size()) {
            fail(pc, "local index out of range");
            break;
        }
        popExpect(pc, _locals[v.index]);
        push(_locals[v.index]);
        break;
      case OP_GLOBAL_GET:
        if (v.index >= _m.globals.size()) {
            fail(pc, "global index out of range");
            break;
        }
        push(_m.globals[v.index].type);
        break;
      case OP_GLOBAL_SET:
        if (v.index >= _m.globals.size()) {
            fail(pc, "global index out of range");
            break;
        }
        if (!_m.globals[v.index].mut) fail(pc, "global is immutable");
        popExpect(pc, _m.globals[v.index].type);
        break;

      case OP_I32_CONST: push(VT::I32); break;
      case OP_I64_CONST: push(VT::I64); break;
      case OP_F32_CONST: push(VT::F32); break;
      case OP_F64_CONST: push(VT::F64); break;

      case OP_MEMORY_SIZE:
        checkMemory(pc);
        push(VT::I32);
        break;
      case OP_MEMORY_GROW:
        checkMemory(pc);
        popExpect(pc, VT::I32);
        push(VT::I32);
        break;

      case OP_PREFIX_FC: {
        switch (v.prefixOp) {
          case FC_I32_TRUNC_SAT_F32_S:
          case FC_I32_TRUNC_SAT_F32_U:
            popExpect(pc, VT::F32);
            push(VT::I32);
            break;
          case FC_I32_TRUNC_SAT_F64_S:
          case FC_I32_TRUNC_SAT_F64_U:
            popExpect(pc, VT::F64);
            push(VT::I32);
            break;
          case FC_I64_TRUNC_SAT_F32_S:
          case FC_I64_TRUNC_SAT_F32_U:
            popExpect(pc, VT::F32);
            push(VT::I64);
            break;
          case FC_I64_TRUNC_SAT_F64_S:
          case FC_I64_TRUNC_SAT_F64_U:
            popExpect(pc, VT::F64);
            push(VT::I64);
            break;
          case FC_MEMORY_FILL:
          case FC_MEMORY_COPY:
            checkMemory(pc);
            popExpect(pc, VT::I32);
            popExpect(pc, VT::I32);
            popExpect(pc, VT::I32);
            break;
          default:
            fail(pc, "unsupported 0xfc opcode");
        }
        break;
      }

      default: {
        uint8_t op = v.opcode;
        // Memory accesses.
        if (isLoadOpcode(op) || isStoreOpcode(op)) {
            checkMemory(pc);
            static const struct { uint8_t op; VT type; uint32_t logSize; }
            memOps[] = {
                {OP_I32_LOAD, VT::I32, 2},    {OP_I64_LOAD, VT::I64, 3},
                {OP_F32_LOAD, VT::F32, 2},    {OP_F64_LOAD, VT::F64, 3},
                {OP_I32_LOAD8_S, VT::I32, 0}, {OP_I32_LOAD8_U, VT::I32, 0},
                {OP_I32_LOAD16_S, VT::I32, 1},{OP_I32_LOAD16_U, VT::I32, 1},
                {OP_I64_LOAD8_S, VT::I64, 0}, {OP_I64_LOAD8_U, VT::I64, 0},
                {OP_I64_LOAD16_S, VT::I64, 1},{OP_I64_LOAD16_U, VT::I64, 1},
                {OP_I64_LOAD32_S, VT::I64, 2},{OP_I64_LOAD32_U, VT::I64, 2},
                {OP_I32_STORE, VT::I32, 2},   {OP_I64_STORE, VT::I64, 3},
                {OP_F32_STORE, VT::F32, 2},   {OP_F64_STORE, VT::F64, 3},
                {OP_I32_STORE8, VT::I32, 0},  {OP_I32_STORE16, VT::I32, 1},
                {OP_I64_STORE8, VT::I64, 0},  {OP_I64_STORE16, VT::I64, 1},
                {OP_I64_STORE32, VT::I64, 2},
            };
            for (const auto& mo : memOps) {
                if (mo.op != op) continue;
                checkAlign(pc, v.align, mo.logSize);
                if (isStoreOpcode(op)) {
                    popExpect(pc, mo.type);
                    popExpect(pc, VT::I32);
                } else {
                    popExpect(pc, VT::I32);
                    push(mo.type);
                }
                return;
            }
            fail(pc, "unhandled memory opcode");
            return;
        }
        // Numeric operations, grouped by opcode range.
        auto unop = [&](VT t) { popExpect(pc, t); push(t); };
        auto binop = [&](VT t) { popExpect(pc, t); popExpect(pc, t);
                                 push(t); };
        auto relop = [&](VT t) { popExpect(pc, t); popExpect(pc, t);
                                 push(VT::I32); };
        auto cvt = [&](VT from, VT to) { popExpect(pc, from); push(to); };

        if (op == OP_I32_EQZ) { popExpect(pc, VT::I32); push(VT::I32); }
        else if (op >= OP_I32_EQ && op <= OP_I32_GE_U) relop(VT::I32);
        else if (op == OP_I64_EQZ) { popExpect(pc, VT::I64); push(VT::I32); }
        else if (op >= OP_I64_EQ && op <= OP_I64_GE_U) relop(VT::I64);
        else if (op >= OP_F32_EQ && op <= OP_F32_GE) relop(VT::F32);
        else if (op >= OP_F64_EQ && op <= OP_F64_GE) relop(VT::F64);
        else if (op >= OP_I32_CLZ && op <= OP_I32_POPCNT) unop(VT::I32);
        else if (op >= OP_I32_ADD && op <= OP_I32_ROTR) binop(VT::I32);
        else if (op >= OP_I64_CLZ && op <= OP_I64_POPCNT) unop(VT::I64);
        else if (op >= OP_I64_ADD && op <= OP_I64_ROTR) binop(VT::I64);
        else if (op >= OP_F32_ABS && op <= OP_F32_SQRT) unop(VT::F32);
        else if (op >= OP_F32_ADD && op <= OP_F32_COPYSIGN) binop(VT::F32);
        else if (op >= OP_F64_ABS && op <= OP_F64_SQRT) unop(VT::F64);
        else if (op >= OP_F64_ADD && op <= OP_F64_COPYSIGN) binop(VT::F64);
        else if (op == OP_I32_WRAP_I64) cvt(VT::I64, VT::I32);
        else if (op == OP_I32_TRUNC_F32_S || op == OP_I32_TRUNC_F32_U)
            cvt(VT::F32, VT::I32);
        else if (op == OP_I32_TRUNC_F64_S || op == OP_I32_TRUNC_F64_U)
            cvt(VT::F64, VT::I32);
        else if (op == OP_I64_EXTEND_I32_S || op == OP_I64_EXTEND_I32_U)
            cvt(VT::I32, VT::I64);
        else if (op == OP_I64_TRUNC_F32_S || op == OP_I64_TRUNC_F32_U)
            cvt(VT::F32, VT::I64);
        else if (op == OP_I64_TRUNC_F64_S || op == OP_I64_TRUNC_F64_U)
            cvt(VT::F64, VT::I64);
        else if (op == OP_F32_CONVERT_I32_S || op == OP_F32_CONVERT_I32_U)
            cvt(VT::I32, VT::F32);
        else if (op == OP_F32_CONVERT_I64_S || op == OP_F32_CONVERT_I64_U)
            cvt(VT::I64, VT::F32);
        else if (op == OP_F32_DEMOTE_F64) cvt(VT::F64, VT::F32);
        else if (op == OP_F64_CONVERT_I32_S || op == OP_F64_CONVERT_I32_U)
            cvt(VT::I32, VT::F64);
        else if (op == OP_F64_CONVERT_I64_S || op == OP_F64_CONVERT_I64_U)
            cvt(VT::I64, VT::F64);
        else if (op == OP_F64_PROMOTE_F32) cvt(VT::F32, VT::F64);
        else if (op == OP_I32_REINTERPRET_F32) cvt(VT::F32, VT::I32);
        else if (op == OP_I64_REINTERPRET_F64) cvt(VT::F64, VT::I64);
        else if (op == OP_F32_REINTERPRET_I32) cvt(VT::I32, VT::F32);
        else if (op == OP_F64_REINTERPRET_I64) cvt(VT::I64, VT::F64);
        else if (op == OP_I32_EXTEND8_S || op == OP_I32_EXTEND16_S)
            unop(VT::I32);
        else if (op >= OP_I64_EXTEND8_S && op <= OP_I64_EXTEND32_S)
            unop(VT::I64);
        else fail(pc, std::string("illegal opcode ") + opcodeName(op));
        break;
      }
    }
}

} // namespace

Result<SideTable>
validateFunction(const Module& m, uint32_t funcIndex)
{
    if (funcIndex >= m.functions.size()) {
        return Error{"function index out of range", 0};
    }
    const FuncDecl& f = m.functions[funcIndex];
    if (f.imported) return SideTable{};
    if (f.typeIndex >= m.types.size()) {
        return Error{"function type index out of range", 0};
    }
    if (!m.types[f.typeIndex].results.empty() &&
        m.types[f.typeIndex].results.size() > 1) {
        return Error{"multi-value results not supported", 0};
    }
    FuncValidator fv(m, f);
    return fv.run();
}

Result<ValidationInfo>
validateModule(const Module& m)
{
    ValidationInfo info;

    if (m.memories.size() > 1) return Error{"at most one memory", 0};
    if (m.tables.size() > 1) return Error{"at most one table", 0};

    for (const auto& f : m.functions) {
        if (f.typeIndex >= m.types.size()) {
            return Error{"function type index out of range", f.index};
        }
    }
    for (const auto& g : m.globals) {
        if (g.imported) continue;
        switch (g.init.kind) {
          case InitExpr::Kind::I32Const:
            if (g.type != ValType::I32) {
                return Error{"global init type mismatch", 0};
            }
            break;
          case InitExpr::Kind::I64Const:
            if (g.type != ValType::I64) {
                return Error{"global init type mismatch", 0};
            }
            break;
          case InitExpr::Kind::F32Const:
            if (g.type != ValType::F32) {
                return Error{"global init type mismatch", 0};
            }
            break;
          case InitExpr::Kind::F64Const:
            if (g.type != ValType::F64) {
                return Error{"global init type mismatch", 0};
            }
            break;
          case InitExpr::Kind::GlobalGet:
            if (g.init.index >= m.globals.size() ||
                !m.globals[g.init.index].imported) {
                return Error{"global init references invalid global", 0};
            }
            break;
          default:
            break;
        }
    }
    for (const auto& e : m.exports) {
        size_t limit = 0;
        switch (e.kind) {
          case ExternKind::Func: limit = m.functions.size(); break;
          case ExternKind::Table: limit = m.tables.size(); break;
          case ExternKind::Memory: limit = m.memories.size(); break;
          case ExternKind::Global: limit = m.globals.size(); break;
        }
        if (e.index >= limit) return Error{"export index out of range", 0};
    }
    if (m.start) {
        if (*m.start >= m.functions.size()) {
            return Error{"start function out of range", 0};
        }
        const FuncType& ft = m.funcType(*m.start);
        if (!ft.params.empty() || !ft.results.empty()) {
            return Error{"start function must be [] -> []", 0};
        }
    }
    for (const auto& seg : m.elems) {
        if (seg.tableIndex >= m.tables.size()) {
            return Error{"element segment table out of range", 0};
        }
        for (uint32_t idx : seg.funcIndices) {
            if (idx >= m.functions.size()) {
                return Error{"element segment function out of range", 0};
            }
        }
    }
    for (const auto& seg : m.datas) {
        if (seg.memIndex >= m.memories.size()) {
            return Error{"data segment memory out of range", 0};
        }
    }

    for (const auto& f : m.functions) {
        if (f.imported) {
            info.sideTables.emplace_back();
            info.maxOperandStack.push_back(0);
            continue;
        }
        auto r = validateFunction(m, f.index);
        if (!r.ok()) return r.error();
        info.maxOperandStack.push_back(r.value().maxOperandHeight);
        info.sideTables.push_back(r.take());
    }
    return info;
}

Result<std::shared_ptr<const ValidatedModule>>
ValidatedModule::create(Module m)
{
    auto vr = validateModule(m);
    if (!vr.ok()) return vr.error();
    auto vm = std::make_shared<ValidatedModule>();
    vm->module = std::move(m);
    vm->info = vr.take();
    return std::shared_ptr<const ValidatedModule>(std::move(vm));
}

} // namespace wizpp
