#include "wasm/decoder.h"

#include <cstring>

#include "support/leb128.h"
#include "wasm/opcodes.h"

namespace wizpp {

namespace {

/** Section ids in the binary format. */
enum SectionId : uint8_t {
    SEC_CUSTOM = 0,
    SEC_TYPE = 1,
    SEC_IMPORT = 2,
    SEC_FUNCTION = 3,
    SEC_TABLE = 4,
    SEC_MEMORY = 5,
    SEC_GLOBAL = 6,
    SEC_EXPORT = 7,
    SEC_START = 8,
    SEC_ELEMENT = 9,
    SEC_CODE = 10,
    SEC_DATA = 11,
};

/** Stateful cursor over the module bytes with error reporting. */
class Cursor
{
  public:
    Cursor(const uint8_t* data, size_t size) : _data(data), _size(size) {}

    size_t pos() const { return _pos; }
    bool atEnd() const { return _pos >= _size; }
    bool failed() const { return _failed; }
    const Error& error() const { return _error; }

    void
    fail(const std::string& msg)
    {
        if (!_failed) {
            _failed = true;
            _error = {msg, _pos};
        }
    }

    uint8_t
    readByte()
    {
        if (_pos >= _size) {
            fail("unexpected end of input");
            return 0;
        }
        return _data[_pos++];
    }

    uint32_t
    readU32()
    {
        auto r = decodeULEB<uint32_t>(_data + _pos, _data + _size);
        if (!r.ok()) {
            fail("malformed u32 LEB");
            return 0;
        }
        _pos += r.length;
        return r.value;
    }

    int32_t
    readI32()
    {
        auto r = decodeSLEB<int32_t>(_data + _pos, _data + _size);
        if (!r.ok()) {
            fail("malformed i32 LEB");
            return 0;
        }
        _pos += r.length;
        return r.value;
    }

    int64_t
    readI64()
    {
        auto r = decodeSLEB<int64_t>(_data + _pos, _data + _size);
        if (!r.ok()) {
            fail("malformed i64 LEB");
            return 0;
        }
        _pos += r.length;
        return r.value;
    }

    uint32_t
    readF32Bits()
    {
        if (_pos + 4 > _size) {
            fail("truncated f32");
            return 0;
        }
        uint32_t v;
        std::memcpy(&v, _data + _pos, 4);
        _pos += 4;
        return v;
    }

    uint64_t
    readF64Bits()
    {
        if (_pos + 8 > _size) {
            fail("truncated f64");
            return 0;
        }
        uint64_t v;
        std::memcpy(&v, _data + _pos, 8);
        _pos += 8;
        return v;
    }

    std::string
    readName()
    {
        uint32_t len = readU32();
        if (_failed || _pos + len > _size) {
            fail("truncated name");
            return "";
        }
        std::string s(reinterpret_cast<const char*>(_data + _pos), len);
        _pos += len;
        return s;
    }

    std::vector<uint8_t>
    readBytes(size_t n)
    {
        if (_pos + n > _size) {
            fail("truncated byte range");
            return {};
        }
        std::vector<uint8_t> v(_data + _pos, _data + _pos + n);
        _pos += n;
        return v;
    }

    ValType
    readValType()
    {
        uint8_t b = readByte();
        if (!isValType(b)) {
            fail("invalid value type byte");
            return ValType::I32;
        }
        return static_cast<ValType>(b);
    }

    Limits
    readLimits()
    {
        Limits lim;
        uint8_t flags = readByte();
        lim.min = readU32();
        if (flags & 1) {
            lim.hasMax = true;
            lim.max = readU32();
            if (lim.max < lim.min) fail("limits max < min");
        }
        return lim;
    }

    InitExpr
    readInitExpr()
    {
        InitExpr e;
        uint8_t op = readByte();
        switch (op) {
          case OP_I32_CONST:
            e.kind = InitExpr::Kind::I32Const;
            e.bits = static_cast<uint32_t>(readI32());
            break;
          case OP_I64_CONST:
            e.kind = InitExpr::Kind::I64Const;
            e.bits = static_cast<uint64_t>(readI64());
            break;
          case OP_F32_CONST:
            e.kind = InitExpr::Kind::F32Const;
            e.bits = readF32Bits();
            break;
          case OP_F64_CONST:
            e.kind = InitExpr::Kind::F64Const;
            e.bits = readF64Bits();
            break;
          case OP_GLOBAL_GET:
            e.kind = InitExpr::Kind::GlobalGet;
            e.index = readU32();
            break;
          default:
            fail("unsupported init expression opcode");
            return e;
        }
        if (readByte() != OP_END) fail("init expression missing end");
        return e;
    }

  private:
    const uint8_t* _data;
    size_t _size;
    size_t _pos = 0;
    bool _failed = false;
    Error _error;
};

/** Decodes the "name" custom section to attach debug names. */
void
decodeNameSection(Cursor& c, size_t end, Module& m)
{
    while (!c.failed() && c.pos() < end) {
        uint8_t subId = c.readByte();
        uint32_t subLen = c.readU32();
        size_t subEnd = c.pos() + subLen;
        if (subId == 1) {  // function names
            uint32_t count = c.readU32();
            for (uint32_t i = 0; i < count && !c.failed(); i++) {
                uint32_t idx = c.readU32();
                std::string name = c.readName();
                if (idx < m.functions.size()) m.functions[idx].name = name;
            }
        }
        if (subEnd > end) return;
        while (c.pos() < subEnd && !c.failed()) c.readByte();
    }
}

} // namespace

Result<Module>
decodeModule(const std::vector<uint8_t>& bytes)
{
    Cursor c(bytes.data(), bytes.size());
    Module m;

    if (c.readByte() != 0x00 || c.readByte() != 'a' || c.readByte() != 's' ||
        c.readByte() != 'm') {
        return Error{"bad magic number", 0};
    }
    uint32_t version = 0;
    for (int i = 0; i < 4; i++) version |= c.readByte() << (i * 8);
    if (version != 1) return Error{"unsupported version", 4};

    std::vector<uint32_t> funcTypeIndices;  // from the function section
    int lastSection = -1;

    while (!c.atEnd() && !c.failed()) {
        uint8_t id = c.readByte();
        uint32_t size = c.readU32();
        size_t end = c.pos() + size;
        if (end > bytes.size()) {
            c.fail("section extends past end of module");
            break;
        }
        if (id != SEC_CUSTOM) {
            if (static_cast<int>(id) <= lastSection) {
                c.fail("out-of-order section");
                break;
            }
            lastSection = id;
        }

        switch (id) {
          case SEC_CUSTOM: {
            std::string name = c.readName();
            if (name == "name") {
                decodeNameSection(c, end, m);
            }
            break;
          }
          case SEC_TYPE: {
            uint32_t count = c.readU32();
            for (uint32_t i = 0; i < count && !c.failed(); i++) {
                if (c.readByte() != 0x60) {
                    c.fail("expected func type (0x60)");
                    break;
                }
                FuncType ft;
                uint32_t np = c.readU32();
                for (uint32_t j = 0; j < np && !c.failed(); j++) {
                    ft.params.push_back(c.readValType());
                }
                uint32_t nr = c.readU32();
                for (uint32_t j = 0; j < nr && !c.failed(); j++) {
                    ft.results.push_back(c.readValType());
                }
                m.types.push_back(std::move(ft));
            }
            break;
          }
          case SEC_IMPORT: {
            uint32_t count = c.readU32();
            for (uint32_t i = 0; i < count && !c.failed(); i++) {
                std::string mod = c.readName();
                std::string name = c.readName();
                uint8_t kind = c.readByte();
                switch (static_cast<ExternKind>(kind)) {
                  case ExternKind::Func: {
                    FuncDecl f;
                    f.index = static_cast<uint32_t>(m.functions.size());
                    f.typeIndex = c.readU32();
                    f.imported = true;
                    f.importModule = mod;
                    f.importName = name;
                    m.functions.push_back(std::move(f));
                    break;
                  }
                  case ExternKind::Table: {
                    TableDecl t;
                    uint8_t et = c.readByte();
                    if (et != 0x70) c.fail("table elem type must be funcref");
                    t.limits = c.readLimits();
                    t.imported = true;
                    t.importModule = mod;
                    t.importName = name;
                    m.tables.push_back(std::move(t));
                    break;
                  }
                  case ExternKind::Memory: {
                    MemoryDecl md;
                    md.limits = c.readLimits();
                    md.imported = true;
                    md.importModule = mod;
                    md.importName = name;
                    m.memories.push_back(std::move(md));
                    break;
                  }
                  case ExternKind::Global: {
                    GlobalDecl g;
                    g.type = c.readValType();
                    g.mut = c.readByte() != 0;
                    g.imported = true;
                    g.importModule = mod;
                    g.importName = name;
                    m.globals.push_back(std::move(g));
                    break;
                  }
                  default:
                    c.fail("invalid import kind");
                }
            }
            break;
          }
          case SEC_FUNCTION: {
            uint32_t count = c.readU32();
            for (uint32_t i = 0; i < count && !c.failed(); i++) {
                funcTypeIndices.push_back(c.readU32());
            }
            break;
          }
          case SEC_TABLE: {
            uint32_t count = c.readU32();
            for (uint32_t i = 0; i < count && !c.failed(); i++) {
                TableDecl t;
                uint8_t et = c.readByte();
                if (et != 0x70) c.fail("table elem type must be funcref");
                t.limits = c.readLimits();
                m.tables.push_back(std::move(t));
            }
            break;
          }
          case SEC_MEMORY: {
            uint32_t count = c.readU32();
            for (uint32_t i = 0; i < count && !c.failed(); i++) {
                MemoryDecl md;
                md.limits = c.readLimits();
                m.memories.push_back(std::move(md));
            }
            break;
          }
          case SEC_GLOBAL: {
            uint32_t count = c.readU32();
            for (uint32_t i = 0; i < count && !c.failed(); i++) {
                GlobalDecl g;
                g.type = c.readValType();
                g.mut = c.readByte() != 0;
                g.init = c.readInitExpr();
                m.globals.push_back(std::move(g));
            }
            break;
          }
          case SEC_EXPORT: {
            uint32_t count = c.readU32();
            for (uint32_t i = 0; i < count && !c.failed(); i++) {
                ExportDecl e;
                e.name = c.readName();
                e.kind = static_cast<ExternKind>(c.readByte());
                e.index = c.readU32();
                m.exports.push_back(std::move(e));
            }
            break;
          }
          case SEC_START: {
            m.start = c.readU32();
            break;
          }
          case SEC_ELEMENT: {
            uint32_t count = c.readU32();
            for (uint32_t i = 0; i < count && !c.failed(); i++) {
                ElemSegment seg;
                uint32_t flags = c.readU32();
                if (flags != 0) {
                    c.fail("only active funcref element segments supported");
                    break;
                }
                seg.tableIndex = 0;
                seg.offset = c.readInitExpr();
                uint32_t n = c.readU32();
                for (uint32_t j = 0; j < n && !c.failed(); j++) {
                    seg.funcIndices.push_back(c.readU32());
                }
                m.elems.push_back(std::move(seg));
            }
            break;
          }
          case SEC_CODE: {
            uint32_t count = c.readU32();
            uint32_t numImports = m.numImportedFuncs();
            if (count != funcTypeIndices.size()) {
                c.fail("code count != function count");
                break;
            }
            for (uint32_t i = 0; i < count && !c.failed(); i++) {
                FuncDecl f;
                f.index = numImports + i;
                f.typeIndex = funcTypeIndices[i];
                uint32_t bodySize = c.readU32();
                size_t bodyEnd = c.pos() + bodySize;
                uint32_t numLocalGroups = c.readU32();
                for (uint32_t j = 0; j < numLocalGroups && !c.failed(); j++) {
                    uint32_t n = c.readU32();
                    ValType t = c.readValType();
                    if (f.locals.size() + n > 65536) {
                        c.fail("too many locals");
                        break;
                    }
                    f.locals.insert(f.locals.end(), n, t);
                }
                if (c.failed()) break;
                if (bodyEnd < c.pos() || bodyEnd > bytes.size()) {
                    c.fail("bad function body size");
                    break;
                }
                f.code = c.readBytes(bodyEnd - c.pos());
                if (f.code.empty() || f.code.back() != OP_END) {
                    c.fail("function body must end with end opcode");
                    break;
                }
                m.functions.push_back(std::move(f));
            }
            break;
          }
          case SEC_DATA: {
            uint32_t count = c.readU32();
            for (uint32_t i = 0; i < count && !c.failed(); i++) {
                DataSegment seg;
                uint32_t flags = c.readU32();
                if (flags != 0) {
                    c.fail("only active data segments supported");
                    break;
                }
                seg.memIndex = 0;
                seg.offset = c.readInitExpr();
                uint32_t n = c.readU32();
                seg.bytes = c.readBytes(n);
                m.datas.push_back(std::move(seg));
            }
            break;
          }
          default:
            c.fail("unknown section id");
        }

        if (c.failed()) break;
        if (c.pos() != end) {
            // Custom sections may be partially consumed; skip the rest.
            if (id == SEC_CUSTOM && c.pos() < end) {
                while (c.pos() < end) c.readByte();
            } else {
                c.fail("section size mismatch");
                break;
            }
        }
    }

    if (c.failed()) return c.error();

    // Function section without code section (or vice versa) is malformed,
    // unless both are absent.
    uint32_t numLocalFuncs =
        static_cast<uint32_t>(m.functions.size()) - m.numImportedFuncs();
    if (numLocalFuncs != funcTypeIndices.size()) {
        return Error{"function/code section mismatch", c.pos()};
    }

    return m;
}

bool
decodeInstr(const std::vector<uint8_t>& code, size_t pc, InstrView* out)
{
    const uint8_t* base = code.data();
    const uint8_t* end = base + code.size();
    const uint8_t* p = base + pc;
    if (p >= end) return false;

    InstrView& v = *out;
    v = InstrView{};
    v.opcode = *p++;

    auto readU32 = [&]() -> bool {
        auto r = decodeULEB<uint32_t>(p, end);
        if (!r.ok()) return false;
        v.index = r.value;
        p += r.length;
        return true;
    };

    switch (v.opcode) {
      case OP_BLOCK:
      case OP_LOOP:
      case OP_IF: {
        // Block type: single byte (valtype or 0x40). We don't support
        // multi-value (sleb type indices) in block types.
        if (p >= end) return false;  // opcode was the last byte
        uint8_t bt = *p++;
        if (bt != 0x40 && !isValType(bt)) return false;
        v.index = bt;
        break;
      }
      case OP_BR:
      case OP_BR_IF:
      case OP_CALL:
      case OP_LOCAL_GET:
      case OP_LOCAL_SET:
      case OP_LOCAL_TEE:
      case OP_GLOBAL_GET:
      case OP_GLOBAL_SET:
        if (!readU32()) return false;
        break;
      case OP_BR_TABLE: {
        auto n = decodeULEB<uint32_t>(p, end);
        if (!n.ok()) return false;
        p += n.length;
        // Each target needs at least one byte, so a count beyond the
        // remaining bytes is malformed; reject it before looping over
        // a bogus (up to 2^32-1) entry count.
        if (n.value >= static_cast<uint64_t>(end - p)) return false;
        for (uint32_t i = 0; i <= n.value; i++) {  // targets + default
            auto t = decodeULEB<uint32_t>(p, end);
            if (!t.ok()) return false;
            p += t.length;
            v.brTable.push_back(t.value);
        }
        break;
      }
      case OP_CALL_INDIRECT: {
        if (!readU32()) return false;   // type index
        if (p >= end || *p++ != 0x00) return false;  // table index byte
        break;
      }
      case OP_MEMORY_SIZE:
      case OP_MEMORY_GROW:
        if (p >= end || *p++ != 0x00) return false;  // memory index byte
        break;
      case OP_I32_CONST: {
        auto r = decodeSLEB<int32_t>(p, end);
        if (!r.ok()) return false;
        v.i64Const = r.value;
        p += r.length;
        break;
      }
      case OP_I64_CONST: {
        auto r = decodeSLEB<int64_t>(p, end);
        if (!r.ok()) return false;
        v.i64Const = r.value;
        p += r.length;
        break;
      }
      case OP_F32_CONST: {
        if (p + 4 > end) return false;
        uint32_t bits;
        std::memcpy(&bits, p, 4);
        v.fBits = bits;
        p += 4;
        break;
      }
      case OP_F64_CONST: {
        if (p + 8 > end) return false;
        std::memcpy(&v.fBits, p, 8);
        p += 8;
        break;
      }
      case OP_PREFIX_FC: {
        auto sub = decodeULEB<uint32_t>(p, end);
        if (!sub.ok()) return false;
        p += sub.length;
        v.prefixOp = sub.value;
        if (sub.value <= FC_I64_TRUNC_SAT_F64_U) {
            // no further immediates
        } else if (sub.value == FC_MEMORY_FILL) {
            if (p >= end || *p++ != 0x00) return false;
        } else if (sub.value == FC_MEMORY_COPY) {
            if (p + 2 > end || p[0] != 0 || p[1] != 0) return false;
            p += 2;
        } else {
            return false;
        }
        break;
      }
      default:
        if (isLoadOpcode(v.opcode) || isStoreOpcode(v.opcode)) {
            auto a = decodeULEB<uint32_t>(p, end);
            if (!a.ok()) return false;
            p += a.length;
            v.align = a.value;
            auto o = decodeULEB<uint32_t>(p, end);
            if (!o.ok()) return false;
            p += o.length;
            v.memOffset = o.value;
        } else if (opcodeName(v.opcode)[0] == '<') {
            return false;  // illegal opcode
        }
        // All other opcodes have no immediates.
        break;
    }

    v.length = static_cast<size_t>(p - (base + pc));
    return true;
}

size_t
instrLength(const std::vector<uint8_t>& code, size_t pc)
{
    InstrView v;
    if (!decodeInstr(code, pc, &v)) return 0;
    return v.length;
}

} // namespace wizpp
