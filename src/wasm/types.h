/**
 * @file
 * Core WebAssembly type definitions shared across the engine.
 */

#ifndef WIZPP_WASM_TYPES_H
#define WIZPP_WASM_TYPES_H

#include <cstdint>
#include <string>
#include <vector>

namespace wizpp {

/** WebAssembly value types (core spec, MVP numeric types + funcref). */
enum class ValType : uint8_t {
    I32 = 0x7f,
    I64 = 0x7e,
    F32 = 0x7d,
    F64 = 0x7c,
    FuncRef = 0x70,
    Void = 0x40,  ///< pseudo-type used for empty block types
};

/** Returns the canonical textual name of a value type ("i32", ...). */
const char* valTypeName(ValType t);

/** True if @p b is a valid value-type byte in the binary format. */
inline bool
isValType(uint8_t b)
{
    switch (static_cast<ValType>(b)) {
      case ValType::I32:
      case ValType::I64:
      case ValType::F32:
      case ValType::F64:
      case ValType::FuncRef:
        return true;
      default:
        return false;
    }
}

/** A function signature: parameter and result types. */
struct FuncType
{
    std::vector<ValType> params;
    std::vector<ValType> results;

    bool operator==(const FuncType& o) const = default;

    /** Renders the signature as "[i32 i32] -> [f64]". */
    std::string toString() const;
};

/** Limits for memories and tables. */
struct Limits
{
    uint32_t min = 0;
    uint32_t max = 0;
    bool hasMax = false;

    bool operator==(const Limits& o) const = default;
};

/** Import/export kinds, with the binary-format encodings. */
enum class ExternKind : uint8_t {
    Func = 0,
    Table = 1,
    Memory = 2,
    Global = 3,
};

const char* externKindName(ExternKind k);

/** Number of bytes in one Wasm linear-memory page. */
constexpr uint32_t kPageSize = 65536;

/** Hard cap on pages we will allocate (1 GiB) to bound test memory. */
constexpr uint32_t kMaxPages = 16384;

} // namespace wizpp

#endif // WIZPP_WASM_TYPES_H
