/**
 * @file
 * Bytecode disassembler: renders function bodies as one instruction
 * per line with pc labels — used by monitors, the debugger and
 * diagnostics. Probe-overwritten code can be disassembled against the
 * pristine module bytes so instrumented locations are marked instead
 * of breaking the listing.
 */

#ifndef WIZPP_WASM_DISASM_H
#define WIZPP_WASM_DISASM_H

#include <iosfwd>
#include <string>
#include <vector>

#include "wasm/module.h"

namespace wizpp {

/** Renders one instruction ("i32.const 42", "br_table 0 1 2", ...). */
std::string disassembleInstr(const std::vector<uint8_t>& code,
                             uint32_t pc);

/**
 * Writes a full listing of @p func to @p out:
 *   "  +12  i32.add"
 * with nesting indentation for block/loop/if bodies. @p probedPcs, if
 * non-null, marks instrumented locations with a '*'.
 */
void disassembleFunction(const Module& m, uint32_t funcIndex,
                         std::ostream& out,
                         const std::vector<uint32_t>* probedPcs = nullptr);

} // namespace wizpp

#endif // WIZPP_WASM_DISASM_H
