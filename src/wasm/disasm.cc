#include "wasm/disasm.h"

#include <algorithm>
#include <cstring>
#include <ostream>

#include "wasm/decoder.h"
#include "wasm/opcodes.h"

namespace wizpp {

std::string
disassembleInstr(const std::vector<uint8_t>& code, uint32_t pc)
{
    InstrView v;
    if (!decodeInstr(code, pc, &v)) return "<malformed>";
    std::string s = opcodeName(v.opcode);
    switch (v.opcode) {
      case OP_BLOCK:
      case OP_LOOP:
      case OP_IF: {
        ValType bt = static_cast<ValType>(v.index);
        if (bt != ValType::Void) {
            s += std::string(" (result ") + valTypeName(bt) + ")";
        }
        break;
      }
      case OP_BR:
      case OP_BR_IF:
      case OP_CALL:
      case OP_LOCAL_GET:
      case OP_LOCAL_SET:
      case OP_LOCAL_TEE:
      case OP_GLOBAL_GET:
      case OP_GLOBAL_SET:
        s += " " + std::to_string(v.index);
        break;
      case OP_CALL_INDIRECT:
        s += " (type " + std::to_string(v.index) + ")";
        break;
      case OP_BR_TABLE:
        // Two appends, not `" " + std::to_string(t)`: the temporary
        // trips GCC 12's -Wrestrict false positive (PR105651) at -O3.
        for (uint32_t t : v.brTable) {
            s += ' ';
            s += std::to_string(t);
        }
        break;
      case OP_I32_CONST:
      case OP_I64_CONST:
        s += " " + std::to_string(v.i64Const);
        break;
      case OP_F32_CONST: {
        float f;
        uint32_t bits = static_cast<uint32_t>(v.fBits);
        std::memcpy(&f, &bits, 4);
        s += " " + std::to_string(f);
        break;
      }
      case OP_F64_CONST: {
        double d;
        std::memcpy(&d, &v.fBits, 8);
        s += " " + std::to_string(d);
        break;
      }
      case OP_PREFIX_FC: {
        static const char* fcNames[] = {
            "i32.trunc_sat_f32_s", "i32.trunc_sat_f32_u",
            "i32.trunc_sat_f64_s", "i32.trunc_sat_f64_u",
            "i64.trunc_sat_f32_s", "i64.trunc_sat_f32_u",
            "i64.trunc_sat_f64_s", "i64.trunc_sat_f64_u",
        };
        if (v.prefixOp < 8) s = fcNames[v.prefixOp];
        else if (v.prefixOp == FC_MEMORY_FILL) s = "memory.fill";
        else if (v.prefixOp == FC_MEMORY_COPY) s = "memory.copy";
        break;
      }
      default:
        if (isLoadOpcode(v.opcode) || isStoreOpcode(v.opcode)) {
            if (v.memOffset) s += " offset=" + std::to_string(v.memOffset);
        }
        break;
    }
    return s;
}

void
disassembleFunction(const Module& m, uint32_t funcIndex, std::ostream& out,
                    const std::vector<uint32_t>* probedPcs)
{
    const FuncDecl& f = m.functions[funcIndex];
    const FuncType& ft = m.types[f.typeIndex];
    out << "func";
    if (!f.name.empty()) out << " $" << f.name;
    out << " #" << funcIndex << " " << ft.toString() << "\n";
    if (f.imported) {
        out << "  <import " << f.importModule << "." << f.importName
            << ">\n";
        return;
    }

    int indent = 1;
    size_t pc = 0;
    while (pc < f.code.size()) {
        InstrView v;
        if (!decodeInstr(f.code, pc, &v)) {
            out << "  <malformed at +" << pc << ">\n";
            return;
        }
        bool closes = v.opcode == OP_END || v.opcode == OP_ELSE;
        if (closes && indent > 1) indent--;
        bool probed = probedPcs &&
                      std::find(probedPcs->begin(), probedPcs->end(),
                                static_cast<uint32_t>(pc)) !=
                          probedPcs->end();
        out << (probed ? "*" : " ");
        char buf[32];
        snprintf(buf, sizeof(buf), "%5zu  ", pc);
        out << "+" << buf;
        for (int i = 0; i < indent; i++) out << "  ";
        out << disassembleInstr(f.code, static_cast<uint32_t>(pc)) << "\n";
        if (v.opcode == OP_BLOCK || v.opcode == OP_LOOP ||
            v.opcode == OP_IF || v.opcode == OP_ELSE) {
            indent++;
        }
        pc += v.length;
    }
}

} // namespace wizpp
