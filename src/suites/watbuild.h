/**
 * @file
 * Tiny WAT-text building helpers shared by the suite translation
 * units. These only assemble strings — every kernel is still plain WAT
 * parsed by the normal frontend — but they keep 50 hand-ported kernels
 * consistent and reviewable.
 */

#ifndef WIZPP_SUITES_WATBUILD_H
#define WIZPP_SUITES_WATBUILD_H

#include <string>

namespace wizpp::watbuild {

/** `(local.get $i)` */
inline std::string
get(const std::string& var)
{
    return "(local.get " + var + ")";
}

/** `(i32.const k)` */
inline std::string
c32(long long k)
{
    return "(i32.const " + std::to_string(k) + ")";
}

/** `(f64.const k)` */
inline std::string
cf64(const std::string& k)
{
    return "(f64.const " + k + ")";
}

/** Counted loop: for (var = 0; var < bound; var++) { body }. */
inline std::string
forUp(const std::string& var, const std::string& bound,
      const std::string& body)
{
    std::string l = var.substr(1);
    return "(local.set " + var + " (i32.const 0))"
           "(block $x" + l + " (loop $l" + l +
           " (br_if $x" + l + " (i32.ge_s " + get(var) + " " + bound + "))" +
           body +
           " (local.set " + var + " (i32.add " + get(var) +
           " (i32.const 1)))"
           " (br $l" + l + ")))";
}

/** for (var = start; var < bound; var++) { body }. */
inline std::string
forFrom(const std::string& var, const std::string& start,
        const std::string& bound, const std::string& body)
{
    std::string l = var.substr(1);
    return "(local.set " + var + " " + start + ")"
           "(block $x" + l + " (loop $l" + l +
           " (br_if $x" + l + " (i32.ge_s " + get(var) + " " + bound + "))" +
           body +
           " (local.set " + var + " (i32.add " + get(var) +
           " (i32.const 1)))"
           " (br $l" + l + ")))";
}

/** for (var = start-1; var >= 0; var--) { body }. */
inline std::string
forDown(const std::string& var, const std::string& start,
        const std::string& body)
{
    std::string l = var.substr(1);
    return "(local.set " + var + " (i32.sub " + start + " (i32.const 1)))"
           "(block $x" + l + " (loop $l" + l +
           " (br_if $x" + l + " (i32.lt_s " + get(var) + " (i32.const 0)))" +
           body +
           " (local.set " + var + " (i32.sub " + get(var) +
           " (i32.const 1)))"
           " (br $l" + l + ")))";
}

/** Address of a 2-D f64 element via the prelude's $at2. */
inline std::string
at2(long long base, const std::string& i, const std::string& j, int n)
{
    return "(call $at2 " + c32(base) + " " + i + " " + j + " " + c32(n) +
           ")";
}

/** Address of a 1-D f64 element. */
inline std::string
at1(long long base, const std::string& i)
{
    return "(i32.add " + c32(base) + " (i32.mul " + i + " (i32.const 8)))";
}

/** `(f64.load addr)` */
inline std::string
ld(const std::string& addr)
{
    return "(f64.load " + addr + ")";
}

/** `(f64.store addr val)` */
inline std::string
st(const std::string& addr, const std::string& val)
{
    return "(f64.store " + addr + " " + val + ")";
}

/** Standard run driver: init + kernel, repeated $n times. */
inline std::string
runDriver()
{
    return R"WAT(
  (func (export "run") (param $n i32) (result f64)
    (local $r i32) (local $acc f64)
    (block $xr (loop $lr
      (br_if $xr (i32.ge_s (local.get $r) (local.get $n)))
      (call $init)
      (local.set $acc (f64.add (local.get $acc) (call $kernel)))
      (local.set $r (i32.add (local.get $r) (i32.const 1)))
      (br $lr)))
    (local.get $acc))
)WAT";
}

} // namespace wizpp::watbuild

#endif // WIZPP_SUITES_WATBUILD_H
