/**
 * @file
 * The Richards benchmark (paper Section 6), hand-ported to WAT: an OS
 * task scheduler with task control blocks in memory and task dispatch
 * through call_indirect. Famously call-heavy and indirect-call-heavy —
 * exactly what makes the JVMTI MethodEntry comparison interesting.
 */

#include "suites/suites.h"

namespace wizpp {

namespace {

const char* kRichardsWat = R"WAT((module
  (memory 1)
  (type $task (func (param i32) (result i32)))
  (table 4 funcref)
  (elem (i32.const 0) $idle $worker $handler $device)

  ;; TCB layout: 16 bytes per task: [pending, kind, work, aux]
  (func $tcb (param $id i32) (result i32)
    (i32.mul (local.get $id) (i32.const 16)))
  (func $pending (param $id i32) (result i32)
    (i32.load (call $tcb (local.get $id))))
  (func $setPending (param $id i32) (param $v i32)
    (i32.store (call $tcb (local.get $id)) (local.get $v)))
  (func $send (param $to i32)
    (call $setPending (local.get $to)
      (i32.add (call $pending (local.get $to)) (i32.const 1))))
  (func $take (param $id i32) (result i32)
    (if (result i32) (i32.gt_s (call $pending (local.get $id)) (i32.const 0))
      (then
        (call $setPending (local.get $id)
          (i32.sub (call $pending (local.get $id)) (i32.const 1)))
        (i32.const 1))
      (else (i32.const 0))))
  (func $work (param $id i32) (result i32)
    (i32.load offset=8 (call $tcb (local.get $id))))
  (func $setWork (param $id i32) (param $v i32)
    (i32.store offset=8 (call $tcb (local.get $id)) (local.get $v)))

  ;; A small hash step, called once per processed packet.
  (func $hashStep (param $x i32) (result i32)
    (local $v i32)
    (local.set $v (i32.mul (local.get $x) (i32.const 0x9e3779b9)))
    (local.set $v (i32.xor (local.get $v)
                           (i32.shr_u (local.get $v) (i32.const 15))))
    (i32.add (local.get $v) (i32.const 0x7feb352d)))

  (func $idle (param $id i32) (result i32)
    ;; the idle task emits packets to the worker
    (call $send (i32.const 1))
    (call $setWork (local.get $id)
      (call $hashStep (call $work (local.get $id))))
    (call $work (local.get $id)))

  (func $worker (param $id i32) (result i32)
    (local $h i32) (local $k i32)
    (if (i32.eqz (call $take (local.get $id)))
      (then (return (i32.const 0))))
    ;; process the packet: a few hash steps, then forward to handler
    (local.set $h (call $work (local.get $id)))
    (block $x (loop $l
      (br_if $x (i32.ge_s (local.get $k) (i32.const 4)))
      (local.set $h (call $hashStep (local.get $h)))
      (local.set $k (i32.add (local.get $k) (i32.const 1)))
      (br $l)))
    (call $setWork (local.get $id) (local.get $h))
    (call $send (i32.const 2))
    (local.get $h))

  (func $handler (param $id i32) (result i32)
    (if (i32.eqz (call $take (local.get $id)))
      (then (return (i32.const 0))))
    (call $setWork (local.get $id)
      (call $hashStep (call $work (local.get $id))))
    (call $send (i32.const 3))
    (call $work (local.get $id)))

  (func $device (param $id i32) (result i32)
    (if (i32.eqz (call $take (local.get $id)))
      (then (return (i32.const 0))))
    (call $setWork (local.get $id)
      (i32.add (call $work (local.get $id)) (i32.const 1)))
    (call $work (local.get $id)))

  (func $schedule (param $iters i32) (result i32)
    (local $i i32) (local $cur i32) (local $acc i32)
    (block $x (loop $l
      (br_if $x (i32.ge_s (local.get $i) (local.get $iters)))
      (local.set $acc (i32.add (local.get $acc)
        (call_indirect (type $task) (local.get $cur) (local.get $cur))))
      (local.set $cur (i32.and (i32.add (local.get $cur) (i32.const 1))
                               (i32.const 3)))
      (local.set $i (i32.add (local.get $i) (i32.const 1)))
      (br $l)))
    (local.get $acc))

  (func (export "run") (param $n i32) (result f64)
    (local $r i32) (local $acc i32) (local $id i32)
    ;; reset TCBs
    (block $xz (loop $lz
      (br_if $xz (i32.ge_s (local.get $id) (i32.const 4)))
      (call $setPending (local.get $id) (i32.const 0))
      (call $setWork (local.get $id)
        (i32.add (local.get $id) (i32.const 17)))
      (local.set $id (i32.add (local.get $id) (i32.const 1)))
      (br $lz)))
    (block $x (loop $l
      (br_if $x (i32.ge_s (local.get $r) (local.get $n)))
      (local.set $acc (i32.add (local.get $acc)
                               (call $schedule (i32.const 4000))))
      (local.set $r (i32.add (local.get $r) (i32.const 1)))
      (br $l)))
    (f64.convert_i32_s (local.get $acc)))
))WAT";

} // namespace

const BenchProgram&
richardsProgram()
{
    static BenchProgram p = [] {
        BenchProgram r;
        r.suite = "misc";
        r.name = "richards";
        r.wat = kRichardsWat;
        r.defaultN = 8;
        return r;
    }();
    return p;
}

} // namespace wizpp
