/**
 * @file
 * Benchmark corpus (paper Section 5.1): PolyBench/C, Ostrich and
 * Libsodium-style kernels hand-ported to WAT, plus the Richards
 * benchmark used by the Section 6 JVMTI comparison.
 *
 * Every program follows one convention: it exports
 *     run : (param $n i32) -> (result f64)
 * where $n scales the repetition count and the result is a checksum
 * (used by the cross-tier differential tests). Workload sizes are
 * scaled so an uninstrumented compiled-tier run takes milliseconds;
 * the paper's metric — relative execution time — is size-independent
 * to first order (DESIGN.md substitution S4).
 */

#ifndef WIZPP_SUITES_SUITES_H
#define WIZPP_SUITES_SUITES_H

#include <cstdint>
#include <string>
#include <vector>

namespace wizpp {

/** One benchmark program. */
struct BenchProgram
{
    std::string suite;    ///< "polybench" | "ostrich" | "libsodium" | "misc"
    std::string name;     ///< e.g. "gemm"
    std::string wat;      ///< complete module source
    std::string entry = "run";
    uint32_t defaultN = 1;  ///< default repetition count for benches
};

/** All programs of all suites (built once, cached). */
const std::vector<BenchProgram>& allPrograms();

/** Programs of one suite. */
std::vector<const BenchProgram*> programsBySuite(const std::string& suite);

/** Finds a program by name across suites; null if absent. */
const BenchProgram* findProgram(const std::string& name);

/** The Richards benchmark (Section 6's JVMTI workload). */
const BenchProgram& richardsProgram();

// Suite registration (internal; one per translation unit).
void registerPolybench(std::vector<BenchProgram>* out);
void registerOstrich(std::vector<BenchProgram>* out);
void registerLibsodium(std::vector<BenchProgram>* out);

/**
 * Shared WAT helper functions injected into suite modules:
 * $at2 (2-D f64 indexing), $fill (pseudo-random f64 init),
 * $fsum (f64 array checksum).
 */
extern const char* kSuitePrelude;

} // namespace wizpp

#endif // WIZPP_SUITES_SUITES_H
