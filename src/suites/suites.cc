#include "suites/suites.h"

#include <mutex>

namespace wizpp {

const char* kSuitePrelude = R"WAT(
  (func $at2 (param $base i32) (param $i i32) (param $j i32) (param $n i32)
             (result i32)
    (i32.add (local.get $base)
      (i32.mul (i32.add (i32.mul (local.get $i) (local.get $n))
                        (local.get $j))
               (i32.const 8))))
  (func $fill (param $base i32) (param $count i32) (param $seed i32)
    (local $i i32)
    (block $x (loop $l
      (br_if $x (i32.ge_s (local.get $i) (local.get $count)))
      (f64.store
        (i32.add (local.get $base) (i32.mul (local.get $i) (i32.const 8)))
        (f64.div
          (f64.convert_i32_s
            (i32.rem_s
              (i32.add (i32.mul (local.get $i) (i32.const 7919))
                       (local.get $seed))
              (i32.const 1024)))
          (f64.const 1024)))
      (local.set $i (i32.add (local.get $i) (i32.const 1)))
      (br $l))))
  (func $fsum (param $base i32) (param $count i32) (result f64)
    (local $i i32) (local $acc f64)
    (block $x (loop $l
      (br_if $x (i32.ge_s (local.get $i) (local.get $count)))
      (local.set $acc (f64.add (local.get $acc)
        (f64.load (i32.add (local.get $base)
                           (i32.mul (local.get $i) (i32.const 8))))))
      (local.set $i (i32.add (local.get $i) (i32.const 1)))
      (br $l)))
    (local.get $acc))
)WAT";

const std::vector<BenchProgram>&
allPrograms()
{
    static std::vector<BenchProgram> programs;
    static std::once_flag once;
    std::call_once(once, [] {
        registerPolybench(&programs);
        registerOstrich(&programs);
        registerLibsodium(&programs);
    });
    return programs;
}

std::vector<const BenchProgram*>
programsBySuite(const std::string& suite)
{
    std::vector<const BenchProgram*> out;
    for (const auto& p : allPrograms()) {
        if (p.suite == suite) out.push_back(&p);
    }
    return out;
}

const BenchProgram*
findProgram(const std::string& name)
{
    for (const auto& p : allPrograms()) {
        if (p.name == name) return &p;
    }
    if (name == "richards") return &richardsProgram();
    return nullptr;
}

} // namespace wizpp
